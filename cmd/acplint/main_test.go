package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureModuleFindings runs the multichecker standalone over the
// deliberately broken fixture module and asserts on the exit status and
// the diagnostics it prints.
func TestFixtureModuleFindings(t *testing.T) {
	var out, errb bytes.Buffer
	code := run("testdata/fixmod", []string{"./..."}, &out, &errb)
	if code != exitDiagnostics {
		t.Fatalf("exit = %d, want %d (stdout %q, stderr %q)", code, exitDiagnostics, out.String(), errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"time.Now reads the wall clock",
		"append to non-scratch destination out",
		"[acpdeterminism]",
		"[acphotpath]",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("stdout missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "\n"); n != 2 {
		t.Errorf("want exactly 2 diagnostics, got %d:\n%s", n, got)
	}
}

// TestRepoClean is the merge gate in miniature: the analyzer suite must
// exit 0 over the entire repository.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	var out, errb bytes.Buffer
	code := run("../..", []string{"./..."}, &out, &errb)
	if code != exitClean {
		t.Fatalf("acplint over the repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(".", []string{"-V=full"}, &out, &errb)
	if code != exitClean {
		t.Fatalf("exit = %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), " version devel buildID=") {
		t.Errorf("version line malformed: %q", out.String())
	}
}

// TestVetTool builds the real binary and drives it through
// `go vet -vettool` over the fixture module, exercising the vet.cfg
// unitchecker protocol end to end.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the acplint binary")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "acplint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/acplint")
	build.Dir = repoRoot
	if outb, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building acplint: %v\n%s", err, outb)
	}

	fixmod, err := filepath.Abs("testdata/fixmod")
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = fixmod
	outb, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on the broken fixture:\n%s", outb)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go vet did not run: %v\n%s", err, outb)
	}
	got := string(outb)
	for _, want := range []string{"time.Now reads the wall clock", "append to non-scratch destination out"} {
		if !strings.Contains(got, want) {
			t.Errorf("vet output missing %q:\n%s", want, got)
		}
	}
	// go vet analyzes test packages too; the determinism analyzer must
	// exempt test files (compose_test.go also calls time.Now).
	if strings.Contains(got, "compose_test.go") {
		t.Errorf("vet flagged a _test.go file:\n%s", got)
	}

	// The clean path: vetting only the file set with no violations.
	clean := exec.Command("go", "vet", "-vettool="+bin, "./...")
	clean.Dir = cleanModule(t)
	if outb, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, outb)
	}
}

// cleanModule materialises a tiny violation-free module in a temp dir.
func cleanModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module cleanmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "core", "core.go"),
		"package core\n\n// Sum is deterministic and allocation-free.\nfunc Sum(vals []int) int {\n\tn := 0\n\tfor _, v := range vals {\n\t\tn += v\n\t}\n\treturn n\n}\n")
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
