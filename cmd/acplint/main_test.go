package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fixmodWant is one expected diagnostic per analyzer: the fixture
// module deliberately violates each of the seven invariants exactly
// once, so the full suite is exercised end to end.
var fixmodWant = []struct{ analyzer, fragment string }{
	{"acpdeterminism", "time.Now reads the wall clock"},
	{"acphotpath", "append to non-scratch destination out"},
	{"acpholdpair", "failure return may leak the hold created by HoldNode"},
	{"acpguarded", "count is guarded by mu"},
	{"acplockorder", "lock order inversion: pair.a is acquired while holding pair.b"},
	{"acpgoroutine", "goroutine is not tied to a shutdown path"},
	{"acpatomic", "stats.ops is accessed with sync/atomic elsewhere but read plainly"},
}

// TestFixtureModuleFindings runs the multichecker standalone over the
// deliberately broken fixture module and asserts on the exit status and
// the diagnostics it prints.
func TestFixtureModuleFindings(t *testing.T) {
	var out, errb bytes.Buffer
	code := run("testdata/fixmod", []string{"./..."}, &out, &errb)
	if code != exitDiagnostics {
		t.Fatalf("exit = %d, want %d (stdout %q, stderr %q)", code, exitDiagnostics, out.String(), errb.String())
	}
	got := out.String()
	for _, want := range fixmodWant {
		if !strings.Contains(got, "["+want.analyzer+"]") {
			t.Errorf("stdout missing a [%s] diagnostic:\n%s", want.analyzer, got)
		}
		if !strings.Contains(got, want.fragment) {
			t.Errorf("stdout missing %q:\n%s", want.fragment, got)
		}
	}
	if n := strings.Count(got, "\n"); n != len(fixmodWant) {
		t.Errorf("want exactly %d diagnostics, got %d:\n%s", len(fixmodWant), n, got)
	}
}

// TestJSONOutput runs -json over the fixture module and round-trips the
// records through encoding/json: every record carries file, line,
// analyzer, and message, and re-encoding reproduces the same records.
func TestJSONOutput(t *testing.T) {
	var out, errb bytes.Buffer
	code := run("testdata/fixmod", []string{"-json", "./..."}, &out, &errb)
	if code != exitDiagnostics {
		t.Fatalf("exit = %d, want %d (stderr %q)", code, exitDiagnostics, errb.String())
	}
	var records []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &records); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(records) != len(fixmodWant) {
		t.Fatalf("want %d records, got %d: %+v", len(fixmodWant), len(records), records)
	}
	byAnalyzer := map[string]jsonDiagnostic{}
	for _, r := range records {
		if r.File == "" || r.Line <= 0 || r.Column <= 0 || r.Analyzer == "" || r.Message == "" {
			t.Errorf("incomplete record: %+v", r)
		}
		if filepath.IsAbs(r.File) {
			t.Errorf("file should be relative to the scanned dir: %q", r.File)
		}
		byAnalyzer[r.Analyzer] = r
	}
	for _, want := range fixmodWant {
		r, ok := byAnalyzer[want.analyzer]
		if !ok {
			t.Errorf("no record from %s", want.analyzer)
			continue
		}
		if !strings.Contains(r.Message, want.fragment) {
			t.Errorf("%s record message %q missing %q", want.analyzer, r.Message, want.fragment)
		}
	}
	// Round trip: marshal the decoded records and decode again.
	re, err := json.Marshal(records)
	if err != nil {
		t.Fatal(err)
	}
	var again []jsonDiagnostic
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, again) {
		t.Errorf("round trip changed the records:\n%+v\n%+v", records, again)
	}
}

// TestRepoClean is the merge gate in miniature: the analyzer suite must
// exit 0 over the entire repository.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	var out, errb bytes.Buffer
	code := run("../..", []string{"./..."}, &out, &errb)
	if code != exitClean {
		t.Fatalf("acplint over the repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestVersionFlag(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(".", []string{"-V=full"}, &out, &errb)
	if code != exitClean {
		t.Fatalf("exit = %d, stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), " version devel buildID=") {
		t.Errorf("version line malformed: %q", out.String())
	}
}

// TestVetTool builds the real binary and drives it through
// `go vet -vettool` over the fixture module, exercising the vet.cfg
// unitchecker protocol end to end.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the acplint binary")
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "acplint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/acplint")
	build.Dir = repoRoot
	if outb, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building acplint: %v\n%s", err, outb)
	}

	fixmod, err := filepath.Abs("testdata/fixmod")
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = fixmod
	outb, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded on the broken fixture:\n%s", outb)
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go vet did not run: %v\n%s", err, outb)
	}
	got := string(outb)
	for _, want := range fixmodWant {
		if !strings.Contains(got, want.fragment) {
			t.Errorf("vet output missing %q (from %s):\n%s", want.fragment, want.analyzer, got)
		}
	}
	// go vet analyzes test packages too; the determinism analyzer must
	// exempt test files (compose_test.go also calls time.Now).
	if strings.Contains(got, "compose_test.go") {
		t.Errorf("vet flagged a _test.go file:\n%s", got)
	}

	// The clean path: vetting only the file set with no violations.
	clean := exec.Command("go", "vet", "-vettool="+bin, "./...")
	clean.Dir = cleanModule(t)
	if outb, err := clean.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, outb)
	}
}

// cleanModule materialises a tiny violation-free module in a temp dir.
func cleanModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module cleanmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "core", "core.go"),
		"package core\n\n// Sum is deterministic and allocation-free.\nfunc Sum(vals []int) int {\n\tn := 0\n\tfor _, v := range vals {\n\t\tn += v\n\t}\n\treturn n\n}\n")
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAcplintRepo measures the analyzer suite's wall time over the
// entire repository — the cost every CI run pays for the lint gate.
// Loading (parse + type-check) dominates; the analyzers themselves are
// single-pass over the ASTs.
func BenchmarkAcplintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out, errb bytes.Buffer
		if code := run("../..", []string{"./..."}, &out, &errb); code != exitClean {
			b.Fatalf("acplint over the repo: exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
		}
	}
}
