// Command acplint runs the repository's custom analyzer suite
// (internal/lint) over Go packages: probe-walk determinism, hot-path
// allocation hygiene, hold/rollback pairing on the transient ledger, and
// mutex-guarded field access.
//
// Standalone, over package patterns:
//
//	go run ./cmd/acplint ./...
//	go run ./cmd/acplint -json ./...
//
// With -json, findings are printed to stdout as a JSON array of
// {file, line, column, analyzer, message} records for CI annotators.
//
// As a vet tool, speaking the unitchecker vet.cfg protocol:
//
//	go build -o "$(go env GOPATH)/bin/acplint" ./cmd/acplint
//	go vet -vettool=$(which acplint) ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 internal error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

const (
	exitClean       = 0
	exitDiagnostics = 1
	exitError       = 2
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches between the three invocation modes: -V=full version
// fingerprinting (the go command probes vet tools this way), a single
// *.cfg argument (go vet -vettool unitchecker mode), and standalone
// package patterns resolved relative to dir.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-V" {
			return printVersion(stdout, stderr)
		}
		if a == "-flags" || a == "--flags" {
			// The go command asks which analyzer flags the tool supports
			// before its first real invocation; acplint exposes none.
			fmt.Fprintln(stdout, "[]")
			return exitClean
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], stderr)
	}
	asJSON := false
	patterns := make([]string, 0, len(args))
	for _, a := range args {
		if a == "-json" || a == "--json" {
			asJSON = true
			continue
		}
		patterns = append(patterns, a)
	}
	return runStandalone(dir, patterns, asJSON, stdout, stderr)
}

// printVersion mirrors x/tools' unitchecker: the go command fingerprints
// a vet tool by hashing its own executable, so the version line must be
// stable for a given binary.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	fmt.Fprintf(stdout, "%s version devel buildID=%x\n", filepath.Base(exe), h.Sum(nil))
	return exitClean
}

// vetConfig is the subset of the go command's vet.cfg the tool needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes one package as directed by a vet.cfg handed over by
// `go vet -vettool`. The go command compiles export data for every
// dependency before invoking the tool, so type-checking needs no network
// and no module cache walk.
func runVet(cfgFile string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "acplint: parsing %s: %v\n", cfgFile, err)
		return exitError
	}
	// The go command requires the facts file to exist after a successful
	// run. acplint keeps no cross-package facts; an empty file suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	fset := token.NewFileSet()
	pkg, err := lint.Check(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return exitClean
		}
		fmt.Fprintln(stderr, err)
		return exitError
	}
	diags, err := lint.RunAnalyzers([]*lint.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return exitDiagnostics
	}
	return exitClean
}

// jsonDiagnostic is one -json output record: a stable machine-readable
// shape for CI annotators and editor integrations.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(dir string, patterns []string, asJSON bool, stdout, stderr io.Writer) int {
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitError
	}
	if len(pkgs) == 0 {
		if asJSON {
			fmt.Fprintln(stdout, "[]")
		}
		return exitClean
	}
	base, _ := filepath.Abs(dir)
	records := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		name := pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		records = append(records, jsonDiagnostic{
			File: name, Line: pos.Line, Column: pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(stderr, err)
			return exitError
		}
	} else {
		for _, r := range records {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", r.File, r.Line, r.Column, r.Analyzer, r.Message)
		}
	}
	if len(diags) > 0 {
		return exitDiagnostics
	}
	return exitClean
}
