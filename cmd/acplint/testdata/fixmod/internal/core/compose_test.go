package core

import (
	"testing"
	"time"
)

// Test files are exempt from the determinism analyzer even under
// `go vet -vettool`, which (unlike the standalone loader) analyzes
// test packages: test drivers legitimately wait in wall time.
func TestStampAdvances(t *testing.T) {
	before := time.Now()
	if Stamp().Before(before) {
		t.Fatal("stamp ran backwards")
	}
}
