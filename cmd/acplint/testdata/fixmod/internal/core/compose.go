// Package core is a deliberately broken miniature of repro/internal/core
// used by the acplint command tests: its import path ends in
// internal/core, so the determinism analyzer applies, and it violates one
// invariant per function.
package core

import "time"

// Stamp reads the wall clock inside a deterministic package.
func Stamp() time.Time {
	return time.Now()
}

// Gather appends to a fresh local inside a hot-path function.
//
//acp:hotpath
func Gather(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

// Tidy is clean: collect-then-sort over scratch storage, no clock, no
// global rand.
func Tidy(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}
