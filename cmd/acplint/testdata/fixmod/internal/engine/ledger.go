package engine

import (
	"errors"
	"sync"
)

// ledger mirrors the transient-resource ledger's Hold*/Release* surface;
// the holdpair analyzer matches by method name.
type ledger struct{}

func (l *ledger) HoldNode(owner int64, node int) bool { return true }

func (l *ledger) ReleaseNodeHold(owner int64, node int) {}

// Reserve leaks the hold on a when the hold on b fails.
func Reserve(l *ledger, a, b int) error {
	if !l.HoldNode(1, a) {
		return errors.New("contended")
	}
	if !l.HoldNode(1, b) {
		return errors.New("contended")
	}
	l.ReleaseNodeHold(1, a)
	l.ReleaseNodeHold(1, b)
	return nil
}

// registry reads a documented guarded field without holding its mutex.
type registry struct {
	mu sync.Mutex
	// count is guarded by mu.
	count int
}

func (r *registry) peek() int {
	return r.count
}
