// Package engine is the concurrency-safety half of the broken fixture
// module: one violation per new analyzer (lock-order inversion,
// untracked goroutine, mixed atomic/plain access) so the command tests
// can assert the full suite fires end to end.
package engine

import (
	"sync"
	"sync/atomic"
)

// pair nests its two mutexes in both orders across methods.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) forward() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) backward() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// Start spawns a worker no shutdown path can reach.
func Start() {
	go spin()
}

func spin() {
	n := 0
	for {
		n++
	}
}

// stats mixes atomic and plain access to the same field.
type stats struct {
	ops int64
}

func (s *stats) bump() { atomic.AddInt64(&s.ops, 1) }

func (s *stats) read() int64 { return s.ops }
