// Command acpfig regenerates the paper's evaluation figures as tables.
//
// Usage:
//
//	acpfig -fig 6a                # one figure at full paper scale
//	acpfig -fig all -scale 0.2    # everything, at 20% simulated duration
//	acpfig -fig 8b -seed 7        # different randomness
//	acpfig -fig ablations -scale 0.1   # the ablation/extension sweeps
//
// Figure identifiers: 5a 5b 6 6a 6b 7 7a 7b 8a 8b, plus
// ablation-{transient,staleness,selection,threshold,tuners,failures,security}.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "acpfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("acpfig", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "all", "figure to regenerate ("+strings.Join(experiment.FigureNames(), " ")+" or all)")
		scale   = fs.Float64("scale", 1.0, "simulated-duration scale factor (1.0 = paper scale)")
		seed    = fs.Int64("seed", 1, "random seed")
		ipNodes = fs.Int("ipnodes", 3200, "IP-layer topology size")
		timing  = fs.Bool("timing", false, "print wall-clock time per figure")
		asCSV   = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		seeds   = fs.Int("seeds", 1, "average the figure over this many consecutive seeds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiment.Options{Seed: *seed, DurationScale: *scale, IPNodes: *ipNodes}
	figures := experiment.Figures()
	for name, fn := range experiment.Ablations() {
		figures["ablation-"+name] = fn
	}

	var names []string
	switch *fig {
	case "all":
		// The combined 6 and 7 runners cover 6a/6b and 7a/7b.
		names = []string{"5a", "5b", "6", "7", "8a", "8b"}
	case "ablations":
		for name := range experiment.Ablations() {
			names = append(names, "ablation-"+name)
		}
	default:
		if _, ok := figures[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (have: %s, all, ablations, ablation-...)",
				*fig, strings.Join(experiment.FigureNames(), " "))
		}
		names = []string{*fig}
	}
	sort.Strings(names)

	for _, name := range names {
		start := time.Now()
		tables, err := experiment.ReproduceAveraged(figures[name], opts, *seeds)
		if err != nil {
			return fmt.Errorf("figure %s: %w", name, err)
		}
		for _, t := range tables {
			render := t.Fprint
			if *asCSV {
				render = t.FprintCSV
			}
			if err := render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if *timing {
			fmt.Printf("(figure %s: %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
