package main

import "testing"

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	// 8a at minimal scale on a small IP graph is the cheapest figure.
	if err := run([]string{"-fig", "8a", "-scale", "0.01", "-ipnodes", "600", "-timing"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99x"}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunInvalidFlags(t *testing.T) {
	if err := run([]string{"-scale", "nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunSeedAveraged(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	if err := run([]string{"-fig", "8a", "-scale", "0.01", "-ipnodes", "500", "-seeds", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}
