// Command acpserve runs the ACP session server: a live
// runtime.Cluster fronted by the TCP/JSON-line session protocol
// (internal/server), with the observability plane optionally scraped
// over HTTP. It is the process boundary for everything the in-process
// harnesses exercise — load generators (acpload), monitors (acpmon
// against -serve-obs), and hand-driven netcat sessions all speak to
// the same admission, quota, and teardown paths.
//
// Usage:
//
//	acpserve                                   # defaults, port 7433
//	acpserve -addr 127.0.0.1:0 -seed 7         # ephemeral port (printed)
//	acpserve -quota gold=8:400:4000:2000 \
//	         -quota free=2:0:0:0               # per-tenant admission caps
//	acpserve -serve-obs 127.0.0.1:9090         # /metrics for acpmon
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/server"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		close(done)
	}()
	if err := run(os.Args[1:], os.Stdout, done); err != nil {
		fmt.Fprintln(os.Stderr, "acpserve:", err)
		os.Exit(1)
	}
}

// quotaFlag collects repeated -quota tenant=sessions:cpu:mem:bw
// entries (0 = unlimited on that axis).
type quotaFlag struct {
	tenants []string
	quotas  []runtime.TenantQuota
}

func (q *quotaFlag) String() string { return strings.Join(q.tenants, ",") }

func (q *quotaFlag) Set(v string) error {
	tenant, spec, ok := strings.Cut(v, "=")
	if !ok || tenant == "" {
		return fmt.Errorf("want tenant=sessions:cpu:mem:bw, got %q", v)
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 4 {
		return fmt.Errorf("want 4 colon-separated limits, got %d in %q", len(parts), v)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("bad limit %q in %q", p, v)
		}
		vals[i] = f
	}
	q.tenants = append(q.tenants, tenant)
	q.quotas = append(q.quotas, runtime.TenantQuota{
		MaxSessions:      int(vals[0]),
		MaxCPU:           vals[1],
		MaxMemory:        vals[2],
		MaxBandwidthKbps: vals[3],
	})
	return nil
}

func run(args []string, stdout io.Writer, done <-chan struct{}) error {
	fs := flag.NewFlagSet("acpserve", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:7433", "session protocol listen address")
		seed        = fs.Int64("seed", 1, "cluster topology/placement seed")
		nodes       = fs.Int("nodes", 64, "overlay (stream processing) nodes")
		ipnodes     = fs.Int("ipnodes", 512, "underlying IP network nodes")
		functions   = fs.Int("functions", 16, "atomic function catalogue size")
		perNode     = fs.Int("components-per-node", 2, "components deployed per node")
		probing     = fs.Float64("probing", 0.5, "composition probing ratio")
		commitTO    = fs.Duration("commit-timeout", 10*time.Second, "pending session commit deadline")
		heartbeatTO = fs.Duration("heartbeat-timeout", 30*time.Second, "committed session heartbeat deadline")
		reapEvery   = fs.Duration("reap-interval", time.Second, "expired-session scan period")
		maxSessions = fs.Int("max-sessions", 0, "live wire session cap (0 = unlimited)")
		maxInflight = fs.Int("max-inflight", 32, "concurrent compose dispatch cap")
		obsAddr     = fs.String("serve-obs", "", "also serve the observability plane here (e.g. 127.0.0.1:9090)")
	)
	var quotas quotaFlag
	fs.Var(&quotas, "quota", "tenant=sessions:cpu:mem:bw admission quota (repeatable, 0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	reg := obs.NewRegistry()
	ccfg := runtime.DefaultConfig()
	ccfg.Seed = *seed
	ccfg.OverlayNodes = *nodes
	ccfg.IPNodes = *ipnodes
	ccfg.NumFunctions = *functions
	ccfg.ComponentsPerNode = *perNode
	ccfg.ProbingRatio = *probing
	ccfg.Registry = reg
	cluster, err := runtime.NewCluster(ccfg)
	if err != nil {
		return err
	}
	defer cluster.Shutdown()
	for i, tenant := range quotas.tenants {
		cluster.SetTenantQuota(tenant, quotas.quotas[i])
	}

	srv, err := server.Listen(*addr, server.Config{
		Cluster:          cluster,
		CommitTimeout:    *commitTO,
		HeartbeatTimeout: *heartbeatTO,
		ReapInterval:     *reapEvery,
		MaxSessions:      *maxSessions,
		MaxInflight:      *maxInflight,
		Registry:         reg,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "acpserve: listening on %s (seed %d, %d nodes, %d functions)\n",
		srv.Addr(), *seed, *nodes, *functions)

	if *obsAddr != "" {
		osrv, err := obs.Serve(*obsAddr, obs.ServeConfig{Registry: reg})
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Fprintf(stdout, "acpserve: observability on %s\n", osrv.URL())
	}

	<-done
	fmt.Fprintln(stdout, "acpserve: shutting down")
	return nil
}
