package main

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// syncBuffer is a goroutine-safe stdout sink run() writes to while the
// test polls for the listening line.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServe boots run() on an ephemeral port and returns the bound
// address plus a shutdown func that asserts a clean exit.
func startServe(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	out := &syncBuffer{}
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), out, done)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return m[1], func() {
				close(done)
				if err := <-errc; err != nil {
					t.Fatalf("acpserve exited with %v", err)
				}
				if !strings.Contains(out.String(), "shutting down") {
					t.Fatalf("missing shutdown line:\n%s", out.String())
				}
			}
		}
		select {
		case err := <-errc:
			t.Fatalf("acpserve exited early: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listening line:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeSessionLifecycle(t *testing.T) {
	addr, shutdown := startServe(t, "-seed", "3", "-nodes", "24", "-ipnodes", "128", "-functions", "8")
	defer shutdown()

	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if r, err := cl.Hello("t0"); err != nil || !r.OK {
		t.Fatalf("hello = %+v, %v", r, err)
	}
	resp, err := cl.Compose(server.Request{
		Functions: []int{1, 2}, CPU: 4, MemoryMB: 40,
		Delay: 1e5, LossProb: 0.9, BandwidthKbps: 30,
	})
	if err != nil || !resp.OK {
		t.Fatalf("compose = %+v, %v", resp, err)
	}
	if cm, err := cl.Commit(resp.Session); err != nil || !cm.OK {
		t.Fatalf("commit = %+v, %v", cm, err)
	}
	if td, err := cl.Teardown(resp.Session); err != nil || !td.OK {
		t.Fatalf("teardown = %+v, %v", td, err)
	}
}

func TestServeEnforcesQuotaFlag(t *testing.T) {
	addr, shutdown := startServe(t,
		"-seed", "3", "-nodes", "24", "-ipnodes", "128", "-functions", "8",
		"-quota", "free=1:0:0:0")
	defer shutdown()

	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if r, err := cl.Hello("free"); err != nil || !r.OK {
		t.Fatalf("hello = %+v, %v", r, err)
	}
	req := server.Request{
		Functions: []int{1, 2}, CPU: 4, MemoryMB: 40,
		Delay: 1e5, LossProb: 0.9, BandwidthKbps: 30,
	}
	first, err := cl.Compose(req)
	if err != nil || !first.OK {
		t.Fatalf("first compose = %+v, %v", first, err)
	}
	second, err := cl.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.OK || second.Code != server.CodeQuota || second.Dimension != "sessions" {
		t.Fatalf("over-quota compose = %+v, want code %q dimension sessions", second, server.CodeQuota)
	}
}

func TestQuotaFlagParsing(t *testing.T) {
	var q quotaFlag
	if err := q.Set("gold=8:400:4000:2000"); err != nil {
		t.Fatal(err)
	}
	if q.tenants[0] != "gold" || q.quotas[0].MaxSessions != 8 || q.quotas[0].MaxCPU != 400 ||
		q.quotas[0].MaxMemory != 4000 || q.quotas[0].MaxBandwidthKbps != 2000 {
		t.Fatalf("parsed quota = %v %+v", q.tenants, q.quotas)
	}
	for _, bad := range []string{"", "gold", "gold=1:2:3", "gold=1:2:3:4:5", "=1:2:3:4", "gold=a:2:3:4", "gold=-1:2:3:4"} {
		if err := q.Set(bad); err == nil {
			t.Errorf("quota %q accepted", bad)
		}
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	out := &syncBuffer{}
	done := make(chan struct{})
	close(done)
	if err := run([]string{"extra"}, out, done); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-quota", "notaquota"}, out, done); err == nil {
		t.Fatal("malformed -quota accepted")
	}
}
