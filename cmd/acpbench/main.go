// Command acpbench converts `go test -bench` output into a JSON
// benchmark baseline, so successive PRs leave a machine-readable perf
// trajectory next to the human-readable results files — and compares a
// fresh run against a committed baseline to gate regressions.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/acpbench -o BENCH_pr4.json
//	acpbench bench.txt
//	acpbench -compare BENCH_pr4.json -filter 'Fig5[ab]' -threshold 15 bench.txt
//
// Every metric pair the benchmark line carries is kept — the standard
// ns/op, B/op, allocs/op triple and any testing.B custom metrics
// (admitted/op, phi, ...).
//
// Compare mode reads the baseline named by -compare and the fresh
// results from stdin or the input file (bench text or a previously
// emitted JSON baseline), matches benchmarks by name (ignoring the
// -GOMAXPROCS suffix), and fails if ns/op or allocs/op regressed by
// more than -threshold percent. Benchmarks measured with fewer than
// -min-iters iterations on either side are not gated: a single
// iteration has no variance estimate at all, and gating on it would
// convert scheduler noise into CI failures.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acpbench:", err)
		os.Exit(1)
	}
}

// Baseline is the emitted document.
type Baseline struct {
	// Context carries the goos/goarch/pkg/cpu header lines.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one entry per benchmark result line.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkName-P  N  v unit  v unit ...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("acpbench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	comparePath := fs.String("compare", "", "baseline JSON to compare the input against")
	threshold := fs.Float64("threshold", 15, "max allowed regression percent for ns/op and allocs/op")
	filter := fs.String("filter", "", "regexp: only compare benchmarks whose name matches it")
	minIters := fs.Int("min-iters", 2, "refuse to gate benchmarks with fewer iterations than this (min 2)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("expected at most one input file, got %d", fs.NArg())
	}
	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	b, err := parseAny(in)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	if *comparePath != "" {
		base, err := loadBaseline(*comparePath)
		if err != nil {
			return err
		}
		return compare(base, b, *filter, *threshold, *minIters, stdout)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// loadBaseline reads a previously emitted JSON baseline.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Baseline{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return b, nil
}

// parseAny accepts either raw `go test -bench` text or a JSON baseline,
// so compare mode works on fresh bench output and on committed files
// alike.
func parseAny(r io.Reader) (*Baseline, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		b := &Baseline{}
		if err := json.Unmarshal(trimmed, b); err != nil {
			return nil, err
		}
		return b, nil
	}
	return parse(bytes.NewReader(data))
}

// normName strips the trailing -GOMAXPROCS suffix so baselines recorded
// on machines with different core counts still match up.
func normName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// gatedMetrics are the metrics a regression gate is applied to. Custom
// metrics (admitted_frac, phi, ...) are workload outcomes, not costs;
// they are reported but never gated.
var gatedMetrics = []string{"ns/op", "allocs/op"}

// compare matches the new results against the baseline by normalized
// name and fails if any gated metric regressed beyond the threshold.
// Benchmarks with fewer than minIters iterations on either side are
// skipped with a note instead of gated.
func compare(base, fresh *Baseline, filter string, threshold float64, minIters int, out io.Writer) error {
	if minIters < 2 {
		return fmt.Errorf("-min-iters must be at least 2: single-iteration samples carry no variance estimate")
	}
	var filterRe *regexp.Regexp
	if filter != "" {
		var err error
		if filterRe, err = regexp.Compile(filter); err != nil {
			return fmt.Errorf("-filter: %v", err)
		}
	}
	old := make(map[string]Benchmark, len(base.Benchmarks))
	for _, bm := range base.Benchmarks {
		old[normName(bm.Name)] = bm
	}

	var names []string
	seen := make(map[string]Benchmark, len(fresh.Benchmarks))
	for _, bm := range fresh.Benchmarks {
		name := normName(bm.Name)
		if filterRe != nil && !filterRe.MatchString(name) {
			continue
		}
		if _, ok := old[name]; !ok {
			continue
		}
		seen[name] = bm
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no benchmarks in common with the baseline (filter %q)", filter)
	}

	var regressions []string
	gated := 0
	for _, name := range names {
		ob, nb := old[name], seen[name]
		if ob.Iterations < int64(minIters) || nb.Iterations < int64(minIters) {
			fmt.Fprintf(out, "%-50s SKIPPED (iterations %d vs %d, need >= %d on both sides to gate)\n",
				name, ob.Iterations, nb.Iterations, minIters)
			continue
		}
		for _, metric := range gatedMetrics {
			ov, okOld := ob.Metrics[metric]
			nv, okNew := nb.Metrics[metric]
			if !okOld || !okNew || ov == 0 {
				continue
			}
			gated++
			delta := (nv - ov) / ov * 100
			status := "ok"
			if delta > threshold {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %s %+.1f%%", name, metric, delta))
			}
			fmt.Fprintf(out, "%-50s %-10s %14.1f -> %14.1f  %+7.1f%%  %s\n", name, metric, ov, nv, delta, status)
		}
	}
	if gated == 0 {
		return fmt.Errorf("no benchmark pair had enough iterations to gate (need >= %d on both sides)", minIters)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("performance regression beyond %.0f%%: %s", threshold, strings.Join(regressions, "; "))
	}
	return nil
}

func parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{Context: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "", strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "PASS"),
			strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "---"), strings.HasPrefix(line, "==="):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			b.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			bm, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			b.Benchmarks = append(b.Benchmarks, bm)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// parseResult decodes one result line: name, iteration count, then
// value/unit pairs.
func parseResult(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark %s: iterations %q: %v", fields[0], fields[1], err)
	}
	bm := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark %s: value %q: %v", fields[0], fields[i], err)
		}
		bm.Metrics[fields[i+1]] = v
	}
	return bm, nil
}
