// Command acpbench converts `go test -bench` output into a JSON
// benchmark baseline, so successive PRs leave a machine-readable perf
// trajectory next to the human-readable results files.
//
// Usage:
//
//	go test -bench . -benchmem | go run ./cmd/acpbench -o BENCH_pr3.json
//	acpbench bench.txt
//
// Every metric pair the benchmark line carries is kept — the standard
// ns/op, B/op, allocs/op triple and any testing.B custom metrics
// (admitted/op, phi, ...).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acpbench:", err)
		os.Exit(1)
	}
}

// Baseline is the emitted document.
type Baseline struct {
	// Context carries the goos/goarch/pkg/cpu header lines.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one entry per benchmark result line.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkName-P  N  v unit  v unit ...` line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("acpbench", flag.ContinueOnError)
	outPath := fs.String("o", "", "write JSON here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("expected at most one input file, got %d", fs.NArg())
	}
	in := stdin
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	b, err := parse(in)
	if err != nil {
		return err
	}
	if len(b.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

func parse(r io.Reader) (*Baseline, error) {
	b := &Baseline{Context: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "", strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "PASS"),
			strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "---"), strings.HasPrefix(line, "==="):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			b.Context[key] = strings.TrimSpace(val)
		case strings.HasPrefix(line, "Benchmark"):
			bm, err := parseResult(line)
			if err != nil {
				return nil, err
			}
			b.Benchmarks = append(b.Benchmarks, bm)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// parseResult decodes one result line: name, iteration count, then
// value/unit pairs.
func parseResult(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark %s: iterations %q: %v", fields[0], fields[1], err)
	}
	bm := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark %s: value %q: %v", fields[0], fields[i], err)
		}
		bm.Metrics[fields[i+1]] = v
	}
	return bm, nil
}
