package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFaultDisabledDeliver-8   	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6-8                   	       1	123456789 ns/op	        0.8420 admitted_frac	       42.00 phi
PASS
ok  	repro	12.345s
`

func TestParseSample(t *testing.T) {
	b, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.Context["goos"] != "linux" || b.Context["pkg"] != "repro" {
		t.Errorf("context = %v", b.Context)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
	d := b.Benchmarks[0]
	if d.Name != "BenchmarkFaultDisabledDeliver-8" || d.Iterations != 12345678 {
		t.Errorf("first benchmark = %+v", d)
	}
	if d.Metrics["ns/op"] != 95.2 || d.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", d.Metrics)
	}
	f := b.Benchmarks[1]
	if f.Metrics["admitted_frac"] != 0.842 || f.Metrics["phi"] != 42 {
		t.Errorf("custom metrics = %v", f.Metrics)
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal([]byte(out.String()), &b); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(b.Benchmarks) != 2 {
		t.Errorf("round-tripped %d benchmarks, want 2", len(b.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &out); err == nil {
		t.Fatal("input without benchmark lines accepted")
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 notanumber 1 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX-8 5 1\n")); err == nil {
		t.Fatal("dangling metric value accepted")
	}
}
