package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R)
BenchmarkFaultDisabledDeliver-8   	12345678	        95.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6-8                   	       1	123456789 ns/op	        0.8420 admitted_frac	       42.00 phi
PASS
ok  	repro	12.345s
`

func TestParseSample(t *testing.T) {
	b, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if b.Context["goos"] != "linux" || b.Context["pkg"] != "repro" {
		t.Errorf("context = %v", b.Context)
	}
	if len(b.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(b.Benchmarks))
	}
	d := b.Benchmarks[0]
	if d.Name != "BenchmarkFaultDisabledDeliver-8" || d.Iterations != 12345678 {
		t.Errorf("first benchmark = %+v", d)
	}
	if d.Metrics["ns/op"] != 95.2 || d.Metrics["allocs/op"] != 0 {
		t.Errorf("metrics = %v", d.Metrics)
	}
	f := b.Benchmarks[1]
	if f.Metrics["admitted_frac"] != 0.842 || f.Metrics["phi"] != 42 {
		t.Errorf("custom metrics = %v", f.Metrics)
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal([]byte(out.String()), &b); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(b.Benchmarks) != 2 {
		t.Errorf("round-tripped %d benchmarks, want 2", len(b.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok repro 0.1s\n"), &out); err == nil {
		t.Fatal("input without benchmark lines accepted")
	}
}

func TestParseMalformedLine(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX-8 notanumber 1 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := parse(strings.NewReader("BenchmarkX-8 5 1\n")); err == nil {
		t.Fatal("dangling metric value accepted")
	}
}

func baselineJSON(t *testing.T, iters int64, fig5aNs, fig5aAllocs float64) string {
	t.Helper()
	b := Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig5a", Iterations: iters, Metrics: map[string]float64{"ns/op": fig5aNs, "allocs/op": fig5aAllocs}},
		{Name: "BenchmarkFig5b-8", Iterations: iters, Metrics: map[string]float64{"ns/op": 2 * fig5aNs, "allocs/op": 2 * fig5aAllocs}},
		{Name: "BenchmarkOther", Iterations: iters, Metrics: map[string]float64{"ns/op": 10, "allocs/op": 10}},
	}}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func writeTempBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareAcceptsWithinThreshold(t *testing.T) {
	base := writeTempBaseline(t, baselineJSON(t, 3, 1000, 500))
	fresh := baselineJSON(t, 3, 1100, 520) // +10%, +4%
	var out strings.Builder
	err := run([]string{"-compare", base, "-threshold", "15"}, strings.NewReader(fresh), &out)
	if err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkFig5a") || !strings.Contains(out.String(), "ok") {
		t.Errorf("comparison table missing entries:\n%s", out.String())
	}
}

func TestCompareFailsOnRegression(t *testing.T) {
	base := writeTempBaseline(t, baselineJSON(t, 3, 1000, 500))
	fresh := baselineJSON(t, 3, 1300, 500) // +30% ns/op
	var out strings.Builder
	err := run([]string{"-compare", base, "-threshold", "15"}, strings.NewReader(fresh), &out)
	if err == nil {
		t.Fatalf("30%% regression accepted:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "regression") {
		t.Errorf("error does not name the regression: %v", err)
	}
}

func TestCompareRefusesSingleIterationSamples(t *testing.T) {
	// iterations:1 on the baseline side: every benchmark is skipped, and
	// with nothing left to gate the comparison must fail rather than
	// silently pass.
	base := writeTempBaseline(t, baselineJSON(t, 1, 1000, 500))
	fresh := baselineJSON(t, 3, 5000, 5000)
	var out strings.Builder
	err := run([]string{"-compare", base}, strings.NewReader(fresh), &out)
	if err == nil || !strings.Contains(err.Error(), "iterations") {
		t.Fatalf("single-iteration baseline gated: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SKIPPED") {
		t.Errorf("skip note missing:\n%s", out.String())
	}
}

func TestCompareFilterAndSuffixNormalization(t *testing.T) {
	base := writeTempBaseline(t, baselineJSON(t, 3, 1000, 500))
	// BenchmarkOther regresses 100x but is filtered out; Fig5b matches
	// despite the -8 suffix on one side only.
	b := Baseline{Benchmarks: []Benchmark{
		{Name: "BenchmarkFig5b", Iterations: 3, Metrics: map[string]float64{"ns/op": 2000, "allocs/op": 1000}},
		{Name: "BenchmarkOther-16", Iterations: 3, Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 1000}},
	}}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-compare", base, "-filter", "Fig5"}, strings.NewReader(string(data)), &out); err != nil {
		t.Fatalf("filtered compare failed: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "BenchmarkOther") {
		t.Errorf("filtered benchmark still compared:\n%s", out.String())
	}
}

func TestCompareBenchTextInput(t *testing.T) {
	base := writeTempBaseline(t, `{"benchmarks":[{"name":"BenchmarkFig5a","iterations":5,"metrics":{"ns/op":100,"allocs/op":50}}]}`)
	text := "BenchmarkFig5a-8   	5	        101 ns/op	       0 B/op	       51 allocs/op\nPASS\n"
	var out strings.Builder
	if err := run([]string{"-compare", base}, strings.NewReader(text), &out); err != nil {
		t.Fatalf("bench-text compare failed: %v\n%s", err, out.String())
	}
}

func TestCompareRejectsLowMinIters(t *testing.T) {
	base := writeTempBaseline(t, baselineJSON(t, 3, 1000, 500))
	var out strings.Builder
	err := run([]string{"-compare", base, "-min-iters", "1"}, strings.NewReader(baselineJSON(t, 3, 1000, 500)), &out)
	if err == nil {
		t.Fatal("-min-iters 1 accepted: single-iteration gating must stay impossible")
	}
}
