// Command acpsim runs a single configurable composition simulation and
// reports success rate, overhead, and per-window series.
//
// Usage:
//
//	acpsim -alg ACP -rate 80 -alpha 0.3 -minutes 100
//	acpsim -alg Optimal -nodes 600 -rate 80
//	acpsim -alg ACP -rate 60 -tune -target 0.9
//	acpsim -record run.trace && acpsim -replay run.trace
//	acpsim -trace-out probes.jsonl -metrics-out counters.txt
//	acpsim -dist -fault-drop 0.2 -fault-crashes 3 -requests 64
//	acpsim -adapt -surges 4 && acpsim -adapt -adapt-predictive
//	acpsim -multi-app -family diurnal -tenants 4 && acpsim -fairness
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "acpsim:", err)
		os.Exit(1)
	}
}

func parseAlgorithm(name string) (core.Algorithm, error) {
	algorithms := []core.Algorithm{
		core.AlgACP, core.AlgOptimal, core.AlgSP, core.AlgRP, core.AlgRandom, core.AlgStatic,
	}
	for _, a := range algorithms {
		if strings.EqualFold(a.String(), name) {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q (have ACP, Optimal, SP, RP, Random, Static)", name)
}

func run(args []string) error {
	fs := flag.NewFlagSet("acpsim", flag.ContinueOnError)
	var (
		algName  = fs.String("alg", "ACP", "composition algorithm")
		rate     = fs.Float64("rate", 80, "request rate (requests/minute)")
		alpha    = fs.Float64("alpha", 0.3, "probing ratio")
		minutes  = fs.Float64("minutes", 100, "simulated duration in minutes")
		nodes    = fs.Int("nodes", 400, "overlay (stream processing) node count")
		ipNodes  = fs.Int("ipnodes", 3200, "IP-layer topology size")
		perNode  = fs.Int("pernode", 1, "components deployed per node")
		seed     = fs.Int64("seed", 1, "random seed")
		tune     = fs.Bool("tune", false, "enable the probing-ratio tuner")
		target   = fs.Float64("target", 0.9, "tuner success-rate target")
		qosLevel = fs.String("qos", "high", "QoS strictness: low, high, veryhigh")
		series   = fs.Bool("series", false, "print the per-window success series")
		record   = fs.String("record", "", "record the workload trace to this file")
		replay   = fs.String("replay", "", "replay a recorded workload trace instead of generating one")
		pi       = fs.Bool("pi", false, "use the PI-controller tuner instead of the profiling tuner")
		failures = fs.Float64("failures", 0, "node failures per minute (0 = none)")
		repair   = fs.Float64("repair", 10, "minutes a failed node stays down")
		recomp   = fs.Bool("recompose", false, "re-compose sessions disrupted by failures")
		migrate  = fs.Bool("migrate", false, "enable dynamic component placement")
		traceOut = fs.String("trace-out", "", "write probe-lifecycle span events (JSONL) to this file")
		metrOut  = fs.String("metrics-out", "", "write an instrument snapshot (text) to this file")
		serveObs = fs.String("serve-obs", "", "serve the observability plane (/metrics, /trace, /healthz, pprof) at this address, e.g. :9090")
		srvHold  = fs.Duration("serve-hold", 0, "keep -serve-obs up this long after the run (0 = close immediately)")

		distMode  = fs.Bool("dist", false, "run the goroutine-per-node distributed engine instead of the simulator")
		requests  = fs.Int("requests", 48, "dist: number of requests in the batch")
		retries   = fs.Int("retries", 3, "dist: per-request compose retry budget")
		faultDrop = fs.Float64("fault-drop", 0, "dist: injected message-loss probability [0, 1]")
		faultDup  = fs.Float64("fault-dup", 0, "dist: injected message-duplication probability [0, 1]")
		faultLag  = fs.Duration("fault-delay", 0, "dist: max injected delivery delay (uniform jitter)")
		faultCr   = fs.Int("fault-crashes", 0, "dist: number of scheduled node crashes")
		faultDown = fs.Duration("fault-downtime", 200*time.Millisecond, "dist: how long each crashed node stays down")

		adaptMode = fs.Bool("adapt", false, "run the drift-adaptation scenario on the live runtime instead of the simulator")
		adaptOff  = fs.Bool("adapt-monitor-only", false, "adapt: observe drift without re-composing (the baseline)")
		adaptPred = fs.Bool("adapt-predictive", false, "adapt: migrate on Holt forecast before the bound is crossed")
		surges    = fs.Int("surges", 4, "adapt: number of congestion surges in the schedule")
		sessions  = fs.Int("sessions", 4, "adapt: concurrent session population")

		multiApp = fs.Bool("multi-app", false, "run an oracle-audited concurrent multi-application episode on the live runtime")
		famName  = fs.String("family", "flash-crowd", "multi-app: workload scenario family ("+strings.Join(familyNames(), ", ")+", or all)")
		tenants  = fs.Int("tenants", 3, "multi-app: competing application count")
		ticks    = fs.Int("ticks", 18, "multi-app: episode length in admission rounds")
		load     = fs.Float64("load", 1.5, "multi-app: expected arrivals per tenant per tick")
		fairFig  = fs.Bool("fairness", false, "print the multi-application fairness figure (success rate and Jain index vs load per family)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *distMode {
		return runDist(*seed, *nodes, *requests, *retries, *faultDrop, *faultDup, *faultLag, *faultCr, *faultDown)
	}
	if *adaptMode {
		return runAdapt(*seed, *sessions, *surges, !*adaptOff, *adaptPred)
	}
	if *fairFig {
		return runFairness(*seed)
	}
	if *multiApp {
		return runMultiApp(*seed, *famName, *tenants, *ticks, *load)
	}

	alg, err := parseAlgorithm(*algName)
	if err != nil {
		return err
	}
	var level workload.QoSLevel
	switch strings.ToLower(*qosLevel) {
	case "low":
		level = workload.QoSLow
	case "high":
		level = workload.QoSHigh
	case "veryhigh":
		level = workload.QoSVeryHigh
	default:
		return fmt.Errorf("unknown QoS level %q", *qosLevel)
	}

	scfg := experiment.DefaultSystemConfig()
	scfg.Seed = *seed
	scfg.IPNodes = *ipNodes
	scfg.OverlayNodes = *nodes
	scfg.ComponentsPerNode = *perNode
	platform, err := experiment.BuildPlatform(scfg)
	if err != nil {
		return err
	}

	rc := experiment.DefaultRunConfig(*rate)
	rc.Seed = *seed
	rc.Algorithm = alg
	rc.ProbingRatio = *alpha
	rc.Duration = time.Duration(*minutes * float64(time.Minute))
	rc.QoSLevel = level
	switch {
	case *tune && *pi:
		picfg := tuning.DefaultPIConfig()
		picfg.Target = *target
		rc.PITuning = &picfg
	case *tune:
		tcfg := tuning.DefaultConfig()
		tcfg.Target = *target
		rc.Tuning = &tcfg
	}
	if *failures > 0 {
		rc.FailuresPerMinute = *failures
		rc.RepairTime = time.Duration(*repair * float64(time.Minute))
		rc.RecomposeOnFailure = *recomp
	}
	if *migrate {
		pcfg := placement.DefaultConfig()
		rc.Migration = &pcfg
	}
	var recordFile *os.File
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			return fmt.Errorf("-record: %w", err)
		}
		recordFile = f
		defer f.Close()
		rc.TraceWriter = trace.NewWriter(f)
	}
	// Output files open before the run so an unwritable path fails fast
	// instead of discarding minutes of simulation.
	var traceFile *os.File
	var traceSink *obs.JSONLSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		traceFile = f
		defer f.Close()
		traceSink = obs.NewJSONLSink(f)
		rc.Tracer = obs.New(traceSink)
	}
	var registry *obs.Registry
	var metricsFile *os.File
	if *metrOut != "" {
		f, err := os.Create(*metrOut)
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		metricsFile = f
		defer f.Close()
		registry = obs.NewRegistry()
		rc.Registry = registry
	}
	var obsServer *obs.Server
	if *serveObs != "" {
		// The HTTP plane needs a registry and a tracer regardless of the
		// file outputs; a sink-less live tracer serves /trace subscribers
		// without writing anywhere.
		if registry == nil {
			registry = obs.NewRegistry()
			rc.Registry = registry
		}
		if rc.Tracer == nil {
			rc.Tracer = obs.NewLive()
		}
		srv, err := obs.Serve(*serveObs, obs.ServeConfig{Registry: registry, Tracer: rc.Tracer})
		if err != nil {
			return fmt.Errorf("-serve-obs: %w", err)
		}
		obsServer = srv
		defer srv.Close()
		fmt.Printf("observability    %s/metrics (hold %v after run)\n", srv.URL(), *srvHold)
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			return err
		}
		records, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		rc.Replay = records
		fmt.Printf("replaying %d recorded requests from %s\n", len(records), *replay)
	}

	start := time.Now()
	res, err := experiment.Run(platform, rc)
	if err != nil {
		return err
	}

	fmt.Printf("algorithm        %s (alpha=%.2f%s)\n", alg, *alpha, tuneSuffix(*tune, *target))
	fmt.Printf("system           N=%d overlay nodes on %d IP nodes, %d components\n",
		*nodes, *ipNodes, platform.Catalog.NumComponents())
	fmt.Printf("workload         %.0f reqs/min for %.0f min (%s)\n", *rate, *minutes, level)
	fmt.Printf("requests         %d\n", res.Requests)
	fmt.Printf("success rate     %.2f%%\n", 100*res.SuccessRate)
	fmt.Printf("overhead         %.0f messages/min (%s)\n", res.OverheadPerMinute, res.Messages)
	pb := res.PhaseBreakdown
	fmt.Printf("phase breakdown  probing %d, state updates %d, commit %d, discovery %d\n",
		pb.Probing, pb.StateUpdates, pb.Commit, pb.Discovery)
	fmt.Printf("mean probe RTT   %v\n", res.MeanProbeLatency.Round(time.Millisecond))
	fmt.Printf("mean phi         %.3f\n", res.MeanPhi)
	if *tune {
		fmt.Printf("tuner reprofiles %d\n", res.Reprofiles)
	}
	if *failures > 0 {
		fmt.Printf("failures         %d crashes, %d sessions disrupted, %d recomposed\n",
			res.Failures, res.Disrupted, res.Recomposed)
	}
	if *migrate {
		fmt.Printf("migrations       %d component moves\n", res.MigrationMoves)
	}
	fmt.Printf("wall clock       %v\n", time.Since(start).Round(time.Millisecond))
	if recordFile != nil {
		fmt.Printf("trace            recorded %d requests to %s\n", res.Requests, recordFile.Name())
	}
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := traceFile.Sync(); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		fmt.Printf("probe trace      %d span events to %s\n", traceSink.Count(), traceFile.Name())
	}
	if metricsFile != nil {
		if err := registry.WriteText(metricsFile); err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		fmt.Printf("instruments      snapshot to %s\n", metricsFile.Name())
	}
	if obsServer != nil && *srvHold > 0 {
		fmt.Printf("observability    holding %s for %v (Ctrl-C to stop early)\n", obsServer.URL(), *srvHold)
		time.Sleep(*srvHold)
	}

	if *series {
		fmt.Println("\nwindow series (minute, success %, alpha):")
		ratio := make(map[time.Duration]float64, len(res.RatioSeries))
		for _, p := range res.RatioSeries {
			ratio[p.At] = p.Value
		}
		for _, p := range res.SuccessSeries {
			fmt.Printf("  %6.1f  %6.2f  %.2f\n", p.At.Minutes(), 100*p.Value, ratio[p.At])
		}
	}
	return nil
}

// runDist pushes a request batch through the distributed engine with
// fault injection and reports degradation and recovery.
func runDist(seed int64, nodes, requests, retries int, drop, dup float64,
	maxDelay time.Duration, crashes int, downtime time.Duration) error {

	cfg := experiment.DistFaultConfig{
		Seed:         seed,
		OverlayNodes: nodes,
		Requests:     requests,
		Retries:      retries,
		DropProb:     drop,
		DupProb:      dup,
		MaxDelay:     maxDelay,
	}
	if crashes > 0 {
		cfg.Crashes = faults.RandomCrashes(seed, nodes, crashes, 500*time.Millisecond, downtime)
	}
	start := time.Now()
	res, err := experiment.DistFaultRun(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("engine           distributed (goroutine per node), N=%d\n", nodes)
	fmt.Printf("faults           drop=%.0f%% dup=%.0f%% delay<=%v crashes=%d (down %v)\n",
		100*drop, 100*dup, maxDelay, crashes, downtime)
	fmt.Printf("requests         %d (%d retries each)\n", res.Requests, retries)
	fmt.Printf("success rate     %.2f%%\n", 100*res.SuccessRate())
	fmt.Printf("no composition   %d\n", res.Failed)
	fmt.Printf("errors           %d\n", res.Errored)
	fmt.Printf("injected         %d dropped, %d duplicated, %d delayed, %d crashes\n",
		res.Dropped, res.Duplicated, res.Delayed, res.Crashes)
	fmt.Printf("recovery         %d retries, %d holds swept, recovered=%v\n",
		res.Retries, res.HoldsSwept, res.Recovered)
	fmt.Printf("wall clock       %v\n", time.Since(start).Round(time.Millisecond))
	if !res.Recovered {
		return fmt.Errorf("cluster did not return to full capacity")
	}
	return nil
}

// runAdapt plays the deterministic surge schedule against the live
// runtime cluster on the virtual clock and reports drift exposure.
func runAdapt(seed int64, sessions, surges int, adapt, predictive bool) error {
	mode := "monitor only"
	switch {
	case predictive:
		mode = "recompose + Holt forecast"
	case adapt:
		mode = "recompose on drift"
	}
	start := time.Now()
	res, err := experiment.RunAdaptation(experiment.AdaptationConfig{
		Seed:       seed,
		Sessions:   sessions,
		Surges:     surges,
		Adapt:      adapt,
		Predictive: predictive,
	})
	if err != nil {
		return err
	}
	fmt.Printf("engine           live runtime on virtual clock, %d sessions, %d surges\n", sessions, surges)
	fmt.Printf("mode             %s\n", mode)
	fmt.Printf("drift episodes   %d (%d recovered)\n", res.Episodes, res.Recovered)
	fmt.Printf("violation ticks  %d (mean %.1f per episode)\n", res.ViolationTicks, res.MeanViolationTicks)
	fmt.Printf("migrations       %d (%d preemptive, %d abandoned)\n", res.Migrations, res.Preemptive, res.Abandoned)
	fmt.Printf("wall clock       %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// familyNames lists the multi-app scenario family spellings.
func familyNames() []string {
	fams := workload.Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.String()
	}
	return names
}

// runMultiApp plays one (or, for "all", every) scenario family through
// the oracle-audited concurrent multi-application harness and reports
// the admission partition and fairness indices. A failing run prints
// the seed so `acpsim -multi-app -seed <seed>` replays it exactly.
func runMultiApp(seed int64, famName string, tenants, ticks int, load float64) error {
	fams := workload.Families()
	if famName != "all" {
		f, err := workload.ParseFamily(famName)
		if err != nil {
			return err
		}
		fams = []workload.Family{f}
	}
	start := time.Now()
	for _, f := range fams {
		rep, err := harness.RunMultiAppScenario(harness.MultiAppConfig{
			Seed:    seed,
			Family:  f,
			Tenants: tenants,
			Ticks:   ticks,
			Load:    load,
			Oracle:  true,
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w (replay: acpsim -multi-app -family %s -seed %d)", seed, err, f, seed)
		}
		fmt.Printf("family           %s (seed %d, %d tenants, %d ticks, load %.2f)\n",
			rep.Family, rep.Seed, rep.Tenants, ticks, load)
		fmt.Printf("arrivals         %d (%d admitted, %d quota-rejected, %d refused)\n",
			rep.Arrivals, rep.Admitted, rep.QuotaRejected, rep.Refused)
		for i := range rep.TenantArrivals {
			fmt.Printf("  tenant t%d      %d/%d admitted\n", i, rep.TenantAdmitted[i], rep.TenantArrivals[i])
		}
		fmt.Printf("fairness         %.3f admission Jain, %.3f min live weighted Jain\n",
			rep.Fairness, rep.MinLiveFairness)
	}
	fmt.Printf("wall clock       %v (oracle-audited)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// runFairness prints the multi-application fairness figure.
func runFairness(seed int64) error {
	tables, err := experiment.FairnessSweep(experiment.Options{Seed: seed})
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func tuneSuffix(tune bool, target float64) string {
	if !tune {
		return ""
	}
	return fmt.Sprintf(", tuned to %.0f%% target", 100*target)
}
