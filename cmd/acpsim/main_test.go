package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func tiny(extra ...string) []string {
	base := []string{"-ipnodes", "300", "-nodes", "60", "-minutes", "10", "-rate", "20"}
	return append(base, extra...)
}

func TestRunBasicSimulation(t *testing.T) {
	if err := run(tiny()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"acp", "Optimal", "sp", "RP", "random", "STATIC"} {
		if err := run(tiny("-alg", alg)); err != nil {
			t.Fatalf("algorithm %s: %v", alg, err)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	got, err := parseAlgorithm("optimal")
	if err != nil || got != core.AlgOptimal {
		t.Errorf("parseAlgorithm(optimal) = %v, %v", got, err)
	}
	if _, err := parseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestRunWithTuners(t *testing.T) {
	if err := run(tiny("-tune", "-series")); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-tune", "-pi")); err != nil {
		t.Fatal(err)
	}
}

func TestRunQoSLevels(t *testing.T) {
	for _, lvl := range []string{"low", "high", "veryhigh"} {
		if err := run(tiny("-qos", lvl)); err != nil {
			t.Fatalf("level %s: %v", lvl, err)
		}
	}
	if err := run(tiny("-qos", "bogus")); err == nil {
		t.Error("bogus QoS level accepted")
	}
}

func TestRunRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trace")
	if err := run(tiny("-record", path)); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v, %v", fi, err)
	}
	if err := run(tiny("-replay", path)); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-replay", filepath.Join(dir, "missing.trace"))); err == nil {
		t.Error("missing replay file accepted")
	}
}

func TestRunInvalidFlags(t *testing.T) {
	if err := run([]string{"-rate", "nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(tiny("-alg", "bogus")); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestRunFailuresAndMigration(t *testing.T) {
	if err := run(tiny("-failures", "0.5", "-repair", "3", "-recompose")); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-migrate")); err != nil {
		t.Fatal(err)
	}
}
