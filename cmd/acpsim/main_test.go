package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func tiny(extra ...string) []string {
	base := []string{"-ipnodes", "300", "-nodes", "60", "-minutes", "10", "-rate", "20"}
	return append(base, extra...)
}

func TestRunBasicSimulation(t *testing.T) {
	if err := run(tiny()); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, alg := range []string{"acp", "Optimal", "sp", "RP", "random", "STATIC"} {
		if err := run(tiny("-alg", alg)); err != nil {
			t.Fatalf("algorithm %s: %v", alg, err)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	got, err := parseAlgorithm("optimal")
	if err != nil || got != core.AlgOptimal {
		t.Errorf("parseAlgorithm(optimal) = %v, %v", got, err)
	}
	if _, err := parseAlgorithm("bogus"); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestRunWithTuners(t *testing.T) {
	if err := run(tiny("-tune", "-series")); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-tune", "-pi")); err != nil {
		t.Fatal(err)
	}
}

func TestRunQoSLevels(t *testing.T) {
	for _, lvl := range []string{"low", "high", "veryhigh"} {
		if err := run(tiny("-qos", lvl)); err != nil {
			t.Fatalf("level %s: %v", lvl, err)
		}
	}
	if err := run(tiny("-qos", "bogus")); err == nil {
		t.Error("bogus QoS level accepted")
	}
}

func TestRunRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trace")
	if err := run(tiny("-record", path)); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file: %v, %v", fi, err)
	}
	if err := run(tiny("-replay", path)); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-replay", filepath.Join(dir, "missing.trace"))); err == nil {
		t.Error("missing replay file accepted")
	}
}

func TestRunInvalidFlags(t *testing.T) {
	if err := run([]string{"-rate", "nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(tiny("-alg", "bogus")); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestRunOutputFlagUnwritablePath(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "no-such-dir", "out")
	for _, flagName := range []string{"-trace-out", "-metrics-out", "-record"} {
		err := run(tiny(flagName, missing))
		if err == nil {
			t.Fatalf("%s with unwritable path accepted", flagName)
		}
		if !strings.Contains(err.Error(), flagName) {
			t.Errorf("%s error %q does not name the flag", flagName, err)
		}
	}
}

// readMetricsText extracts counter values from a WriteText snapshot.
func readMetricsText(t *testing.T, path string) map[string]int64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	counters := make(map[string]int64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 3 && fields[0] == "counter" {
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				t.Fatalf("bad counter line %q: %v", sc.Text(), err)
			}
			counters[fields[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return counters
}

// TestTraceMatchesCounters is the acceptance cross-check: replaying a
// recorded workload with -trace-out must yield a JSONL trace whose
// probe-span counts equal the metrics.Counters probe totals, with every
// span closed.
func TestTraceMatchesCounters(t *testing.T) {
	dir := t.TempDir()
	recorded := filepath.Join(dir, "w.trace")
	if err := run(tiny("-record", recorded)); err != nil {
		t.Fatal(err)
	}
	spans := filepath.Join(dir, "probes.jsonl")
	metricsPath := filepath.Join(dir, "counters.txt")
	if err := run(tiny("-replay", recorded, "-trace-out", spans, "-metrics-out", metricsPath)); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(spans)
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty span trace")
	}
	if leaked := obs.LeakedSpans(events); len(leaked) != 0 {
		t.Fatalf("%d probe spans leaked: %v", len(leaked), leaked)
	}

	var spawned, returned int64
	perRequest := make(map[int64]int64)
	for _, e := range events {
		switch e.Type {
		case obs.EventProbeSpawned:
			spawned++
			perRequest[e.Req]++
		case obs.EventProbeReturned:
			returned++
		}
	}
	counters := readMetricsText(t, metricsPath)
	if got := counters["experiment.messages.probes"]; got != spawned {
		t.Errorf("metrics probes = %d, trace has %d probe.spawned events", got, spawned)
	}
	if got := counters["experiment.messages.probe_returns"]; got != returned {
		t.Errorf("metrics probe returns = %d, trace has %d probe.returned events", got, returned)
	}
	var fromRequests int64
	for _, n := range perRequest {
		fromRequests += n
	}
	if fromRequests != spawned {
		t.Errorf("per-request span counts sum to %d, want %d", fromRequests, spawned)
	}
}

func TestRunFailuresAndMigration(t *testing.T) {
	if err := run(tiny("-failures", "0.5", "-repair", "3", "-recompose")); err != nil {
		t.Fatal(err)
	}
	if err := run(tiny("-migrate")); err != nil {
		t.Fatal(err)
	}
}

func TestRunDistFaultMode(t *testing.T) {
	args := []string{"-dist", "-nodes", "24", "-requests", "8",
		"-fault-drop", "0.1", "-fault-crashes", "1"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dist", "-fault-drop", "2"}); err == nil {
		t.Error("out-of-range drop probability accepted")
	}
}

// TestRunServeObs runs a tiny simulation with the observability server
// up and zero hold: the flag path must bind, print the URL, and shut
// down cleanly with the run.
func TestRunServeObs(t *testing.T) {
	if err := run(tiny("-serve-obs", "127.0.0.1:0")); err != nil {
		t.Fatal(err)
	}
	// An unbindable address fails fast before the simulation starts.
	if err := run(tiny("-serve-obs", "256.0.0.1:bad")); err == nil {
		t.Fatal("unbindable -serve-obs address accepted")
	}
}

// TestRunMultiApp plays a short oracle-audited multi-application
// episode per flag path: a single named family, the "all" spelling,
// and an unknown family name.
func TestRunMultiApp(t *testing.T) {
	args := []string{"-multi-app", "-family", "churn", "-tenants", "2",
		"-ticks", "5", "-load", "1"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-multi-app", "-family", "all", "-ticks", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-multi-app", "-family", "bogus"}); err == nil {
		t.Error("unknown scenario family accepted")
	}
}

func TestRunFairnessFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	if err := run([]string{"-fairness", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}
