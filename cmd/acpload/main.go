// Command acpload is a closed/open-loop load generator for the ACP
// session server (acpserve). Each client connection drives full
// session lifecycles — compose, commit, optional hold, teardown —
// and the tool reports committed compositions/sec at saturation plus
// client-side compose latency quantiles (p50/p99/p999), with typed
// rejections (capacity, quota, busy) tallied separately from
// transport errors.
//
// Closed loop (the default) keeps -clients connections each with one
// request in flight — the classic saturation harness. Open loop
// (-rate) fires arrivals on a schedule regardless of completions; the
// -family flag shapes that schedule with one of internal/workload's
// scenario families (flash-crowd, diurnal, churn, ...) so the wire
// path sees the same arrival curves the simulation harness replays.
//
// Usage:
//
//	acpload -addr 127.0.0.1:7433 -clients 8 -duration 30s
//	acpload -addr 127.0.0.1:7433 -rate 50 -duration 1m
//	acpload -addr 127.0.0.1:7433 -family flash-crowd -ticks 40 -load 3
//	acpload -addr 127.0.0.1:7433 -duration 5s -json out.json
//
// -json writes the report in acpbench's baseline format, so saved
// runs diff with `acpbench -compare`.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acpload:", err)
		os.Exit(1)
	}
}

// stats aggregates results across workers.
type stats struct {
	mu        sync.Mutex
	committed int64
	codes     map[string]int64
	transport int64
	overflow  int64 // open-loop arrivals dropped because all clients were busy
	lat       *obs.QHistogram
}

func newStats() *stats {
	return &stats{codes: make(map[string]int64), lat: obs.NewQHistogram()}
}

func (st *stats) code(c string) {
	st.mu.Lock()
	st.codes[c]++
	st.mu.Unlock()
}

// baseline mirrors acpbench's output document so -json reports can be
// compared and gated with `acpbench -compare`.
type baseline struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("acpload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:7433", "acpserve session address")
		clients   = fs.Int("clients", 4, "concurrent client connections")
		duration  = fs.Duration("duration", 10*time.Second, "run length (ignored with -family)")
		rate      = fs.Float64("rate", 0, "open-loop arrivals/sec (0 = closed loop)")
		tenants   = fs.Int("tenants", 2, "tenant identities spread across clients (t0, t1, ...)")
		functions = fs.Int("functions", 16, "server's function catalogue size to draw requests from")
		seed      = fs.Int64("seed", 1, "request-shape seed")
		hold      = fs.Duration("hold", 0, "dwell between commit and teardown")
		familyS   = fs.String("family", "", "shape open-loop arrivals with a workload family (flash-crowd, diurnal, churn, hetero-nodes, zone-outage)")
		ticks     = fs.Int("ticks", 40, "family mode: episode length in ticks")
		load      = fs.Float64("load", 2, "family mode: base arrivals per tenant per tick")
		tickDur   = fs.Duration("tick", 200*time.Millisecond, "family mode: real duration of one tick")
		jsonPath  = fs.String("json", "", "write an acpbench-format baseline here")
		minCommit = fs.Int64("min-committed", 0, "fail unless at least this many sessions committed (CI gate)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *clients < 1 || *tenants < 1 || *functions < 1 {
		return errors.New("-clients, -tenants, and -functions must be >= 1")
	}

	// Arrival schedule: nil = closed loop; otherwise a token stream the
	// workers consume. Tokens beyond the buffer are dropped and counted
	// — an open loop never queues unboundedly behind a slow server.
	var arrivals chan struct{}
	mode := "closed loop"
	var plan *workload.MultiAppPlan
	if *familyS != "" {
		fam, err := workload.ParseFamily(*familyS)
		if err != nil {
			return err
		}
		plan, err = workload.NewMultiAppPlan(workload.MultiAppPlanConfig{
			Family:   fam,
			Seed:     *seed,
			Tenants:  *tenants,
			Ticks:    *ticks,
			Load:     *load,
			Tick:     *tickDur,
			NumNodes: 64,
		})
		if err != nil {
			return err
		}
		arrivals = make(chan struct{}, 256)
		mode = "family " + *familyS
		*duration = time.Duration(*ticks) * *tickDur
	} else if *rate > 0 {
		arrivals = make(chan struct{}, 256)
		mode = fmt.Sprintf("open loop %.1f/s", *rate)
	}

	st := newStats()
	start := time.Now()
	deadline := start.Add(*duration)

	if arrivals != nil {
		go func() {
			defer close(arrivals)
			if plan != nil {
				producePlan(plan, arrivals, st)
				return
			}
			produceRate(*rate, deadline, arrivals, st)
		}()
	}

	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &worker{
				addr:     *addr,
				tenant:   fmt.Sprintf("t%d", i%*tenants),
				rng:      rand.New(rand.NewSource(*seed + int64(i))),
				fns:      *functions,
				hold:     *hold,
				deadline: deadline,
				arrivals: arrivals,
				st:       st,
			}
			w.loop()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(stdout, mode, *clients, elapsed, st)
	if *jsonPath != "" {
		if err := writeBaseline(*jsonPath, mode, elapsed, st); err != nil {
			return err
		}
	}
	if st.committed < *minCommit {
		return fmt.Errorf("committed %d sessions, need at least %d", st.committed, *minCommit)
	}
	return nil
}

// produceRate emits arrivals at a constant rate until the deadline.
func produceRate(rate float64, deadline time.Time, arrivals chan<- struct{}, st *stats) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for now := range tick.C {
		if now.After(deadline) {
			return
		}
		select {
		case arrivals <- struct{}{}:
		default:
			st.mu.Lock()
			st.overflow++
			st.mu.Unlock()
		}
	}
}

// producePlan replays a workload family's per-tick arrival counts on
// the wall clock: each tick's aggregate arrivals are spread evenly
// across the tick's real duration.
func producePlan(plan *workload.MultiAppPlan, arrivals chan<- struct{}, st *stats) {
	for t := 0; t < plan.Ticks; t++ {
		count := 0
		for i := range plan.Tenants {
			count += plan.Tenants[i].Arrivals[t]
		}
		if count == 0 {
			time.Sleep(plan.Tick)
			continue
		}
		gap := plan.Tick / time.Duration(count)
		for n := 0; n < count; n++ {
			select {
			case arrivals <- struct{}{}:
			default:
				st.mu.Lock()
				st.overflow++
				st.mu.Unlock()
			}
			time.Sleep(gap)
		}
	}
}

// worker drives one connection's session lifecycles.
type worker struct {
	addr     string
	tenant   string
	rng      *rand.Rand
	fns      int
	hold     time.Duration
	deadline time.Time
	arrivals <-chan struct{} // nil = closed loop
	st       *stats

	cl *server.Client
}

func (w *worker) loop() {
	defer func() {
		if w.cl != nil {
			_ = w.cl.Close()
		}
	}()
	for time.Now().Before(w.deadline) {
		if w.arrivals != nil {
			if _, ok := <-w.arrivals; !ok {
				return
			}
		}
		if !w.cycle() {
			// Transport trouble: drop the connection and redial next
			// round (the server has already released our sessions).
			if w.cl != nil {
				_ = w.cl.Close()
				w.cl = nil
			}
		}
	}
}

// connect (re)establishes the session dialogue.
func (w *worker) connect() bool {
	if w.cl != nil {
		return true
	}
	cl, err := server.Dial(w.addr)
	if err != nil {
		w.st.mu.Lock()
		w.st.transport++
		w.st.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
		return false
	}
	if resp, err := cl.Hello(w.tenant); err != nil || !resp.OK {
		_ = cl.Close()
		w.st.mu.Lock()
		w.st.transport++
		w.st.mu.Unlock()
		return false
	}
	w.cl = cl
	return true
}

// cycle runs one compose→commit→teardown lifecycle. false means the
// transport failed and the connection should be rebuilt.
func (w *worker) cycle() bool {
	if !w.connect() {
		return false
	}
	length := 2 + w.rng.Intn(3)
	fns := make([]int, length)
	for i := range fns {
		fns[i] = w.rng.Intn(w.fns)
	}
	req := server.Request{
		Functions:     fns,
		CPU:           2 + w.rng.Float64()*6,
		MemoryMB:      20 + w.rng.Float64()*40,
		Delay:         1e5,
		LossProb:      0.9,
		BandwidthKbps: 20 + w.rng.Float64()*40,
	}
	composeStart := time.Now()
	resp, err := w.cl.Compose(req)
	if err != nil {
		w.st.mu.Lock()
		w.st.transport++
		w.st.mu.Unlock()
		return false
	}
	w.st.lat.Observe(float64(time.Since(composeStart)) / float64(time.Millisecond))
	if !resp.OK {
		w.st.code(resp.Code)
		return true
	}
	if cm, err := w.cl.Commit(resp.Session); err != nil || !cm.OK {
		w.st.mu.Lock()
		w.st.transport++
		w.st.mu.Unlock()
		return false
	}
	w.st.mu.Lock()
	w.st.committed++
	w.st.mu.Unlock()
	if w.hold > 0 {
		time.Sleep(w.hold)
	}
	if td, err := w.cl.Teardown(resp.Session); err != nil || !td.OK {
		w.st.mu.Lock()
		w.st.transport++
		w.st.mu.Unlock()
		return false
	}
	return true
}

func report(w io.Writer, mode string, clients int, elapsed time.Duration, st *stats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rate := float64(st.committed) / elapsed.Seconds()
	fmt.Fprintf(w, "acpload: %s, %d clients, %.1fs\n", mode, clients, elapsed.Seconds())
	fmt.Fprintf(w, "committed  %d sessions   %.1f compositions/sec\n", st.committed, rate)
	fmt.Fprintf(w, "latency    p50 %.2fms  p99 %.2fms  p999 %.2fms  max %.2fms\n",
		st.lat.Quantile(0.5), st.lat.Quantile(0.99), st.lat.Quantile(0.999), st.lat.Max())
	fmt.Fprintf(w, "rejected   capacity %d, quota %d, busy %d\n",
		st.codes[server.CodeCapacity], st.codes[server.CodeQuota], st.codes[server.CodeBusy])
	if st.transport > 0 || st.overflow > 0 {
		fmt.Fprintf(w, "trouble    transport errors %d, open-loop overflow %d\n", st.transport, st.overflow)
	}
}

func writeBaseline(path, mode string, elapsed time.Duration, st *stats) error {
	st.mu.Lock()
	doc := baseline{
		Context: map[string]string{"tool": "acpload", "mode": mode},
		Benchmarks: []benchmark{{
			Name:       "acpload/compose",
			Iterations: st.committed,
			Metrics: map[string]float64{
				"compositions/sec":  float64(st.committed) / elapsed.Seconds(),
				"p50-ms":            st.lat.Quantile(0.5),
				"p99-ms":            st.lat.Quantile(0.99),
				"p999-ms":           st.lat.Quantile(0.999),
				"max-ms":            st.lat.Max(),
				"rejected-capacity": float64(st.codes[server.CodeCapacity]),
				"rejected-quota":    float64(st.codes[server.CodeQuota]),
				"rejected-busy":     float64(st.codes[server.CodeBusy]),
				"transport-errors":  float64(st.transport),
			},
		}},
	}
	st.mu.Unlock()
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
