package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runtime"
	"repro/internal/server"
)

// startServer boots an in-process session server to load against.
func startServer(t *testing.T) string {
	t.Helper()
	cfg := runtime.DefaultConfig()
	cfg.IPNodes = 128
	cfg.OverlayNodes = 24
	cfg.NeighborsPerNode = 4
	cfg.NumFunctions = 8
	cfg.ComponentsPerNode = 3
	c, err := runtime.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	srv, err := server.Listen("127.0.0.1:0", server.Config{Cluster: c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv.Addr()
}

func TestClosedLoopReportsThroughput(t *testing.T) {
	addr := startServer(t)
	out := &strings.Builder{}
	jsonPath := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-addr", addr, "-clients", "2", "-duration", "500ms",
		"-functions", "8", "-min-committed", "1", "-json", jsonPath,
	}, out)
	if err != nil {
		t.Fatalf("acpload: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"compositions/sec", "p50", "p99", "p999", "rejected"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc baseline
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("baseline not JSON: %v\n%s", err, data)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "acpload/compose" {
		t.Fatalf("baseline = %+v", doc)
	}
	b := doc.Benchmarks[0]
	if b.Iterations < 1 || b.Metrics["compositions/sec"] <= 0 {
		t.Fatalf("no throughput recorded: %+v", b)
	}
	for _, m := range []string{"p50-ms", "p99-ms", "p999-ms"} {
		if _, ok := b.Metrics[m]; !ok {
			t.Errorf("baseline missing metric %q: %+v", m, b.Metrics)
		}
	}
}

func TestFamilyModeDrivesArrivals(t *testing.T) {
	addr := startServer(t)
	out := &strings.Builder{}
	err := run([]string{
		"-addr", addr, "-clients", "2", "-functions", "8",
		"-family", "flash-crowd", "-ticks", "4", "-tick", "50ms", "-load", "2",
		"-min-committed", "1",
	}, out)
	if err != nil {
		t.Fatalf("acpload family mode: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "family flash-crowd") {
		t.Errorf("report missing family mode line:\n%s", out.String())
	}
}

func TestMinCommittedGate(t *testing.T) {
	// Nothing listens here: all cycles fail on transport, so the gate
	// must trip.
	out := &strings.Builder{}
	err := run([]string{
		"-addr", "127.0.0.1:1", "-clients", "1", "-duration", "100ms",
		"-min-committed", "1",
	}, out)
	if err == nil || !strings.Contains(err.Error(), "need at least") {
		t.Fatalf("gate did not trip: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	out := &strings.Builder{}
	if err := run([]string{"positional"}, out); err == nil {
		t.Fatal("positional argument accepted")
	}
	if err := run([]string{"-clients", "0"}, out); err == nil {
		t.Fatal("zero clients accepted")
	}
	if err := run([]string{"-family", "nope", "-addr", "127.0.0.1:1"}, out); err == nil {
		t.Fatal("unknown family accepted")
	}
}
