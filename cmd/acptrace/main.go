// Command acptrace summarises a probe-lifecycle trace recorded with
// acpsim -trace-out (or any obs.JSONLSink): per-request span accounting,
// the prune-reason taxonomy, and span-leak detection.
//
// Usage:
//
//	acpsim -trace-out probes.jsonl && acptrace probes.jsonl
//	acptrace -requests probes.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("acptrace", flag.ContinueOnError)
	perReq := fs.Bool("requests", false, "print the per-request span table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() > 1 {
		return fmt.Errorf("expected at most one trace file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	events, err := obs.ReadEvents(in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", name)
	}

	s := summarise(events)
	fmt.Fprintf(w, "trace            %s: %d events, %d requests\n", name, len(events), len(s.requests))
	fmt.Fprintf(w, "spans            %d spawned, %d returned, %d forwarded, %d dropped, %d pruned in flight\n",
		s.spawned, s.returned, s.forwarded, s.dropped, s.prunedInFlight)
	fmt.Fprintf(w, "selection        %d candidates cut before send (%d attributed to a parent probe)\n",
		s.prunedPreSend, s.prunedWithParent)
	fmt.Fprintf(w, "decisions        %d committed, %d rolled back\n", s.committed, s.rolledBack)
	if len(s.pruneReasons) > 0 {
		fmt.Fprintln(w, "prune reasons:")
		for _, reason := range sortedReasonKeys(s.pruneReasons) {
			fmt.Fprintf(w, "  %-16s %d\n", reason, s.pruneReasons[reason])
		}
	}
	if s.drifts > 0 || s.recoveries > 0 {
		fmt.Fprintf(w, "qos drift        %d exceeded, %d recovered\n", s.drifts, s.recoveries)
	}
	if s.lostEvents > 0 {
		fmt.Fprintf(w, "TRACE GAPS       %d events lost to subscriber ring overflow\n", s.lostEvents)
	}
	if leaked := obs.LeakedSpans(events); len(leaked) > 0 {
		fmt.Fprintf(w, "LEAKED SPANS     %d probes never closed: %v\n", len(leaked), leaked)
	} else {
		fmt.Fprintln(w, "span check       every spawned probe span closed")
	}

	printDurations(w, events)

	if *perReq {
		fmt.Fprintln(w, "\nper-request spans (request, spawned, returned, pruned):")
		for _, id := range sortedRequestIDs(s.requests) {
			r := s.requests[id]
			fmt.Fprintf(w, "  %6d  %4d  %4d  %4d\n", id, r.spawned, r.returned, r.pruned)
		}
	}
	return nil
}

type requestSummary struct {
	spawned  int
	returned int
	pruned   int
}

type summary struct {
	spawned, returned, forwarded, dropped int
	prunedInFlight                        int
	// prunedPreSend counts candidates cut by per-hop selection before a
	// probe was ever sent to them (probe id 0); prunedWithParent is the
	// subset attributed to a live parent probe's span via Event.Parent
	// rather than to the walk root.
	prunedPreSend         int
	prunedWithParent      int
	committed, rolledBack int
	drifts, recoveries    int
	lostEvents            int
	pruneReasons          map[obs.Reason]int
	requests              map[int64]*requestSummary
}

func summarise(events []obs.Event) summary {
	s := summary{
		pruneReasons: make(map[obs.Reason]int),
		requests:     make(map[int64]*requestSummary),
	}
	req := func(id int64) *requestSummary {
		r, ok := s.requests[id]
		if !ok {
			r = &requestSummary{}
			s.requests[id] = r
		}
		return r
	}
	for _, e := range events {
		switch e.Type {
		case obs.EventRequestReceived:
			req(e.Req)
		case obs.EventProbeSpawned:
			s.spawned++
			req(e.Req).spawned++
		case obs.EventProbeReturned:
			s.returned++
			req(e.Req).returned++
		case obs.EventProbeForwarded:
			s.forwarded++
		case obs.EventProbeDropped:
			s.dropped++
			s.pruneReasons[e.Reason]++
		case obs.EventCandidatePruned:
			s.pruneReasons[e.Reason]++
			req(e.Req).pruned++
			if e.Probe != 0 {
				s.prunedInFlight++
			} else {
				s.prunedPreSend++
				if e.Parent != 0 {
					s.prunedWithParent++
				}
			}
		case obs.EventCommitted:
			s.committed++
		case obs.EventRolledBack:
			s.rolledBack++
		case obs.EventQoSDrift:
			if e.Reason == obs.ReasonDriftExceeded {
				s.drifts++
			} else {
				s.recoveries++
			}
		case obs.EventTraceDropped:
			s.lostEvents += e.Count
		}
	}
	return s
}

// printDurations reports per-span-kind duration quantiles. Three kinds
// of span live in a trace: probe spans (spawned -> returned; forwarded,
// pruned, and dropped probes end without a walk RTT), request spans
// (received -> decided, the collection window), and hold spans
// (acquired -> released, the transient-allocation lifetime).
// Probe durations prefer the closing event's recorded latencyMs (the
// modeled RTT — the simulator composes a request at one simulated
// instant, so its timestamp deltas are zero); request and hold spans
// use event timestamp deltas, which are wall time for dist traces.
func printDurations(w io.Writer, events []obs.Event) {
	probes := obs.NewQHistogram()
	requests := obs.NewQHistogram()
	holds := obs.NewQHistogram()

	probeOpen := make(map[int64]int64)
	reqOpen := make(map[int64]int64)
	reqClosed := make(map[int64]bool)
	// req -> node -> open hold timestamps; a release with node -1 drops
	// the request's holds everywhere (the simulator's release path).
	holdOpen := make(map[int64]map[int][]int64)

	ms := func(fromMicros, toMicros int64) float64 {
		return float64(toMicros-fromMicros) / 1000
	}
	for _, e := range events {
		switch {
		case e.OpensSpan():
			if _, ok := probeOpen[e.Probe]; !ok {
				probeOpen[e.Probe] = e.AtMicros
			}
		case e.ClosesSpan():
			at, ok := probeOpen[e.Probe]
			delete(probeOpen, e.Probe)
			// Only a returned probe completed a walk; forwarded, pruned,
			// and dropped spans end without a meaningful RTT.
			if ok && e.Type == obs.EventProbeReturned {
				if e.LatencyMs > 0 {
					probes.Observe(e.LatencyMs)
				} else {
					probes.Observe(ms(at, e.AtMicros))
				}
			}
		}
		switch e.Type {
		case obs.EventRequestReceived:
			if _, ok := reqOpen[e.Req]; !ok {
				reqOpen[e.Req] = e.AtMicros
			}
		case obs.EventDecided, obs.EventCommitted, obs.EventRolledBack:
			// The first decision-ish event closes the request span; the
			// simulator emits committed/rolledback without a decided.
			if at, ok := reqOpen[e.Req]; ok && !reqClosed[e.Req] {
				reqClosed[e.Req] = true
				requests.Observe(ms(at, e.AtMicros))
			}
		case obs.EventHoldAcquired:
			if holdOpen[e.Req] == nil {
				holdOpen[e.Req] = make(map[int][]int64)
			}
			holdOpen[e.Req][e.Node] = append(holdOpen[e.Req][e.Node], e.AtMicros)
		case obs.EventHoldReleased:
			if e.Node >= 0 {
				for _, at := range holdOpen[e.Req][e.Node] {
					holds.Observe(ms(at, e.AtMicros))
				}
				delete(holdOpen[e.Req], e.Node)
				continue
			}
			for _, opens := range holdOpen[e.Req] {
				for _, at := range opens {
					holds.Observe(ms(at, e.AtMicros))
				}
			}
			delete(holdOpen, e.Req)
		}
	}

	fmt.Fprintln(w, "\nspan durations (ms):")
	fmt.Fprintf(w, "  %-10s %7s %9s %9s %9s %9s\n", "kind", "count", "p50", "p99", "p999", "max")
	for _, row := range []struct {
		kind string
		h    *obs.QHistogram
	}{{"probe", probes}, {"request", requests}, {"hold", holds}} {
		if row.h.Count() == 0 {
			fmt.Fprintf(w, "  %-10s %7d\n", row.kind, 0)
			continue
		}
		fmt.Fprintf(w, "  %-10s %7d %9.3f %9.3f %9.3f %9.3f\n", row.kind, row.h.Count(),
			row.h.Quantile(0.5), row.h.Quantile(0.99), row.h.Quantile(0.999), row.h.Max())
	}
}

func sortedReasonKeys(m map[obs.Reason]int) []obs.Reason {
	out := make([]obs.Reason, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRequestIDs(m map[int64]*requestSummary) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
