// Command acptrace summarises a probe-lifecycle trace recorded with
// acpsim -trace-out (or any obs.JSONLSink): per-request span accounting,
// the prune-reason taxonomy, and span-leak detection.
//
// Usage:
//
//	acpsim -trace-out probes.jsonl && acptrace probes.jsonl
//	acptrace -requests probes.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acptrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("acptrace", flag.ContinueOnError)
	perReq := fs.Bool("requests", false, "print the per-request span table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var in io.Reader = os.Stdin
	name := "stdin"
	if fs.NArg() > 1 {
		return fmt.Errorf("expected at most one trace file, got %d", fs.NArg())
	}
	if fs.NArg() == 1 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = fs.Arg(0)
	}
	events, err := obs.ReadEvents(in)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty trace", name)
	}

	s := summarise(events)
	fmt.Fprintf(w, "trace            %s: %d events, %d requests\n", name, len(events), len(s.requests))
	fmt.Fprintf(w, "spans            %d spawned, %d returned, %d forwarded, %d dropped, %d pruned in flight\n",
		s.spawned, s.returned, s.forwarded, s.dropped, s.prunedInFlight)
	fmt.Fprintf(w, "selection        %d candidates cut before send (%d attributed to a parent probe)\n",
		s.prunedPreSend, s.prunedWithParent)
	fmt.Fprintf(w, "decisions        %d committed, %d rolled back\n", s.committed, s.rolledBack)
	if len(s.pruneReasons) > 0 {
		fmt.Fprintln(w, "prune reasons:")
		for _, reason := range sortedReasonKeys(s.pruneReasons) {
			fmt.Fprintf(w, "  %-16s %d\n", reason, s.pruneReasons[reason])
		}
	}
	if leaked := obs.LeakedSpans(events); len(leaked) > 0 {
		fmt.Fprintf(w, "LEAKED SPANS     %d probes never closed: %v\n", len(leaked), leaked)
	} else {
		fmt.Fprintln(w, "span check       every spawned probe span closed")
	}

	if *perReq {
		fmt.Fprintln(w, "\nper-request spans (request, spawned, returned, pruned):")
		for _, id := range sortedRequestIDs(s.requests) {
			r := s.requests[id]
			fmt.Fprintf(w, "  %6d  %4d  %4d  %4d\n", id, r.spawned, r.returned, r.pruned)
		}
	}
	return nil
}

type requestSummary struct {
	spawned  int
	returned int
	pruned   int
}

type summary struct {
	spawned, returned, forwarded, dropped int
	prunedInFlight                        int
	// prunedPreSend counts candidates cut by per-hop selection before a
	// probe was ever sent to them (probe id 0); prunedWithParent is the
	// subset attributed to a live parent probe's span via Event.Parent
	// rather than to the walk root.
	prunedPreSend         int
	prunedWithParent      int
	committed, rolledBack int
	pruneReasons          map[obs.Reason]int
	requests              map[int64]*requestSummary
}

func summarise(events []obs.Event) summary {
	s := summary{
		pruneReasons: make(map[obs.Reason]int),
		requests:     make(map[int64]*requestSummary),
	}
	req := func(id int64) *requestSummary {
		r, ok := s.requests[id]
		if !ok {
			r = &requestSummary{}
			s.requests[id] = r
		}
		return r
	}
	for _, e := range events {
		switch e.Type {
		case obs.EventRequestReceived:
			req(e.Req)
		case obs.EventProbeSpawned:
			s.spawned++
			req(e.Req).spawned++
		case obs.EventProbeReturned:
			s.returned++
			req(e.Req).returned++
		case obs.EventProbeForwarded:
			s.forwarded++
		case obs.EventProbeDropped:
			s.dropped++
			s.pruneReasons[e.Reason]++
		case obs.EventCandidatePruned:
			s.pruneReasons[e.Reason]++
			req(e.Req).pruned++
			if e.Probe != 0 {
				s.prunedInFlight++
			} else {
				s.prunedPreSend++
				if e.Parent != 0 {
					s.prunedWithParent++
				}
			}
		case obs.EventCommitted:
			s.committed++
		case obs.EventRolledBack:
			s.rolledBack++
		}
	}
	return s
}

func sortedReasonKeys(m map[obs.Reason]int) []obs.Reason {
	out := make([]obs.Reason, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRequestIDs(m map[int64]*requestSummary) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
