package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// writeTrace records a small balanced trace: two requests, three probes,
// one pruned in flight.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "probes.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.New(sink)
	tr.RequestReceived(1, 0)
	tr.ProbeSpawned(1, 1, 0, 2, 1.5)
	tr.ProbeForwarded(1, 1, 0, 2, 1)
	tr.ProbeSpawned(1, 2, 1, 3, 2.5)
	tr.ProbeReturned(1, 2, 3, 4.0)
	tr.Decided(1, 0, "")
	tr.Committed(1, 0)
	tr.RequestReceived(2, 5)
	tr.CandidatePruned(2, 0, 0, 6, obs.ReasonQoS)
	tr.ProbeSpawned(2, 3, 0, 7, 1.0)
	tr.CandidatePruned(2, 3, 0, 7, obs.ReasonResources)
	tr.Decided(2, 5, obs.ReasonNoComposition)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummariseTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", writeTrace(t)}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"2 requests",
		"3 spawned, 1 returned, 1 forwarded, 0 dropped, 1 pruned in flight",
		"1 committed, 0 rolled back",
		"qos",
		"resources",
		"every spawned probe span closed",
		"per-request spans",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestLeakedSpanReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leak.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.New(sink)
	tr.ProbeSpawned(1, 7, 0, 2, 1.0)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LEAKED SPANS") {
		t.Errorf("leak not reported:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Error("two positional args accepted")
	}
}
