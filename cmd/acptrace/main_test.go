package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/qos"
)

// writeTrace records a small balanced trace: two requests, three probes,
// one pruned in flight.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "probes.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.New(sink)
	tr.RequestReceived(1, 0)
	tr.ProbeSpawned(1, 1, 0, 2, 1.5)
	tr.ProbeForwarded(1, 1, 0, 2, 1)
	tr.ProbeSpawned(1, 2, 1, 3, 2.5)
	tr.ProbeReturned(1, 2, 3, 4.0)
	tr.Decided(1, 0, "")
	tr.Committed(1, 0)
	tr.RequestReceived(2, 5)
	tr.CandidatePruned(2, 0, 0, 0, 6, obs.ReasonQoS)
	tr.ProbeSpawned(2, 3, 0, 7, 1.0)
	tr.CandidatePruned(2, 3, 0, 0, 7, obs.ReasonResources)
	tr.CandidatePruned(2, 0, 3, 1, 8, obs.ReasonRiskRank)
	tr.Decided(2, 5, obs.ReasonNoComposition)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummariseTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", writeTrace(t)}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"2 requests",
		"3 spawned, 1 returned, 1 forwarded, 0 dropped, 1 pruned in flight",
		"2 candidates cut before send (1 attributed to a parent probe)",
		"1 committed, 0 rolled back",
		"qos",
		"resources",
		"risk-rank",
		"every spawned probe span closed",
		"per-request spans",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestLeakedSpanReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "leak.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.New(sink)
	tr.ProbeSpawned(1, 7, 0, 2, 1.0)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "LEAKED SPANS") {
		t.Errorf("leak not reported:\n%s", out.String())
	}
}

// simTrace records a real probe-lifecycle trace by driving requests
// through the deterministic simulation harness with a JSONL sink
// attached — the same artifact acpsim -trace-out produces, but seeded
// and instantaneous.
func simTrace(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	cfg := dist.DefaultConfig()
	cfg.Seed = 3
	cfg.IPNodes = 64
	cfg.OverlayNodes = 8
	cfg.NeighborsPerNode = 3
	cfg.NumFunctions = 4
	cfg.ComponentsPerNode = 2
	cfg.Tracer = obs.New(sink)
	s, err := harness.NewSim(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := &component.Request{
			Graph:        component.NewPathGraph([]component.FunctionID{0, 1, 2}),
			QoSReq:       qos.Vector{Delay: 1e5, LossCost: qos.LossCost(0.9)},
			ResReq:       []qos.Resources{{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}},
			BandwidthReq: 20,
			Client:       i,
			Duration:     time.Hour,
		}
		h, err := s.Cluster.ComposeAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.RunToQuiescence(); err != nil {
			t.Fatal(err)
		}
		comp, _, done := h.Poll()
		if !done {
			t.Fatalf("request %d unresolved at quiescence", i)
		}
		if comp != nil {
			s.Cluster.Release(req, comp)
			if err := s.RunToQuiescence(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sim.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSimulatedTrace summarises a trace the simulation harness
// recorded: every span the protocol actually opened must close, and
// the per-request table must cover each simulated request.
func TestSimulatedTrace(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", simTrace(t)}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"3 requests",
		"every spawned probe span closed",
		"per-request spans",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "LEAKED SPANS") {
		t.Errorf("clean simulated trace reported leaked spans:\n%s", got)
	}
}

// TestMalformedLine: a trace cut off mid-record (crashed writer) must
// fail loudly with the offending event's position, not be half-read.
func TestMalformedLine(t *testing.T) {
	good, err := os.ReadFile(simTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	truncated := good[:len(good)-len(good)/3] // slice into the middle of a record
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, &out); err == nil {
		t.Fatal("torn trace file accepted")
	}

	garbled := filepath.Join(t.TempDir(), "garbled.jsonl")
	if err := os.WriteFile(garbled, []byte("{\"type\":\"probe.spawned\"}\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{garbled}, &out); err == nil {
		t.Fatal("garbled trace line accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}, &out); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Error("two positional args accepted")
	}
}

// TestSpanDurationsAndDrift checks the per-span-kind quantile table and
// the qos.drift / trace.dropped accounting added with the live
// observability plane.
func TestSpanDurationsAndDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	tr := obs.New(sink)
	tr.RequestReceived(1, 0)
	tr.ProbeSpawned(1, 1, 0, 2, 1.5)
	tr.HoldAcquired(1, 1, 0, 2)
	tr.ProbeReturned(1, 1, 2, 8.0)
	tr.Decided(1, 0, "")
	tr.HoldReleased(1, -1)
	tr.Committed(1, 0)
	tr.QoSDrift("1", 1.4, 1, obs.ReasonDriftExceeded)
	tr.QoSDrift("1", 0.9, 1, obs.ReasonDriftRecovered)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"qos drift        1 exceeded, 1 recovered",
		"span durations (ms):",
		// The probe span's duration is its recorded walk RTT.
		"probe            1     8.000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "TRACE GAPS") {
		t.Errorf("unexpected trace gap warning:\n%s", got)
	}
}
