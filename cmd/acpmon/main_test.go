package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// monitorRegistry builds a registry resembling a live engine: find
// counters, a latency quantile histogram, and three sessions where
// session 9 violates its Eq. 3 requirement.
func monitorRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("runtime.finds").Add(42)
	r.Gauge("runtime.sessions.active").Set(3)
	q := r.QHistogram("runtime.find.latency_quantiles_ms")
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	phi := r.GaugeVec("session.phi", "session")
	observed := r.GaugeVec("session.qos.observed", "session")
	required := r.GaugeVec("session.qos.required", "session")
	for _, s := range []struct {
		id       string
		phi, obs float64
	}{{"7", 0.4, 0.5}, {"8", 0.8, 0.9}, {"9", 1.6, 1.8}} {
		phi.With(s.id).Set(s.phi)
		observed.With(s.id).Set(s.obs)
		required.With(s.id).Set(1)
	}
	return r
}

func writeSnapshot(t *testing.T, r *obs.Registry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snapshot.json")
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummariseSnapshotFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-once", writeSnapshot(t, monitorRegistry())}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"runtime.finds",
		"runtime.find.latency_quantiles_ms",
		"sessions (3 live, worst 3 by QoS margin)",
		"VIOLATION",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// Worst margin first: session 9 (margin -0.8) leads the table.
	vi := strings.Index(got, "  9 ")
	oi := strings.Index(got, "  7 ")
	if vi < 0 || oi < 0 || vi > oi {
		t.Errorf("violating session 9 not ranked before healthy session 7:\n%s", got)
	}
}

func TestTopKLimitsSessionTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-once", "-top", "1", writeSnapshot(t, monitorRegistry())}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "worst 1 by QoS margin") {
		t.Errorf("missing truncated session header:\n%s", got)
	}
	if strings.Contains(got, "  7 ") {
		t.Errorf("-top 1 still shows healthy session 7:\n%s", got)
	}
}

func TestValidateExpositionFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "metrics.prom")
	f, err := os.Create(good)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WritePrometheus(f, monitorRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate", good}, &out); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("missing ok line: %s", out.String())
	}

	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("# TYPE x counter\nx notanumber\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", bad}, &out); err == nil {
		t.Fatal("malformed exposition accepted")
	}
}

func TestLiveEndpoint(t *testing.T) {
	srv, err := obs.Serve("127.0.0.1:0", obs.ServeConfig{Registry: monitorRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var out strings.Builder
	if err := run([]string{"-once", srv.URL()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "runtime.finds") {
		t.Errorf("live summary missing counters:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-validate", srv.URL()}, &out); err != nil {
		t.Fatalf("live exposition rejected: %v", err)
	}

	// Two polls exercise the rate column.
	out.Reset()
	if err := run([]string{"-polls", "2", "-interval", "10ms", srv.URL()}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "/s") {
		t.Errorf("second poll missing rate column:\n%s", out.String())
	}
}

// TestElapsedBetweenPrefersServerTimestamps pins the rate base: when
// both scrapes carry a server-stamped instant, rates use the
// server-reported elapsed — a poll that arrived late must not dilute
// the rate — and snapshots without the stamp fall back to the client's
// poll clock.
func TestElapsedBetweenPrefersServerTimestamps(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// The server says exactly 2s elapsed; the client's poll clock saw 5s
	// (a jittery poll). The server wins.
	prev := &obs.Snapshot{AtUnixNanos: t0.UnixNano()}
	cur := &obs.Snapshot{AtUnixNanos: t0.Add(2 * time.Second).UnixNano()}
	if got := elapsedBetween(prev, cur, t0, t0.Add(5*time.Second)); got != 2*time.Second {
		t.Fatalf("server-stamped elapsed = %v, want 2s", got)
	}
	// Unstamped snapshots (old endpoints, saved files): client clock.
	if got := elapsedBetween(&obs.Snapshot{}, &obs.Snapshot{}, t0, t0.Add(5*time.Second)); got != 5*time.Second {
		t.Fatalf("fallback elapsed = %v, want 5s", got)
	}
	// A regressing or partial stamp (server restart) also falls back.
	if got := elapsedBetween(cur, prev, t0, t0.Add(3*time.Second)); got != 3*time.Second {
		t.Fatalf("regressing-stamp elapsed = %v, want 3s", got)
	}
	if got := elapsedBetween(nil, cur, time.Time{}, t0); got != 0 {
		t.Fatalf("first poll elapsed = %v, want 0", got)
	}
}

func TestRunBadArgs(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no target accepted")
	}
	if err := run([]string{"a", "b"}, &out); err == nil {
		t.Fatal("two targets accepted")
	}
	if err := run([]string{"-once", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing snapshot file accepted")
	}
}
