// Command acpmon is a terminal monitor for a live observability plane
// (acpsim -serve-obs, or any obs.Serve endpoint). It polls the
// /metrics.json snapshot and renders the numbers an operator watches:
// composition throughput, find-latency quantiles, and the top-K live
// sessions ranked by how close they sit to their Eq. 3 requirement.
//
// Usage:
//
//	acpmon http://127.0.0.1:9090            # poll every 2s
//	acpmon -once http://127.0.0.1:9090      # one snapshot, then exit
//	acpmon -once snapshot.json              # read a saved /metrics.json
//	acpmon -validate http://127.0.0.1:9090  # scrape /metrics and lint the
//	                                        # Prometheus exposition
//	acpmon -validate metrics.prom           # lint a saved exposition
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acpmon:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("acpmon", flag.ContinueOnError)
	var (
		interval = fs.Duration("interval", 2*time.Second, "poll interval")
		once     = fs.Bool("once", false, "print one summary and exit")
		polls    = fs.Int("polls", 0, "exit after this many polls (0 = forever)")
		topK     = fs.Int("top", 10, "sessions to show, ranked worst margin first")
		validate = fs.Bool("validate", false, "check the /metrics Prometheus exposition instead of summarising")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one endpoint URL or snapshot file, got %d args", fs.NArg())
	}
	target := fs.Arg(0)

	if *validate {
		return runValidate(target, w)
	}

	var prev *obs.Snapshot
	var prevAt time.Time
	for n := 0; ; n++ {
		s, err := fetchSnapshot(target)
		if err != nil {
			return err
		}
		now := time.Now()
		if n > 0 {
			fmt.Fprintln(w)
		}
		summarise(w, s, prev, elapsedBetween(prev, s, prevAt, now), *topK)
		prev, prevAt = s, now
		if *once || !isURL(target) || (*polls > 0 && n+1 >= *polls) {
			return nil
		}
		time.Sleep(*interval)
	}
}

// elapsedBetween returns the time base for counter rates between two
// polls. When both snapshots carry a server-stamped scrape instant
// (/metrics.json since the AtUnixNanos field), the server-reported
// elapsed is authoritative: a poll delayed by scheduling, TCP stalls, or
// a laptop suspend then yields exact rates instead of rates diluted by
// however long the client dawdled. Older endpoints (or saved snapshots)
// without the stamp fall back to the client's own poll clock.
func elapsedBetween(prev, cur *obs.Snapshot, prevAt, curAt time.Time) time.Duration {
	if prev == nil {
		return 0
	}
	if prev.AtUnixNanos != 0 && cur.AtUnixNanos != 0 && cur.AtUnixNanos > prev.AtUnixNanos {
		return time.Duration(cur.AtUnixNanos - prev.AtUnixNanos)
	}
	return curAt.Sub(prevAt)
}

func isURL(target string) bool {
	return strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://")
}

// fetchSnapshot loads a registry snapshot from an obs.Serve endpoint's
// /metrics.json or from a file saved from it.
func fetchSnapshot(target string) (*obs.Snapshot, error) {
	var r io.ReadCloser
	if isURL(target) {
		resp, err := http.Get(strings.TrimSuffix(target, "/") + "/metrics.json")
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("GET /metrics.json: %s", resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(target)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	var s obs.Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%s: decoding snapshot: %w", target, err)
	}
	return &s, nil
}

// runValidate scrapes /metrics (or reads a saved exposition) and
// machine-checks the Prometheus text format — the CI smoke gate.
func runValidate(target string, w io.Writer) error {
	var r io.ReadCloser
	name := target
	if isURL(target) {
		name = strings.TrimSuffix(target, "/") + "/metrics"
		resp, err := http.Get(name)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET /metrics: %s", resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(target)
		if err != nil {
			return err
		}
		r = f
	}
	defer r.Close()
	if err := obs.CheckExposition(r); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Fprintf(w, "ok       %s is valid Prometheus text exposition\n", name)
	return nil
}

// summarise renders one snapshot; when prev is non-nil, counter deltas
// become per-second rates over elapsed.
func summarise(w io.Writer, s, prev *obs.Snapshot, elapsed time.Duration, topK int) {
	fmt.Fprintf(w, "counters (%d):\n", len(s.Counters))
	for _, name := range sortedKeys(s.Counters) {
		v := s.Counters[name]
		if prev != nil && elapsed > 0 {
			rate := float64(v-prev.Counters[name]) / elapsed.Seconds()
			fmt.Fprintf(w, "  %-40s %12d  %8.1f/s\n", name, v, rate)
		} else {
			fmt.Fprintf(w, "  %-40s %12d\n", name, v)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "gauges (%d):\n", len(s.Gauges))
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(w, "  %-40s %12.3f\n", name, s.Gauges[name])
		}
	}
	if len(s.Quantiles) > 0 {
		fmt.Fprintf(w, "latency quantiles (%d):\n", len(s.Quantiles))
		fmt.Fprintf(w, "  %-40s %9s %9s %9s %9s %9s\n", "histogram", "count", "p50", "p99", "p999", "max")
		for _, name := range sortedKeys(s.Quantiles) {
			q := s.Quantiles[name]
			fmt.Fprintf(w, "  %-40s %9d %9.3f %9.3f %9.3f %9.3f\n",
				name, q.Count, q.P50, q.P99, q.P999, q.Max)
		}
	}
	printSessions(w, s, topK)
}

// sessionRow is one live session's QoS standing.
type sessionRow struct {
	session string
	phi     float64
	// margin is required - observed: how much Eq. 3 headroom remains.
	// Negative means the session is in violation.
	margin   float64
	observed float64
}

// printSessions ranks live sessions worst-margin-first from the
// "session.*" gauge vectors the engines publish per composition.
func printSessions(w io.Writer, s *obs.Snapshot, topK int) {
	observed, ok := s.GaugeVecs["session.qos.observed"]
	if !ok || topK <= 0 {
		return
	}
	required := indexVec(s.GaugeVecs["session.qos.required"])
	phi := indexVec(s.GaugeVecs["session.phi"])

	rows := make([]sessionRow, 0, len(observed.Values))
	for _, lv := range observed.Values {
		key := strings.Join(lv.Labels, "/")
		req, ok := required[key]
		if !ok {
			continue
		}
		rows = append(rows, sessionRow{
			session:  key,
			phi:      phi[key],
			margin:   req - lv.Value,
			observed: lv.Value,
		})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].margin != rows[j].margin {
			return rows[i].margin < rows[j].margin
		}
		return rows[i].session < rows[j].session
	})
	shown := len(rows)
	if shown > topK {
		shown = topK
	}
	fmt.Fprintf(w, "sessions (%d live, worst %d by QoS margin):\n", len(rows), shown)
	fmt.Fprintf(w, "  %-16s %10s %10s %10s  %s\n", "session", "phi", "observed", "margin", "state")
	for _, r := range rows[:shown] {
		state := "ok"
		if r.margin < 0 {
			state = "VIOLATION"
		}
		fmt.Fprintf(w, "  %-16s %10.3f %10.3f %10.3f  %s\n", r.session, r.phi, r.observed, r.margin, state)
	}
}

// indexVec maps joined label values to gauge values; nil-safe on a
// missing vector (zero VecSnapshot).
func indexVec(v obs.VecSnapshot) map[string]float64 {
	m := make(map[string]float64, len(v.Values))
	for _, lv := range v.Values {
		m[strings.Join(lv.Labels, "/")] = lv.Value
	}
	return m
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
