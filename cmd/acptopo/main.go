// Command acptopo generates the simulated network substrate and prints
// its statistics: IP-layer power-law degree distribution, overlay mesh
// shape, and virtual-link characteristics. It is the inspection tool for
// the topology underlying every experiment.
//
// Usage:
//
//	acptopo                     # paper defaults: 3200 IP nodes, 400 overlay
//	acptopo -ipnodes 800 -nodes 100 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"repro/internal/overlay"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "acptopo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("acptopo", flag.ContinueOnError)
	var (
		ipNodes   = fs.Int("ipnodes", 3200, "IP-layer node count")
		nodes     = fs.Int("nodes", 400, "overlay node count")
		neighbors = fs.Int("neighbors", 6, "overlay neighbors per node")
		seed      = fs.Int64("seed", 1, "random seed")
		hist      = fs.Bool("hist", false, "print the full degree histogram")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = *ipNodes
	graph, err := topology.Generate(tcfg, rng)
	if err != nil {
		return err
	}
	st := graph.Stats()
	fmt.Printf("IP-layer graph   %d nodes, %d links\n", graph.NumNodes(), graph.NumLinks())
	fmt.Printf("degrees          min=%d max=%d mean=%.2f\n", st.Min, st.Max, st.Mean)
	fmt.Printf("power-law slope  %.2f (log-log least squares; clearly negative = heavy tail)\n", st.PowerLawSlope)
	fmt.Printf("connected        %v\n", graph.Connected())

	if *hist {
		counts := make(map[int]int)
		for v := 0; v < graph.NumNodes(); v++ {
			counts[graph.Degree(v)]++
		}
		degrees := make([]int, 0, len(counts))
		for d := range counts {
			degrees = append(degrees, d)
		}
		sort.Ints(degrees)
		fmt.Println("degree histogram:")
		for _, d := range degrees {
			fmt.Printf("  %4d: %d\n", d, counts[d])
		}
	}

	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = *nodes
	ocfg.NeighborsPerNode = *neighbors
	mesh, err := overlay.Build(graph, ocfg, rng)
	if err != nil {
		return err
	}
	fmt.Printf("\noverlay mesh     %d nodes, %d links\n", mesh.NumNodes(), mesh.NumLinks())

	var (
		minDelay, maxDelay, sumDelay float64
		minBW, maxBW, sumBW          float64
	)
	for id := 0; id < mesh.NumLinks(); id++ {
		lk := mesh.Link(id)
		if id == 0 || lk.QoS.Delay < minDelay {
			minDelay = lk.QoS.Delay
		}
		if lk.QoS.Delay > maxDelay {
			maxDelay = lk.QoS.Delay
		}
		sumDelay += lk.QoS.Delay
		if id == 0 || lk.Capacity < minBW {
			minBW = lk.Capacity
		}
		if lk.Capacity > maxBW {
			maxBW = lk.Capacity
		}
		sumBW += lk.Capacity
	}
	n := float64(mesh.NumLinks())
	fmt.Printf("link delay (ms)  min=%.1f mean=%.1f max=%.1f\n", minDelay, sumDelay/n, maxDelay)
	fmt.Printf("link cap (kbps)  min=%.0f mean=%.0f max=%.0f\n", minBW, sumBW/n, maxBW)

	// Sample virtual links between random node pairs.
	var sumVDelay float64
	var sumHops int
	const samples = 200
	for i := 0; i < samples; i++ {
		a, b := rng.Intn(mesh.NumNodes()), rng.Intn(mesh.NumNodes())
		r, ok := mesh.RouteBetween(a, b)
		if !ok {
			return fmt.Errorf("no route between overlay nodes %d and %d", a, b)
		}
		sumVDelay += r.QoS.Delay
		sumHops += len(r.Links)
	}
	fmt.Printf("virtual links    mean delay=%.1fms mean hops=%.1f (over %d samples)\n",
		sumVDelay/samples, float64(sumHops)/samples, samples)
	return nil
}
