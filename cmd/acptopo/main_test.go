package main

import "testing"

func TestRunSmallTopology(t *testing.T) {
	if err := run([]string{"-ipnodes", "300", "-nodes", "40", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithHistogram(t *testing.T) {
	if err := run([]string{"-ipnodes", "200", "-nodes", "20", "-hist"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInvalidFlags(t *testing.T) {
	if err := run([]string{"-ipnodes", "nope"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-ipnodes", "10", "-nodes", "40"}); err == nil {
		t.Error("overlay larger than IP accepted")
	}
}
