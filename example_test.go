package acp_test

import (
	"fmt"
	"log"

	acp "repro"
)

// Example composes a two-stage stream processing application on an
// in-process cluster and pushes three data units through it.
func Example() {
	cfg := acp.DefaultClusterConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cluster, err := acp.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	cluster.RegisterFunction(1, func(u acp.DataUnit) []acp.DataUnit {
		u.Payload = u.Payload.(int) * 2
		return []acp.DataUnit{u}
	})

	graph := acp.NewPathGraph([]acp.FunctionID{0, 1})
	session, err := cluster.Find(graph,
		acp.QoS{Delay: 1000, LossCost: acp.LossCost(0.1)},
		[]acp.Resources{{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}},
		100)
	if err != nil {
		log.Fatal(err)
	}

	in, out, err := cluster.Process(session)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for i := 1; i <= 3; i++ {
			in <- acp.DataUnit{Seq: int64(i), Payload: i}
		}
		close(in)
	}()
	for u := range out {
		fmt.Println(u.Payload)
	}
	if err := cluster.Close(session); err != nil {
		log.Fatal(err)
	}
	// Output:
	// 2
	// 4
	// 6
}
