package experiment

import (
	"testing"
	"time"

	"repro/internal/faults"
)

func TestDistFaultRunFaultFree(t *testing.T) {
	res, err := DistFaultRun(DistFaultConfig{Seed: 1, Requests: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Succeeded + res.Failed + res.Errored; got != 12 {
		t.Errorf("completed %d of 12 requests", got)
	}
	if res.Errored != 0 {
		t.Errorf("%d requests errored", res.Errored)
	}
	if res.Succeeded == 0 {
		t.Error("no request succeeded on a fault-free cluster")
	}
	if !res.Recovered {
		t.Error("fault-free cluster did not return to capacity")
	}
	if res.Dropped != 0 {
		t.Errorf("fault-free run dropped %d messages", res.Dropped)
	}
}

func TestDistFaultRunUnderLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("fault batch in -short mode")
	}
	res, err := DistFaultRun(DistFaultConfig{
		Seed:     2,
		Requests: 24,
		Workers:  6,
		DropProb: 0.2,
		DupProb:  0.05,
		MaxDelay: 2 * time.Millisecond,
		Crashes:  faults.RandomCrashes(2, 32, 2, 300*time.Millisecond, 150*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Succeeded + res.Failed + res.Errored; got != 24 {
		t.Errorf("completed %d of 24 requests", got)
	}
	if res.Errored != 0 {
		t.Errorf("%d requests errored (want clean success/no-composition only)", res.Errored)
	}
	if res.Dropped == 0 {
		t.Error("injector never dropped a message at 20% loss")
	}
	if !res.Recovered {
		t.Error("resources did not recover after the lossy batch")
	}
}

func TestFaultSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	tables, err := FaultSweep(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != len(faultLossGrid) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(faultLossGrid))
	}
	for i, row := range tbl.Rows {
		if row[3] != "0" {
			t.Errorf("loss row %s: %s requests errored", row[0], row[3])
		}
		if row[7] != "yes" {
			t.Errorf("loss row %s: cluster did not recover", row[0])
		}
		if i == 0 && parsePct(t, row[1]) == 0 {
			t.Error("zero success rate with no injected loss")
		}
	}
}
