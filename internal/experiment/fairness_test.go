package experiment

import (
	"strconv"
	"testing"

	"repro/internal/workload"
)

func TestFairnessSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	tables, err := FairnessSweep(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2 (success rate, Jain index)", len(tables))
	}
	families := workload.Families()
	for _, tbl := range tables {
		if len(tbl.Header) != 1+len(families) {
			t.Fatalf("%s: header %v, want load + %d families", tbl.Title, tbl.Header, len(families))
		}
		if len(tbl.Rows) != len(fairnessLoads) {
			t.Fatalf("%s: rows = %d, want %d", tbl.Title, len(tbl.Rows), len(fairnessLoads))
		}
	}
	// Success rates are percentages; Jain cells sit in [1/n, 1].
	for _, row := range tables[0].Rows {
		for _, cell := range row[1:] {
			if v := parsePct(t, cell); v < 0 || v > 100 {
				t.Fatalf("success cell %q outside [0, 100]", cell)
			}
		}
	}
	min := 1/float64(fairnessTenants) - 1e-9
	for _, row := range tables[1].Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("jain cell %q: %v", cell, err)
			}
			if v < min || v > 1+1e-9 {
				t.Fatalf("jain cell %q outside [1/%d, 1]", cell, fairnessTenants)
			}
		}
	}
}
