package experiment

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/workload"
)

// fairnessLoads is the offered-load x-axis of the fairness figure, in
// expected arrivals per tenant per tick.
var fairnessLoads = []float64{0.5, 1, 1.5, 2, 3}

// fairnessTenants is the competing-application count of every cell.
const fairnessTenants = 3

// FairnessSweep produces the concurrent multi-application fairness
// figure (not a paper figure): for every workload scenario family, the
// admission success rate and the Jain fairness index over per-tenant
// success rates as functions of the offered load, under per-tenant
// quota admission and the family's phi objective. Each cell is one
// seeded episode of the oracle-audited multi-app harness (the oracle
// replay itself is exercised by the harness test suite; the figure
// skips it for speed — the runs are identical either way).
func FairnessSweep(o Options) ([]*Table, error) {
	o = o.normalize()
	families := workload.Families()

	succ := &Table{
		Title:  "Fairness: admission success rate (%) vs offered load (arrivals/tenant/tick), 3 tenants, quota admission",
		Header: []string{"load"},
	}
	fair := &Table{
		Title:  "Fairness: Jain index over per-tenant success rates vs offered load, 3 tenants, quota admission",
		Header: []string{"load"},
	}
	for _, f := range families {
		succ.Header = append(succ.Header, f.String())
		fair.Header = append(fair.Header, f.String())
	}

	for _, load := range fairnessLoads {
		succRow := []string{fmt.Sprintf("%.1f", load)}
		fairRow := []string{fmt.Sprintf("%.1f", load)}
		for _, f := range families {
			rep, err := harness.RunMultiAppScenario(harness.MultiAppConfig{
				Seed:    o.Seed,
				Family:  f,
				Tenants: fairnessTenants,
				Ticks:   24,
				Load:    load,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: fairness cell family=%s load=%v: %w", f, load, err)
			}
			rate := 0.0
			if rep.Arrivals > 0 {
				rate = float64(rep.Admitted) / float64(rep.Arrivals)
			}
			succRow = append(succRow, fmtPct(rate))
			fairRow = append(fairRow, fmt.Sprintf("%.3f", rep.Fairness))
		}
		succ.AddRow(succRow...)
		fair.AddRow(fairRow...)
	}
	return []*Table{succ, fair}, nil
}
