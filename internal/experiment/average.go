package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// AverageTables element-wise averages the numeric cells of homologous
// tables — the same figure regenerated under different seeds. The first
// column (the x-axis) and any non-numeric cell must agree across all
// inputs and is passed through. Averaged numeric cells keep the decimal
// precision of the first table's cell.
func AverageTables(runs [][]*Table) ([]*Table, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("experiment: no tables to average")
	}
	if len(runs) == 1 {
		return runs[0], nil
	}
	first := runs[0]
	for i, run := range runs[1:] {
		if len(run) != len(first) {
			return nil, fmt.Errorf("experiment: run %d has %d tables, want %d", i+1, len(run), len(first))
		}
	}

	out := make([]*Table, len(first))
	for ti, tmpl := range first {
		avg := &Table{
			Title:  tmpl.Title + fmt.Sprintf(" (mean of %d seeds)", len(runs)),
			Header: append([]string(nil), tmpl.Header...),
		}
		for ri, row := range tmpl.Rows {
			avgRow := make([]string, len(row))
			for ci, cell := range row {
				merged, err := averageCell(runs, ti, ri, ci, cell)
				if err != nil {
					return nil, err
				}
				avgRow[ci] = merged
			}
			avg.Rows = append(avg.Rows, avgRow)
		}
		out[ti] = avg
	}
	return out, nil
}

func averageCell(runs [][]*Table, ti, ri, ci int, first string) (string, error) {
	v0, numeric := parseNumeric(first)
	if ci == 0 || !numeric {
		// Axis or label cell: every run must agree.
		for i, run := range runs[1:] {
			if ti >= len(run) || ri >= len(run[ti].Rows) || ci >= len(run[ti].Rows[ri]) {
				return "", fmt.Errorf("experiment: run %d table %d is not homologous", i+1, ti)
			}
			if run[ti].Rows[ri][ci] != first {
				return "", fmt.Errorf("experiment: run %d table %d cell (%d,%d) = %q, want %q",
					i+1, ti, ri, ci, run[ti].Rows[ri][ci], first)
			}
		}
		return first, nil
	}
	sum := v0
	for i, run := range runs[1:] {
		if ti >= len(run) || ri >= len(run[ti].Rows) || ci >= len(run[ti].Rows[ri]) {
			return "", fmt.Errorf("experiment: run %d table %d is not homologous", i+1, ti)
		}
		v, ok := parseNumeric(run[ti].Rows[ri][ci])
		if !ok {
			return "", fmt.Errorf("experiment: run %d table %d cell (%d,%d) is not numeric: %q",
				i+1, ti, ri, ci, run[ti].Rows[ri][ci])
		}
		sum += v
	}
	mean := sum / float64(len(runs))
	return strconv.FormatFloat(mean, 'f', decimals(first), 64), nil
}

func parseNumeric(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func decimals(s string) int {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return len(s) - i - 1
	}
	return 0
}

// ReproduceAveraged runs a figure under several consecutive seeds and
// returns the seed-averaged tables. The series figures (8a/8b) average
// per-window values, which smooths their sampling noise.
func ReproduceAveraged(fn FigureFunc, opts Options, seeds int) ([]*Table, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("experiment: seeds %d < 1", seeds)
	}
	opts = opts.normalize()
	runs := make([][]*Table, 0, seeds)
	for s := 0; s < seeds; s++ {
		o := opts
		o.Seed = opts.Seed + int64(s)
		tables, err := fn(o)
		if err != nil {
			return nil, err
		}
		runs = append(runs, tables)
	}
	return AverageTables(runs)
}
