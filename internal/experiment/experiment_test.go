package experiment

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// smallSystem keeps integration tests fast: a 300-node IP graph with a
// 60-node overlay.
func smallSystem(seed int64) SystemConfig {
	cfg := DefaultSystemConfig()
	cfg.Seed = seed
	cfg.IPNodes = 300
	cfg.OverlayNodes = 60
	cfg.NumFunctions = 20
	cfg.NumTemplates = 10
	return cfg
}

func smallPlatform(t *testing.T, seed int64) *Platform {
	t.Helper()
	p, err := BuildPlatform(smallSystem(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func shortRun(rate float64) RunConfig {
	rc := DefaultRunConfig(rate)
	rc.Duration = 15 * time.Minute
	return rc
}

func TestBuildPlatformValidation(t *testing.T) {
	cfg := smallSystem(1)
	cfg.OverlayNodes = cfg.IPNodes + 1
	if _, err := BuildPlatform(cfg); err == nil {
		t.Error("overlay larger than IP accepted")
	}
	cfg = smallSystem(1)
	cfg.ComponentsPerNode = 0
	if _, err := BuildPlatform(cfg); err == nil {
		t.Error("zero components per node accepted")
	}
}

func TestBuildPlatformShape(t *testing.T) {
	p := smallPlatform(t, 1)
	if p.Mesh.NumNodes() != 60 {
		t.Errorf("overlay nodes = %d", p.Mesh.NumNodes())
	}
	if p.Catalog.NumComponents() != 60 {
		t.Errorf("components = %d", p.Catalog.NumComponents())
	}
	if p.Library.Count() != 10 {
		t.Errorf("templates = %d", p.Library.Count())
	}
}

func TestRunBasic(t *testing.T) {
	p := smallPlatform(t, 1)
	res, err := Run(p, shortRun(20))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 100 {
		t.Errorf("requests = %d, want roughly 300", res.Requests)
	}
	if res.SuccessRate <= 0 || res.SuccessRate > 1 {
		t.Errorf("success rate = %v", res.SuccessRate)
	}
	if res.OverheadPerMinute <= 0 {
		t.Errorf("overhead = %v", res.OverheadPerMinute)
	}
	if len(res.SuccessSeries) == 0 {
		t.Error("no success series recorded")
	}
	if res.MeanProbeLatency <= 0 {
		t.Errorf("mean latency = %v", res.MeanProbeLatency)
	}
	if res.MeanPhi <= 0 {
		t.Errorf("mean phi = %v", res.MeanPhi)
	}
}

func TestRunValidation(t *testing.T) {
	p := smallPlatform(t, 1)
	rc := shortRun(20)
	rc.Duration = 0
	if _, err := Run(p, rc); err == nil {
		t.Error("zero duration accepted")
	}
	rc = shortRun(20)
	rc.Algorithm = core.Algorithm(99)
	if _, err := Run(p, rc); err == nil {
		t.Error("bad algorithm accepted")
	}
	rc = shortRun(20)
	rc.Phases = nil
	if _, err := Run(p, rc); err == nil {
		t.Error("empty phases accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := smallPlatform(t, 2)
	r1, err := Run(p, shortRun(30))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(p, shortRun(30))
	if err != nil {
		t.Fatal(err)
	}
	if r1.SuccessRate != r2.SuccessRate || r1.Requests != r2.Requests {
		t.Errorf("identical runs differ: (%v, %d) vs (%v, %d)",
			r1.SuccessRate, r1.Requests, r2.SuccessRate, r2.Requests)
	}
	if r1.Messages != r2.Messages {
		t.Errorf("message counters differ: %v vs %v", r1.Messages, r2.Messages)
	}
}

func TestRunSeedChangesWorkload(t *testing.T) {
	p := smallPlatform(t, 2)
	rc := shortRun(30)
	r1, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	rc.Seed = 99
	r2, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Requests == r2.Requests && r1.Messages == r2.Messages {
		t.Error("different seeds produced identical runs")
	}
}

// TestRunAlgorithmOrdering is the headline sanity check of Figure 6(a):
// under contention, Optimal >= ACP > Random > Static within tolerance.
func TestRunAlgorithmOrdering(t *testing.T) {
	p := smallPlatform(t, 3)
	success := make(map[core.Algorithm]float64)
	for _, alg := range []core.Algorithm{core.AlgOptimal, core.AlgACP, core.AlgRandom, core.AlgStatic} {
		rc := shortRun(15)
		rc.Algorithm = alg
		res, err := Run(p, rc)
		if err != nil {
			t.Fatal(err)
		}
		success[alg] = res.SuccessRate
	}
	const tol = 0.03 // sampling noise on short runs
	if success[core.AlgOptimal]+tol < success[core.AlgACP] {
		t.Errorf("Optimal (%v) below ACP (%v)", success[core.AlgOptimal], success[core.AlgACP])
	}
	// On this small system ACP and Random can be within noise of each
	// other; the robust claims are Optimal > Random and everything >
	// Static.
	if success[core.AlgOptimal] <= success[core.AlgRandom] {
		t.Errorf("Optimal (%v) not above Random (%v)", success[core.AlgOptimal], success[core.AlgRandom])
	}
	if success[core.AlgACP] <= success[core.AlgStatic] {
		t.Errorf("ACP (%v) not above Static (%v)", success[core.AlgACP], success[core.AlgStatic])
	}
	if success[core.AlgRandom] <= success[core.AlgStatic] {
		t.Errorf("Random (%v) not above Static (%v)", success[core.AlgRandom], success[core.AlgStatic])
	}
}

// TestRunOverheadOrdering is the headline sanity check of Figure 6(b).
func TestRunOverheadOrdering(t *testing.T) {
	p := smallPlatform(t, 4)
	overhead := make(map[core.Algorithm]float64)
	for _, alg := range []core.Algorithm{core.AlgOptimal, core.AlgACP} {
		rc := shortRun(20)
		rc.Algorithm = alg
		res, err := Run(p, rc)
		if err != nil {
			t.Fatal(err)
		}
		overhead[alg] = res.OverheadPerMinute
	}
	if overhead[core.AlgOptimal] < 5*overhead[core.AlgACP] {
		t.Errorf("Optimal overhead (%v) not well above ACP (%v)",
			overhead[core.AlgOptimal], overhead[core.AlgACP])
	}
}

func TestRunWithTuner(t *testing.T) {
	p := smallPlatform(t, 5)
	rc := shortRun(25)
	rc.ProbingRatio = 0.1
	tcfg := tuning.DefaultConfig()
	rc.Tuning = &tcfg
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reprofiles == 0 {
		t.Error("tuner never profiled")
	}
	if len(res.RatioSeries) == 0 {
		t.Error("no ratio series recorded")
	}
}

func TestRunDynamicPhases(t *testing.T) {
	p := smallPlatform(t, 6)
	rc := shortRun(0)
	rc.Phases = []workload.Phase{
		{Until: 5 * time.Minute, RatePerMinute: 10},
		{Until: 1 << 62, RatePerMinute: 50},
	}
	rc.Duration = 10 * time.Minute
	rc.SamplePeriod = 5 * time.Minute
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	// ~50 requests in phase 1, ~250 in phase 2.
	if res.Requests < 150 || res.Requests > 450 {
		t.Errorf("requests = %d, want ~300", res.Requests)
	}
}

func TestRunStatePolicies(t *testing.T) {
	p := smallPlatform(t, 7)
	rates := make(map[StatePolicy]float64)
	for _, pol := range []StatePolicy{StateCoarse, StateFresh, StateFrozen} {
		rc := shortRun(25)
		rc.State = pol
		res, err := Run(p, rc)
		if err != nil {
			t.Fatal(err)
		}
		rates[pol] = res.SuccessRate
	}
	// Fresh state cannot be (much) worse than frozen state.
	if rates[StateFresh]+0.05 < rates[StateFrozen] {
		t.Errorf("always-fresh state (%v) below frozen state (%v)", rates[StateFresh], rates[StateFrozen])
	}
}

func TestRunDisableTransient(t *testing.T) {
	p := smallPlatform(t, 8)
	rc := shortRun(30)
	rc.DisableTransient = true
	if _, err := Run(p, rc); err != nil {
		t.Fatalf("run without transient allocation failed: %v", err)
	}
}

func TestWorkloadOverrideApplied(t *testing.T) {
	p := smallPlatform(t, 9)
	rc := shortRun(30)
	// Make every request impossible: success collapses to ~0.
	rc.WorkloadOverride = func(w *workload.Config) {
		w.CPUReqMin = 150
		w.CPUReqMax = 200
	}
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate > 0.01 {
		t.Errorf("success rate = %v with impossible demands", res.SuccessRate)
	}
}

func TestOverheadAccountingPerAlgorithm(t *testing.T) {
	p := smallPlatform(t, 10)
	rc := shortRun(25)
	rc.Algorithm = core.AlgACP
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	// ACP's reported overhead must include state maintenance.
	want := float64(res.Messages.ProbingTotal()+res.Messages.StateUpdates+res.Messages.Aggregations) /
		rc.Duration.Minutes()
	if math.Abs(res.OverheadPerMinute-want) > 1e-9 {
		t.Errorf("ACP overhead = %v, want %v", res.OverheadPerMinute, want)
	}

	rc.Algorithm = core.AlgRP
	res, err = Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	want = float64(res.Messages.ProbingTotal()) / rc.Duration.Minutes()
	if math.Abs(res.OverheadPerMinute-want) > 1e-9 {
		t.Errorf("RP overhead = %v, want %v", res.OverheadPerMinute, want)
	}
}

func TestSessionsDrainAfterRun(t *testing.T) {
	// All sessions end within the run when duration exceeds max session
	// length plus the last arrival: use a long quiet tail.
	p := smallPlatform(t, 11)
	rc := shortRun(0)
	rc.Phases = []workload.Phase{
		{Until: 5 * time.Minute, RatePerMinute: 20},
		{Until: 1 << 62, RatePerMinute: 0.0001}, // effectively silent
	}
	rc.Duration = 25 * time.Minute
	if _, err := Run(p, rc); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMigration(t *testing.T) {
	p := smallPlatform(t, 12)
	pcfg := placement.DefaultConfig()
	pcfg.Period = 2 * time.Minute
	pcfg.UtilizationGap = 0.2

	rc := shortRun(30)
	rc.Migration = &pcfg
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.MigrationMoves == 0 {
		t.Log("no migrations triggered (system stayed balanced)")
	}
	// The shared platform catalog must be untouched: a second run
	// without migration behaves exactly like a fresh platform's run.
	base, err := Run(p, shortRun(30))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(smallPlatform(t, 12), shortRun(30))
	if err != nil {
		t.Fatal(err)
	}
	if base.SuccessRate != fresh.SuccessRate || base.Messages != fresh.Messages {
		t.Error("migration run mutated the shared platform catalog")
	}
}

func TestRunWithFailures(t *testing.T) {
	p := smallPlatform(t, 13)
	rc := shortRun(30)
	rc.FailuresPerMinute = 0.5
	rc.RepairTime = 5 * time.Minute
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures injected at 0.5/min over 15 minutes")
	}
	if res.Disrupted == 0 {
		t.Log("failures hit only idle nodes on this seed")
	}
	if res.Recomposed != 0 {
		t.Errorf("recompositions without RecomposeOnFailure: %d", res.Recomposed)
	}
}

func TestRunFailuresWithRecomposition(t *testing.T) {
	p := smallPlatform(t, 14)
	rc := shortRun(30)
	rc.FailuresPerMinute = 1
	rc.RepairTime = 5 * time.Minute
	rc.RecomposeOnFailure = true
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disrupted > 0 && res.Recomposed == 0 {
		t.Errorf("%d sessions disrupted, none recomposed", res.Disrupted)
	}
	if res.Recomposed > res.Disrupted {
		t.Errorf("recomposed %d > disrupted %d", res.Recomposed, res.Disrupted)
	}
}

func TestRunWithPITuner(t *testing.T) {
	p := smallPlatform(t, 15)
	rc := shortRun(30)
	rc.ProbingRatio = 0.1
	picfg := tuning.DefaultPIConfig()
	rc.PITuning = &picfg
	res, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RatioSeries) == 0 {
		t.Fatal("no ratio series with PI tuner")
	}
	if res.Reprofiles != 0 {
		t.Errorf("PI tuner reported %d reprofiles", res.Reprofiles)
	}
	// Exclusivity check.
	tcfg := tuning.DefaultConfig()
	rc.Tuning = &tcfg
	if _, err := Run(p, rc); err == nil {
		t.Error("both tuners accepted simultaneously")
	}
}

func TestRunSecureWorkload(t *testing.T) {
	p := smallPlatform(t, 16)
	plain := shortRun(25)
	base, err := Run(p, plain)
	if err != nil {
		t.Fatal(err)
	}
	secure := shortRun(25)
	secure.WorkloadOverride = func(w *workload.Config) {
		w.SecureFraction = 1
		w.SecureLevel = 3
	}
	res, err := Run(p, secure)
	if err != nil {
		t.Fatal(err)
	}
	// Demanding level-3 components everywhere must cost success: only a
	// third of components qualify.
	if res.SuccessRate >= base.SuccessRate {
		t.Errorf("security constraint did not reduce success: %v vs %v", res.SuccessRate, base.SuccessRate)
	}
}

func TestRunTraceRecordAndReplay(t *testing.T) {
	p := smallPlatform(t, 17)

	// Record a run's workload.
	var buf bytes.Buffer
	rc := shortRun(20)
	rc.TraceWriter = trace.NewWriter(&buf)
	recorded, err := Run(p, rc)
	if err != nil {
		t.Fatal(err)
	}

	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(records)) != recorded.Requests {
		t.Fatalf("trace has %d records for %d requests", len(records), recorded.Requests)
	}

	// Replaying the trace reproduces the run exactly: same requests at
	// the same times against the same platform.
	replay := shortRun(20)
	replay.Replay = records
	replayed, err := Run(p, replay)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Requests != recorded.Requests {
		t.Errorf("replay issued %d requests, recording had %d", replayed.Requests, recorded.Requests)
	}
	if replayed.SuccessRate != recorded.SuccessRate {
		t.Errorf("replay success %v, recording %v", replayed.SuccessRate, recorded.SuccessRate)
	}
	if replayed.Messages.Probes != recorded.Messages.Probes {
		t.Errorf("replay probes %d, recording %d", replayed.Messages.Probes, recorded.Messages.Probes)
	}
}

func TestRunReplayCutoff(t *testing.T) {
	p := smallPlatform(t, 18)
	var buf bytes.Buffer
	rc := shortRun(20)
	rc.TraceWriter = trace.NewWriter(&buf)
	if _, err := Run(p, rc); err != nil {
		t.Fatal(err)
	}
	records, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Replay with half the duration: later arrivals are dropped.
	replay := shortRun(20)
	replay.Replay = records
	replay.Duration = rc.Duration / 2
	res, err := Run(p, replay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests >= int64(len(records)) {
		t.Errorf("cutoff replay issued %d of %d requests", res.Requests, len(records))
	}
}
