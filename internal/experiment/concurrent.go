package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// RunConcurrent executes independent run configurations against a shared
// platform with up to workers simulations in flight, returning results
// in input order. Every Run call builds its own engine, RNG, ledger,
// global state and composer over the platform's immutable mesh, catalog
// and library, so concurrent runs cannot observe each other; per-run
// results are bit-identical to a serial Run of the same configuration.
//
// Configurations must not share a Tracer: trace clocks are rebound per
// run. workers <= 0 selects GOMAXPROCS. The first error wins; remaining
// runs still drain before it is returned.
func RunConcurrent(p *Platform, rcs []RunConfig, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rcs) {
		workers = len(rcs)
	}
	results := make([]*Result, len(rcs))
	errs := make([]error, len(rcs))
	if workers <= 1 {
		for i := range rcs {
			results[i], errs[i] = Run(p, rcs[i])
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range rcs {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[i], errs[i] = Run(p, rcs[i])
			}(i)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiment: concurrent run %d: %w", i, err)
		}
	}
	return results, nil
}
