package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// tinyOptions shrinks figure runs to CI scale: minimum durations on a
// small IP graph.
func tinyOptions() Options {
	return Options{Seed: 1, DurationScale: 0.01, IPNodes: 800}
}

func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestFigureNamesComplete(t *testing.T) {
	names := FigureNames()
	want := []string{"5a", "5b", "6", "6a", "6b", "7", "7a", "7b", "8a", "8b", "adaptation", "fairness", "faults"}
	if len(names) != len(want) {
		t.Fatalf("FigureNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("FigureNames = %v, want %v", names, want)
		}
	}
}

func TestFigure5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	tables, err := Figure5a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != len(alphaGrid) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(alphaGrid))
	}
	// Success at the largest probing ratio must beat the smallest, for
	// both request rates (the Figure 5 premise).
	for col := 1; col <= 2; col++ {
		lo := parsePct(t, tbl.Rows[0][col])
		hi := parsePct(t, tbl.Rows[len(tbl.Rows)-1][col])
		if hi <= lo {
			t.Errorf("column %d: success at alpha=1 (%v) not above alpha=0.05 (%v)", col, hi, lo)
		}
	}
	// Higher request rate saturates lower.
	last := tbl.Rows[len(tbl.Rows)-1]
	if parsePct(t, last[2]) >= parsePct(t, last[1]) {
		t.Errorf("rate 100 saturation (%v) not below rate 50 (%v)", last[2], last[1])
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	tables, err := Figure6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	succ, ovh := tables[0], tables[1]
	if len(succ.Rows) != 5 || len(ovh.Rows) != 5 {
		t.Fatalf("row counts: %d, %d", len(succ.Rows), len(ovh.Rows))
	}
	// At the highest rate: Optimal ~>= ACP and ACP > Static.
	lastRow := succ.Rows[len(succ.Rows)-1]
	optimal, acp := parsePct(t, lastRow[1]), parsePct(t, lastRow[2])
	static := parsePct(t, lastRow[6])
	if optimal+5 < acp {
		t.Errorf("Optimal (%v) far below ACP (%v)", optimal, acp)
	}
	if acp <= static {
		t.Errorf("ACP (%v) not above Static (%v)", acp, static)
	}
	// Overhead: Optimal >> ACP at every rate.
	for _, row := range ovh.Rows {
		opt := parsePct(t, row[1])
		acpOvh := parsePct(t, row[2])
		if opt < 5*acpOvh {
			t.Errorf("rate %s: Optimal overhead %v not well above ACP %v", row[0], opt, acpOvh)
		}
	}
}

func TestFigure8bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	opts := tinyOptions()
	opts.DurationScale = 0.2 // the adaptation story needs a few windows
	tables, err := Figure8b(opts)
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) < 4 {
		t.Fatalf("too few samples: %d", len(tbl.Rows))
	}
	// The ratio column must vary: the tuner reacts to the load swing.
	ratios := make(map[string]bool)
	for _, row := range tbl.Rows {
		ratios[row[2]] = true
	}
	if len(ratios) < 2 {
		t.Errorf("probing ratio never changed: %v", tbl.Rows)
	}
}

func TestSliceHelper(t *testing.T) {
	tables := []*Table{{Title: "a"}, {Title: "b"}}
	got, err := slice(tables, nil, 1)
	if err != nil || len(got) != 1 || got[0].Title != "b" {
		t.Errorf("slice = %v, %v", got, err)
	}
	if _, err := slice(tables, nil, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:  "Demo",
		Header: []string{"col", "value"},
	}
	tbl.AddRow("x", "1.0")
	tbl.AddRow("longer", "2.0")
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "longer  2.0") {
		t.Errorf("rendered table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Title: "Demo", Header: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	var buf strings.Builder
	if err := tbl.FprintCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# Demo\na,b\n1,2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestAverageTables(t *testing.T) {
	mk := func(v1, v2 string) []*Table {
		tbl := &Table{Title: "T", Header: []string{"x", "y"}}
		tbl.AddRow("10", v1)
		tbl.AddRow("20", v2)
		return []*Table{tbl}
	}
	avg, err := AverageTables([][]*Table{mk("1.0", "3"), mk("2.0", "5")})
	if err != nil {
		t.Fatal(err)
	}
	if got := avg[0].Rows[0][1]; got != "1.5" {
		t.Errorf("averaged cell = %q, want 1.5", got)
	}
	if got := avg[0].Rows[1][1]; got != "4" {
		t.Errorf("integer-precision cell = %q, want 4", got)
	}
	if avg[0].Rows[0][0] != "10" {
		t.Errorf("axis cell changed: %q", avg[0].Rows[0][0])
	}
	if !strings.Contains(avg[0].Title, "mean of 2 seeds") {
		t.Errorf("title = %q", avg[0].Title)
	}
}

func TestAverageTablesMismatch(t *testing.T) {
	a := &Table{Title: "T", Header: []string{"x", "y"}}
	a.AddRow("10", "1")
	b := &Table{Title: "T", Header: []string{"x", "y"}}
	b.AddRow("99", "2") // axis disagrees
	if _, err := AverageTables([][]*Table{{a}, {b}}); err == nil {
		t.Error("axis mismatch accepted")
	}
	if _, err := AverageTables(nil); err == nil {
		t.Error("empty input accepted")
	}
	// Single run passes through untouched.
	out, err := AverageTables([][]*Table{{a}})
	if err != nil || out[0] != a {
		t.Errorf("single-run pass-through failed: %v", err)
	}
}

func TestReproduceAveraged(t *testing.T) {
	calls := 0
	fn := func(o Options) ([]*Table, error) {
		calls++
		tbl := &Table{Title: "T", Header: []string{"x", "y"}}
		tbl.AddRow("1", strconv.FormatInt(o.Seed, 10))
		return []*Table{tbl}, nil
	}
	out, err := ReproduceAveraged(fn, Options{Seed: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("figure ran %d times, want 3", calls)
	}
	// Seeds 10, 11, 12 average to 11.
	if got := out[0].Rows[0][1]; got != "11" {
		t.Errorf("averaged = %q, want 11", got)
	}
	if _, err := ReproduceAveraged(fn, Options{}, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}

func TestAblationRegistry(t *testing.T) {
	m := Ablations()
	want := []string{"failures", "security", "selection", "staleness", "threshold", "transient", "tuners"}
	if len(m) != len(want) {
		t.Fatalf("Ablations has %d entries", len(m))
	}
	for _, name := range want {
		if m[name] == nil {
			t.Errorf("missing ablation %q", name)
		}
	}
}

func TestAblationTransientRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in -short mode")
	}
	tables, err := AblationTransient(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 5 {
		t.Errorf("rows = %d", len(tables[0].Rows))
	}
}

func TestExtensionSecurityMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in -short mode")
	}
	tables, err := ExtensionSecurity(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	first := parsePct(t, rows[0][1])
	last := parsePct(t, rows[len(rows)-1][1])
	if last >= first {
		t.Errorf("all-secure success %v not below open %v", last, first)
	}
}

func TestFigure5bAnd8aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	tables, err := Figure5b(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != len(alphaGrid) {
		t.Errorf("5b rows = %d", len(tables[0].Rows))
	}
	// Strictest QoS column must not beat the loosest at saturation.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	if parsePct(t, last[3]) > parsePct(t, last[1])+2 {
		t.Errorf("very-high QoS (%s) above low QoS (%s)", last[3], last[1])
	}

	tables, err = Figure8a(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) < 2 {
		t.Errorf("8a produced %d samples", len(tables[0].Rows))
	}
}

func TestFigure7TinyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run in -short mode")
	}
	opts := tinyOptions()
	tables, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	succ, ovh := tables[0], tables[1]
	if len(succ.Rows) != 5 || len(ovh.Rows) != 5 {
		t.Fatalf("row counts %d/%d", len(succ.Rows), len(ovh.Rows))
	}
	// Optimal's exhaustive overhead must grow with system size.
	first := parsePct(t, ovh.Rows[0][1])
	lastV := parsePct(t, ovh.Rows[len(ovh.Rows)-1][1])
	if lastV <= first {
		t.Errorf("Optimal overhead did not grow with N: %v -> %v", first, lastV)
	}
}
