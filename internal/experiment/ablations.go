package experiment

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/state"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// ablationRates is the request-rate x-axis shared by the ablation sweeps.
var ablationRates = []float64{20, 40, 60, 80, 100}

// ablationSweep runs ACP across the rate axis once per variant and
// tabulates the success rate.
func ablationSweep(o Options, p *Platform, title string, variants []struct {
	name   string
	mutate func(*RunConfig)
}) (*Table, error) {
	t := &Table{Title: title, Header: []string{"request rate"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	for _, rate := range ablationRates {
		row := []string{fmtRate(rate)}
		for _, v := range variants {
			rc := DefaultRunConfig(rate)
			rc.Seed = o.Seed
			rc.Duration = o.duration(100 * time.Minute)
			v.mutate(&rc)
			res, err := Run(p, rc)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtPct(res.SuccessRate))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationTransient compares ACP with and without transient resource
// allocation (§3.3 step 2).
func AblationTransient(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	t, err := ablationSweep(o, p,
		"Ablation: transient resource allocation (ACP success %, N=400, alpha=0.3)",
		[]struct {
			name   string
			mutate func(*RunConfig)
		}{
			{name: "with holds", mutate: func(rc *RunConfig) {}},
			{name: "without holds", mutate: func(rc *RunConfig) { rc.DisableTransient = true }},
		})
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// AblationStaleness compares the paper's coarse threshold-triggered
// global state against always-fresh and frozen extremes (§3.2).
func AblationStaleness(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	t, err := ablationSweep(o, p,
		"Ablation: global-state freshness (ACP success %, N=400, alpha=0.3)",
		[]struct {
			name   string
			mutate func(*RunConfig)
		}{
			{name: "coarse (paper)", mutate: func(rc *RunConfig) { rc.State = StateCoarse }},
			{name: "always fresh", mutate: func(rc *RunConfig) { rc.State = StateFresh }},
			{name: "frozen", mutate: func(rc *RunConfig) { rc.State = StateFrozen }},
		})
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// AblationSelection compares the per-hop candidate ranking policies of
// §3.5.
func AblationSelection(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name string
		sel  core.SelectionPolicy
	}{
		{name: "risk+congestion", sel: core.SelectRiskThenCongestion},
		{name: "risk only", sel: core.SelectRiskOnly},
		{name: "congestion only", sel: core.SelectCongestionOnly},
		{name: "random", sel: core.SelectRandom},
	}
	variants := make([]struct {
		name   string
		mutate func(*RunConfig)
	}, len(policies))
	for i, pol := range policies {
		sel := pol.sel
		variants[i].name = pol.name
		variants[i].mutate = func(rc *RunConfig) { rc.Selection = sel }
	}
	t, err := ablationSweep(o, p,
		"Ablation: per-hop candidate selection policy (ACP success %, N=400, alpha=0.3)", variants)
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// AblationUpdateThreshold sweeps the global-state update threshold,
// trading maintenance messages against guidance quality (§3.2's knob).
func AblationUpdateThreshold(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	thresholds := []float64{0.02, 0.05, 0.10, 0.25, 0.50}
	t := &Table{
		Title:  "Ablation: global-state update threshold (ACP, N=400, alpha=0.3, rate=80)",
		Header: []string{"threshold", "success %", "state updates/min", "total overhead/min"},
	}
	for _, th := range thresholds {
		rc := DefaultRunConfig(80)
		rc.Seed = o.Seed
		rc.Duration = o.duration(100 * time.Minute)
		gcfg := state.DefaultGlobalConfig()
		gcfg.UpdateThreshold = th
		rc.GlobalStateConfig = gcfg
		res, err := Run(p, rc)
		if err != nil {
			return nil, err
		}
		minutes := rc.Duration.Minutes()
		t.AddRow(
			fmt.Sprintf("%.2f", th),
			fmtPct(res.SuccessRate),
			fmt.Sprintf("%.0f", float64(res.Messages.StateUpdates)/minutes),
			fmt.Sprintf("%.0f", res.OverheadPerMinute),
		)
	}
	return []*Table{t}, nil
}

// ExtensionTuners compares the profiling tuner with the PI controller
// under the Figure 8 dynamic workload (§6 future work (1)).
func ExtensionTuners(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	phases, total := figure8Phases(o)
	run := func(mutate func(*RunConfig)) (*Result, error) {
		rc := DefaultRunConfig(0)
		rc.Seed = o.Seed
		rc.Phases = phases
		rc.Duration = total
		rc.ProbingRatio = 0.1
		rc.MaxProbesPerRequest = probeBudget
		mutate(&rc)
		return Run(p, rc)
	}

	profRes, err := run(func(rc *RunConfig) {
		tcfg := tuning.DefaultConfig()
		tcfg.ErrorThreshold = 0.05
		rc.Tuning = &tcfg
		rc.TraceCap = 100
	})
	if err != nil {
		return nil, err
	}
	piRes, err := run(func(rc *RunConfig) {
		picfg := tuning.DefaultPIConfig()
		rc.PITuning = &picfg
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Extension: profiling tuner vs PI controller (dynamic workload, target 90%)",
		Header: []string{"tuner", "cumulative success %", "overhead/min", "reprofiles"},
	}
	t.AddRow("profiling (paper §3.4)", fmtPct(profRes.SuccessRate),
		fmt.Sprintf("%.0f", profRes.OverheadPerMinute), fmt.Sprintf("%d", profRes.Reprofiles))
	t.AddRow("PI controller (§6)", fmtPct(piRes.SuccessRate),
		fmt.Sprintf("%.0f", piRes.OverheadPerMinute), "0")
	return []*Table{t}, nil
}

// ExtensionResilience measures node-crash handling with and without
// recomposition, and with dynamic placement added.
func ExtensionResilience(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extension: failures and recovery (rate=60, 1 crash/min, 5 min repair)",
		Header: []string{"mode", "success %", "crashes", "disrupted", "recovered"},
	}
	variants := []struct {
		name   string
		mutate func(*RunConfig)
	}{
		{name: "no failures", mutate: func(rc *RunConfig) { rc.FailuresPerMinute = 0 }},
		{name: "crashes", mutate: func(rc *RunConfig) {}},
		{name: "crashes + recompose", mutate: func(rc *RunConfig) { rc.RecomposeOnFailure = true }},
		{name: "crashes + recompose + migration", mutate: func(rc *RunConfig) {
			rc.RecomposeOnFailure = true
			pcfg := placement.DefaultConfig()
			rc.Migration = &pcfg
		}},
	}
	for _, v := range variants {
		rc := DefaultRunConfig(60)
		rc.Seed = o.Seed
		rc.Duration = o.duration(100 * time.Minute)
		rc.FailuresPerMinute = 1
		rc.RepairTime = 5 * time.Minute
		v.mutate(&rc)
		res, err := Run(p, rc)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmtPct(res.SuccessRate),
			fmt.Sprintf("%d", res.Failures),
			fmt.Sprintf("%d", res.Disrupted),
			fmt.Sprintf("%d", res.Recomposed))
	}
	return []*Table{t}, nil
}

// ExtensionSecurity sweeps the fraction of requests demanding hardened
// components (§6 future work (2)).
func ExtensionSecurity(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extension: security-constrained requests (rate=60, level >= 2 of 3)",
		Header: []string{"secure fraction", "success %"},
	}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		rc := DefaultRunConfig(60)
		rc.Seed = o.Seed
		rc.Duration = o.duration(100 * time.Minute)
		rc.MaxProbesPerRequest = probeBudget
		f := frac
		rc.WorkloadOverride = func(w *workload.Config) {
			w.SecureFraction = f
			w.SecureLevel = 2
		}
		res, err := Run(p, rc)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", frac), fmtPct(res.SuccessRate))
	}
	return []*Table{t}, nil
}

// Ablations maps ablation/extension experiment identifiers to runners,
// the companion registry to Figures.
func Ablations() map[string]FigureFunc {
	return map[string]FigureFunc{
		"transient": AblationTransient,
		"staleness": AblationStaleness,
		"selection": AblationSelection,
		"threshold": AblationUpdateThreshold,
		"tuners":    ExtensionTuners,
		"failures":  ExtensionResilience,
		"security":  ExtensionSecurity,
	}
}
