package experiment

import "testing"

// TestRunAdaptationBaselineVsAdapt: with the controller off, violations
// persist for the whole surge; with it on, the same schedule must spend
// strictly fewer session-ticks in violation and actually migrate.
func TestRunAdaptationBaselineVsAdapt(t *testing.T) {
	off, err := RunAdaptation(AdaptationConfig{Seed: 1})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if off.Episodes == 0 || off.ViolationTicks == 0 {
		t.Fatalf("baseline surge schedule degenerate: %+v", off)
	}
	if off.Migrations != 0 {
		t.Fatalf("controller off but %d migrations happened", off.Migrations)
	}
	on, err := RunAdaptation(AdaptationConfig{Seed: 1, Adapt: true})
	if err != nil {
		t.Fatalf("adapt: %v", err)
	}
	if on.Migrations == 0 {
		t.Fatalf("controller on but never migrated: %+v", on)
	}
	if on.ViolationTicks >= off.ViolationTicks {
		t.Fatalf("adaptation did not reduce violation exposure: off %d ticks, on %d ticks",
			off.ViolationTicks, on.ViolationTicks)
	}
}

// TestAdaptationSweepShape checks the figure table is well-formed.
func TestAdaptationSweepShape(t *testing.T) {
	tables, err := AdaptationSweep(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("want 3 mode rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tbl.Header))
		}
	}
}
