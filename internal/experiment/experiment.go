// Package experiment assembles the full simulation stack — topology,
// overlay, component placement, hierarchical state, workload, and the
// composition algorithms — into reproducible runs of the paper's
// evaluation (§4): one runner per figure, each emitting the same rows or
// series the paper plots.
package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/placement"
	"repro/internal/qos"
	"repro/internal/simulator"
	"repro/internal/state"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// SystemConfig sizes the simulated distributed stream processing system
// (§4.1 defaults).
type SystemConfig struct {
	// Seed drives platform construction (topology, overlay, placement,
	// templates).
	Seed int64
	// IPNodes is the IP-layer power-law graph size (paper: 3200).
	IPNodes int
	// OverlayNodes is N, the stream processing node count (paper:
	// 200-600).
	OverlayNodes int
	// NeighborsPerNode is the overlay mesh degree.
	NeighborsPerNode int
	// NumFunctions and ComponentsPerNode control candidate density.
	NumFunctions      int
	ComponentsPerNode int
	// NumTemplates is the application template library size (paper: 20).
	NumTemplates int
	// NodeCapacity is each stream node's end-system resource capacity.
	NodeCapacity qos.Resources
}

// DefaultSystemConfig mirrors §4.1 at the 400-node midpoint.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		Seed:              1,
		IPNodes:           3200,
		OverlayNodes:      400,
		NeighborsPerNode:  6,
		NumFunctions:      component.DefaultNumFunctions,
		ComponentsPerNode: 1,
		NumTemplates:      20,
		NodeCapacity:      qos.Resources{CPU: 100, Memory: 1000},
	}
}

// Platform is the immutable part of a simulated system: the network, the
// component deployment, and the template library. One platform serves
// many runs.
type Platform struct {
	Config  SystemConfig
	Mesh    *overlay.Mesh
	Catalog *component.Catalog
	Library *component.Library
}

// BuildPlatform generates the IP topology, overlay mesh, component
// placement, and template library from the seed.
func BuildPlatform(cfg SystemConfig) (*Platform, error) {
	// Each stage draws from its own derived seed so, e.g., the template
	// library is identical across platforms that differ only in overlay
	// size — the scalability sweep of Figure 7 then varies the system,
	// not the applications.
	stageRng := func(stage int64) *rand.Rand {
		return rand.New(rand.NewSource(cfg.Seed*1_000_003 + stage))
	}

	tcfg := topology.DefaultConfig()
	tcfg.Nodes = cfg.IPNodes
	graph, err := topology.Generate(tcfg, stageRng(1))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = cfg.OverlayNodes
	ocfg.NeighborsPerNode = cfg.NeighborsPerNode
	mesh, err := overlay.Build(graph, ocfg, stageRng(2))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = cfg.NumFunctions
	pcfg.ComponentsPerNode = cfg.ComponentsPerNode
	catalog, err := component.Place(mesh.NumNodes(), pcfg, stageRng(3))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	lcfg := component.DefaultTemplateConfig()
	lcfg.Count = cfg.NumTemplates
	lcfg.NumFunctions = cfg.NumFunctions
	library, err := component.GenerateLibrary(lcfg, stageRng(4))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	return &Platform{Config: cfg, Mesh: mesh, Catalog: catalog, Library: library}, nil
}

// StatePolicy selects the global-state ablation mode.
type StatePolicy int

// Global-state maintenance policies.
const (
	// StateCoarse is the paper's threshold-triggered coarse global state.
	StateCoarse StatePolicy = iota + 1
	// StateFresh force-refreshes the global state before every request —
	// an idealized centralized bound (its messaging cost is NOT modelled).
	StateFresh
	// StateFrozen never updates the global state after start — the
	// fully-stale extreme.
	StateFrozen
)

// RunConfig parameterises one simulation run on a platform.
type RunConfig struct {
	// Seed drives the run's workload and algorithm randomness,
	// independent of the platform seed.
	Seed int64
	// Algorithm and ProbingRatio configure the composer.
	Algorithm    core.Algorithm
	ProbingRatio float64
	// Duration is the simulated time (paper: 100 min steady-state, 150
	// min adaptation).
	Duration time.Duration
	// SamplePeriod is the success-rate sampling window (paper: 5 min).
	SamplePeriod time.Duration
	// Phases is the request-rate schedule; use a single phase for a
	// constant rate.
	Phases []workload.Phase
	// QoSLevel scales request QoS requirements (Figure 5(b)).
	QoSLevel workload.QoSLevel
	// Tuning, when non-nil, enables the paper's profiling probing-ratio
	// tuner (Figure 8(b)); ProbingRatio then only sets the starting
	// point.
	Tuning *tuning.Config
	// PITuning, when non-nil, uses the control-theoretic PI tuner
	// instead (§6 future work). Mutually exclusive with Tuning.
	PITuning *tuning.PIConfig
	// DisableTransient turns off transient resource allocation
	// (ablation).
	DisableTransient bool
	// Selection overrides the per-hop candidate ranking (ablation); zero
	// means the algorithm's natural policy.
	Selection core.SelectionPolicy
	// State selects the global-state ablation policy; zero means
	// StateCoarse.
	State StatePolicy
	// GlobalStateConfig overrides the coarse state parameters; zero
	// value means the paper defaults.
	GlobalStateConfig state.GlobalConfig
	// MaxProbesPerRequest caps probe fan-out (0 = default).
	MaxProbesPerRequest int
	// TraceCap bounds the tuner's replay trace (0 = default 60).
	TraceCap int
	// WorkloadOverride, when non-nil, adjusts the workload configuration
	// after defaults are applied (calibration and ablation hook).
	WorkloadOverride func(*workload.Config)
	// Migration, when non-nil, enables dynamic component placement: a
	// manager periodically migrates components off hot nodes (§6 future
	// work). The run operates on a private clone of the platform catalog.
	Migration *placement.Config
	// FailuresPerMinute injects node crashes at this Poisson rate; a
	// crashed node's components become undiscoverable and its sessions
	// are disrupted. Zero disables failure injection.
	FailuresPerMinute float64
	// RepairTime is how long a failed node stays down (default 10 min).
	RepairTime time.Duration
	// RecomposeOnFailure re-runs composition for sessions disrupted by a
	// node crash, modelling the failure-resilience story of §1.
	RecomposeOnFailure bool
	// TraceWriter, when non-nil, records every arrival as a JSON-lines
	// trace record for later replay.
	TraceWriter *trace.Writer
	// Replay, when non-empty, substitutes the recorded requests for the
	// synthetic workload: each record's request is composed at its
	// recorded arrival time, and Phases is ignored.
	Replay []trace.Record
	// Tracer, when non-nil, receives probe-lifecycle events from the
	// composition engine. Its clock is re-based onto the simulator's
	// virtual time, so event timestamps are simulated microseconds.
	Tracer *obs.Tracer
	// Registry, when non-nil, receives the run's message counters and
	// summary gauges after the run completes. nil disables.
	Registry *obs.Registry
}

// DefaultRunConfig returns the paper's standard efficiency-run settings:
// ACP at alpha=0.3, 100 simulated minutes, 5-minute sampling.
func DefaultRunConfig(ratePerMinute float64) RunConfig {
	return RunConfig{
		Seed:         1,
		Algorithm:    core.AlgACP,
		ProbingRatio: 0.3,
		Duration:     100 * time.Minute,
		SamplePeriod: 5 * time.Minute,
		Phases:       []workload.Phase{{Until: 1 << 62, RatePerMinute: ratePerMinute}},
		QoSLevel:     workload.QoSHigh,
	}
}

// Result aggregates one run's measurements.
type Result struct {
	// SuccessRate is the cumulative composition success rate over every
	// request in the run.
	SuccessRate float64
	// Requests is the number of composition requests issued.
	Requests int64
	// Messages are the raw control-message counters.
	Messages metrics.Counters
	// OverheadPerMinute is the algorithm-appropriate overhead figure:
	// probes (+ returns) for all algorithms, plus global-state update and
	// aggregation messages for the algorithms that consume global state
	// (§4.2's accounting).
	OverheadPerMinute float64
	// PhaseBreakdown attributes control messages to protocol phases.
	PhaseBreakdown PhaseOverhead
	// SuccessSeries samples the success rate per sampling window.
	SuccessSeries []metrics.Point
	// RatioSeries samples the probing ratio per sampling window.
	RatioSeries []metrics.Point
	// MeanProbeLatency is the average probing round trip.
	MeanProbeLatency time.Duration
	// MeanPhi averages the congestion metric of committed compositions.
	MeanPhi float64
	// Reprofiles counts tuner profiling sweeps (0 without tuning).
	Reprofiles int
	// MigrationMoves counts component migrations (0 without migration).
	MigrationMoves int
	// Failures and Disrupted count injected node crashes and the
	// sessions they terminated early.
	Failures  int64
	Disrupted int64
	// Recomposed counts disrupted sessions successfully re-composed.
	Recomposed int64
}

// PhaseOverhead splits a run's control messages into the protocol's
// phases: probing (probes + returns), state maintenance (updates +
// aggregations), commit (confirmations), and discovery.
type PhaseOverhead struct {
	Probing      int64 `json:"probing"`
	StateUpdates int64 `json:"state_updates"`
	Commit       int64 `json:"commit"`
	Discovery    int64 `json:"discovery"`
}

func phaseBreakdown(c metrics.Counters) PhaseOverhead {
	return PhaseOverhead{
		Probing:      c.Probes + c.ProbeReturns,
		StateUpdates: c.StateUpdates + c.Aggregations,
		Commit:       c.Confirmations,
		Discovery:    c.Discovery,
	}
}

func (r *RunConfig) withDefaults() RunConfig {
	cfg := *r
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = 5 * time.Minute
	}
	if cfg.State == 0 {
		cfg.State = StateCoarse
	}
	if cfg.QoSLevel == 0 {
		cfg.QoSLevel = workload.QoSHigh
	}
	if cfg.GlobalStateConfig == (state.GlobalConfig{}) {
		cfg.GlobalStateConfig = state.DefaultGlobalConfig()
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = 60
	}
	if cfg.RepairTime <= 0 {
		cfg.RepairTime = 10 * time.Minute
	}
	return cfg
}

// Run executes one simulation on the platform and reports its results.
func Run(p *Platform, rc RunConfig) (*Result, error) {
	cfg := rc.withDefaults()
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("experiment: Duration %v <= 0", cfg.Duration)
	}

	engine := simulator.New()
	rng := rand.New(rand.NewSource(cfg.Seed))
	counters := &metrics.Counters{}
	ledger := state.NewLedger(p.Mesh, p.Config.NodeCapacity, engine.Now)

	gcfg := cfg.GlobalStateConfig
	if cfg.State == StateFrozen {
		// A threshold just below 1 never fires for realistic loads.
		gcfg.UpdateThreshold = 0.99
	}
	global, err := state.NewGlobal(ledger, p.Mesh, gcfg, counters)
	if err != nil {
		return nil, err
	}

	catalog := p.Catalog
	if cfg.Migration != nil || cfg.FailuresPerMinute > 0 {
		// Mutating features operate on a private copy so the shared
		// platform stays pristine across runs.
		catalog = p.Catalog.Clone()
	}
	if cfg.Tracer != nil {
		// Trace timestamps follow the simulated clock, so a recorded
		// trace replays onto the same timeline the run reports.
		cfg.Tracer.SetClock(engine.Now)
	}
	env := core.Env{
		Mesh:     p.Mesh,
		Catalog:  catalog,
		Registry: discovery.NewRegistry(catalog, p.Mesh.NumNodes(), counters),
		Ledger:   ledger,
		Global:   global,
		Counters: counters,
		Now:      engine.Now,
		Rand:     rng,
		Tracer:   cfg.Tracer,
		Obs:      cfg.Registry,
	}
	ccfg := core.Config{
		Algorithm:           cfg.Algorithm,
		ProbingRatio:        cfg.ProbingRatio,
		HoldTTL:             10 * time.Second,
		TransientAllocation: !cfg.DisableTransient,
		Selection:           cfg.Selection,
		MaxProbesPerRequest: cfg.MaxProbesPerRequest,
	}
	composer, err := core.NewComposer(env, ccfg)
	if err != nil {
		return nil, err
	}

	wcfg := workload.DefaultConfig(p.Library, p.Mesh.NumNodes())
	wcfg.Level = cfg.QoSLevel
	if cfg.WorkloadOverride != nil {
		cfg.WorkloadOverride(&wcfg)
	}
	gen, err := workload.NewGenerator(wcfg, rng)
	if err != nil {
		return nil, err
	}
	var arrivals *workload.Arrivals
	if len(cfg.Replay) == 0 {
		arrivals, err = workload.NewArrivals(cfg.Phases, rng)
		if err != nil {
			return nil, err
		}
	}

	r := &run{
		cfg:      cfg,
		platform: p,
		engine:   engine,
		rng:      rng,
		counters: counters,
		ledger:   ledger,
		global:   global,
		composer: composer,
		catalog:  catalog,
		gen:      gen,
		arrivals: arrivals,
		active:   make(map[int64]*activeSession),
	}
	if cfg.Migration != nil {
		manager, err := placement.NewManager(catalog, ledger, *cfg.Migration, counters)
		if err != nil {
			return nil, err
		}
		r.manager = manager
	}
	if cfg.Tuning != nil && cfg.PITuning != nil {
		return nil, fmt.Errorf("experiment: Tuning and PITuning are mutually exclusive")
	}
	if cfg.Tuning != nil {
		tuner, err := tuning.NewTuner(*cfg.Tuning, r.profileAlpha)
		if err != nil {
			return nil, err
		}
		r.tuner = tuner
	}
	if cfg.PITuning != nil {
		tuner, err := tuning.NewPIController(*cfg.PITuning)
		if err != nil {
			return nil, err
		}
		r.tuner = tuner
	}
	if r.tuner != nil {
		if err := composer.SetProbingRatio(r.tuner.Ratio()); err != nil {
			return nil, err
		}
	}
	return r.execute()
}

// run carries one simulation's mutable state.
type run struct {
	cfg      RunConfig
	platform *Platform
	engine   *simulator.Engine
	rng      *rand.Rand
	counters *metrics.Counters
	ledger   *state.Ledger
	global   *state.Global
	composer *core.Composer
	catalog  *component.Catalog
	gen      *workload.Generator
	arrivals *workload.Arrivals
	tuner    tuning.RatioTuner
	manager  *placement.Manager

	active        map[int64]*activeSession // session id -> live state
	failures      int64
	disrupted     int64
	recomposed    int64
	nextRecompose int64

	sampler      metrics.SuccessSampler
	successSer   metrics.Series
	ratioSer     metrics.Series
	trace        []*component.Request
	totalLatency time.Duration
	latencyCount int64
	totalPhi     float64
	phiCount     int64
	runErr       error
}

func (r *run) fail(err error) {
	if r.runErr == nil {
		r.runErr = err
	}
}

func (r *run) execute() (*Result, error) {
	// Arrival chain: either the synthetic Poisson process or a recorded
	// trace replayed at its original arrival times.
	if len(r.cfg.Replay) > 0 {
		for _, rec := range r.cfg.Replay {
			req, err := rec.Request()
			if err != nil {
				return nil, err
			}
			at := rec.Arrival()
			if at >= r.cfg.Duration {
				continue
			}
			if err := r.engine.ScheduleAt(at, func() { r.composeArrival(req) }); err != nil {
				return nil, err
			}
		}
	} else {
		first := r.arrivals.NextAfter(0)
		if err := r.engine.ScheduleAt(first, r.onArrival); err != nil {
			return nil, err
		}
	}
	// Sampling chain.
	if err := r.engine.Schedule(r.cfg.SamplePeriod, r.onSample); err != nil {
		return nil, err
	}
	// Virtual-link aggregation chain (§3.2).
	if r.cfg.State == StateCoarse {
		if err := r.engine.Schedule(r.global.Period(), r.onAggregate); err != nil {
			return nil, err
		}
	}
	// Dynamic placement chain (§6 future work).
	if r.manager != nil {
		if err := r.engine.Schedule(r.manager.Period(), r.onRebalance); err != nil {
			return nil, err
		}
	}
	// Failure injection chain.
	if r.cfg.FailuresPerMinute > 0 {
		if err := r.engine.Schedule(r.nextFailureGap(), r.onFailure); err != nil {
			return nil, err
		}
	}

	r.engine.RunUntil(r.cfg.Duration)
	if r.runErr != nil {
		return nil, r.runErr
	}
	if r.cfg.TraceWriter != nil {
		if err := r.cfg.TraceWriter.Flush(); err != nil {
			return nil, err
		}
	}

	rate, requests := r.sampler.Cumulative()
	res := &Result{
		SuccessRate:   rate,
		Requests:      requests,
		Messages:      r.counters.Snapshot(),
		SuccessSeries: r.successSer.Points(),
		RatioSeries:   r.ratioSer.Points(),
	}
	minutes := r.cfg.Duration.Minutes()
	res.OverheadPerMinute = float64(overheadMessages(r.cfg.Algorithm, res.Messages)) / minutes
	res.PhaseBreakdown = phaseBreakdown(res.Messages)
	if r.latencyCount > 0 {
		res.MeanProbeLatency = time.Duration(int64(r.totalLatency) / r.latencyCount)
	}
	if r.phiCount > 0 {
		res.MeanPhi = r.totalPhi / float64(r.phiCount)
	}
	if profiler, ok := r.tuner.(*tuning.Tuner); ok {
		res.Reprofiles = profiler.Reprofiles()
	}
	if r.manager != nil {
		res.MigrationMoves = r.manager.Moves()
	}
	res.Failures = r.failures
	res.Disrupted = r.disrupted
	res.Recomposed = r.recomposed
	r.publishInstruments(res)
	return res, nil
}

// publishInstruments mirrors the run's results into the obs registry so
// tools dump one snapshot covering both trace and counters.
func (r *run) publishInstruments(res *Result) {
	reg := r.cfg.Registry
	if reg == nil {
		return
	}
	reg.Counter("experiment.requests").Add(res.Requests)
	reg.Counter("experiment.messages.probes").Add(res.Messages.Probes)
	reg.Counter("experiment.messages.probe_returns").Add(res.Messages.ProbeReturns)
	reg.Counter("experiment.messages.state_updates").Add(res.Messages.StateUpdates)
	reg.Counter("experiment.messages.aggregations").Add(res.Messages.Aggregations)
	reg.Counter("experiment.messages.confirmations").Add(res.Messages.Confirmations)
	reg.Counter("experiment.messages.discovery").Add(res.Messages.Discovery)
	reg.Gauge("experiment.success_rate").Set(res.SuccessRate)
	reg.Gauge("experiment.overhead_per_minute").Set(res.OverheadPerMinute)
	reg.Gauge("experiment.mean_phi").Set(res.MeanPhi)
}

// overheadMessages applies the paper's per-algorithm overhead accounting:
// exhaustive probing for Optimal, probing plus global-state maintenance
// for the global-state consumers (ACP, SP), probing only for RP and the
// direct heuristics.
func overheadMessages(alg core.Algorithm, c metrics.Counters) int64 {
	switch alg {
	case core.AlgACP, core.AlgSP:
		return c.ProbingTotal() + c.StateUpdates + c.Aggregations
	default:
		return c.ProbingTotal()
	}
}

// onArrival composes one freshly drawn request and schedules the next
// arrival.
func (r *run) onArrival() {
	req := r.gen.Next()
	r.composeArrival(req)

	next := r.arrivals.NextAfter(r.engine.Now())
	if next < r.cfg.Duration {
		if err := r.engine.ScheduleAt(next, r.onArrival); err != nil {
			r.fail(err)
		}
	}
}

// composeArrival runs the composition pipeline for one arriving request.
func (r *run) composeArrival(req *component.Request) {
	r.recordTrace(req)
	if r.cfg.TraceWriter != nil {
		if err := r.cfg.TraceWriter.Write(trace.FromRequest(req, r.engine.Now())); err != nil {
			r.fail(err)
			return
		}
	}

	if r.cfg.State == StateFresh {
		r.global.ForceRefresh()
	}

	outcome, err := r.composer.Probe(req)
	if err != nil {
		r.fail(err)
		return
	}
	if !outcome.Success() {
		r.sampler.Record(false)
		return
	}
	r.totalLatency += outcome.Latency
	r.latencyCount++
	// The confirmation travels after the probing round trip; the
	// transient holds bridge the gap.
	if err := r.engine.Schedule(outcome.Latency, func() { r.onConfirm(outcome) }); err != nil {
		r.fail(err)
	}
}

// onConfirm commits a successful composition and schedules session end.
func (r *run) onConfirm(outcome *core.Outcome) {
	if err := r.composer.Commit(outcome); err != nil {
		// Resources changed during the probing round trip (possible only
		// without transient allocation, or after hold expiry).
		r.composer.Abort(outcome.Request.ID)
		r.sampler.Record(false)
		return
	}
	r.sampler.Record(true)
	r.totalPhi += outcome.Best.Phi
	r.phiCount++
	r.trackSession(outcome)
}

// activeSession is the run's record of one committed session.
type activeSession struct {
	request *component.Request
	nodes   []int
}

// trackSession registers a committed session's node usage and schedules
// its natural end.
func (r *run) trackSession(outcome *core.Outcome) {
	id := outcome.Request.ID
	nodes := make([]int, 0, len(outcome.Best.Components))
	for _, cid := range outcome.Best.Components {
		nodes = append(nodes, r.catalog.Component(cid).Node)
	}
	r.active[id] = &activeSession{request: outcome.Request, nodes: nodes}
	err := r.engine.Schedule(outcome.Request.Duration, func() {
		r.composer.Release(id)
		delete(r.active, id)
	})
	if err != nil {
		r.fail(err)
	}
}

// onRebalance fires a dynamic-placement pass.
func (r *run) onRebalance() {
	r.manager.Rebalance()
	if r.engine.Now() < r.cfg.Duration {
		if err := r.engine.Schedule(r.manager.Period(), r.onRebalance); err != nil {
			r.fail(err)
		}
	}
}

// nextFailureGap draws the exponential inter-failure gap.
func (r *run) nextFailureGap() time.Duration {
	gapMinutes := r.rng.ExpFloat64() / r.cfg.FailuresPerMinute
	gap := time.Duration(gapMinutes * float64(time.Minute))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	return gap
}

// onFailure crashes one random up node: its components disappear from
// discovery and every session it carries is disrupted (and optionally
// re-composed). The node repairs after RepairTime.
func (r *run) onFailure() {
	var up []int
	for node := 0; node < r.platform.Mesh.NumNodes(); node++ {
		if r.catalog.NodeIsAvailable(node) {
			up = append(up, node)
		}
	}
	if len(up) > 0 {
		node := up[r.rng.Intn(len(up))]
		r.catalog.SetNodeAvailable(node, false)
		r.failures++
		r.disruptSessionsOn(node)
		if err := r.engine.Schedule(r.cfg.RepairTime, func() {
			r.catalog.SetNodeAvailable(node, true)
		}); err != nil {
			r.fail(err)
		}
	}
	if r.engine.Now() < r.cfg.Duration {
		if err := r.engine.Schedule(r.nextFailureGap(), r.onFailure); err != nil {
			r.fail(err)
		}
	}
}

// disruptSessionsOn terminates the sessions placed on a crashed node.
func (r *run) disruptSessionsOn(node int) {
	var hit []int64
	for id, sess := range r.active {
		for _, n := range sess.nodes {
			if n == node {
				hit = append(hit, id)
				break
			}
		}
	}
	// Sort for deterministic processing order (map iteration is random).
	sort.Slice(hit, func(i, j int) bool { return hit[i] < hit[j] })
	for _, id := range hit {
		sess := r.active[id]
		r.composer.Release(id)
		delete(r.active, id)
		r.disrupted++
		if r.cfg.RecomposeOnFailure {
			r.recompose(sess.request)
		}
	}
}

// recompose re-runs composition for a disrupted session: the same
// function graph and requirements under a fresh request identity,
// counting a recovery on success. Recoveries do not feed the
// success-rate sampler: the paper's u(t) measures first-time
// composition.
func (r *run) recompose(original *component.Request) {
	r.nextRecompose++
	replay := *original
	replay.ID = 1_000_000_000 + r.nextRecompose
	outcome, err := r.composer.Probe(&replay)
	if err != nil {
		r.fail(err)
		return
	}
	if !outcome.Success() {
		return
	}
	if err := r.composer.Commit(outcome); err != nil {
		r.composer.Abort(replay.ID)
		return
	}
	r.recomposed++
	r.trackSession(outcome)
}

// onSample closes a sampling window: record the series, drive the tuner,
// and reschedule.
func (r *run) onSample() {
	rate, n := r.sampler.Roll()
	if n > 0 {
		r.successSer.Add(r.engine.Now(), rate)
	}
	if r.tuner != nil && n > 0 {
		if r.tuner.Observe(rate) {
			if err := r.composer.SetProbingRatio(r.tuner.Ratio()); err != nil {
				r.fail(err)
			}
		}
		r.ratioSer.Add(r.engine.Now(), r.tuner.Ratio())
	} else {
		r.ratioSer.Add(r.engine.Now(), r.composer.ProbingRatio())
	}
	if r.engine.Now() < r.cfg.Duration {
		if err := r.engine.Schedule(r.cfg.SamplePeriod, r.onSample); err != nil {
			r.fail(err)
		}
	}
}

// onAggregate fires the periodic virtual-link aggregation.
func (r *run) onAggregate() {
	r.global.Aggregate()
	if r.engine.Now() < r.cfg.Duration {
		if err := r.engine.Schedule(r.global.Period(), r.onAggregate); err != nil {
			r.fail(err)
		}
	}
}

// recordTrace keeps the most recent requests for the tuner's replay.
func (r *run) recordTrace(req *component.Request) {
	// Only the profiling tuner replays traces; the PI controller needs
	// none.
	if _, ok := r.tuner.(*tuning.Tuner); !ok {
		return
	}
	if len(r.trace) >= r.cfg.TraceCap {
		copy(r.trace, r.trace[1:])
		r.trace = r.trace[:len(r.trace)-1]
	}
	r.trace = append(r.trace, req)
}

// profileAlpha estimates the success rate at the given probing ratio by
// shadow-composing the recent request trace against the current system
// state: no transient holds, no commits, private message counters — a
// pure measurement, the simulator's stand-in for §3.4's trace replay.
func (r *run) profileAlpha(alpha float64) float64 {
	if len(r.trace) == 0 {
		return 1
	}
	shadowCounters := &metrics.Counters{}
	env := core.Env{
		Mesh:     r.platform.Mesh,
		Catalog:  r.platform.Catalog,
		Registry: discovery.NewRegistry(r.platform.Catalog, r.platform.Mesh.NumNodes(), shadowCounters),
		Ledger:   r.ledger,
		Global:   r.global,
		Counters: shadowCounters,
		Now:      r.engine.Now,
		Rand:     r.rng,
	}
	cfg := core.Config{
		Algorithm:           r.cfg.Algorithm,
		ProbingRatio:        alpha,
		HoldTTL:             10 * time.Second,
		TransientAllocation: false,
		Selection:           r.cfg.Selection,
		MaxProbesPerRequest: r.cfg.MaxProbesPerRequest,
	}
	shadow, err := core.NewComposer(env, cfg)
	if err != nil {
		r.fail(err)
		return 0
	}
	success := 0
	for i, req := range r.trace {
		replay := *req
		replay.ID = -(int64(i) + 1) // shadow owner IDs never collide
		out, err := shadow.Probe(&replay)
		if err != nil {
			r.fail(err)
			return 0
		}
		if out.Success() {
			success++
		}
	}
	return float64(success) / float64(len(r.trace))
}
