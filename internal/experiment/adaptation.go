package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/runtime"
)

// AdaptationConfig parameterises one adaptation-figure cell: a live
// runtime cluster on the virtual clock subjected to a deterministic
// schedule of congestion surges, with the re-composition controller on
// or off.
type AdaptationConfig struct {
	// Seed drives the substrate and surge schedule.
	Seed int64
	// Sessions is how many concurrent sessions the run holds. Zero
	// means 4.
	Sessions int
	// Surges is how many congestion episodes the schedule plays. Zero
	// means 4.
	Surges int
	// SurgeTicks is how many monitor ticks each surge lasts before its
	// load is released. Zero means 6.
	SurgeTicks int
	// Adapt turns the re-composition controller on.
	Adapt bool
	// Predictive additionally enables the Holt forecast mode (implies
	// the controller is on).
	Predictive bool
}

// AdaptationResult measures one cell of the adaptation figure.
type AdaptationResult struct {
	// Episodes is how many times a session crossed its phi bound.
	Episodes int64
	// Recovered is how many episodes ended back in compliance.
	Recovered int64
	// ViolationTicks is the total session-ticks spent in violation —
	// the figure's headline: adaptation shrinks it.
	ViolationTicks int64
	// MeanViolationTicks is ViolationTicks per episode.
	MeanViolationTicks float64
	// Migrations counts successful make-before-break flips.
	Migrations int64
	// Preemptive counts forecast-triggered flips (predictive mode).
	Preemptive int64
	// Abandoned counts violation episodes the controller gave up on
	// after its retry budget.
	Abandoned int64
}

// adaptDriftTolerance matches the harness adaptation scenarios: act at
// 50% over the admission-time bound.
const adaptDriftTolerance = 0.5

// RunAdaptation plays a deterministic surge schedule against a live
// runtime cluster and measures QoS-drift exposure. With Adapt off a
// bare drift monitor only observes (the baseline: violations persist
// until their surge ends); with Adapt on the controller re-composes
// drifting sessions make-before-break.
func RunAdaptation(cfg AdaptationConfig) (*AdaptationResult, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 4
	}
	if cfg.Surges <= 0 {
		cfg.Surges = 4
	}
	if cfg.SurgeTicks <= 0 {
		cfg.SurgeTicks = 6
	}
	if cfg.Predictive {
		cfg.Adapt = true
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	wrng := rand.New(rand.NewSource(seed ^ 0xad47))

	vc := clock.NewVirtual()
	reg := obs.NewRegistry()
	rcfg := runtime.DefaultConfig()
	rcfg.Seed = seed
	rcfg.IPNodes = 64
	rcfg.OverlayNodes = 8
	rcfg.NeighborsPerNode = 3
	rcfg.NumFunctions = 4
	rcfg.ComponentsPerNode = 2
	rcfg.NodeCapacity = qos.Resources{CPU: 100, Memory: 1000}
	rcfg.Clock = vc
	rcfg.Registry = reg
	c, err := runtime.NewCluster(rcfg)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	// Both modes run the same monitor cadence; only the consequences of
	// a drift event differ.
	var tickOnce func()
	if cfg.Adapt {
		ctrl, err := c.EnableAdaptation(runtime.AdaptConfig{
			Period:       time.Second,
			Tolerance:    adaptDriftTolerance,
			MaxRetries:   3,
			RetryBackoff: 2 * time.Second,
			Predictive:   cfg.Predictive,
		})
		if err != nil {
			return nil, err
		}
		defer ctrl.Stop()
		ctrl.Start()
		tickOnce = func() { vc.Advance(time.Second) }
	} else {
		monitor := obs.NewDriftMonitor(obs.DriftConfig{
			Observed:  reg.GaugeVec("session.phi", "session"),
			Required:  reg.GaugeVec("session.phi.required", "session"),
			Tolerance: adaptDriftTolerance,
			Registry:  reg,
		})
		tickOnce = func() {
			vc.Advance(time.Second)
			c.RefreshSessionGauges()
			monitor.Tick()
		}
	}

	res := &AdaptationResult{}
	tick := func() error {
		tickOnce()
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		res.ViolationTicks += int64(reg.Snapshot().Gauges["obs.drift.sessions_exceeded"])
		return nil
	}

	// Admit the session population.
	for i := 0; i < cfg.Sessions; i++ {
		length := 2 + wrng.Intn(2)
		fns := make([]component.FunctionID, length)
		for j := range fns {
			fns[j] = component.FunctionID(wrng.Intn(rcfg.NumFunctions))
		}
		resReq := make([]qos.Resources, length)
		for j := range resReq {
			resReq[j] = qos.Resources{CPU: 2 + wrng.Float64()*8, Memory: 20 + wrng.Float64()*80}
		}
		if _, err := c.Find(component.NewPathGraph(fns),
			qos.Vector{Delay: 1e5, LossCost: qos.LossCost(0.9)}, resReq, 20+wrng.Float64()*60); err != nil {
			return nil, fmt.Errorf("seed %d: admit %d: %w", seed, i, err)
		}
	}
	for i := 0; i < 2; i++ { // settle the baseline
		if err := tick(); err != nil {
			return res, err
		}
	}

	// The surge schedule: squeeze a random live session's nodes for
	// SurgeTicks, release, let it drain. Drawn from wrng before any mode
	// branch consumes randomness, so off/on runs see identical surges.
	for ep := 0; ep < cfg.Surges; ep++ {
		sessions := c.AuditSessions()
		if len(sessions) == 0 {
			break
		}
		victim := sessions[wrng.Intn(len(sessions))]
		desc, err := c.Describe(victim.ID)
		if err != nil {
			return res, fmt.Errorf("seed %d: %w", seed, err)
		}
		owner := int64(-(ep + 1))
		load := map[int]qos.Resources{}
		for _, pc := range desc.Components {
			if _, dup := load[pc.Node]; dup {
				continue
			}
			avail := c.NodeResidual(pc.Node)
			load[pc.Node] = qos.Resources{CPU: avail.CPU - 1, Memory: avail.Memory - 10}
		}
		if err := c.InjectLoad(owner, load); err != nil {
			return res, fmt.Errorf("seed %d: surge %d: %w", seed, ep, err)
		}
		for i := 0; i < cfg.SurgeTicks; i++ {
			if err := tick(); err != nil {
				return res, err
			}
		}
		c.ReleaseLoad(owner)
		for i := 0; i < 3; i++ { // drain: violations recover
			if err := tick(); err != nil {
				return res, err
			}
		}
	}

	s := reg.Snapshot()
	res.Episodes = s.Counters["obs.drift.exceeded_total"]
	res.Recovered = s.Counters["obs.drift.recovered_total"]
	res.Migrations = s.Counters["runtime.migrations"]
	res.Preemptive = s.Counters["adapt.preemptive_migrations"]
	res.Abandoned = s.Counters["adapt.abandoned"]
	if res.Episodes > 0 {
		res.MeanViolationTicks = float64(res.ViolationTicks) / float64(res.Episodes)
	}
	return res, nil
}

// AdaptationSweep is the adaptation figure: the same seeded surge
// schedule with the re-composition controller off, on, and on with
// Holt forecasting — violation exposure versus migrations spent. Not a
// paper figure; it extends §4 with the "act on drift" plane.
func AdaptationSweep(o Options) ([]*Table, error) {
	o = o.normalize()
	tbl := &Table{
		Title: "Adaptation: QoS-drift exposure with re-composition off vs on (N=8, 4 sessions, 4 surges)",
		Header: []string{"mode", "episodes", "violation ticks", "mean ticks/episode",
			"migrations", "preemptive", "recovered", "abandoned"},
	}
	modes := []struct {
		name              string
		adapt, predictive bool
	}{
		{"monitor only", false, false},
		{"recompose", true, false},
		{"recompose+forecast", true, true},
	}
	for _, m := range modes {
		res, err := RunAdaptation(AdaptationConfig{Seed: o.Seed, Adapt: m.adapt, Predictive: m.predictive})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(
			m.name,
			fmt.Sprintf("%d", res.Episodes),
			fmt.Sprintf("%d", res.ViolationTicks),
			fmt.Sprintf("%.1f", res.MeanViolationTicks),
			fmt.Sprintf("%d", res.Migrations),
			fmt.Sprintf("%d", res.Preemptive),
			fmt.Sprintf("%d", res.Recovered),
			fmt.Sprintf("%d", res.Abandoned),
		)
	}
	return []*Table{tbl}, nil
}
