package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result, one per paper table or figure.
type Table struct {
	// Title identifies the experiment (e.g. "Figure 6(a) ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the cell values.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// FprintCSV renders the table as RFC-4180 CSV with the title as a
// comment line.
func (t *Table) FprintCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Fprint(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
