package experiment

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// Options scales a figure reproduction. The zero value means full paper
// scale with seed 1.
type Options struct {
	// Seed controls platform and workload randomness (default 1).
	Seed int64
	// DurationScale multiplies simulated durations; benchmarks use small
	// fractions. Durations never fall below two sampling periods.
	DurationScale float64
	// IPNodes overrides the IP-layer graph size (default 3200).
	IPNodes int
	// Parallel caps how many independent simulation cells run
	// concurrently within one figure (see RunConcurrent). 0 or 1 keeps
	// the runs serial; negative selects GOMAXPROCS. Cell results are
	// identical either way — each cell is a self-contained simulation.
	Parallel int
}

func (o Options) normalize() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DurationScale <= 0 {
		o.DurationScale = 1
	}
	if o.IPNodes == 0 {
		o.IPNodes = 3200
	}
	return o
}

// workers translates the Parallel knob into a RunConcurrent worker count.
func (o Options) workers() int {
	switch {
	case o.Parallel < 0:
		return 0 // RunConcurrent picks GOMAXPROCS
	case o.Parallel == 0:
		return 1
	default:
		return o.Parallel
	}
}

func (o Options) duration(full time.Duration) time.Duration {
	d := time.Duration(float64(full) * o.DurationScale)
	if d < 10*time.Minute {
		d = 10 * time.Minute
	}
	return d
}

// probeBudget bounds per-request probe fan-out on the dense (10
// candidates per function) platform used by Figures 5 and 8, where high
// probing ratios would otherwise expand 10^5 probes per request.
const probeBudget = 2000

// alphaGrid is the probing-ratio x-axis of Figure 5.
var alphaGrid = []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// densePlatform builds the 10-candidates-per-function system used by the
// probing-ratio experiments (Figures 5 and 8): the paper's §3.4 example
// speaks of ten candidate components per function.
func densePlatform(o Options, overlayNodes int) (*Platform, error) {
	cfg := DefaultSystemConfig()
	cfg.Seed = o.Seed
	cfg.IPNodes = o.IPNodes
	cfg.OverlayNodes = overlayNodes
	cfg.ComponentsPerNode = 2
	return BuildPlatform(cfg)
}

// sparsePlatform builds the 5-candidates-per-function system used by the
// algorithm-comparison experiments (Figures 6 and 7), keeping the
// exhaustive Optimal baseline tractable.
func sparsePlatform(o Options, overlayNodes int) (*Platform, error) {
	cfg := DefaultSystemConfig()
	cfg.Seed = o.Seed
	cfg.IPNodes = o.IPNodes
	cfg.OverlayNodes = overlayNodes
	cfg.ComponentsPerNode = 1
	return BuildPlatform(cfg)
}

func fmtPct(v float64) string  { return fmt.Sprintf("%.1f", 100*v) }
func fmtRate(v float64) string { return fmt.Sprintf("%.0f", v) }

// Figure5a reproduces Figure 5(a): composition success rate as a
// function of the probing ratio under different request rates (50 and
// 100 requests/minute, N=400).
func Figure5a(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	rates := []float64{50, 100}
	t := &Table{
		Title:  "Figure 5(a): success rate (%) vs probing ratio under request rates",
		Header: []string{"probing ratio", "50 reqs/min", "100 reqs/min"},
	}
	var rcs []RunConfig
	for _, alpha := range alphaGrid {
		for _, rate := range rates {
			rc := DefaultRunConfig(rate)
			rc.Seed = o.Seed
			rc.ProbingRatio = alpha
			rc.Duration = o.duration(100 * time.Minute)
			rc.MaxProbesPerRequest = probeBudget
			rcs = append(rcs, rc)
		}
	}
	results, err := RunConcurrent(p, rcs, o.workers())
	if err != nil {
		return nil, err
	}
	for i, alpha := range alphaGrid {
		row := []string{fmt.Sprintf("%.2f", alpha)}
		for j := range rates {
			row = append(row, fmtPct(results[i*len(rates)+j].SuccessRate))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// Figure5b reproduces Figure 5(b): success rate vs probing ratio under
// different QoS strictness levels (rate 80, N=400). The run tightens the
// per-function delay budget so the QoS constraint — not only resource
// contention — shapes the saturation level.
func Figure5b(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	levels := []workload.QoSLevel{workload.QoSLow, workload.QoSHigh, workload.QoSVeryHigh}
	t := &Table{
		Title:  "Figure 5(b): success rate (%) vs probing ratio under QoS requirements",
		Header: []string{"probing ratio", "low QoS", "high QoS", "very high QoS"},
	}
	var rcs []RunConfig
	for _, alpha := range alphaGrid {
		for _, lvl := range levels {
			rc := DefaultRunConfig(80)
			rc.Seed = o.Seed
			rc.ProbingRatio = alpha
			rc.QoSLevel = lvl
			rc.Duration = o.duration(100 * time.Minute)
			rc.MaxProbesPerRequest = probeBudget
			rc.WorkloadOverride = func(w *workload.Config) {
				w.DelayReqPerFunctionMin = 45
				w.DelayReqPerFunctionMax = 80
			}
			rcs = append(rcs, rc)
		}
	}
	results, err := RunConcurrent(p, rcs, o.workers())
	if err != nil {
		return nil, err
	}
	for i, alpha := range alphaGrid {
		row := []string{fmt.Sprintf("%.2f", alpha)}
		for j := range levels {
			row = append(row, fmtPct(results[i*len(levels)+j].SuccessRate))
		}
		t.AddRow(row...)
	}
	return []*Table{t}, nil
}

// figure6Algorithms is the legend of Figure 6(a)/7(a).
var figure6Algorithms = []core.Algorithm{
	core.AlgOptimal, core.AlgACP, core.AlgSP, core.AlgRP, core.AlgRandom, core.AlgStatic,
}

// overheadAlgorithms is the legend of Figure 6(b)/7(b).
var overheadAlgorithms = []core.Algorithm{core.AlgOptimal, core.AlgACP, core.AlgRP}

// Figure6 reproduces the efficiency evaluation: Figure 6(a) success rate
// and Figure 6(b) control overhead versus request rate on a 400-node
// system with probing ratio 0.3.
func Figure6(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := sparsePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	rates := []float64{20, 40, 60, 80, 100}

	succ := &Table{
		Title:  "Figure 6(a): success rate (%) vs request rate (reqs/min), N=400, alpha=0.3",
		Header: []string{"request rate"},
	}
	ovh := &Table{
		Title:  "Figure 6(b): overhead (messages/min) vs request rate, N=400, alpha=0.3",
		Header: []string{"request rate"},
	}
	for _, alg := range figure6Algorithms {
		succ.Header = append(succ.Header, alg.String())
	}
	for _, alg := range overheadAlgorithms {
		ovh.Header = append(ovh.Header, alg.String())
	}

	for _, rate := range rates {
		succRow := []string{fmtRate(rate)}
		ovhByAlg := make(map[core.Algorithm]float64, len(figure6Algorithms))
		for _, alg := range figure6Algorithms {
			rc := DefaultRunConfig(rate)
			rc.Seed = o.Seed
			rc.Algorithm = alg
			rc.Duration = o.duration(100 * time.Minute)
			res, err := Run(p, rc)
			if err != nil {
				return nil, err
			}
			succRow = append(succRow, fmtPct(res.SuccessRate))
			ovhByAlg[alg] = res.OverheadPerMinute
		}
		succ.AddRow(succRow...)
		ovhRow := []string{fmtRate(rate)}
		for _, alg := range overheadAlgorithms {
			ovhRow = append(ovhRow, fmt.Sprintf("%.0f", ovhByAlg[alg]))
		}
		ovh.AddRow(ovhRow...)
	}
	return []*Table{succ, ovh}, nil
}

// Figure7 reproduces the scalability evaluation: Figure 7(a) success
// rate and Figure 7(b) overhead versus system size (200-600 nodes) at 80
// requests/minute. Candidate components per function grow proportionally
// with the node count, as in §4.2.
func Figure7(o Options) ([]*Table, error) {
	o = o.normalize()
	sizes := []int{200, 300, 400, 500, 600}

	succ := &Table{
		Title:  "Figure 7(a): success rate (%) vs node number, rate=80, alpha=0.3",
		Header: []string{"node number"},
	}
	ovh := &Table{
		Title:  "Figure 7(b): overhead (messages/min) vs node number, rate=80, alpha=0.3",
		Header: []string{"node number"},
	}
	for _, alg := range figure6Algorithms {
		succ.Header = append(succ.Header, alg.String())
	}
	for _, alg := range overheadAlgorithms {
		ovh.Header = append(ovh.Header, alg.String())
	}

	for _, n := range sizes {
		p, err := sparsePlatform(o, n)
		if err != nil {
			return nil, err
		}
		succRow := []string{fmt.Sprintf("%d", n)}
		ovhByAlg := make(map[core.Algorithm]float64, len(figure6Algorithms))
		for _, alg := range figure6Algorithms {
			rc := DefaultRunConfig(80)
			rc.Seed = o.Seed
			rc.Algorithm = alg
			rc.Duration = o.duration(100 * time.Minute)
			res, err := Run(p, rc)
			if err != nil {
				return nil, err
			}
			succRow = append(succRow, fmtPct(res.SuccessRate))
			ovhByAlg[alg] = res.OverheadPerMinute
		}
		succ.AddRow(succRow...)
		ovhRow := []string{fmt.Sprintf("%d", n)}
		for _, alg := range overheadAlgorithms {
			ovhRow = append(ovhRow, fmt.Sprintf("%.0f", ovhByAlg[alg]))
		}
		ovh.AddRow(ovhRow...)
	}
	return []*Table{succ, ovh}, nil
}

// figure8Phases is the dynamic workload of the adaptability experiment:
// 40 reqs/min, spiking to 80 at t=50 min and relaxing to 60 at t=100 min
// over a 150-minute run. Scaling compresses the phase boundaries with
// the duration.
func figure8Phases(o Options) ([]workload.Phase, time.Duration) {
	total := o.duration(150 * time.Minute)
	return []workload.Phase{
		{Until: total / 3, RatePerMinute: 40},
		{Until: 2 * total / 3, RatePerMinute: 80},
		{Until: 1 << 62, RatePerMinute: 60},
	}, total
}

func seriesTable(title string, res *Result, withRatio bool) *Table {
	header := []string{"time (min)", "success rate (%)"}
	if withRatio {
		header = append(header, "probing ratio")
	}
	t := &Table{Title: title, Header: header}
	ratioAt := make(map[time.Duration]float64, len(res.RatioSeries))
	for _, pt := range res.RatioSeries {
		ratioAt[pt.At] = pt.Value
	}
	for _, pt := range res.SuccessSeries {
		row := []string{fmt.Sprintf("%.0f", pt.At.Minutes()), fmtPct(pt.Value)}
		if withRatio {
			row = append(row, fmt.Sprintf("%.2f", ratioAt[pt.At]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure8a reproduces Figure 8(a): success rate over time under the
// dynamic workload with a fixed probing ratio of 0.3.
func Figure8a(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	phases, total := figure8Phases(o)
	rc := DefaultRunConfig(0)
	rc.Seed = o.Seed
	rc.Phases = phases
	rc.Duration = total
	rc.ProbingRatio = 0.3
	rc.MaxProbesPerRequest = probeBudget
	res, err := Run(p, rc)
	if err != nil {
		return nil, err
	}
	return []*Table{seriesTable(
		"Figure 8(a): success rate over time, fixed probing ratio 0.3, rate 40->80->60",
		res, false)}, nil
}

// Figure8b reproduces Figure 8(b): the probing-ratio tuner holding a 90%
// success-rate target under the same dynamic workload.
func Figure8b(o Options) ([]*Table, error) {
	o = o.normalize()
	p, err := densePlatform(o, 400)
	if err != nil {
		return nil, err
	}
	phases, total := figure8Phases(o)
	rc := DefaultRunConfig(0)
	rc.Seed = o.Seed
	rc.Phases = phases
	rc.Duration = total
	rc.ProbingRatio = 0.1
	rc.MaxProbesPerRequest = probeBudget
	tcfg := tuning.DefaultConfig()
	tcfg.ErrorThreshold = 0.05 // damp window-noise flapping
	rc.Tuning = &tcfg
	rc.TraceCap = 100
	res, err := Run(p, rc)
	if err != nil {
		return nil, err
	}
	return []*Table{seriesTable(
		"Figure 8(b): success rate and tuned probing ratio over time, target 90%, rate 40->80->60",
		res, true)}, nil
}

// FigureFunc regenerates one paper figure at the given options.
type FigureFunc func(Options) ([]*Table, error)

// Figures maps figure identifiers to their runners.
func Figures() map[string]FigureFunc {
	return map[string]FigureFunc{
		"5a": Figure5a,
		"5b": Figure5b,
		"6a": func(o Options) ([]*Table, error) { tables, err := Figure6(o); return slice(tables, err, 0) },
		"6b": func(o Options) ([]*Table, error) { tables, err := Figure6(o); return slice(tables, err, 1) },
		"6":  Figure6,
		"7a": func(o Options) ([]*Table, error) { tables, err := Figure7(o); return slice(tables, err, 0) },
		"7b": func(o Options) ([]*Table, error) { tables, err := Figure7(o); return slice(tables, err, 1) },
		"7":  Figure7,
		"8a": Figure8a,
		"8b": Figure8b,
		// Not a paper figure: the dist engine's success-vs-loss
		// degradation curve under injected faults.
		"faults": FaultSweep,
		// Not a paper figure: QoS-drift exposure with the runtime
		// re-composition controller off vs on vs predictive.
		"adaptation": AdaptationSweep,
		// Not a paper figure: multi-application success rate and Jain
		// fairness vs offered load per workload scenario family.
		"fairness": FairnessSweep,
	}
}

// FigureNames returns the sorted identifiers Figures accepts.
func FigureNames() []string {
	m := Figures()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func slice(tables []*Table, err error, idx int) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(tables) {
		return nil, fmt.Errorf("experiment: table index %d out of range", idx)
	}
	return []*Table{tables[idx]}, nil
}
