package experiment

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestRunConcurrentMatchesSerial: runs are independent — each builds its
// own engine, ledger, and composer over the shared immutable platform —
// so the concurrent driver must reproduce the serial results exactly, in
// input order.
func TestRunConcurrentMatchesSerial(t *testing.T) {
	p := smallPlatform(t, 3)
	algs := []core.Algorithm{core.AlgACP, core.AlgRP, core.AlgSP, core.AlgACP}
	rcs := make([]RunConfig, len(algs))
	for i, alg := range algs {
		rc := shortRun(20)
		rc.Seed = int64(i + 1)
		rc.Algorithm = alg
		rcs[i] = rc
	}

	serial := make([]*Result, len(rcs))
	for i, rc := range rcs {
		r, err := Run(p, rc)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = r
	}
	concurrent, err := RunConcurrent(p, rcs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(concurrent) != len(serial) {
		t.Fatalf("RunConcurrent returned %d results, want %d", len(concurrent), len(serial))
	}
	for i := range serial {
		s, c := serial[i], concurrent[i]
		if c == nil {
			t.Fatalf("run %d: nil concurrent result", i)
		}
		if s.SuccessRate != c.SuccessRate || s.Requests != c.Requests {
			t.Errorf("run %d (%s): concurrent admission %v/%d, serial %v/%d",
				i, algs[i], c.SuccessRate, c.Requests, s.SuccessRate, s.Requests)
		}
		if s.OverheadPerMinute != c.OverheadPerMinute {
			t.Errorf("run %d: overhead %v != %v", i, c.OverheadPerMinute, s.OverheadPerMinute)
		}
		if s.PhaseBreakdown != c.PhaseBreakdown {
			t.Errorf("run %d: phase breakdown %+v != %+v", i, c.PhaseBreakdown, s.PhaseBreakdown)
		}
		if !reflect.DeepEqual(s.SuccessSeries, c.SuccessSeries) {
			t.Errorf("run %d: success series diverged", i)
		}
		if s.MeanProbeLatency != c.MeanProbeLatency {
			t.Errorf("run %d: probe latency %v != %v", i, c.MeanProbeLatency, s.MeanProbeLatency)
		}
	}

	// workers <= 0 selects a sensible default rather than failing.
	again, err := RunConcurrent(p, rcs[:2], 0)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].SuccessRate != serial[0].SuccessRate {
		t.Error("default-worker run diverged from serial")
	}
}

// TestFigureParallelMatchesSerial: the figure drivers with Parallel set
// must fill the same table cells as the serial sweep.
func TestFigureParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep; skipped in -short")
	}
	base := Options{Seed: 5, DurationScale: 0.01, IPNodes: 800}
	par := base
	par.Parallel = -1

	serial, err := Figure5a(base)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure5a(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Figure5a table diverged from serial:\n%+v\nvs\n%+v", parallel, serial)
	}
}
