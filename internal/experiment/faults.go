package experiment

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/component"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qos"
)

// DistFaultConfig parameterises one run of the distributed engine under
// injected faults: a fixed batch of requests pushed through a lossy
// cluster, measuring how gracefully the protocol degrades.
type DistFaultConfig struct {
	// Seed drives the substrate, the request mix, and the injector.
	Seed int64
	// OverlayNodes sizes the cluster (default 32).
	OverlayNodes int
	// Requests is the batch size (default 48); Workers the concurrency
	// (default 8).
	Requests int
	Workers  int
	// DropProb, DupProb, MaxDelay, Crashes configure the injector (see
	// faults.Config).
	DropProb float64
	DupProb  float64
	MaxDelay time.Duration
	Crashes  []faults.Crash
	// Retries is the deputy-side retry budget per request (default 3).
	Retries int
}

func (c DistFaultConfig) normalize() DistFaultConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OverlayNodes == 0 {
		c.OverlayNodes = 32
	}
	if c.Requests == 0 {
		c.Requests = 48
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	return c
}

// DistFaultResult is the outcome of one fault-injected batch.
type DistFaultResult struct {
	Requests  int
	Succeeded int
	// Failed counts clean ErrNoComposition outcomes; Errored counts
	// anything else (must be zero — every request completes).
	Failed  int
	Errored int
	// Injector and recovery activity, from the cluster's registry.
	Dropped    int64
	Duplicated int64
	Delayed    int64
	Crashes    int64
	Retries    int64
	HoldsSwept int64
	// Recovered reports whether every node and link returned to full
	// capacity after all sessions were released — no leaked holds or
	// commits.
	Recovered bool
}

// SuccessRate is the fraction of requests that composed successfully.
func (r *DistFaultResult) SuccessRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Succeeded) / float64(r.Requests)
}

// distFaultRequest builds the Figure-6-style workload unit used by the
// dist engine tests: a three-function path with moderate demands.
func distFaultRequest(client int) *component.Request {
	return &component.Request{
		Graph:        component.NewPathGraph([]component.FunctionID{0, 1, 2}),
		QoSReq:       qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
		ResReq:       []qos.Resources{{CPU: 8, Memory: 80}, {CPU: 8, Memory: 80}, {CPU: 8, Memory: 80}},
		BandwidthReq: 100,
		Client:       client,
		Duration:     5 * time.Minute,
	}
}

// DistFaultRun pushes one batch of requests through a fault-injected
// distributed cluster and reports the degradation and recovery metrics.
func DistFaultRun(cfg DistFaultConfig) (*DistFaultResult, error) {
	cfg = cfg.normalize()
	reg := obs.NewRegistry()
	dcfg := dist.DefaultConfig()
	dcfg.Seed = cfg.Seed
	dcfg.OverlayNodes = cfg.OverlayNodes
	if dcfg.IPNodes < 8*cfg.OverlayNodes {
		// Keep the default overlay density when the caller asks for a
		// bigger cluster than the stock 32-on-256 sizing.
		dcfg.IPNodes = 8 * cfg.OverlayNodes
	}
	if dcfg.MailboxSize < 32*cfg.OverlayNodes {
		// Probe fan-in grows with the overlay; keep mailboxes ahead of
		// it so backpressure stays an overload signal, not the norm.
		dcfg.MailboxSize = 32 * cfg.OverlayNodes
	}
	dcfg.CollectTimeout = 25 * time.Millisecond
	dcfg.HoldTTL = 250 * time.Millisecond
	dcfg.SweepInterval = 50 * time.Millisecond
	dcfg.CommitTimeout = 100 * time.Millisecond
	dcfg.ComposeRetries = cfg.Retries
	dcfg.RetryBackoff = 5 * time.Millisecond
	dcfg.Registry = reg
	dcfg.Faults = &faults.Config{
		Seed:     cfg.Seed,
		DropProb: cfg.DropProb,
		DupProb:  cfg.DupProb,
		MaxDelay: cfg.MaxDelay,
		Crashes:  cfg.Crashes,
	}
	c, err := dist.New(dcfg)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	res := &DistFaultResult{Requests: cfg.Requests}
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (cfg.Requests + cfg.Workers - 1) / cfg.Workers
	issued := 0
	for w := 0; w < cfg.Workers && issued < cfg.Requests; w++ {
		n := per
		if issued+n > cfg.Requests {
			n = cfg.Requests - issued
		}
		issued += n
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				req := distFaultRequest((w*5 + i) % c.NumNodes())
				comp, err := c.Compose(req)
				mu.Lock()
				switch {
				case err == nil:
					res.Succeeded++
				case errors.Is(err, dist.ErrNoComposition):
					res.Failed++
				default:
					res.Errored++
				}
				mu.Unlock()
				if err == nil {
					c.Release(req, comp)
				}
			}
		}(w, n)
	}
	wg.Wait()

	res.Recovered = c.AwaitIdle(10 * time.Second)
	snap := reg.Snapshot()
	res.Dropped = snap.Counters["dist.faults.dropped"]
	res.Duplicated = snap.Counters["dist.faults.duplicated"]
	res.Delayed = snap.Counters["dist.faults.delayed"]
	res.Crashes = snap.Counters["dist.node.crashes"]
	res.Retries = snap.Counters["dist.compose.retries"]
	res.HoldsSwept = snap.Counters["dist.holds.swept"]
	return res, nil
}

// faultLossGrid is the injected-loss x-axis of the degradation sweep.
var faultLossGrid = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40}

// FaultSweep measures success rate versus injected message-loss rate on
// the distributed engine — the degradation curve the paper's protocol
// design implies: losses cost probes (and with them composition
// chances), but never correctness; every request completes and all
// resources recover.
func FaultSweep(o Options) ([]*Table, error) {
	o = o.normalize()
	tbl := &Table{
		Title: "Fault sweep: success rate (%) vs injected message loss (%), N=32, 48 requests, 3 retries",
		Header: []string{"loss %", "success %", "no-composition %", "errors",
			"dropped msgs", "retries", "holds swept", "recovered"},
	}
	for _, loss := range faultLossGrid {
		res, err := DistFaultRun(DistFaultConfig{Seed: o.Seed, DropProb: loss})
		if err != nil {
			return nil, err
		}
		recovered := "yes"
		if !res.Recovered {
			recovered = "NO"
		}
		tbl.AddRow(
			fmtPct(loss),
			fmtPct(res.SuccessRate()),
			fmtPct(float64(res.Failed)/float64(res.Requests)),
			fmt.Sprintf("%d", res.Errored),
			fmt.Sprintf("%d", res.Dropped),
			fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%d", res.HoldsSwept),
			recovered,
		)
	}
	return []*Table{tbl}, nil
}
