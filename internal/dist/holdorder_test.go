package dist

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/qos"
)

// TestHoldAccountingDeterministic is the regression for the sorted-key
// iteration in availableFor and releaseHolds. Float addition is not
// associative, and Go randomizes map iteration order per range
// statement, so the old code — which summed and subtracted hold amounts
// in map order — could produce results differing in the low bits from
// run to run. That breaks the bit-identical golden parity the harness
// depends on. The test builds the same hold set many times (each fresh
// map gets a fresh random iteration order) and asserts the derived
// accounting values never vary.
func TestHoldAccountingDeterministic(t *testing.T) {
	c := testCluster(t)

	// Amounts with no exact binary representation, chosen so the
	// rounding of the running sum depends on the order of addition:
	// roughly half of the 7! permutations land on a different low bit
	// (float addition is not associative).
	amounts := []float64{4.1150458, 4.0319832, 5.097726801, 5.6757749, 4.97437, 0.808735, 2.6021515}
	const owner = int64(42)

	build := func() *node {
		n := newNode(c, 99, rand.New(rand.NewSource(1)))
		exp := c.clock.Now().Add(time.Hour)
		for i, a := range amounts {
			amt := qos.Resources{CPU: a, Memory: 3 * a}
			n.holds[holdKey{owner: owner, pos: i}] = hold{amount: amt, expires: exp}
			n.heldTotal = n.heldTotal.Add(amt)
		}
		return n
	}

	first := build()
	wantAvail := first.availableFor(owner)
	first.releaseHolds(owner)
	wantHeld := first.heldTotal

	for trial := 1; trial < 64; trial++ {
		n := build()
		if got := n.availableFor(owner); got != wantAvail {
			t.Fatalf("trial %d: availableFor = %+v, want %+v (map-order-dependent summation)",
				trial, got, wantAvail)
		}
		n.releaseHolds(owner)
		if n.heldTotal != wantHeld {
			t.Fatalf("trial %d: heldTotal after release = %+v, want %+v (map-order-dependent subtraction)",
				trial, n.heldTotal, wantHeld)
		}
		if len(n.holds) != 0 {
			t.Fatalf("trial %d: %d holds left after releaseHolds", trial, len(n.holds))
		}
	}
}
