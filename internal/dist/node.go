package dist

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/component"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qos"
)

// message is the sum type flowing through node mailboxes.
type message interface{}

// composeMsg asks a node to act as deputy for a request (§3.3 step 1).
// alpha is the probing ratio for this attempt; retries widen it (§3.6).
type composeMsg struct {
	req   *component.Request
	reply chan composeReply
	alpha float64
}

type composeReply struct {
	comp *Composition
	err  error
}

// probeMsg is one probe hop: the receiving node hosts the candidate
// chosen for position order[idx] and performs per-hop processing
// (§3.3 step 2).
type probeMsg struct {
	req    *component.Request
	probe  int64 // tracer span ID; 0 when tracing is disabled
	deputy int
	idx    int // index into the topological order
	chosen component.ComponentID
	assign []component.ComponentID // positions order[0..idx-1] filled
	acc    qos.Vector
	avails []qos.Resources // availability observed at each assigned node
	alpha  float64         // probing ratio of this attempt
}

// returnMsg carries a complete probed composition back to the deputy
// (§3.3 step 3).
type returnMsg struct {
	reqID  int64
	assign []component.ComponentID
	acc    qos.Vector
	avails []qos.Resources
}

// decideMsg fires when the deputy's probe collection window closes.
type decideMsg struct{ reqID int64 }

// commitMsg makes a transient allocation permanent (§3.3 step 4).
type commitMsg struct {
	owner  int64
	amount qos.Resources
	deputy int
	reqID  int64
}

// commitAckMsg reports a node's commit outcome to the deputy.
type commitAckMsg struct {
	reqID int64
	node  int
	ok    bool
}

// commitTimeoutMsg fires when commit acks are overdue.
type commitTimeoutMsg struct{ reqID int64 }

// releaseMsg frees the owner's committed allocation (session close or
// rollback). The node knows the committed amount from its own ledger,
// which makes release idempotent: a duplicate or speculative release
// (rollback toward a participant that never committed) is a no-op.
type releaseMsg struct {
	owner int64
}

// stateMsg is a coarse global-state update broadcast (§3.2).
type stateMsg struct {
	node  int
	avail qos.Resources
}

// inspectMsg asks a node for its precise availability (monitoring and
// test hook).
type inspectMsg struct{ reply chan qos.Resources }

type holdKey struct {
	owner int64
	pos   int
}

type hold struct {
	amount  qos.Resources
	expires time.Time
}

// pendingCompose is the deputy-side state of one in-flight request.
type pendingCompose struct {
	req     *component.Request
	order   []int
	reply   chan composeReply
	alpha   float64
	returns []returnMsg
	decided bool
	// composeStart is the compose arrival on the cluster clock; the
	// collect phase runs from here to the decision.
	composeStart time.Time

	// commit phase
	comp       *Composition
	needAcks   map[int]bool // node -> acked
	nodeDemand map[int]qos.Resources
	linkDemand map[int]float64
	// commitStart is the decision instant; the commit phase runs from
	// here to the final ack or rollback.
	commitStart time.Time
}

// node is one stream processing host: a goroutine owning its end-system
// resource state, its coarse view of everyone else, and its share of the
// protocol.
type node struct {
	c       *Cluster
	id      int
	mailbox chan message
	quit    chan struct{}
	rng     *rand.Rand

	capacity     qos.Resources
	committed    qos.Resources
	heldTotal    qos.Resources
	holds        map[holdKey]hold
	commits      map[int64]qos.Resources // owner -> committed amount
	released     map[int64]time.Time     // release-before-commit tombstones
	view         []qos.Resources
	lastReported qos.Resources
	pending      map[int64]*pendingCompose
	down         bool // inside a scheduled outage
}

func newNode(c *Cluster, id int, rng *rand.Rand) *node {
	n := &node{
		c:        c,
		id:       id,
		mailbox:  make(chan message, c.cfg.MailboxSize),
		quit:     make(chan struct{}),
		rng:      rng,
		holds:    make(map[holdKey]hold),
		commits:  make(map[int64]qos.Resources),
		released: make(map[int64]time.Time),
		view:     make([]qos.Resources, c.mesh.NumNodes()),
		pending:  make(map[int64]*pendingCompose),
	}
	n.capacity = c.cfg.NodeCapacity
	n.lastReported = n.capacity
	for i := range n.view {
		n.view[i] = c.cfg.NodeCapacity
	}
	return n
}

// send enqueues a message, reporting false if the mailbox is full. State
// broadcasts tolerate drops (the view just goes stale); protocol
// messages treat a full mailbox as an overloaded peer.
func (n *node) send(m message) bool {
	n.c.inflight.Add(1) // before the enqueue: no visible-but-uncounted window
	select {
	case n.mailbox <- m:
		return true
	default:
		n.c.inflight.Add(-1)
		return false
	}
}

// sendBlocking enqueues a message, waiting for mailbox space; it gives
// up when the node shuts down. Used for the deputy's own timer events,
// which must not be lost to a momentarily full mailbox.
func (n *node) sendBlocking(m message) {
	n.c.inflight.Add(1)
	select {
	case n.mailbox <- m:
	case <-n.quit:
		n.c.inflight.Add(-1)
	}
}

func (n *node) run() {
	var sweepC <-chan time.Time
	if n.c.sweepEvery > 0 {
		ticker := n.c.clock.NewTicker(n.c.sweepEvery)
		defer ticker.Stop()
		sweepC = ticker.C()
	}
	for {
		select {
		case <-n.quit:
			return
		case m := <-n.mailbox:
			n.checkCrash()
			n.dispatch(m)
			n.c.inflight.Add(-1) // dispatch done: every send it made is counted
		case <-sweepC:
			n.checkCrash()
			n.sweep()
		}
	}
}

// sweep is the periodic hold-expiry pass: transient allocations
// orphaned by lost probes (or lost commit traffic) free their resources
// at TTL instead of lingering until the next on-demand availability
// check. It also ages out release-before-commit tombstones.
func (n *node) sweep() {
	if expired := n.purgeHolds(); expired > 0 {
		n.c.tracer.HoldSwept(n.id, expired)
		n.c.ins.holdsSwept.Add(int64(expired))
	}
	if len(n.released) > 0 {
		now := n.c.clock.Now()
		for owner, exp := range n.released {
			if !exp.After(now) {
				delete(n.released, owner)
			}
		}
	}
}

// checkCrash applies the injector's outage schedule: on the down
// transition volatile state is lost, on the up transition the node
// rejoins and re-announces itself.
func (n *node) checkCrash() {
	if n.c.faults == nil {
		return
	}
	down := n.c.faults.Down(n.id)
	if down == n.down {
		return
	}
	n.down = down
	if down {
		n.crash()
	} else {
		n.restart()
	}
}

// crash models the outage taking the protocol engine down: transient
// holds and deputy-side bookkeeping are in-memory and vanish; the
// committed ledger is modeled as durable (it survives restart), so
// session teardown still balances. Every in-flight request this node
// deputies is failed: mid-commit ones roll back (releasing every
// participant, who refuse any still-in-flight commit via tombstones),
// collecting ones are answered with a clean failure so the caller can
// retry instead of hanging.
func (n *node) crash() {
	n.c.tracer.NodeCrashed(n.id)
	n.c.ins.nodeCrashes.Inc()
	n.holds = make(map[holdKey]hold)
	n.heldTotal = qos.Resources{}
	for _, reqID := range sortedPendingIDs(n.pending) {
		p := n.pending[reqID]
		if p.comp != nil {
			n.rollback(p, reqID, obs.ReasonNodeCrash)
			continue
		}
		delete(n.pending, reqID)
		n.c.tracer.Decided(reqID, n.id, obs.ReasonNodeDown)
		n.c.ins.noComposition.Inc()
		p.reply <- composeReply{err: ErrNoComposition}
	}
}

// sortedPendingIDs orders the deputy's in-flight request IDs so a crash
// fails them in a reproducible sequence.
func sortedPendingIDs(pending map[int64]*pendingCompose) []int64 {
	out := make([]int64, 0, len(pending))
	for id := range pending {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// restart brings the node back: views may be stale (they refresh from
// broadcasts) and the fresh availability is re-announced.
func (n *node) restart() {
	n.c.tracer.NodeRestarted(n.id)
	n.c.ins.nodeRestarts.Inc()
	// Force the next broadcast check to fire by invalidating what peers
	// last heard from us.
	n.lastReported = qos.Resources{CPU: math.Inf(1), Memory: math.Inf(1)}
	n.maybeBroadcast()
}

func (n *node) dispatch(m message) {
	if n.down {
		n.dispatchDown(m)
		return
	}
	switch msg := m.(type) {
	case composeMsg:
		n.onCompose(msg)
	case probeMsg:
		n.onProbe(msg)
	case returnMsg:
		n.onReturn(msg)
	case decideMsg:
		n.onDecide(msg.reqID)
	case commitMsg:
		n.onCommit(msg)
	case commitAckMsg:
		n.onCommitAck(msg)
	case commitTimeoutMsg:
		n.onCommitTimeout(msg.reqID)
	case releaseMsg:
		n.onRelease(msg)
	case stateMsg:
		n.view[msg.node] = msg.avail
	case inspectMsg:
		msg.reply <- n.available()
	}
}

// dispatchDown handles traffic arriving during an outage: the protocol
// engine is down — probes and commit traffic are lost, compose requests
// are refused so callers fail fast (and may retry) — while the durable
// local ledger still applies releases and the monitoring inspect hook
// still answers.
func (n *node) dispatchDown(m message) {
	switch msg := m.(type) {
	case composeMsg:
		msg.reply <- composeReply{err: ErrNoComposition}
	case probeMsg:
		n.c.tracer.ProbeDropped(msg.req.ID, msg.probe, msg.idx, n.id, obs.ReasonNodeDown)
		n.c.ins.probesDropped.Inc()
	case releaseMsg:
		n.onRelease(msg)
	case inspectMsg:
		msg.reply <- n.available()
	default:
		// return/commit/ack/timeout/state traffic dies with the engine.
	}
}

// available returns this node's precise local availability.
func (n *node) available() qos.Resources {
	n.purgeHolds()
	return n.capacity.Sub(n.committed).Sub(n.heldTotal)
}

// availableFor credits back the owner's own holds (the request must not
// block on its own reservations).
func (n *node) availableFor(owner int64) qos.Resources {
	avail := n.available()
	// Sorted iteration: float addition is not associative, so summing in
	// map order would make availability depend on iteration order.
	for _, key := range sortedHoldKeys(n.holds) {
		if key.owner == owner {
			avail = avail.Add(n.holds[key].amount)
		}
	}
	return avail
}

// purgeHolds drops expired transient allocations, returning how many
// were expired.
func (n *node) purgeHolds() int {
	if len(n.holds) == 0 {
		return 0
	}
	now := n.c.clock.Now()
	expired := 0
	for _, key := range sortedHoldKeys(n.holds) {
		h := n.holds[key]
		if !h.expires.After(now) {
			n.heldTotal = n.heldTotal.Sub(h.amount)
			delete(n.holds, key)
			n.c.tracer.HoldReleased(key.owner, n.id)
			expired++
		}
	}
	return expired
}

// sortedHoldKeys orders hold keys by (owner, pos) so expiry sweeps emit
// tracer events in a reproducible sequence.
func sortedHoldKeys(holds map[holdKey]hold) []holdKey {
	out := make([]holdKey, 0, len(holds))
	for key := range holds {
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].owner != out[j].owner {
			return out[i].owner < out[j].owner
		}
		return out[i].pos < out[j].pos
	})
	return out
}

// holdFor places the transient allocation for (owner, pos); idempotent
// per key (footnote 7).
func (n *node) holdFor(owner int64, pos int, amount qos.Resources) bool {
	key := holdKey{owner: owner, pos: pos}
	if _, ok := n.holds[key]; ok {
		return true
	}
	if !n.available().Covers(amount) {
		return false
	}
	n.holds[key] = hold{amount: amount, expires: n.c.clock.Now().Add(n.c.cfg.HoldTTL)}
	n.heldTotal = n.heldTotal.Add(amount)
	return true
}

func (n *node) releaseHolds(owner int64) {
	released := 0
	// Sorted iteration keeps the running heldTotal bit-identical across
	// runs; subtracting floats in map order would not.
	for _, key := range sortedHoldKeys(n.holds) {
		if key.owner == owner {
			n.heldTotal = n.heldTotal.Sub(n.holds[key].amount)
			delete(n.holds, key)
			released++
		}
	}
	if released > 0 {
		n.c.tracer.HoldReleased(owner, n.id)
	}
}

// maybeBroadcast applies the threshold-triggered global update rule
// (§3.2): when committed availability drifts more than the threshold of
// capacity, report the fresh value to every node (best effort).
func (n *node) maybeBroadcast() {
	avail := n.capacity.Sub(n.committed)
	th := n.c.cfg.UpdateThreshold
	if math.Abs(avail.CPU-n.lastReported.CPU) <= th*n.capacity.CPU &&
		math.Abs(avail.Memory-n.lastReported.Memory) <= th*n.capacity.Memory {
		return
	}
	n.lastReported = avail
	msg := stateMsg{node: n.id, avail: avail}
	for _, peer := range n.c.nodes {
		if peer.id == n.id {
			peer.view[n.id] = avail
			continue
		}
		n.c.deliver(peer.id, msg, faults.KindState) // drops are tolerated: the view stays stale
	}
}

// onCompose initiates probing as the deputy node.
func (n *node) onCompose(msg composeMsg) {
	order, err := msg.req.Graph.TopoOrder()
	if err != nil {
		msg.reply <- composeReply{err: err}
		return
	}
	alpha := msg.alpha
	if alpha <= 0 {
		alpha = n.c.cfg.ProbingRatio
	}
	n.c.tracer.RequestReceived(msg.req.ID, n.id)
	p := &pendingCompose{req: msg.req, order: order, reply: msg.reply, alpha: alpha,
		composeStart: n.c.clock.Now()}
	n.pending[msg.req.ID] = p

	sent := n.fanOut(msg.req, order, 0,
		make([]component.ComponentID, msg.req.Graph.NumPositions()),
		qos.Vector{}, nil, alpha, 0)
	if sent == 0 {
		delete(n.pending, msg.req.ID)
		n.c.tracer.Decided(msg.req.ID, n.id, obs.ReasonNoComposition)
		n.c.ins.noComposition.Inc()
		msg.reply <- composeReply{err: ErrNoComposition}
		return
	}
	reqID := msg.req.ID
	n.c.clock.AfterFunc(n.c.cfg.CollectTimeout, func() {
		n.sendBlocking(decideMsg{reqID: reqID})
	})
}

// fanOut selects candidates for position order[idx] and sends one probe
// to each chosen candidate's host, returning how many were sent. parent
// is the span of the probe being extended (0 at the deputy's first hop);
// selection prunes are attributed to it.
func (n *node) fanOut(req *component.Request, order []int, idx int,
	assign []component.ComponentID, acc qos.Vector, avails []qos.Resources,
	alpha float64, parent int64) int {

	selected := n.selectCandidates(req, order, idx, assign, acc, alpha, parent)
	tr := n.c.tracer
	sent := 0
	for _, id := range selected {
		host := n.c.catalog.Component(id).Node
		var pid int64
		if tr.Enabled() {
			pid = tr.NextProbeID()
			tr.ProbeSpawned(req.ID, pid, order[idx], host, acc.Delay)
		}
		msg := probeMsg{
			req:    req,
			probe:  pid,
			deputy: req.Client,
			idx:    idx,
			chosen: id,
			assign: append([]component.ComponentID(nil), assign...),
			acc:    acc,
			avails: append([]qos.Resources(nil), avails...),
			alpha:  alpha,
		}
		if n.c.deliver(host, msg, faults.KindProbe) {
			sent++
			n.c.ins.probesSent.Inc()
		} else {
			tr.ProbeDropped(req.ID, pid, order[idx], host, obs.ReasonMailbox)
			n.c.ins.probesDropped.Inc()
		}
	}
	return sent
}

// selectCandidates applies §3.5 under this node's coarse view: filter by
// the QoS risk bound and the view's resource/bandwidth states, rank by
// risk then congestion, and keep ceil(alpha*k).
func (n *node) selectCandidates(req *component.Request, order []int, idx int,
	assign []component.ComponentID, acc qos.Vector, alpha float64, parent int64) []component.ComponentID {

	pos := order[idx]
	candidates := n.c.catalog.Candidates(req.Graph.Functions[pos])
	if len(candidates) == 0 {
		return nil
	}
	m := int(math.Ceil(alpha * float64(len(candidates))))
	if m < 1 {
		m = 1
	}

	tr := n.c.tracer
	type ranked struct {
		id   component.ComponentID
		node int
		risk float64
		cong float64
	}
	var qualified []ranked
	for _, id := range candidates {
		cand := n.c.catalog.Component(id)
		if !n.c.catalog.Usable(id) {
			continue
		}
		if cand.Security < req.MinSecurity {
			tr.CandidatePruned(req.ID, 0, parent, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		linkQoS, routeBW := n.predecessorLinks(req, pos, assign, cand.Node)
		candAcc := acc.Add(linkQoS).Add(cand.QoS)
		risk := candAcc.MaxRatio(req.QoSReq)
		if risk > 1 {
			tr.CandidatePruned(req.ID, 0, parent, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		avail := n.view[cand.Node]
		if !avail.Covers(req.ResReq[pos]) {
			tr.CandidatePruned(req.ID, 0, parent, pos, cand.Node, obs.ReasonResources)
			continue
		}
		if routeBW < req.BandwidthReq {
			tr.CandidatePruned(req.ID, 0, parent, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}
		cong := qos.CongestionTerm(req.ResReq[pos], avail.Sub(req.ResReq[pos])) +
			qos.BandwidthCongestionTerm(req.BandwidthReq, routeBW-req.BandwidthReq)
		qualified = append(qualified, ranked{id: id, node: cand.Node, risk: risk, cong: cong})
	}
	const band = 0.05
	if len(qualified) > m {
		sort.SliceStable(qualified, func(i, j int) bool {
			ri, rj := qualified[i].risk, qualified[j].risk
			if math.Abs(ri-rj) > band*math.Max(ri, rj) {
				return ri < rj
			}
			return qualified[i].cong < qualified[j].cong
		})
		if tr.Enabled() {
			for _, cut := range qualified[m:] {
				reason := obs.ReasonCongestionRank
				if math.Abs(cut.risk-qualified[m-1].risk) > band*math.Max(cut.risk, qualified[m-1].risk) {
					reason = obs.ReasonRiskRank
				}
				tr.CandidatePruned(req.ID, 0, parent, pos, cut.node, reason)
			}
		}
		qualified = qualified[:m]
	}
	out := make([]component.ComponentID, len(qualified))
	for i, q := range qualified {
		out[i] = q.id
	}
	return out
}

// predecessorLinks aggregates the virtual links from the already-chosen
// predecessors of pos to the candidate host.
func (n *node) predecessorLinks(req *component.Request, pos int,
	assign []component.ComponentID, host int) (qos.Vector, float64) {

	var linkQoS qos.Vector
	routeBW := math.Inf(1)
	for _, pred := range req.Graph.Predecessors(pos) {
		from := n.c.catalog.Component(assign[pred]).Node
		route, ok := n.c.mesh.RouteBetween(from, host)
		if !ok {
			return qos.Vector{Delay: math.Inf(1)}, 0
		}
		linkQoS = linkQoS.Add(route.QoS)
		routeBW = math.Min(routeBW, n.c.links.routeAvailable(route))
	}
	return linkQoS, routeBW
}

// onProbe performs per-hop probe processing for the candidate this node
// hosts (§3.3 step 2): precise conformance, transient allocation, and
// forwarding or return.
func (n *node) onProbe(msg probeMsg) {
	req := msg.req
	pos := msg.idx
	tr := n.c.tracer
	order, err := req.Graph.TopoOrder()
	if err != nil {
		tr.ProbeDropped(req.ID, msg.probe, pos, n.id, obs.ReasonInternal)
		return
	}
	gpos := order[pos]
	cand := n.c.catalog.Component(msg.chosen)

	linkQoS, routeBW := n.predecessorLinks(req, gpos, msg.assign, n.id)
	acc := msg.acc.Add(linkQoS).Add(cand.QoS)

	// Precise conformance (Eqs. 6-8) against this node's own state; drop
	// unqualified probes immediately.
	if cand.Security < req.MinSecurity {
		tr.CandidatePruned(req.ID, msg.probe, 0, gpos, n.id, obs.ReasonSecurity)
		return
	}
	if acc.MaxRatio(req.QoSReq) > 1 {
		tr.CandidatePruned(req.ID, msg.probe, 0, gpos, n.id, obs.ReasonQoS)
		return
	}
	if !n.availableFor(req.ID).Covers(req.ResReq[gpos]) {
		tr.CandidatePruned(req.ID, msg.probe, 0, gpos, n.id, obs.ReasonResources)
		return
	}
	if routeBW < req.BandwidthReq {
		tr.CandidatePruned(req.ID, msg.probe, 0, gpos, n.id, obs.ReasonBandwidth)
		return
	}
	if !n.holdFor(req.ID, gpos, req.ResReq[gpos]) {
		tr.CandidatePruned(req.ID, msg.probe, 0, gpos, n.id, obs.ReasonHoldNode)
		return
	}
	tr.HoldAcquired(req.ID, msg.probe, gpos, n.id)

	assign := append([]component.ComponentID(nil), msg.assign...)
	assign[gpos] = msg.chosen
	avails := append(append([]qos.Resources(nil), msg.avails...), n.available())

	if msg.idx == len(order)-1 {
		if n.c.deliver(msg.deputy, returnMsg{
			reqID:  req.ID,
			assign: assign,
			acc:    acc,
			avails: avails,
		}, faults.KindProbe) {
			tr.ProbeReturned(req.ID, msg.probe, n.id, acc.Delay)
			n.c.ins.probeReturns.Inc()
			n.c.ins.probeDelayMs.Observe(acc.Delay)
		} else {
			tr.ProbeDropped(req.ID, msg.probe, pos, n.id, obs.ReasonMailbox)
			n.c.ins.probesDropped.Inc()
		}
		return
	}
	children := n.fanOut(req, order, msg.idx+1, assign, acc, avails, msg.alpha, msg.probe)
	tr.ProbeForwarded(req.ID, msg.probe, gpos, n.id, children)
}

// onReturn records a completed probe at the deputy.
func (n *node) onReturn(msg returnMsg) {
	p, ok := n.pending[msg.reqID]
	if !ok || p.decided {
		return
	}
	p.returns = append(p.returns, msg)
}

// onDecide closes the probe collection window: select the phi-minimal
// qualified composition and start the commit phase (§3.3 steps 3-4).
func (n *node) onDecide(reqID int64) {
	p, ok := n.pending[reqID]
	if !ok || p.decided {
		return
	}
	p.decided = true
	n.c.ins.collectMs.Observe(float64(n.c.clock.Since(p.composeStart)) / float64(time.Millisecond))

	var (
		best    *Composition
		bestDem demands
	)
	for _, ret := range p.returns {
		comp, dem, ok := n.evaluateReturn(p.req, ret)
		if !ok {
			continue
		}
		if best == nil || comp.Phi < best.Phi {
			best, bestDem = comp, dem
		}
	}
	if best == nil {
		delete(n.pending, reqID)
		n.c.tracer.Decided(reqID, n.id, obs.ReasonNoComposition)
		n.c.ins.noComposition.Inc()
		p.reply <- composeReply{err: ErrNoComposition}
		return
	}
	n.c.tracer.Decided(reqID, n.id, "")

	// Commit phase: bandwidth first (atomic all-or-nothing), then the
	// per-node resource confirmations.
	if !n.c.links.reserve(bestDem.links) {
		delete(n.pending, reqID)
		n.c.tracer.RolledBack(reqID, n.id, obs.ReasonBandwidth)
		n.c.ins.rollbacks.Inc()
		p.reply <- composeReply{err: ErrNoComposition}
		return
	}
	p.comp = best
	p.commitStart = n.c.clock.Now()
	p.linkDemand = bestDem.links
	p.nodeDemand = bestDem.nodes
	p.needAcks = make(map[int]bool, len(bestDem.nodes))
	for nodeID := range bestDem.nodes {
		p.needAcks[nodeID] = false
	}
	n.startCommit(reqID, p)
}

// startCommit sends the per-node confirmations of the decided
// composition and arms the commit-ack timeout.
func (n *node) startCommit(reqID int64, p *pendingCompose) {
	for _, nodeID := range sortedNodeKeys(p.nodeDemand) {
		amount := p.nodeDemand[nodeID]
		if _, live := n.pending[reqID]; !live {
			// An inline nack already rolled the commit back; every
			// participant (including the unsent ones) has been released
			// and late commits are refused by tombstones. Stop here.
			return
		}
		msg := commitMsg{owner: reqID, amount: amount, deputy: n.id, reqID: reqID}
		if nodeID == n.id {
			n.onCommit(msg) // local commit without a mailbox round trip
			continue
		}
		if !n.c.deliver(nodeID, msg, faults.KindProtocol) {
			// The peer's mailbox is full: record the nack inline. The old
			// path bounced a commitAckMsg off our own mailbox, where it
			// could itself be lost to overflow and stall the request
			// until the commit timeout.
			n.onCommitAck(commitAckMsg{reqID: reqID, node: nodeID, ok: false})
		}
	}
	if _, live := n.pending[reqID]; !live {
		return // resolved inline (single-node commit or rolled back)
	}
	n.c.clock.AfterFunc(n.c.cfg.CommitTimeout, func() {
		n.sendBlocking(commitTimeoutMsg{reqID: reqID})
	})
}

// evaluateReturn checks a returned composition against the constraints
// and computes phi from the precise states the probe collected.
func (n *node) evaluateReturn(req *component.Request, ret returnMsg) (*Composition, demands, bool) {
	if ret.acc.MaxRatio(req.QoSReq) > 1 {
		return nil, demands{}, false
	}
	dem := n.c.demandsOf(req, ret.assign)
	order, err := req.Graph.TopoOrder()
	if err != nil || len(ret.avails) != len(order) {
		return nil, demands{}, false
	}

	// Node congestion terms from the availability snapshots the probe
	// carried back; multiple placements on one node share the residual
	// after the total demand (footnote 5).
	availAt := make(map[int]qos.Resources, len(dem.nodes))
	for i, gpos := range order {
		host := n.c.catalog.Component(ret.assign[gpos]).Node
		availAt[host] = ret.avails[i]
	}
	phi := 0.0
	for _, gpos := range order {
		host := n.c.catalog.Component(ret.assign[gpos]).Node
		// The snapshot was taken right after the probe placed this
		// position's own hold, so it already excludes this placement;
		// subtract the rest of the request's demand on the same host to
		// get the residual after all placements (footnote 5).
		residual := availAt[host].Sub(dem.nodes[host]).Add(req.ResReq[gpos])
		if !residual.NonNegative() {
			return nil, demands{}, false
		}
		phi += qos.CongestionTerm(req.ResReq[gpos], residual)
	}
	for _, e := range req.Graph.Edges {
		from := n.c.catalog.Component(ret.assign[e.From]).Node
		to := n.c.catalog.Component(ret.assign[e.To]).Node
		route, ok := n.c.mesh.RouteBetween(from, to)
		if !ok {
			return nil, demands{}, false
		}
		residual := math.Inf(1)
		if !route.CoLocated {
			// The residual is what each link has left after ALL of this
			// request's reservations on it (footnote 8): edges sharing
			// an overlay link stack their bandwidth, which is also what
			// the commit-phase reserve will need to find available.
			for _, link := range route.Links {
				r := n.c.links.linkAvailable(link) - dem.links[link]
				if r < 0 {
					return nil, demands{}, false
				}
				residual = math.Min(residual, r)
			}
		}
		phi += qos.BandwidthCongestionTerm(req.BandwidthReq, residual)
	}
	return &Composition{
		Components: ret.assign,
		Phi:        phi,
		QoS:        ret.acc,
		owner:      req.ID,
	}, dem, true
}

// onCommit promotes the owner's transient holds into a committed
// allocation, or rejects if the resources are no longer there.
// Idempotent under duplicated delivery: a repeated commit re-acks
// without double-committing, and a commit arriving after the request
// was already released (rollback raced ahead) is refused.
func (n *node) onCommit(msg commitMsg) {
	n.releaseHolds(msg.owner)
	ack := commitAckMsg{reqID: msg.reqID, node: n.id}
	if _, dup := n.commits[msg.owner]; dup {
		ack.ok = true
	} else if _, dead := n.released[msg.owner]; dead {
		ack.ok = false
	} else if n.available().Covers(msg.amount) {
		n.commits[msg.owner] = msg.amount
		n.committed = n.committed.Add(msg.amount)
		ack.ok = true
		n.maybeBroadcast()
	}
	if msg.deputy == n.id {
		n.onCommitAck(ack)
		return
	}
	n.c.deliver(msg.deputy, ack, faults.KindProtocol)
}

// onCommitAck gathers commit outcomes; all-acked resolves the request,
// any nack rolls back.
func (n *node) onCommitAck(msg commitAckMsg) {
	p, ok := n.pending[msg.reqID]
	if !ok || p.comp == nil {
		return
	}
	if !msg.ok {
		n.rollback(p, msg.reqID, obs.ReasonCommitNack)
		return
	}
	p.needAcks[msg.node] = true
	for _, acked := range p.needAcks {
		if !acked {
			return
		}
	}
	delete(n.pending, msg.reqID)
	n.c.tracer.Committed(msg.reqID, n.id)
	n.c.ins.commits.Inc()
	n.c.ins.commitMs.Observe(float64(n.c.clock.Since(p.commitStart)) / float64(time.Millisecond))
	sess := strconv.FormatInt(msg.reqID, 10)
	n.c.ins.sessionPhi.With(sess).Set(p.comp.Phi)
	n.c.ins.sessionQoS.With(sess).Set(p.comp.QoS.MaxRatio(p.req.QoSReq))
	n.c.ins.sessionQoSReq.With(sess).Set(1)
	p.reply <- composeReply{comp: p.comp}
}

// onCommitTimeout treats overdue acks as failure.
func (n *node) onCommitTimeout(reqID int64) {
	p, ok := n.pending[reqID]
	if !ok || p.comp == nil {
		return
	}
	n.rollback(p, reqID, obs.ReasonCommitTimeout)
}

// rollback releases whatever the commit phase may have acquired and
// reports failure. It releases every participant the commit targeted —
// not only the acked ones — because a participant whose ack was lost
// (or whose commit is still in flight) has, or will, commit; releases
// are idempotent (the node's own ledger knows what the owner holds) and
// a release racing ahead of its commit leaves a tombstone that refuses
// the late commit.
func (n *node) rollback(p *pendingCompose, reqID int64, reason obs.Reason) {
	delete(n.pending, reqID)
	n.c.tracer.RolledBack(reqID, n.id, reason)
	n.c.ins.rollbacks.Inc()
	if p.comp != nil {
		n.c.ins.commitMs.Observe(float64(n.c.clock.Since(p.commitStart)) / float64(time.Millisecond))
	}
	n.c.links.release(p.linkDemand)
	for _, nodeID := range sortedNodeKeys(p.nodeDemand) {
		if nodeID == n.id {
			n.onRelease(releaseMsg{owner: reqID})
			continue
		}
		n.c.sendRelease(nodeID, reqID)
	}
	p.reply <- composeReply{err: ErrNoComposition}
}

// onRelease returns the owner's committed resources (session close or
// rollback). Only what this node's ledger recorded for the owner is
// released, which makes duplicates and speculative rollback releases
// no-ops. Every release leaves a TTL-bounded tombstone: request IDs are
// never reused, so any commit for this owner that is still in flight —
// a rollback racing ahead of its own commit, or a duplicated commit
// arriving after the session already closed — is stale and must be
// refused instead of leaking a committed allocation. The tombstone TTL
// (HoldTTL) bounds how long a stale commit can stay in flight, which
// injected delivery delays must stay under.
func (n *node) onRelease(msg releaseMsg) {
	n.releaseHolds(msg.owner)
	n.released[msg.owner] = n.c.clock.Now().Add(n.c.cfg.HoldTTL)
	amount, ok := n.commits[msg.owner]
	if !ok {
		return
	}
	delete(n.commits, msg.owner)
	n.committed = n.committed.Sub(amount)
	n.maybeBroadcast()
}
