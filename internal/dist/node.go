package dist

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/component"
	"repro/internal/obs"
	"repro/internal/qos"
)

// message is the sum type flowing through node mailboxes.
type message interface{}

// composeMsg asks a node to act as deputy for a request (§3.3 step 1).
type composeMsg struct {
	req   *component.Request
	reply chan composeReply
}

type composeReply struct {
	comp *Composition
	err  error
}

// probeMsg is one probe hop: the receiving node hosts the candidate
// chosen for position order[idx] and performs per-hop processing
// (§3.3 step 2).
type probeMsg struct {
	req    *component.Request
	probe  int64 // tracer span ID; 0 when tracing is disabled
	deputy int
	idx    int // index into the topological order
	chosen component.ComponentID
	assign []component.ComponentID // positions order[0..idx-1] filled
	acc    qos.Vector
	avails []qos.Resources // availability observed at each assigned node
}

// returnMsg carries a complete probed composition back to the deputy
// (§3.3 step 3).
type returnMsg struct {
	reqID  int64
	assign []component.ComponentID
	acc    qos.Vector
	avails []qos.Resources
}

// decideMsg fires when the deputy's probe collection window closes.
type decideMsg struct{ reqID int64 }

// commitMsg makes a transient allocation permanent (§3.3 step 4).
type commitMsg struct {
	owner  int64
	amount qos.Resources
	deputy int
	reqID  int64
}

// commitAckMsg reports a node's commit outcome to the deputy.
type commitAckMsg struct {
	reqID int64
	node  int
	ok    bool
}

// commitTimeoutMsg fires when commit acks are overdue.
type commitTimeoutMsg struct{ reqID int64 }

// releaseMsg frees committed resources (session close or rollback).
type releaseMsg struct {
	owner  int64
	amount qos.Resources
}

// stateMsg is a coarse global-state update broadcast (§3.2).
type stateMsg struct {
	node  int
	avail qos.Resources
}

// inspectMsg asks a node for its precise availability (monitoring and
// test hook).
type inspectMsg struct{ reply chan qos.Resources }

type holdKey struct {
	owner int64
	pos   int
}

type hold struct {
	amount  qos.Resources
	expires time.Time
}

// pendingCompose is the deputy-side state of one in-flight request.
type pendingCompose struct {
	req     *component.Request
	order   []int
	reply   chan composeReply
	returns []returnMsg
	decided bool

	// commit phase
	comp       *Composition
	needAcks   map[int]bool // node -> acked
	ackedNodes map[int]qos.Resources
	nodeDemand map[int]qos.Resources
	linkDemand map[int]float64
}

// node is one stream processing host: a goroutine owning its end-system
// resource state, its coarse view of everyone else, and its share of the
// protocol.
type node struct {
	c       *Cluster
	id      int
	mailbox chan message
	quit    chan struct{}
	rng     *rand.Rand

	capacity     qos.Resources
	committed    qos.Resources
	heldTotal    qos.Resources
	holds        map[holdKey]hold
	view         []qos.Resources
	lastReported qos.Resources
	pending      map[int64]*pendingCompose
}

func newNode(c *Cluster, id int, rng *rand.Rand) *node {
	n := &node{
		c:       c,
		id:      id,
		mailbox: make(chan message, c.cfg.MailboxSize),
		quit:    make(chan struct{}),
		rng:     rng,
		holds:   make(map[holdKey]hold),
		view:    make([]qos.Resources, c.mesh.NumNodes()),
		pending: make(map[int64]*pendingCompose),
	}
	n.capacity = c.cfg.NodeCapacity
	n.lastReported = n.capacity
	for i := range n.view {
		n.view[i] = c.cfg.NodeCapacity
	}
	return n
}

// send enqueues a message, reporting false if the mailbox is full. State
// broadcasts tolerate drops (the view just goes stale); protocol
// messages treat a full mailbox as an overloaded peer.
func (n *node) send(m message) bool {
	select {
	case n.mailbox <- m:
		return true
	default:
		return false
	}
}

// sendBlocking enqueues a message, waiting for mailbox space; it gives
// up when the node shuts down. Used for the deputy's own timer events,
// which must not be lost to a momentarily full mailbox.
func (n *node) sendBlocking(m message) {
	select {
	case n.mailbox <- m:
	case <-n.quit:
	}
}

func (n *node) run() {
	for {
		select {
		case <-n.quit:
			return
		case m := <-n.mailbox:
			n.dispatch(m)
		}
	}
}

func (n *node) dispatch(m message) {
	switch msg := m.(type) {
	case composeMsg:
		n.onCompose(msg)
	case probeMsg:
		n.onProbe(msg)
	case returnMsg:
		n.onReturn(msg)
	case decideMsg:
		n.onDecide(msg.reqID)
	case commitMsg:
		n.onCommit(msg)
	case commitAckMsg:
		n.onCommitAck(msg)
	case commitTimeoutMsg:
		n.onCommitTimeout(msg.reqID)
	case releaseMsg:
		n.onRelease(msg)
	case stateMsg:
		n.view[msg.node] = msg.avail
	case inspectMsg:
		msg.reply <- n.available()
	}
}

// available returns this node's precise local availability.
func (n *node) available() qos.Resources {
	n.purgeHolds()
	return n.capacity.Sub(n.committed).Sub(n.heldTotal)
}

// availableFor credits back the owner's own holds (the request must not
// block on its own reservations).
func (n *node) availableFor(owner int64) qos.Resources {
	avail := n.available()
	for key, h := range n.holds {
		if key.owner == owner {
			avail = avail.Add(h.amount)
		}
	}
	return avail
}

func (n *node) purgeHolds() {
	if len(n.holds) == 0 {
		return
	}
	now := time.Now()
	for key, h := range n.holds {
		if !h.expires.After(now) {
			n.heldTotal = n.heldTotal.Sub(h.amount)
			delete(n.holds, key)
			n.c.tracer.HoldReleased(key.owner, n.id)
		}
	}
}

// holdFor places the transient allocation for (owner, pos); idempotent
// per key (footnote 7).
func (n *node) holdFor(owner int64, pos int, amount qos.Resources) bool {
	key := holdKey{owner: owner, pos: pos}
	if _, ok := n.holds[key]; ok {
		return true
	}
	if !n.available().Covers(amount) {
		return false
	}
	n.holds[key] = hold{amount: amount, expires: time.Now().Add(n.c.cfg.HoldTTL)}
	n.heldTotal = n.heldTotal.Add(amount)
	return true
}

func (n *node) releaseHolds(owner int64) {
	released := 0
	for key, h := range n.holds {
		if key.owner == owner {
			n.heldTotal = n.heldTotal.Sub(h.amount)
			delete(n.holds, key)
			released++
		}
	}
	if released > 0 {
		n.c.tracer.HoldReleased(owner, n.id)
	}
}

// maybeBroadcast applies the threshold-triggered global update rule
// (§3.2): when committed availability drifts more than the threshold of
// capacity, report the fresh value to every node (best effort).
func (n *node) maybeBroadcast() {
	avail := n.capacity.Sub(n.committed)
	th := n.c.cfg.UpdateThreshold
	if math.Abs(avail.CPU-n.lastReported.CPU) <= th*n.capacity.CPU &&
		math.Abs(avail.Memory-n.lastReported.Memory) <= th*n.capacity.Memory {
		return
	}
	n.lastReported = avail
	msg := stateMsg{node: n.id, avail: avail}
	for _, peer := range n.c.nodes {
		if peer.id == n.id {
			peer.view[n.id] = avail
			continue
		}
		peer.send(msg) // drops are tolerated: the view stays stale
	}
}

// onCompose initiates probing as the deputy node.
func (n *node) onCompose(msg composeMsg) {
	order, err := msg.req.Graph.TopoOrder()
	if err != nil {
		msg.reply <- composeReply{err: err}
		return
	}
	n.c.tracer.RequestReceived(msg.req.ID, n.id)
	p := &pendingCompose{req: msg.req, order: order, reply: msg.reply}
	n.pending[msg.req.ID] = p

	sent := n.fanOut(msg.req, order, 0,
		make([]component.ComponentID, msg.req.Graph.NumPositions()),
		qos.Vector{}, nil)
	if sent == 0 {
		delete(n.pending, msg.req.ID)
		n.c.tracer.Decided(msg.req.ID, n.id, obs.ReasonNoComposition)
		n.c.ins.noComposition.Inc()
		msg.reply <- composeReply{err: ErrNoComposition}
		return
	}
	reqID := msg.req.ID
	time.AfterFunc(n.c.cfg.CollectTimeout, func() {
		n.sendBlocking(decideMsg{reqID: reqID})
	})
}

// fanOut selects candidates for position order[idx] and sends one probe
// to each chosen candidate's host, returning how many were sent.
func (n *node) fanOut(req *component.Request, order []int, idx int,
	assign []component.ComponentID, acc qos.Vector, avails []qos.Resources) int {

	selected := n.selectCandidates(req, order, idx, assign, acc)
	tr := n.c.tracer
	sent := 0
	for _, id := range selected {
		host := n.c.catalog.Component(id).Node
		var pid int64
		if tr.Enabled() {
			pid = tr.NextProbeID()
			tr.ProbeSpawned(req.ID, pid, order[idx], host, acc.Delay)
		}
		msg := probeMsg{
			req:    req,
			probe:  pid,
			deputy: req.Client,
			idx:    idx,
			chosen: id,
			assign: append([]component.ComponentID(nil), assign...),
			acc:    acc,
			avails: append([]qos.Resources(nil), avails...),
		}
		if n.c.nodes[host].send(msg) {
			sent++
			n.c.ins.probesSent.Inc()
		} else {
			tr.ProbeDropped(req.ID, pid, order[idx], host, obs.ReasonMailbox)
			n.c.ins.probesDropped.Inc()
		}
	}
	return sent
}

// selectCandidates applies §3.5 under this node's coarse view: filter by
// the QoS risk bound and the view's resource/bandwidth states, rank by
// risk then congestion, and keep ceil(alpha*k).
func (n *node) selectCandidates(req *component.Request, order []int, idx int,
	assign []component.ComponentID, acc qos.Vector) []component.ComponentID {

	pos := order[idx]
	candidates := n.c.catalog.Candidates(req.Graph.Functions[pos])
	if len(candidates) == 0 {
		return nil
	}
	m := int(math.Ceil(n.c.cfg.ProbingRatio * float64(len(candidates))))
	if m < 1 {
		m = 1
	}

	tr := n.c.tracer
	type ranked struct {
		id   component.ComponentID
		node int
		risk float64
		cong float64
	}
	var qualified []ranked
	for _, id := range candidates {
		cand := n.c.catalog.Component(id)
		if !n.c.catalog.Usable(id) {
			continue
		}
		if cand.Security < req.MinSecurity {
			tr.CandidatePruned(req.ID, 0, pos, cand.Node, obs.ReasonSecurity)
			continue
		}
		linkQoS, routeBW := n.predecessorLinks(req, pos, assign, cand.Node)
		candAcc := acc.Add(linkQoS).Add(cand.QoS)
		risk := candAcc.MaxRatio(req.QoSReq)
		if risk > 1 {
			tr.CandidatePruned(req.ID, 0, pos, cand.Node, obs.ReasonQoS)
			continue
		}
		avail := n.view[cand.Node]
		if !avail.Covers(req.ResReq[pos]) {
			tr.CandidatePruned(req.ID, 0, pos, cand.Node, obs.ReasonResources)
			continue
		}
		if routeBW < req.BandwidthReq {
			tr.CandidatePruned(req.ID, 0, pos, cand.Node, obs.ReasonBandwidth)
			continue
		}
		cong := qos.CongestionTerm(req.ResReq[pos], avail.Sub(req.ResReq[pos])) +
			qos.BandwidthCongestionTerm(req.BandwidthReq, routeBW-req.BandwidthReq)
		qualified = append(qualified, ranked{id: id, node: cand.Node, risk: risk, cong: cong})
	}
	const band = 0.05
	if len(qualified) > m {
		sort.SliceStable(qualified, func(i, j int) bool {
			ri, rj := qualified[i].risk, qualified[j].risk
			if math.Abs(ri-rj) > band*math.Max(ri, rj) {
				return ri < rj
			}
			return qualified[i].cong < qualified[j].cong
		})
		if tr.Enabled() {
			for _, cut := range qualified[m:] {
				reason := obs.ReasonCongestionRank
				if math.Abs(cut.risk-qualified[m-1].risk) > band*math.Max(cut.risk, qualified[m-1].risk) {
					reason = obs.ReasonRiskRank
				}
				tr.CandidatePruned(req.ID, 0, pos, cut.node, reason)
			}
		}
		qualified = qualified[:m]
	}
	out := make([]component.ComponentID, len(qualified))
	for i, q := range qualified {
		out[i] = q.id
	}
	return out
}

// predecessorLinks aggregates the virtual links from the already-chosen
// predecessors of pos to the candidate host.
func (n *node) predecessorLinks(req *component.Request, pos int,
	assign []component.ComponentID, host int) (qos.Vector, float64) {

	var linkQoS qos.Vector
	routeBW := math.Inf(1)
	for _, pred := range req.Graph.Predecessors(pos) {
		from := n.c.catalog.Component(assign[pred]).Node
		route, ok := n.c.mesh.RouteBetween(from, host)
		if !ok {
			return qos.Vector{Delay: math.Inf(1)}, 0
		}
		linkQoS = linkQoS.Add(route.QoS)
		routeBW = math.Min(routeBW, n.c.links.routeAvailable(route))
	}
	return linkQoS, routeBW
}

// onProbe performs per-hop probe processing for the candidate this node
// hosts (§3.3 step 2): precise conformance, transient allocation, and
// forwarding or return.
func (n *node) onProbe(msg probeMsg) {
	req := msg.req
	pos := msg.idx
	tr := n.c.tracer
	order, err := req.Graph.TopoOrder()
	if err != nil {
		tr.ProbeDropped(req.ID, msg.probe, pos, n.id, obs.ReasonInternal)
		return
	}
	gpos := order[pos]
	cand := n.c.catalog.Component(msg.chosen)

	linkQoS, routeBW := n.predecessorLinks(req, gpos, msg.assign, n.id)
	acc := msg.acc.Add(linkQoS).Add(cand.QoS)

	// Precise conformance (Eqs. 6-8) against this node's own state; drop
	// unqualified probes immediately.
	if cand.Security < req.MinSecurity {
		tr.CandidatePruned(req.ID, msg.probe, gpos, n.id, obs.ReasonSecurity)
		return
	}
	if acc.MaxRatio(req.QoSReq) > 1 {
		tr.CandidatePruned(req.ID, msg.probe, gpos, n.id, obs.ReasonQoS)
		return
	}
	if !n.availableFor(req.ID).Covers(req.ResReq[gpos]) {
		tr.CandidatePruned(req.ID, msg.probe, gpos, n.id, obs.ReasonResources)
		return
	}
	if routeBW < req.BandwidthReq {
		tr.CandidatePruned(req.ID, msg.probe, gpos, n.id, obs.ReasonBandwidth)
		return
	}
	if !n.holdFor(req.ID, gpos, req.ResReq[gpos]) {
		tr.CandidatePruned(req.ID, msg.probe, gpos, n.id, obs.ReasonHoldNode)
		return
	}
	tr.HoldAcquired(req.ID, msg.probe, gpos, n.id)

	assign := append([]component.ComponentID(nil), msg.assign...)
	assign[gpos] = msg.chosen
	avails := append(append([]qos.Resources(nil), msg.avails...), n.available())

	if msg.idx == len(order)-1 {
		if n.c.nodes[msg.deputy].send(returnMsg{
			reqID:  req.ID,
			assign: assign,
			acc:    acc,
			avails: avails,
		}) {
			tr.ProbeReturned(req.ID, msg.probe, n.id, acc.Delay)
			n.c.ins.probeReturns.Inc()
			n.c.ins.probeDelayMs.Observe(acc.Delay)
		} else {
			tr.ProbeDropped(req.ID, msg.probe, pos, n.id, obs.ReasonMailbox)
			n.c.ins.probesDropped.Inc()
		}
		return
	}
	children := n.fanOut(req, order, msg.idx+1, assign, acc, avails)
	tr.ProbeForwarded(req.ID, msg.probe, gpos, n.id, children)
}

// onReturn records a completed probe at the deputy.
func (n *node) onReturn(msg returnMsg) {
	p, ok := n.pending[msg.reqID]
	if !ok || p.decided {
		return
	}
	p.returns = append(p.returns, msg)
}

// onDecide closes the probe collection window: select the phi-minimal
// qualified composition and start the commit phase (§3.3 steps 3-4).
func (n *node) onDecide(reqID int64) {
	p, ok := n.pending[reqID]
	if !ok || p.decided {
		return
	}
	p.decided = true

	var (
		best    *Composition
		bestDem demands
	)
	for _, ret := range p.returns {
		comp, dem, ok := n.evaluateReturn(p.req, ret)
		if !ok {
			continue
		}
		if best == nil || comp.Phi < best.Phi {
			best, bestDem = comp, dem
		}
	}
	if best == nil {
		delete(n.pending, reqID)
		n.c.tracer.Decided(reqID, n.id, obs.ReasonNoComposition)
		n.c.ins.noComposition.Inc()
		p.reply <- composeReply{err: ErrNoComposition}
		return
	}
	n.c.tracer.Decided(reqID, n.id, "")

	// Commit phase: bandwidth first (atomic all-or-nothing), then the
	// per-node resource confirmations.
	if !n.c.links.reserve(bestDem.links) {
		delete(n.pending, reqID)
		n.c.tracer.RolledBack(reqID, n.id, obs.ReasonBandwidth)
		n.c.ins.rollbacks.Inc()
		p.reply <- composeReply{err: ErrNoComposition}
		return
	}
	p.comp = best
	p.linkDemand = bestDem.links
	p.nodeDemand = bestDem.nodes
	p.needAcks = make(map[int]bool, len(bestDem.nodes))
	p.ackedNodes = make(map[int]qos.Resources, len(bestDem.nodes))
	for nodeID := range bestDem.nodes {
		p.needAcks[nodeID] = false
	}
	for nodeID, amount := range bestDem.nodes {
		msg := commitMsg{owner: reqID, amount: amount, deputy: n.id, reqID: reqID}
		if nodeID == n.id {
			n.onCommit(msg) // local commit without a mailbox round trip
			continue
		}
		if !n.c.nodes[nodeID].send(msg) {
			// Treat an overloaded peer as a nack.
			n.send(commitAckMsg{reqID: reqID, node: nodeID, ok: false})
		}
	}
	time.AfterFunc(time.Second, func() {
		n.sendBlocking(commitTimeoutMsg{reqID: reqID})
	})
}

// evaluateReturn checks a returned composition against the constraints
// and computes phi from the precise states the probe collected.
func (n *node) evaluateReturn(req *component.Request, ret returnMsg) (*Composition, demands, bool) {
	if ret.acc.MaxRatio(req.QoSReq) > 1 {
		return nil, demands{}, false
	}
	dem := n.c.demandsOf(req, ret.assign)
	order, err := req.Graph.TopoOrder()
	if err != nil || len(ret.avails) != len(order) {
		return nil, demands{}, false
	}

	// Node congestion terms from the availability snapshots the probe
	// carried back; multiple placements on one node share the residual
	// after the total demand (footnote 5).
	availAt := make(map[int]qos.Resources, len(dem.nodes))
	for i, gpos := range order {
		host := n.c.catalog.Component(ret.assign[gpos]).Node
		availAt[host] = ret.avails[i]
	}
	phi := 0.0
	for _, gpos := range order {
		host := n.c.catalog.Component(ret.assign[gpos]).Node
		// The snapshot was taken right after the probe placed this
		// position's own hold, so it already excludes this placement;
		// subtract the rest of the request's demand on the same host to
		// get the residual after all placements (footnote 5).
		residual := availAt[host].Sub(dem.nodes[host]).Add(req.ResReq[gpos])
		if !residual.NonNegative() {
			return nil, demands{}, false
		}
		phi += qos.CongestionTerm(req.ResReq[gpos], residual)
	}
	for _, e := range req.Graph.Edges {
		from := n.c.catalog.Component(ret.assign[e.From]).Node
		to := n.c.catalog.Component(ret.assign[e.To]).Node
		route, ok := n.c.mesh.RouteBetween(from, to)
		if !ok {
			return nil, demands{}, false
		}
		residual := math.Inf(1)
		if !route.CoLocated {
			residual = n.c.links.routeAvailable(route) - req.BandwidthReq
			if residual < 0 {
				return nil, demands{}, false
			}
		}
		phi += qos.BandwidthCongestionTerm(req.BandwidthReq, residual)
	}
	return &Composition{
		Components: ret.assign,
		Phi:        phi,
		QoS:        ret.acc,
		owner:      req.ID,
	}, dem, true
}

// onCommit promotes the owner's transient holds into a committed
// allocation, or rejects if the resources are no longer there.
func (n *node) onCommit(msg commitMsg) {
	n.releaseHolds(msg.owner)
	ok := n.available().Covers(msg.amount)
	if ok {
		n.committed = n.committed.Add(msg.amount)
		n.maybeBroadcast()
	}
	ack := commitAckMsg{reqID: msg.reqID, node: n.id, ok: ok}
	if msg.deputy == n.id {
		n.onCommitAck(ack)
		return
	}
	n.c.nodes[msg.deputy].send(ack)
}

// onCommitAck gathers commit outcomes; all-acked resolves the request,
// any nack rolls back.
func (n *node) onCommitAck(msg commitAckMsg) {
	p, ok := n.pending[msg.reqID]
	if !ok || p.comp == nil {
		return
	}
	if !msg.ok {
		n.rollback(p, msg.reqID, obs.ReasonCommitNack)
		return
	}
	p.needAcks[msg.node] = true
	p.ackedNodes[msg.node] = p.nodeDemand[msg.node]
	for _, acked := range p.needAcks {
		if !acked {
			return
		}
	}
	delete(n.pending, msg.reqID)
	n.c.tracer.Committed(msg.reqID, n.id)
	n.c.ins.commits.Inc()
	p.reply <- composeReply{comp: p.comp}
}

// onCommitTimeout treats overdue acks as failure.
func (n *node) onCommitTimeout(reqID int64) {
	p, ok := n.pending[reqID]
	if !ok || p.comp == nil {
		return
	}
	n.rollback(p, reqID, obs.ReasonCommitTimeout)
}

// rollback releases whatever the commit phase already acquired and
// reports failure.
func (n *node) rollback(p *pendingCompose, reqID int64, reason obs.Reason) {
	delete(n.pending, reqID)
	n.c.tracer.RolledBack(reqID, n.id, reason)
	n.c.ins.rollbacks.Inc()
	n.c.links.release(p.linkDemand)
	for nodeID, amount := range p.ackedNodes {
		if nodeID == n.id {
			n.onRelease(releaseMsg{owner: reqID, amount: amount})
			continue
		}
		n.c.nodes[nodeID].send(releaseMsg{owner: reqID, amount: amount})
	}
	p.reply <- composeReply{err: ErrNoComposition}
}

// onRelease returns committed resources (session close or rollback).
func (n *node) onRelease(msg releaseMsg) {
	n.releaseHolds(msg.owner)
	n.committed = n.committed.Sub(msg.amount)
	if n.committed.CPU < 0 {
		n.committed.CPU = 0
	}
	if n.committed.Memory < 0 {
		n.committed.Memory = 0
	}
	n.maybeBroadcast()
}
