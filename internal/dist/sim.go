package dist

import (
	"fmt"

	"repro/internal/component"
	"repro/internal/overlay"
	"repro/internal/qos"
)

// This file is the deterministic-simulation surface of the cluster,
// used by internal/harness. A simulated cluster is built with
// NewUnstarted — same substrate, same per-node protocol state, but no
// node goroutines — and driven one message at a time by a
// single-threaded scheduler that owns the (virtual) clock. Because
// every dispatch, timer callback, and fault decision then happens on
// the driving goroutine in an order fixed by the harness seed, a run
// is bit-reproducible.
//
// The accessors here read node state without locks; they are only
// meaningful on an unstarted cluster, between steps, on the driving
// goroutine.

// NewUnstarted builds a cluster without starting the node goroutines.
// Nodes then process messages only when the caller steps them
// (StepNode/SweepNode); Compose, Idle, and Shutdown — which hand work
// to node goroutines and wait — must not be used. The mailbox size is
// raised so that deputy timer events (which block on a full mailbox)
// cannot deadlock the single-threaded driver.
func NewUnstarted(cfg Config) (*Cluster, error) {
	if cfg.MailboxSize < 1<<16 {
		cfg.MailboxSize = 1 << 16
	}
	return build(cfg)
}

// SimHandle tracks one asynchronously issued compose request on an
// unstarted cluster.
type SimHandle struct {
	ReqID int64
	reply chan composeReply
}

// Poll reports the request's outcome without blocking. done is false
// while the protocol is still in flight. The deputy resolves the
// request synchronously inside a StepNode call, so after the step that
// decides it, Poll observes the result deterministically.
func (h *SimHandle) Poll() (comp *Composition, err error, done bool) {
	select {
	case out := <-h.reply:
		return out.comp, out.err, true
	default:
		return nil, nil, false
	}
}

// ComposeAsync injects one compose request into the client node's
// mailbox and returns a handle to poll for the outcome. Unlike
// Compose it never blocks and never retries — the harness owns
// scheduling, so protocol retries would hide steps from its log.
func (c *Cluster) ComposeAsync(req *component.Request) (*SimHandle, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Client < 0 || req.Client >= len(c.nodes) {
		return nil, fmt.Errorf("dist: client %d out of range", req.Client)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextReq++
	reqID := c.nextReq
	c.mu.Unlock()

	r := *req
	r.ID = reqID
	reply := make(chan composeReply, 1)
	if !c.nodes[r.Client].send(composeMsg{req: &r, reply: reply, alpha: c.cfg.ProbingRatio}) {
		return nil, fmt.Errorf("dist: deputy node %d mailbox overloaded", r.Client)
	}
	return &SimHandle{ReqID: reqID, reply: reply}, nil
}

// MailboxDepth reports how many messages wait in a node's mailbox.
func (c *Cluster) MailboxDepth(id int) int { return len(c.nodes[id].mailbox) }

// StepNode pops one message from the node's mailbox and dispatches it
// on the calling goroutine, applying any due crash/restart transition
// first (in a started cluster the node goroutine does both). It
// returns a short description of the message for the harness step log,
// and false when the mailbox was empty.
func (c *Cluster) StepNode(id int) (string, bool) {
	n := c.nodes[id]
	select {
	case m := <-n.mailbox:
		n.checkCrash()
		n.dispatch(m)
		c.inflight.Add(-1)
		return describeMessage(m), true
	default:
		return "", false
	}
}

// SweepNode runs one hold-expiry sweep pass on the node (the periodic
// tick a started node's goroutine drives itself). The crash schedule
// is applied first, as on the goroutine's tick path.
func (c *Cluster) SweepNode(id int) {
	n := c.nodes[id]
	n.checkCrash()
	n.sweep()
}

func describeMessage(m message) string {
	switch msg := m.(type) {
	case composeMsg:
		return fmt.Sprintf("compose req=%d", msg.req.ID)
	case probeMsg:
		return fmt.Sprintf("probe req=%d idx=%d", msg.req.ID, msg.idx)
	case returnMsg:
		return fmt.Sprintf("return req=%d", msg.reqID)
	case decideMsg:
		return fmt.Sprintf("decide req=%d", msg.reqID)
	case commitMsg:
		return fmt.Sprintf("commit req=%d", msg.reqID)
	case commitAckMsg:
		return fmt.Sprintf("commit-ack req=%d node=%d ok=%v", msg.reqID, msg.node, msg.ok)
	case commitTimeoutMsg:
		return fmt.Sprintf("commit-timeout req=%d", msg.reqID)
	case releaseMsg:
		return fmt.Sprintf("release owner=%d", msg.owner)
	case stateMsg:
		return fmt.Sprintf("state node=%d", msg.node)
	case inspectMsg:
		return "inspect"
	}
	return fmt.Sprintf("%T", m)
}

// NodeAccounting is a consistent snapshot of one node's resource
// ledger, taken between simulation steps for invariant auditing.
type NodeAccounting struct {
	Capacity  qos.Resources
	Committed qos.Resources
	// HeldTotal is the node's running total of transient holds;
	// HoldSum re-derives it from the individual holds so the auditor
	// can cross-check the incremental bookkeeping.
	HeldTotal qos.Resources
	HoldSum   qos.Resources
	Holds     int
	// Commits maps session owner -> committed amount.
	Commits map[int64]qos.Resources
	// Tombstones counts live release-before-commit tombstones.
	Tombstones int
	// Pending counts requests this node deputies that are unresolved.
	Pending int
	Down    bool
}

// NodeAccountingAt snapshots node id's ledger. Unstarted clusters only.
func (c *Cluster) NodeAccountingAt(id int) NodeAccounting {
	n := c.nodes[id]
	acc := NodeAccounting{
		Capacity:   n.capacity,
		Committed:  n.committed,
		HeldTotal:  n.heldTotal,
		Holds:      len(n.holds),
		Commits:    make(map[int64]qos.Resources, len(n.commits)),
		Tombstones: len(n.released),
		Pending:    len(n.pending),
		Down:       n.down,
	}
	// Sorted iteration: the audit compares HoldSum against the running
	// heldTotal, so the sum must be reproducible bit for bit.
	for _, key := range sortedHoldKeys(n.holds) {
		acc.HoldSum = acc.HoldSum.Add(n.holds[key].amount)
	}
	for owner, amount := range n.commits {
		acc.Commits[owner] = amount
	}
	return acc
}

// LinkAvailability snapshots every overlay link's available and total
// bandwidth, indexed by link ID.
func (c *Cluster) LinkAvailability() (avail, capacity []float64) {
	avail = make([]float64, len(c.links.capacity))
	capacity = make([]float64, len(c.links.capacity))
	for i := range c.links.capacity {
		c.links.mu[i].Lock()
		avail[i] = c.links.available[i]
		capacity[i] = c.links.capacity[i]
		c.links.mu[i].Unlock()
	}
	return avail, capacity
}

// Mesh exposes the overlay substrate so a model-based oracle can run
// the centralized composer over the identical network.
func (c *Cluster) Mesh() *overlay.Mesh { return c.mesh }

// Catalog exposes the component deployment for the same purpose.
func (c *Cluster) Catalog() *component.Catalog { return c.catalog }

// SessionDemands reports the per-node resource and per-link bandwidth
// demand of a composition for the given request — what commit placed
// and release must return.
func (c *Cluster) SessionDemands(req *component.Request, comp *Composition) (nodes map[int]qos.Resources, links map[int]float64) {
	d := c.demandsOf(req, comp.Components)
	return d.nodes, d.links
}

// Owner reports the internal request identity a composition was
// committed under (the key its holds, commits, and tombstones use).
func (comp *Composition) Owner() int64 { return comp.owner }
