// Package dist is the distributed execution of the ACP protocol: one
// goroutine per overlay node, communicating only by messages — probes
// fan out across node mailboxes exactly as they fan out across hosts in
// the paper's PlanetLab prototype, resource state is sharded (each node
// owns its own end-system ledger; each overlay link's bandwidth agent
// lives at one endpoint), and the coarse global state is a per-node view
// updated by best-effort broadcast.
//
// The deterministic simulator (internal/core + internal/experiment)
// answers "does the algorithm behave as the paper claims"; this package
// answers "does the protocol actually work as a concurrent distributed
// system" — races, interleavings, timeouts, and all. Both execute the
// same per-hop rules (Figure 3).
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/component"
	"repro/internal/faults"
	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/topology"
)

// ErrNoComposition is returned when no qualified composition was found
// before the probe collection deadline.
var ErrNoComposition = errors.New("dist: no qualified component composition")

// ErrClosed is returned after Shutdown.
var ErrClosed = errors.New("dist: cluster is shut down")

// Config sizes a distributed cluster.
type Config struct {
	// Seed drives substrate generation.
	Seed int64
	// IPNodes, OverlayNodes, NeighborsPerNode size the network.
	IPNodes          int
	OverlayNodes     int
	NeighborsPerNode int
	// NumFunctions and ComponentsPerNode control the deployment.
	NumFunctions      int
	ComponentsPerNode int
	// NodeCapacity is each node's end-system resource capacity.
	NodeCapacity qos.Resources
	// ProbingRatio is alpha for per-hop candidate selection.
	ProbingRatio float64
	// CollectTimeout is how long a deputy waits for probe returns before
	// deciding. In-process hops take microseconds; the default of 50ms
	// absorbs scheduler jitter even under the race detector.
	CollectTimeout time.Duration
	// HoldTTL is the transient allocation timeout (§3.3 step 2).
	HoldTTL time.Duration
	// CommitTimeout bounds how long a deputy waits for commit acks
	// before rolling the request back. Zero means one second; negative
	// is rejected.
	CommitTimeout time.Duration
	// SweepInterval is the period of each node's hold-expiry sweep, the
	// recovery pass that frees transient allocations orphaned by lost
	// messages. Zero means HoldTTL/4; negative disables the sweep
	// (expired holds then free only on the next availability check).
	SweepInterval time.Duration
	// ComposeRetries is the deputy-side retry budget on
	// ErrNoComposition: under transient loss a re-probe over shifted
	// state often succeeds (§3.6). Zero (the default) retries nothing.
	ComposeRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt. Zero means 20ms; negative is rejected.
	RetryBackoff time.Duration
	// RetryAlphaStep widens the probing ratio by this much on each
	// retry (capped at 1): failed attempts shift toward flooding.
	RetryAlphaStep float64
	// UpdateThreshold is the coarse global-state drift trigger (§3.2).
	UpdateThreshold float64
	// MailboxSize bounds each node's message queue.
	MailboxSize int
	// Faults, when non-nil, configures deterministic fault injection on
	// every message send (drops, delays, duplication, node outages).
	// nil — or a config that injects nothing — leaves the send path
	// untouched apart from one nil check.
	Faults *faults.Config
	// Tracer, when non-nil, receives probe-lifecycle span events from
	// every node goroutine (the Tracer is safe for concurrent emitters).
	// nil disables tracing; the hot path then pays only a pointer check.
	Tracer *obs.Tracer
	// Registry, when non-nil, exposes cluster counters and histograms
	// (probes sent/dropped/returned, commits, rollbacks). nil disables.
	Registry *obs.Registry
	// Clock supplies time to every timeout, TTL, sweep, and backoff in
	// the cluster. nil means the wall clock; the deterministic
	// simulation harness (internal/harness) substitutes a virtual clock
	// so protocol time elapses instantly and reproducibly.
	Clock clock.Clock
}

// DefaultConfig returns a test-sized distributed cluster.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		IPNodes:           256,
		OverlayNodes:      32,
		NeighborsPerNode:  5,
		NumFunctions:      8,
		ComponentsPerNode: 2,
		NodeCapacity:      qos.Resources{CPU: 100, Memory: 1000},
		ProbingRatio:      0.5,
		CollectTimeout:    50 * time.Millisecond,
		HoldTTL:           2 * time.Second,
		CommitTimeout:     time.Second,
		RetryBackoff:      20 * time.Millisecond,
		RetryAlphaStep:    0.15,
		UpdateThreshold:   0.10,
		MailboxSize:       1024,
	}
}

// Composition is the decided component graph with its load metric.
type Composition struct {
	Components []component.ComponentID
	Phi        float64
	QoS        qos.Vector

	owner int64 // internal request ID the session was committed under
}

// instruments caches registry lookups once at cluster construction so
// node goroutines touch only atomic instrument fields (all nil-safe).
type instruments struct {
	probesSent    *obs.Counter
	probesDropped *obs.Counter
	probeReturns  *obs.Counter
	commits       *obs.Counter
	rollbacks     *obs.Counter
	noComposition *obs.Counter
	probeDelayMs  *obs.Histogram

	faultDrops     *obs.Counter
	faultDelays    *obs.Counter
	faultDups      *obs.Counter
	nodeCrashes    *obs.Counter
	nodeRestarts   *obs.Counter
	holdsSwept     *obs.Counter
	composeRetries *obs.Counter
	releasesLost   *obs.Counter

	// Deputy phase latencies as auto-ranging quantile histograms:
	// collect is compose-arrival to decision, commit is decision to the
	// final commit ack (or rollback).
	collectMs *obs.QHistogram
	commitMs  *obs.QHistogram

	// Per-session gauges, set at commit and deleted at release, so every
	// live composition exposes its observed phi and its Eq. 3 standing
	// (MaxRatio of accumulated QoS to requirement; <= 1 satisfies the
	// requirement, so the required gauge is the constant 1).
	sessionPhi    *obs.GaugeVec
	sessionQoS    *obs.GaugeVec
	sessionQoSReq *obs.GaugeVec
}

func newInstruments(r *obs.Registry) instruments {
	return instruments{
		probesSent:    r.Counter("dist.probes.sent"),
		probesDropped: r.Counter("dist.probes.dropped"),
		probeReturns:  r.Counter("dist.probes.returned"),
		commits:       r.Counter("dist.commits"),
		rollbacks:     r.Counter("dist.rollbacks"),
		noComposition: r.Counter("dist.no_composition"),
		probeDelayMs:  r.Histogram("dist.probe.delay_ms", []float64{1, 2, 5, 10, 25, 50, 100, 250}),

		faultDrops:     r.Counter("dist.faults.dropped"),
		faultDelays:    r.Counter("dist.faults.delayed"),
		faultDups:      r.Counter("dist.faults.duplicated"),
		nodeCrashes:    r.Counter("dist.node.crashes"),
		nodeRestarts:   r.Counter("dist.node.restarts"),
		holdsSwept:     r.Counter("dist.holds.swept"),
		composeRetries: r.Counter("dist.compose.retries"),
		releasesLost:   r.Counter("dist.releases.lost"),

		collectMs: r.QHistogram("dist.phase.collect_ms"),
		commitMs:  r.QHistogram("dist.phase.commit_ms"),

		sessionPhi:    r.GaugeVec("session.phi", "session"),
		sessionQoS:    r.GaugeVec("session.qos.observed", "session"),
		sessionQoSReq: r.GaugeVec("session.qos.required", "session"),
	}
}

// Cluster runs the distributed protocol.
type Cluster struct {
	cfg        Config
	mesh       *overlay.Mesh
	catalog    *component.Catalog
	nodes      []*node
	links      *linkTable
	tracer     *obs.Tracer
	ins        instruments
	faults     *faults.Injector
	clock      clock.Clock
	sweepEvery time.Duration

	mu      sync.Mutex
	nextReq int64
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
	timers  sync.WaitGroup // outstanding delayed-delivery timers

	// inflight counts messages the node goroutines still owe work for:
	// queued in a mailbox or mid-dispatch. The credit is taken *before*
	// the message becomes visible and returned only after its dispatch
	// completes, so inflight == 0 proves every node is parked in its
	// select — the virtual-clock driver in the tests relies on this to
	// know that firing the next timer cannot preempt a dispatch whose
	// sends have not all landed yet. (Messages parked in a
	// delayed-delivery timer are deliberately excluded: releasing them
	// is itself a clock advance, ordered against protocol timeouts by
	// deadline.)
	inflight atomic.Int64
}

// New builds the substrate and starts one goroutine per overlay node.
// Call Shutdown to stop them.
func New(cfg Config) (*Cluster, error) {
	c, err := build(cfg)
	if err != nil {
		return nil, err
	}
	c.start()
	return c, nil
}

// build constructs the cluster without starting the node goroutines
// (white-box tests drive dispatch directly on an unstarted cluster).
func build(cfg Config) (*Cluster, error) {
	if cfg.ProbingRatio <= 0 || cfg.ProbingRatio > 1 {
		return nil, fmt.Errorf("dist: probing ratio %v out of (0, 1]", cfg.ProbingRatio)
	}
	if cfg.CollectTimeout <= 0 || cfg.HoldTTL <= 0 {
		return nil, fmt.Errorf("dist: non-positive timeout")
	}
	if cfg.CommitTimeout < 0 {
		return nil, fmt.Errorf("dist: negative commit timeout %v", cfg.CommitTimeout)
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = time.Second
	}
	if cfg.ComposeRetries < 0 {
		return nil, fmt.Errorf("dist: negative retry budget %d", cfg.ComposeRetries)
	}
	if cfg.RetryBackoff < 0 {
		return nil, fmt.Errorf("dist: negative retry backoff %v", cfg.RetryBackoff)
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 20 * time.Millisecond
	}
	if cfg.RetryAlphaStep < 0 {
		return nil, fmt.Errorf("dist: negative retry alpha step %v", cfg.RetryAlphaStep)
	}
	if cfg.MailboxSize < 16 {
		cfg.MailboxSize = 16
	}
	clk := clock.Or(cfg.Clock)
	var inj *faults.Injector
	if cfg.Faults != nil {
		fcfg := *cfg.Faults
		if fcfg.Clock == nil {
			// The injector's crash schedule runs on the cluster's clock
			// so scheduled outages replay deterministically under the
			// simulation harness.
			fcfg.Clock = clk
		}
		var err error
		if inj, err = faults.New(fcfg); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tcfg := topology.DefaultConfig()
	tcfg.Nodes = cfg.IPNodes
	graph, err := topology.Generate(tcfg, rng)
	if err != nil {
		return nil, err
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = cfg.OverlayNodes
	ocfg.NeighborsPerNode = cfg.NeighborsPerNode
	mesh, err := overlay.Build(graph, ocfg, rng)
	if err != nil {
		return nil, err
	}
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = cfg.NumFunctions
	pcfg.ComponentsPerNode = cfg.ComponentsPerNode
	catalog, err := component.Place(mesh.NumNodes(), pcfg, rng)
	if err != nil {
		return nil, err
	}

	c := &Cluster{
		cfg:     cfg,
		mesh:    mesh,
		catalog: catalog,
		links:   newLinkTable(mesh),
		tracer:  cfg.Tracer,
		ins:     newInstruments(cfg.Registry),
		faults:  inj,
		clock:   clk,
		done:    make(chan struct{}),
	}
	switch {
	case cfg.SweepInterval > 0:
		c.sweepEvery = cfg.SweepInterval
	case cfg.SweepInterval == 0:
		c.sweepEvery = cfg.HoldTTL / 4
	}
	c.nodes = make([]*node, mesh.NumNodes())
	for id := range c.nodes {
		c.nodes[id] = newNode(c, id, rand.New(rand.NewSource(nodeSeed(cfg.Seed, int64(id)))))
	}
	return c, nil
}

// nodeSeed derives a per-node rng seed from the cluster seed by
// splitmix64-style avalanche hashing. The previous affine derivation
// (seed*7919 + id) collapsed for seed 0 — every node's source became
// its own id and node 0 shared source 0 with the cluster rng — and for
// any two seeds 7919 apart adjacent nodes shared streams. Mixing makes
// every (seed, id) pair land in an unrelated stream.
func nodeSeed(seed, id int64) int64 {
	h := mix64(uint64(seed) + 0x9e3779b97f4a7c15)
	h = mix64(h ^ (uint64(id) + 0xbf58476d1ce4e5b9))
	return int64(h)
}

// mix64 is the splitmix64 finaliser. Applying it to the seed word
// *before* folding the id in matters: the finaliser is bijective, so
// any affine pre-mix combination of (seed, id) would carry its
// collisions (e.g. seed -1 aliasing seed 1 at a shifted id) straight
// through to the output.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (c *Cluster) start() {
	for _, n := range c.nodes {
		c.wg.Add(1)
		go func(n *node) {
			defer c.wg.Done()
			n.run()
		}(n)
	}
}

// deliver routes m into node to's mailbox, consulting the fault
// injector first. The return value is what the *sender* should believe:
// injected loss is silent (true — the network ate it), while a full
// mailbox is an observable backpressure signal (false), exactly as with
// a direct send. With no injector configured the cost over a direct
// send is this one nil check.
func (c *Cluster) deliver(to int, m message, kind faults.Kind) bool {
	if c.faults == nil {
		return c.nodes[to].send(m)
	}
	return c.deliverFaulty(to, m, kind)
}

func (c *Cluster) deliverFaulty(to int, m message, kind faults.Kind) bool {
	if c.faults.Down(to) {
		c.dropInjected(to, m, obs.ReasonNodeDown)
		return true
	}
	a := c.faults.OnSend(kind)
	if a.Drop {
		c.dropInjected(to, m, obs.ReasonFaultInjected)
		return true
	}
	if a.Duplicate {
		c.ins.faultDups.Inc()
		c.tracer.MsgDuplicated(reqOf(m), to)
		c.nodes[to].send(m) // best-effort extra copy
	}
	if a.Delay > 0 {
		c.ins.faultDelays.Inc()
		c.tracer.MsgDelayed(reqOf(m), to, float64(a.Delay)/float64(time.Millisecond))
		c.timers.Add(1)
		// No inflight credit while parked: delivery needs the clock to
		// reach the delay deadline, and the virtual driver orders that
		// against protocol timeouts by deadline — a probe delayed past
		// the collect window is *supposed* to miss the decide.
		c.clock.AfterFunc(a.Delay, func() {
			defer c.timers.Done()
			if !c.nodes[to].send(m) {
				c.dropInjected(to, m, obs.ReasonMailbox)
			}
		})
		return true
	}
	return c.nodes[to].send(m)
}

// dropInjected loses a message, keeping the observability invariants: a
// dropped probe still closes its span and counts as a dropped probe.
func (c *Cluster) dropInjected(to int, m message, reason obs.Reason) {
	c.ins.faultDrops.Inc()
	if pm, ok := m.(probeMsg); ok {
		c.tracer.ProbeDropped(pm.req.ID, pm.probe, pm.idx, to, reason)
		c.ins.probesDropped.Inc()
		return
	}
	c.tracer.MsgDropped(reqOf(m), to, reason)
}

// reqOf extracts the request identity a message is scoped to (0 when it
// has none, e.g. state broadcasts).
func reqOf(m message) int64 {
	switch msg := m.(type) {
	case composeMsg:
		return msg.req.ID
	case probeMsg:
		return msg.req.ID
	case returnMsg:
		return msg.reqID
	case commitMsg:
		return msg.reqID
	case commitAckMsg:
		return msg.reqID
	case releaseMsg:
		return msg.owner
	}
	return 0
}

// sendRelease delivers a session-teardown message. Teardown rides a
// reliable control channel — it is exempt from fault injection, because
// a lost release would leak committed resources forever (there is no
// lease on commits) — and a momentarily full mailbox is retried with
// backoff instead of dropped.
func (c *Cluster) sendRelease(to int, owner int64) {
	c.trySendRelease(to, owner, 0)
}

const (
	releaseRetries = 6
	releaseBackoff = 5 * time.Millisecond
)

func (c *Cluster) trySendRelease(to int, owner int64, attempt int) {
	if c.nodes[to].send(releaseMsg{owner: owner}) {
		return
	}
	if attempt >= releaseRetries {
		c.ins.releasesLost.Inc()
		return
	}
	c.clock.AfterFunc(releaseBackoff<<attempt, func() {
		c.trySendRelease(to, owner, attempt+1)
	})
}

// NumNodes returns the overlay size.
func (c *Cluster) NumNodes() int { return c.mesh.NumNodes() }

// Compose runs the distributed ACP protocol for one request: the client
// node acts as deputy, probes fan out across node goroutines, and the
// phi-minimal qualified composition is committed. Safe for concurrent
// use; concurrent requests contend through transient allocations exactly
// as in the paper.
func (c *Cluster) Compose(req *component.Request) (*Composition, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Client < 0 || req.Client >= len(c.nodes) {
		return nil, fmt.Errorf("dist: client %d out of range", req.Client)
	}
	alpha := c.cfg.ProbingRatio
	for attempt := 0; ; attempt++ {
		comp, reqID, err := c.composeOnce(req, alpha)
		if err == nil || !errors.Is(err, ErrNoComposition) || attempt >= c.cfg.ComposeRetries {
			return comp, err
		}
		// A failed attempt under transient loss or contention is worth
		// retrying with the probing widened (§3.6): the holds of the
		// failed round decay, state shifts, and a larger alpha probes
		// more of the candidate space.
		c.tracer.ComposeRetried(reqID, req.Client, attempt+1)
		c.ins.composeRetries.Inc()
		alpha = math.Min(1, alpha+c.cfg.RetryAlphaStep)
		select {
		case <-c.clock.After(c.cfg.RetryBackoff << attempt):
		case <-c.done:
			return nil, ErrClosed
		}
	}
}

// composeOnce runs one protocol round under the given probing ratio.
func (c *Cluster) composeOnce(req *component.Request, alpha float64) (*Composition, int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, 0, ErrClosed
	}
	c.nextReq++
	reqID := c.nextReq
	c.mu.Unlock()

	// Private request copy with a cluster-unique ID: transient holds and
	// session records key on it. Each retry gets a fresh identity so
	// stale holds of a failed attempt cannot satisfy the new one.
	r := *req
	r.ID = reqID

	reply := make(chan composeReply, 1)
	if !c.nodes[r.Client].send(composeMsg{req: &r, reply: reply, alpha: alpha}) {
		return nil, reqID, fmt.Errorf("dist: deputy node %d mailbox overloaded", r.Client)
	}
	select {
	case out := <-reply:
		return out.comp, reqID, out.err
	case <-c.done:
		return nil, reqID, ErrClosed
	}
}

// Release tears down a composed session, freeing its resources on every
// node and link that carries it. The composition remembers the internal
// request identity it was committed under.
func (c *Cluster) Release(req *component.Request, comp *Composition) {
	if comp == nil {
		return
	}
	demands := c.demandsOf(req, comp.Components)
	for _, nodeID := range sortedNodeKeys(demands.nodes) {
		c.sendRelease(nodeID, comp.owner)
	}
	c.links.release(demands.links)
	sess := strconv.FormatInt(comp.owner, 10)
	c.ins.sessionPhi.Delete(sess)
	c.ins.sessionQoS.Delete(sess)
	c.ins.sessionQoSReq.Delete(sess)
	c.tracer.SessionReleased(comp.owner)
}

// Shutdown stops every node goroutine and waits for them to exit.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.done)
	c.mu.Unlock()
	for _, n := range c.nodes {
		close(n.quit)
	}
	c.wg.Wait()
	// Let in-flight delayed deliveries land (in dead mailboxes) before
	// the drain below closes their spans.
	c.timers.Wait()
	c.drainMailboxes()
}

// Idle reports whether every node ledger and every link has returned to
// full capacity with no live holds — the steady state after all
// sessions are released. Answered from the nodes' own precise state via
// inspect messages (a reliable monitoring hook, exempt from fault
// injection and answered even during an outage).
func (c *Cluster) Idle() bool {
	for _, n := range c.nodes {
		reply := make(chan qos.Resources, 1)
		n.sendBlocking(inspectMsg{reply: reply})
		select {
		case avail := <-reply:
			if avail != c.cfg.NodeCapacity {
				return false
			}
		case <-c.done:
			return false
		}
	}
	for i := range c.links.capacity {
		c.links.mu[i].Lock()
		full := c.links.available[i] == c.links.capacity[i]
		c.links.mu[i].Unlock()
		if !full {
			return false
		}
	}
	return true
}

// AwaitIdle polls Idle until it holds or the timeout elapses — holds
// orphaned by injected loss take up to HoldTTL (plus a sweep period) to
// decay.
func (c *Cluster) AwaitIdle(timeout time.Duration) bool {
	deadline := c.clock.Now().Add(timeout)
	for {
		if c.Idle() {
			return true
		}
		if c.clock.Now().After(deadline) {
			return false
		}
		c.clock.Sleep(10 * time.Millisecond)
	}
}

// drainMailboxes closes the span of every probe still queued when the
// node goroutines stopped, so a recorded trace balances: each spawned
// probe ends in exactly one returned/forwarded/dropped/pruned event.
func (c *Cluster) drainMailboxes() {
	if !c.tracer.Enabled() {
		return
	}
	for _, n := range c.nodes {
		for drained := false; !drained; {
			select {
			case m := <-n.mailbox:
				if pm, ok := m.(probeMsg); ok && pm.probe != 0 {
					c.tracer.ProbeDropped(pm.req.ID, pm.probe, pm.idx, n.id, obs.ReasonShutdown)
					c.ins.probesDropped.Inc()
				}
			default:
				drained = true
			}
		}
	}
}

// demands aggregates a composition's per-node resource and per-link
// bandwidth needs (footnotes 4, 5, 8 of the paper).
type demands struct {
	nodes map[int]qos.Resources
	links map[int]float64
}

func (c *Cluster) demandsOf(req *component.Request, assign []component.ComponentID) demands {
	d := demands{nodes: make(map[int]qos.Resources), links: make(map[int]float64)}
	for pos, id := range assign {
		nodeID := c.catalog.Component(id).Node
		d.nodes[nodeID] = d.nodes[nodeID].Add(req.ResReq[pos])
	}
	for _, e := range req.Graph.Edges {
		from := c.catalog.Component(assign[e.From]).Node
		to := c.catalog.Component(assign[e.To]).Node
		route, ok := c.mesh.RouteBetween(from, to)
		if !ok || route.CoLocated {
			continue
		}
		for _, link := range route.Links {
			d.links[link] += req.BandwidthReq
		}
	}
	return d
}

// linkTable is the bandwidth state of every overlay link. Each entry is
// guarded by its own mutex — the in-process stand-in for the link-state
// agent co-located at one link endpoint.
type linkTable struct {
	capacity  []float64
	mu        []sync.Mutex
	available []float64
}

func newLinkTable(mesh *overlay.Mesh) *linkTable {
	t := &linkTable{
		capacity:  make([]float64, mesh.NumLinks()),
		mu:        make([]sync.Mutex, mesh.NumLinks()),
		available: make([]float64, mesh.NumLinks()),
	}
	for i := range t.capacity {
		t.capacity[i] = mesh.Link(i).Capacity
		t.available[i] = t.capacity[i]
	}
	return t
}

// linkAvailable returns one link's current availability.
func (t *linkTable) linkAvailable(id int) float64 {
	t.mu[id].Lock()
	a := t.available[id]
	t.mu[id].Unlock()
	return a
}

// routeAvailable returns the bottleneck availability along a route.
func (t *linkTable) routeAvailable(route overlay.Route) float64 {
	if route.CoLocated {
		return math.Inf(1)
	}
	avail := math.Inf(1)
	for _, id := range route.Links {
		t.mu[id].Lock()
		a := t.available[id]
		t.mu[id].Unlock()
		avail = math.Min(avail, a)
	}
	return avail
}

// reserve atomically acquires bandwidth on every link or none.
func (t *linkTable) reserve(links map[int]float64) bool {
	ids := sortedKeys(links)
	for i, id := range ids {
		t.mu[id].Lock()
		if t.available[id] < links[id] {
			t.mu[id].Unlock()
			// Roll back in reverse order.
			for j := i - 1; j >= 0; j-- {
				t.mu[ids[j]].Lock()
				t.available[ids[j]] += links[ids[j]]
				t.mu[ids[j]].Unlock()
			}
			return false
		}
		t.available[id] -= links[id]
		t.mu[id].Unlock()
	}
	return true
}

func (t *linkTable) release(links map[int]float64) {
	for id, bw := range links {
		t.mu[id].Lock()
		t.available[id] += bw
		if t.available[id] > t.capacity[id] {
			t.available[id] = t.capacity[id]
		}
		t.mu[id].Unlock()
	}
}

// sortedNodeKeys orders a per-node demand map's keys so commit,
// rollback, and release fan-out walk participants in a reproducible
// order — map iteration order would otherwise reshuffle message and
// fault-injection sequencing between identically-seeded runs.
func sortedNodeKeys(m map[int]qos.Resources) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[int]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ComponentNode reports which overlay node hosts a component (display
// and monitoring hook; the placement is immutable).
func (c *Cluster) ComponentNode(id component.ComponentID) int {
	return c.catalog.Component(id).Node
}
