package dist

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

// testCluster runs on the auto-advanced virtual clock (virtual_test.go)
// so protocol timeouts cost microseconds of wall time. Tests that probe
// real wall-clock behaviour build their own cluster with New.
func testCluster(t *testing.T) *Cluster {
	t.Helper()
	return virtualCluster(t, DefaultConfig())
}

func easyRequest(client int) *component.Request {
	return &component.Request{
		Graph:        component.NewPathGraph([]component.FunctionID{0, 1, 2}),
		QoSReq:       qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
		ResReq:       []qos.Resources{{CPU: 8, Memory: 80}, {CPU: 8, Memory: 80}, {CPU: 8, Memory: 80}},
		BandwidthReq: 100,
		Client:       client,
		Duration:     5 * time.Minute,
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ProbingRatio = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero probing ratio accepted")
	}
	cfg = DefaultConfig()
	cfg.CollectTimeout = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero collect timeout accepted")
	}
}

func TestComposeEasyRequest(t *testing.T) {
	c := testCluster(t)
	req := easyRequest(3)
	comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Components) != 3 {
		t.Fatalf("components = %d", len(comp.Components))
	}
	for pos, id := range comp.Components {
		if got := c.catalog.Component(id).Function; got != req.Graph.Functions[pos] {
			t.Errorf("position %d provides function %d, want %d", pos, got, req.Graph.Functions[pos])
		}
	}
	if !comp.QoS.Within(req.QoSReq) {
		t.Errorf("QoS %v violates %v", comp.QoS, req.QoSReq)
	}
	if comp.Phi <= 0 {
		t.Errorf("phi = %v", comp.Phi)
	}
	c.Release(req, comp)
}

func TestComposeDAGRequest(t *testing.T) {
	c := testCluster(t)
	graph, err := component.NewBranchGraph(0, []component.FunctionID{1}, []component.FunctionID{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	req := easyRequest(0)
	req.Graph = graph
	req.ResReq = []qos.Resources{{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}}
	comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.Components) != 4 {
		t.Fatalf("components = %d", len(comp.Components))
	}
	c.Release(req, comp)
}

func TestComposeInfeasibleFails(t *testing.T) {
	c := testCluster(t)
	req := easyRequest(1)
	req.QoSReq = qos.Vector{Delay: 0.0001, LossCost: 1e-12}
	if _, err := c.Compose(req); !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
	req = easyRequest(1)
	req.ResReq = []qos.Resources{{CPU: 1e9}, {CPU: 1e9}, {CPU: 1e9}}
	if _, err := c.Compose(req); !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
}

func TestComposeInvalidRequests(t *testing.T) {
	c := testCluster(t)
	req := easyRequest(1)
	req.Duration = 0
	if _, err := c.Compose(req); err == nil {
		t.Error("invalid request accepted")
	}
	req = easyRequest(999)
	if _, err := c.Compose(req); err == nil {
		t.Error("out-of-range client accepted")
	}
}

func TestComposeReleaseConservation(t *testing.T) {
	c := testCluster(t)
	// Compose and release repeatedly; capacity must never leak, so the
	// same demand keeps succeeding.
	for i := 0; i < 40; i++ {
		req := easyRequest(i % c.NumNodes())
		comp, err := c.Compose(req)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		c.Release(req, comp)
	}
	// After a hold-TTL quiet period every node must be back at full
	// capacity (releases are async; allow them to drain).
	if !c.AwaitIdle(5 * time.Second) {
		t.Error("capacity did not return to full after compose/release churn")
	}
}

func TestConcurrentCompose(t *testing.T) {
	c := testCluster(t)
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	comps := make(chan struct {
		req  *component.Request
		comp *Composition
	}, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			req := easyRequest(w % c.NumNodes())
			comp, err := c.Compose(req)
			if err != nil {
				if errors.Is(err, ErrNoComposition) {
					return // contention failures are legitimate
				}
				errs <- fmt.Errorf("worker %d: %w", w, err)
				return
			}
			comps <- struct {
				req  *component.Request
				comp *Composition
			}{req, comp}
		}(w)
	}
	wg.Wait()
	close(errs)
	close(comps)
	for err := range errs {
		t.Error(err)
	}
	succeeded := 0
	for s := range comps {
		succeeded++
		c.Release(s.req, s.comp)
	}
	if succeeded == 0 {
		t.Error("no concurrent composition succeeded")
	}
}

func TestSecurityConstraint(t *testing.T) {
	c := testCluster(t)
	req := easyRequest(2)
	req.MinSecurity = 2
	comp, err := c.Compose(req)
	if errors.Is(err, ErrNoComposition) {
		t.Skip("no level-2 chain exists on this seed")
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range comp.Components {
		if c.catalog.Component(id).Security < 2 {
			t.Errorf("component %d has security %d", id, c.catalog.Component(id).Security)
		}
	}
	c.Release(req, comp)
}

func TestShutdownUnblocksCompose(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectTimeout = 5 * time.Second // long window
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Compose(easyRequest(0))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Shutdown()
	select {
	case err := <-done:
		if err == nil {
			t.Log("compose finished before shutdown")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Compose hung across Shutdown")
	}
	if _, err := c.Compose(easyRequest(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-shutdown compose: %v", err)
	}
	c.Shutdown() // idempotent
}

func TestLinkTableReserveAtomicity(t *testing.T) {
	c := testCluster(t)
	lt := c.links
	id0 := 0
	lt.mu[id0].Lock()
	avail0 := lt.available[id0]
	lt.mu[id0].Unlock()

	// A reservation that fits on link 0 but not link 1 must change
	// nothing.
	lt.mu[1].Lock()
	avail1 := lt.available[1]
	lt.mu[1].Unlock()
	want := map[int]float64{0: avail0 / 2, 1: avail1 + 1}
	if lt.reserve(want) {
		t.Fatal("over-capacity reservation accepted")
	}
	lt.mu[id0].Lock()
	got := lt.available[id0]
	lt.mu[id0].Unlock()
	if got != avail0 {
		t.Errorf("failed reservation leaked: link 0 available %v, want %v", got, avail0)
	}

	// A feasible reservation succeeds and releases cleanly.
	okDemand := map[int]float64{0: 10, 1: 10}
	if !lt.reserve(okDemand) {
		t.Fatal("feasible reservation rejected")
	}
	lt.release(okDemand)
	lt.mu[id0].Lock()
	got = lt.available[id0]
	lt.mu[id0].Unlock()
	if got != avail0 {
		t.Errorf("release did not restore link 0: %v vs %v", got, avail0)
	}
}

// TestSustainedChurnConservation runs concurrent compose/release cycles
// and verifies full capacity returns afterwards — the distributed
// equivalent of the ledger conservation property.
func TestSustainedChurnConservation(t *testing.T) {
	c := testCluster(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				req := easyRequest((w*7 + i) % c.NumNodes())
				comp, err := c.Compose(req)
				if err != nil {
					continue // contention failures are fine
				}
				c.Release(req, comp)
			}
		}(w)
	}
	wg.Wait()
	if !c.AwaitIdle(8 * time.Second) {
		t.Error("capacity leaked under sustained concurrent churn")
	}
}

// TestCoarseViewSteersSelection: after one node's resources are heavily
// committed (and broadcast), subsequent compositions avoid it.
func TestCoarseViewSteersSelection(t *testing.T) {
	c := testCluster(t)

	// Find which node a fresh composition lands on for position 0, then
	// exhaust that node with committed sessions.
	req := easyRequest(1)
	first, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}
	hot := c.ComponentNode(first.Components[0])

	// Saturate the hot node with many sessions through composition so
	// broadcasts fire naturally.
	var held []struct {
		req  *component.Request
		comp *Composition
	}
	held = append(held, struct {
		req  *component.Request
		comp *Composition
	}{req, first})
	for i := 0; i < 12; i++ {
		r := easyRequest((hot + i) % c.NumNodes())
		comp, err := c.Compose(r)
		if err != nil {
			break
		}
		held = append(held, struct {
			req  *component.Request
			comp *Composition
		}{r, comp})
	}

	// New compositions should now mostly steer around the most-loaded
	// nodes; at minimum they must still satisfy all constraints.
	for i := 0; i < 5; i++ {
		r := easyRequest(i)
		comp, err := c.Compose(r)
		if errors.Is(err, ErrNoComposition) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !comp.QoS.Within(r.QoSReq) {
			t.Errorf("steered composition violates QoS")
		}
		c.Release(r, comp)
	}
	for _, h := range held {
		c.Release(h.req, h.comp)
	}
}

// TestHoldsExpire: probes of failed compositions leave transient holds
// behind; after the TTL the capacity must be back.
func TestHoldsExpire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HoldTTL = 200 * time.Millisecond
	c := virtualCluster(t, cfg)

	// A request that probes successfully per hop but fails at the final
	// QoS evaluation is hard to construct; instead run normal requests
	// and abandon them without release — holds from losing probes and
	// commit state decay by TTL, committed state stays. So: compose,
	// release, and ensure idle after the TTL even though losing probes
	// placed holds on many nodes.
	for i := 0; i < 5; i++ {
		req := easyRequest(i)
		comp, err := c.Compose(req)
		if err != nil {
			continue
		}
		c.Release(req, comp)
	}
	if !c.AwaitIdle(5 * time.Second) {
		t.Error("transient holds survived their TTL")
	}
}
