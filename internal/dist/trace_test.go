package dist

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestTracedComposeBalancesSpans runs traced compositions — including
// concurrent and infeasible ones — and asserts the core trace invariant:
// after Shutdown every spawned probe span was closed by exactly one
// returned/forwarded/dropped/pruned event.
func TestTracedComposeBalancesSpans(t *testing.T) {
	sink := &obs.MemorySink{}
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Tracer = obs.New(sink)
	cfg.Registry = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			req := easyRequest(client)
			if client%3 == 0 {
				// Infeasible QoS: every candidate prunes.
				req.QoSReq.Delay = 0.0001
			}
			comp, err := c.Compose(req)
			if err == nil {
				c.Release(req, comp)
			}
		}(i)
	}
	wg.Wait()
	c.Shutdown()

	events := sink.Events()
	if leaked := obs.LeakedSpans(events); len(leaked) != 0 {
		t.Fatalf("%d probe spans leaked after shutdown: %v", len(leaked), leaked)
	}

	var spawned, returned, received int
	for _, e := range events {
		switch e.Type {
		case obs.EventProbeSpawned:
			spawned++
		case obs.EventProbeReturned:
			returned++
		case obs.EventRequestReceived:
			received++
		}
	}
	if spawned == 0 {
		t.Fatal("no probe spans recorded")
	}
	if received != 6 {
		t.Errorf("request.received events = %d, want 6", received)
	}

	// The registry counters and the trace describe the same run.
	snap := reg.Snapshot()
	if got := snap.Counters["dist.probes.returned"]; got != int64(returned) {
		t.Errorf("dist.probes.returned = %d, trace has %d probe.returned events", got, returned)
	}
	sent := snap.Counters["dist.probes.sent"]
	dropped := snap.Counters["dist.probes.dropped"]
	if int64(spawned) > sent+dropped {
		t.Errorf("spawned spans %d exceed sent %d + dropped %d", spawned, sent, dropped)
	}
}

// TestPhaseAndSessionInstruments checks the live-plane additions on the
// dist engine: collect/commit phase latency quantiles record per
// decision, a committed composition publishes its session gauges, and
// Release deletes them.
func TestPhaseAndSessionInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Registry = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	req := easyRequest(1)
	comp, err := c.Compose(req)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if q := snap.Quantiles["dist.phase.collect_ms"]; q.Count == 0 {
		t.Error("no collect-phase latency recorded")
	}
	if q := snap.Quantiles["dist.phase.commit_ms"]; q.Count == 0 {
		t.Error("no commit-phase latency recorded")
	}
	sessVals := snap.GaugeVecs["session.phi"].Values
	if len(sessVals) != 1 {
		t.Fatalf("session.phi children = %+v, want 1", sessVals)
	}
	if sessVals[0].Value != comp.Phi {
		t.Errorf("session.phi = %v, composition phi %v", sessVals[0].Value, comp.Phi)
	}
	obsVals := snap.GaugeVecs["session.qos.observed"].Values
	if len(obsVals) != 1 || obsVals[0].Value <= 0 || obsVals[0].Value > 1 {
		t.Errorf("session.qos.observed = %+v, want one child in (0, 1]", obsVals)
	}

	c.Release(req, comp)
	snap = reg.Snapshot()
	for _, vec := range []string{"session.phi", "session.qos.observed", "session.qos.required"} {
		if n := len(snap.GaugeVecs[vec].Values); n != 0 {
			t.Errorf("%s has %d children after Release, want 0", vec, n)
		}
	}
}
