package dist

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestTracedComposeBalancesSpans runs traced compositions — including
// concurrent and infeasible ones — and asserts the core trace invariant:
// after Shutdown every spawned probe span was closed by exactly one
// returned/forwarded/dropped/pruned event.
func TestTracedComposeBalancesSpans(t *testing.T) {
	sink := &obs.MemorySink{}
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.Tracer = obs.New(sink)
	cfg.Registry = reg
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			req := easyRequest(client)
			if client%3 == 0 {
				// Infeasible QoS: every candidate prunes.
				req.QoSReq.Delay = 0.0001
			}
			comp, err := c.Compose(req)
			if err == nil {
				c.Release(req, comp)
			}
		}(i)
	}
	wg.Wait()
	c.Shutdown()

	events := sink.Events()
	if leaked := obs.LeakedSpans(events); len(leaked) != 0 {
		t.Fatalf("%d probe spans leaked after shutdown: %v", len(leaked), leaked)
	}

	var spawned, returned, received int
	for _, e := range events {
		switch e.Type {
		case obs.EventProbeSpawned:
			spawned++
		case obs.EventProbeReturned:
			returned++
		case obs.EventRequestReceived:
			received++
		}
	}
	if spawned == 0 {
		t.Fatal("no probe spans recorded")
	}
	if received != 6 {
		t.Errorf("request.received events = %d, want 6", received)
	}

	// The registry counters and the trace describe the same run.
	snap := reg.Snapshot()
	if got := snap.Counters["dist.probes.returned"]; got != int64(returned) {
		t.Errorf("dist.probes.returned = %d, trace has %d probe.returned events", got, returned)
	}
	sent := snap.Counters["dist.probes.sent"]
	dropped := snap.Counters["dist.probes.dropped"]
	if int64(spawned) > sent+dropped {
		t.Errorf("spawned spans %d exceed sent %d + dropped %d", spawned, sent, dropped)
	}
}
