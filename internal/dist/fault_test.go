package dist

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qos"
)

func TestFaultConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"negative commit timeout":   func(c *Config) { c.CommitTimeout = -time.Second },
		"negative retry budget":     func(c *Config) { c.ComposeRetries = -1 },
		"negative retry backoff":    func(c *Config) { c.RetryBackoff = -time.Millisecond },
		"negative retry alpha step": func(c *Config) { c.RetryAlphaStep = -0.1 },
		"invalid fault config":      func(c *Config) { c.Faults = &faults.Config{DropProb: 2} },
	} {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}

	// Zero commit timeout defaults rather than meaning "no timeout".
	cfg := DefaultConfig()
	cfg.CommitTimeout = 0
	c, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.CommitTimeout != time.Second {
		t.Errorf("zero CommitTimeout defaulted to %v, want 1s", c.cfg.CommitTimeout)
	}
	// A fault config that injects nothing leaves the injector nil — the
	// send path is then exactly the non-injected one.
	cfg = DefaultConfig()
	cfg.Faults = &faults.Config{Seed: 99}
	if c, err = build(cfg); err != nil {
		t.Fatal(err)
	}
	if c.faults != nil {
		t.Error("no-op fault config produced a live injector")
	}
}

// TestFaultDisabledParity: with fault injection disabled the engine must
// behave exactly as it did before the fault subsystem existed — same
// composition outcome, same probe traffic, zero fault counters.
func TestFaultDisabledParity(t *testing.T) {
	run := func(fcfg *faults.Config) (comp *Composition, snap obs.Snapshot) {
		reg := obs.NewRegistry()
		cfg := DefaultConfig()
		cfg.Registry = reg
		cfg.Faults = fcfg
		c := virtualCluster(t, cfg)
		comp, err := c.Compose(easyRequest(3))
		if err != nil {
			t.Fatal(err)
		}
		c.Release(easyRequest(3), comp)
		return comp, reg.Snapshot()
	}

	compA, snapA := run(nil)
	compB, snapB := run(&faults.Config{}) // zero config: injects nothing

	if len(compA.Components) != len(compB.Components) || compA.Phi != compB.Phi {
		t.Errorf("fault-free config changed the outcome: phi %v vs %v", compA.Phi, compB.Phi)
	}
	for _, key := range []string{"dist.probes.sent", "dist.probes.returned", "dist.probes.dropped", "dist.commits"} {
		if snapA.Counters[key] != snapB.Counters[key] {
			t.Errorf("%s = %d with nil faults, %d with zero-config faults",
				key, snapA.Counters[key], snapB.Counters[key])
		}
	}
	for _, snap := range []obs.Snapshot{snapA, snapB} {
		for _, key := range []string{
			"dist.faults.dropped", "dist.faults.delayed", "dist.faults.duplicated",
			"dist.node.crashes", "dist.node.restarts", "dist.compose.retries",
		} {
			if snap.Counters[key] != 0 {
				t.Errorf("%s = %d with faults disabled, want 0", key, snap.Counters[key])
			}
		}
	}
}

// TestFaultDisabledSendZeroAlloc guards the acceptance bound on the
// disabled path: deliver() costs one nil check and zero allocations.
func TestFaultDisabledSendZeroAlloc(t *testing.T) {
	c, err := build(DefaultConfig()) // unstarted: sends just queue
	if err != nil {
		t.Fatal(err)
	}
	var msg message = stateMsg{node: 1, avail: qos.Resources{CPU: 1}}
	allocs := testing.AllocsPerRun(500, func() {
		c.deliver(2, msg, faults.KindState)
	})
	if allocs != 0 {
		t.Errorf("disabled deliver allocates %.1f per send, want 0", allocs)
	}
}

func BenchmarkFaultDisabledDeliver(b *testing.B) {
	c, err := build(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var msg message = stateMsg{node: 1, avail: qos.Resources{CPU: 1}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.deliver(2, msg, faults.KindState)
	}
}

// TestFaultCommitNackOnFullMailbox is the regression for the lost
// self-nack bug: when a participant's mailbox is full at commit time,
// the deputy used to bounce the nack through its *own* mailbox with a
// non-blocking send — if that was full too, the nack vanished and the
// request stalled until the commit timeout. The nack is now recorded
// inline, so the rollback happens immediately even with both mailboxes
// full.
func TestFaultCommitNackOnFullMailbox(t *testing.T) {
	c, err := build(DefaultConfig()) // unstarted: we drive dispatch by hand
	if err != nil {
		t.Fatal(err)
	}
	deputy, peer := c.nodes[0], c.nodes[1]
	for peer.send(stateMsg{}) {
	}
	for deputy.send(stateMsg{}) { // the old self-nack had nowhere to go
	}

	const reqID = int64(42)
	reply := make(chan composeReply, 1)
	p := &pendingCompose{
		reply:      reply,
		comp:       &Composition{owner: reqID},
		needAcks:   map[int]bool{peer.id: false},
		nodeDemand: map[int]qos.Resources{peer.id: {CPU: 1}},
	}
	deputy.pending[reqID] = p
	deputy.startCommit(reqID, p)

	select {
	case out := <-reply:
		if !errors.Is(out.err, ErrNoComposition) {
			t.Fatalf("reply err = %v, want ErrNoComposition", out.err)
		}
	default:
		t.Fatal("full participant mailbox did not roll the commit back inline")
	}
	if len(deputy.pending) != 0 {
		t.Error("rolled-back request still pending")
	}
}

// TestFaultCommitTimeoutConfigured: the commit-ack deadline comes from
// Config.CommitTimeout (it was hard-coded to one second).
func TestFaultCommitTimeoutConfigured(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CommitTimeout = 30 * time.Millisecond
	c, err := build(cfg) // unstarted: the silent peer never acks
	if err != nil {
		t.Fatal(err)
	}
	deputy, peer := c.nodes[0], c.nodes[1]

	const reqID = int64(7)
	reply := make(chan composeReply, 1)
	p := &pendingCompose{
		reply:      reply,
		comp:       &Composition{owner: reqID},
		needAcks:   map[int]bool{peer.id: false},
		nodeDemand: map[int]qos.Resources{peer.id: {CPU: 1}},
	}
	deputy.pending[reqID] = p
	start := time.Now()
	deputy.startCommit(reqID, p)

	select {
	case m := <-deputy.mailbox:
		elapsed := time.Since(start)
		if _, ok := m.(commitTimeoutMsg); !ok {
			t.Fatalf("unexpected deputy message %T", m)
		}
		if elapsed < 25*time.Millisecond || elapsed > 800*time.Millisecond {
			t.Errorf("commit timeout fired after %v, configured 30ms (old hard-coded value was 1s)", elapsed)
		}
		deputy.dispatch(m)
	case <-time.After(2 * time.Second):
		t.Fatal("commit timeout never fired")
	}
	select {
	case out := <-reply:
		if !errors.Is(out.err, ErrNoComposition) {
			t.Fatalf("reply err = %v, want ErrNoComposition", out.err)
		}
	default:
		t.Fatal("commit timeout did not resolve the request")
	}
}

// faultWorkload runs concurrent compose/release cycles and requires
// every request to complete — success or clean ErrNoComposition — then
// proves full recovery: all resources return to capacity, no probe span
// leaks, no goroutine leaks.
func faultWorkload(t *testing.T, cfg Config, workers, perWorker int) (successes int64, snap obs.Snapshot) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	sink := &obs.MemorySink{}
	reg := obs.NewRegistry()
	cfg.Tracer = obs.New(sink)
	cfg.Registry = reg
	c := virtualCluster(t, cfg)

	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				req := easyRequest((w*5 + i) % c.NumNodes())
				comp, err := c.Compose(req)
				if err != nil {
					if !errors.Is(err, ErrNoComposition) {
						t.Errorf("worker %d request %d: %v", w, i, err)
					}
					continue
				}
				mu.Lock()
				successes++
				mu.Unlock()
				c.Release(req, comp)
			}
		}(w)
	}
	wg.Wait() // every request completed (no hangs) or the test times out

	if !c.AwaitIdle(10 * time.Second) {
		t.Error("resources did not return to capacity: leaked holds or commits")
	}
	c.Shutdown()

	if leaked := obs.LeakedSpans(sink.Events()); len(leaked) != 0 {
		t.Errorf("%d probe spans leaked: %v", len(leaked), leaked)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return successes, reg.Snapshot()
}

// TestFaultLossRecovery drives the cluster through 20% message loss
// plus delay jitter and duplication — the acceptance workload. Requires
// nonzero successes: retries with a widened probing ratio must get
// requests through the lossy rounds.
func TestFaultLossRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectTimeout = 25 * time.Millisecond
	cfg.HoldTTL = 250 * time.Millisecond
	cfg.SweepInterval = 50 * time.Millisecond
	cfg.CommitTimeout = 100 * time.Millisecond
	cfg.ComposeRetries = 3
	cfg.RetryBackoff = 5 * time.Millisecond
	cfg.Faults = &faults.Config{
		Seed:     11,
		DropProb: 0.20,
		DupProb:  0.05,
		MaxDelay: 2 * time.Millisecond,
	}
	successes, snap := faultWorkload(t, cfg, 8, 6)
	if successes == 0 {
		t.Error("no request succeeded under 20% loss; retries should get some through")
	}
	if snap.Counters["dist.faults.dropped"] == 0 {
		t.Error("injector never dropped a message at 20% loss")
	}
	t.Logf("successes=%d/48 dropped=%d retries=%d holdsSwept=%d",
		successes, snap.Counters["dist.faults.dropped"],
		snap.Counters["dist.compose.retries"], snap.Counters["dist.holds.swept"])
}

// TestFaultDuplicationIdempotent: with every message delivered twice the
// commit/ack/hold machinery must stay idempotent — no double commits, no
// leaked resources.
func TestFaultDuplicationIdempotent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectTimeout = 25 * time.Millisecond
	cfg.HoldTTL = 250 * time.Millisecond
	cfg.SweepInterval = 50 * time.Millisecond
	cfg.CommitTimeout = 100 * time.Millisecond
	cfg.Faults = &faults.Config{Seed: 5, DupProb: 1}
	successes, snap := faultWorkload(t, cfg, 4, 5)
	if successes == 0 {
		t.Error("duplication alone should not prevent success")
	}
	if snap.Counters["dist.faults.duplicated"] == 0 {
		t.Error("injector never duplicated a message at DupProb=1")
	}
}

// TestFaultCrashRecovery schedules node outages across the run: requests
// toward down nodes fail fast (and may retry past the outage), crashed
// deputies roll back cleanly, and restarts rejoin the protocol.
func TestFaultCrashRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CollectTimeout = 25 * time.Millisecond
	cfg.HoldTTL = 250 * time.Millisecond
	cfg.SweepInterval = 20 * time.Millisecond
	cfg.CommitTimeout = 100 * time.Millisecond
	cfg.ComposeRetries = 3
	cfg.RetryBackoff = 40 * time.Millisecond // retries can outlive the outage
	cfg.Faults = &faults.Config{
		Seed: 17,
		Crashes: []faults.Crash{
			{Node: 1, At: 0, Downtime: 200 * time.Millisecond},
			{Node: 2, At: 0, Downtime: 200 * time.Millisecond},
			{Node: 3, At: 50 * time.Millisecond, Downtime: 200 * time.Millisecond},
		},
	}
	successes, snap := faultWorkload(t, cfg, 6, 5)
	if successes == 0 {
		t.Error("no request succeeded around the outages")
	}
	if snap.Counters["dist.node.crashes"] == 0 {
		t.Error("scheduled outages never observed")
	}
	t.Logf("successes=%d/30 crashes=%d restarts=%d",
		successes, snap.Counters["dist.node.crashes"], snap.Counters["dist.node.restarts"])
}

// TestFaultRetryWidensAlpha: the retry path re-probes with a larger
// probing ratio (§3.6), observable as retry events carrying increasing
// attempt numbers when every probe is dropped.
func TestFaultRetryWidensAlpha(t *testing.T) {
	sink := &obs.MemorySink{}
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.CollectTimeout = 10 * time.Millisecond
	cfg.ComposeRetries = 2
	cfg.RetryBackoff = time.Millisecond
	cfg.Tracer = obs.New(sink)
	cfg.Registry = reg
	cfg.Faults = &faults.Config{Seed: 1, DropProb: 1} // nothing gets through
	c := virtualCluster(t, cfg)

	if _, err := c.Compose(easyRequest(0)); !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
	if got := reg.Snapshot().Counters["dist.compose.retries"]; got != 2 {
		t.Errorf("dist.compose.retries = %d, want 2", got)
	}
	var attempts []int
	for _, e := range sink.Events() {
		if e.Type == obs.EventComposeRetried {
			attempts = append(attempts, e.Count)
		}
	}
	if fmt.Sprint(attempts) != "[1 2]" {
		t.Errorf("retry attempts = %v, want [1 2]", attempts)
	}
}
