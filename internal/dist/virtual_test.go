package dist

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/harness/clock"
	"repro/internal/obs"
)

// virtualCluster starts a cluster on an auto-advanced virtual clock: a
// driver goroutine fires the next pending timer whenever the network is
// quiet (no message queued or mid-dispatch), so every protocol wait —
// collect windows, hold TTLs, sweep ticks, retry backoffs — elapses in
// microseconds of wall time. The inflight credit makes the quiet check
// sound: a collect or commit timeout can never fire while the round it
// bounds still has messages in play, which is exactly the ordering the
// wall clock guarantees with time to spare.
func virtualCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	v := clock.NewVirtual()
	cfg.Clock = v
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			// After Shutdown the node goroutines are gone, so queued
			// messages keep their credits forever; advance regardless —
			// Shutdown itself waits on delayed-delivery timers.
			if closed || c.inflight.Load() == 0 {
				if _, ok := v.AdvanceToNext(); ok {
					// Keep draining timers back-to-back while quiet: a
					// fault-heavy run parks one timer per delayed
					// message, far too many to pace at sleep granularity.
					runtime.Gosched()
					continue
				}
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	t.Cleanup(func() {
		c.Shutdown() // needs the driver alive: pending virtual timers must fire
		close(stop)
		wg.Wait()
	})
	return c
}

// TestNodeSeedDerivation is the regression for the affine per-node seed
// derivation (seed*7919 + id): at cluster seed 0 every node's rng source
// collapsed to its own id — node 0 sharing source 0 with the substrate
// rng — and seeds 7919 apart aliased each other's node streams. The
// splitmix mix must land every (seed, id) pair in a distinct stream that
// also differs from the cluster rng's own source.
func TestNodeSeedDerivation(t *testing.T) {
	type pair struct{ seed, id int64 }
	seen := make(map[int64]pair)
	for _, seed := range []int64{0, 1, 2, 7919, -7919, -1, 1 << 40} {
		for id := int64(0); id < 64; id++ {
			s := nodeSeed(seed, id)
			if prev, dup := seen[s]; dup {
				t.Fatalf("nodeSeed collision: (%d,%d) and (%d,%d) both map to %d",
					prev.seed, prev.id, seed, id, s)
			}
			seen[s] = pair{seed, id}
			if s == id {
				t.Errorf("nodeSeed(%d,%d) degenerates to the node id", seed, id)
			}
			if s == seed {
				t.Errorf("nodeSeed(%d,%d) collides with the cluster rng source", seed, id)
			}
		}
	}
}

// TestDistinctSeedsDistinctProbeOrder: two clusters built from distinct
// seeds must fan their first probe wave out in different orders — the
// observable consequence of the per-node rng streams actually differing.
func TestDistinctSeedsDistinctProbeOrder(t *testing.T) {
	firstWave := func(seed int64) []int {
		sink := &obs.MemorySink{}
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.Tracer = obs.New(sink)
		c, err := NewUnstarted(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ComposeAsync(easyRequest(0)); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.StepNode(0); !ok {
			t.Fatal("deputy had nothing to dispatch")
		}
		var order []int
		for _, e := range sink.Events() {
			if e.Type == obs.EventProbeSpawned {
				order = append(order, e.Node)
			}
		}
		if len(order) == 0 {
			t.Fatalf("seed %d: deputy spawned no probes", seed)
		}
		return order
	}
	a, b := firstWave(1), firstWave(2)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("seeds 1 and 2 probed the identical node order %v", a)
		}
	}
}
