package obs

import (
	"sync"
	"sync/atomic"
)

// Subscription is one live consumer of a tracer's event stream: a
// bounded ring the tracer pushes every emitted event into, drained by
// the consumer at its own pace. The emit path never blocks on a slow
// consumer — when the ring is full the oldest buffered event is
// overwritten and the loss is counted, then surfaced in-stream as a
// synthetic trace.dropped event on the next Drain. That makes the
// tracer safe to share between the engine's hot path and an arbitrary
// number of /trace clients.
type Subscription struct {
	t      *Tracer
	notify chan struct{}

	mu     sync.Mutex
	ring   []Event // guarded by mu
	head   int     // index of the oldest buffered event. guarded by mu
	size   int     // guarded by mu
	missed int64   // events lost since the last Drain. guarded by mu
	closed bool    // guarded by mu

	drops atomic.Int64 // events lost over the subscription's lifetime
}

// Subscribe attaches a new subscription buffering up to capacity events
// (a default of 1024 when capacity is not positive). A nil tracer
// returns a nil subscription, on which every method is a no-op.
func (t *Tracer) Subscribe(capacity int) *Subscription {
	if t == nil {
		return nil
	}
	if capacity <= 0 {
		capacity = 1024
	}
	s := &Subscription{
		t:      t,
		ring:   make([]Event, capacity),
		notify: make(chan struct{}, 1),
	}
	t.subsMu.Lock()
	var list []*Subscription
	if old := t.subs.Load(); old != nil {
		list = append(list, *old...)
	}
	list = append(list, s)
	t.subs.Store(&list)
	t.subsMu.Unlock()
	return s
}

// push appends one event, overwriting the oldest when full. Called from
// the tracer's emit path; must never block.
func (s *Subscription) push(e Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.ring[(s.head+s.size)%len(s.ring)] = e
	if s.size == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.missed++
		s.drops.Add(1)
	} else {
		s.size++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Ready returns a channel that receives a token whenever new events
// arrive (and when the subscription closes), coalescing bursts into one
// wakeup. Pair each receive with a Drain. Nil on a nil subscription.
func (s *Subscription) Ready() <-chan struct{} {
	if s == nil {
		return nil
	}
	return s.notify
}

// Drain removes and returns everything buffered, in emission order.
// When ring overflow lost events since the previous Drain, the batch
// opens with a synthetic trace.dropped event whose Count is the number
// lost (timestamped like the oldest surviving event). Returns nil when
// nothing is buffered.
func (s *Subscription) Drain() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.size == 0 && s.missed == 0 {
		s.mu.Unlock()
		return nil
	}
	out := make([]Event, 0, s.size+1)
	if s.missed > 0 {
		dropped := Event{Type: EventTraceDropped, Pos: -1, Node: -1, Count: int(s.missed)}
		if s.size > 0 {
			dropped.AtMicros = s.ring[s.head].AtMicros
		}
		out = append(out, dropped)
		s.missed = 0
	}
	for i := 0; i < s.size; i++ {
		out = append(out, s.ring[(s.head+i)%len(s.ring)])
	}
	s.head, s.size = 0, 0
	s.mu.Unlock()
	return out
}

// Drops returns how many events the ring overwrote over the
// subscription's lifetime; 0 on nil.
func (s *Subscription) Drops() int64 {
	if s == nil {
		return 0
	}
	return s.drops.Load()
}

// Closed reports whether Close was called.
func (s *Subscription) Closed() bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close detaches the subscription from its tracer and wakes any Ready
// waiter. Buffered events remain drainable. Safe to call twice.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	t := s.t
	t.subsMu.Lock()
	if old := t.subs.Load(); old != nil {
		list := make([]*Subscription, 0, len(*old))
		for _, x := range *old {
			if x != s {
				list = append(list, x)
			}
		}
		t.subs.Store(&list)
	}
	t.subsMu.Unlock()

	select {
	case s.notify <- struct{}{}:
	default:
	}
}
