package obs

import (
	"bytes"
	"strings"
	"testing"
)

// fullRegistry populates one instrument of every kind.
func fullRegistry() *Registry {
	r := NewRegistry()
	r.Counter("core.probes.sent").Add(12)
	r.Gauge("runtime.sessions.active").Set(3)
	h := r.Histogram("runtime.find.latency_ms", []float64{1, 5, 10})
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(99)
	q := r.QHistogram("core.walk.rtt_ms")
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	r.CounterVec("rpc.calls", "method").With("find").Add(4)
	r.GaugeVec("session.phi", "session").With("9").Set(0.75)
	hv := r.HistogramVec("op.latency_ms", "op")
	hv.With("find").Observe(2)
	hv.With("close").Observe(8)
	return r
}

func TestWritePrometheusIsValidExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, fullRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE core_probes_sent counter",
		"core_probes_sent 12",
		"# TYPE runtime_sessions_active gauge",
		"# TYPE runtime_find_latency_ms histogram",
		`runtime_find_latency_ms_bucket{le="+Inf"} 3`,
		"runtime_find_latency_ms_count 3",
		"# TYPE core_walk_rtt_ms summary",
		`core_walk_rtt_ms{quantile="0.5"}`,
		`core_walk_rtt_ms{quantile="0.999"}`,
		`rpc_calls{method="find"} 4`,
		`session_phi{session="9"} 0.75`,
		`op_latency_ms{op="find",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Nothing registered renders nothing — and CheckExposition treats an
	// empty scrape as an error, which is exactly what CI should see if
	// the server wires a nil registry.
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot rendered %q", buf.String())
	}
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"core.walk.rtt_ms":  "core_walk_rtt_ms",
		"weird--name!!here": "weird_name_here",
		"9starts.with.num":  "_starts_with_num",
		"ok_name":           "ok_name",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("g", "path").With("a\\b\"c\nd").Set(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `path="a\\b\"c\nd"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("escaped exposition rejected: %v", err)
	}
}

func TestCheckExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad value":        "# TYPE x counter\nx notanumber\n",
		"sample sans TYPE": "x 1\n",
		"duplicate TYPE":   "# TYPE x counter\nx 1\n# TYPE x counter\nx 2\n",
		"bad kind":         "# TYPE x widget\nx 1\n",
		"bad name":         "# TYPE 1x counter\n1x 1\n",
		"bucket sans le":   "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n",
		"bad quantile":     "# TYPE s summary\ns{quantile=\"often\"} 1\n",
		"unterminated":     "# TYPE x counter\nx{l=\"v 1\n",
	}
	for name, in := range cases {
		if err := CheckExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted:\n%s", name, in)
		}
	}
}

func TestCheckExpositionAcceptsRealShapes(t *testing.T) {
	good := `# HELP up whether the target is up
# TYPE up gauge
up 1
# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 3
h_sum 4.5
h_count 3
# TYPE s summary
s{quantile="0.5"} 1
s_sum 2
s_count 2
`
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}
