package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func serveFixture(t *testing.T) (*Server, *Registry, *Tracer) {
	t.Helper()
	r := fullRegistry()
	tr := NewLive()
	srv, err := Serve("127.0.0.1:0", ServeConfig{Registry: r, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, r, tr
}

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServeMetricsEndpoints(t *testing.T) {
	srv, _, _ := serveFixture(t)

	code, body, ctype := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ctype)
	}
	if err := CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics not valid exposition: %v\n%s", err, body)
	}
	if !strings.Contains(body, `core_walk_rtt_ms{quantile="0.999"}`) {
		t.Errorf("/metrics missing p999 sample:\n%s", body)
	}

	_, body, _ = get(t, srv.URL()+"/metrics?format=text")
	if !strings.Contains(body, "counter core.probes.sent 12") {
		t.Errorf("?format=text missing native line:\n%s", body)
	}

	code, body, ctype = get(t, srv.URL()+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json status %d type %q", code, ctype)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/metrics.json not a Snapshot: %v", err)
	}
	if s.Counters["core.probes.sent"] != 12 {
		t.Errorf("snapshot counters = %+v", s.Counters)
	}
	if s.AtUnixNanos == 0 {
		t.Error("/metrics.json snapshot missing server scrape timestamp")
	}

	code, body, _ = get(t, srv.URL()+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, _, _ = get(t, srv.URL()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	code, _, _ = get(t, srv.URL()+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeTraceStream(t *testing.T) {
	srv, _, tr := serveFixture(t)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL()+"/trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/trace status %d", resp.StatusCode)
	}

	// The subscription races the handler's setup; emit until the first
	// line arrives.
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	emit := time.NewTicker(10 * time.Millisecond)
	defer emit.Stop()
	var line string
	for line == "" {
		select {
		case <-ctx.Done():
			t.Fatal("no trace line before timeout")
		case <-emit.C:
			tr.Committed(42, 7)
		case l, ok := <-lines:
			if !ok {
				t.Fatal("trace stream closed early")
			}
			line = l
		}
	}
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("trace line %q: %v", line, err)
	}
	if ev.Type != EventCommitted || ev.Req != 42 {
		t.Fatalf("trace event = %+v", ev)
	}
}

// TestServeTraceUnsubscribesOnDisconnect is the /trace leak gate: every
// client connect/disconnect cycle must drop the tracer's live
// subscription count back to zero — and with it Enabled() for a
// sink-less tracer, so the engine's emit path returns to its two-atomic-
// load disabled cost. A leaked subscription would buffer (and drop)
// events forever on behalf of a client that is long gone.
func TestServeTraceUnsubscribesOnDisconnect(t *testing.T) {
	srv, _, tr := serveFixture(t)

	if tr.Enabled() {
		t.Fatal("sink-less tracer reports enabled before any subscriber")
	}
	const cycles = 8
	for i := 0; i < cycles; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL()+"/trace", nil)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		// Wait for the handler's subscription to attach, emit one event
		// through it, then disconnect abruptly (context cancel closes the
		// client side mid-stream).
		deadline := time.Now().Add(5 * time.Second)
		for tr.Subscribers() == 0 {
			if time.Now().After(deadline) {
				cancel()
				t.Fatalf("cycle %d: handler never subscribed", i)
			}
			time.Sleep(time.Millisecond)
		}
		tr.Committed(int64(i), 0)
		cancel()
		resp.Body.Close()
		for tr.Subscribers() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: %d subscriptions still live after disconnect", i, tr.Subscribers())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if tr.Enabled() {
		t.Fatalf("sink-less tracer still enabled after %d disconnect cycles", cycles)
	}
}

func TestServeTraceWithoutTracer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", ServeConfig{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _, _ := get(t, srv.URL()+"/trace")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/trace without tracer = %d, want 503", code)
	}
}

func TestServeNilServerAccessors(t *testing.T) {
	var s *Server
	if s.Addr() != "" || s.URL() != "" || s.Close() != nil {
		t.Fatal("nil Server accessors not inert")
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := Serve("256.256.256.256:0", ServeConfig{}); err == nil {
		t.Fatal("unbindable address accepted")
	}
}
