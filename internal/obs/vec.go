package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled instrument vectors: families of counters, gauges, or quantile
// histograms indexed by an ordered tuple of label values (session,
// tenant, node, ...). Each distinct label tuple materialises one child
// instrument, resolved once with With and then updated lock-free, so a
// per-session gauge costs what an unlabeled gauge costs after the first
// touch.
//
// Label cardinality is the caller's contract: children live until
// Delete, so label sets must be bounded by something the caller tears
// down (sessions, nodes) — never by unbounded values (request IDs,
// timestamps). The drift monitor and the /metrics exposition iterate
// every child.
//
// All vector types are nil-safe the same way the scalar instruments
// are: a nil vector hands out nil (no-op) children. With called with
// the wrong number of label values returns a nil child and bumps the
// owning registry's LabelErrors counter — a monitoring layer must not
// panic the system it watches.

// labelKey joins label values into one map key. \x1f (ASCII unit
// separator) cannot collide with reasonable label values.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

func splitLabelKey(key string) []string {
	return strings.Split(key, "\x1f")
}

// vecCore is the shared child-management machinery of the vector types.
type vecCore struct {
	mu       sync.RWMutex
	labels   []string
	children map[string][]string // key -> label values
	onArity  func()              // bumps the registry's label-error counter
}

func (v *vecCore) keyFor(values []string) (string, bool) {
	if len(values) != len(v.labels) {
		if v.onArity != nil {
			v.onArity()
		}
		return "", false
	}
	return labelKey(values), true
}

// LabelValues returns the label tuples of every live child, sorted.
func (v *vecCore) labelValues() [][]string {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	out := make([][]string, len(keys))
	for i, k := range keys {
		out[i] = splitLabelKey(k)
	}
	return out
}

// CounterVec is a family of counters indexed by label values.
type CounterVec struct {
	vecCore
	byKey map[string]*Counter
}

// With returns the child counter for the given label values, creating
// it on first use. Nil receiver or wrong label arity returns a nil
// (no-op) counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return nil
	}
	v.mu.RLock()
	c := v.byKey[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.byKey[key]; c == nil {
		c = &Counter{}
		v.byKey[key] = c
		v.children[key] = append([]string(nil), labelValues...)
	}
	return c
}

// Delete drops the child for the given label values (e.g. at session
// teardown, keeping label cardinality bounded). No-op when absent.
func (v *CounterVec) Delete(labelValues ...string) {
	if v == nil {
		return
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return
	}
	v.mu.Lock()
	delete(v.byKey, key)
	delete(v.children, key)
	v.mu.Unlock()
}

// LabelNames returns the vector's label names.
func (v *CounterVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// LabelValues returns the label tuples of every live child, sorted.
func (v *CounterVec) LabelValues() [][]string {
	if v == nil {
		return nil
	}
	return v.labelValues()
}

// GaugeVec is a family of gauges indexed by label values.
type GaugeVec struct {
	vecCore
	byKey map[string]*Gauge
}

// With returns the child gauge for the given label values, creating it
// on first use. Nil receiver or wrong label arity returns a nil gauge.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return nil
	}
	v.mu.RLock()
	g := v.byKey[key]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g = v.byKey[key]; g == nil {
		g = &Gauge{}
		v.byKey[key] = g
		v.children[key] = append([]string(nil), labelValues...)
	}
	return g
}

// Get returns the child gauge for the given label values without
// creating it; nil when absent.
func (v *GaugeVec) Get(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.byKey[key]
}

// Delete drops the child for the given label values.
func (v *GaugeVec) Delete(labelValues ...string) {
	if v == nil {
		return
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return
	}
	v.mu.Lock()
	delete(v.byKey, key)
	delete(v.children, key)
	v.mu.Unlock()
}

// LabelNames returns the vector's label names.
func (v *GaugeVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// LabelValues returns the label tuples of every live child, sorted.
func (v *GaugeVec) LabelValues() [][]string {
	if v == nil {
		return nil
	}
	return v.labelValues()
}

// HistogramVec is a family of quantile histograms indexed by label
// values. Children are QHistograms: labeled latency families need the
// auto-ranging layout, not per-family bucket bounds.
type HistogramVec struct {
	vecCore
	byKey map[string]*QHistogram
}

// With returns the child histogram for the given label values, creating
// it on first use. Nil receiver or wrong label arity returns a nil
// (no-op) histogram.
func (v *HistogramVec) With(labelValues ...string) *QHistogram {
	if v == nil {
		return nil
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return nil
	}
	v.mu.RLock()
	h := v.byKey[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.byKey[key]; h == nil {
		h = NewQHistogram()
		v.byKey[key] = h
		v.children[key] = append([]string(nil), labelValues...)
	}
	return h
}

// Delete drops the child for the given label values.
func (v *HistogramVec) Delete(labelValues ...string) {
	if v == nil {
		return
	}
	key, ok := v.keyFor(labelValues)
	if !ok {
		return
	}
	v.mu.Lock()
	delete(v.byKey, key)
	delete(v.children, key)
	v.mu.Unlock()
}

// LabelNames returns the vector's label names.
func (v *HistogramVec) LabelNames() []string {
	if v == nil {
		return nil
	}
	return append([]string(nil), v.labels...)
}

// LabelValues returns the label tuples of every live child, sorted.
func (v *HistogramVec) LabelValues() [][]string {
	if v == nil {
		return nil
	}
	return v.labelValues()
}

// Snapshot copies the vector's current state; zero value on nil.
func (v *CounterVec) Snapshot() VecSnapshot {
	if v == nil {
		return VecSnapshot{}
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := VecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, k := range sortedKeys(v.byKey) {
		s.Values = append(s.Values, LabeledValue{
			Labels: append([]string(nil), v.children[k]...),
			Value:  float64(v.byKey[k].Value()),
		})
	}
	return s
}

// Snapshot copies the vector's current state; zero value on nil.
func (v *GaugeVec) Snapshot() VecSnapshot {
	if v == nil {
		return VecSnapshot{}
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := VecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, k := range sortedKeys(v.byKey) {
		s.Values = append(s.Values, LabeledValue{
			Labels: append([]string(nil), v.children[k]...),
			Value:  v.byKey[k].Value(),
		})
	}
	return s
}

// Snapshot copies the vector's current state; zero value on nil.
func (v *HistogramVec) Snapshot() HistogramVecSnapshot {
	if v == nil {
		return HistogramVecSnapshot{}
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := HistogramVecSnapshot{LabelNames: append([]string(nil), v.labels...)}
	for _, k := range sortedKeys(v.byKey) {
		s.Values = append(s.Values, LabeledQHistogram{
			Labels:    append([]string(nil), v.children[k]...),
			Histogram: v.byKey[k].Snapshot(),
		})
	}
	return s
}

// LabeledValue is one vector child's value in a snapshot.
type LabeledValue struct {
	// Labels holds the child's label values, parallel to the vector's
	// label names.
	Labels []string `json:"labels"`
	// Value is the child's value (counters are exact in float64 up to
	// 2^53).
	Value float64 `json:"value"`
}

// VecSnapshot is one counter or gauge vector's state at snapshot time.
type VecSnapshot struct {
	// LabelNames holds the vector's label names in declaration order.
	LabelNames []string `json:"labelNames"`
	// Values holds one entry per live child, sorted by label values.
	Values []LabeledValue `json:"values"`
}

// LabeledQHistogram is one histogram-vector child in a snapshot.
type LabeledQHistogram struct {
	Labels    []string           `json:"labels"`
	Histogram QHistogramSnapshot `json:"histogram"`
}

// HistogramVecSnapshot is one histogram vector's state at snapshot time.
type HistogramVecSnapshot struct {
	LabelNames []string            `json:"labelNames"`
	Values     []LabeledQHistogram `json:"values"`
}
