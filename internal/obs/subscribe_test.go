package obs

import (
	"sync"
	"testing"
)

func TestSubscribeDeliversEvents(t *testing.T) {
	tr := NewLive()
	if tr.Enabled() {
		t.Fatal("tracer enabled before any subscriber")
	}
	sub := tr.Subscribe(8)
	defer sub.Close()
	if !tr.Enabled() {
		t.Fatal("tracer not enabled with a live subscriber")
	}

	tr.RequestReceived(1, 4)
	tr.Committed(1, 4)
	<-sub.Ready()
	got := sub.Drain()
	if len(got) != 2 || got[0].Type != EventRequestReceived || got[1].Type != EventCommitted {
		t.Fatalf("Drain = %+v", got)
	}
	if got := sub.Drain(); got != nil {
		t.Fatalf("second Drain = %+v, want nil", got)
	}
	if sub.Drops() != 0 {
		t.Fatalf("Drops = %d", sub.Drops())
	}
}

func TestSubscribeRingOverflowDropsOldest(t *testing.T) {
	tr := NewLive()
	sub := tr.Subscribe(4)
	defer sub.Close()

	for i := int64(1); i <= 10; i++ {
		tr.RequestReceived(i, 0)
	}
	got := sub.Drain()
	// 6 events lost; the batch opens with the synthetic gap marker then
	// the 4 survivors (requests 7..10).
	if len(got) != 5 {
		t.Fatalf("Drain returned %d events: %+v", len(got), got)
	}
	if got[0].Type != EventTraceDropped || got[0].Count != 6 {
		t.Fatalf("gap marker = %+v, want trace.dropped count 6", got[0])
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if got[i+1].Req != want {
			t.Fatalf("survivor %d = req %d, want %d", i, got[i+1].Req, want)
		}
	}
	if sub.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", sub.Drops())
	}
	// The drop counter is cumulative; the gap marker is not re-emitted.
	if got := sub.Drain(); got != nil {
		t.Fatalf("post-overflow Drain = %+v", got)
	}
}

func TestSubscribeClose(t *testing.T) {
	tr := NewLive()
	sub := tr.Subscribe(0) // default capacity
	tr.RequestReceived(1, 0)
	sub.Close()
	sub.Close() // idempotent
	if !sub.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if tr.Enabled() {
		t.Fatal("tracer still enabled after last subscriber closed")
	}
	// Events emitted after Close are not delivered.
	tr.RequestReceived(2, 0)
	got := sub.Drain()
	if len(got) != 1 || got[0].Req != 1 {
		t.Fatalf("post-close Drain = %+v", got)
	}
	// Ready is closed so waiters wake instead of hanging.
	<-sub.Ready()
}

func TestSubscribeNilSafety(t *testing.T) {
	var tr *Tracer
	sub := tr.Subscribe(8)
	if sub != nil {
		t.Fatal("nil tracer returned a subscription")
	}
	sub.Close()
	if sub.Drain() != nil || sub.Drops() != 0 || !sub.Closed() {
		t.Fatal("nil subscription not inert")
	}
}

func TestSubscribeFanOut(t *testing.T) {
	tr := NewLive()
	a := tr.Subscribe(8)
	b := tr.Subscribe(8)
	defer a.Close()
	defer b.Close()
	tr.Committed(7, 1)
	for _, sub := range []*Subscription{a, b} {
		got := sub.Drain()
		if len(got) != 1 || got[0].Req != 7 {
			t.Fatalf("fan-out Drain = %+v", got)
		}
	}
	a.Close()
	tr.Committed(8, 1)
	if got := a.Drain(); got != nil {
		t.Fatalf("closed subscriber received %+v", got)
	}
	if got := b.Drain(); len(got) != 1 {
		t.Fatalf("live subscriber missed event: %+v", got)
	}
}

// TestSubscribeConcurrent is the -race gate: concurrent emitters, a
// draining subscriber, and subscribers churning on and off.
func TestSubscribeConcurrent(t *testing.T) {
	tr := NewLive()
	stable := tr.Subscribe(256)
	defer stable.Close()

	var wg sync.WaitGroup
	const emitters, perEmitter = 4, 1000
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				tr.RequestReceived(int64(e*perEmitter+i), 0)
			}
		}(e)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			s := tr.Subscribe(16)
			_ = s.Drain()
			s.Close()
		}
	}()

	var received int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stable.Ready():
				for _, ev := range stable.Drain() {
					if ev.Type == EventRequestReceived {
						received++
					}
				}
			case <-done:
				return
			}
		}
	}()
	wg.Wait()
	done <- struct{}{}
	<-done
	for _, ev := range stable.Drain() {
		if ev.Type == EventRequestReceived {
			received++
		}
	}
	if got := received + stable.Drops(); got != emitters*perEmitter {
		t.Fatalf("received %d + dropped %d = %d, want %d",
			received, stable.Drops(), got, emitters*perEmitter)
	}
}

// TestEmitAllocationFreeWithoutSubscribers guards the disabled path: a
// tracer with no sink and no subscribers must not allocate per emit.
func TestEmitAllocationFreeWithoutSubscribers(t *testing.T) {
	tr := NewLive()
	if n := testing.AllocsPerRun(1000, func() { tr.RequestReceived(1, 0) }); n != 0 {
		t.Errorf("subscriber-less emit allocates %v per call", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() { nilTr.RequestReceived(1, 0) }); n != 0 {
		t.Errorf("nil tracer emit allocates %v per call", n)
	}
}

func BenchmarkEmitNoSubscribers(b *testing.B) {
	tr := NewLive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RequestReceived(int64(i), 0)
	}
}

func BenchmarkEmitOneSubscriber(b *testing.B) {
	tr := NewLive()
	sub := tr.Subscribe(1024)
	defer sub.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.RequestReceived(int64(i), 0)
	}
}
