package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestQHistogramBasics(t *testing.T) {
	h := NewQHistogram()
	for _, v := range []float64{1, 2, 4, 8} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Sum() != 15 {
		t.Fatalf("Sum = %v, want 15", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 8 {
		t.Fatalf("Min/Max = %v/%v, want 1/8", h.Min(), h.Max())
	}
	// The p0..p25 rank is the minimum's bucket (midpoint within one
	// sub-bucket of 1); p100 clamps the top bucket's midpoint to Max.
	if q := h.Quantile(0.01); q < 1 || q > 1.04 {
		t.Fatalf("Quantile(0.01) = %v, want ~1", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Fatalf("Quantile(1) = %v, want 8", q)
	}
}

func TestQHistogramEdgeValues(t *testing.T) {
	h := NewQHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())
	h.Observe(5)
	// NaN counts as an observation (in the zero bucket — !(NaN > 0))
	// but contributes no sum/min/max; +Inf lands in the overflow bucket
	// without poisoning the sum.
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 2 { // 0 + -3 + 5
		t.Fatalf("Sum = %v, want 2", h.Sum())
	}
	if h.Min() != -3 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want -3/5", h.Min(), h.Max())
	}
	// Quantiles over the zero bucket report the recorded (negative) min.
	if q := h.Quantile(0.2); q != -3 {
		t.Fatalf("Quantile(0.2) = %v, want -3", q)
	}
	// The overflow rank reports the recorded max, not +Inf.
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("Quantile(1) = %v, want 5", q)
	}

	s := h.Snapshot()
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot with Inf observation not marshalable: %v", err)
	}
	if s.Buckets[0].Upper != 0 || s.Buckets[0].Count != 3 {
		t.Fatalf("zero bucket = %+v, want Upper 0 Count 3", s.Buckets[0])
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Upper != math.MaxFloat64 || last.Count != 1 {
		t.Fatalf("overflow bucket = %+v", last)
	}
}

func TestQHistogramNilIsNoOp(t *testing.T) {
	var h *QHistogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil QHistogram not a no-op")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// exactQuantile mirrors QHistogram.Quantile's rank rule (the sample at
// 1-based rank ceil(p*n)) on the raw values.
func exactQuantile(sorted []float64, p float64) float64 {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestQuantileAccuracyProperty is the estimator's accuracy contract:
// for seeded uniform, lognormal, and bimodal distributions, every
// reported quantile falls within one log-bucket of the exact
// same-rank sample quantile.
func TestQuantileAccuracyProperty(t *testing.T) {
	distributions := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() * 1000 }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*2 + 1) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 1 + r.Float64() // fast mode ~1ms
			}
			return 250 + 50*r.Float64() // slow mode ~250ms
		}},
	}
	quantiles := []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1}

	for _, dist := range distributions {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			h := NewQHistogram()
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := dist.gen(r)
				h.Observe(v)
				samples = append(samples, v)
			}
			sort.Float64s(samples)
			for _, p := range quantiles {
				exact := exactQuantile(samples, p)
				got := h.Quantile(p)
				// The exact sample's log bucket, widened by one bucket
				// either side: estimate and exact may straddle a bucket
				// boundary, but never by more than one bucket width.
				lo, _ := qBucketBounds(qBucketIndex(exact) - 1)
				_, hi := qBucketBounds(qBucketIndex(exact) + 1)
				// Clamping to recorded Min/Max can only tighten toward
				// the true value.
				if got < math.Min(lo, exact) || got > math.Max(hi, exact) {
					t.Errorf("%s seed %d: Quantile(%v) = %v, exact %v, allowed [%v, %v]",
						dist.name, seed, p, got, exact, lo, hi)
				}
			}
		}
	}
}

// TestQHistogramBucketRoundTrip pins the bucket index math: every
// bucket's own bounds map back to its index.
func TestQHistogramBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < qBuckets; idx += 7 {
		lo, hi := qBucketBounds(idx)
		if got := qBucketIndex(lo); got != idx {
			t.Fatalf("bucket %d: lower bound %g maps to bucket %d", idx, lo, got)
		}
		mid := lo + (hi-lo)/2
		if got := qBucketIndex(mid); got != idx {
			t.Fatalf("bucket %d: midpoint %g maps to bucket %d", idx, mid, got)
		}
	}
}

// TestQHistogramConcurrent hammers Observe, Quantile, and Snapshot from
// many goroutines; run under -race this is the data-race gate for the
// lock-free hot path.
func TestQHistogramConcurrent(t *testing.T) {
	h := NewQHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(r.Float64() * 100)
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = h.Quantile(0.99)
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if h.Count() != writers*perWriter {
		t.Fatalf("Count = %d, want %d", h.Count(), writers*perWriter)
	}
	s := h.Snapshot()
	var n int64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", n, h.Count())
	}
}

// TestObserveAllocationFree guards the hot path: Observe must not
// allocate, enabled or disabled.
func TestObserveAllocationFree(t *testing.T) {
	h := NewQHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3.7) }); n != 0 {
		t.Errorf("live Observe allocates %v per call", n)
	}
	var nilH *QHistogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(3.7) }); n != 0 {
		t.Errorf("nil Observe allocates %v per call", n)
	}
}

func BenchmarkQHistogramObserve(b *testing.B) {
	h := NewQHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}

func BenchmarkQHistogramObserveDisabled(b *testing.B) {
	var h *QHistogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) + 0.5)
	}
}

func BenchmarkQHistogramQuantile(b *testing.B) {
	h := NewQHistogram()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		h.Observe(math.Exp(r.NormFloat64() * 2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
