package obs

import (
	"math"
	"sync/atomic"
)

// The quantile histogram's log-bucketed layout, HDR-histogram style:
// every power-of-two octave is split into qSubCount linearly-spaced
// sub-buckets, so a bucket's relative width is at most 1/qSubCount
// (~3.1%) of its value and Quantile's error is bounded by one bucket
// width with no a-priori range configuration. The covered range is
// [2^qMinExp, 2^(qMaxExp+1)); observations below it land in the first
// bucket, above it in a dedicated overflow bucket, and non-positive
// values in a dedicated zero bucket — nothing is ever lost.
const (
	qSubBits  = 5
	qSubCount = 1 << qSubBits // 32 sub-buckets per octave
	qMinExp   = -24           // 2^-24 ~ 6.0e-8: below any latency we time
	qMaxExp   = 40            // 2^40  ~ 1.1e12: above any latency we time
	qOctaves  = qMaxExp - qMinExp + 1
	qBuckets  = qOctaves * qSubCount
)

// QHistogram is a log-bucketed auto-ranging histogram with a quantile
// API. Unlike Histogram it needs no bucket bounds up front: any
// positive float64 maps to a bucket whose width is at most ~3.1% of its
// value, which makes Quantile(p) accurate to one log-bucket over the
// full range of latencies the system records (nanoseconds to hours).
//
// All updates are atomic and allocation-free; a nil *QHistogram is a
// no-op on every method, so hot paths thread it unconditionally.
type QHistogram struct {
	counts  [qBuckets]atomic.Int64
	zero    atomic.Int64 // observations <= 0
	over    atomic.Int64 // observations >= 2^(qMaxExp+1)
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	minBits atomic.Uint64 // float64 bits of the smallest observation
	maxBits atomic.Uint64 // float64 bits of the largest observation
}

// NewQHistogram returns a standalone quantile histogram (registries
// hand them out too; see Registry.QHistogram).
func NewQHistogram() *QHistogram {
	h := &QHistogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// qBucketIndex maps a positive finite v to its bucket. The float64 bit
// pattern already is the (exponent, sub-bucket) pair: the biased
// exponent field selects the octave and the mantissa's top qSubBits
// bits the linear sub-bucket within it.
func qBucketIndex(v float64) int {
	bits := math.Float64bits(v)
	idx := int(bits>>(52-qSubBits)) - (qMinExp+1023)<<qSubBits
	if idx < 0 {
		return 0
	}
	return idx
}

// qBucketBounds returns bucket i's (lower, upper] value range.
func qBucketBounds(i int) (lo, hi float64) {
	exp := qMinExp + i/qSubCount
	sub := i % qSubCount
	scale := math.Ldexp(1, exp)
	lo = scale * (1 + float64(sub)/qSubCount)
	hi = scale * (1 + float64(sub+1)/qSubCount)
	return lo, hi
}

// Observe records one sample. No-op on a nil histogram.
//
//acp:hotpath
func (h *QHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	switch {
	case !(v > 0): // non-positive and NaN
		h.zero.Add(1)
	case v >= math.Ldexp(1, qMaxExp+1) || math.IsInf(v, 1):
		h.over.Add(1)
	default:
		h.counts[qBucketIndex(v)].Add(1)
	}
	h.count.Add(1)
	// Sum, min, and max track finite observations only: an injected
	// +Inf (e.g. an unreachable-route delay) is counted in the overflow
	// bucket above but must not poison the summary statistics, which
	// are exported as JSON (where Inf is unrepresentable).
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		for {
			old := h.sumBits.Load()
			if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
				break
			}
		}
		for {
			old := h.minBits.Load()
			if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
		for {
			old := h.maxBits.Load()
			if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
				break
			}
		}
	}
}

// Count returns the total number of observations; 0 on nil.
func (h *QHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on nil.
func (h *QHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest observation, or 0 before any.
func (h *QHistogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	if v := math.Float64frombits(h.minBits.Load()); !math.IsInf(v, 1) {
		return v
	}
	return 0
}

// Max returns the largest observation, or 0 before any.
func (h *QHistogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	if v := math.Float64frombits(h.maxBits.Load()); !math.IsInf(v, -1) {
		return v
	}
	return 0
}

// Quantile estimates the p-quantile (p in [0, 1]) of everything
// observed so far: the bucket containing the ceil(p*n)-th smallest
// sample, reported as the bucket midpoint clamped to the observed
// min/max. The estimate is within one log-bucket (~3.1% relative) of
// the exact sample quantile. It returns 0 before any observation and
// on a nil histogram. Concurrent Observes make the rank a snapshot,
// per-instrument consistent — what monitoring needs.
func (h *QHistogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	min, max := h.Min(), h.Max()
	seen := h.zero.Load()
	if seen >= rank {
		if min < 0 {
			return min
		}
		return 0
	}
	for i := 0; i < qBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			seen += c
			if seen >= rank {
				lo, hi := qBucketBounds(i)
				return clamp((lo+hi)/2, min, max)
			}
		}
	}
	// Rank falls in the overflow bucket (or raced ahead of bucket
	// updates): the largest observation is the best answer.
	return max
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// QBucket is one occupied bucket of a QHistogram snapshot.
type QBucket struct {
	// Upper is the bucket's inclusive upper value bound.
	Upper float64 `json:"upper"`
	// Count is the number of observations in the bucket.
	Count int64 `json:"count"`
}

// QHistogramSnapshot is one quantile histogram's state at snapshot
// time: summary statistics, the standard monitoring quantiles, and the
// sparse occupied-bucket list (empty buckets are omitted — the dense
// layout has thousands).
type QHistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	// Buckets lists occupied buckets in ascending bound order. A
	// leading bucket with Upper 0 counts non-positive observations; a
	// trailing bucket with Upper MaxFloat64 counts overflow (the bound
	// is the JSON-representable stand-in for +Inf).
	Buckets []QBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state; zero value on nil.
func (h *QHistogram) Snapshot() QHistogramSnapshot {
	if h == nil {
		return QHistogramSnapshot{}
	}
	s := QHistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if z := h.zero.Load(); z > 0 {
		s.Buckets = append(s.Buckets, QBucket{Upper: 0, Count: z})
	}
	for i := 0; i < qBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			_, hi := qBucketBounds(i)
			s.Buckets = append(s.Buckets, QBucket{Upper: hi, Count: c})
		}
	}
	if o := h.over.Load(); o > 0 {
		s.Buckets = append(s.Buckets, QBucket{Upper: math.MaxFloat64, Count: o})
	}
	return s
}
