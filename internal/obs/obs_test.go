package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("probes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("probes") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("alpha")
	g.Set(0.3)
	if got := g.Value(); got != 0.3 {
		t.Errorf("gauge = %v, want 0.3", got)
	}
	g.Set(-1.5)
	if got := g.Value(); got != -1.5 {
		t.Errorf("gauge = %v, want -1.5", got)
	}
}

// TestHistogramBucketBoundaries pins the v <= bound bucket semantics,
// including exact-boundary observations and overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 50, 100})
	for _, v := range []float64{0, 10, 10.0001, 50, 99.9, 100, 100.5, 1e9} {
		h.Observe(v)
	}
	bounds, counts := h.Buckets()
	if want := []float64{10, 50, 100}; !reflect.DeepEqual(bounds, want) {
		t.Fatalf("bounds = %v, want %v", bounds, want)
	}
	// <=10: {0, 10}; <=50: {10.0001, 50}; <=100: {99.9, 100}; over: {100.5, 1e9}
	if want := []int64{2, 2, 2, 2}; !reflect.DeepEqual(counts, want) {
		t.Errorf("counts = %v, want %v", counts, want)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0+10+10.0001+50+99.9+100+100.5+1e9; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{100, 10})
	h.Observe(50)
	bounds, counts := h.Buckets()
	if !reflect.DeepEqual(bounds, []float64{10, 100}) {
		t.Fatalf("bounds = %v, want sorted", bounds)
	}
	if !reflect.DeepEqual(counts, []int64{0, 1, 0}) {
		t.Errorf("counts = %v, want [0 1 0]", counts)
	}
}

// TestRegistryConcurrentWriters exercises every instrument kind from
// many goroutines; run with -race this is the registry race test.
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("shared").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", []float64{100, 500}).Observe(float64(i))
				if i%100 == 0 {
					r.Snapshot() // concurrent readers
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", []float64{1}).Observe(1)
	if got := r.Counter("x").Value(); got != 0 {
		t.Errorf("nil counter = %d", got)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteText = %q, %v", buf.String(), err)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("ratio").Set(0.25)
	r.Histogram("rtt", []float64{10}).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "counter a.count 1\ncounter b.count 2\ngauge ratio 0.25\nhistogram rtt count=1 sum=3 le_10=1 inf=0\n"
	if buf.String() != want {
		t.Errorf("WriteText =\n%q\nwant\n%q", buf.String(), want)
	}
}

func TestNilTracerIsNoOpAndAllocationFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	allocs := testing.AllocsPerRun(200, func() {
		tr.RequestReceived(1, 2)
		tr.ProbeSpawned(1, tr.NextProbeID(), 0, 3, 1.5)
		tr.CandidatePruned(1, 0, 0, 0, 3, ReasonQoS)
		tr.HoldAcquired(1, 1, 0, 3)
		tr.HoldReleased(1, -1)
		tr.ProbeForwarded(1, 1, 0, 3, 2)
		tr.ProbeReturned(1, 1, 3, 2.5)
		tr.ProbeDropped(1, 1, 0, 3, ReasonShutdown)
		tr.Decided(1, 2, ReasonNoComposition)
		tr.Committed(1, 2)
		tr.RolledBack(1, 2, ReasonAbort)
		tr.SessionReleased(1)
		tr.MsgDropped(1, 2, ReasonFaultInjected)
		tr.MsgDelayed(1, 2, 0.5)
		tr.MsgDuplicated(1, 2)
		tr.NodeCrashed(2)
		tr.NodeRestarted(2)
		tr.HoldSwept(2, 3)
		tr.ComposeRetried(1, 2, 1)
	})
	if allocs != 0 {
		t.Errorf("nil tracer emissions allocate %v bytes/op, want 0", allocs)
	}
	if tr.NextProbeID() != 0 {
		t.Error("nil tracer NextProbeID != 0")
	}
}

// TestJSONLRoundTrip asserts emit -> parse reproduces the exact event
// sequence.
func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	now := time.Duration(0)
	tr.SetClock(func() time.Duration { now += time.Millisecond; return now })

	tr.RequestReceived(7, 4)
	p := tr.NextProbeID()
	tr.ProbeSpawned(7, p, 0, 9, 1.25)
	tr.CandidatePruned(7, 0, p, 1, 11, ReasonRiskRank)
	tr.HoldAcquired(7, p, 0, 9)
	tr.ProbeReturned(7, p, 9, 4.5)
	tr.Decided(7, 4, "")
	tr.Committed(7, 4)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{AtMicros: 1000, Type: EventRequestReceived, Req: 7, Pos: -1, Node: 4},
		{AtMicros: 2000, Type: EventProbeSpawned, Req: 7, Probe: p, Pos: 0, Node: 9, LatencyMs: 1.25},
		{AtMicros: 3000, Type: EventCandidatePruned, Req: 7, Parent: p, Pos: 1, Node: 11, Reason: ReasonRiskRank},
		{AtMicros: 4000, Type: EventHoldAcquired, Req: 7, Probe: p, Pos: 0, Node: 9},
		{AtMicros: 5000, Type: EventProbeReturned, Req: 7, Probe: p, Pos: -1, Node: 9, LatencyMs: 4.5},
		{AtMicros: 6000, Type: EventDecided, Req: 7, Pos: -1, Node: 4},
		{AtMicros: 7000, Type: EventCommitted, Req: 7, Pos: -1, Node: 4},
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", events, want)
	}
}

// TestFaultEventRoundTrip covers the fault-injection and recovery event
// schema: node identity, reasons, and the Count tally survive JSONL.
func TestFaultEventRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tr := New(sink)
	now := time.Duration(0)
	tr.SetClock(func() time.Duration { now += time.Millisecond; return now })

	tr.MsgDropped(3, 5, ReasonNodeDown)
	tr.MsgDelayed(3, 5, 2.5)
	tr.MsgDuplicated(3, 5)
	tr.NodeCrashed(5)
	tr.NodeRestarted(5)
	tr.HoldSwept(5, 4)
	tr.ComposeRetried(3, 1, 2)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{AtMicros: 1000, Type: EventMsgDropped, Req: 3, Pos: -1, Node: 5, Reason: ReasonNodeDown},
		{AtMicros: 2000, Type: EventMsgDelayed, Req: 3, Pos: -1, Node: 5, Reason: ReasonFaultInjected, LatencyMs: 2.5},
		{AtMicros: 3000, Type: EventMsgDuplicated, Req: 3, Pos: -1, Node: 5, Reason: ReasonFaultInjected},
		{AtMicros: 4000, Type: EventNodeCrashed, Pos: -1, Node: 5, Reason: ReasonNodeCrash},
		{AtMicros: 5000, Type: EventNodeRestarted, Pos: -1, Node: 5},
		{AtMicros: 6000, Type: EventHoldSwept, Pos: -1, Node: 5, Count: 4},
		{AtMicros: 7000, Type: EventComposeRetried, Req: 3, Pos: -1, Node: 1, Count: 2},
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", events, want)
	}
	// None of the fault events open or close probe spans.
	for _, e := range events {
		if e.OpensSpan() || e.ClosesSpan() {
			t.Errorf("fault event %s participates in span accounting", e.Type)
		}
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{\"type\":\"probe.spawned\"}\nnot json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestLeakedSpans(t *testing.T) {
	events := []Event{
		{Type: EventProbeSpawned, Probe: 1},
		{Type: EventProbeSpawned, Probe: 2},
		{Type: EventProbeSpawned, Probe: 3},
		{Type: EventProbeSpawned, Probe: 4},
		{Type: EventProbeReturned, Probe: 1},
		{Type: EventCandidatePruned, Probe: 2, Reason: ReasonQoS},
		{Type: EventCandidatePruned, Probe: 0, Reason: ReasonRiskRank}, // pre-spawn prune closes nothing
		{Type: EventProbeForwarded, Probe: 3},
	}
	if got := LeakedSpans(events); !reflect.DeepEqual(got, []int64{4}) {
		t.Errorf("LeakedSpans = %v, want [4]", got)
	}
	events = append(events, Event{Type: EventProbeDropped, Probe: 4, Reason: ReasonShutdown})
	if got := LeakedSpans(events); got != nil {
		t.Errorf("LeakedSpans after drop = %v, want nil", got)
	}
}

// TestTracerConcurrentEmit exercises concurrent emission through one
// sink under -race.
func TestTracerConcurrentEmit(t *testing.T) {
	sink := &MemorySink{}
	tr := New(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := tr.NextProbeID()
				tr.ProbeSpawned(int64(w), p, i, w, 0)
				tr.ProbeReturned(int64(w), p, w, 0)
			}
		}(w)
	}
	wg.Wait()
	if sink.Len() != 8*500*2 {
		t.Errorf("events = %d, want %d", sink.Len(), 8*500*2)
	}
	if leaked := LeakedSpans(sink.Events()); leaked != nil {
		t.Errorf("leaked spans: %v", leaked)
	}
}

// TestPublishExpvar checks the expvar export reflects live registry
// state and that a nil registry publish is a no-op.
func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("expvar.test.hits").Add(3)
	r.PublishExpvar("obs-test-registry")
	(*Registry)(nil).PublishExpvar("obs-test-nil") // must not publish or panic

	v := expvar.Get("obs-test-registry")
	if v == nil {
		t.Fatal("expvar.Get returned nil after PublishExpvar")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not a JSON snapshot: %v", err)
	}
	if snap.Counters["expvar.test.hits"] != 3 {
		t.Errorf("exported counter = %d, want 3", snap.Counters["expvar.test.hits"])
	}

	// The export is live: later updates show up without republishing.
	r.Counter("expvar.test.hits").Inc()
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("re-read snapshot: %v", err)
	}
	if snap.Counters["expvar.test.hits"] != 4 {
		t.Errorf("exported counter after update = %d, want 4", snap.Counters["expvar.test.hits"])
	}
	if expvar.Get("obs-test-nil") != nil {
		t.Error("nil registry published an expvar")
	}
}
