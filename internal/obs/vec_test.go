package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestVecBasics(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("rpc.calls", "method", "node")
	cv.With("find", "3").Add(2)
	cv.With("find", "3").Inc()
	cv.With("close", "3").Inc()
	s := cv.Snapshot()
	if !reflect.DeepEqual(s.LabelNames, []string{"method", "node"}) {
		t.Fatalf("LabelNames = %v", s.LabelNames)
	}
	want := []LabeledValue{
		{Labels: []string{"close", "3"}, Value: 1},
		{Labels: []string{"find", "3"}, Value: 3},
	}
	if !reflect.DeepEqual(s.Values, want) {
		t.Fatalf("Values = %+v, want %+v", s.Values, want)
	}

	gv := r.GaugeVec("session.phi", "session")
	gv.With("9").Set(0.7)
	if g := gv.Get("9"); g == nil || g.Value() != 0.7 {
		t.Fatalf("Get(9) = %v", g)
	}
	if gv.Get("missing") != nil {
		t.Fatal("Get on an absent child created it")
	}
	gv.Delete("9")
	if gv.Get("9") != nil {
		t.Fatal("Delete left the child behind")
	}

	hv := r.HistogramVec("op.latency", "op")
	hv.With("find").Observe(3)
	hv.With("find").Observe(5)
	hs := hv.Snapshot()
	if len(hs.Values) != 1 || hs.Values[0].Histogram.Count != 2 {
		t.Fatalf("histogram vec snapshot = %+v", hs)
	}
}

func TestVecArityMismatch(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("v", "a", "b")
	if c := cv.With("only-one"); c != nil {
		t.Fatal("arity mismatch returned a live child")
	}
	// The no-op child is safe to use.
	cv.With("only-one").Inc()
	if got := r.Snapshot().Counters["obs.registry.label_errors"]; got != 2 {
		t.Fatalf("label_errors = %d, want 2", got)
	}
	// Re-registering the same name with different label names is also a
	// label error and yields the original vector.
	if again := r.CounterVec("v", "different"); again != cv {
		t.Fatal("re-registration returned a different vector")
	}
	if got := r.Snapshot().Counters["obs.registry.label_errors"]; got != 3 {
		t.Fatalf("label_errors after re-register = %d, want 3", got)
	}
}

func TestNilVecsAreNoOps(t *testing.T) {
	var (
		cv *CounterVec
		gv *GaugeVec
		hv *HistogramVec
	)
	cv.With("x").Inc()
	cv.Delete("x")
	gv.With("x").Set(1)
	if gv.Get("x") != nil {
		t.Fatal("nil GaugeVec.Get returned a child")
	}
	hv.With("x").Observe(1)
	if s := cv.Snapshot(); len(s.Values) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if names := gv.LabelNames(); names != nil {
		t.Fatalf("nil LabelNames = %v", names)
	}
	if lv := hv.LabelValues(); lv != nil {
		t.Fatalf("nil LabelValues = %v", lv)
	}

	// A nil registry vends nil vectors.
	var r *Registry
	if v := r.GaugeVec("x", "l"); v != nil {
		t.Fatal("nil registry returned a vector")
	}
}

func TestVecLabelValuesSorted(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("g", "session")
	for _, s := range []string{"30", "1", "2", "10"} {
		gv.With(s).Set(1)
	}
	got := gv.LabelValues()
	want := [][]string{{"1"}, {"10"}, {"2"}, {"30"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LabelValues = %v, want %v", got, want)
	}
}

// TestVecConcurrent is the -race gate for the vector fast path: many
// goroutines creating and bumping overlapping children while snapshots
// run.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "k")
	var wg sync.WaitGroup
	const workers, perWorker = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				cv.With(fmt.Sprint(i % 17)).Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = cv.Snapshot()
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	var total float64
	for _, lv := range cv.Snapshot().Values {
		total += lv.Value
	}
	if total != workers*perWorker {
		t.Fatalf("total = %v, want %d", total, workers*perWorker)
	}
}

// TestVecObserveAllocationFree guards the labeled hot path: bumping an
// existing child must not allocate.
func TestVecObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("h", "k")
	child := hv.With("steady")
	if n := testing.AllocsPerRun(1000, func() { child.Observe(1.5) }); n != 0 {
		t.Errorf("cached child Observe allocates %v per call", n)
	}
	cv := r.CounterVec("c", "k")
	cc := cv.With("steady")
	if n := testing.AllocsPerRun(1000, func() { cc.Inc() }); n != 0 {
		t.Errorf("cached child Inc allocates %v per call", n)
	}
}

func TestRegistryHistogramBoundsConflict(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h", []float64{1, 2, 3})
	b := r.Histogram("h", []float64{1, 2, 3})
	if a != b {
		t.Fatal("same-bounds re-registration returned a different histogram")
	}
	if got := r.HistogramBoundsConflicts(); got != 0 {
		t.Fatalf("conflicts = %d before any mismatch", got)
	}
	// Mismatched bounds return the existing histogram and record the
	// conflict instead of silently mis-bucketing.
	c := r.Histogram("h", []float64{5, 10})
	if c != a {
		t.Fatal("conflicting re-registration returned a different histogram")
	}
	if got := r.HistogramBoundsConflicts(); got != 1 {
		t.Fatalf("conflicts = %d, want 1", got)
	}
	if got := r.Snapshot().Counters["obs.registry.histogram_bounds_conflicts"]; got != 1 {
		t.Fatalf("snapshot conflict counter = %d, want 1", got)
	}
}
