package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// EventType names one probe-lifecycle transition.
type EventType string

// The probe-lifecycle event schema. A probe span opens with
// EventProbeSpawned and closes with exactly one of EventProbeReturned,
// EventProbeForwarded, EventProbeDropped, or EventCandidatePruned
// carrying the same probe ID; every other event is request-scoped.
const (
	// EventRequestReceived marks the deputy accepting a composition
	// request (§3.3 step 1).
	EventRequestReceived EventType = "request.received"
	// EventProbeSpawned marks one probe message sent to a candidate's
	// host; it opens the probe's span.
	EventProbeSpawned EventType = "probe.spawned"
	// EventProbeForwarded closes a probe span whose per-hop checks passed
	// and whose children were fanned out to the next graph position.
	EventProbeForwarded EventType = "probe.forwarded"
	// EventProbeReturned closes the span of a probe that completed the
	// graph and travelled back to the deputy (§3.3 step 3).
	EventProbeReturned EventType = "probe.returned"
	// EventProbeDropped closes the span of a probe lost in transit
	// (mailbox overflow, shutdown) rather than processed.
	EventProbeDropped EventType = "probe.dropped"
	// EventCandidatePruned records a candidate rejected either before a
	// probe was sent (probe ID 0: coarse-state prefilter or ranking cut)
	// or at the candidate's own node (probe ID set, closing that span).
	EventCandidatePruned EventType = "candidate.pruned"
	// EventHoldAcquired records a transient resource allocation placed at
	// a node (§3.3 step 2).
	EventHoldAcquired EventType = "hold.acquired"
	// EventHoldReleased records transient allocations released (losing
	// probes cancelled, or a failed request cleaned up). Node -1 means
	// every node holding for the request.
	EventHoldReleased EventType = "hold.released"
	// EventDecided marks the deputy closing its collection window and
	// picking a winner (reason "selected") or giving up ("no-composition").
	EventDecided EventType = "request.decided"
	// EventCommitted marks the winning composition's confirmation
	// completing (§3.3 step 4).
	EventCommitted EventType = "composition.committed"
	// EventRolledBack marks a commit phase undone (nack, timeout, abort).
	EventRolledBack EventType = "composition.rolledback"
	// EventSessionReleased marks a committed session torn down.
	EventSessionReleased EventType = "session.released"
	// EventSessionMigrated marks a make-before-break re-composition
	// flip: a live session's committed allocation was atomically swapped
	// to the composition reserved by its re-probe. Req carries the new
	// request ID (the session's owner after the flip); Detail names the
	// request ID it migrated from.
	EventSessionMigrated EventType = "session.migrated"
	// EventMsgDropped records a non-probe protocol message lost by fault
	// injection or a node outage (lost probes close their span with
	// EventProbeDropped instead).
	EventMsgDropped EventType = "msg.dropped"
	// EventMsgDelayed records an injected delivery delay.
	EventMsgDelayed EventType = "msg.delayed"
	// EventMsgDuplicated records an injected duplicate delivery.
	EventMsgDuplicated EventType = "msg.duplicated"
	// EventNodeCrashed marks a node entering a scheduled outage; its
	// volatile state (holds, in-flight requests) is lost.
	EventNodeCrashed EventType = "node.crashed"
	// EventNodeRestarted marks a node coming back from an outage.
	EventNodeRestarted EventType = "node.restarted"
	// EventHoldSwept records the periodic sweep expiring transient
	// allocations orphaned past their TTL (holds whose probes were lost).
	EventHoldSwept EventType = "hold.swept"
	// EventComposeRetried marks the deputy-side retry of a compose
	// attempt that failed under transient loss.
	EventComposeRetried EventType = "request.retried"
	// EventAuditViolation marks an invariant violated during a
	// deterministic simulation run (resource conservation, commit-ledger
	// consistency, tombstone idempotency). Emitted by the harness
	// auditor at the step where the invariant first broke, so a recorded
	// trace pinpoints the violating schedule position.
	EventAuditViolation EventType = "audit.violation"
	// EventQoSDrift marks the drift monitor seeing a session's observed
	// gauge cross its Eq. 3 requirement (reason drift-exceeded) or come
	// back under it (drift-recovered). Session, Observed, and Required
	// carry the comparison.
	EventQoSDrift EventType = "qos.drift"
	// EventTraceDropped is synthesized into a subscription's stream in
	// place of events its bounded ring overwrote; Count says how many
	// were lost. It never reaches the tracer's base sink.
	EventTraceDropped EventType = "trace.dropped"
)

// Reason classifies why a candidate was pruned, a probe dropped, or a
// composition rolled back.
type Reason string

// The prune-reason taxonomy.
const (
	// ReasonQoS: accumulated QoS exceeded the requirement (Eq. 6).
	ReasonQoS Reason = "qos"
	// ReasonSecurity: the candidate's security level is below the
	// request's minimum (§6).
	ReasonSecurity Reason = "security"
	// ReasonResources: node resources cannot cover the demand (Eq. 7).
	ReasonResources Reason = "resources"
	// ReasonBandwidth: a predecessor virtual link cannot carry the
	// required bandwidth (Eq. 8).
	ReasonBandwidth Reason = "bandwidth"
	// ReasonRiskRank: cut by the §3.5 ranking on the risk function D
	// (Eq. 9).
	ReasonRiskRank Reason = "risk-rank"
	// ReasonCongestionRank: survived the risk band but cut on the
	// congestion function W (Eq. 10).
	ReasonCongestionRank Reason = "congestion-rank"
	// ReasonRandomRank: cut by RP's uniform random per-hop selection.
	ReasonRandomRank Reason = "random-rank"
	// ReasonHoldNode: the transient node allocation could not be placed.
	ReasonHoldNode Reason = "hold-node"
	// ReasonHoldLink: a transient link allocation could not be placed.
	ReasonHoldLink Reason = "hold-link"
	// ReasonBudget: the per-request probe budget was exhausted.
	ReasonBudget Reason = "budget"
	// ReasonMailbox: the destination node's mailbox was full.
	ReasonMailbox Reason = "mailbox-full"
	// ReasonShutdown: the cluster stopped with the probe still in flight.
	ReasonShutdown Reason = "shutdown"
	// ReasonNoComposition: no qualified composition survived to the
	// deputy's decision.
	ReasonNoComposition Reason = "no-composition"
	// ReasonCommitNack: a node refused to confirm its allocation.
	ReasonCommitNack Reason = "commit-nack"
	// ReasonCommitTimeout: commit acknowledgements were overdue.
	ReasonCommitTimeout Reason = "commit-timeout"
	// ReasonAbort: the caller abandoned a successful outcome.
	ReasonAbort Reason = "abort"
	// ReasonInternal: a malformed message or graph (defensive paths).
	ReasonInternal Reason = "internal"
	// ReasonFaultInjected: the message was lost by fault injection.
	ReasonFaultInjected Reason = "fault-injected"
	// ReasonNodeDown: the destination (or processing) node was inside a
	// scheduled outage.
	ReasonNodeDown Reason = "node-down"
	// ReasonNodeCrash: a node outage wiped the in-flight request state.
	ReasonNodeCrash Reason = "node-crash"
	// ReasonDriftExceeded: a session's observed gauge crossed its Eq. 3
	// requirement (qos.drift events).
	ReasonDriftExceeded Reason = "drift-exceeded"
	// ReasonDriftRecovered: a previously drifting session came back
	// under its requirement (qos.drift events).
	ReasonDriftRecovered Reason = "drift-recovered"
)

// Event is one structured probe-lifecycle record.
type Event struct {
	// AtMicros is the emission time in microseconds on the tracer's
	// clock (virtual time under the simulator, wall time in dist).
	AtMicros int64 `json:"at"`
	// Type is the lifecycle transition.
	Type EventType `json:"type"`
	// Req is the request ID every event is scoped to.
	Req int64 `json:"req"`
	// Probe is the probe span ID; 0 for request-scoped events and for
	// prunes that happened before a probe was sent.
	Probe int64 `json:"probe,omitempty"`
	// Parent is the span ID of the probe whose hop produced this event,
	// for events that do not themselves close that span: a ranking or
	// random-policy cut in per-hop candidate selection carries the
	// selecting probe's span here (0 at the walk root). Unlike Probe,
	// a non-zero Parent never closes a span.
	Parent int64 `json:"parent,omitempty"`
	// Pos is the function-graph position being probed; -1 when not
	// applicable.
	Pos int `json:"pos"`
	// Node is the overlay node the event happened at; -1 when not
	// applicable (or "all nodes" for hold.released).
	Node int `json:"node"`
	// Reason qualifies prunes, drops, decisions, and rollbacks.
	Reason Reason `json:"reason,omitempty"`
	// Children is the fan-out size on probe.forwarded events.
	Children int `json:"children,omitempty"`
	// LatencyMs is the probe's accumulated travel time in milliseconds
	// on spawn/return events.
	LatencyMs float64 `json:"latencyMs,omitempty"`
	// Count is a small event-specific tally: holds expired on
	// hold.swept, the attempt number on request.retried.
	Count int `json:"count,omitempty"`
	// Detail carries free-form context on audit.violation events: which
	// invariant broke and the offending values.
	Detail string `json:"detail,omitempty"`
	// Session names the committed session a qos.drift event is about.
	Session string `json:"session,omitempty"`
	// Observed is the session's observed gauge value on qos.drift events.
	Observed float64 `json:"observed,omitempty"`
	// Required is the session's Eq. 3 requirement on qos.drift events.
	Required float64 `json:"required,omitempty"`
}

// OpensSpan reports whether the event opens a probe span.
func (e Event) OpensSpan() bool { return e.Type == EventProbeSpawned }

// ClosesSpan reports whether the event closes a probe span.
func (e Event) ClosesSpan() bool {
	switch e.Type {
	case EventProbeReturned, EventProbeForwarded, EventProbeDropped:
		return true
	case EventCandidatePruned:
		return e.Probe != 0
	}
	return false
}

// LeakedSpans returns the IDs of probe spans that were opened but never
// closed, in first-opened order — the invariant checked by the dist
// integration tests ("no probe is silently lost").
func LeakedSpans(events []Event) []int64 {
	closed := make(map[int64]bool)
	for _, e := range events {
		if e.ClosesSpan() {
			closed[e.Probe] = true
		}
	}
	var leaked []int64
	for _, e := range events {
		if e.OpensSpan() && !closed[e.Probe] {
			leaked = append(leaked, e.Probe)
		}
	}
	return leaked
}

// Sink consumes emitted events. Implementations must be safe for
// concurrent Emit calls.
type Sink interface {
	Emit(Event)
}

// Tracer emits probe-lifecycle events to a sink. The zero of usefulness
// is the nil *Tracer: every method is a nil-safe no-op, so call sites
// need no conditionals and the disabled hot path costs one pointer check.
type Tracer struct {
	sink     Sink
	start    time.Time
	now      func() time.Duration
	probeSeq int64 // atomic

	// subs is the copy-on-write live-subscription list (see Subscribe):
	// emit loads it with one atomic read, mutation happens under subsMu.
	subs   atomic.Pointer[[]*Subscription]
	subsMu sync.Mutex
}

// New wires a tracer to a sink, stamping events with wall-clock time
// since creation. Use SetClock to substitute virtual time.
func New(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now()} //acp:nondeterminism-ok wall-clock base is the documented default; deterministic harnesses substitute virtual time via SetClock
}

// NewLive returns a tracer with no base sink, for consumers that attach
// through Subscribe (the /trace endpoint, the drift monitor's event
// feed). Until the first subscriber arrives the tracer reports
// disabled and emission costs two atomic loads.
func NewLive() *Tracer {
	return &Tracer{start: time.Now()} //acp:nondeterminism-ok wall-clock base is the documented default; deterministic harnesses substitute virtual time via SetClock
}

// SetClock replaces the tracer's timestamp source (e.g. the simulator's
// virtual clock). Call before emitting from multiple goroutines.
func (t *Tracer) SetClock(now func() time.Duration) {
	if t != nil {
		t.now = now
	}
}

// Subscribers returns the number of live subscriptions attached to the
// tracer; 0 on nil. The /trace endpoint's leak test asserts this
// returns to zero after its clients disconnect.
func (t *Tracer) Subscribers() int {
	if t == nil {
		return 0
	}
	list := t.subs.Load()
	if list == nil {
		return 0
	}
	return len(*list)
}

// Enabled reports whether anything consumes emitted events — a base
// sink or at least one live subscription. Call sites use it to skip
// building emission arguments that would need extra work.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	if t.sink != nil {
		return true
	}
	list := t.subs.Load()
	return list != nil && len(*list) > 0
}

func (t *Tracer) emit(e Event) {
	if t == nil {
		return
	}
	list := t.subs.Load()
	fanout := list != nil && len(*list) > 0
	if t.sink == nil && !fanout {
		return
	}
	if t.now != nil {
		e.AtMicros = t.now().Microseconds()
	} else {
		e.AtMicros = time.Since(t.start).Microseconds() //acp:nondeterminism-ok fallback for live (non-replayed) tracers only; replayed runs install t.now via SetClock
	}
	if t.sink != nil {
		t.sink.Emit(e)
	}
	if fanout {
		for _, s := range *list {
			s.push(e)
		}
	}
}

// QoSDrift records the drift monitor's verdict for one session: its
// observed gauge crossed (drift-exceeded) or re-satisfied
// (drift-recovered) the Eq. 3 requirement.
func (t *Tracer) QoSDrift(session string, observed, required float64, reason Reason) {
	t.emit(Event{Type: EventQoSDrift, Pos: -1, Node: -1, Session: session, Observed: observed, Required: required, Reason: reason})
}

// NextProbeID allocates a tracer-unique probe span ID; 0 (the "no span"
// ID) when the tracer is nil.
func (t *Tracer) NextProbeID() int64 {
	if t == nil {
		return 0
	}
	return atomic.AddInt64(&t.probeSeq, 1)
}

// RequestReceived records the deputy accepting a request.
func (t *Tracer) RequestReceived(req int64, node int) {
	t.emit(Event{Type: EventRequestReceived, Req: req, Pos: -1, Node: node})
}

// ProbeSpawned opens a probe span: one probe message sent toward the
// candidate for graph position pos hosted at node.
func (t *Tracer) ProbeSpawned(req, probe int64, pos, node int, latencyMs float64) {
	t.emit(Event{Type: EventProbeSpawned, Req: req, Probe: probe, Pos: pos, Node: node, LatencyMs: latencyMs})
}

// ProbeForwarded closes a probe span that passed its per-hop checks and
// fanned out children child probes for the next position.
func (t *Tracer) ProbeForwarded(req, probe int64, pos, node, children int) {
	t.emit(Event{Type: EventProbeForwarded, Req: req, Probe: probe, Pos: pos, Node: node, Children: children})
}

// ProbeReturned closes the span of a probe whose complete composition
// reached the deputy, with its full round-trip travel time.
func (t *Tracer) ProbeReturned(req, probe int64, node int, latencyMs float64) {
	t.emit(Event{Type: EventProbeReturned, Req: req, Probe: probe, Pos: -1, Node: node, LatencyMs: latencyMs})
}

// ProbeDropped closes the span of a probe lost in transit.
func (t *Tracer) ProbeDropped(req, probe int64, pos, node int, reason Reason) {
	t.emit(Event{Type: EventProbeDropped, Req: req, Probe: probe, Pos: pos, Node: node, Reason: reason})
}

// CandidatePruned records a rejected candidate. probe is 0 when the
// prune happened before any probe was sent (coarse prefilter or ranking
// cut); otherwise it closes that probe's span. parent attributes the
// prune to the span of the probe performing the hop — the selecting
// parent for pre-send cuts — so summaries can tell a root-level cut from
// one deep in the walk; 0 when the hop has no live span.
func (t *Tracer) CandidatePruned(req, probe, parent int64, pos, node int, reason Reason) {
	t.emit(Event{Type: EventCandidatePruned, Req: req, Probe: probe, Parent: parent, Pos: pos, Node: node, Reason: reason})
}

// HoldAcquired records a transient node allocation placed for (req, pos).
func (t *Tracer) HoldAcquired(req, probe int64, pos, node int) {
	t.emit(Event{Type: EventHoldAcquired, Req: req, Probe: probe, Pos: pos, Node: node})
}

// HoldReleased records the request's transient allocations released at
// node, or everywhere when node is -1.
func (t *Tracer) HoldReleased(req int64, node int) {
	t.emit(Event{Type: EventHoldReleased, Req: req, Pos: -1, Node: node})
}

// Decided records the deputy's decision for the request: reason
// ReasonNoComposition on failure, empty on success.
func (t *Tracer) Decided(req int64, node int, reason Reason) {
	t.emit(Event{Type: EventDecided, Req: req, Pos: -1, Node: node, Reason: reason})
}

// Committed records the composition's confirmation completing.
func (t *Tracer) Committed(req int64, node int) {
	t.emit(Event{Type: EventCommitted, Req: req, Pos: -1, Node: node})
}

// RolledBack records the commit phase (or a held outcome) undone.
func (t *Tracer) RolledBack(req int64, node int, reason Reason) {
	t.emit(Event{Type: EventRolledBack, Req: req, Pos: -1, Node: node, Reason: reason})
}

// SessionMigrated records a make-before-break re-composition flip from
// the session owned by oldReq to the composition probed under newReq.
func (t *Tracer) SessionMigrated(oldReq, newReq int64, node int) {
	t.emit(Event{Type: EventSessionMigrated, Req: newReq, Pos: -1, Node: node, Detail: fmt.Sprintf("from-request=%d", oldReq)})
}

// SessionReleased records a committed session torn down.
func (t *Tracer) SessionReleased(req int64) {
	t.emit(Event{Type: EventSessionReleased, Req: req, Pos: -1, Node: -1})
}

// MsgDropped records a non-probe protocol message lost in transit to
// node (fault injection or outage). Lost probes are recorded with
// ProbeDropped instead so their span closes.
func (t *Tracer) MsgDropped(req int64, node int, reason Reason) {
	t.emit(Event{Type: EventMsgDropped, Req: req, Pos: -1, Node: node, Reason: reason})
}

// MsgDelayed records an injected delivery delay toward node.
func (t *Tracer) MsgDelayed(req int64, node int, delayMs float64) {
	t.emit(Event{Type: EventMsgDelayed, Req: req, Pos: -1, Node: node, Reason: ReasonFaultInjected, LatencyMs: delayMs})
}

// MsgDuplicated records an injected duplicate delivery toward node.
func (t *Tracer) MsgDuplicated(req int64, node int) {
	t.emit(Event{Type: EventMsgDuplicated, Req: req, Pos: -1, Node: node, Reason: ReasonFaultInjected})
}

// NodeCrashed marks node entering an outage, losing its volatile state.
func (t *Tracer) NodeCrashed(node int) {
	t.emit(Event{Type: EventNodeCrashed, Pos: -1, Node: node, Reason: ReasonNodeCrash})
}

// NodeRestarted marks node coming back from an outage.
func (t *Tracer) NodeRestarted(node int) {
	t.emit(Event{Type: EventNodeRestarted, Pos: -1, Node: node})
}

// HoldSwept records the periodic sweep at node expiring count orphaned
// transient allocations past their TTL.
func (t *Tracer) HoldSwept(node, count int) {
	t.emit(Event{Type: EventHoldSwept, Pos: -1, Node: node, Count: count})
}

// ComposeRetried records the deputy retrying a failed compose attempt;
// attempt is 1-based and req is the ID of the attempt that failed.
func (t *Tracer) ComposeRetried(req int64, node, attempt int) {
	t.emit(Event{Type: EventComposeRetried, Req: req, Pos: -1, Node: node, Count: attempt})
}

// AuditViolation records an invariant broken at node (or -1 for a
// cluster-wide invariant), with free-form detail naming the invariant
// and the offending values. Emitted by the simulation harness auditor.
func (t *Tracer) AuditViolation(node int, detail string) {
	t.emit(Event{Type: EventAuditViolation, Pos: -1, Node: node, Detail: detail})
}

// MemorySink collects events in memory for tests and in-process
// analysis.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends one event.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Len returns the number of collected events.
func (s *MemorySink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events)
}

// JSONLSink streams events as JSON lines. Emissions are serialized by a
// mutex; the first write error is latched and surfaced by Flush.
type JSONLSink struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	count int
	err   error
}

// NewJSONLSink wraps w for event streaming; call Flush when done.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one event as a JSON line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if s.err = s.enc.Encode(e); s.err == nil {
		s.count++
	}
}

// Count returns how many events were successfully encoded.
func (s *JSONLSink) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Flush drains buffered output and reports the first error encountered.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	return s.bw.Flush()
}

// ReadEvents parses a JSONL event stream back into its event sequence.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
	return out, nil
}
