package obs

import (
	"testing"
	"time"

	"repro/internal/harness/clock"
)

// driftFixture wires a registry-backed monitor over one observed /
// required gauge pair.
func driftFixture(t *testing.T, tol float64) (*Registry, *GaugeVec, *GaugeVec, *DriftMonitor, *[]DriftEvent) {
	t.Helper()
	r := NewRegistry()
	observed := r.GaugeVec("session.qos.observed", "session")
	required := r.GaugeVec("session.qos.required", "session")
	var got []DriftEvent
	m := NewDriftMonitor(DriftConfig{
		Observed:  observed,
		Required:  required,
		Tolerance: tol,
		Registry:  r,
		OnDrift:   func(ev DriftEvent) { got = append(got, ev) },
	})
	return r, observed, required, m, &got
}

func TestDriftMonitorTransitions(t *testing.T) {
	r, observed, required, m, got := driftFixture(t, 0)

	observed.With("7").Set(0.8)
	required.With("7").Set(1)
	if evs := m.Tick(); len(evs) != 0 {
		t.Fatalf("healthy session produced events: %+v", evs)
	}

	// Cross into violation: exactly one exceeded event, level-triggered.
	observed.With("7").Set(1.5)
	evs := m.Tick()
	if len(evs) != 1 || !evs[0].Exceeded || evs[0].Session != "7" {
		t.Fatalf("expected one exceeded event for session 7, got %+v", evs)
	}
	if evs[0].Observed != 1.5 || evs[0].Required != 1 {
		t.Fatalf("event values = %+v", evs[0])
	}
	if evs := m.Tick(); len(evs) != 0 {
		t.Fatalf("still-violating session re-reported: %+v", evs)
	}

	// Recover: one recovered event.
	observed.With("7").Set(0.9)
	evs = m.Tick()
	if len(evs) != 1 || evs[0].Exceeded {
		t.Fatalf("expected one recovered event, got %+v", evs)
	}

	// Counters and callback agree with the transitions seen.
	s := r.Snapshot()
	if c := s.Counters["obs.drift.exceeded_total"]; c != 1 {
		t.Fatalf("exceeded_total = %d, want 1", c)
	}
	if c := s.Counters["obs.drift.recovered_total"]; c != 1 {
		t.Fatalf("recovered_total = %d, want 1", c)
	}
	if g := s.Gauges["obs.drift.sessions_exceeded"]; g != 0 {
		t.Fatalf("sessions_exceeded = %v, want 0", g)
	}
	if len(*got) != 2 {
		t.Fatalf("OnDrift saw %d events, want 2", len(*got))
	}
}

func TestDriftMonitorToleranceAndSkips(t *testing.T) {
	_, observed, required, m, _ := driftFixture(t, 0.25)

	// Within tolerance headroom: 1.2 <= 1 * 1.25.
	observed.With("a").Set(1.2)
	required.With("a").Set(1)
	if evs := m.Tick(); len(evs) != 0 {
		t.Fatalf("within-tolerance session drifted: %+v", evs)
	}
	observed.With("a").Set(1.3)
	if evs := m.Tick(); len(evs) != 1 || !evs[0].Exceeded {
		t.Fatalf("beyond-tolerance session missed: %+v", evs)
	}

	// A session with no requirement child is skipped entirely.
	observed.With("orphan").Set(99)
	if evs := m.Tick(); len(evs) != 0 {
		t.Fatalf("requirement-less session drifted: %+v", evs)
	}
}

func TestDriftMonitorForgetsReleasedSessions(t *testing.T) {
	r, observed, required, m, _ := driftFixture(t, 0)

	observed.With("s1").Set(2)
	required.With("s1").Set(1)
	if evs := m.Tick(); len(evs) != 1 {
		t.Fatalf("expected drift, got %+v", evs)
	}

	// Releasing the session removes its gauges; the monitor forgets it
	// without a phantom recovery event.
	observed.Delete("s1")
	required.Delete("s1")
	if evs := m.Tick(); len(evs) != 0 {
		t.Fatalf("released session produced events: %+v", evs)
	}
	if g := r.Snapshot().Gauges["obs.drift.sessions_exceeded"]; g != 0 {
		t.Fatalf("sessions_exceeded = %v after release, want 0", g)
	}

	// If the same session name comes back violating it reports anew.
	observed.With("s1").Set(2)
	required.With("s1").Set(1)
	if evs := m.Tick(); len(evs) != 1 || !evs[0].Exceeded {
		t.Fatalf("re-registered session missed: %+v", evs)
	}
}

// TestDriftMonitorForgottenAccounting pins the counter identity
// exceeded_total == recovered_total + forgotten_total +
// sessions_exceeded: a session released while in violation is counted
// as forgotten instead of silently diverging the books.
func TestDriftMonitorForgottenAccounting(t *testing.T) {
	r, observed, required, m, _ := driftFixture(t, 0)

	// s1 drifts and is released mid-violation; s2 drifts and recovers;
	// s3 is released while healthy (no forgotten bump).
	for _, s := range []string{"s1", "s2", "s3"} {
		observed.With(s).Set(0.5)
		required.With(s).Set(1)
	}
	m.Tick()
	observed.With("s1").Set(2)
	observed.With("s2").Set(2)
	if evs := m.Tick(); len(evs) != 2 {
		t.Fatalf("expected two exceeded events, got %+v", evs)
	}
	observed.Delete("s1")
	required.Delete("s1")
	observed.Delete("s3")
	required.Delete("s3")
	observed.With("s2").Set(0.5)
	if evs := m.Tick(); len(evs) != 1 || evs[0].Exceeded {
		t.Fatalf("expected one recovery, got %+v", evs)
	}

	s := r.Snapshot()
	exceeded := s.Counters["obs.drift.exceeded_total"]
	recovered := s.Counters["obs.drift.recovered_total"]
	forgotten := s.Counters["obs.drift.forgotten_total"]
	inViolation := int64(s.Gauges["obs.drift.sessions_exceeded"])
	if exceeded != 2 || recovered != 1 || forgotten != 1 || inViolation != 0 {
		t.Fatalf("exceeded=%d recovered=%d forgotten=%d in_violation=%d",
			exceeded, recovered, forgotten, inViolation)
	}
	if exceeded != recovered+forgotten+inViolation {
		t.Fatalf("accounting identity broken: %d != %d + %d + %d",
			exceeded, recovered, forgotten, inViolation)
	}
}

// TestDriftMonitorVirtualClock drives Start's tick chain on the
// harness Virtual clock: ticks land synchronously at exact simulated
// instants, so the whole schedule is deterministic.
func TestDriftMonitorVirtualClock(t *testing.T) {
	r := NewRegistry()
	observed := r.GaugeVec("session.qos.observed", "session")
	required := r.GaugeVec("session.qos.required", "session")
	tr := NewLive()
	sub := tr.Subscribe(16)
	defer sub.Close()

	vc := clock.NewVirtual()
	m := NewDriftMonitor(DriftConfig{
		Observed: observed,
		Required: required,
		Period:   time.Second,
		Clock:    vc,
		Tracer:   tr,
		Registry: r,
	})
	m.Start()
	defer m.Stop()

	observed.With("9").Set(3)
	required.With("9").Set(1)

	vc.Advance(2500 * time.Millisecond) // ticks at 1s and 2s
	if c := r.Snapshot().Counters["obs.drift.ticks"]; c != 2 {
		t.Fatalf("ticks = %d after 2.5s, want 2", c)
	}

	evs := sub.Drain()
	if len(evs) != 1 || evs[0].Type != EventQoSDrift || evs[0].Reason != ReasonDriftExceeded {
		t.Fatalf("trace events = %+v, want one qos.drift exceeded", evs)
	}
	if evs[0].Session != "9" || evs[0].Observed != 3 || evs[0].Required != 1 {
		t.Fatalf("qos.drift payload = %+v", evs[0])
	}

	observed.With("9").Set(0.5)
	vc.Advance(time.Second)
	evs = sub.Drain()
	if len(evs) != 1 || evs[0].Reason != ReasonDriftRecovered {
		t.Fatalf("trace events = %+v, want one qos.drift recovered", evs)
	}

	m.Stop()
	vc.Advance(10 * time.Second)
	if c := r.Snapshot().Counters["obs.drift.ticks"]; c != 3 {
		t.Fatalf("ticks = %d after Stop, want 3", c)
	}
}

func TestDriftMonitorNilSafe(t *testing.T) {
	var m *DriftMonitor
	if evs := m.Tick(); evs != nil {
		t.Fatalf("nil monitor ticked: %+v", evs)
	}
	m.Start()
	m.Stop()

	// A monitor with no gauges configured is inert too.
	inert := NewDriftMonitor(DriftConfig{})
	if evs := inert.Tick(); evs != nil {
		t.Fatalf("unconfigured monitor ticked: %+v", evs)
	}
	inert.Start()
	inert.Stop()
}
