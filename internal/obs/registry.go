// Package obs is the zero-dependency observability layer: a
// concurrency-safe instrument registry (counters, gauges, fixed-bucket
// histograms, auto-ranging quantile histograms, and labeled instrument
// vectors), a probe-lifecycle tracer emitting structured span events
// with an in-process subscription fanout, an HTTP scrape surface
// (Serve), and a QoS drift monitor comparing per-session observed
// gauges against their Eq. 3 requirements.
//
// Both halves are nil-safe: a nil *Registry hands out nil instruments,
// and every operation on a nil instrument or nil *Tracer is a no-op
// costing one pointer check. Hot paths therefore thread instruments
// unconditionally and pay nothing when observability is disabled.
//
// The registry's instruments are backed by sync/atomic operations so a
// single instance can be shared across the goroutine-per-node
// dist.Cluster without locks on the update path.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and greater than the previous
// bound); one extra overflow bucket catches everything beyond the last
// bound. All updates are atomic.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// Count returns the total number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the per-bucket counts; the counts
// slice has one extra trailing overflow entry.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Registry names and hands out instruments. Get-or-create lookups take a
// read-write mutex, so resolve instruments once and hold the pointers on
// hot paths; the instruments themselves are lock-free.
type Registry struct {
	mu sync.RWMutex
	// counters indexes counters by name. guarded by mu
	counters map[string]*Counter
	// gauges indexes gauges by name. guarded by mu
	gauges map[string]*Gauge
	// histograms indexes histograms by name. guarded by mu
	histograms map[string]*Histogram
	// quantiles indexes quantile histograms by name. guarded by mu
	quantiles map[string]*QHistogram
	// counterVecs indexes counter vectors by name. guarded by mu
	counterVecs map[string]*CounterVec
	// gaugeVecs indexes gauge vectors by name. guarded by mu
	gaugeVecs map[string]*GaugeVec
	// histogramVecs indexes histogram vectors by name. guarded by mu
	histogramVecs map[string]*HistogramVec

	// boundsConflicts counts Histogram calls whose bounds disagreed with
	// the bounds the named histogram was created with. Surfaced in
	// snapshots as the counter "obs.registry.histogram_bounds_conflicts"
	// once nonzero.
	boundsConflicts Counter
	// labelErrors counts vector lookups with the wrong label arity and
	// vector re-registrations with different label names. Surfaced as
	// the counter "obs.registry.label_errors" once nonzero.
	labelErrors Counter
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		quantiles:     make(map[string]*QHistogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use. Later calls must pass the
// same bounds (in any order): the first registration wins, but a
// mismatch is recorded — not silently ignored — in the
// "obs.registry.histogram_bounds_conflicts" counter (see
// HistogramBoundsConflicts), so a dashboard showing misleading buckets
// has a tell. A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		r.checkBounds(h, bounds)
		return h
	}
	r.mu.Lock()
	if h = r.histograms[name]; h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
		r.mu.Unlock()
		return h
	}
	r.mu.Unlock()
	r.checkBounds(h, bounds)
	return h
}

// checkBounds bumps the conflict counter when bounds disagree with the
// histogram's registered bounds. The comparison sorts a copy, matching
// what registration does.
func (r *Registry) checkBounds(h *Histogram, bounds []float64) {
	if len(bounds) != len(h.bounds) {
		r.boundsConflicts.Inc()
		return
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	for i := range b {
		if b[i] != h.bounds[i] {
			r.boundsConflicts.Inc()
			return
		}
	}
}

// HistogramBoundsConflicts returns how many Histogram lookups passed
// bounds that disagreed with the registered histogram's bounds; 0 on a
// nil registry.
func (r *Registry) HistogramBoundsConflicts() int64 {
	if r == nil {
		return 0
	}
	return r.boundsConflicts.Value()
}

// LabelErrors returns how many vector operations used a wrong label
// arity or re-registered a vector with different label names; 0 on a
// nil registry.
func (r *Registry) LabelErrors() int64 {
	if r == nil {
		return 0
	}
	return r.labelErrors.Value()
}

// QHistogram returns the named quantile histogram, creating it on first
// use. A nil registry returns a nil (no-op) histogram.
func (r *Registry) QHistogram(name string) *QHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.quantiles[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.quantiles[name]; h == nil {
		h = NewQHistogram()
		r.quantiles[name] = h
	}
	return h
}

// checkLabels bumps the label-error counter when a vector is looked up
// again with different label names.
func (r *Registry) checkLabels(existing, labels []string) {
	if len(existing) != len(labels) {
		r.labelErrors.Inc()
		return
	}
	for i := range labels {
		if labels[i] != existing[i] {
			r.labelErrors.Inc()
			return
		}
	}
}

// CounterVec returns the named counter vector with the given label
// names, creating it on first use. The first registration's label names
// win; a later call with different names gets the existing vector and
// bumps the "obs.registry.label_errors" counter. A nil registry returns
// a nil (no-op) vector.
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.counterVecs[name]; v == nil {
			v = &CounterVec{
				vecCore: vecCore{
					labels:   append([]string(nil), labelNames...),
					children: make(map[string][]string),
					onArity:  r.labelErrors.Inc,
				},
				byKey: make(map[string]*Counter),
			}
			r.counterVecs[name] = v
			r.mu.Unlock()
			return v
		}
		r.mu.Unlock()
	}
	r.checkLabels(v.labels, labelNames)
	return v
}

// GaugeVec returns the named gauge vector with the given label names,
// creating it on first use. Registration semantics match CounterVec.
// A nil registry returns a nil (no-op) vector.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.gaugeVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.gaugeVecs[name]; v == nil {
			v = &GaugeVec{
				vecCore: vecCore{
					labels:   append([]string(nil), labelNames...),
					children: make(map[string][]string),
					onArity:  r.labelErrors.Inc,
				},
				byKey: make(map[string]*Gauge),
			}
			r.gaugeVecs[name] = v
			r.mu.Unlock()
			return v
		}
		r.mu.Unlock()
	}
	r.checkLabels(v.labels, labelNames)
	return v
}

// HistogramVec returns the named quantile-histogram vector with the
// given label names, creating it on first use. Registration semantics
// match CounterVec. A nil registry returns a nil (no-op) vector.
func (r *Registry) HistogramVec(name string, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.histogramVecs[name]
	r.mu.RUnlock()
	if v == nil {
		r.mu.Lock()
		if v = r.histogramVecs[name]; v == nil {
			v = &HistogramVec{
				vecCore: vecCore{
					labels:   append([]string(nil), labelNames...),
					children: make(map[string][]string),
					onArity:  r.labelErrors.Inc,
				},
				byKey: make(map[string]*QHistogram),
			}
			r.histogramVecs[name] = v
			r.mu.Unlock()
			return v
		}
		r.mu.Unlock()
	}
	r.checkLabels(v.labels, labelNames)
	return v
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument. Concurrent
// updates during the copy yield per-instrument (not cross-instrument)
// consistency, which is what monitoring needs.
type Snapshot struct {
	// AtUnixNanos is the scrape instant on the serving process's clock,
	// stamped by the /metrics.json handler (zero when the snapshot was
	// taken directly from a Registry). Consumers computing counter rates
	// must difference this server-reported timestamp between scrapes
	// rather than their own poll clock: a slow or jittery poll otherwise
	// distorts every rate it renders.
	AtUnixNanos int64 `json:"atUnixNanos,omitempty"`

	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// The vector and quantile maps are omitted from JSON while empty so
	// snapshots from registries predating them are byte-identical.
	Quantiles     map[string]QHistogramSnapshot   `json:"quantiles,omitempty"`
	CounterVecs   map[string]VecSnapshot          `json:"counterVecs,omitempty"`
	GaugeVecs     map[string]VecSnapshot          `json:"gaugeVecs,omitempty"`
	HistogramVecs map[string]HistogramVecSnapshot `json:"histogramVecs,omitempty"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:      make(map[string]int64),
		Gauges:        make(map[string]float64),
		Histograms:    make(map[string]HistogramSnapshot),
		Quantiles:     make(map[string]QHistogramSnapshot),
		CounterVecs:   make(map[string]VecSnapshot),
		GaugeVecs:     make(map[string]VecSnapshot),
		HistogramVecs: make(map[string]HistogramVecSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		bounds, counts := h.Buckets()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: bounds, Counts: counts, Count: h.Count(), Sum: h.Sum(),
		}
	}
	for name, q := range r.quantiles {
		s.Quantiles[name] = q.Snapshot()
	}
	for name, v := range r.counterVecs {
		s.CounterVecs[name] = v.Snapshot()
	}
	for name, v := range r.gaugeVecs {
		s.GaugeVecs[name] = v.Snapshot()
	}
	for name, v := range r.histogramVecs {
		s.HistogramVecs[name] = v.Snapshot()
	}
	// Self-monitoring counters appear once they have something to say,
	// keeping snapshots from clean registries unchanged.
	if n := r.boundsConflicts.Value(); n > 0 {
		s.Counters["obs.registry.histogram_bounds_conflicts"] = n
	}
	if n := r.labelErrors.Value(); n > 0 {
		s.Counters["obs.registry.label_errors"] = n
	}
	return s
}

// WriteText renders the snapshot in a stable expvar-style line format:
// one "kind name value..." line per instrument, sorted within each kind.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g", name, h.Count, h.Sum); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if _, err := fmt.Fprintf(w, " le_%g=%d", b, h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " inf=%d\n", h.Counts[len(h.Counts)-1]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Quantiles) {
		q := s.Quantiles[name]
		if _, err := fmt.Fprintf(w, "quantile %s count=%d sum=%g min=%g max=%g p50=%g p90=%g p99=%g p999=%g\n",
			name, q.Count, q.Sum, q.Min, q.Max, q.P50, q.P90, q.P99, q.P999); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		v := s.CounterVecs[name]
		for _, lv := range v.Values {
			if _, err := fmt.Fprintf(w, "countervec %s%s %d\n",
				name, labelText(v.LabelNames, lv.Labels), int64(lv.Value)); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		v := s.GaugeVecs[name]
		for _, lv := range v.Values {
			if _, err := fmt.Fprintf(w, "gaugevec %s%s %g\n",
				name, labelText(v.LabelNames, lv.Labels), lv.Value); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		v := s.HistogramVecs[name]
		for _, lh := range v.Values {
			q := lh.Histogram
			if _, err := fmt.Fprintf(w, "histogramvec %s%s count=%d p50=%g p99=%g p999=%g\n",
				name, labelText(v.LabelNames, lh.Labels), q.Count, q.P50, q.P99, q.P999); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelText renders a label tuple as {k1="v1",k2="v2"}.
func labelText(names, values []string) string {
	out := "{"
	for i, v := range values {
		if i > 0 {
			out += ","
		}
		name := "?"
		if i < len(names) {
			name = names[i]
		}
		out += fmt.Sprintf("%s=%q", name, v)
	}
	return out + "}"
}

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (and thus on /debug/vars when an HTTP server is up).
// Publishing an already-used name panics (expvar's contract), so call
// once per registry per process. No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
