// Package obs is the zero-dependency observability layer: a
// concurrency-safe instrument registry (counters, gauges, fixed-bucket
// histograms) and a probe-lifecycle tracer emitting structured span
// events.
//
// Both halves are nil-safe: a nil *Registry hands out nil instruments,
// and every operation on a nil instrument or nil *Tracer is a no-op
// costing one pointer check. Hot paths therefore thread instruments
// unconditionally and pay nothing when observability is disabled.
//
// The registry's instruments are backed by sync/atomic operations so a
// single instance can be shared across the goroutine-per-node
// dist.Cluster without locks on the update path.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic event counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value instrument.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the gauge's current value. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= Bounds[i] (and greater than the previous
// bound); one extra overflow bucket catches everything beyond the last
// bound. All updates are atomic.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// Count returns the total number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the upper bounds and the per-bucket counts; the counts
// slice has one extra trailing overflow entry.
func (h *Histogram) Buckets() (bounds []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Registry names and hands out instruments. Get-or-create lookups take a
// read-write mutex, so resolve instruments once and hold the pointers on
// hot paths; the instruments themselves are lock-free.
type Registry struct {
	mu sync.RWMutex
	// counters indexes counters by name. guarded by mu
	counters map[string]*Counter
	// gauges indexes gauges by name. guarded by mu
	gauges map[string]*Gauge
	// histograms indexes histograms by name. guarded by mu
	histograms map[string]*Histogram
}

// NewRegistry returns an empty instrument registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use; later calls ignore bounds.
// A nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1, last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of every instrument. Concurrent
// updates during the copy yield per-instrument (not cross-instrument)
// consistency, which is what monitoring needs.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		bounds, counts := h.Buckets()
		s.Histograms[name] = HistogramSnapshot{
			Bounds: bounds, Counts: counts, Count: h.Count(), Sum: h.Sum(),
		}
	}
	return s
}

// WriteText renders the snapshot in a stable expvar-style line format:
// one "kind name value..." line per instrument, sorted within each kind.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%g", name, h.Count, h.Sum); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if _, err := fmt.Fprintf(w, " le_%g=%d", b, h.Counts[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " inf=%d\n", h.Counts[len(h.Counts)-1]); err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar exposes the registry's live snapshot under the given
// expvar name (and thus on /debug/vars when an HTTP server is up).
// Publishing an already-used name panics (expvar's contract), so call
// once per registry per process. No-op on a nil registry.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
