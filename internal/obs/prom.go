package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// snapshot. Instrument names are sanitized to the Prometheus charset
// (every run of invalid characters becomes one underscore, so
// "core.walk.rtt_ms" scrapes as "core_walk_rtt_ms"). Fixed-bucket
// histograms render as Prometheus histograms with cumulative le
// buckets; quantile histograms and histogram vectors render as
// summaries carrying the standard p50/p90/p99/p999 quantile series
// beside _sum and _count.

// promName sanitizes an instrument name to [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else if b.Len() == 0 || b.String()[b.Len()-1] != '_' {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promLabels renders {k1="v1",...} from parallel name/value slices,
// plus an optional extra pair; empty when there are no labels at all.
func promLabels(names, values []string, extraName, extraValue string) string {
	var parts []string
	for i, v := range values {
		name := "label" + strconv.Itoa(i)
		if i < len(names) {
			name = promName(names[i])
		}
		parts = append(parts, fmt.Sprintf(`%s="%s"`, name, promEscape(v)))
	}
	if extraName != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraName, promEscape(extraValue)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

var promQuantiles = []struct {
	q    string
	pick func(QHistogramSnapshot) float64
}{
	{"0.5", func(s QHistogramSnapshot) float64 { return s.P50 }},
	{"0.9", func(s QHistogramSnapshot) float64 { return s.P90 }},
	{"0.99", func(s QHistogramSnapshot) float64 { return s.P99 }},
	{"0.999", func(s QHistogramSnapshot) float64 { return s.P999 }},
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Families are sorted by exposed name within each instrument
// kind, so output for a fixed snapshot is stable.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s %d\n", n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		fmt.Fprintf(bw, "%s %s\n", n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		cum := int64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(b), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}
	for _, name := range sortedKeys(s.Quantiles) {
		q := s.Quantiles[name]
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		for _, pq := range promQuantiles {
			fmt.Fprintf(bw, "%s{quantile=%q} %s\n", n, pq.q, promFloat(pq.pick(q)))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(q.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, q.Count)
	}
	for _, name := range sortedKeys(s.CounterVecs) {
		v := s.CounterVecs[name]
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		for _, lv := range v.Values {
			fmt.Fprintf(bw, "%s%s %d\n", n, promLabels(v.LabelNames, lv.Labels, "", ""), int64(lv.Value))
		}
	}
	for _, name := range sortedKeys(s.GaugeVecs) {
		v := s.GaugeVecs[name]
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		for _, lv := range v.Values {
			fmt.Fprintf(bw, "%s%s %s\n", n, promLabels(v.LabelNames, lv.Labels, "", ""), promFloat(lv.Value))
		}
	}
	for _, name := range sortedKeys(s.HistogramVecs) {
		v := s.HistogramVecs[name]
		n := promName(name)
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		for _, lh := range v.Values {
			for _, pq := range promQuantiles {
				fmt.Fprintf(bw, "%s%s %s\n", n,
					promLabels(v.LabelNames, lh.Labels, "quantile", pq.q), promFloat(pq.pick(lh.Histogram)))
			}
			fmt.Fprintf(bw, "%s_sum%s %s\n", n, promLabels(v.LabelNames, lh.Labels, "", ""), promFloat(lh.Histogram.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", n, promLabels(v.LabelNames, lh.Labels, "", ""), lh.Histogram.Count)
		}
	}
	return bw.Flush()
}

// CheckExposition validates a Prometheus text exposition stream: every
// non-comment line must be a well-formed sample whose family was
// declared by a preceding # TYPE line (directly, or through the
// _bucket/_sum/_count series of a histogram or summary), TYPE
// declarations must not repeat, histogram buckets must carry an le
// label and summary quantile values a quantile label, and values must
// parse as floats. It is the CI obs-smoke gate's parser; returns the
// first violation with its 1-based line number.
func CheckExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	types := make(map[string]string)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				name, kind := fields[2], fields[3]
				if !validPromName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: invalid metric type %q", lineNo, kind)
				}
				if prev, ok := types[name]; ok {
					return fmt.Errorf("line %d: duplicate TYPE for %s (already %s)", lineNo, name, prev)
				}
				types[name] = kind
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sawSample = true
		family, series := promFamily(name, types)
		if family == "" {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		kind := types[family]
		switch {
		case kind == "histogram" && series == "_bucket":
			if _, ok := labels["le"]; !ok {
				return fmt.Errorf("line %d: histogram bucket %q missing le label", lineNo, name)
			}
		case kind == "summary" && series == "":
			if q, ok := labels["quantile"]; ok {
				if _, err := strconv.ParseFloat(q, 64); err != nil {
					return fmt.Errorf("line %d: bad quantile label %q", lineNo, q)
				}
			}
		}
		_ = value
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(types) == 0 && !sawSample {
		return fmt.Errorf("empty exposition")
	}
	return nil
}

func validPromName(name string) bool {
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return name != ""
}

// promFamily resolves a sample name to its declared family: the name
// itself, or the base of a _bucket/_sum/_count series when that base
// was declared as a histogram or summary. It returns the family and the
// series suffix ("" for the family's own samples).
func promFamily(name string, types map[string]string) (family, series string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		switch types[base] {
		case "histogram":
			return base, suffix
		case "summary":
			if suffix != "_bucket" {
				return base, suffix
			}
		}
	}
	return "", ""
}

// parsePromSample parses one sample line: name[{labels}] value [ts].
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = make(map[string]string)
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name = rest[:i]
		rest = rest[i:]
	}
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if strings.HasPrefix(rest, "{") {
		body := rest[1:]
		for {
			body = strings.TrimLeft(body, " ,")
			if strings.HasPrefix(body, "}") {
				rest = body[1:]
				break
			}
			eq := strings.Index(body, "=")
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
			}
			key := strings.TrimSpace(body[:eq])
			if !validPromName(key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", key)
			}
			body = body[eq+1:]
			if !strings.HasPrefix(body, `"`) {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			body = body[1:]
			var val strings.Builder
			for {
				if body == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := body[0]
				if c == '\\' {
					if len(body) < 2 {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch body[1] {
					case '\\', '"':
						val.WriteByte(body[1])
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", body[1], line)
					}
					body = body[2:]
					continue
				}
				if c == '"' {
					body = body[1:]
					break
				}
				val.WriteByte(c)
				body = body[1:]
			}
			labels[key] = val.String()
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return 0, nil // representable in the format, parsed specially
	case "-Inf":
		return 0, nil
	case "NaN", "Nan":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
