package obs

import (
	"strings"
	"sync"
	"time"

	"repro/internal/harness/clock"
)

// DriftEvent is one session's transition across its QoS requirement.
type DriftEvent struct {
	// Session joins the session's label values with "/".
	Session string
	// Observed is the session's observed gauge value at the tick.
	Observed float64
	// Required is the session's Eq. 3 requirement gauge value.
	Required float64
	// Exceeded is true when the session entered violation and false when
	// it recovered.
	Exceeded bool
}

// DriftConfig wires a DriftMonitor.
type DriftConfig struct {
	// Observed is the per-session observed-value gauge vector (e.g. the
	// engines' "session.phi.observed"). Its children define the session
	// set the monitor walks each tick.
	Observed *GaugeVec
	// Required is the matching per-session requirement gauge vector;
	// sessions with no requirement child are skipped.
	Required *GaugeVec
	// Tolerance is fractional headroom: a session drifts when
	// observed > required * (1 + Tolerance). Zero means any excess.
	Tolerance float64
	// Period is the Start tick interval; default 1s.
	Period time.Duration
	// Clock schedules Start's ticks; nil means the wall clock. Under the
	// simulation harness pass the Virtual clock — its AfterFunc runs
	// callbacks synchronously on the advancing goroutine, so ticks land
	// at deterministic points in the schedule.
	Clock clock.Clock
	// Tracer receives qos.drift events on transitions; may be nil.
	Tracer *Tracer
	// Registry receives the monitor's own instruments ("obs.drift.*");
	// may be nil.
	Registry *Registry
	// OnDrift, when set, is called synchronously from Tick for every
	// transition — the hook a re-composition trigger plugs into.
	OnDrift func(DriftEvent)
}

// DriftMonitor periodically compares every live session's observed
// gauge against its Eq. 3 requirement gauge and reports transitions:
// a qos.drift trace event, "obs.drift.*" counters, and the OnDrift
// callback fire when a session crosses into violation or recovers.
// Level-triggered state is kept per session so a drifting session
// reports once, not every tick.
type DriftMonitor struct {
	cfg    DriftConfig
	period time.Duration

	ticks       *Counter
	exceededC   *Counter
	recoveredC  *Counter
	forgottenC  *Counter
	inViolation *Gauge

	mu       sync.Mutex
	exceeded map[string]bool // session key -> currently in violation. guarded by mu
	timer    clock.Timer     // pending Start tick. guarded by mu
	stopped  bool            // guarded by mu
}

// NewDriftMonitor builds a monitor; call Tick directly (deterministic
// harness) or Start/Stop to tick on the configured clock.
func NewDriftMonitor(cfg DriftConfig) *DriftMonitor {
	period := cfg.Period
	if period <= 0 {
		period = time.Second
	}
	return &DriftMonitor{
		cfg:    cfg,
		period: period,
		// Registry get-or-create is nil-safe, so an unregistered monitor
		// just updates no-op instruments.
		ticks:       cfg.Registry.Counter("obs.drift.ticks"),
		exceededC:   cfg.Registry.Counter("obs.drift.exceeded_total"),
		recoveredC:  cfg.Registry.Counter("obs.drift.recovered_total"),
		forgottenC:  cfg.Registry.Counter("obs.drift.forgotten_total"),
		inViolation: cfg.Registry.Gauge("obs.drift.sessions_exceeded"),
	}
}

// Tick walks the observed sessions once and returns the transitions it
// found (nil when nothing changed). Sessions whose gauges disappeared
// since the last tick (released compositions) are forgotten without a
// recovery event; ones that vanished while in violation bump
// "obs.drift.forgotten_total", keeping the accounting identity
// exceeded_total == recovered_total + forgotten_total +
// sessions_exceeded. Safe for concurrent use; nil-safe.
func (m *DriftMonitor) Tick() []DriftEvent {
	if m == nil || m.cfg.Observed == nil || m.cfg.Required == nil {
		return nil
	}
	m.ticks.Inc()
	var events []DriftEvent
	m.mu.Lock()
	if m.exceeded == nil {
		m.exceeded = make(map[string]bool)
	}
	live := make(map[string]bool)
	for _, labels := range m.cfg.Observed.LabelValues() {
		req := m.cfg.Required.Get(labels...)
		obsG := m.cfg.Observed.Get(labels...)
		if req == nil || obsG == nil {
			continue
		}
		key := labelKey(labels)
		live[key] = true
		observed, required := obsG.Value(), req.Value()
		nowExceeded := observed > required*(1+m.cfg.Tolerance)
		if nowExceeded != m.exceeded[key] {
			m.exceeded[key] = nowExceeded
			events = append(events, DriftEvent{
				Session:  strings.Join(labels, "/"),
				Observed: observed,
				Required: required,
				Exceeded: nowExceeded,
			})
		}
	}
	forgotten := 0
	for key := range m.exceeded {
		if !live[key] {
			if m.exceeded[key] {
				// Released while in violation: no recovery event will
				// ever fire, so account the episode as forgotten.
				forgotten++
			}
			delete(m.exceeded, key)
		}
	}
	violating := 0
	for _, v := range m.exceeded {
		if v {
			violating++
		}
	}
	m.mu.Unlock()

	if forgotten > 0 {
		m.forgottenC.Add(int64(forgotten))
	}
	m.inViolation.Set(float64(violating))
	for _, ev := range events {
		if ev.Exceeded {
			m.exceededC.Inc()
			m.cfg.Tracer.QoSDrift(ev.Session, ev.Observed, ev.Required, ReasonDriftExceeded)
		} else {
			m.recoveredC.Inc()
			m.cfg.Tracer.QoSDrift(ev.Session, ev.Observed, ev.Required, ReasonDriftRecovered)
		}
		if m.cfg.OnDrift != nil {
			m.cfg.OnDrift(ev)
		}
	}
	return events
}

// Start begins ticking every Period on the configured clock. The tick
// is a re-armed AfterFunc chain rather than a ticker goroutine: under a
// Virtual clock each tick runs synchronously on the advancing
// goroutine, keeping simulated schedules deterministic. No-op when
// already started or stopped.
func (m *DriftMonitor) Start() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.timer != nil || m.stopped {
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	m.arm(clock.Or(m.cfg.Clock))
}

func (m *DriftMonitor) arm(c clock.Clock) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.timer = c.AfterFunc(m.period, func() {
		m.Tick()
		m.arm(c)
	})
	m.mu.Unlock()
}

// Stop cancels future ticks. Idempotent; a concurrent in-flight Tick
// may still complete.
func (m *DriftMonitor) Stop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stopped = true
	t := m.timer
	m.timer = nil
	m.mu.Unlock()
	if t != nil {
		t.Stop()
	}
}
