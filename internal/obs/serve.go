package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"repro/internal/harness/clock"
)

// The HTTP scrape surface. Handler builds a mux exposing a registry
// and tracer; Serve binds it to a listener so acpsim (or a future
// network service) can expose live state with one call:
//
//	/metrics       Prometheus text exposition (?format=text for the
//	               registry's native line format)
//	/metrics.json  the full registry Snapshot as JSON (acpmon's feed)
//	/healthz       liveness ("ok")
//	/trace         live span events streamed as chunked JSONL
//	/debug/vars    expvar
//	/debug/pprof/  the runtime profiler family
//
// Everything is stdlib; the only cost when nobody scrapes is the
// listener goroutine.

// ServeConfig wires the observability endpoints.
type ServeConfig struct {
	// Registry feeds /metrics and /metrics.json; nil serves empty
	// snapshots.
	Registry *Registry
	// Tracer feeds /trace via Subscribe; nil returns 503 there.
	Tracer *Tracer
	// TraceBuffer is each /trace client's ring capacity (default 1024).
	TraceBuffer int
	// Clock stamps /metrics.json snapshots with the scrape instant so
	// pollers (acpmon) difference server-reported elapsed rather than
	// their own jittery poll clock. nil means the wall clock.
	Clock clock.Clock
}

// Handler returns the observability mux for cfg.
func Handler(cfg ServeConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = cfg.Registry.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, cfg.Registry.Snapshot())
	})
	clk := clock.Or(cfg.Clock)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		s := cfg.Registry.Snapshot()
		s.AtUnixNanos = clk.Now().UnixNano()
		_ = enc.Encode(s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace", traceHandler(cfg.Tracer, cfg.TraceBuffer))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceHandler streams live span events as chunked JSONL until the
// client disconnects. Each client gets its own bounded-ring
// subscription: a slow reader loses its own oldest events (surfaced as
// trace.dropped lines) and never backpressures the engine.
func traceHandler(t *Tracer, bufCap int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		sub := t.Subscribe(bufCap)
		defer sub.Close()
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fl, _ := w.(http.Flusher)
		if fl != nil {
			fl.Flush()
		}
		enc := json.NewEncoder(w)
		ctx := r.Context()
		for {
			select {
			case <-ctx.Done():
				return
			case <-sub.Ready():
				for _, e := range sub.Drain() {
					if err := enc.Encode(e); err != nil {
						return
					}
				}
				if fl != nil {
					fl.Flush()
				}
				// A subscription closed from the tracer side stops
				// filling its ring; linger no further once it is drained.
				if sub.Closed() {
					return
				}
			}
		}
	}
}

// Server is a running observability HTTP server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds the observability mux to addr (e.g. ":9090" or
// "127.0.0.1:0") and serves it on a background goroutine.
func Serve(addr string, cfg ServeConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(cfg)}
	s := &Server{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Addr returns the server's bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close stops the server immediately, terminating in-flight requests
// (the /trace stream is endless, so a graceful drain would never
// finish). No-op on nil.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
