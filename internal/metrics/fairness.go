package metrics

import "math"

// JainIndex computes Jain's fairness index over per-tenant shares:
//
//	J(x) = (sum x_i)^2 / (n * sum x_i^2)
//
// J is 1 when every share is equal, 1/n when one tenant holds
// everything, and scale-invariant (doubling every share changes
// nothing). Non-finite and negative shares are treated as zero — a
// fairness metric must not propagate a NaN from a broken gauge — and an
// empty or all-zero share vector reports 1 (nothing allocated is
// trivially fair).
func JainIndex(shares []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range shares {
		n++
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		sumSq += x * x
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// WeightedJainIndex computes Jain's index over normalised shares
// x_i/w_i: a tenant entitled to twice the weight is "fair" at twice the
// share. Non-positive or non-finite weights default to 1.
func WeightedJainIndex(shares, weights []float64) float64 {
	norm := make([]float64, len(shares))
	for i, x := range shares {
		w := 1.0
		if i < len(weights) && weights[i] > 0 && !math.IsInf(weights[i], 0) {
			w = weights[i]
		}
		norm[i] = x / w
	}
	return JainIndex(norm)
}
