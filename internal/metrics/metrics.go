// Package metrics provides the measurement instruments the experiments
// report: message-overhead counters, composition success-rate sampling,
// and time-series recording.
//
// The paper's two headline measurements are the composition success rate
// u(t) = SuccessNum(t) / RequestNum(t) over a sampling window (§3.4) and
// the control overhead in messages per minute (§4.2).
package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Counters tallies control-plane messages by kind. The paper's overhead
// figures count probes plus global-state update messages for ACP, probes
// only for RP, and exhaustive probes for Optimal.
//
// One instance may be shared across goroutines (e.g. the dist cluster's
// node goroutines) provided every mutation goes through the Add*
// methods, which use sync/atomic; the exported fields remain plain
// int64s so value copies, literals, and snapshot reads keep working.
// Read a live shared instance with Snapshot rather than copying it.
type Counters struct {
	// Probes counts probe message transmissions (one per hop per probe).
	Probes int64
	// ProbeReturns counts complete probed paths returning to the deputy.
	ProbeReturns int64
	// StateUpdates counts threshold-triggered coarse global state
	// updates for nodes and overlay links.
	StateUpdates int64
	// Aggregations counts virtual-link aggregation dissemination
	// messages from the rotating aggregation node.
	Aggregations int64
	// Confirmations counts session-setup confirmation messages.
	Confirmations int64
	// Discovery counts service-discovery lookup messages.
	Discovery int64
	// Migrations counts dynamic-placement migration messages.
	Migrations int64
}

// AddProbes atomically adds n probe transmissions.
func (c *Counters) AddProbes(n int64) { atomic.AddInt64(&c.Probes, n) }

// AddProbeReturns atomically adds n probe returns.
func (c *Counters) AddProbeReturns(n int64) { atomic.AddInt64(&c.ProbeReturns, n) }

// AddStateUpdates atomically adds n global-state update messages.
func (c *Counters) AddStateUpdates(n int64) { atomic.AddInt64(&c.StateUpdates, n) }

// AddAggregations atomically adds n aggregation messages.
func (c *Counters) AddAggregations(n int64) { atomic.AddInt64(&c.Aggregations, n) }

// AddConfirmations atomically adds n confirmation messages.
func (c *Counters) AddConfirmations(n int64) { atomic.AddInt64(&c.Confirmations, n) }

// AddDiscovery atomically adds n discovery lookup messages.
func (c *Counters) AddDiscovery(n int64) { atomic.AddInt64(&c.Discovery, n) }

// AddMigrations atomically adds n migration messages.
func (c *Counters) AddMigrations(n int64) { atomic.AddInt64(&c.Migrations, n) }

// Snapshot returns an atomically-read copy of a live shared instance.
func (c *Counters) Snapshot() Counters {
	return Counters{
		Probes:        atomic.LoadInt64(&c.Probes),
		ProbeReturns:  atomic.LoadInt64(&c.ProbeReturns),
		StateUpdates:  atomic.LoadInt64(&c.StateUpdates),
		Aggregations:  atomic.LoadInt64(&c.Aggregations),
		Confirmations: atomic.LoadInt64(&c.Confirmations),
		Discovery:     atomic.LoadInt64(&c.Discovery),
		Migrations:    atomic.LoadInt64(&c.Migrations),
	}
}

// Total returns the sum of all message counters.
func (c *Counters) Total() int64 {
	s := c.Snapshot()
	return s.Probes + s.ProbeReturns + s.StateUpdates + s.Aggregations +
		s.Confirmations + s.Discovery + s.Migrations
}

// ProbingTotal returns probe traffic only (sent plus returned), the
// quantity reported for the RP baseline.
func (c *Counters) ProbingTotal() int64 {
	return atomic.LoadInt64(&c.Probes) + atomic.LoadInt64(&c.ProbeReturns)
}

// Sub returns c - o field-wise; useful for measuring a window.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Probes:        c.Probes - o.Probes,
		ProbeReturns:  c.ProbeReturns - o.ProbeReturns,
		StateUpdates:  c.StateUpdates - o.StateUpdates,
		Aggregations:  c.Aggregations - o.Aggregations,
		Confirmations: c.Confirmations - o.Confirmations,
		Discovery:     c.Discovery - o.Discovery,
		Migrations:    c.Migrations - o.Migrations,
	}
}

// String summarises the counters.
func (c Counters) String() string {
	return fmt.Sprintf("msgs(probe=%d ret=%d state=%d agg=%d confirm=%d disc=%d migrate=%d)",
		c.Probes, c.ProbeReturns, c.StateUpdates, c.Aggregations, c.Confirmations, c.Discovery, c.Migrations)
}

// SuccessSampler accumulates composition outcomes within a sampling
// window and across the whole run.
type SuccessSampler struct {
	winSuccess, winTotal int64
	cumSuccess, cumTotal int64
}

// Record notes one composition outcome.
func (s *SuccessSampler) Record(success bool) {
	s.winTotal++
	s.cumTotal++
	if success {
		s.winSuccess++
		s.cumSuccess++
	}
}

// Roll closes the current window, returning its success rate and request
// count, and starts a fresh window. An empty window reports rate 1 with
// count 0 (no requests means no failures).
func (s *SuccessSampler) Roll() (rate float64, requests int64) {
	rate, requests = windowRate(s.winSuccess, s.winTotal), s.winTotal
	s.winSuccess, s.winTotal = 0, 0
	return rate, requests
}

// Window reports the in-progress window without resetting it.
func (s *SuccessSampler) Window() (rate float64, requests int64) {
	return windowRate(s.winSuccess, s.winTotal), s.winTotal
}

// Cumulative reports the whole-run success rate and request count.
func (s *SuccessSampler) Cumulative() (rate float64, requests int64) {
	return windowRate(s.cumSuccess, s.cumTotal), s.cumTotal
}

func windowRate(success, total int64) float64 {
	if total == 0 {
		return 1
	}
	return float64(success) / float64(total)
}

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is an append-only time series, used for the adaptation
// experiments (Figure 8) that plot success rate and probing ratio over
// simulated time.
type Series struct {
	points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.points = append(s.points, Point{At: at, Value: v})
}

// Points returns a copy of the recorded samples.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Mean returns the average sample value, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.points {
		sum += p.Value
	}
	return sum / float64(len(s.points))
}

// Min returns the smallest sample value, or 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.points) == 0 {
		return 0
	}
	m := s.points[0].Value
	for _, p := range s.points[1:] {
		if p.Value < m {
			m = p.Value
		}
	}
	return m
}
