package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestJainIndexKnownValues(t *testing.T) {
	cases := []struct {
		name   string
		shares []float64
		want   float64
	}{
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"single tenant", []float64{7}, 1},
		{"one hogs all of four", []float64{10, 0, 0, 0}, 0.25},
		{"two of four equal", []float64{5, 5, 0, 0}, 0.5},
		{"empty", nil, 1},
		{"all zero", []float64{0, 0, 0}, 1},
	}
	for _, tc := range cases {
		if got := JainIndex(tc.shares); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: JainIndex = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestJainIndexBounds is the satellite property test: for every share
// vector the index lies in [1/n, 1].
func TestJainIndexBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(16)
		shares := make([]float64, n)
		nonZero := 0
		for i := range shares {
			if rng.Float64() < 0.2 {
				continue // keep some zero shares in the mix
			}
			shares[i] = rng.Float64() * math.Pow(10, float64(rng.Intn(7)-3))
			nonZero++
		}
		j := JainIndex(shares)
		if nonZero == 0 {
			if j != 1 {
				t.Fatalf("trial %d: all-zero vector gave %v, want 1", trial, j)
			}
			continue
		}
		lo := 1 / float64(n)
		if j < lo-1e-12 || j > 1+1e-12 {
			t.Fatalf("trial %d: JainIndex(%v) = %v outside [%v, 1]", trial, shares, j, lo)
		}
	}
}

func TestJainIndexScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(10)
		shares := make([]float64, n)
		scaled := make([]float64, n)
		k := math.Pow(10, float64(rng.Intn(9)-4)) * (0.5 + rng.Float64())
		for i := range shares {
			shares[i] = rng.Float64() * 100
			scaled[i] = shares[i] * k
		}
		a, b := JainIndex(shares), JainIndex(scaled)
		if math.Abs(a-b) > 1e-9*math.Max(a, 1) {
			t.Fatalf("trial %d: scale by %v changed index %v -> %v", trial, k, a, b)
		}
	}
}

// TestJainIndexEqualityIffAllEqual: the index is 1 exactly when every
// positive share is equal and no share is zero alongside positive ones.
func TestJainIndexEqualityIffAllEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(10)
		shares := make([]float64, n)
		v := 1 + rng.Float64()*50
		for i := range shares {
			shares[i] = v
		}
		if j := JainIndex(shares); math.Abs(j-1) > 1e-12 {
			t.Fatalf("trial %d: equal shares gave %v", trial, j)
		}
		// Perturb one share: the index must drop strictly below 1.
		shares[rng.Intn(n)] *= 1 + 0.5 + rng.Float64()
		if j := JainIndex(shares); j >= 1-1e-12 {
			t.Fatalf("trial %d: unequal shares %v gave %v, want < 1", trial, shares, j)
		}
	}
}

func TestJainIndexNaNAndNegativeSafety(t *testing.T) {
	cases := []struct {
		name   string
		shares []float64
	}{
		{"NaN share", []float64{1, math.NaN(), 1}},
		{"positive infinity", []float64{1, math.Inf(1), 1}},
		{"negative infinity", []float64{1, math.Inf(-1), 1}},
		{"negative share", []float64{1, -5, 1}},
	}
	for _, tc := range cases {
		j := JainIndex(tc.shares)
		if math.IsNaN(j) || math.IsInf(j, 0) {
			t.Errorf("%s: JainIndex = %v, want finite", tc.name, j)
		}
		// The broken entry counts as a zero share of n=3.
		if lo := 1.0 / 3; j < lo-1e-12 || j > 1+1e-12 {
			t.Errorf("%s: JainIndex = %v outside [%v, 1]", tc.name, j, lo)
		}
	}
	if j := JainIndex([]float64{math.NaN(), math.NaN()}); j != 1 {
		t.Errorf("all-NaN shares: JainIndex = %v, want 1 (treated as all-zero)", j)
	}
}

func TestWeightedJainIndex(t *testing.T) {
	// Shares proportional to weights are perfectly weighted-fair.
	shares := []float64{10, 20, 30}
	weights := []float64{1, 2, 3}
	if j := WeightedJainIndex(shares, weights); math.Abs(j-1) > 1e-12 {
		t.Errorf("proportional shares: index = %v, want 1", j)
	}
	// Equal shares under unequal weights are NOT weighted-fair.
	if j := WeightedJainIndex([]float64{10, 10, 10}, weights); j >= 1-1e-9 {
		t.Errorf("equal shares under unequal weights: index = %v, want < 1", j)
	}
	// Broken weights fall back to 1, reducing to the plain index.
	if j := WeightedJainIndex(shares, []float64{0, math.NaN(), math.Inf(1)}); j != JainIndex(shares) {
		t.Errorf("broken weights: index = %v, want %v", j, JainIndex(shares))
	}
	// Missing weights (short slice) default to 1.
	if j := WeightedJainIndex([]float64{5, 5}, nil); math.Abs(j-1) > 1e-12 {
		t.Errorf("nil weights: index = %v, want 1", j)
	}
}

func BenchmarkJainIndex(b *testing.B) {
	shares := make([]float64, 64)
	rng := rand.New(rand.NewSource(1))
	for i := range shares {
		shares[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JainIndex(shares)
	}
}
