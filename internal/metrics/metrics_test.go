package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCountersConcurrentAdds shares one instance across goroutines the
// way dist node goroutines do; with -race this is the counter race test.
func TestCountersConcurrentAdds(t *testing.T) {
	var c Counters
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.AddProbes(1)
				c.AddProbeReturns(1)
				c.AddStateUpdates(1)
				c.AddAggregations(1)
				c.AddConfirmations(1)
				c.AddDiscovery(1)
				c.AddMigrations(1)
				_ = c.ProbingTotal()
				if i%200 == 0 {
					_ = c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Probes != workers*iters || s.Migrations != workers*iters {
		t.Errorf("Snapshot = %+v, want %d per field", s, workers*iters)
	}
	if got := c.Total(); got != 7*workers*iters {
		t.Errorf("Total = %d, want %d", got, 7*workers*iters)
	}
}

func TestCountersTotalAndSub(t *testing.T) {
	c := Counters{Probes: 10, ProbeReturns: 2, StateUpdates: 3, Aggregations: 4, Confirmations: 5, Discovery: 6, Migrations: 7}
	if got := c.Total(); got != 37 {
		t.Errorf("Total = %d, want 37", got)
	}
	if got := c.ProbingTotal(); got != 12 {
		t.Errorf("ProbingTotal = %d, want 12", got)
	}
	d := c.Sub(Counters{Probes: 4, Confirmations: 5})
	if d.Probes != 6 || d.Confirmations != 0 || d.StateUpdates != 3 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestSuccessSamplerWindows(t *testing.T) {
	var s SuccessSampler
	for i := 0; i < 8; i++ {
		s.Record(i%2 == 0) // 4 of 8 succeed
	}
	if rate, n := s.Window(); rate != 0.5 || n != 8 {
		t.Errorf("Window = (%v, %d), want (0.5, 8)", rate, n)
	}
	rate, n := s.Roll()
	if rate != 0.5 || n != 8 {
		t.Errorf("Roll = (%v, %d), want (0.5, 8)", rate, n)
	}
	// Window reset; cumulative preserved.
	if rate, n := s.Window(); rate != 1 || n != 0 {
		t.Errorf("post-roll Window = (%v, %d), want (1, 0)", rate, n)
	}
	s.Record(true)
	s.Record(true)
	if rate, n := s.Roll(); rate != 1 || n != 2 {
		t.Errorf("second Roll = (%v, %d), want (1, 2)", rate, n)
	}
	if rate, n := s.Cumulative(); math.Abs(rate-0.6) > 1e-12 || n != 10 {
		t.Errorf("Cumulative = (%v, %d), want (0.6, 10)", rate, n)
	}
}

func TestSuccessSamplerEmptyWindow(t *testing.T) {
	var s SuccessSampler
	if rate, n := s.Roll(); rate != 1 || n != 0 {
		t.Errorf("empty Roll = (%v, %d), want (1, 0)", rate, n)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.Mean() != 0 || s.Min() != 0 {
		t.Error("empty series not zero-valued")
	}
	s.Add(time.Minute, 0.9)
	s.Add(2*time.Minute, 0.5)
	s.Add(3*time.Minute, 0.7)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Mean(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Mean = %v, want 0.7", got)
	}
	if got := s.Min(); got != 0.5 {
		t.Errorf("Min = %v, want 0.5", got)
	}
	pts := s.Points()
	if len(pts) != 3 || pts[1] != (Point{At: 2 * time.Minute, Value: 0.5}) {
		t.Errorf("Points = %v", pts)
	}
	// Points must be a copy.
	pts[0].Value = 99
	if s.Points()[0].Value == 99 {
		t.Error("Points exposes internal storage")
	}
}
