// Package faults is the deterministic fault-injection layer for the
// distributed engine: a seeded injector the cluster consults on every
// message send. It can drop a message, delay its delivery, duplicate
// it, and take whole nodes down and back up on a schedule — the failure
// modes the paper's probing protocol (§3.3) is supposed to tolerate
// (a deputy decides from whatever probes return within the collection
// window; transient allocations decay by TTL).
//
// The injector is seeded and self-contained, so a fixed seed yields a
// reproducible decision sequence; under concurrent senders the
// *interleaving* of those decisions still varies with goroutine
// scheduling, which is exactly the nondeterminism the dist engine is
// supposed to survive.
//
// Everything is nil-safe: a nil *Injector answers "no fault" to every
// question at the cost of one pointer check, so the dist hot path pays
// nothing when fault injection is disabled.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/harness/clock"
)

// Kind classifies a message for injection purposes. Session-teardown
// messages (release of committed resources) are deliberately not a
// kind: teardown is modeled as a reliable control channel, the fault
// model covers the composition protocol itself.
type Kind int

const (
	// KindProbe is a probe hop or a probe return travelling back to the
	// deputy (§3.3 steps 2-3).
	KindProbe Kind = iota
	// KindProtocol is a commit-phase message: commit, commit ack.
	KindProtocol
	// KindState is a best-effort coarse global-state broadcast (§3.2).
	KindState
)

// Crash takes one node down at At for Downtime, measured from the
// injector's start (the cluster's start).
type Crash struct {
	Node     int
	At       time.Duration
	Downtime time.Duration
}

// Config parameterises an Injector. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Zero means seed 1.
	Seed int64
	// DropProb is the per-message loss probability in [0, 1].
	DropProb float64
	// DupProb is the per-message duplication probability in [0, 1]; a
	// duplicated message is delivered twice.
	DupProb float64
	// MaxDelay, when positive, delays each delivery by a uniform random
	// jitter in [0, MaxDelay).
	MaxDelay time.Duration
	// Crashes schedules node outages. During an outage the node
	// processes nothing and messages toward it are lost; on restart it
	// comes back with its volatile state (holds, in-flight requests)
	// gone.
	Crashes []Crash
	// Clock measures the outage schedule. Nil means the wall clock; the
	// simulation harness substitutes a virtual clock so crash windows
	// elapse in simulated time.
	Clock clock.Clock
}

// Action is the injector's verdict for one message send.
type Action struct {
	// Drop loses the message silently: the sender believes it was sent.
	Drop bool
	// Duplicate delivers the message twice.
	Duplicate bool
	// Delay postpones delivery.
	Delay time.Duration
}

// Injector makes fault decisions. Safe for concurrent use; obtain one
// from New.
type Injector struct {
	cfg   Config
	clk   clock.Clock
	start time.Time

	mu sync.Mutex
	// rng drives every probabilistic decision. guarded by mu
	rng *rand.Rand

	// crashes is the per-node outage schedule, sorted by start time.
	crashes map[int][]Crash
}

// New validates cfg and returns an injector whose crash clock starts
// now. A nil return with nil error means cfg injects nothing at all and
// the caller can skip the injection path entirely.
func New(cfg Config) (*Injector, error) {
	if cfg.DropProb < 0 || cfg.DropProb > 1 {
		return nil, fmt.Errorf("faults: drop probability %v out of [0, 1]", cfg.DropProb)
	}
	if cfg.DupProb < 0 || cfg.DupProb > 1 {
		return nil, fmt.Errorf("faults: duplication probability %v out of [0, 1]", cfg.DupProb)
	}
	if cfg.MaxDelay < 0 {
		return nil, fmt.Errorf("faults: negative delay jitter %v", cfg.MaxDelay)
	}
	for _, cr := range cfg.Crashes {
		if cr.Node < 0 {
			return nil, fmt.Errorf("faults: crash schedules negative node %d", cr.Node)
		}
		if cr.At < 0 || cr.Downtime <= 0 {
			return nil, fmt.Errorf("faults: crash for node %d needs At >= 0 and Downtime > 0", cr.Node)
		}
	}
	if cfg.DropProb == 0 && cfg.DupProb == 0 && cfg.MaxDelay == 0 && len(cfg.Crashes) == 0 {
		return nil, nil
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	clk := clock.Or(cfg.Clock)
	in := &Injector{
		cfg:     cfg,
		clk:     clk,
		start:   clk.Now(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		crashes: make(map[int][]Crash, len(cfg.Crashes)),
	}
	for _, cr := range cfg.Crashes {
		in.crashes[cr.Node] = append(in.crashes[cr.Node], cr)
	}
	for node := range in.crashes {
		s := in.crashes[node]
		sort.Slice(s, func(i, j int) bool { return s[i].At < s[j].At })
	}
	return in, nil
}

// Enabled reports whether any fault can ever fire.
func (in *Injector) Enabled() bool { return in != nil }

// OnSend decides the fate of one message of the given kind. A nil
// injector returns the zero Action (deliver normally).
func (in *Injector) OnSend(kind Kind) Action {
	if in == nil {
		return Action{}
	}
	_ = kind // all current kinds share one fault distribution
	var a Action
	in.mu.Lock()
	if in.cfg.DropProb > 0 && in.rng.Float64() < in.cfg.DropProb {
		a.Drop = true
	}
	if !a.Drop {
		if in.cfg.DupProb > 0 && in.rng.Float64() < in.cfg.DupProb {
			a.Duplicate = true
		}
		if in.cfg.MaxDelay > 0 {
			a.Delay = time.Duration(in.rng.Int63n(int64(in.cfg.MaxDelay)))
		}
	}
	in.mu.Unlock()
	return a
}

// Down reports whether the node is inside a scheduled outage right now.
// A nil injector reports false.
func (in *Injector) Down(node int) bool {
	if in == nil {
		return false
	}
	s, ok := in.crashes[node]
	if !ok {
		return false
	}
	elapsed := in.clk.Since(in.start)
	for _, cr := range s {
		if elapsed >= cr.At && elapsed < cr.At+cr.Downtime {
			return true
		}
	}
	return false
}

// CrashCount returns how many outages are scheduled in total.
func (in *Injector) CrashCount() int {
	if in == nil {
		return 0
	}
	return len(in.cfg.Crashes)
}

// RandomCrashes builds a seeded schedule of count outages spread over
// distinct random nodes in [0, nodes), starting uniformly within the
// window and each lasting downtime. count is capped at nodes.
func RandomCrashes(seed int64, nodes, count int, window, downtime time.Duration) []Crash {
	if nodes <= 0 || count <= 0 || downtime <= 0 {
		return nil
	}
	if count > nodes {
		count = nodes
	}
	if window <= 0 {
		window = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	picked := rng.Perm(nodes)[:count]
	out := make([]Crash, 0, count)
	for _, node := range picked {
		out = append(out, Crash{
			Node:     node,
			At:       time.Duration(rng.Int63n(int64(window))),
			Downtime: downtime,
		})
	}
	return out
}
