package faults

import (
	"reflect"
	"testing"
	"time"
)

func TestZonePartition(t *testing.T) {
	// Round-robin partition: membership is total and disjoint.
	const nodes, zones = 10, 3
	seen := make(map[int]int)
	for z := 0; z < zones; z++ {
		for _, n := range ZoneNodes(z, zones, nodes) {
			if prev, dup := seen[n]; dup {
				t.Fatalf("node %d in zones %d and %d", n, prev, z)
			}
			seen[n] = z
			if Zone(n, zones) != z {
				t.Errorf("Zone(%d, %d) = %d, want %d", n, zones, Zone(n, zones), z)
			}
		}
	}
	if len(seen) != nodes {
		t.Fatalf("partition covers %d of %d nodes", len(seen), nodes)
	}
	if Zone(5, 0) != 0 {
		t.Error("Zone with zero zones should clamp to 0")
	}
}

func TestZoneCrashesCorrelated(t *testing.T) {
	const nodes, zones = 12, 4
	crashes := ZoneCrashes(7, nodes, zones, 2, time.Minute, 5*time.Second)
	if len(crashes) == 0 {
		t.Fatal("no crashes drawn")
	}
	// Crashes group into exactly 2 zones, each zone's members crashing
	// at one shared instant for one shared downtime.
	byZone := make(map[int][]Crash)
	for _, c := range crashes {
		byZone[Zone(c.Node, zones)] = append(byZone[Zone(c.Node, zones)], c)
	}
	if len(byZone) != 2 {
		t.Fatalf("crashes span %d zones, want 2", len(byZone))
	}
	for z, group := range byZone {
		if len(group) != len(ZoneNodes(z, zones, nodes)) {
			t.Errorf("zone %d: %d crashes for %d members", z, len(group), len(ZoneNodes(z, zones, nodes)))
		}
		for _, c := range group {
			if c.At != group[0].At || c.Downtime != group[0].Downtime {
				t.Errorf("zone %d: crash %+v not synchronised with %+v", z, c, group[0])
			}
			if c.At < 0 || c.At >= time.Minute {
				t.Errorf("zone %d: crash at %v outside window", z, c.At)
			}
		}
	}
}

func TestZoneCrashesDeterministic(t *testing.T) {
	a := ZoneCrashes(3, 16, 4, 2, time.Minute, time.Second)
	b := ZoneCrashes(3, 16, 4, 2, time.Minute, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := ZoneCrashes(4, 16, 4, 2, time.Minute, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestZoneCrashesClamping(t *testing.T) {
	// count > zones clamps; zones > nodes clamps; degenerate inputs nil.
	if got := ZoneCrashes(1, 4, 8, 100, time.Minute, time.Second); len(got) != 4 {
		t.Errorf("full blackout drew %d crashes, want all 4 nodes", len(got))
	}
	if ZoneCrashes(1, 0, 4, 1, time.Minute, time.Second) != nil {
		t.Error("zero nodes should yield nil")
	}
	if ZoneCrashes(1, 4, 4, 0, time.Minute, time.Second) != nil {
		t.Error("zero count should yield nil")
	}
	if ZoneCrashes(1, 4, 4, 1, time.Minute, 0) != nil {
		t.Error("zero downtime should yield nil")
	}
}
