package faults

import (
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{DropProb: -0.1},
		{DropProb: 1.1},
		{DupProb: -1},
		{DupProb: 2},
		{MaxDelay: -time.Second},
		{Crashes: []Crash{{Node: -1, At: 0, Downtime: time.Second}}},
		{Crashes: []Crash{{Node: 0, At: -time.Second, Downtime: time.Second}}},
		{Crashes: []Crash{{Node: 0, At: 0, Downtime: 0}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
}

func TestNewNilForNoFaults(t *testing.T) {
	in, err := New(Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if in != nil {
		t.Fatal("fault-free config should yield a nil injector")
	}
	// The nil injector answers "no fault" everywhere.
	if in.Enabled() {
		t.Error("nil injector reports enabled")
	}
	if a := in.OnSend(KindProbe); a != (Action{}) {
		t.Errorf("nil injector action = %+v", a)
	}
	if in.Down(3) {
		t.Error("nil injector reports a node down")
	}
	if in.CrashCount() != 0 {
		t.Error("nil injector reports crashes")
	}
}

func TestSeededDeterminism(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Config{Seed: 7, DropProb: 0.3, DupProb: 0.2, MaxDelay: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		if av, bv := a.OnSend(KindProbe), b.OnSend(KindProbe); av != bv {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, av, bv)
		}
	}
}

func TestDropRateRoughlyMatches(t *testing.T) {
	in, err := New(Config{Seed: 3, DropProb: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if in.OnSend(KindProtocol).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.22 || got > 0.28 {
		t.Errorf("empirical drop rate %.3f far from configured 0.25", got)
	}
}

func TestDroppedMessagesAreNotDuplicatedOrDelayed(t *testing.T) {
	in, err := New(Config{Seed: 5, DropProb: 0.5, DupProb: 1, MaxDelay: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a := in.OnSend(KindProbe)
		if a.Drop && (a.Duplicate || a.Delay != 0) {
			t.Fatalf("dropped message also duplicated/delayed: %+v", a)
		}
		if !a.Drop && !a.Duplicate {
			t.Fatalf("DupProb=1 but surviving message not duplicated: %+v", a)
		}
	}
}

func TestCrashWindows(t *testing.T) {
	in, err := New(Config{
		Seed:    1,
		Crashes: []Crash{{Node: 2, At: 0, Downtime: 50 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Down(2) {
		t.Error("node 2 should be down at t=0")
	}
	if in.Down(1) {
		t.Error("node 1 has no outage scheduled")
	}
	deadline := time.Now().Add(2 * time.Second)
	for in.Down(2) {
		if time.Now().After(deadline) {
			t.Fatal("node 2 never restarted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRandomCrashes(t *testing.T) {
	a := RandomCrashes(9, 32, 5, time.Second, 100*time.Millisecond)
	b := RandomCrashes(9, 32, 5, time.Second, 100*time.Millisecond)
	if len(a) != 5 {
		t.Fatalf("len = %d, want 5", len(a))
	}
	seen := make(map[int]bool)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("schedule not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Node < 0 || a[i].Node >= 32 {
			t.Errorf("node %d out of range", a[i].Node)
		}
		if seen[a[i].Node] {
			t.Errorf("node %d crashed twice", a[i].Node)
		}
		seen[a[i].Node] = true
		if a[i].At < 0 || a[i].At >= time.Second {
			t.Errorf("crash time %v outside window", a[i].At)
		}
	}
	if got := RandomCrashes(1, 4, 100, time.Second, time.Millisecond); len(got) != 4 {
		t.Errorf("count not capped at node count: %d", len(got))
	}
	if got := RandomCrashes(1, 0, 3, time.Second, time.Millisecond); got != nil {
		t.Errorf("zero nodes should yield nil, got %v", got)
	}
}
