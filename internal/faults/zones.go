package faults

import (
	"math/rand"
	"time"
)

// Zone partitions overlay nodes into racks/availability zones for
// correlated-outage schedules: node n belongs to zone n mod zones. The
// assignment is structural, not drawn, so a zone's membership is the
// same in every component that consults it (workload plans, harness
// audits, capacity blackouts).
func Zone(node, zones int) int {
	if zones <= 0 {
		return 0
	}
	return node % zones
}

// ZoneNodes lists the members of one zone under the Zone partition.
func ZoneNodes(zone, zones, nodes int) []int {
	var out []int
	for n := zone; n < nodes; n += zones {
		out = append(out, n)
	}
	return out
}

// ZoneCrashes draws a correlated rack/zone outage schedule: count zones
// are picked (without replacement) and every node of a picked zone
// crashes at the same instant for the same downtime — the failure mode
// a top-of-rack switch or a power domain produces, which independent
// per-node crash draws (RandomCrashes) never exercise. Start times are
// uniform over [0, window). A fixed seed yields a fixed schedule.
func ZoneCrashes(seed int64, nodes, zones, count int, window, downtime time.Duration) []Crash {
	if nodes <= 0 || zones <= 0 || count <= 0 || downtime <= 0 {
		return nil
	}
	if zones > nodes {
		zones = nodes
	}
	if count > zones {
		count = zones
	}
	if window <= 0 {
		window = time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	picked := rng.Perm(zones)[:count]
	out := make([]Crash, 0, count*(nodes/zones+1))
	for _, z := range picked {
		at := time.Duration(rng.Int63n(int64(window)))
		for _, node := range ZoneNodes(z, zones, nodes) {
			out = append(out, Crash{Node: node, At: at, Downtime: downtime})
		}
	}
	return out
}
