// Package state implements the system's resource ground truth (the
// ledger) and the paper's hierarchical state management (§3.2):
// fine-grain precise local state plus a coarse-grain global state updated
// only on significant variations, with virtual-link states aggregated by
// a rotating aggregation node.
package state

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/overlay"
	"repro/internal/qos"
)

// Owner identifies the request (during probing) or session (after setup)
// that resources belong to.
type Owner int64

type nodeHold struct {
	owner   Owner
	tag     int // distinguishes components of one request (footnote 7)
	amount  qos.Resources
	expires time.Duration
}

type linkHold struct {
	owner   Owner
	tag     int // distinguishes virtual links of one request
	amount  float64
	expires time.Duration
}

type nodeLedger struct {
	capacity  qos.Resources
	committed qos.Resources
	held      qos.Resources
	holds     []nodeHold
}

type linkLedger struct {
	capacity  float64
	committed float64
	held      float64
	holds     []linkHold
}

type sessionAlloc struct {
	nodes map[int]qos.Resources
	links map[int]float64
}

// Ledger is the authoritative record of end-system resources per overlay
// node and bandwidth per overlay link. It distinguishes committed session
// allocations from transient holds placed by probes (§3.3 step 2):
// transient holds expire after a timeout unless promoted by a session
// confirmation, preventing conflicting admissions by concurrent probings.
//
// By default a Ledger is not safe for concurrent use; the discrete-event
// simulator is single-threaded. EnableLocking switches on an internal
// mutex so a concurrent composition driver can share one ledger across
// worker goroutines; the disabled path costs only a nil check.
type Ledger struct {
	now      func() time.Duration
	nodes    []nodeLedger
	links    []linkLedger
	sessions map[Owner]sessionAlloc

	// migrations maps a re-probe owner to the committed session it is
	// re-composing make-before-break. While registered, the probe's
	// availability views and hold feasibility checks credit the source
	// session's committed allocation as reusable (footnote-8 discipline
	// applied to live state), so a re-composition is never blocked by —
	// or double-charged for — resources the session already owns.
	migrations map[Owner]Owner

	onNodeChange func(node int)
	onLinkChange func(link int)

	// mu, when non-nil, serializes every public operation. Change
	// observers fire with the lock held and must only use the package's
	// unlocked internals.
	mu *sync.Mutex
}

// NewLedger builds a ledger for the mesh with every node given nodeCap
// capacity and every overlay link its mesh capacity. The now function
// supplies virtual time for hold expiry.
func NewLedger(mesh *overlay.Mesh, nodeCap qos.Resources, now func() time.Duration) *Ledger {
	l := &Ledger{
		now:      now,
		nodes:    make([]nodeLedger, mesh.NumNodes()),
		links:    make([]linkLedger, mesh.NumLinks()),
		sessions: make(map[Owner]sessionAlloc),
	}
	for i := range l.nodes {
		l.nodes[i].capacity = nodeCap
	}
	for i := range l.links {
		l.links[i].capacity = mesh.Link(i).Capacity
	}
	return l
}

// EnableLocking makes the ledger safe for concurrent use by guarding
// every operation with a mutex. Call before sharing the ledger across
// goroutines; enabling is idempotent and cannot be undone.
func (l *Ledger) EnableLocking() {
	if l.mu == nil {
		l.mu = new(sync.Mutex)
	}
}

func (l *Ledger) lock() {
	if l.mu != nil {
		l.mu.Lock()
	}
}

func (l *Ledger) unlock() {
	if l.mu != nil {
		l.mu.Unlock()
	}
}

// SetChangeObservers registers callbacks fired after a node's or link's
// committed allocation changes. The global state subscribes here to apply
// its threshold-triggered update rule. Transient holds do not fire the
// observers: they are short-lived local state, never disseminated (§3.2).
// When locking is enabled the callbacks run with the ledger lock held.
func (l *Ledger) SetChangeObservers(onNode func(int), onLink func(int)) {
	l.onNodeChange = onNode
	l.onLinkChange = onLink
}

// NumNodes returns the number of tracked nodes.
func (l *Ledger) NumNodes() int { return len(l.nodes) }

// NumLinks returns the number of tracked overlay links.
func (l *Ledger) NumLinks() int { return len(l.links) }

// NodeCapacity returns the node's total capacity.
func (l *Ledger) NodeCapacity(node int) qos.Resources { return l.nodes[node].capacity }

// SetNodeCapacity overrides one node's capacity, supporting
// heterogeneous node classes (fast/slow/memory-constrained). Call it
// between NewLedger and NewGlobal: the global coarse views snapshot
// ledger capacities when built, and shrinking capacity below an
// existing committed+held allocation would corrupt the conservation
// invariants, so overrides on a live ledger are rejected.
func (l *Ledger) SetNodeCapacity(node int, capacity qos.Resources) error {
	l.lock()
	defer l.unlock()
	if node < 0 || node >= len(l.nodes) {
		return fmt.Errorf("state: node %d out of range", node)
	}
	if capacity.CPU <= 0 || capacity.Memory <= 0 {
		return fmt.Errorf("state: node %d capacity %+v must be positive", node, capacity)
	}
	n := &l.nodes[node]
	used := n.committed.Add(n.held)
	if used.CPU > 0 || used.Memory > 0 {
		return fmt.Errorf("state: node %d has live allocations %+v; set capacity before use", node, used)
	}
	n.capacity = capacity
	return nil
}

// LinkCapacity returns the link's total bandwidth capacity.
func (l *Ledger) LinkCapacity(link int) float64 { return l.links[link].capacity }

// purgeNode drops expired holds on a node.
func (l *Ledger) purgeNode(node int) {
	n := &l.nodes[node]
	if len(n.holds) == 0 {
		return
	}
	now := l.now()
	kept := n.holds[:0]
	for _, h := range n.holds {
		if h.expires > now {
			kept = append(kept, h)
		} else {
			n.held = n.held.Sub(h.amount)
		}
	}
	n.holds = kept
}

func (l *Ledger) purgeLink(link int) {
	lk := &l.links[link]
	if len(lk.holds) == 0 {
		return
	}
	now := l.now()
	kept := lk.holds[:0]
	for _, h := range lk.holds {
		if h.expires > now {
			kept = append(kept, h)
		} else {
			lk.held -= h.amount
		}
	}
	lk.holds = kept
}

// NodeAvailable returns the node's currently available resources: the
// precise local state a probe reads at the node itself — capacity minus
// committed sessions minus live transient holds.
func (l *Ledger) NodeAvailable(node int) qos.Resources {
	l.lock()
	defer l.unlock()
	return l.nodeAvailable(node)
}

func (l *Ledger) nodeAvailable(node int) qos.Resources {
	l.purgeNode(node)
	n := &l.nodes[node]
	return n.capacity.Sub(n.committed).Sub(n.held)
}

// NodeCommittedAvailable returns capacity minus committed sessions only,
// ignoring transient holds. This is what the coarse global state
// disseminates, since holds are never reported beyond the local node.
func (l *Ledger) NodeCommittedAvailable(node int) qos.Resources {
	l.lock()
	defer l.unlock()
	return l.nodeCommittedAvailable(node)
}

func (l *Ledger) nodeCommittedAvailable(node int) qos.Resources {
	n := &l.nodes[node]
	return n.capacity.Sub(n.committed)
}

// LinkAvailable returns the link's precise available bandwidth.
func (l *Ledger) LinkAvailable(link int) float64 {
	l.lock()
	defer l.unlock()
	return l.linkAvailable(link)
}

func (l *Ledger) linkAvailable(link int) float64 {
	l.purgeLink(link)
	lk := &l.links[link]
	return lk.capacity - lk.committed - lk.held
}

// LinkCommittedAvailable returns capacity minus committed bandwidth,
// ignoring transient holds.
func (l *Ledger) LinkCommittedAvailable(link int) float64 {
	l.lock()
	defer l.unlock()
	return l.linkCommittedAvailable(link)
}

func (l *Ledger) linkCommittedAvailable(link int) float64 {
	lk := &l.links[link]
	return lk.capacity - lk.committed
}

// RouteAvailable returns the precise available bandwidth of a virtual
// link: the bottleneck over its constituent overlay links, or +Inf for a
// co-located route (footnote 4).
func (l *Ledger) RouteAvailable(r overlay.Route) float64 {
	if r.CoLocated {
		return math.Inf(1)
	}
	l.lock()
	defer l.unlock()
	avail := math.Inf(1)
	for _, id := range r.Links {
		avail = math.Min(avail, l.linkAvailable(id))
	}
	return avail
}

// HoldNode places a transient resource allocation for owner's component
// tag on the node, expiring at the given virtual time unless promoted by
// CommitSession. It fails (returning false) when the node cannot
// currently cover the amount. Each node reserves resources once per
// component per request (footnote 7): a second hold with the same owner
// and tag — another concurrent probe of the same request visiting the
// same component — is a no-op success.
func (l *Ledger) HoldNode(owner Owner, tag, node int, amount qos.Resources, expires time.Duration) bool {
	ok, _ := l.HoldNodeTracked(owner, tag, node, amount, expires)
	return ok
}

// HoldNodeTracked is HoldNode, additionally reporting whether this call
// created a new hold: created is false both on failure and when an
// existing (owner, tag) hold made the call an idempotent no-op. Callers
// that must undo a partially-placed reservation release exactly the
// holds they created, leaving holds placed by sibling probes intact.
func (l *Ledger) HoldNodeTracked(owner Owner, tag, node int, amount qos.Resources, expires time.Duration) (ok, created bool) {
	l.lock()
	defer l.unlock()
	l.purgeNode(node)
	n := &l.nodes[node]
	for _, h := range n.holds {
		if h.owner == owner && h.tag == tag {
			return true, false
		}
	}
	avail := n.capacity.Sub(n.committed).Sub(n.held)
	if credit, ok := l.migrationNodeCredit(owner, node); ok {
		// Make-before-break: the probe may reuse its source session's
		// committed share on this node, but only once — feasibility
		// requires the part of (existing holds + amount) beyond the
		// reusable share to fit the true availability.
		avail = avail.Add(minRes(l.nodeHeldBy(owner, node).Add(amount), credit))
	}
	if !avail.Covers(amount) {
		return false, false
	}
	n.holds = append(n.holds, nodeHold{owner: owner, tag: tag, amount: amount, expires: expires})
	n.held = n.held.Add(amount)
	return true, true
}

// HoldLink places a transient bandwidth allocation on an overlay link.
// Like HoldNode it is idempotent per (owner, tag).
func (l *Ledger) HoldLink(owner Owner, tag, link int, amount float64, expires time.Duration) bool {
	ok, _ := l.HoldLinkTracked(owner, tag, link, amount, expires)
	return ok
}

// HoldLinkTracked is HoldLink, additionally reporting whether this call
// created a new hold (see HoldNodeTracked).
func (l *Ledger) HoldLinkTracked(owner Owner, tag, link int, amount float64, expires time.Duration) (ok, created bool) {
	l.lock()
	defer l.unlock()
	l.purgeLink(link)
	lk := &l.links[link]
	for _, h := range lk.holds {
		if h.owner == owner && h.tag == tag {
			return true, false
		}
	}
	avail := lk.capacity - lk.committed - lk.held
	if credit, ok := l.migrationLinkCredit(owner, link); ok {
		avail += math.Min(l.linkHeldBy(owner, link)+amount, credit)
	}
	if avail < amount {
		return false, false
	}
	lk.holds = append(lk.holds, linkHold{owner: owner, tag: tag, amount: amount, expires: expires})
	lk.held += amount
	return true, true
}

// ReleaseNodeHold cancels owner's tag hold on the node, if present. A
// probe that fails mid-reservation uses this to return exactly what it
// placed instead of leaking the partial holds until ReleaseOwner.
func (l *Ledger) ReleaseNodeHold(owner Owner, tag, node int) {
	l.lock()
	defer l.unlock()
	n := &l.nodes[node]
	for i, h := range n.holds {
		if h.owner == owner && h.tag == tag {
			n.held = n.held.Sub(h.amount)
			n.holds = append(n.holds[:i], n.holds[i+1:]...)
			return
		}
	}
}

// ReleaseLinkHold cancels owner's tag hold on the overlay link, if
// present.
func (l *Ledger) ReleaseLinkHold(owner Owner, tag, link int) {
	l.lock()
	defer l.unlock()
	lk := &l.links[link]
	for i, h := range lk.holds {
		if h.owner == owner && h.tag == tag {
			lk.held -= h.amount
			lk.holds = append(lk.holds[:i], lk.holds[i+1:]...)
			return
		}
	}
}

// NodeAvailableFor returns the node's available resources from owner's
// perspective: precise availability with owner's own transient holds
// credited back. The deputy evaluates candidate compositions with this
// view so a request is not blocked by its own reservations. An owner
// registered as a migration probe is additionally credited its source
// session's committed share on the node.
func (l *Ledger) NodeAvailableFor(owner Owner, node int) qos.Resources {
	l.lock()
	defer l.unlock()
	avail := l.nodeAvailable(node)
	for _, h := range l.nodes[node].holds {
		if h.owner == owner {
			avail = avail.Add(h.amount)
		}
	}
	if credit, ok := l.migrationNodeCredit(owner, node); ok {
		avail = avail.Add(credit)
	}
	return avail
}

// LinkAvailableFor returns the link's available bandwidth with owner's
// own holds credited back.
func (l *Ledger) LinkAvailableFor(owner Owner, link int) float64 {
	l.lock()
	defer l.unlock()
	return l.linkAvailableFor(owner, link)
}

func (l *Ledger) linkAvailableFor(owner Owner, link int) float64 {
	avail := l.linkAvailable(link)
	for _, h := range l.links[link].holds {
		if h.owner == owner {
			avail += h.amount
		}
	}
	if credit, ok := l.migrationLinkCredit(owner, link); ok {
		avail += credit
	}
	return avail
}

// RouteAvailableFor returns the virtual link's available bandwidth with
// owner's own holds credited back on every constituent overlay link.
func (l *Ledger) RouteAvailableFor(owner Owner, r overlay.Route) float64 {
	if r.CoLocated {
		return math.Inf(1)
	}
	l.lock()
	defer l.unlock()
	avail := math.Inf(1)
	for _, id := range r.Links {
		avail = math.Min(avail, l.linkAvailableFor(owner, id))
	}
	return avail
}

// ReleaseOwner cancels every transient hold belonging to owner, across
// all nodes and links. The deputy calls this once a composition decision
// has been made; unreleased holds die by timeout anyway.
func (l *Ledger) ReleaseOwner(owner Owner) {
	l.lock()
	defer l.unlock()
	l.releaseOwner(owner)
}

func (l *Ledger) releaseOwner(owner Owner) {
	for i := range l.nodes {
		n := &l.nodes[i]
		kept := n.holds[:0]
		for _, h := range n.holds {
			if h.owner == owner {
				n.held = n.held.Sub(h.amount)
			} else {
				kept = append(kept, h)
			}
		}
		n.holds = kept
	}
	for i := range l.links {
		lk := &l.links[i]
		kept := lk.holds[:0]
		for _, h := range lk.holds {
			if h.owner == owner {
				lk.held -= h.amount
			} else {
				kept = append(kept, h)
			}
		}
		lk.holds = kept
	}
}

// CommitSession converts a composition decision into a durable session
// allocation: owner's transient holds are released and the given per-node
// resources and per-link bandwidths are committed. On failure (some node
// or link cannot cover its share) nothing is committed, but the owner's
// transient holds stay released — the request has failed and the paper's
// protocol would let them time out regardless.
func (l *Ledger) CommitSession(owner Owner, nodes map[int]qos.Resources, links map[int]float64) error {
	l.lock()
	defer l.unlock()
	if _, ok := l.sessions[owner]; ok {
		return fmt.Errorf("state: session %d already committed", owner)
	}
	if prev, ok := l.migrations[owner]; ok {
		return fmt.Errorf("state: owner %d is migrating session %d; use MigrateSession", owner, prev)
	}
	l.releaseOwner(owner)
	for node, amount := range nodes {
		if !l.nodeAvailable(node).Covers(amount) {
			return fmt.Errorf("state: node %d cannot cover %v", node, amount)
		}
	}
	for link, bw := range links {
		if l.linkAvailable(link) < bw {
			return fmt.Errorf("state: link %d cannot cover %.1f kbps", link, bw)
		}
	}
	alloc := sessionAlloc{nodes: make(map[int]qos.Resources, len(nodes)), links: make(map[int]float64, len(links))}
	for node, amount := range nodes {
		l.nodes[node].committed = l.nodes[node].committed.Add(amount)
		alloc.nodes[node] = amount
		l.notifyNode(node)
	}
	for link, bw := range links {
		l.links[link].committed += bw
		alloc.links[link] = bw
		l.notifyLink(link)
	}
	l.sessions[owner] = alloc
	return nil
}

// ReleaseSession frees a committed session's resources when the
// application closes (§2.2 Close). Unknown sessions are ignored.
func (l *Ledger) ReleaseSession(owner Owner) {
	l.lock()
	defer l.unlock()
	alloc, ok := l.sessions[owner]
	if !ok {
		return
	}
	delete(l.sessions, owner)
	// A migration window over a session that closes underneath it loses
	// its reuse credit: the freed allocation more than covers whatever
	// the probe's overlapping holds were credited.
	for probe, session := range l.migrations {
		if session == owner {
			delete(l.migrations, probe)
		}
	}
	for node, amount := range alloc.nodes {
		l.nodes[node].committed = l.nodes[node].committed.Sub(amount)
		l.notifyNode(node)
	}
	for link, bw := range alloc.links {
		l.links[link].committed -= bw
		l.notifyLink(link)
	}
}

// ActiveSessions returns the number of committed sessions.
func (l *Ledger) ActiveSessions() int {
	l.lock()
	defer l.unlock()
	return len(l.sessions)
}

// HasSession reports whether owner has a committed session allocation.
func (l *Ledger) HasSession(owner Owner) bool {
	l.lock()
	defer l.unlock()
	_, ok := l.sessions[owner]
	return ok
}

// BeginMigration opens a make-before-break window: probe becomes a
// re-composition of the committed session, and until EndMigration or
// MigrateSession closes the window, probe's availability views and hold
// feasibility treat the session's committed allocation as reusable. A
// session can be re-composed by at most one probe at a time.
func (l *Ledger) BeginMigration(probe, session Owner) error {
	l.lock()
	defer l.unlock()
	if _, ok := l.sessions[session]; !ok {
		return fmt.Errorf("state: migration source session %d not committed", session)
	}
	if _, ok := l.sessions[probe]; ok {
		return fmt.Errorf("state: migration probe %d already owns a committed session", probe)
	}
	if prev, ok := l.migrations[probe]; ok {
		return fmt.Errorf("state: probe %d already migrating session %d", probe, prev)
	}
	for p, s := range l.migrations {
		if s == session {
			return fmt.Errorf("state: session %d already being migrated by probe %d", session, p)
		}
	}
	if l.migrations == nil {
		l.migrations = make(map[Owner]Owner)
	}
	l.migrations[probe] = session
	return nil
}

// EndMigration closes probe's migration window without flipping the
// session. The probe's transient holds, if any, are untouched — release
// them with ReleaseOwner (or let them expire). Unknown probes are
// ignored.
func (l *Ledger) EndMigration(probe Owner) {
	l.lock()
	defer l.unlock()
	delete(l.migrations, probe)
}

// MigrateSession atomically flips a committed session to the new shares
// reserved by its migration probe: the probe's transient holds are
// released, the old allocation is freed, the new per-node resources and
// per-link bandwidths are committed under the probe's owner ID, and the
// migration window closes. Feasibility of the post-flip state is checked
// before any mutation, so on error the window — and the holds protecting
// the new composition — survive for a retry or an abort. Conservation
// (Eqs. 4–5) holds at every observable point: the session is committed
// throughout, and the flip happens under one lock acquisition.
func (l *Ledger) MigrateSession(session, probe Owner, nodes map[int]qos.Resources, links map[int]float64) error {
	l.lock()
	defer l.unlock()
	old, ok := l.sessions[session]
	if !ok {
		return fmt.Errorf("state: migration source session %d not committed", session)
	}
	if l.migrations[probe] != session {
		return fmt.Errorf("state: probe %d is not migrating session %d", probe, session)
	}
	if _, ok := l.sessions[probe]; ok {
		return fmt.Errorf("state: session %d already committed", probe)
	}
	// Post-flip feasibility: with the old allocation freed and the
	// probe's holds released, every new share must fit. Keys are sorted
	// so error selection is deterministic.
	nodeIDs := make([]int, 0, len(nodes))
	for node := range nodes {
		nodeIDs = append(nodeIDs, node)
	}
	sort.Ints(nodeIDs)
	for _, node := range nodeIDs {
		if node < 0 || node >= len(l.nodes) {
			return fmt.Errorf("state: migration references node %d", node)
		}
		l.purgeNode(node)
		n := &l.nodes[node]
		avail := n.capacity.Sub(n.committed).Sub(n.held).Add(old.nodes[node]).Add(l.nodeHeldBy(probe, node))
		if !avail.Covers(nodes[node]) {
			return fmt.Errorf("state: node %d cannot cover %v post-flip", node, nodes[node])
		}
	}
	linkIDs := make([]int, 0, len(links))
	for link := range links {
		linkIDs = append(linkIDs, link)
	}
	sort.Ints(linkIDs)
	for _, link := range linkIDs {
		if link < 0 || link >= len(l.links) {
			return fmt.Errorf("state: migration references link %d", link)
		}
		l.purgeLink(link)
		lk := &l.links[link]
		if lk.capacity-lk.committed-lk.held+old.links[link]+l.linkHeldBy(probe, link) < links[link] {
			return fmt.Errorf("state: link %d cannot cover %.1f kbps post-flip", link, links[link])
		}
	}
	// Flip. Change observers fire once per touched node/link, after its
	// committed amount reaches the post-flip value.
	l.releaseOwner(probe)
	delete(l.migrations, probe)
	delete(l.sessions, session)
	alloc := sessionAlloc{nodes: make(map[int]qos.Resources, len(nodes)), links: make(map[int]float64, len(links))}
	for _, node := range nodeIDs {
		l.nodes[node].committed = l.nodes[node].committed.Add(nodes[node])
		alloc.nodes[node] = nodes[node]
	}
	oldNodeIDs := make([]int, 0, len(old.nodes))
	for node := range old.nodes {
		oldNodeIDs = append(oldNodeIDs, node)
	}
	sort.Ints(oldNodeIDs)
	for _, node := range oldNodeIDs {
		l.nodes[node].committed = l.nodes[node].committed.Sub(old.nodes[node])
	}
	for _, link := range linkIDs {
		l.links[link].committed += links[link]
		alloc.links[link] = links[link]
	}
	oldLinkIDs := make([]int, 0, len(old.links))
	for link := range old.links {
		oldLinkIDs = append(oldLinkIDs, link)
	}
	sort.Ints(oldLinkIDs)
	for _, link := range oldLinkIDs {
		l.links[link].committed -= old.links[link]
	}
	l.sessions[probe] = alloc
	for _, node := range mergedIDs(nodeIDs, oldNodeIDs) {
		l.notifyNode(node)
	}
	for _, link := range mergedIDs(linkIDs, oldLinkIDs) {
		l.notifyLink(link)
	}
	return nil
}

// mergedIDs unions two sorted ID slices, preserving order.
func mergedIDs(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	return out
}

// migrationNodeCredit returns the reusable committed share on node for
// an owner registered as a migration probe. Zero-cost when no migration
// is in flight.
func (l *Ledger) migrationNodeCredit(owner Owner, node int) (qos.Resources, bool) {
	if len(l.migrations) == 0 {
		return qos.Resources{}, false
	}
	session, ok := l.migrations[owner]
	if !ok {
		return qos.Resources{}, false
	}
	amount, ok := l.sessions[session].nodes[node]
	return amount, ok
}

// migrationLinkCredit is migrationNodeCredit for overlay links.
func (l *Ledger) migrationLinkCredit(owner Owner, link int) (float64, bool) {
	if len(l.migrations) == 0 {
		return 0, false
	}
	session, ok := l.migrations[owner]
	if !ok {
		return 0, false
	}
	bw, ok := l.sessions[session].links[link]
	return bw, ok
}

// nodeHeldBy sums owner's live transient holds on the node.
func (l *Ledger) nodeHeldBy(owner Owner, node int) qos.Resources {
	var sum qos.Resources
	for _, h := range l.nodes[node].holds {
		if h.owner == owner {
			sum = sum.Add(h.amount)
		}
	}
	return sum
}

// linkHeldBy sums owner's live transient holds on the overlay link.
func (l *Ledger) linkHeldBy(owner Owner, link int) float64 {
	sum := 0.0
	for _, h := range l.links[link].holds {
		if h.owner == owner {
			sum += h.amount
		}
	}
	return sum
}

// minRes is the componentwise minimum of two resource vectors.
func minRes(a, b qos.Resources) qos.Resources {
	return qos.Resources{CPU: math.Min(a.CPU, b.CPU), Memory: math.Min(a.Memory, b.Memory)}
}

func (l *Ledger) notifyNode(node int) {
	if l.onNodeChange != nil {
		l.onNodeChange(node)
	}
}

func (l *Ledger) notifyLink(link int) {
	if l.onLinkChange != nil {
		l.onLinkChange(link)
	}
}

// CheckInvariants verifies the ledger's internal consistency: per-node
// and per-link held totals match their hold lists, committed amounts
// equal the sum of session allocations, and nothing exceeds capacity.
// Tests call it after stochastic operation sequences.
func (l *Ledger) CheckInvariants() error {
	l.lock()
	defer l.unlock()
	committedNodes := make([]qos.Resources, len(l.nodes))
	committedLinks := make([]float64, len(l.links))
	for owner, alloc := range l.sessions {
		for node, amount := range alloc.nodes {
			if node < 0 || node >= len(l.nodes) {
				return fmt.Errorf("state: session %d references node %d", owner, node)
			}
			committedNodes[node] = committedNodes[node].Add(amount)
		}
		for link, bw := range alloc.links {
			if link < 0 || link >= len(l.links) {
				return fmt.Errorf("state: session %d references link %d", owner, link)
			}
			committedLinks[link] += bw
		}
	}
	for probe, session := range l.migrations {
		if _, ok := l.sessions[session]; !ok {
			return fmt.Errorf("state: migration probe %d references unknown session %d", probe, session)
		}
		if _, ok := l.sessions[probe]; ok {
			return fmt.Errorf("state: migration probe %d already owns a committed session", probe)
		}
	}
	const eps = 1e-6
	for i := range l.nodes {
		l.purgeNode(i)
		n := &l.nodes[i]
		var heldSum qos.Resources
		for _, h := range n.holds {
			heldSum = heldSum.Add(h.amount)
		}
		if d := heldSum.Sub(n.held); d.CPU > eps || d.CPU < -eps || d.Memory > eps || d.Memory < -eps {
			return fmt.Errorf("state: node %d held total %v != hold list sum %v", i, n.held, heldSum)
		}
		if d := committedNodes[i].Sub(n.committed); d.CPU > eps || d.CPU < -eps || d.Memory > eps || d.Memory < -eps {
			return fmt.Errorf("state: node %d committed %v != session sum %v", i, n.committed, committedNodes[i])
		}
		// A migration probe's holds legitimately overlap its source
		// session's committed share (make-before-break); credit that
		// overlap before the over-allocation check.
		var credit qos.Resources
		for probe, session := range l.migrations {
			if amount, ok := l.sessions[session].nodes[i]; ok {
				credit = credit.Add(minRes(amount, l.nodeHeldBy(probe, i)))
			}
		}
		if avail := n.capacity.Sub(n.committed).Sub(n.held).Add(credit); avail.CPU < -eps || avail.Memory < -eps {
			return fmt.Errorf("state: node %d over-allocated: available %v", i, avail)
		}
	}
	for i := range l.links {
		l.purgeLink(i)
		lk := &l.links[i]
		heldSum := 0.0
		for _, h := range lk.holds {
			heldSum += h.amount
		}
		if d := heldSum - lk.held; d > eps || d < -eps {
			return fmt.Errorf("state: link %d held total %v != hold list sum %v", i, lk.held, heldSum)
		}
		if d := committedLinks[i] - lk.committed; d > eps || d < -eps {
			return fmt.Errorf("state: link %d committed %v != session sum %v", i, lk.committed, committedLinks[i])
		}
		credit := 0.0
		for probe, session := range l.migrations {
			if bw, ok := l.sessions[session].links[i]; ok {
				credit += math.Min(bw, l.linkHeldBy(probe, i))
			}
		}
		if avail := lk.capacity - lk.committed - lk.held + credit; avail < -eps {
			return fmt.Errorf("state: link %d over-allocated: available %v", i, avail)
		}
	}
	return nil
}
