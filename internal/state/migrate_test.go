package state

import (
	"strings"
	"testing"
	"time"

	"repro/internal/qos"
)

// commitTestSession commits a session with the given per-node and
// per-link shares, failing the test on error.
func commitTestSession(t *testing.T, l *Ledger, owner Owner, nodes map[int]qos.Resources, links map[int]float64) {
	t.Helper()
	if err := l.CommitSession(owner, nodes, links); err != nil {
		t.Fatalf("commit session %d: %v", owner, err)
	}
}

func TestBeginMigrationValidation(t *testing.T) {
	l, _, _ := newTestLedger(t)
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 10, Memory: 100}}, nil)
	commitTestSession(t, l, 2, map[int]qos.Resources{1: {CPU: 10, Memory: 100}}, nil)

	if err := l.BeginMigration(100, 99); err == nil {
		t.Fatal("migration of uncommitted session accepted")
	}
	if err := l.BeginMigration(2, 1); err == nil {
		t.Fatal("probe that owns a committed session accepted")
	}
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatalf("begin migration: %v", err)
	}
	if err := l.BeginMigration(100, 2); err == nil {
		t.Fatal("probe registered twice")
	}
	if err := l.BeginMigration(101, 1); err == nil {
		t.Fatal("session migrated by two probes")
	}
	l.EndMigration(100)
	if err := l.BeginMigration(101, 1); err != nil {
		t.Fatalf("begin after end: %v", err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationCreditsSessionAllocation(t *testing.T) {
	l, _, _ := newTestLedger(t)
	// Node 0 is nearly full: session 1 owns 90 of 100 CPU.
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 90, Memory: 900}}, nil)
	free := l.NodeAvailableFor(100, 0)

	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	// The probe's view credits the session's committed share back...
	if got := l.NodeAvailableFor(100, 0); got != free.Add(qos.Resources{CPU: 90, Memory: 900}) {
		t.Fatalf("probe view = %v, want committed share credited onto %v", got, free)
	}
	// ...while every other owner still sees the precise residual.
	if got := l.NodeAvailableFor(200, 0); got != free {
		t.Fatalf("bystander view = %v, want %v", got, free)
	}
	// A bystander competes only for the true residual.
	expiry := time.Hour
	if ok := l.HoldNode(200, 0, 0, qos.Resources{CPU: 10, Memory: 10}, expiry); !ok {
		t.Fatal("bystander hold within residual rejected")
	}
	// The probe can hold resources the raw residual could not cover.
	if ok := l.HoldNode(100, 0, 0, qos.Resources{CPU: 50, Memory: 500}, expiry); !ok {
		t.Fatal("hold within reuse credit rejected")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// But the credit is applied once: holds beyond credit + residual fail.
	if ok := l.HoldNode(100, 1, 0, qos.Resources{CPU: 55, Memory: 10}, expiry); ok {
		t.Fatal("hold beyond reuse credit + residual accepted")
	}
	// With the reused share double-booked, the true residual is gone.
	if ok := l.HoldNode(200, 1, 0, qos.Resources{CPU: 20, Memory: 10}, expiry); ok {
		t.Fatal("bystander hold into reused share accepted")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationLinkCredit(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	link := 0
	cap0 := mesh.Link(link).Capacity
	commitTestSession(t, l, 1, nil, map[int]float64{link: cap0 * 0.9})
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	if got, want := l.LinkAvailableFor(100, link), cap0; got < want-1e-9 {
		t.Fatalf("probe link view = %v, want ~%v", got, want)
	}
	if ok := l.HoldLink(100, 0, link, cap0*0.8, time.Hour); !ok {
		t.Fatal("link hold within reuse credit rejected")
	}
	if ok := l.HoldLink(200, 0, link, cap0*0.2, time.Hour); ok {
		t.Fatal("bystander link hold into reused share accepted")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateSessionFlip(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	bw0 := mesh.Link(0).Capacity * 0.5
	bw1 := mesh.Link(1).Capacity * 0.5
	oldNodes := map[int]qos.Resources{0: {CPU: 60, Memory: 600}, 1: {CPU: 30, Memory: 300}}
	oldLinks := map[int]float64{0: bw0}
	commitTestSession(t, l, 1, oldNodes, oldLinks)
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	// New composition partially overlaps the old one (node 0 reused).
	newNodes := map[int]qos.Resources{0: {CPU: 60, Memory: 600}, 2: {CPU: 30, Memory: 300}}
	newLinks := map[int]float64{1: bw1}
	expiry := time.Hour
	for node, amount := range newNodes {
		if ok := l.HoldNode(100, node, node, amount, expiry); !ok {
			t.Fatalf("hold on node %d rejected", node)
		}
	}
	for link, bw := range newLinks {
		if ok := l.HoldLink(100, link, link, bw, expiry); !ok {
			t.Fatalf("hold on link %d rejected", link)
		}
	}
	// Mid-window: conservation holds with both the committed old
	// allocation and the overlapping holds live.
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("mid-migration: %v", err)
	}
	if got := l.ActiveSessions(); got != 1 {
		t.Fatalf("mid-migration sessions = %d", got)
	}

	if err := l.MigrateSession(1, 100, newNodes, newLinks); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("post-flip: %v", err)
	}
	// The session is now owned by the probe ID; the old owner is gone.
	if l.HasSession(1) {
		t.Fatal("old owner still committed")
	}
	if !l.HasSession(100) {
		t.Fatal("new owner not committed")
	}
	// Old-only resources freed, new-only committed, shared unchanged.
	if got := l.NodeCommittedAvailable(1); got != l.NodeCapacity(1) {
		t.Fatalf("node 1 not freed: %v", got)
	}
	want := l.NodeCapacity(2).Sub(qos.Resources{CPU: 30, Memory: 300})
	if got := l.NodeCommittedAvailable(2); got != want {
		t.Fatalf("node 2 committed available = %v, want %v", got, want)
	}
	want0 := l.NodeCapacity(0).Sub(qos.Resources{CPU: 60, Memory: 600})
	if got := l.NodeCommittedAvailable(0); got != want0 {
		t.Fatalf("node 0 committed available = %v, want %v", got, want0)
	}
	if got := l.LinkCommittedAvailable(0); got != l.LinkCapacity(0) {
		t.Fatalf("link 0 not freed: %v", got)
	}
	if got, want := l.LinkCommittedAvailable(1), l.LinkCapacity(1)-bw1; got != want {
		t.Fatalf("link 1 committed available = %v, want %v", got, want)
	}
	// No transient holds survive the flip.
	if got := l.NodeAvailable(0); got != want0 {
		t.Fatalf("node 0 precise available = %v, want %v (holds released)", got, want0)
	}
	// Releasing the migrated session frees everything.
	l.ReleaseSession(100)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := l.NodeCommittedAvailable(0); got != l.NodeCapacity(0) {
		t.Fatalf("node 0 not freed after release: %v", got)
	}
}

func TestMigrateSessionFailureKeepsWindow(t *testing.T) {
	l, _, _ := newTestLedger(t)
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 50, Memory: 500}}, nil)
	// Another session fills node 1 so the flip below cannot fit.
	commitTestSession(t, l, 2, map[int]qos.Resources{1: {CPU: 100, Memory: 1000}}, nil)
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	err := l.MigrateSession(1, 100, map[int]qos.Resources{1: {CPU: 50, Memory: 500}}, nil)
	if err == nil {
		t.Fatal("infeasible flip accepted")
	}
	if !strings.Contains(err.Error(), "node 1") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The window survives for a retry; the old session is untouched.
	if !l.HasSession(1) {
		t.Fatal("source session lost on failed flip")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mismatched (session, probe) pairs are rejected.
	if err := l.MigrateSession(2, 100, nil, nil); err == nil {
		t.Fatal("mismatched migration pair accepted")
	}
	// Abort path: end the window, release the probe's holds.
	l.EndMigration(100)
	l.ReleaseOwner(100)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitSessionRefusesMigratingOwner(t *testing.T) {
	l, _, _ := newTestLedger(t)
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 10, Memory: 100}}, nil)
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	err := l.CommitSession(100, map[int]qos.Resources{1: {CPU: 10, Memory: 100}}, nil)
	if err == nil || !strings.Contains(err.Error(), "MigrateSession") {
		t.Fatalf("plain commit during migration window: err = %v", err)
	}
}

func TestReleaseSessionDropsMigrationWindow(t *testing.T) {
	l, _, _ := newTestLedger(t)
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 90, Memory: 900}}, nil)
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	if ok := l.HoldNode(100, 0, 0, qos.Resources{CPU: 80, Memory: 800}, time.Hour); !ok {
		t.Fatal("hold within credit rejected")
	}
	// The session closes underneath the open window.
	l.ReleaseSession(1)
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("after release under window: %v", err)
	}
	// Credit is gone: the probe now competes for the true residual.
	if got, want := l.NodeAvailableFor(100, 0), l.NodeCapacity(0); got != want {
		t.Fatalf("probe view = %v, want %v (own hold credited, no reuse)", got, want)
	}
	// The flip can no longer happen.
	if err := l.MigrateSession(1, 100, map[int]qos.Resources{0: {CPU: 80, Memory: 800}}, nil); err == nil {
		t.Fatal("flip of released session accepted")
	}
	l.ReleaseOwner(100)
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationExpiredHoldsLoseProtection(t *testing.T) {
	l, clk, _ := newTestLedger(t)
	commitTestSession(t, l, 1, map[int]qos.Resources{0: {CPU: 90, Memory: 900}}, nil)
	if err := l.BeginMigration(100, 1); err != nil {
		t.Fatal(err)
	}
	if ok := l.HoldNode(100, 0, 0, qos.Resources{CPU: 50, Memory: 500}, 10*time.Second); !ok {
		t.Fatal("hold rejected")
	}
	clk.now = 11 * time.Second
	// The hold expired; the probe's view still credits the committed
	// share, and invariants hold with the window open.
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := l.NodeAvailableFor(100, 0), l.NodeCapacity(0); got != want {
		t.Fatalf("probe view after expiry = %v, want %v", got, want)
	}
	l.EndMigration(100)
}
