package state

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/topology"
)

func benchLedger(b *testing.B) (*Ledger, *clock) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 800
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = 100
	mesh, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	clk := &clock{}
	return NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now), clk
}

// BenchmarkHoldRelease measures the transient allocation cycle — the
// hottest ledger path during probing.
func BenchmarkHoldRelease(b *testing.B) {
	l, _ := benchLedger(b)
	req := qos.Resources{CPU: 10, Memory: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := Owner(i)
		node := i % l.NumNodes()
		if !l.HoldNode(owner, 0, node, req, time.Hour) {
			b.Fatal("hold rejected")
		}
		l.ReleaseOwner(owner)
	}
}

// BenchmarkNodeAvailable measures the precise local-state read probes
// perform at every hop.
func BenchmarkNodeAvailable(b *testing.B) {
	l, _ := benchLedger(b)
	for i := 0; i < 50; i++ {
		l.HoldNode(Owner(i), 0, i%l.NumNodes(), qos.Resources{CPU: 1, Memory: 1}, time.Hour)
	}
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += l.NodeAvailable(i % l.NumNodes()).CPU
	}
	_ = sink
}

// BenchmarkCommitRelease measures the session lifecycle.
func BenchmarkCommitRelease(b *testing.B) {
	l, _ := benchLedger(b)
	nodes := map[int]qos.Resources{3: {CPU: 10, Memory: 50}, 7: {CPU: 5, Memory: 20}}
	links := map[int]float64{0: 100, 1: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		owner := Owner(i)
		if err := l.CommitSession(owner, nodes, links); err != nil {
			b.Fatal(err)
		}
		l.ReleaseSession(owner)
	}
}
