package state

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/topology"
)

func testMesh(t *testing.T, overlayNodes int, seed int64) *overlay.Mesh {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 300
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = overlayNodes
	m, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type clock struct{ now time.Duration }

func (c *clock) Now() time.Duration { return c.now }

func newTestLedger(t *testing.T) (*Ledger, *clock, *overlay.Mesh) {
	t.Helper()
	mesh := testMesh(t, 20, 1)
	clk := &clock{}
	l := NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now)
	return l, clk, mesh
}

func TestLedgerInitialAvailability(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	want := qos.Resources{CPU: 100, Memory: 1000}
	for n := 0; n < l.NumNodes(); n++ {
		if got := l.NodeAvailable(n); got != want {
			t.Fatalf("node %d available = %v, want %v", n, got, want)
		}
	}
	for id := 0; id < l.NumLinks(); id++ {
		if got := l.LinkAvailable(id); got != mesh.Link(id).Capacity {
			t.Fatalf("link %d available = %v, want %v", id, got, mesh.Link(id).Capacity)
		}
	}
}

func TestHoldNodeLifecycle(t *testing.T) {
	l, clk, _ := newTestLedger(t)
	req := qos.Resources{CPU: 30, Memory: 100}

	if !l.HoldNode(1, 0, 0, req, 10*time.Second) {
		t.Fatal("hold rejected with plenty of capacity")
	}
	if got := l.NodeAvailable(0); got != (qos.Resources{CPU: 70, Memory: 900}) {
		t.Errorf("available after hold = %v", got)
	}
	// Idempotent per owner (footnote 7).
	if !l.HoldNode(1, 0, 0, req, 10*time.Second) {
		t.Fatal("repeat hold by same owner rejected")
	}
	if got := l.NodeAvailable(0); got != (qos.Resources{CPU: 70, Memory: 900}) {
		t.Errorf("available after duplicate hold = %v", got)
	}
	// A different owner stacks.
	if !l.HoldNode(2, 0, 0, req, 10*time.Second) {
		t.Fatal("second owner's hold rejected")
	}
	if got := l.NodeAvailable(0); got != (qos.Resources{CPU: 40, Memory: 800}) {
		t.Errorf("available after two holds = %v", got)
	}
	// Expiry restores capacity.
	clk.now = 11 * time.Second
	if got := l.NodeAvailable(0); got != (qos.Resources{CPU: 100, Memory: 1000}) {
		t.Errorf("available after expiry = %v", got)
	}
}

func TestHoldNodeInsufficient(t *testing.T) {
	l, _, _ := newTestLedger(t)
	if l.HoldNode(1, 0, 0, qos.Resources{CPU: 101}, time.Second) {
		t.Error("hold above capacity accepted")
	}
	if !l.HoldNode(1, 0, 0, qos.Resources{CPU: 60}, time.Second) {
		t.Fatal("first hold rejected")
	}
	if l.HoldNode(2, 0, 0, qos.Resources{CPU: 60}, time.Second) {
		t.Error("conflicting hold accepted — transient allocation failed to prevent over-admission")
	}
}

func TestHoldLinkLifecycle(t *testing.T) {
	l, clk, mesh := newTestLedger(t)
	capacity := mesh.Link(0).Capacity
	if !l.HoldLink(1, 0, 0, capacity-1, 5*time.Second) {
		t.Fatal("link hold rejected")
	}
	if l.HoldLink(2, 0, 0, 2, 5*time.Second) {
		t.Error("over-capacity link hold accepted")
	}
	if !l.HoldLink(1, 0, 0, 2, 5*time.Second) {
		t.Error("idempotent link hold rejected")
	}
	clk.now = 6 * time.Second
	if got := l.LinkAvailable(0); got != capacity {
		t.Errorf("link available after expiry = %v, want %v", got, capacity)
	}
}

func TestReleaseOwner(t *testing.T) {
	l, _, _ := newTestLedger(t)
	l.HoldNode(1, 0, 0, qos.Resources{CPU: 10}, time.Minute)
	l.HoldNode(1, 1, 1, qos.Resources{CPU: 20}, time.Minute)
	l.HoldLink(1, 0, 0, 100, time.Minute)
	l.HoldNode(2, 0, 0, qos.Resources{CPU: 5}, time.Minute)

	l.ReleaseOwner(1)
	if got := l.NodeAvailable(0); got.CPU != 95 {
		t.Errorf("node 0 CPU = %v, want 95 (owner 2's hold kept)", got.CPU)
	}
	if got := l.NodeAvailable(1); got.CPU != 100 {
		t.Errorf("node 1 CPU = %v, want 100", got.CPU)
	}
	if got := l.LinkAvailable(0); got != l.LinkCapacity(0) {
		t.Errorf("link 0 available = %v, want full capacity", got)
	}
}

func TestCommitSessionPromotesHolds(t *testing.T) {
	l, clk, _ := newTestLedger(t)
	req := qos.Resources{CPU: 40, Memory: 200}
	if !l.HoldNode(7, 0, 3, req, 10*time.Second) {
		t.Fatal("hold rejected")
	}
	err := l.CommitSession(7, map[int]qos.Resources{3: req}, map[int]float64{0: 50})
	if err != nil {
		t.Fatalf("CommitSession: %v", err)
	}
	if got := l.ActiveSessions(); got != 1 {
		t.Errorf("ActiveSessions = %d", got)
	}
	// Holds are gone; committed allocation persists past hold expiry.
	clk.now = time.Minute
	if got := l.NodeAvailable(3); got != (qos.Resources{CPU: 60, Memory: 800}) {
		t.Errorf("available after commit = %v", got)
	}
	if got := l.LinkAvailable(0); got != l.LinkCapacity(0)-50 {
		t.Errorf("link available after commit = %v", got)
	}
	// Session release restores everything.
	l.ReleaseSession(7)
	if got := l.NodeAvailable(3); got != (qos.Resources{CPU: 100, Memory: 1000}) {
		t.Errorf("available after release = %v", got)
	}
	if got := l.ActiveSessions(); got != 0 {
		t.Errorf("ActiveSessions after release = %d", got)
	}
}

func TestCommitSessionFailures(t *testing.T) {
	l, _, _ := newTestLedger(t)
	if err := l.CommitSession(1, map[int]qos.Resources{0: {CPU: 101}}, nil); err == nil {
		t.Error("over-capacity node commit accepted")
	}
	if err := l.CommitSession(2, nil, map[int]float64{0: l.LinkCapacity(0) + 1}); err == nil {
		t.Error("over-capacity link commit accepted")
	}
	if err := l.CommitSession(3, map[int]qos.Resources{0: {CPU: 10}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitSession(3, map[int]qos.Resources{0: {CPU: 10}}, nil); err == nil {
		t.Error("duplicate session commit accepted")
	}
}

func TestCommitUsesOwnHeldResources(t *testing.T) {
	// A request that held almost everything must still be able to commit:
	// its own holds are released first.
	l, _, _ := newTestLedger(t)
	req := qos.Resources{CPU: 90, Memory: 900}
	if !l.HoldNode(5, 0, 2, req, time.Minute) {
		t.Fatal("hold rejected")
	}
	if err := l.CommitSession(5, map[int]qos.Resources{2: req}, nil); err != nil {
		t.Fatalf("commit after own hold failed: %v", err)
	}
}

func TestReleaseUnknownSession(t *testing.T) {
	l, _, _ := newTestLedger(t)
	l.ReleaseSession(99) // must not panic or change state
	if got := l.NodeAvailable(0); got.CPU != 100 {
		t.Errorf("available changed: %v", got)
	}
}

func TestRouteAvailable(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	r, ok := mesh.RouteBetween(0, 5)
	if !ok {
		t.Fatal("no route")
	}
	want := math.Inf(1)
	for _, id := range r.Links {
		want = math.Min(want, l.LinkAvailable(id))
	}
	if got := l.RouteAvailable(r); got != want {
		t.Errorf("RouteAvailable = %v, want %v", got, want)
	}
	// Consume bandwidth on the first link; route availability drops.
	first := r.Links[0]
	if err := l.CommitSession(1, nil, map[int]float64{first: l.LinkAvailable(first) - 10}); err != nil {
		t.Fatal(err)
	}
	if got := l.RouteAvailable(r); got != 10 {
		t.Errorf("RouteAvailable after drain = %v, want 10", got)
	}
	// Co-located route is infinite.
	self, _ := mesh.RouteBetween(3, 3)
	if got := l.RouteAvailable(self); !math.IsInf(got, 1) {
		t.Errorf("co-located RouteAvailable = %v, want +Inf", got)
	}
}

// TestConservation: whatever combination of holds, commits, releases and
// expiries happens, capacity is never exceeded and fully returns after
// everything is released.
func TestConservation(t *testing.T) {
	l, clk, _ := newTestLedger(t)
	rng := rand.New(rand.NewSource(42))
	committed := make(map[Owner]bool)
	for step := 0; step < 2000; step++ {
		clk.now += time.Duration(rng.Intn(500)) * time.Millisecond
		owner := Owner(rng.Intn(20))
		node := rng.Intn(l.NumNodes())
		switch rng.Intn(4) {
		case 0:
			l.HoldNode(owner, rng.Intn(3), node, qos.Resources{CPU: float64(rng.Intn(50)), Memory: float64(rng.Intn(400))},
				clk.now+time.Duration(rng.Intn(2000))*time.Millisecond)
		case 1:
			if !committed[owner] {
				amount := qos.Resources{CPU: float64(rng.Intn(30)), Memory: float64(rng.Intn(200))}
				if err := l.CommitSession(owner, map[int]qos.Resources{node: amount}, nil); err == nil {
					committed[owner] = true
				}
			}
		case 2:
			if committed[owner] {
				l.ReleaseSession(owner)
				delete(committed, owner)
			}
		case 3:
			l.ReleaseOwner(owner)
		}
		if got := l.NodeAvailable(node); got.CPU < 0 || got.Memory < 0 {
			t.Fatalf("step %d: node %d over-committed: %v", step, node, got)
		}
	}
	for o := range committed {
		l.ReleaseSession(o)
	}
	clk.now += time.Hour // expire all holds
	for n := 0; n < l.NumNodes(); n++ {
		if got := l.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d did not return to full capacity: %v", n, got)
		}
	}
}

func TestAvailableForCreditsOwnHolds(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	if !l.HoldNode(9, 0, 4, qos.Resources{CPU: 30, Memory: 300}, time.Minute) {
		t.Fatal("hold rejected")
	}
	if !l.HoldNode(9, 1, 4, qos.Resources{CPU: 20, Memory: 100}, time.Minute) {
		t.Fatal("second hold rejected")
	}
	if !l.HoldNode(8, 0, 4, qos.Resources{CPU: 10, Memory: 50}, time.Minute) {
		t.Fatal("other owner's hold rejected")
	}
	// Plain availability excludes everything.
	if got := l.NodeAvailable(4); got != (qos.Resources{CPU: 40, Memory: 550}) {
		t.Errorf("NodeAvailable = %v", got)
	}
	// Owner 9 sees its own 50 CPU / 400 MB credited back.
	if got := l.NodeAvailableFor(9, 4); got != (qos.Resources{CPU: 90, Memory: 950}) {
		t.Errorf("NodeAvailableFor(9) = %v", got)
	}
	// Owner 8 sees only its own 10/50 back.
	if got := l.NodeAvailableFor(8, 4); got != (qos.Resources{CPU: 50, Memory: 600}) {
		t.Errorf("NodeAvailableFor(8) = %v", got)
	}

	if !l.HoldLink(9, 0, 0, 500, time.Minute) {
		t.Fatal("link hold rejected")
	}
	if got := l.LinkAvailableFor(9, 0); got != l.LinkCapacity(0) {
		t.Errorf("LinkAvailableFor = %v, want full capacity", got)
	}
	if got := l.LinkAvailableFor(7, 0); got != l.LinkCapacity(0)-500 {
		t.Errorf("LinkAvailableFor(other) = %v", got)
	}
	r := overlay.Route{Links: []int{0}}
	if got := l.RouteAvailableFor(9, r); got != l.LinkCapacity(0) {
		t.Errorf("RouteAvailableFor = %v", got)
	}
	self, _ := mesh.RouteBetween(2, 2)
	if got := l.RouteAvailableFor(9, self); !math.IsInf(got, 1) {
		t.Errorf("co-located RouteAvailableFor = %v", got)
	}
}

func TestCheckInvariantsUnderStochasticOps(t *testing.T) {
	l, clk, mesh := newTestLedger(t)
	rng := rand.New(rand.NewSource(77))
	committed := make(map[Owner]bool)
	for step := 0; step < 3000; step++ {
		clk.now += time.Duration(rng.Intn(300)) * time.Millisecond
		owner := Owner(rng.Intn(25))
		node := rng.Intn(l.NumNodes())
		link := rng.Intn(l.NumLinks())
		switch rng.Intn(6) {
		case 0:
			l.HoldNode(owner, rng.Intn(4), node,
				qos.Resources{CPU: float64(rng.Intn(40)), Memory: float64(rng.Intn(300))},
				clk.now+time.Duration(rng.Intn(3000))*time.Millisecond)
		case 1:
			l.HoldLink(owner, rng.Intn(4), link, float64(rng.Intn(2000)),
				clk.now+time.Duration(rng.Intn(3000))*time.Millisecond)
		case 2:
			if !committed[owner] {
				nodes := map[int]qos.Resources{node: {CPU: float64(rng.Intn(25)), Memory: float64(rng.Intn(150))}}
				links := map[int]float64{link: float64(rng.Intn(1000))}
				if err := l.CommitSession(owner, nodes, links); err == nil {
					committed[owner] = true
				}
			}
		case 3:
			if committed[owner] {
				l.ReleaseSession(owner)
				delete(committed, owner)
			}
		case 4:
			l.ReleaseOwner(owner)
		case 5:
			// Pure time passage expires holds.
			clk.now += time.Duration(rng.Intn(2000)) * time.Millisecond
		}
		if step%100 == 0 {
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = mesh
}
