package state

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/qos"
)

func newTestGlobal(t *testing.T) (*Global, *Ledger, *clock, *metrics.Counters) {
	t.Helper()
	mesh := testMesh(t, 20, 2)
	clk := &clock{}
	l := NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now)
	var c metrics.Counters
	g, err := NewGlobal(l, mesh, DefaultGlobalConfig(), &c)
	if err != nil {
		t.Fatal(err)
	}
	return g, l, clk, &c
}

func TestNewGlobalValidation(t *testing.T) {
	mesh := testMesh(t, 10, 3)
	clk := &clock{}
	l := NewLedger(mesh, qos.Resources{CPU: 1}, clk.Now)
	bad := DefaultGlobalConfig()
	bad.UpdateThreshold = 1
	if _, err := NewGlobal(l, mesh, bad, nil); err == nil {
		t.Error("threshold 1 accepted")
	}
	bad = DefaultGlobalConfig()
	bad.AggregationPeriod = 0
	if _, err := NewGlobal(l, mesh, bad, nil); err == nil {
		t.Error("zero aggregation period accepted")
	}
	if _, err := NewGlobal(l, mesh, DefaultGlobalConfig(), nil); err != nil {
		t.Errorf("nil counters rejected: %v", err)
	}
}

func TestGlobalThresholdFiltering(t *testing.T) {
	g, l, _, c := newTestGlobal(t)

	// A small commit (5% of CPU, 2% of memory) stays below the 10%
	// threshold: the view must NOT update.
	if err := l.CommitSession(1, map[int]qos.Resources{0: {CPU: 5, Memory: 20}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.NodeAvailable(0); got != (qos.Resources{CPU: 100, Memory: 1000}) {
		t.Errorf("view updated for insignificant change: %v", got)
	}
	if c.StateUpdates != 0 {
		t.Errorf("StateUpdates = %d, want 0", c.StateUpdates)
	}

	// A further commit pushing total drift past 10% triggers an update.
	if err := l.CommitSession(2, map[int]qos.Resources{0: {CPU: 7}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.NodeAvailable(0); got != (qos.Resources{CPU: 88, Memory: 980}) {
		t.Errorf("view after significant change = %v, want fresh truth", got)
	}
	if c.StateUpdates != 1 {
		t.Errorf("StateUpdates = %d, want 1", c.StateUpdates)
	}
}

func TestGlobalLinkThresholdAndAggregation(t *testing.T) {
	g, l, _, c := newTestGlobal(t)
	capacity := l.LinkCapacity(0)

	// Drain 50% of link 0: triggers a report, but virtual-link queries
	// still see the stale aggregation snapshot.
	if err := l.CommitSession(1, nil, map[int]float64{0: capacity / 2}); err != nil {
		t.Fatal(err)
	}
	if c.StateUpdates != 1 {
		t.Fatalf("StateUpdates = %d, want 1", c.StateUpdates)
	}
	lk := g.mesh.Link(0)
	route, ok := g.mesh.RouteBetween(lk.A, lk.B)
	if !ok {
		t.Fatal("no route between link endpoints")
	}
	// The direct route may or may not use link 0; query it via a
	// hand-built route to pin the link.
	pinned := route
	pinned.Links = []int{0}
	if got := g.RouteAvailable(pinned); got != capacity {
		t.Errorf("pre-aggregation RouteAvailable = %v, want stale %v", got, capacity)
	}

	g.Aggregate()
	if got := g.RouteAvailable(pinned); got != capacity/2 {
		t.Errorf("post-aggregation RouteAvailable = %v, want %v", got, capacity/2)
	}
	if c.Aggregations != int64(g.mesh.NumNodes()) {
		t.Errorf("Aggregations = %d, want %d", c.Aggregations, g.mesh.NumNodes())
	}
}

func TestGlobalIgnoresTransientHolds(t *testing.T) {
	g, l, _, c := newTestGlobal(t)
	// Large transient hold: the coarse state must not hear about it.
	if !l.HoldNode(1, 0, 0, qos.Resources{CPU: 90, Memory: 900}, time.Minute) {
		t.Fatal("hold rejected")
	}
	if got := g.NodeAvailable(0); got != (qos.Resources{CPU: 100, Memory: 1000}) {
		t.Errorf("global view saw a transient hold: %v", got)
	}
	if c.StateUpdates != 0 {
		t.Errorf("StateUpdates = %d, want 0", c.StateUpdates)
	}
}

func TestGlobalSessionReleaseTriggersUpdate(t *testing.T) {
	g, l, _, _ := newTestGlobal(t)
	if err := l.CommitSession(1, map[int]qos.Resources{3: {CPU: 50, Memory: 500}}, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.NodeAvailable(3).CPU; got != 50 {
		t.Fatalf("view after commit = %v", got)
	}
	l.ReleaseSession(1)
	if got := g.NodeAvailable(3).CPU; got != 100 {
		t.Errorf("view after release = %v, want 100", got)
	}
}

func TestAggregationRotation(t *testing.T) {
	g, _, _, _ := newTestGlobal(t)
	first := g.AggregationNode()
	g.Aggregate()
	second := g.AggregationNode()
	if first == second {
		t.Errorf("aggregation role did not rotate: %d -> %d", first, second)
	}
	for i := 0; i < g.mesh.NumNodes(); i++ {
		g.Aggregate()
	}
	if g.AggregationNode() != second {
		t.Errorf("rotation is not round-robin")
	}
}

func TestForceRefresh(t *testing.T) {
	g, l, _, _ := newTestGlobal(t)
	// Small (sub-threshold) commits leave the view stale...
	if err := l.CommitSession(1, map[int]qos.Resources{0: {CPU: 5}}, map[int]float64{0: 1}); err != nil {
		t.Fatal(err)
	}
	if g.NodeAvailable(0).CPU != 100 {
		t.Fatal("unexpected eager update")
	}
	// ...until a forced refresh exposes the truth everywhere.
	g.ForceRefresh()
	if got := g.NodeAvailable(0).CPU; got != 95 {
		t.Errorf("CPU after refresh = %v, want 95", got)
	}
	route := overlay.Route{Links: []int{0}}
	if got := g.RouteAvailable(route); got != l.LinkCapacity(0)-1 {
		t.Errorf("link view after refresh = %v, want %v", got, l.LinkCapacity(0)-1)
	}
}

func TestRouteAvailableCoLocated(t *testing.T) {
	g, _, _, _ := newTestGlobal(t)
	r, _ := g.mesh.RouteBetween(4, 4)
	if got := g.RouteAvailable(r); !math.IsInf(got, 1) {
		t.Errorf("co-located RouteAvailable = %v, want +Inf", got)
	}
}
