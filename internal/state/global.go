package state

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/qos"
)

// GlobalConfig controls the coarse-grain global state maintenance rules
// of §3.2.
type GlobalConfig struct {
	// UpdateThreshold is the fraction of a metric's maximum value a node
	// or link state must drift before a global update is triggered. The
	// paper's experiments use 10%.
	UpdateThreshold float64
	// AggregationPeriod is how often the aggregation node recomputes the
	// virtual-link states between all node pairs (paper example: 10 min).
	AggregationPeriod time.Duration
}

// DefaultGlobalConfig mirrors the paper's simulation settings.
func DefaultGlobalConfig() GlobalConfig {
	return GlobalConfig{
		UpdateThreshold:   0.10,
		AggregationPeriod: 10 * time.Minute,
	}
}

// Global is the coarse-grain global state: every node's and overlay
// link's last *reported* resource availability, plus a periodically
// aggregated snapshot used for virtual-link queries.
//
// Reported values update only when the true committed availability drifts
// more than UpdateThreshold of the metric's capacity from the last report,
// filtering out insignificant variations (§3.2). Virtual-link bandwidth
// queries use the aggregation snapshot, which is stale up to a full
// AggregationPeriod — the price of scalable state maintenance that the
// probes' precise on-path measurements compensate for.
type Global struct {
	cfg    GlobalConfig
	ledger *Ledger
	mesh   *overlay.Mesh

	nodeView []qos.Resources // last threshold-triggered node reports
	linkView []float64       // last threshold-triggered link reports
	aggView  []float64       // link view frozen at the last aggregation

	aggNode  int // rotating aggregation role (§3.2, round robin)
	counters *metrics.Counters

	// mu, when non-nil, guards the view slices for concurrent readers
	// against observer-driven updates. The lock order is always ledger
	// before global: observers fire under the ledger lock and then take
	// this one, so nothing here may call back into locked ledger methods
	// while holding it.
	mu *sync.RWMutex
}

// EnableLocking makes the global state safe for concurrent use alongside
// Ledger.EnableLocking. Idempotent; cannot be undone.
func (g *Global) EnableLocking() {
	if g.mu == nil {
		g.mu = new(sync.RWMutex)
	}
}

func (g *Global) rlock() {
	if g.mu != nil {
		g.mu.RLock()
	}
}

func (g *Global) runlock() {
	if g.mu != nil {
		g.mu.RUnlock()
	}
}

func (g *Global) wlock() {
	if g.mu != nil {
		g.mu.Lock()
	}
}

func (g *Global) wunlock() {
	if g.mu != nil {
		g.mu.Unlock()
	}
}

// NewGlobal wires a global state to the ledger and subscribes to its
// change notifications. Counters may be nil when overhead accounting is
// not needed.
func NewGlobal(ledger *Ledger, mesh *overlay.Mesh, cfg GlobalConfig, counters *metrics.Counters) (*Global, error) {
	if cfg.UpdateThreshold < 0 || cfg.UpdateThreshold >= 1 {
		return nil, fmt.Errorf("state: UpdateThreshold %v out of [0,1)", cfg.UpdateThreshold)
	}
	if cfg.AggregationPeriod <= 0 {
		return nil, fmt.Errorf("state: AggregationPeriod %v <= 0", cfg.AggregationPeriod)
	}
	if counters == nil {
		counters = &metrics.Counters{}
	}
	g := &Global{
		cfg:      cfg,
		ledger:   ledger,
		mesh:     mesh,
		nodeView: make([]qos.Resources, ledger.NumNodes()),
		linkView: make([]float64, ledger.NumLinks()),
		aggView:  make([]float64, ledger.NumLinks()),
		counters: counters,
	}
	for i := range g.nodeView {
		g.nodeView[i] = ledger.NodeCommittedAvailable(i)
	}
	for i := range g.linkView {
		g.linkView[i] = ledger.LinkCommittedAvailable(i)
		g.aggView[i] = g.linkView[i]
	}
	ledger.SetChangeObservers(g.nodeChanged, g.linkChanged)
	return g, nil
}

// nodeChanged applies the threshold rule after a committed change on
// node. It runs under the ledger lock (when enabled), so it reads the
// ledger through the unlocked internals.
func (g *Global) nodeChanged(node int) {
	truth := g.ledger.nodeCommittedAvailable(node)
	capacity := g.ledger.NodeCapacity(node)
	g.wlock()
	defer g.wunlock()
	view := g.nodeView[node]
	if exceeds(view.CPU, truth.CPU, capacity.CPU, g.cfg.UpdateThreshold) ||
		exceeds(view.Memory, truth.Memory, capacity.Memory, g.cfg.UpdateThreshold) {
		g.nodeView[node] = truth
		g.counters.AddStateUpdates(1)
	}
}

// linkChanged applies the threshold rule after a committed change on an
// overlay link. A triggered link update is a report to the aggregation
// node (one message); dissemination happens at the aggregation period.
func (g *Global) linkChanged(link int) {
	truth := g.ledger.linkCommittedAvailable(link)
	capacity := g.ledger.LinkCapacity(link)
	g.wlock()
	defer g.wunlock()
	if exceeds(g.linkView[link], truth, capacity, g.cfg.UpdateThreshold) {
		g.linkView[link] = truth
		g.counters.AddStateUpdates(1)
	}
}

func exceeds(view, truth, max, threshold float64) bool {
	if max <= 0 {
		return view != truth
	}
	return math.Abs(view-truth) > threshold*max
}

// Aggregate recomputes the virtual-link snapshot from the reported link
// states. The experiment loop schedules this every AggregationPeriod; the
// aggregation role rotates round-robin over nodes for load sharing and
// the dissemination counts one message per system node.
func (g *Global) Aggregate() {
	g.wlock()
	defer g.wunlock()
	copy(g.aggView, g.linkView)
	g.aggNode = (g.aggNode + 1) % g.mesh.NumNodes()
	g.counters.AddAggregations(int64(g.mesh.NumNodes()))
}

// AggregationNode returns the node currently holding the aggregation role.
func (g *Global) AggregationNode() int {
	g.rlock()
	defer g.runlock()
	return g.aggNode
}

// Period returns the configured aggregation period.
func (g *Global) Period() time.Duration { return g.cfg.AggregationPeriod }

// NodeAvailable returns the coarse-grain view of a node's available
// resources — possibly stale within the update threshold.
func (g *Global) NodeAvailable(node int) qos.Resources {
	g.rlock()
	defer g.runlock()
	return g.nodeView[node]
}

// RouteAvailable returns the coarse-grain available bandwidth of a
// virtual link: the bottleneck over the aggregation snapshot of its
// constituent overlay links, +Inf when co-located.
func (g *Global) RouteAvailable(r overlay.Route) float64 {
	if r.CoLocated {
		return math.Inf(1)
	}
	g.rlock()
	defer g.runlock()
	avail := math.Inf(1)
	for _, id := range r.Links {
		avail = math.Min(avail, g.aggView[id])
	}
	return avail
}

// ForceRefresh resets every reported value to the current truth, as if
// every threshold fired. The ablation benchmarks use it to emulate a
// centralized always-fresh global state. Ledger reads happen before the
// global lock is taken, preserving the ledger-before-global lock order.
func (g *Global) ForceRefresh() {
	nodes := make([]qos.Resources, len(g.nodeView))
	for i := range nodes {
		nodes[i] = g.ledger.NodeCommittedAvailable(i)
	}
	links := make([]float64, len(g.linkView))
	for i := range links {
		links[i] = g.ledger.LinkCommittedAvailable(i)
	}
	g.wlock()
	defer g.wunlock()
	copy(g.nodeView, nodes)
	copy(g.linkView, links)
	copy(g.aggView, g.linkView)
}
