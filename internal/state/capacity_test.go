package state

import (
	"testing"
	"time"

	"repro/internal/qos"
)

func TestSetNodeCapacity(t *testing.T) {
	l, _, _ := newTestLedger(t)

	want := qos.Resources{CPU: 250, Memory: 125}
	if err := l.SetNodeCapacity(3, want); err != nil {
		t.Fatal(err)
	}
	if got := l.NodeCapacity(3); got != want {
		t.Errorf("capacity = %+v, want %+v", got, want)
	}
	if got := l.NodeAvailable(3); got != want {
		t.Errorf("available = %+v, want %+v", got, want)
	}
	// Other nodes keep the uniform capacity.
	if got := l.NodeCapacity(4); got != (qos.Resources{CPU: 100, Memory: 1000}) {
		t.Errorf("untouched node capacity = %+v", got)
	}

	if err := l.SetNodeCapacity(-1, want); err == nil {
		t.Error("accepted a negative node index")
	}
	if err := l.SetNodeCapacity(l.NumNodes(), want); err == nil {
		t.Error("accepted an out-of-range node index")
	}
	if err := l.SetNodeCapacity(3, qos.Resources{CPU: 0, Memory: 10}); err == nil {
		t.Error("accepted a non-positive capacity")
	}
}

func TestSetNodeCapacityRejectedOnLiveNode(t *testing.T) {
	l, _, _ := newTestLedger(t)
	if !l.HoldNode(1, 0, 5, qos.Resources{CPU: 10, Memory: 10}, 10*time.Second) {
		t.Fatal("hold rejected")
	}
	if err := l.SetNodeCapacity(5, qos.Resources{CPU: 5, Memory: 5}); err == nil {
		t.Error("accepted a capacity override under a live hold")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
