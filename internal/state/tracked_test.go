package state

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/qos"
)

func TestTrackedHoldsReportCreation(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	req := qos.Resources{CPU: 30, Memory: 100}

	ok, created := l.HoldNodeTracked(1, 0, 0, req, time.Minute)
	if !ok || !created {
		t.Fatalf("first node hold = (%v, %v), want (true, true)", ok, created)
	}
	// Idempotent repeat: succeeds but creates nothing.
	ok, created = l.HoldNodeTracked(1, 0, 0, req, time.Minute)
	if !ok || created {
		t.Fatalf("repeat node hold = (%v, %v), want (true, false)", ok, created)
	}
	// Failure creates nothing.
	ok, created = l.HoldNodeTracked(2, 0, 0, qos.Resources{CPU: 1000}, time.Minute)
	if ok || created {
		t.Fatalf("oversized node hold = (%v, %v), want (false, false)", ok, created)
	}

	capacity := mesh.Link(0).Capacity
	ok, created = l.HoldLinkTracked(1, 0, 0, capacity/2, time.Minute)
	if !ok || !created {
		t.Fatalf("first link hold = (%v, %v), want (true, true)", ok, created)
	}
	ok, created = l.HoldLinkTracked(1, 0, 0, capacity/2, time.Minute)
	if !ok || created {
		t.Fatalf("repeat link hold = (%v, %v), want (true, false)", ok, created)
	}
	ok, created = l.HoldLinkTracked(2, 0, 0, capacity, time.Minute)
	if ok || created {
		t.Fatalf("oversized link hold = (%v, %v), want (false, false)", ok, created)
	}
}

func TestReleaseNodeHoldIsTargeted(t *testing.T) {
	l, _, _ := newTestLedger(t)
	l.HoldNode(1, 0, 0, qos.Resources{CPU: 10}, time.Minute)
	l.HoldNode(1, 1, 0, qos.Resources{CPU: 20}, time.Minute)
	l.HoldNode(2, 0, 0, qos.Resources{CPU: 5}, time.Minute)

	l.ReleaseNodeHold(1, 1, 0)
	if got := l.NodeAvailable(0).CPU; got != 85 {
		t.Errorf("CPU after targeted release = %v, want 85 (only owner 1 tag 1 released)", got)
	}
	// Releasing a hold that does not exist is a no-op.
	l.ReleaseNodeHold(1, 7, 0)
	l.ReleaseNodeHold(9, 0, 0)
	if got := l.NodeAvailable(0).CPU; got != 85 {
		t.Errorf("CPU after no-op releases = %v, want 85", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseLinkHoldIsTargeted(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	capacity := mesh.Link(0).Capacity
	l.HoldLink(1, 0, 0, capacity/4, time.Minute)
	l.HoldLink(1, 1, 0, capacity/4, time.Minute)
	l.HoldLink(2, 0, 0, capacity/4, time.Minute)

	l.ReleaseLinkHold(1, 0, 0)
	if got := l.LinkAvailable(0); math.Abs(got-capacity/2) > 1e-9*capacity {
		t.Errorf("link available after targeted release = %v, want %v", got, capacity/2)
	}
	l.ReleaseLinkHold(1, 0, 0) // already gone: no-op
	if got := l.LinkAvailable(0); math.Abs(got-capacity/2) > 1e-9*capacity {
		t.Errorf("link available after repeated release = %v, want %v", got, capacity/2)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPartialHoldRollback models the extendProbe failure path: a
// candidate's node hold and some link holds succeed, a later link hold
// fails, and the caller rolls back exactly what it created — restoring
// the raw availability other candidates of the same request are checked
// against, without touching holds that pre-existed under other tags.
func TestPartialHoldRollback(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	owner := Owner(7)
	capacity := mesh.Link(0).Capacity

	// An earlier position's hold that must survive the rollback.
	l.HoldNode(owner, 0, 0, qos.Resources{CPU: 10}, time.Minute)
	l.HoldLink(owner, 0, 0, capacity/2, time.Minute)

	// The failing candidate at position 2: node hold and link 0 hold
	// succeed, link 1 hold fails.
	okNode, createdNode := l.HoldNodeTracked(owner, 2, 0, qos.Resources{CPU: 20}, time.Minute)
	if !okNode || !createdNode {
		t.Fatal("candidate node hold rejected")
	}
	okLink, createdLink := l.HoldLinkTracked(owner, 2, 0, capacity/4, time.Minute)
	if !okLink || !createdLink {
		t.Fatal("candidate link hold rejected")
	}
	// Saturate link 1 so the candidate's next hold fails.
	l.HoldLink(99, 0, 1, mesh.Link(1).Capacity, time.Minute)
	if ok, _ := l.HoldLinkTracked(owner, 2, 1, 1, time.Minute); ok {
		t.Fatal("saturated link hold accepted")
	}

	// Roll back what the candidate created.
	l.ReleaseNodeHold(owner, 2, 0)
	l.ReleaseLinkHold(owner, 2, 0)

	if got := l.NodeAvailable(0).CPU; got != 90 {
		t.Errorf("node raw availability after rollback = %v, want 90 (position 0 hold intact)", got)
	}
	if got := l.LinkAvailable(0); math.Abs(got-capacity/2) > 1e-9*capacity {
		t.Errorf("link raw availability after rollback = %v, want %v", got, capacity/2)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLockedLedgerConcurrentUse exercises the opt-in locked mode from
// many goroutines (meaningful under -race): concurrent holds, commits,
// releases and global-state reads must leave the ledger consistent.
func TestLockedLedgerConcurrentUse(t *testing.T) {
	l, _, mesh := newTestLedger(t)
	g, err := NewGlobal(l, mesh, DefaultGlobalConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	l.EnableLocking()
	g.EnableLocking()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := Owner(w + 1)
			for i := 0; i < 200; i++ {
				node := (w + i) % l.NumNodes()
				link := (w + i) % l.NumLinks()
				if ok, _ := l.HoldNodeTracked(owner, i, node, qos.Resources{CPU: 1, Memory: 1}, time.Minute); ok {
					if i%3 == 0 {
						l.ReleaseNodeHold(owner, i, node)
					}
				}
				if ok, _ := l.HoldLinkTracked(owner, i, link, 1, time.Minute); ok && i%3 == 1 {
					l.ReleaseLinkHold(owner, i, link)
				}
				_ = g.NodeAvailable(node)
				_ = l.NodeAvailableFor(owner, node)
				if i%50 == 49 {
					l.ReleaseOwner(owner)
				}
			}
			l.ReleaseOwner(owner)
		}(w)
	}
	go func() {
		for i := 0; i < 50; i++ {
			g.Aggregate()
			g.ForceRefresh()
		}
	}()
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
