package tuning

import (
	"math"
	"testing"
)

func TestNewPIControllerValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*PIConfig)
	}{
		{name: "zero target", mutate: func(c *PIConfig) { c.Target = 0 }},
		{name: "negative gain", mutate: func(c *PIConfig) { c.Kp = -1 }},
		{name: "both gains zero", mutate: func(c *PIConfig) { c.Kp = 0; c.Ki = 0 }},
		{name: "zero min", mutate: func(c *PIConfig) { c.Min = 0 }},
		{name: "max below min", mutate: func(c *PIConfig) { c.Max = 0.01 }},
		{name: "base out of bounds", mutate: func(c *PIConfig) { c.Base = 0.01 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultPIConfig()
			tt.mutate(&cfg)
			if _, err := NewPIController(cfg); err == nil {
				t.Error("NewPIController accepted invalid config")
			}
		})
	}
}

func TestPIRaisesRatioOnDeficit(t *testing.T) {
	c, err := NewPIController(DefaultPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	start := c.Ratio()
	if changed := c.Observe(0.5); !changed {
		t.Fatal("controller ignored a 40-point deficit")
	}
	if c.Ratio() <= start {
		t.Errorf("ratio %v did not rise from %v", c.Ratio(), start)
	}
}

func TestPILowersRatioOnSurplus(t *testing.T) {
	c, err := NewPIController(DefaultPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drive the ratio up first, then feed perfect success.
	c.Observe(0.4)
	c.Observe(0.4)
	high := c.Ratio()
	for i := 0; i < 10; i++ {
		c.Observe(1.0)
	}
	if c.Ratio() >= high {
		t.Errorf("ratio did not relax: %v -> %v", high, c.Ratio())
	}
}

func TestPIRespectsBounds(t *testing.T) {
	cfg := DefaultPIConfig()
	c, err := NewPIController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Observe(0) // catastrophic failure forever
	}
	if c.Ratio() > cfg.Max {
		t.Errorf("ratio %v above max %v", c.Ratio(), cfg.Max)
	}
	for i := 0; i < 50; i++ {
		c.Observe(1)
	}
	if c.Ratio() < cfg.Min {
		t.Errorf("ratio %v below min %v", c.Ratio(), cfg.Min)
	}
}

// TestPIAntiWindup: after a long saturated overload, recovery must be
// quick — the integral term must not have wound up unboundedly.
func TestPIAntiWindup(t *testing.T) {
	c, err := NewPIController(DefaultPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Observe(0.2) // saturates at Max
	}
	if c.Ratio() != DefaultPIConfig().Max {
		t.Fatalf("not saturated: %v", c.Ratio())
	}
	// Load vanishes: within a handful of windows the ratio must drop
	// visibly below the cap.
	for i := 0; i < 5; i++ {
		c.Observe(1.0)
	}
	if c.Ratio() > 0.9*DefaultPIConfig().Max {
		t.Errorf("ratio stuck near cap after recovery: %v", c.Ratio())
	}
}

// TestPISteadyStateConvergence: with a plant where success is a known
// increasing function of alpha, the closed loop should settle near the
// alpha that yields the target.
func TestPISteadyStateConvergence(t *testing.T) {
	plant := func(alpha float64) float64 {
		return math.Min(1, 0.4+alpha) // target 0.9 at alpha = 0.5
	}
	c, err := NewPIController(DefaultPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		c.Observe(plant(c.Ratio()))
	}
	if math.Abs(c.Ratio()-0.5) > 0.1 {
		t.Errorf("ratio settled at %v, want ~0.5", c.Ratio())
	}
	if math.Abs(plant(c.Ratio())-0.9) > 0.08 {
		t.Errorf("steady-state success %v, want ~0.9", plant(c.Ratio()))
	}
}

func TestPIStableAtTarget(t *testing.T) {
	c, err := NewPIController(DefaultPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(0.9)
	r := c.Ratio()
	if changed := c.Observe(0.9); changed {
		t.Errorf("ratio moved at zero error: %v -> %v", r, c.Ratio())
	}
}
