package tuning

import (
	"math"
	"testing"
)

// sigmoidProfile mimics the paper's Figure 5 curves: success rises
// steeply with alpha and saturates at ceiling.
func sigmoidProfile(knee, ceiling float64) Profiler {
	return func(alpha float64) float64 {
		return ceiling * (1 - math.Exp(-alpha/knee))
	}
}

func TestNewTunerValidation(t *testing.T) {
	prof := sigmoidProfile(0.1, 1)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "zero target", mutate: func(c *Config) { c.Target = 0 }},
		{name: "target above one", mutate: func(c *Config) { c.Target = 1.1 }},
		{name: "zero threshold", mutate: func(c *Config) { c.ErrorThreshold = 0 }},
		{name: "zero base", mutate: func(c *Config) { c.BaseRatio = 0 }},
		{name: "zero step", mutate: func(c *Config) { c.Step = 0 }},
		{name: "max below base", mutate: func(c *Config) { c.MaxRatio = 0.05 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewTuner(cfg, prof); err == nil {
				t.Error("NewTuner accepted invalid config")
			}
		})
	}
	if _, err := NewTuner(DefaultConfig(), nil); err == nil {
		t.Error("nil profiler accepted")
	}
}

func TestTunerStartsAtBase(t *testing.T) {
	tn, err := NewTuner(DefaultConfig(), sigmoidProfile(0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := tn.Ratio(); got != 0.1 {
		t.Errorf("initial ratio = %v, want base 0.1", got)
	}
	if !math.IsNaN(tn.Predict(0.3)) {
		t.Error("Predict before profiling should be NaN")
	}
}

func TestTunerFindsMinimalRatio(t *testing.T) {
	// With a steep profile, 90% is reachable around alpha where
	// 1-exp(-a/0.1) >= 0.9 -> a >= 0.23; grid steps give 0.3.
	tn, err := NewTuner(DefaultConfig(), sigmoidProfile(0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.5) // first observation profiles unconditionally
	if got := tn.Ratio(); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("tuned ratio = %v, want 0.3", got)
	}
	if tn.Reprofiles() != 1 {
		t.Errorf("Reprofiles = %d, want 1", tn.Reprofiles())
	}
}

func TestTunerStableWhenPredictionAccurate(t *testing.T) {
	tn, err := NewTuner(DefaultConfig(), sigmoidProfile(0.1, 1))
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.9)
	ratio := tn.Ratio()
	predicted := tn.Predict(ratio)
	// Feed measurements within the 2% band: no re-profiling, no change.
	for i := 0; i < 5; i++ {
		if changed := tn.Observe(predicted + 0.01); changed {
			t.Fatal("ratio changed despite accurate prediction")
		}
	}
	if tn.Reprofiles() != 1 {
		t.Errorf("Reprofiles = %d, want 1", tn.Reprofiles())
	}
	if tn.Ratio() != ratio {
		t.Errorf("ratio drifted to %v", tn.Ratio())
	}
}

func TestTunerReactsToWorkloadIncrease(t *testing.T) {
	// Conditions change underneath the tuner: the profile flattens
	// (heavier workload), measured success collapses, the tuner must
	// re-profile and raise alpha — the Figure 8(b) scenario.
	heavy := false
	prof := func(alpha float64) float64 {
		if heavy {
			return sigmoidProfile(0.35, 0.95)(alpha)
		}
		return sigmoidProfile(0.1, 1)(alpha)
	}
	tn, err := NewTuner(DefaultConfig(), prof)
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.5)
	light := tn.Ratio()

	heavy = true
	if changed := tn.Observe(0.55); !changed {
		t.Fatal("tuner ignored a collapsed success rate")
	}
	if tn.Ratio() <= light {
		t.Errorf("ratio did not increase under load: %v -> %v", light, tn.Ratio())
	}

	// Load drops again: after another misprediction the ratio relaxes.
	heavy = false
	tn.Observe(1.0)
	if tn.Ratio() != light {
		t.Errorf("ratio did not relax after load drop: %v, want %v", tn.Ratio(), light)
	}
}

func TestTunerUnreachableTargetSaturates(t *testing.T) {
	// Ceiling 0.7 < target 0.9: the tuner must settle at the saturation
	// point rather than chasing the target to the cap forever.
	tn, err := NewTuner(DefaultConfig(), sigmoidProfile(0.05, 0.7))
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.3)
	got := tn.Ratio()
	if got > 0.7 {
		t.Errorf("ratio = %v, want saturation well below cap", got)
	}
	if p := tn.Predict(got); math.Abs(p-0.7) > 0.05 {
		t.Errorf("prediction at chosen ratio = %v, want near ceiling 0.7", p)
	}
}

func TestPredictInterpolates(t *testing.T) {
	tn, err := NewTuner(DefaultConfig(), sigmoidProfile(0.2, 1))
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.5)
	// Prediction between grid points must lie between their values.
	p25 := tn.Predict(0.25)
	p2, p3 := tn.Predict(0.2), tn.Predict(0.3)
	if p25 < math.Min(p2, p3)-1e-9 || p25 > math.Max(p2, p3)+1e-9 {
		t.Errorf("Predict(0.25) = %v outside [%v, %v]", p25, p2, p3)
	}
	// Out-of-range queries clamp to the profile's ends.
	if got := tn.Predict(0.0); got != tn.Predict(0.1) {
		t.Errorf("low clamp: %v vs %v", got, tn.Predict(0.1))
	}
	if got := tn.Predict(1.0); got < tn.Predict(0.5) {
		t.Errorf("high clamp decreasing: %v", got)
	}
}

func TestTunerMonotoneEnvelope(t *testing.T) {
	// A noisy profiler (non-monotone samples) must still yield a
	// monotone profile, since success cannot decrease with more probes.
	calls := 0
	noisy := func(alpha float64) float64 {
		calls++
		base := sigmoidProfile(0.1, 1)(alpha)
		if calls%2 == 0 {
			base -= 0.2 // simulate a noisy dip
		}
		return base
	}
	tn, err := NewTuner(DefaultConfig(), noisy)
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(0.5)
	prev := -1.0
	for alpha := 0.1; alpha <= 1.0; alpha += 0.1 {
		p := tn.Predict(alpha)
		if p < prev-1e-9 {
			t.Fatalf("profile not monotone at alpha=%v: %v < %v", alpha, p, prev)
		}
		prev = p
	}
}
