package tuning

import (
	"math"
	"testing"
)

func TestHoltValidation(t *testing.T) {
	for _, cfg := range []HoltConfig{{Alpha: 0, Beta: 0.3}, {Alpha: 1.5, Beta: 0.3}, {Alpha: 0.5, Beta: 0}, {Alpha: 0.5, Beta: 2}} {
		if _, err := NewHolt(cfg); err == nil {
			t.Errorf("NewHolt(%+v) accepted", cfg)
		}
	}
	if _, err := NewHolt(DefaultHoltConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	h, err := NewHolt(DefaultHoltConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(h.Forecast(1)) {
		t.Fatal("unprimed forecast not NaN")
	}
	// Feed y = 2 + 0.5*t; after convergence the one-step forecast must
	// land near the true next value.
	for i := 0; i < 50; i++ {
		h.Observe(2 + 0.5*float64(i))
	}
	want := 2 + 0.5*50
	if got := h.Forecast(1); math.Abs(got-want) > 0.1 {
		t.Fatalf("Forecast(1) = %v, want ~%v", got, want)
	}
	want3 := 2 + 0.5*52
	if got := h.Forecast(3); math.Abs(got-want3) > 0.3 {
		t.Fatalf("Forecast(3) = %v, want ~%v", got, want3)
	}
}

func TestHoltConstantSeries(t *testing.T) {
	h, _ := NewHolt(DefaultHoltConfig())
	for i := 0; i < 10; i++ {
		h.Observe(7)
	}
	if got := h.Forecast(5); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant series forecast = %v, want 7", got)
	}
}

func TestHoltIgnoresNonFinite(t *testing.T) {
	h, _ := NewHolt(DefaultHoltConfig())
	h.Observe(3)
	h.Observe(math.Inf(1))
	h.Observe(math.NaN())
	if got := h.Forecast(0); got != 3 {
		t.Fatalf("level after non-finite feeds = %v, want 3", got)
	}
	if !h.Primed() {
		t.Fatal("forecaster lost primed state")
	}
}
