package tuning

import (
	"fmt"
	"math"
)

// RatioTuner adapts the probing ratio from measured success rates. Both
// the paper's profiling tuner (Tuner) and the control-theoretic
// controller (PIController, the paper's first future-work direction in
// §6) implement it.
type RatioTuner interface {
	// Ratio returns the probing ratio currently in force.
	Ratio() float64
	// Observe feeds the last sampling window's measured success rate and
	// reports whether the ratio changed.
	Observe(measured float64) bool
}

// Compile-time interface checks.
var (
	_ RatioTuner = (*Tuner)(nil)
	_ RatioTuner = (*PIController)(nil)
)

// PIConfig parameterises the proportional-integral probing-ratio
// controller.
type PIConfig struct {
	// Target is the success rate to hold.
	Target float64
	// Kp and Ki are the proportional and integral gains mapping success
	// error (target - measured) to probing-ratio adjustment.
	Kp, Ki float64
	// Base is the starting ratio; Min and Max clamp the output.
	Base, Min, Max float64
}

// DefaultPIConfig returns gains that settle within a few sampling
// windows for the paper's workloads without limit-cycling: a 10-point
// success deficit raises alpha by 0.04 proportionally plus 0.025 per
// window integrally.
func DefaultPIConfig() PIConfig {
	return PIConfig{
		Target: 0.90,
		Kp:     0.4,
		Ki:     0.25,
		Base:   0.1,
		Min:    0.05,
		Max:    1.0,
	}
}

func (c *PIConfig) validate() error {
	if c.Target <= 0 || c.Target > 1 {
		return fmt.Errorf("tuning: Target %v out of (0, 1]", c.Target)
	}
	if c.Kp < 0 || c.Ki < 0 || (c.Kp == 0 && c.Ki == 0) {
		return fmt.Errorf("tuning: gains Kp=%v Ki=%v must be non-negative and not both zero", c.Kp, c.Ki)
	}
	if c.Min <= 0 || c.Max < c.Min || c.Max > 1 {
		return fmt.Errorf("tuning: ratio bounds [%v, %v] invalid", c.Min, c.Max)
	}
	if c.Base < c.Min || c.Base > c.Max {
		return fmt.Errorf("tuning: Base %v outside [%v, %v]", c.Base, c.Min, c.Max)
	}
	return nil
}

// PIController holds a target success rate with a clamped
// proportional-integral law and conditional anti-windup: the integral
// term freezes while the output is saturated in the error's direction,
// so a long overload does not wind the ratio past usefulness.
type PIController struct {
	cfg      PIConfig
	ratio    float64
	integral float64
}

// NewPIController validates the configuration and starts at the base
// ratio.
func NewPIController(cfg PIConfig) (*PIController, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &PIController{cfg: cfg, ratio: cfg.Base}, nil
}

// Ratio returns the probing ratio currently in force.
func (c *PIController) Ratio() float64 { return c.ratio }

// Observe applies one control step for the measured success rate.
func (c *PIController) Observe(measured float64) bool {
	errSignal := c.cfg.Target - measured

	tentative := c.integral + errSignal
	raw := c.cfg.Base + c.cfg.Kp*errSignal + c.cfg.Ki*tentative
	next := math.Max(c.cfg.Min, math.Min(c.cfg.Max, raw))
	// Anti-windup: keep the integral step only when the output is not
	// saturated in the error's direction, so a long overload cannot wind
	// the ratio past usefulness.
	pushingHigh := raw > c.cfg.Max && errSignal > 0
	pushingLow := raw < c.cfg.Min && errSignal < 0
	if !pushingHigh && !pushingLow {
		c.integral = tentative
	}

	changed := math.Abs(next-c.ratio) > 1e-12
	c.ratio = next
	return changed
}
