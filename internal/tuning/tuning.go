// Package tuning implements the probing ratio tuning scheme of §3.4: ACP
// holds a target composition success rate with the minimal probing ratio
// by on-line profiling of the (non-linear, condition-dependent) mapping
// from probing ratio to success rate, re-profiling whenever the measured
// rate drifts from the profile's prediction by more than a threshold.
package tuning

import (
	"fmt"
	"math"
)

// Profiler estimates the composition success rate the system would
// achieve at the given probing ratio under current conditions. The
// experiment harness implements it by trace-replaying the last sampling
// period's requests against the current system state (§3.4: "realistic
// workload ... trace replay of actual workloads in the last sampling
// period").
type Profiler func(alpha float64) float64

// Config parameterises the tuner.
type Config struct {
	// Target is the composition success rate to maintain (e.g. 0.9).
	Target float64
	// ErrorThreshold is delta: re-profiling triggers when the measured
	// success rate differs from the prediction by more than this (paper
	// example: 2%).
	ErrorThreshold float64
	// BaseRatio is where profiling starts (paper example: 0.1).
	BaseRatio float64
	// Step is the profiling increment (paper example: 0.1).
	Step float64
	// MaxRatio caps the probing ratio, bounding probing overhead.
	MaxRatio float64
	// Margin is the hysteresis band: the tuner picks the smallest ratio
	// predicted to reach Target + Margin, so window noise does not cause
	// it to flap between adjacent ratios. If no profiled ratio clears
	// the band, the plain target is used.
	Margin float64
}

// DefaultConfig mirrors the paper's §3.4 example values with a 90%
// target, the setting of the Figure 8(b) experiment.
func DefaultConfig() Config {
	return Config{
		Target:         0.90,
		ErrorThreshold: 0.02,
		BaseRatio:      0.1,
		Step:           0.1,
		MaxRatio:       1.0,
		Margin:         0.02,
	}
}

func (c *Config) validate() error {
	if c.Target <= 0 || c.Target > 1 {
		return fmt.Errorf("tuning: Target %v out of (0, 1]", c.Target)
	}
	if c.ErrorThreshold <= 0 || c.ErrorThreshold >= 1 {
		return fmt.Errorf("tuning: ErrorThreshold %v out of (0, 1)", c.ErrorThreshold)
	}
	if c.BaseRatio <= 0 || c.BaseRatio > 1 {
		return fmt.Errorf("tuning: BaseRatio %v out of (0, 1]", c.BaseRatio)
	}
	if c.Step <= 0 || c.Step > 1 {
		return fmt.Errorf("tuning: Step %v out of (0, 1]", c.Step)
	}
	if c.MaxRatio < c.BaseRatio || c.MaxRatio > 1 {
		return fmt.Errorf("tuning: MaxRatio %v out of [BaseRatio, 1]", c.MaxRatio)
	}
	if c.Margin < 0 || c.Target+c.Margin > 1 {
		return fmt.Errorf("tuning: Margin %v invalid for target %v", c.Margin, c.Target)
	}
	return nil
}

type profilePoint struct {
	alpha   float64
	success float64
}

// Tuner adapts the probing ratio each sampling period.
type Tuner struct {
	cfg      Config
	profiler Profiler
	profile  []profilePoint
	ratio    float64
	profiled bool
	reprofs  int
}

// NewTuner builds a tuner starting at the base probing ratio. The first
// Observe call profiles unconditionally.
func NewTuner(cfg Config, profiler Profiler) (*Tuner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if profiler == nil {
		return nil, fmt.Errorf("tuning: nil profiler")
	}
	return &Tuner{cfg: cfg, profiler: profiler, ratio: cfg.BaseRatio}, nil
}

// Ratio returns the probing ratio currently in force.
func (t *Tuner) Ratio() float64 { return t.ratio }

// Reprofiles returns how many times on-line profiling has run.
func (t *Tuner) Reprofiles() int { return t.reprofs }

// Predict returns the profiled success rate at alpha, interpolating
// linearly between profile points. Without a profile it returns NaN.
func (t *Tuner) Predict(alpha float64) float64 {
	if len(t.profile) == 0 {
		return math.NaN()
	}
	if alpha <= t.profile[0].alpha {
		return t.profile[0].success
	}
	for i := 1; i < len(t.profile); i++ {
		if alpha <= t.profile[i].alpha {
			lo, hi := t.profile[i-1], t.profile[i]
			frac := (alpha - lo.alpha) / (hi.alpha - lo.alpha)
			return lo.success + frac*(hi.success-lo.success)
		}
	}
	return t.profile[len(t.profile)-1].success
}

// Observe feeds the measured success rate of the sampling period that
// just ended and retunes: when the prediction error exceeds the
// threshold (or no profile exists yet), the profiler is rerun and the
// minimal ratio predicted to reach the target is adopted. It returns
// true when the ratio changed.
func (t *Tuner) Observe(measured float64) bool {
	if !t.profiled || math.Abs(measured-t.Predict(t.ratio)) > t.cfg.ErrorThreshold {
		t.reprofile()
	}
	old := t.ratio
	t.ratio = t.minimalRatio()
	return t.ratio != old
}

// reprofile sweeps alpha from the base ratio upward until the success
// rate saturates (stops improving meaningfully) or the cap is reached,
// and records the monotone envelope of the measurements. The probing
// ratio tuning space is small (§3.4: success "quickly reaches the
// saturation point"), so the sweep is a handful of profiler calls.
func (t *Tuner) reprofile() {
	t.profile = t.profile[:0]
	t.reprofs++
	best := 0.0
	for alpha := t.cfg.BaseRatio; ; alpha += t.cfg.Step {
		if alpha > t.cfg.MaxRatio {
			break
		}
		s := t.profiler(alpha)
		if s < best {
			s = best // success is non-decreasing in alpha; keep envelope
		}
		t.profile = append(t.profile, profilePoint{alpha: alpha, success: s})
		// Saturation: target (plus hysteresis band) reached, or no
		// meaningful improvement while past the halfway point of the
		// sweep.
		if s >= t.cfg.Target+t.cfg.Margin {
			break
		}
		if len(t.profile) >= 2 && s-best < 0.005 && alpha > (t.cfg.BaseRatio+t.cfg.MaxRatio)/2 {
			break
		}
		best = math.Max(best, s)
	}
	t.profiled = true
}

// minimalRatio returns the smallest profiled ratio whose predicted
// success clears the target plus the hysteresis margin (falling back to
// the bare target); if the target is unreachable it returns the ratio of
// the best profiled point (the saturation point), honouring the paper's
// rule that ACP stops increasing the ratio once the overhead limit —
// here the saturation of the profile — is reached.
func (t *Tuner) minimalRatio() float64 {
	if len(t.profile) == 0 {
		return t.ratio
	}
	for _, p := range t.profile {
		if p.success >= t.cfg.Target+t.cfg.Margin {
			return p.alpha
		}
	}
	for _, p := range t.profile {
		if p.success >= t.cfg.Target {
			return p.alpha
		}
	}
	best := t.profile[0]
	for _, p := range t.profile[1:] {
		if p.success > best.success {
			best = p
		}
	}
	return best.alpha
}
