package tuning

import (
	"fmt"
	"math"
)

// HoltConfig parameterises double exponential smoothing.
type HoltConfig struct {
	// Alpha is the level smoothing factor in (0, 1].
	Alpha float64
	// Beta is the trend smoothing factor in (0, 1].
	Beta float64
}

// DefaultHoltConfig returns smoothing factors that track session-phi
// drift quickly (half-life of a couple of monitor ticks) while damping
// single-tick noise.
func DefaultHoltConfig() HoltConfig {
	return HoltConfig{Alpha: 0.5, Beta: 0.3}
}

func (c *HoltConfig) validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("tuning: Holt Alpha %v out of (0, 1]", c.Alpha)
	}
	if c.Beta <= 0 || c.Beta > 1 {
		return fmt.Errorf("tuning: Holt Beta %v out of (0, 1]", c.Beta)
	}
	return nil
}

// Holt is a Holt (double exponential smoothing) forecaster over a
// scalar series: it tracks a smoothed level and linear trend and
// extrapolates them, which is enough look-ahead for a re-composition
// controller to act on steadily rising congestion before the QoS bound
// is actually crossed. Not safe for concurrent use.
type Holt struct {
	cfg    HoltConfig
	level  float64
	trend  float64
	primed bool
}

// NewHolt builds a forecaster; the first observation primes the level
// with zero trend.
func NewHolt(cfg HoltConfig) (*Holt, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Holt{cfg: cfg}, nil
}

// Observe feeds the next value of the series. Non-finite values are
// ignored so a transient Inf residual cannot poison the state.
func (h *Holt) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if !h.primed {
		h.level, h.trend, h.primed = v, 0, true
		return
	}
	prev := h.level
	h.level = h.cfg.Alpha*v + (1-h.cfg.Alpha)*(h.level+h.trend)
	h.trend = h.cfg.Beta*(h.level-prev) + (1-h.cfg.Beta)*h.trend
}

// Forecast extrapolates the series the given number of steps ahead of
// the last observation (0 returns the smoothed level). Before any
// observation it returns NaN.
func (h *Holt) Forecast(steps int) float64 {
	if !h.primed {
		return math.NaN()
	}
	return h.level + float64(steps)*h.trend
}

// Primed reports whether at least one observation has been fed.
func (h *Holt) Primed() bool { return h.primed }
