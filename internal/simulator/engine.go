// Package simulator provides the deterministic discrete-event engine that
// drives the composition experiments, substituting for the paper's
// event-driven C++ simulator (§4.1).
//
// The engine keeps a virtual clock and a priority queue of timestamped
// callbacks. Events at equal timestamps run in scheduling (FIFO) order, so
// a run is reproducible for a given seed and event program.
package simulator

import (
	"container/heap"
	"fmt"
	"time"
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{} // release the closure for GC
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use; all callbacks run on the caller's goroutine.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
}

// New returns an engine with its clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule enqueues fn to run after delay. A negative delay is an error;
// a zero delay runs fn on the next Step at the current time, after any
// previously scheduled events for that instant.
func (e *Engine) Schedule(delay time.Duration, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("simulator: negative delay %v", delay)
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt enqueues fn to run at the absolute virtual time at, which
// must not be in the past.
func (e *Engine) ScheduleAt(at time.Duration, fn func()) error {
	if at < e.now {
		return fmt.Errorf("simulator: schedule at %v before now %v", at, e.now)
	}
	if fn == nil {
		return fmt.Errorf("simulator: nil event callback")
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
	return nil
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes every event scheduled at or before deadline, then
// advances the clock to the deadline even if the queue drained earlier.
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Run drains the event queue completely.
func (e *Engine) Run() {
	for e.Step() {
	}
}
