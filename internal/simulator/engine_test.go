package simulator

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	add := func(delay time.Duration, id int) {
		if err := e.Schedule(delay, func() { got = append(got, id) }); err != nil {
			t.Fatal(err)
		}
	}
	add(3*time.Second, 3)
	add(1*time.Second, 1)
	add(2*time.Second, 2)
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", e.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		id := i
		if err := e.Schedule(time.Second, func() { got = append(got, id) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want FIFO", got)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	e := New()
	if err := e.Schedule(-time.Second, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if err := e.Schedule(time.Second, nil); err == nil {
		t.Error("nil callback accepted")
	}
	if err := e.Schedule(time.Second, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if err := e.ScheduleAt(0, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	e := New()
	var times []time.Duration
	var tick func()
	tick = func() {
		times = append(times, e.Now())
		if e.Now() < 5*time.Second {
			if err := e.Schedule(time.Second, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.Schedule(time.Second, tick); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(times) != 5 {
		t.Fatalf("ticks = %v, want 5 entries", times)
	}
	for i, at := range times {
		if at != time.Duration(i+1)*time.Second {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	ran := 0
	for i := 1; i <= 10; i++ {
		if err := e.Schedule(time.Duration(i)*time.Second, func() { ran++ }); err != nil {
			t.Fatal(err)
		}
	}
	e.RunUntil(4 * time.Second)
	if ran != 4 {
		t.Errorf("ran = %d, want 4", ran)
	}
	if e.Now() != 4*time.Second {
		t.Errorf("Now = %v, want 4s", e.Now())
	}
	if e.Pending() != 6 {
		t.Errorf("Pending = %d, want 6", e.Pending())
	}
	// Advancing past the queue moves the clock to the deadline.
	e.RunUntil(20 * time.Second)
	if ran != 10 || e.Now() != 20*time.Second {
		t.Errorf("after drain: ran=%d now=%v", ran, e.Now())
	}
}

func TestStepOnEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty engine returned true")
	}
}

// TestClockMonotone: event execution times must be non-decreasing no
// matter the scheduling order.
func TestClockMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var times []time.Duration
		for i := 0; i < 50; i++ {
			err := e.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				times = append(times, e.Now())
			})
			if err != nil {
				return false
			}
		}
		e.Run()
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
