package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/component"
	"repro/internal/dist"
	"repro/internal/faults"
	"repro/internal/qos"
)

// ScenarioConfig parameterises one randomized simulation run. The zero
// value plus a Seed is a valid fault-injected scenario; every knob the
// generator draws (fault rates, crash schedule, request mix) derives
// from the seed, so the seed alone replays the run.
type ScenarioConfig struct {
	// Seed drives everything: substrate, scheduler, faults, workload.
	Seed int64
	// Requests is how many compose requests the workload issues.
	// Zero means 16.
	Requests int
	// Oracle switches to the model-based reference mode: zero faults,
	// full probing (alpha=1), sequential requests, every decision
	// checked against the centralized exhaustive composer. When false,
	// the run draws a random fault mix and checks only the invariants.
	Oracle bool
}

// Report is the outcome of one scenario run.
type Report struct {
	Seed     int64
	Steps    int
	Requests int
	Admitted int
	// Log is the full step log: which node dispatched which message at
	// which schedule position, and every virtual-clock advance. On a
	// failing seed this is the replay transcript.
	Log []string
}

// scenarioCluster is the simulation-sized substrate: small enough that
// the exhaustive oracle stays fast, large enough for multi-node
// compositions and link contention.
func scenarioCluster(seed int64) dist.Config {
	cfg := dist.DefaultConfig()
	cfg.Seed = seed
	cfg.IPNodes = 64
	cfg.OverlayNodes = 8
	cfg.NeighborsPerNode = 3
	cfg.NumFunctions = 4
	cfg.ComponentsPerNode = 2
	cfg.NodeCapacity = qos.Resources{CPU: 100, Memory: 1000}
	cfg.CollectTimeout = 50 * time.Millisecond
	cfg.HoldTTL = 2 * time.Second
	cfg.CommitTimeout = time.Second
	return cfg
}

// RunScenario executes one seeded scenario end to end: build, drive,
// audit every step, verify quiescent ledger consistency, tear down,
// verify idempotent release and full resource recovery. It returns the
// report and the first invariant violation (nil on a clean run).
func RunScenario(sc ScenarioConfig) (*Report, error) {
	if sc.Requests <= 0 {
		sc.Requests = 16
	}
	wrng := rand.New(rand.NewSource(mix(sc.Seed ^ 0x517e)))

	cfg := scenarioCluster(sc.Seed)
	if sc.Oracle {
		// Full probing makes the dist candidate space exhaustive, which
		// admission parity with AlgOptimal requires.
		cfg.ProbingRatio = 1.0
	} else {
		cfg.Faults = randomFaults(sc.Seed, wrng, cfg)
	}

	s, err := NewSim(cfg, sc.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{Seed: sc.Seed, Requests: sc.Requests}
	fail := func(err error) (*Report, error) {
		rep.Steps = s.Steps()
		rep.Log = s.Log()
		return rep, err
	}

	var oracle *Oracle
	if sc.Oracle {
		if oracle, err = NewOracle(s); err != nil {
			return fail(err)
		}
	}

	var outcomes []SessionOutcome
	live := make(map[int64]int) // owner -> outcomes index
	for i := 0; i < sc.Requests; i++ {
		req := randomRequest(wrng, cfg)
		handle, err := s.Cluster.ComposeAsync(req)
		if err != nil {
			return fail(fmt.Errorf("seed %d: compose %d: %v", sc.Seed, i, err))
		}
		// Occasionally keep a second request in flight so protocol
		// rounds interleave (never in oracle mode, which needs the
		// sequential schedule the centralized model assumes).
		if !sc.Oracle && wrng.Float64() < 0.35 && i+1 < sc.Requests {
			i++
			req2 := randomRequest(wrng, cfg)
			h2, err := s.Cluster.ComposeAsync(req2)
			if err != nil {
				return fail(fmt.Errorf("seed %d: compose %d: %v", sc.Seed, i, err))
			}
			if err := s.RunToQuiescence(); err != nil {
				return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
			}
			o2, err := resolve(req2, h2)
			if err != nil {
				return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
			}
			outcomes = append(outcomes, o2)
			if o2.Admitted {
				live[o2.Owner] = len(outcomes) - 1
			}
		} else if err := s.RunToQuiescence(); err != nil {
			return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
		}
		o, err := resolve(req, handle)
		if err != nil {
			return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
		}
		outcomes = append(outcomes, o)
		if o.Admitted {
			live[o.Owner] = len(outcomes) - 1
			rep.Admitted++
		}
		if oracle != nil {
			if err := oracle.Check(o.Req, o.Owner, o.Comp); err != nil {
				return fail(fmt.Errorf("seed %d: oracle: %w", sc.Seed, err))
			}
		}
		if err := s.Auditor().CheckQuiescent(outcomes); err != nil {
			return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
		}
		// Randomly close some live sessions mid-run so commits and
		// releases interleave with later probing.
		for _, idx := range sortedLive(live) {
			if wrng.Float64() < 0.4 {
				releaseSession(s, oracle, &outcomes[idx])
				delete(live, outcomes[idx].Owner)
			}
		}
		if err := s.RunToQuiescence(); err != nil {
			return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
		}
	}

	// Teardown: release every remaining session, settle transient
	// state, and verify the cluster returned to full capacity.
	for _, idx := range sortedLive(live) {
		releaseSession(s, oracle, &outcomes[idx])
	}
	if err := s.RunToQuiescence(); err != nil {
		return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
	}
	if err := s.Settle(); err != nil {
		return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
	}
	if err := s.Auditor().CheckQuiescent(outcomes); err != nil {
		return fail(fmt.Errorf("seed %d: after teardown: %w", sc.Seed, err))
	}
	if err := s.Auditor().CheckIdle(); err != nil {
		return fail(fmt.Errorf("seed %d: %w", sc.Seed, err))
	}

	// Release-tombstone idempotency: replaying every admitted session's
	// release must be a no-op — each node's own ledger knows the owner
	// holds nothing anymore.
	for i := range outcomes {
		if outcomes[i].Admitted {
			s.Cluster.Release(outcomes[i].Req, outcomes[i].Comp)
		}
	}
	if err := s.RunToQuiescence(); err != nil {
		return fail(fmt.Errorf("seed %d: during duplicate release: %w", sc.Seed, err))
	}
	if err := s.Settle(); err != nil {
		return fail(fmt.Errorf("seed %d: settling duplicate releases: %w", sc.Seed, err))
	}
	if err := s.Auditor().CheckIdle(); err != nil {
		return fail(fmt.Errorf("seed %d: duplicate release was not idempotent: %w", sc.Seed, err))
	}

	rep.Steps = s.Steps()
	rep.Log = s.Log()
	return rep, nil
}

// resolve reads a handle that must have settled at quiescence.
func resolve(req *component.Request, h *dist.SimHandle) (SessionOutcome, error) {
	comp, err, done := h.Poll()
	if !done {
		return SessionOutcome{}, fmt.Errorf("request %d unresolved at quiescence", h.ReqID)
	}
	out := SessionOutcome{Owner: h.ReqID, Req: req}
	if err == nil {
		out.Admitted = true
		out.Comp = comp
	}
	return out, nil
}

// releaseSession tears one admitted session down on both systems.
func releaseSession(s *Sim, oracle *Oracle, o *SessionOutcome) {
	s.Cluster.Release(o.Req, o.Comp)
	if oracle != nil {
		oracle.Release(o.Owner)
	}
	o.Released = true
}

// sortedLive orders the live-session indices by owner so release
// scheduling is reproducible despite the map.
func sortedLive(live map[int64]int) []int {
	owners := make([]int64, 0, len(live))
	for owner := range live {
		owners = append(owners, owner)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	out := make([]int, len(owners))
	for i, owner := range owners {
		out[i] = live[owner]
	}
	return out
}

// randomFaults draws the seed's fault mix: message loss, duplication,
// delivery delay under the tombstone TTL, and up to two node outages.
func randomFaults(seed int64, rng *rand.Rand, cfg dist.Config) *faults.Config {
	fc := &faults.Config{
		Seed:     mix(seed ^ 0xfa17),
		DropProb: rng.Float64() * 0.25,
		DupProb:  rng.Float64() * 0.15,
	}
	if rng.Float64() < 0.7 {
		// Delays must stay under HoldTTL: a commit delayed past its
		// release tombstone would (correctly) be refused, but a release
		// delayed past tombstone expiry is outside the protocol's
		// documented fault envelope.
		fc.MaxDelay = time.Duration(rng.Int63n(int64(cfg.HoldTTL / 4)))
	}
	if n := rng.Intn(3); n > 0 {
		fc.Crashes = faults.RandomCrashes(mix(seed^0xc4a5), cfg.OverlayNodes, n,
			2*time.Second, 300*time.Millisecond)
	}
	return fc
}

// randomRequest draws one pipeline request sized to sometimes contend:
// chains of 2-4 functions, moderate per-position demand, bandwidth
// that can congest shared links.
func randomRequest(rng *rand.Rand, cfg dist.Config) *component.Request {
	length := 2 + rng.Intn(3)
	fns := make([]component.FunctionID, length)
	for i := range fns {
		fns[i] = component.FunctionID(rng.Intn(cfg.NumFunctions))
	}
	res := make([]qos.Resources, length)
	for i := range res {
		res[i] = qos.Resources{
			CPU:    2 + rng.Float64()*10,
			Memory: 20 + rng.Float64()*100,
		}
	}
	return &component.Request{
		Graph:        component.NewPathGraph(fns),
		QoSReq:       qos.Vector{Delay: 1e5, LossCost: qos.LossCost(0.9)},
		ResReq:       res,
		BandwidthReq: 20 + rng.Float64()*80,
		Client:       rng.Intn(cfg.OverlayNodes),
		Duration:     time.Hour,
	}
}
