package harness

import (
	"strings"
	"testing"
)

// reportAdaptFailure mirrors reportFailure for adaptation scenarios.
func reportAdaptFailure(t *testing.T, rep *AdaptReport, err error) {
	t.Helper()
	const tail = 40
	log := rep.Log
	if len(log) > tail {
		log = log[len(log)-tail:]
	}
	t.Errorf("seed %d failed: %v\nreplay: ACP_SIM_SEED=%d go test ./internal/harness -run %s -v\nlast %d schedule entries:\n%s",
		rep.Seed, err, rep.Seed, t.Name(), len(log), strings.Join(log, "\n"))
}

// TestAdaptationScenarios sweeps seeded drift/churn schedules over the
// live runtime with the re-composition controller on, auditing
// conservation, never-unheld, and no-worse-phi at every tick.
func TestAdaptationScenarios(t *testing.T) {
	if seed, ok := replaySeed(t); ok {
		rep, err := RunAdaptScenario(AdaptScenarioConfig{Seed: seed})
		if err != nil {
			reportAdaptFailure(t, rep, err)
		}
		return
	}
	n := seedCount(t, 5)
	migrations := int64(0)
	exceeded := int64(0)
	for seed := int64(1); seed <= int64(n); seed++ {
		rep, err := RunAdaptScenario(AdaptScenarioConfig{Seed: seed, Predictive: seed%4 == 0})
		if err != nil {
			reportAdaptFailure(t, rep, err)
			return
		}
		if rep.Admitted == 0 {
			t.Fatalf("seed %d: adaptation scenario admitted nothing", seed)
		}
		migrations += rep.Migrations
		exceeded += rep.Exceeded
	}
	// The sweep as a whole must actually exercise the adaptation path:
	// surges that drift sessions and migrations that answer them.
	if exceeded == 0 {
		t.Fatal("sweep produced no drift violations; surge schedule is degenerate")
	}
	if migrations == 0 {
		t.Fatal("sweep produced no migrations; the controller never acted")
	}
}

// TestAdaptScenarioDeterminism: the same seed must reproduce the
// identical adaptation schedule and outcome, bit for bit.
func TestAdaptScenarioDeterminism(t *testing.T) {
	first, err := RunAdaptScenario(AdaptScenarioConfig{Seed: 42})
	if err != nil {
		reportAdaptFailure(t, first, err)
		return
	}
	second, err := RunAdaptScenario(AdaptScenarioConfig{Seed: 42})
	if err != nil {
		reportAdaptFailure(t, second, err)
		return
	}
	if strings.Join(first.Log, "\n") != strings.Join(second.Log, "\n") {
		t.Fatal("same seed produced different adaptation schedules")
	}
	if first.Admitted != second.Admitted || first.Migrations != second.Migrations ||
		first.Exceeded != second.Exceeded || first.Recovered != second.Recovered ||
		first.Forgotten != second.Forgotten || first.Abandoned != second.Abandoned {
		t.Fatalf("same seed, different outcomes:\n  run 1: %+v\n  run 2: %+v", first, second)
	}
}
