// Package harness is the deterministic simulation-test subsystem for
// the distributed composition engine: FoundationDB-style seeded,
// virtually-clocked, single-threaded runs of internal/dist with
// invariant auditing at every step and a centralized model-based
// oracle (internal/core) checking admission parity and the exhaustive
// phi bound (Eq. 1).
//
// A simulation owns an unstarted cluster (no node goroutines) and a
// clock.Virtual. The scheduler repeatedly picks one node with a
// non-empty mailbox — seeded-randomly, so the interleaving is
// adversarial but replayable — and dispatches exactly one message on
// the driving goroutine. When every mailbox drains, the virtual clock
// jumps to the next pending timer (collection windows, commit
// timeouts, injected delivery delays, release backoff), whose callback
// refills mailboxes. When neither messages nor timers remain, the
// protocol is quiescent. Messages take zero virtual time, so under
// zero faults a deputy's collection window closes only after every
// probe completed — the exhaustive schedule the oracle assumes.
//
// Everything that happens — which node stepped, which message, every
// clock advance — lands in a step log. A failing seed reprints its
// log; re-running with the same seed replays the identical schedule
// bit for bit.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dist"
	"repro/internal/harness/clock"
)

// Sim drives one unstarted cluster deterministically.
type Sim struct {
	Cluster *dist.Cluster
	Clock   *clock.Virtual

	cfg      dist.Config
	rng      *rand.Rand
	auditor  *Auditor
	steps    int
	maxSteps int
	log      []string
}

// maxStepsDefault bounds a runaway schedule (a livelock would otherwise
// loop forever in virtual time).
const maxStepsDefault = 500_000

// NewSim builds an unstarted cluster on a fresh virtual clock and a
// seeded scheduler. schedSeed drives only the scheduler's choices;
// cfg.Seed keeps driving substrate generation and per-node rngs, and
// cfg.Faults.Seed the fault schedule, so the three randomness sources
// stay independently controllable.
func NewSim(cfg dist.Config, schedSeed int64) (*Sim, error) {
	vc := clock.NewVirtual()
	cfg.Clock = vc
	cluster, err := dist.NewUnstarted(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		Cluster:  cluster,
		Clock:    vc,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(mix(schedSeed))),
		maxSteps: maxStepsDefault,
	}
	s.auditor = NewAuditor(cluster, cfg)
	return s, nil
}

// mix is the splitmix64 finaliser, decorrelating seeds that arrive in
// small consecutive ranges (0, 1, 2, ...).
func mix(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Steps reports how many messages have been dispatched so far.
func (s *Sim) Steps() int { return s.steps }

// Log returns the step log accumulated so far.
func (s *Sim) Log() []string { return s.log }

// Auditor exposes the invariant auditor for quiescent-state checks.
func (s *Sim) Auditor() *Auditor { return s.auditor }

func (s *Sim) logf(format string, args ...interface{}) {
	s.log = append(s.log, fmt.Sprintf(format, args...))
}

// step dispatches one message on a seeded-randomly chosen node with a
// non-empty mailbox, then audits every per-step invariant. It returns
// false when all mailboxes are empty.
func (s *Sim) step() (bool, error) {
	ready := make([]int, 0, s.Cluster.NumNodes())
	for id := 0; id < s.Cluster.NumNodes(); id++ {
		if s.Cluster.MailboxDepth(id) > 0 {
			ready = append(ready, id)
		}
	}
	if len(ready) == 0 {
		return false, nil
	}
	id := ready[s.rng.Intn(len(ready))]
	desc, _ := s.Cluster.StepNode(id)
	s.steps++
	s.logf("step %d: node=%d %s", s.steps, id, desc)
	if err := s.auditor.CheckStep(); err != nil {
		return true, fmt.Errorf("after step %d (node %d, %s): %w", s.steps, id, desc, err)
	}
	return true, nil
}

// RunToQuiescence processes messages and fires timers until neither
// remain: mailboxes are drained between timer fires, and the virtual
// clock jumps timer to timer. Invariants are audited after every
// dispatched message and every clock advance.
func (s *Sim) RunToQuiescence() error {
	for {
		if s.steps >= s.maxSteps {
			return fmt.Errorf("harness: no quiescence within %d steps (livelock?)", s.maxSteps)
		}
		progressed, err := s.step()
		if err != nil {
			return err
		}
		if progressed {
			continue
		}
		d, ok := s.Clock.AdvanceToNext()
		if !ok {
			return nil
		}
		s.logf("advance %v (t=%v)", d, s.Clock.Now().Sub(time.Unix(0, 0)))
		if err := s.auditor.CheckStep(); err != nil {
			return fmt.Errorf("after advancing %v: %w", d, err)
		}
	}
}

// Settle ages out whatever quiescence left behind — orphaned transient
// holds and release tombstones — by advancing the clock a sweep period
// at a time and running every node's sweep pass, until nothing decays
// anymore (bounded by the TTL plus slack). Messages a sweep or timer
// surfaces are drained through the normal audited scheduler.
func (s *Sim) Settle() error {
	sweepEvery := s.cfg.SweepInterval
	if sweepEvery <= 0 {
		sweepEvery = s.cfg.HoldTTL / 4
	}
	rounds := int(s.cfg.HoldTTL/sweepEvery) + 3
	for i := 0; i < rounds; i++ {
		if s.leftovers() == 0 {
			return nil
		}
		s.Clock.Advance(sweepEvery)
		for id := 0; id < s.Cluster.NumNodes(); id++ {
			s.Cluster.SweepNode(id)
		}
		s.logf("settle: swept all nodes (t=%v)", s.Clock.Now().Sub(time.Unix(0, 0)))
		if err := s.RunToQuiescence(); err != nil {
			return err
		}
	}
	if n := s.leftovers(); n > 0 {
		return fmt.Errorf("harness: %d holds/tombstones survived %d sweep rounds", n, rounds)
	}
	return nil
}

// leftovers counts transient state still decaying across all nodes.
func (s *Sim) leftovers() int {
	total := 0
	for id := 0; id < s.Cluster.NumNodes(); id++ {
		acc := s.Cluster.NodeAccountingAt(id)
		total += acc.Holds + acc.Tombstones
	}
	return total
}
