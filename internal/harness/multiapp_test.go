package harness

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// reportMultiAppFailure prints the failing seed/family and the tail of
// its schedule log, plus the one-liner replay command.
func reportMultiAppFailure(t *testing.T, rep *MultiAppReport, err error) {
	t.Helper()
	const tail = 40
	log := rep.Log
	if len(log) > tail {
		log = log[len(log)-tail:]
	}
	t.Errorf("seed %d family %s failed: %v\nreplay: ACP_SIM_SEED=%d go test ./internal/harness -run %s -v\nlast %d schedule entries:\n%s",
		rep.Seed, rep.Family, err, rep.Seed, t.Name(), len(log), strings.Join(log, "\n"))
}

// TestMultiAppScenarios sweeps every scenario family through the
// oracle-audited multi-application harness. ACP_SIM_SEEDS widens the
// sweep in CI (50) and nightly (500); ACP_SIM_SEED replays one seed.
func TestMultiAppScenarios(t *testing.T) {
	families := workload.Families()
	if seed, ok := replaySeed(t); ok {
		for _, f := range families {
			rep, err := RunMultiAppScenario(MultiAppConfig{Seed: seed, Family: f, Oracle: true})
			if err != nil {
				reportMultiAppFailure(t, rep, err)
			}
		}
		return
	}
	n := seedCount(t, 3)
	if n > 50 {
		n = 50 // the exhaustive oracle replay bounds the nightly sweep
	}
	arrivals, admitted, quotaRejected := 0, 0, 0
	perFamilyAdmitted := make(map[string]int)
	for seed := int64(1); seed <= int64(n); seed++ {
		for _, f := range families {
			rep, err := RunMultiAppScenario(MultiAppConfig{Seed: seed, Family: f, Oracle: true})
			if err != nil {
				reportMultiAppFailure(t, rep, err)
				return
			}
			arrivals += rep.Arrivals
			admitted += rep.Admitted
			quotaRejected += rep.QuotaRejected
			perFamilyAdmitted[rep.Family] += rep.Admitted
		}
	}
	// Coverage: the sweep must exercise real admission, real quota
	// pressure, and every family — a degenerate workload would pass the
	// invariants vacuously.
	if arrivals == 0 || admitted == 0 {
		t.Fatalf("sweep admitted %d of %d arrivals; workload is degenerate", admitted, arrivals)
	}
	if quotaRejected == 0 {
		t.Fatal("sweep produced no quota rejections; quotas are not binding")
	}
	for _, f := range families {
		if perFamilyAdmitted[f.String()] == 0 {
			t.Errorf("family %s admitted nothing across %d seeds", f, n)
		}
	}
}

// TestMultiAppDeterminism: the same seed must replay the identical
// episode, log line for log line, for every family.
func TestMultiAppDeterminism(t *testing.T) {
	for _, f := range workload.Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			first, err := RunMultiAppScenario(MultiAppConfig{Seed: 42, Family: f, Oracle: true})
			if err != nil {
				reportMultiAppFailure(t, first, err)
				return
			}
			second, err := RunMultiAppScenario(MultiAppConfig{Seed: 42, Family: f, Oracle: true})
			if err != nil {
				reportMultiAppFailure(t, second, err)
				return
			}
			if len(first.Log) != len(second.Log) {
				t.Fatalf("same seed, different schedule lengths: %d vs %d", len(first.Log), len(second.Log))
			}
			for i := range first.Log {
				if first.Log[i] != second.Log[i] {
					t.Fatalf("same seed diverged at schedule entry %d:\n  run 1: %s\n  run 2: %s",
						i, first.Log[i], second.Log[i])
				}
			}
			if first.Admitted != second.Admitted || first.QuotaRejected != second.QuotaRejected ||
				first.Fairness != second.Fairness {
				t.Fatalf("same seed, different outcomes: %+v vs %+v", first, second)
			}
		})
	}
}

// TestMultiAppFairnessBounds: the reported indices are genuine Jain
// values — inside [1/n, 1] — and the flash-crowd family, whose quota
// gate deliberately clips the surging tenant, still reports a
// non-degenerate admission fairness.
func TestMultiAppFairnessBounds(t *testing.T) {
	for _, f := range workload.Families() {
		rep, err := RunMultiAppScenario(MultiAppConfig{Seed: 7, Family: f, Oracle: false})
		if err != nil {
			reportMultiAppFailure(t, rep, err)
			return
		}
		lo := 1 / float64(rep.Tenants)
		if rep.Fairness < lo-1e-9 || rep.Fairness > 1+1e-9 {
			t.Errorf("family %s: admission fairness %v outside [%v, 1]", f, rep.Fairness, lo)
		}
		if rep.MinLiveFairness < lo-1e-9 || rep.MinLiveFairness > 1+1e-9 {
			t.Errorf("family %s: live fairness %v outside [%v, 1]", f, rep.MinLiveFairness, lo)
		}
	}
}
