package clock

import (
	"sync"
	"testing"
	"time"
)

func TestWallBasics(t *testing.T) {
	c := Wall()
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Error("wall Since did not advance across Sleep")
	}
	fired := make(chan struct{})
	c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("wall AfterFunc never fired")
	}
	if Or(nil) != Wall() {
		t.Error("Or(nil) is not the wall clock")
	}
	if v := NewVirtual(); Or(v) != v {
		t.Error("Or(v) did not pass the clock through")
	}
}

func TestVirtualAdvanceFiresInOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 2) }) // same deadline: registration order
	v.AfterFunc(50*time.Millisecond, func() { order = append(order, 4) })

	v.Advance(40 * time.Millisecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", order)
	}
	if got := v.PendingTimers(); got != 1 {
		t.Errorf("pending = %d, want 1", got)
	}
	v.Advance(10 * time.Millisecond)
	if len(order) != 4 || order[3] != 4 {
		t.Errorf("late timer did not fire: %v", order)
	}
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual()
	epoch := v.Now()
	fired := 0
	v.AfterFunc(7*time.Millisecond, func() { fired++ })
	v.AfterFunc(20*time.Millisecond, func() { fired++ })

	step, ok := v.AdvanceToNext()
	if !ok || step != 7*time.Millisecond || fired != 1 {
		t.Fatalf("first AdvanceToNext: step=%v ok=%v fired=%d", step, ok, fired)
	}
	step, ok = v.AdvanceToNext()
	if !ok || step != 13*time.Millisecond || fired != 2 {
		t.Fatalf("second AdvanceToNext: step=%v ok=%v fired=%d", step, ok, fired)
	}
	if _, ok := v.AdvanceToNext(); ok {
		t.Error("AdvanceToNext reported a timer on an empty clock")
	}
	if got := v.Since(epoch); got != 20*time.Millisecond {
		t.Errorf("virtual elapsed = %v, want 20ms", got)
	}
}

func TestVirtualCallbackReschedules(t *testing.T) {
	// A callback that re-arms itself within the advance window must fire
	// again inside the same Advance call (retry-backoff chains rely on
	// this).
	v := NewVirtual()
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 3 {
			v.AfterFunc(time.Millisecond, rearm)
		}
	}
	v.AfterFunc(time.Millisecond, rearm)
	v.Advance(10 * time.Millisecond)
	if count != 3 {
		t.Errorf("chained callback fired %d times, want 3", count)
	}
}

func TestVirtualTimerStop(t *testing.T) {
	v := NewVirtual()
	fired := false
	timer := v.AfterFunc(5*time.Millisecond, func() { fired = true })
	if !timer.Stop() {
		t.Error("Stop on pending timer reported false")
	}
	if timer.Stop() {
		t.Error("second Stop reported true")
	}
	v.Advance(10 * time.Millisecond)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestVirtualTicker(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(10 * time.Millisecond)
	ticks := 0
	for i := 0; i < 3; i++ {
		v.Advance(10 * time.Millisecond)
		select {
		case <-tk.C():
			ticks++
		default:
			t.Fatalf("tick %d not delivered", i)
		}
	}
	tk.Stop()
	v.Advance(50 * time.Millisecond)
	select {
	case <-tk.C():
		t.Error("stopped ticker ticked")
	default:
	}
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
	// An unconsumed tick is dropped, not queued (time.Ticker semantics).
	tk2 := v.NewTicker(time.Millisecond)
	v.Advance(10 * time.Millisecond)
	drained := 0
	for {
		select {
		case <-tk2.C():
			drained++
			continue
		default:
		}
		break
	}
	if drained > 1 {
		t.Errorf("ticker queued %d ticks across one advance, want at most 1 buffered", drained)
	}
	tk2.Stop()
}

func TestVirtualSleepAndAfter(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	woke := make(chan time.Duration, 1)
	start := v.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(25 * time.Millisecond)
		woke <- v.Since(start)
	}()
	// Let the sleeper register its timer, then advance.
	for v.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	v.Advance(25 * time.Millisecond)
	wg.Wait()
	if got := <-woke; got != 25*time.Millisecond {
		t.Errorf("sleeper woke at %v, want 25ms", got)
	}
	if d, ok := v.NextDeadline(); ok {
		t.Errorf("unexpected pending deadline %v", d)
	}
}
