// Package clock abstracts time for the layers of the system that sleep,
// schedule, and expire: a Clock interface with a wall implementation
// (thin wrappers over package time) and a virtual implementation driven
// by an explicit Advance. Production code takes a Clock and defaults to
// Wall(); the deterministic simulation harness (internal/harness)
// substitutes a Virtual clock so hold TTLs, collection windows, commit
// timeouts, sweep periods, and injected delivery delays all elapse in
// zero wall time, in a reproducible order.
//
// The Virtual clock is FoundationDB-style discrete time: timers fire in
// (deadline, registration) order, callbacks run synchronously on the
// goroutine calling Advance, and nothing moves unless the driver moves
// it. That makes a single-threaded simulation bit-reproducible — the
// same seed replays the same schedule.
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time surface the engine layers consume. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Since returns the elapsed time from t to Now.
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d. On a Virtual clock the
	// sleeper wakes when some other goroutine advances past its deadline.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f after d. On a Virtual clock f runs
	// synchronously on the advancing goroutine.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
}

// Timer is a cancellable pending AfterFunc.
type Timer interface {
	// Stop cancels the timer, reporting whether it was still pending.
	Stop() bool
}

// Ticker delivers ticks on C until stopped.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// ---------------------------------------------------------------------
// Wall clock

type wallClock struct{}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool { return w.t.Stop() }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }

// wallClock is the one sanctioned boundary to package time: everything
// else in the deterministic packages reaches the clock through the Clock
// interface, so each method carries the acplint determinism waiver.
func (wallClock) Now() time.Time                         { return time.Now() }    //acp:nondeterminism-ok wallClock is the real-time Clock implementation
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) } //acp:nondeterminism-ok wallClock is the real-time Clock implementation
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }        //acp:nondeterminism-ok wallClock is the real-time Clock implementation
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //acp:nondeterminism-ok wallClock is the real-time Clock implementation
func (wallClock) AfterFunc(d time.Duration, f func()) Timer {
	return wallTimer{t: time.AfterFunc(d, f)} //acp:nondeterminism-ok wallClock is the real-time Clock implementation
}
func (wallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{t: time.NewTicker(d)} //acp:nondeterminism-ok wallClock is the real-time Clock implementation
}

var wall Clock = wallClock{}

// Wall returns the real-time clock backed by package time.
func Wall() Clock { return wall }

// Or returns c, or the wall clock when c is nil — the defaulting rule
// every Config.Clock field shares.
func Or(c Clock) Clock {
	if c == nil {
		return wall
	}
	return c
}

// ---------------------------------------------------------------------
// Virtual clock

// vtimer is one scheduled event on the virtual timeline.
type vtimer struct {
	v   *Virtual
	at  time.Time
	seq uint64 // registration order breaks deadline ties
	fn  func() // runs outside the clock lock
	ch  chan time.Time
	// period re-arms the timer after firing (tickers).
	period time.Duration
	// stopped is set by Stop; fired entries are skipped lazily.
	stopped bool
	index   int // heap position, -1 when popped
}

type vheap []*vtimer

func (h vheap) Len() int { return len(h) }
func (h vheap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h vheap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *vheap) Push(x interface{}) {
	t := x.(*vtimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *vheap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Virtual is a manually-advanced clock. Time starts at the Unix epoch
// and moves only through Advance/AdvanceToNext. Safe for concurrent
// use; timer callbacks run on the advancing goroutine with the clock
// unlocked, so callbacks may freely register new timers.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers vheap
}

// NewVirtual returns a virtual clock positioned at the Unix epoch.
func NewVirtual() *Virtual {
	return &Virtual{now: time.Unix(0, 0)}
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Since returns virtual time elapsed since t.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Sleep blocks until another goroutine advances the clock past d.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After returns a channel delivering the virtual time once d elapses.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.schedule(d, nil, ch, 0)
	return ch
}

// AfterFunc schedules f to run after d virtual time. f runs
// synchronously on whichever goroutine advances the clock.
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	return v.schedule(d, f, nil, 0)
}

type virtualTicker struct {
	t *vtimer
	v *Virtual
	c chan time.Time
}

func (vt *virtualTicker) C() <-chan time.Time { return vt.c }
func (vt *virtualTicker) Stop()               { vt.v.stop(vt.t) }

// NewTicker returns a ticker that fires every d of virtual time. Ticks
// are delivered into a 1-buffered channel; an unconsumed tick is
// dropped, matching time.Ticker.
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	ch := make(chan time.Time, 1)
	t := v.schedule(d, nil, ch, d).(*vtimer)
	return &virtualTicker{t: t, v: v, c: ch}
}

func (v *Virtual) schedule(d time.Duration, fn func(), ch chan time.Time, period time.Duration) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.seq++
	t := &vtimer{v: v, at: v.now.Add(d), seq: v.seq, fn: fn, ch: ch, period: period}
	heap.Push(&v.timers, t)
	return t
}

// Stop cancels the timer, reporting whether it had not yet fired.
func (t *vtimer) Stop() bool { return t.v.stop(t) }

func (v *Virtual) stop(t *vtimer) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	if t.index >= 0 {
		heap.Remove(&v.timers, t.index)
		return true
	}
	return false
}

// PendingTimers returns how many live timers are scheduled.
func (v *Virtual) PendingTimers() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.timers {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline reports the earliest live timer deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	var (
		min  time.Time
		live bool
	)
	for _, t := range v.timers {
		if !t.stopped && (!live || t.at.Before(min)) {
			min, live = t.at, true
		}
	}
	return min, live
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline falls within the window in (deadline, registration) order.
// Callbacks run synchronously with the clock unlocked, so a callback
// that schedules follow-up work within the same window is honoured.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	v.mu.Lock()
	target := v.now.Add(d)
	v.advanceTo(target)
	v.mu.Unlock()
}

// AdvanceToNext jumps to the earliest pending timer deadline and fires
// everything due at that instant. It reports the step taken and false
// when no timer is pending.
func (v *Virtual) AdvanceToNext() (time.Duration, bool) {
	v.mu.Lock()
	// Drop stopped leaders so the next deadline is live.
	for len(v.timers) > 0 && v.timers[0].stopped {
		heap.Pop(&v.timers)
	}
	if len(v.timers) == 0 {
		v.mu.Unlock()
		return 0, false
	}
	target := v.timers[0].at
	step := target.Sub(v.now)
	v.advanceTo(target)
	v.mu.Unlock()
	return step, true
}

// advanceTo fires due timers and moves now to target. Called with v.mu
// held; unlocks around each callback.
func (v *Virtual) advanceTo(target time.Time) {
	for len(v.timers) > 0 {
		t := v.timers[0]
		if t.stopped {
			heap.Pop(&v.timers)
			continue
		}
		if t.at.After(target) {
			break
		}
		heap.Pop(&v.timers)
		v.now = t.at
		fn, ch, at := t.fn, t.ch, t.at
		if t.period > 0 {
			// Re-arm the same vtimer so a ticker's Stop handle keeps
			// pointing at the live entry across fires.
			v.seq++
			t.at = at.Add(t.period)
			t.seq = v.seq
			heap.Push(&v.timers, t)
		}
		v.mu.Unlock()
		if ch != nil {
			select {
			case ch <- at:
			default: // ticker semantics: drop unconsumed ticks
			}
		}
		if fn != nil {
			fn()
		}
		v.mu.Lock()
	}
	if target.After(v.now) {
		v.now = target
	}
}
