package harness

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/runtime"
)

// AdaptScenarioConfig parameterises one seeded adaptation run: a live
// runtime cluster on the virtual clock, churned by admissions, closes,
// and synthetic congestion surges, with the re-composition controller
// answering drift. The seed alone replays the run.
type AdaptScenarioConfig struct {
	// Seed drives the substrate, workload, and surge schedule.
	Seed int64
	// Rounds is how many surge/churn rounds the scenario plays. Zero
	// means 6.
	Rounds int
	// Sessions is the concurrent-session target the workload tops up to
	// each round. Zero means 3.
	Sessions int
	// Predictive enables the controller's Holt forecast mode.
	Predictive bool
}

// AdaptReport is the outcome of one adaptation scenario.
type AdaptReport struct {
	Seed       int64
	Admitted   int
	Migrations int64
	Exceeded   int64
	Recovered  int64
	Forgotten  int64
	Abandoned  int64
	// Log narrates the schedule: every admission, surge, tick batch,
	// close, and audit point. The failing-seed replay transcript.
	Log []string
}

// adaptTolerance is the drift headroom every adaptation scenario runs
// with: observed phi may run 50% over the admission-time bound before
// the controller acts, and replacement compositions get the same slack.
const adaptTolerance = 0.5

// RunAdaptScenario executes one seeded adaptation scenario end to end
// and audits, at every virtual-clock tick:
//
//   - the ledger's conservation invariants (Eqs. 4–5), including any
//     open migration windows;
//   - that no live session is ever unheld — make-before-break means a
//     committed allocation exists at every instant, including
//     mid-migration;
//   - no-worse-phi: a session that just migrated must not be worse off
//     than before the flip (and within the acceptance bound, modulo
//     same-tick placements by other migrations).
//
// At teardown it verifies full resource recovery and the drift
// monitor's accounting identity.
func RunAdaptScenario(sc AdaptScenarioConfig) (*AdaptReport, error) {
	if sc.Rounds <= 0 {
		sc.Rounds = 6
	}
	if sc.Sessions <= 0 {
		sc.Sessions = 3
	}
	wrng := rand.New(rand.NewSource(mix(sc.Seed ^ 0xada7)))

	vc := clock.NewVirtual()
	reg := obs.NewRegistry()
	rcfg := runtime.DefaultConfig()
	rcfg.Seed = sc.Seed
	rcfg.IPNodes = 64
	rcfg.OverlayNodes = 8
	rcfg.NeighborsPerNode = 3
	rcfg.NumFunctions = 4
	rcfg.ComponentsPerNode = 2
	rcfg.NodeCapacity = qos.Resources{CPU: 100, Memory: 1000}
	rcfg.Clock = vc
	rcfg.Registry = reg
	c, err := runtime.NewCluster(rcfg)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	ctrl, err := c.EnableAdaptation(runtime.AdaptConfig{
		Period:       time.Second,
		Tolerance:    adaptTolerance,
		MaxRetries:   3,
		RetryBackoff: 2 * time.Second,
		Predictive:   sc.Predictive,
	})
	if err != nil {
		return nil, err
	}
	defer ctrl.Stop()
	ctrl.Start()

	rep := &AdaptReport{Seed: sc.Seed}
	logf := func(format string, args ...interface{}) {
		rep.Log = append(rep.Log, fmt.Sprintf(format, args...))
	}
	fail := func(err error) (*AdaptReport, error) {
		fillAdaptReport(rep, reg)
		return rep, fmt.Errorf("seed %d: %w", sc.Seed, err)
	}

	tick := func(stage string) error {
		pre := map[runtime.SessionID]runtime.SessionAudit{}
		for _, a := range c.AuditSessions() {
			pre[a.ID] = a
		}
		vc.Advance(time.Second)
		logf("tick (%s) t=%v", stage, vc.Now().Sub(time.Unix(0, 0)))
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: %w", stage, err)
		}
		for _, a := range c.AuditSessions() {
			before, seen := pre[a.ID]
			if !seen || a.Migrations == before.Migrations {
				continue
			}
			// Freshly migrated: the flip must leave the session no worse
			// than it stood before the tick, and the acceptance rule says
			// the new composition met the bound at decision time. Other
			// sessions migrating in the same tick may land nearby, so the
			// bound check carries their worst-case squeeze via max().
			bound := a.RequiredPhi * (1 + adaptTolerance)
			limit := bound
			if before.ObservedPhi > limit {
				limit = before.ObservedPhi
			}
			if a.ObservedPhi > limit+1e-9 {
				return fmt.Errorf("%s: session %d worse after migration: phi %v, pre-flip %v, bound %v",
					stage, a.ID, a.ObservedPhi, before.ObservedPhi, bound)
			}
			logf("audit: session %d migrated (phi %.3f -> %.3f, bound %.3f)",
				a.ID, before.ObservedPhi, a.ObservedPhi, bound)
		}
		return nil
	}

	admit := func() error {
		for c.ActiveSessions() < sc.Sessions {
			length := 2 + wrng.Intn(2)
			fns := make([]component.FunctionID, length)
			for i := range fns {
				fns[i] = component.FunctionID(wrng.Intn(rcfg.NumFunctions))
			}
			res := make([]qos.Resources, length)
			for i := range res {
				res[i] = qos.Resources{CPU: 2 + wrng.Float64()*8, Memory: 20 + wrng.Float64()*80}
			}
			id, err := c.Find(component.NewPathGraph(fns),
				qos.Vector{Delay: 1e5, LossCost: qos.LossCost(0.9)}, res, 20+wrng.Float64()*60)
			if err != nil {
				logf("admit refused: %v", err)
				return nil // congestion can legitimately refuse admissions
			}
			rep.Admitted++
			logf("admitted session %d", id)
		}
		return nil
	}

	var surges []int64
	nextSurge := int64(-1)
	live := func() []runtime.SessionAudit { return c.AuditSessions() }

	for round := 0; round < sc.Rounds; round++ {
		if err := admit(); err != nil {
			return fail(err)
		}
		if err := tick("baseline"); err != nil {
			return fail(err)
		}

		// Surge: squeeze a random live session's nodes to a sliver.
		if sessions := live(); len(sessions) > 0 && wrng.Float64() < 0.8 {
			victim := sessions[wrng.Intn(len(sessions))]
			desc, err := c.Describe(victim.ID)
			if err == nil {
				load := map[int]qos.Resources{}
				for _, pc := range desc.Components {
					if _, dup := load[pc.Node]; dup {
						continue
					}
					avail := c.NodeResidual(pc.Node)
					load[pc.Node] = qos.Resources{CPU: avail.CPU - 1, Memory: avail.Memory - 10}
				}
				if err := c.InjectLoad(nextSurge, load); err == nil {
					logf("round %d: surge %d on session %d's nodes", round, nextSurge, victim.ID)
					surges = append(surges, nextSurge)
					nextSurge--
				}
			}
		}

		// Let the controller observe, migrate, and settle.
		for i := 0; i < 3; i++ {
			if err := tick("settle"); err != nil {
				return fail(err)
			}
		}

		// Surges end; sessions sometimes close mid-violation (the drift
		// monitor must account them as forgotten, not leak them).
		if len(surges) > 0 && wrng.Float64() < 0.6 {
			c.ReleaseLoad(surges[0])
			logf("round %d: released surge %d", round, surges[0])
			surges = surges[1:]
		}
		if sessions := live(); len(sessions) > 0 && wrng.Float64() < 0.4 {
			victim := sessions[wrng.Intn(len(sessions))]
			if err := c.Close(victim.ID); err != nil {
				return fail(fmt.Errorf("round %d: close session %d: %w", round, victim.ID, err))
			}
			logf("round %d: closed session %d", round, victim.ID)
		}
		if err := tick("churn"); err != nil {
			return fail(err)
		}
	}

	// Teardown: end every surge, let violations recover, close all.
	for _, owner := range surges {
		c.ReleaseLoad(owner)
	}
	logf("teardown: all surges released")
	for i := 0; i < 2; i++ {
		if err := tick("drain"); err != nil {
			return fail(err)
		}
	}
	for _, a := range live() {
		if err := c.Close(a.ID); err != nil {
			return fail(fmt.Errorf("teardown close %d: %w", a.ID, err))
		}
	}
	if err := tick("idle"); err != nil {
		return fail(err)
	}
	if got := c.ActiveSessions(); got != 0 {
		return fail(fmt.Errorf("teardown left %d sessions", got))
	}
	// Full resource recovery: every node back to pristine capacity
	// (within float accumulation error of the release arithmetic).
	for n := 0; n < c.NumNodes(); n++ {
		got := c.NodeResidual(n)
		if math.Abs(got.CPU-rcfg.NodeCapacity.CPU) > 1e-6 ||
			math.Abs(got.Memory-rcfg.NodeCapacity.Memory) > 1e-6 {
			return fail(fmt.Errorf("node %d residual %v after teardown, want %v", n, got, rcfg.NodeCapacity))
		}
	}

	fillAdaptReport(rep, reg)
	// The drift monitor's books must balance: every violation episode
	// ends in exactly one of recovery, forgetting (closed mid-violation),
	// or still-in-violation (impossible here — the cluster is idle).
	s := reg.Snapshot()
	inViolation := int64(s.Gauges["obs.drift.sessions_exceeded"])
	if inViolation != 0 {
		return fail(fmt.Errorf("idle cluster reports %d sessions in violation", inViolation))
	}
	if rep.Exceeded != rep.Recovered+rep.Forgotten {
		return fail(fmt.Errorf("drift accounting broken: exceeded %d != recovered %d + forgotten %d",
			rep.Exceeded, rep.Recovered, rep.Forgotten))
	}
	return rep, nil
}

func fillAdaptReport(rep *AdaptReport, reg *obs.Registry) {
	s := reg.Snapshot()
	rep.Migrations = s.Counters["runtime.migrations"]
	rep.Exceeded = s.Counters["obs.drift.exceeded_total"]
	rep.Recovered = s.Counters["obs.drift.recovered_total"]
	rep.Forgotten = s.Counters["obs.drift.forgotten_total"]
	rep.Abandoned = s.Counters["adapt.abandoned"]
}
