package harness

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/state"
)

// phiSlack tolerates float noise between the two phi computations; a
// genuine bound violation is orders of magnitude larger.
const phiSlack = 1e-6

// Oracle is the model-based reference: the centralized exhaustive
// composer (core.AlgOptimal) running over the *same* mesh and catalog
// as the distributed cluster, with its own ledger kept in lockstep by
// committing exactly the compositions the dist engine commits. Under a
// zero-fault, full-probing (alpha=1), sequential schedule the two
// systems see identical resource states, so for every request:
//
//   - admission parity: dist admits iff the exhaustive search finds a
//     qualified composition;
//   - the phi bound (Eq. 1): dist's chosen composition never beats the
//     exhaustive optimum.
type Oracle struct {
	composer *core.Composer
	mesh     *overlay.Mesh
	catalog  *component.Catalog
}

// NewOracle builds the reference composer over the cluster's substrate.
// The cluster must have been built by NewSim (its clock supplies the
// oracle's virtual time).
func NewOracle(s *Sim) (*Oracle, error) {
	mesh, catalog := s.Cluster.Mesh(), s.Cluster.Catalog()
	counters := &metrics.Counters{}
	start := s.Clock.Now()
	now := func() time.Duration { return s.Clock.Now().Sub(start) }
	ledger := state.NewLedger(mesh, s.cfg.NodeCapacity, now)
	global, err := state.NewGlobal(ledger, mesh, state.DefaultGlobalConfig(), counters)
	if err != nil {
		return nil, err
	}
	env := core.Env{
		Mesh:     mesh,
		Catalog:  catalog,
		Registry: discovery.NewRegistry(catalog, mesh.NumNodes(), counters),
		Ledger:   ledger,
		Global:   global,
		Counters: counters,
		Now:      now,
		Rand:     rand.New(rand.NewSource(mix(s.cfg.Seed ^ 0x09ac1e))),
	}
	ccfg := core.DefaultConfig()
	ccfg.Algorithm = core.AlgOptimal
	// The oracle holds nothing transiently: each request is probed and
	// (when dist admitted it) committed atomically before the next, so
	// holds would only add expiry bookkeeping.
	ccfg.TransientAllocation = false
	composer, err := core.NewComposer(env, ccfg)
	if err != nil {
		return nil, err
	}
	return &Oracle{composer: composer, mesh: mesh, catalog: catalog}, nil
}

// Check replays one resolved request through the exhaustive composer
// and verifies admission parity and the phi bound, then folds the dist
// engine's actual decision into the oracle ledger so both systems
// enter the next request with identical committed state. comp is nil
// when dist rejected the request.
func (o *Oracle) Check(req *component.Request, owner int64, comp *dist.Composition) error {
	r := *req
	r.ID = owner
	outcome, err := o.composer.Probe(&r)
	if err != nil {
		return fmt.Errorf("oracle probe for request %d: %w", owner, err)
	}
	if comp == nil {
		if outcome.Success() {
			return fmt.Errorf("request %d: dist rejected but the exhaustive search found a qualified composition (phi=%v)",
				owner, outcome.Best.Phi)
		}
		return nil
	}
	if !outcome.Success() {
		return fmt.Errorf("request %d: dist admitted (phi=%v) but the exhaustive search found no qualified composition",
			owner, comp.Phi)
	}
	if comp.Phi < outcome.Best.Phi-phiSlack {
		return fmt.Errorf("request %d: dist phi %v beats the exhaustive bound %v",
			owner, comp.Phi, outcome.Best.Phi)
	}
	// Sync: commit what dist actually chose (not the oracle's own
	// winner — ties may break differently) so the ledgers agree.
	cc, err := o.lift(&r, comp)
	if err != nil {
		return err
	}
	if err := o.composer.Commit(&core.Outcome{Request: &r, Best: cc}); err != nil {
		return fmt.Errorf("oracle commit of dist composition for request %d: %w", owner, err)
	}
	return nil
}

// Release tears the session down in the oracle ledger, mirroring the
// dist-side release.
func (o *Oracle) Release(owner int64) { o.composer.Release(owner) }

// lift rebuilds a dist composition as a core composition: same
// component assignment, routes resolved per graph edge.
func (o *Oracle) lift(req *component.Request, comp *dist.Composition) (*core.Composition, error) {
	cc := &core.Composition{
		Components: comp.Components,
		QoS:        comp.QoS,
		Phi:        comp.Phi,
	}
	for _, e := range req.Graph.Edges {
		from := o.hostOf(comp.Components[e.From])
		to := o.hostOf(comp.Components[e.To])
		route, ok := o.mesh.RouteBetween(from, to)
		if !ok {
			return nil, fmt.Errorf("request %d: no route %d->%d for committed composition", req.ID, from, to)
		}
		cc.Routes = append(cc.Routes, route)
	}
	return cc, nil
}

func (o *Oracle) hostOf(id component.ComponentID) int {
	return o.catalog.Component(id).Node
}
