package harness

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/harness/clock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/runtime"
	"repro/internal/state"
	"repro/internal/workload"
)

// MultiAppConfig parameterises one seeded concurrent multi-application
// run: competing tenants drawn from a workload scenario family, each
// under a per-tenant admission quota, sharing one runtime cluster. The
// seed alone replays the run.
type MultiAppConfig struct {
	// Seed drives the substrate, the arrival plan, and request shapes.
	Seed int64
	// Family selects the scenario family. Zero means flash-crowd.
	Family workload.Family
	// Tenants is the number of competing applications. Zero means 3.
	Tenants int
	// Ticks is the episode length in admission rounds. Zero means 18.
	Ticks int
	// Load is the base expected arrivals per tenant per tick. Zero
	// means 1.5.
	Load float64
	// Oracle enables the replica reference composer: every admission
	// decision is replayed through an independent core.AlgOptimal engine
	// over a lockstep ledger and checked for admission, composition,
	// phi, and quota parity.
	Oracle bool
}

// MultiAppReport is the outcome of one multi-application episode.
type MultiAppReport struct {
	Seed    int64
	Family  string
	Tenants int
	// Arrivals / Admitted / QuotaRejected / Refused partition the
	// episode's requests: every arrival is admitted, rejected by its
	// tenant quota, or refused by the composition engine.
	Arrivals      int
	Admitted      int
	QuotaRejected int
	Refused       int
	// TenantArrivals / TenantAdmitted split the partition per tenant.
	TenantArrivals []int
	TenantAdmitted []int
	// Fairness is Jain's index over per-tenant admission success rates
	// at the end of the episode.
	Fairness float64
	// MinLiveFairness is the lowest weighted Jain index over live
	// per-tenant CPU shares observed at any audited tick (1 when no
	// tick had live tenant usage).
	MinLiveFairness float64
	// Log narrates the schedule — the failing-seed replay transcript.
	Log []string
}

// multiAppSession is the harness's book entry for one live session:
// exactly what the conservation audit must find committed in the
// ledger, and what teardown must release.
type multiAppSession struct {
	id      runtime.SessionID
	reqID   int64
	tenant  int
	closeAt int
	demand  runtime.TenantUsage
	// nodeDemand / linkDemand are the session's committed footprint,
	// derived from its described placement at admission (compositions
	// never migrate in this scenario).
	nodeDemand map[int]qos.Resources
	linkDemand map[int]float64
}

// multiAppOracle is the reference composer for multi-application runs:
// the same exhaustive engine (core.AlgOptimal, transient holds on, same
// phi mode and node classes) as the cluster under test, probing over
// its own ledger kept in lockstep — including mirrored outage
// blackouts. AlgOptimal's walk draws no randomness, so over identical
// committed state the replica must reproduce the runtime's decision
// exactly: admission parity, the identical winning composition, and
// bit-equal phi. Any divergence means admission stopped being a pure
// function of the committed resource state.
type multiAppOracle struct {
	composer *core.Composer
	ledger   *state.Ledger
	mesh     *overlay.Mesh
	catalog  *component.Catalog
}

func newMultiAppOracle(c *runtime.Cluster, vc clock.Clock, seed int64, phi core.PhiMode, classes []qos.Resources, nodeCap qos.Resources) (*multiAppOracle, error) {
	mesh, catalog := c.Mesh(), c.Catalog()
	counters := &metrics.Counters{}
	start := vc.Now()
	now := func() time.Duration { return vc.Now().Sub(start) }
	ledger := state.NewLedger(mesh, nodeCap, now)
	for node, capacity := range classes {
		if err := ledger.SetNodeCapacity(node, capacity); err != nil {
			return nil, err
		}
	}
	global, err := state.NewGlobal(ledger, mesh, state.DefaultGlobalConfig(), counters)
	if err != nil {
		return nil, err
	}
	env := core.Env{
		Mesh:     mesh,
		Catalog:  catalog,
		Registry: discovery.NewRegistry(catalog, mesh.NumNodes(), counters),
		Ledger:   ledger,
		Global:   global,
		Counters: counters,
		Now:      now,
		Rand:     rand.New(rand.NewSource(mix(seed ^ 0x0a1e))),
	}
	ccfg := core.DefaultConfig()
	ccfg.Algorithm = core.AlgOptimal
	ccfg.Phi = phi
	composer, err := core.NewComposer(env, ccfg)
	if err != nil {
		return nil, err
	}
	return &multiAppOracle{composer: composer, ledger: ledger, mesh: mesh, catalog: catalog}, nil
}

// check replays one composed-or-refused request through the replica
// composer: admission parity, the identical winning composition, and
// phi agreement, then commits the runtime's actual placement so the
// ledgers stay lockstep. desc is nil when the runtime refused the
// request.
func (o *multiAppOracle) check(req *component.Request, desc *runtime.Composition) error {
	outcome, err := o.composer.Probe(req)
	if err != nil {
		return fmt.Errorf("oracle probe for request %d: %w", req.ID, err)
	}
	if desc == nil {
		if outcome.Success() {
			o.composer.Abort(req.ID)
			return fmt.Errorf("request %d: runtime refused but the replica oracle found a qualified composition (phi=%v)",
				req.ID, outcome.Best.Phi)
		}
		return nil
	}
	if !outcome.Success() {
		return fmt.Errorf("request %d: runtime admitted (phi=%v) but the replica oracle found no qualified composition",
			req.ID, desc.Phi)
	}
	if math.Abs(desc.Phi-outcome.Best.Phi) > phiSlack {
		return fmt.Errorf("request %d: runtime phi %v disagrees with the replica optimum %v",
			req.ID, desc.Phi, outcome.Best.Phi)
	}
	cc := &core.Composition{QoS: desc.QoS, Phi: desc.Phi}
	for pos, pc := range desc.Components {
		if pc.Component != outcome.Best.Components[pos] {
			return fmt.Errorf("request %d: runtime placed component %d at position %d, replica chose %d",
				req.ID, pc.Component, pos, outcome.Best.Components[pos])
		}
		cc.Components = append(cc.Components, pc.Component)
	}
	for _, e := range req.Graph.Edges {
		from := desc.Components[e.From].Node
		to := desc.Components[e.To].Node
		route, ok := o.mesh.RouteBetween(from, to)
		if !ok {
			return fmt.Errorf("request %d: no route %d->%d for committed composition", req.ID, from, to)
		}
		cc.Routes = append(cc.Routes, route)
	}
	if err := o.composer.Commit(&core.Outcome{Request: req, Best: cc}); err != nil {
		return fmt.Errorf("oracle commit of runtime composition for request %d: %w", req.ID, err)
	}
	return nil
}

// shadowDemand mirrors the runtime's quota accounting of a request: one
// session, the summed per-position resources (in position order, so the
// float arithmetic is identical), and bandwidth per virtual link.
func shadowDemand(graph *component.Graph, resReq []qos.Resources, bandwidthKbps float64) runtime.TenantUsage {
	u := runtime.TenantUsage{Sessions: 1}
	for _, r := range resReq {
		u.CPU += r.CPU
		u.Memory += r.Memory
	}
	u.BandwidthKbps = bandwidthKbps * float64(len(graph.Edges))
	return u
}

// shadowOver mirrors the runtime's quota admission decision (same
// dimension order, same strict comparisons) against the harness's own
// usage books — the independent predictor quota parity is checked
// against.
func shadowOver(limit runtime.TenantQuota, used, demand runtime.TenantUsage) bool {
	switch {
	case limit.MaxSessions > 0 && used.Sessions+demand.Sessions > limit.MaxSessions:
		return true
	case limit.MaxCPU > 0 && used.CPU+demand.CPU > limit.MaxCPU:
		return true
	case limit.MaxMemory > 0 && used.Memory+demand.Memory > limit.MaxMemory:
		return true
	case limit.MaxBandwidthKbps > 0 && used.BandwidthKbps+demand.BandwidthKbps > limit.MaxBandwidthKbps:
		return true
	}
	return false
}

func addUsage(u, d runtime.TenantUsage) runtime.TenantUsage {
	u.Sessions += d.Sessions
	u.CPU += d.CPU
	u.Memory += d.Memory
	u.BandwidthKbps += d.BandwidthKbps
	return u
}

func subUsage(u, d runtime.TenantUsage) runtime.TenantUsage {
	u.Sessions -= d.Sessions
	u.CPU -= d.CPU
	u.Memory -= d.Memory
	u.BandwidthKbps -= d.BandwidthKbps
	return u
}

// tenantQuotaFor sizes tenant i's quota so contention is real: roughly
// three quarters of the tenant's steady-state M/G/inf occupancy
// (load x lifetime), floored at two sessions, with a CPU cap scaled to
// the session cap. Across the seed sweep every family produces genuine
// quota rejections without starving admission entirely.
func tenantQuotaFor(load float64, lifetime int) runtime.TenantQuota {
	sessions := int(0.75 * load * float64(lifetime))
	if sessions < 2 {
		sessions = 2
	}
	return runtime.TenantQuota{
		MaxSessions: sessions,
		MaxCPU:      float64(sessions) * 18,
	}
}

// phiModeFor pairs each family with the phi objective it exercises:
// diurnal's staggered priorities run the weighted objective,
// hetero-nodes runs the bottleneck (max-min surrogate) objective, the
// rest run the paper's Eq. 1 sum.
func phiModeFor(f workload.Family) core.PhiMode {
	switch f {
	case workload.FamilyDiurnal:
		return core.PhiWeighted
	case workload.FamilyHetero:
		return core.PhiBottleneck
	default:
		return core.PhiSum
	}
}

// RunMultiAppScenario executes one seeded multi-application episode end
// to end and audits, at every virtual-clock tick:
//
//   - the ledger's conservation invariants (Eqs. 4-5);
//   - cross-tenant conservation: every node's and link's consumed
//     capacity equals the sum of live sessions' committed demands plus
//     injected outage load — tenants can crowd each other out but never
//     mint or leak capacity;
//   - quota-never-exceeded: the runtime's per-tenant usage equals the
//     harness's independent books and respects every configured limit;
//   - fairness-index bounds: the weighted Jain index over live CPU
//     shares stays in [1/n, 1].
//
// With cfg.Oracle, every admission decision is additionally replayed
// through the exhaustive reference composer (admission, phi, and quota
// parity). At teardown it verifies full per-class resource recovery.
func RunMultiAppScenario(cfg MultiAppConfig) (*MultiAppReport, error) {
	if cfg.Family == 0 {
		cfg.Family = workload.FamilyFlashCrowd
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 3
	}
	if cfg.Ticks <= 0 {
		cfg.Ticks = 18
	}
	if cfg.Load <= 0 {
		cfg.Load = 1.5
	}

	const overlayNodes = 8
	nodeCap := qos.Resources{CPU: 100, Memory: 1000}
	plan, err := workload.NewMultiAppPlan(workload.MultiAppPlanConfig{
		Family:       cfg.Family,
		Seed:         cfg.Seed,
		Tenants:      cfg.Tenants,
		Ticks:        cfg.Ticks,
		Load:         cfg.Load,
		Tick:         time.Second,
		NumNodes:     overlayNodes,
		NodeCapacity: nodeCap,
	})
	if err != nil {
		return nil, err
	}

	vc := clock.NewVirtual()
	reg := obs.NewRegistry()
	phi := phiModeFor(cfg.Family)
	rcfg := runtime.DefaultConfig()
	rcfg.Seed = cfg.Seed
	rcfg.IPNodes = 64
	rcfg.OverlayNodes = overlayNodes
	rcfg.NeighborsPerNode = 3
	rcfg.NumFunctions = 4
	rcfg.ComponentsPerNode = 2
	rcfg.NodeCapacity = nodeCap
	rcfg.NodeCapacities = plan.NodeClasses
	rcfg.Algorithm = core.AlgOptimal
	rcfg.ProbingRatio = 1
	rcfg.Phi = phi
	rcfg.Clock = vc
	rcfg.Registry = reg
	c, err := runtime.NewCluster(rcfg)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	quotas := make([]runtime.TenantQuota, cfg.Tenants)
	for i := range plan.Tenants {
		quotas[i] = tenantQuotaFor(cfg.Load, plan.Tenants[i].Lifetime)
		c.SetTenantQuota(plan.Tenants[i].Tenant, quotas[i])
	}

	var oracle *multiAppOracle
	if cfg.Oracle {
		oracle, err = newMultiAppOracle(c, vc, cfg.Seed, phi, plan.NodeClasses, nodeCap)
		if err != nil {
			return nil, err
		}
	}

	rep := &MultiAppReport{
		Seed:            cfg.Seed,
		Family:          cfg.Family.String(),
		Tenants:         cfg.Tenants,
		TenantArrivals:  make([]int, cfg.Tenants),
		TenantAdmitted:  make([]int, cfg.Tenants),
		MinLiveFairness: 1,
	}
	logf := func(format string, args ...interface{}) {
		rep.Log = append(rep.Log, fmt.Sprintf(format, args...))
	}
	fail := func(err error) (*MultiAppReport, error) {
		return rep, fmt.Errorf("seed %d family %s: %w", cfg.Seed, rep.Family, err)
	}

	wrng := rand.New(rand.NewSource(mix(cfg.Seed ^ 0x3a99)))
	weights := make([]float64, cfg.Tenants)
	shadow := make([]runtime.TenantUsage, cfg.Tenants)
	for i := range plan.Tenants {
		weights[i] = plan.Tenants[i].Weight
	}

	// Outage windows in tick units; each crashed node's blackout is an
	// injected load that pins its residual to zero for the window.
	type blackout struct {
		node            int
		owner           int64
		start, end      int
		active          bool
		load            qos.Resources
		oracleCommitted bool
	}
	var blackouts []blackout
	for i, cr := range plan.Outages {
		start := int(cr.At / plan.Tick)
		end := int((cr.At + cr.Downtime) / plan.Tick)
		if end > plan.Ticks {
			end = plan.Ticks
		}
		blackouts = append(blackouts, blackout{
			node: cr.Node, owner: -(100 + int64(i)), start: start, end: end,
		})
	}

	var live []*multiAppSession
	var nextReq int64

	// newRequest draws one request shape from the scenario stream. The
	// client deputy is drawn here and pinned, so the oracle replays the
	// identical request.
	newRequest := func(tenant int) runtime.FindRequest {
		length := 2 + wrng.Intn(2)
		fns := make([]component.FunctionID, length)
		for i := range fns {
			fns[i] = component.FunctionID(wrng.Intn(rcfg.NumFunctions))
		}
		res := make([]qos.Resources, length)
		for i := range res {
			res[i] = qos.Resources{CPU: 2 + wrng.Float64()*6, Memory: 20 + wrng.Float64()*40}
		}
		return runtime.FindRequest{
			Tenant:        plan.Tenants[tenant].Tenant,
			Weight:        weights[tenant],
			PinClient:     true,
			Client:        wrng.Intn(overlayNodes),
			Graph:         component.NewPathGraph(fns),
			QoSReq:        qos.Vector{Delay: 1e5, LossCost: qos.LossCost(0.9)},
			ResReq:        res,
			BandwidthKbps: 20 + wrng.Float64()*40,
		}
	}

	// submit plays one arrival through the cluster and, when enabled,
	// the oracle, keeping the shadow books and the live list current.
	submit := func(tick, tenant int) error {
		r := newRequest(tenant)
		demand := shadowDemand(r.Graph, r.ResReq, r.BandwidthKbps)
		over := shadowOver(quotas[tenant], shadow[tenant], demand)
		rep.Arrivals++
		rep.TenantArrivals[tenant]++

		id, err := c.FindApp(r)
		switch {
		case err != nil && errors.Is(err, runtime.ErrQuotaExceeded):
			if !over {
				return fmt.Errorf("tick %d: runtime quota-rejected tenant %s but the shadow books had room (%+v + %+v vs %+v)",
					tick, r.Tenant, shadow[tenant], demand, quotas[tenant])
			}
			var qerr *runtime.QuotaError
			if !errors.As(err, &qerr) {
				return fmt.Errorf("tick %d: quota rejection is not a typed *QuotaError: %v", tick, err)
			}
			rep.QuotaRejected++
			logf("tick %d: tenant %s quota-rejected (%s)", tick, r.Tenant, qerr.Dimension)
			return nil
		case over:
			return fmt.Errorf("tick %d: shadow books predicted a quota rejection for tenant %s but runtime returned %v",
				tick, r.Tenant, err)
		}

		// Past the quota gate the composer ran; mirror its request for
		// the oracle replay.
		nextReq++
		req := &component.Request{
			ID:           nextReq,
			Graph:        r.Graph,
			QoSReq:       r.QoSReq,
			ResReq:       append([]qos.Resources(nil), r.ResReq...),
			BandwidthReq: r.BandwidthKbps,
			Client:       r.Client,
			Duration:     time.Hour,
			Tenant:       r.Tenant,
			Weight:       r.Weight,
		}
		if err != nil {
			if !errors.Is(err, runtime.ErrNoComposition) {
				return fmt.Errorf("tick %d: find: %w", tick, err)
			}
			rep.Refused++
			logf("tick %d: tenant %s refused (no composition)", tick, r.Tenant)
			if oracle != nil {
				if oerr := oracle.check(req, nil); oerr != nil {
					return fmt.Errorf("tick %d: %w", tick, oerr)
				}
			}
			return nil
		}

		desc, derr := c.Describe(id)
		if derr != nil {
			return fmt.Errorf("tick %d: describe fresh session %d: %w", tick, id, derr)
		}
		// The harness's request counter must stay in lockstep with the
		// cluster's, or the oracle replays drift onto wrong owner IDs.
		for _, a := range c.AuditSessions() {
			if a.ID == id && a.RequestID != nextReq {
				return fmt.Errorf("tick %d: session %d carries request %d, harness expected %d",
					tick, id, a.RequestID, nextReq)
			}
		}
		if oracle != nil {
			if oerr := oracle.check(req, &desc); oerr != nil {
				return fmt.Errorf("tick %d: %w", tick, oerr)
			}
		}
		shadow[tenant] = addUsage(shadow[tenant], demand)
		s := &multiAppSession{
			id:         id,
			reqID:      nextReq,
			tenant:     tenant,
			closeAt:    tick + plan.Tenants[tenant].Lifetime,
			demand:     demand,
			nodeDemand: map[int]qos.Resources{},
			linkDemand: map[int]float64{},
		}
		for _, pc := range desc.Components {
			d := s.nodeDemand[pc.Node]
			d.CPU += r.ResReq[pc.Position].CPU
			d.Memory += r.ResReq[pc.Position].Memory
			s.nodeDemand[pc.Node] = d
		}
		for _, e := range r.Graph.Edges {
			from := desc.Components[e.From].Node
			to := desc.Components[e.To].Node
			route, ok := c.Mesh().RouteBetween(from, to)
			if !ok {
				return fmt.Errorf("tick %d: session %d has no route %d->%d", tick, id, from, to)
			}
			if route.CoLocated {
				continue
			}
			for _, link := range route.Links {
				s.linkDemand[link] += r.BandwidthKbps
			}
		}
		live = append(live, s)
		rep.Admitted++
		rep.TenantAdmitted[tenant]++
		logf("tick %d: tenant %s admitted session %d (phi %.3f)", tick, r.Tenant, id, desc.Phi)
		return nil
	}

	closeSession := func(s *multiAppSession) error {
		if err := c.Close(s.id); err != nil {
			return fmt.Errorf("close session %d: %w", s.id, err)
		}
		if oracle != nil {
			oracle.composer.Release(s.reqID)
		}
		shadow[s.tenant] = subUsage(shadow[s.tenant], s.demand)
		return nil
	}

	// audit runs the per-tick invariant battery.
	audit := func(tick int) error {
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("tick %d: %w", tick, err)
		}
		if oracle != nil {
			if err := oracle.ledger.CheckInvariants(); err != nil {
				return fmt.Errorf("tick %d: oracle ledger: %w", tick, err)
			}
		}

		// Cross-tenant conservation, Eq. 4 shape: per node, consumed
		// capacity == sum of live sessions' demands + injected outage
		// load. Per link the same with bandwidth.
		nodeWant := make([]qos.Resources, overlayNodes)
		linkWant := make([]float64, c.NumLinks())
		for _, s := range live {
			for n, d := range s.nodeDemand {
				nodeWant[n].CPU += d.CPU
				nodeWant[n].Memory += d.Memory
			}
			for l, bw := range s.linkDemand {
				linkWant[l] += bw
			}
		}
		for i := range blackouts {
			if blackouts[i].active {
				b := blackouts[i]
				nodeWant[b.node].CPU += b.load.CPU
				nodeWant[b.node].Memory += b.load.Memory
			}
		}
		for n := 0; n < overlayNodes; n++ {
			capn := c.NodeCapacity(n)
			res := c.NodeResidual(n)
			if math.Abs(capn.CPU-res.CPU-nodeWant[n].CPU) > 1e-6 ||
				math.Abs(capn.Memory-res.Memory-nodeWant[n].Memory) > 1e-6 {
				return fmt.Errorf("tick %d: node %d conservation broken: capacity %+v residual %+v, live demand %+v",
					tick, n, capn, res, nodeWant[n])
			}
		}
		for l := 0; l < c.NumLinks(); l++ {
			capl := c.Mesh().Link(l).Capacity
			if math.Abs(capl-c.LinkResidual(l)-linkWant[l]) > 1e-6 {
				return fmt.Errorf("tick %d: link %d conservation broken: capacity %v residual %v, live demand %v",
					tick, l, capl, c.LinkResidual(l), linkWant[l])
			}
		}

		// Quota-never-exceeded and usage parity with the shadow books.
		shares := make([]float64, cfg.Tenants)
		anyLive := false
		for i := range plan.Tenants {
			name := plan.Tenants[i].Tenant
			used := c.TenantUsageFor(name)
			if used.Sessions != shadow[i].Sessions ||
				math.Abs(used.CPU-shadow[i].CPU) > 1e-9 ||
				math.Abs(used.Memory-shadow[i].Memory) > 1e-9 ||
				math.Abs(used.BandwidthKbps-shadow[i].BandwidthKbps) > 1e-9 {
				return fmt.Errorf("tick %d: tenant %s usage %+v diverged from shadow books %+v",
					tick, name, used, shadow[i])
			}
			q := quotas[i]
			if (q.MaxSessions > 0 && used.Sessions > q.MaxSessions) ||
				(q.MaxCPU > 0 && used.CPU > q.MaxCPU+1e-9) ||
				(q.MaxMemory > 0 && used.Memory > q.MaxMemory+1e-9) ||
				(q.MaxBandwidthKbps > 0 && used.BandwidthKbps > q.MaxBandwidthKbps+1e-9) {
				return fmt.Errorf("tick %d: tenant %s usage %+v exceeds quota %+v", tick, name, used, q)
			}
			shares[i] = used.CPU
			if used.Sessions > 0 {
				anyLive = true
			}
		}

		// Fairness-index bounds over live weighted CPU shares.
		if anyLive {
			j := metrics.WeightedJainIndex(shares, weights)
			lo := 1 / float64(cfg.Tenants)
			if j < lo-1e-9 || j > 1+1e-9 {
				return fmt.Errorf("tick %d: weighted Jain index %v outside [%v, 1] for shares %v", tick, j, lo, shares)
			}
			if j < rep.MinLiveFairness {
				rep.MinLiveFairness = j
			}
		}
		return nil
	}

	for tick := 0; tick < plan.Ticks; tick++ {
		// Closes due this tick, in admission order.
		kept := live[:0]
		for _, s := range live {
			if s.closeAt <= tick {
				if err := closeSession(s); err != nil {
					return fail(fmt.Errorf("tick %d: %w", tick, err))
				}
				logf("tick %d: closed session %d (tenant %s)", tick, s.id, plan.Tenants[s.tenant].Tenant)
				continue
			}
			kept = append(kept, s)
		}
		live = kept

		// Outage windows ending, then starting, this tick.
		for i := range blackouts {
			b := &blackouts[i]
			if b.active && b.end <= tick {
				c.ReleaseLoad(b.owner)
				if oracle != nil && b.oracleCommitted {
					oracle.ledger.ReleaseSession(state.Owner(b.owner))
				}
				b.active = false
				logf("tick %d: node %d back from outage", tick, b.node)
			}
			if !b.active && b.start == tick && b.end > tick {
				avail := c.NodeResidual(b.node)
				if avail.CPU <= 0 && avail.Memory <= 0 {
					continue // already saturated; nothing to pin
				}
				b.load = avail
				if err := c.InjectLoad(b.owner, map[int]qos.Resources{b.node: avail}); err != nil {
					return fail(fmt.Errorf("tick %d: blackout node %d: %w", tick, b.node, err))
				}
				if oracle != nil {
					if err := oracle.ledger.CommitSession(state.Owner(b.owner),
						map[int]qos.Resources{b.node: avail}, nil); err != nil {
						return fail(fmt.Errorf("tick %d: oracle blackout node %d: %w", tick, b.node, err))
					}
					b.oracleCommitted = true
				}
				b.active = true
				logf("tick %d: zone outage pins node %d (%+v)", tick, b.node, avail)
			}
		}

		// Arrivals, round-robin across tenants so no tenant owns the
		// front of every tick.
		maxArr := 0
		for i := range plan.Tenants {
			if a := plan.Tenants[i].Arrivals[tick]; a > maxArr {
				maxArr = a
			}
		}
		for k := 0; k < maxArr; k++ {
			for i := range plan.Tenants {
				if k >= plan.Tenants[i].Arrivals[tick] {
					continue
				}
				if err := submit(tick, i); err != nil {
					return fail(err)
				}
			}
		}

		vc.Advance(plan.Tick)
		if err := audit(tick); err != nil {
			return fail(err)
		}
	}

	// Teardown: end every outage, close every session, verify full
	// per-class recovery.
	for i := range blackouts {
		b := &blackouts[i]
		if !b.active {
			continue
		}
		c.ReleaseLoad(b.owner)
		if oracle != nil && b.oracleCommitted {
			oracle.ledger.ReleaseSession(state.Owner(b.owner))
		}
		b.active = false
	}
	for _, s := range live {
		if err := closeSession(s); err != nil {
			return fail(fmt.Errorf("teardown: %w", err))
		}
	}
	live = nil
	vc.Advance(plan.Tick)
	if err := audit(plan.Ticks); err != nil {
		return fail(fmt.Errorf("teardown: %w", err))
	}
	if got := c.ActiveSessions(); got != 0 {
		return fail(fmt.Errorf("teardown left %d sessions", got))
	}
	for n := 0; n < overlayNodes; n++ {
		want := c.NodeCapacity(n)
		got := c.NodeResidual(n)
		if math.Abs(got.CPU-want.CPU) > 1e-6 || math.Abs(got.Memory-want.Memory) > 1e-6 {
			return fail(fmt.Errorf("node %d residual %+v after teardown, want class capacity %+v", n, got, want))
		}
	}
	for l := 0; l < c.NumLinks(); l++ {
		if want := c.Mesh().Link(l).Capacity; math.Abs(c.LinkResidual(l)-want) > 1e-6 {
			return fail(fmt.Errorf("link %d residual %v after teardown, want %v", l, c.LinkResidual(l), want))
		}
	}
	for i := range plan.Tenants {
		u := c.TenantUsageFor(plan.Tenants[i].Tenant)
		if u.Sessions != 0 || math.Abs(u.CPU) > 1e-9 || math.Abs(u.Memory) > 1e-9 || math.Abs(u.BandwidthKbps) > 1e-9 {
			return fail(fmt.Errorf("teardown left tenant %s usage %+v", plan.Tenants[i].Tenant, u))
		}
	}

	rates := make([]float64, cfg.Tenants)
	for i := range rates {
		if rep.TenantArrivals[i] > 0 {
			rates[i] = float64(rep.TenantAdmitted[i]) / float64(rep.TenantArrivals[i])
		}
	}
	rep.Fairness = metrics.JainIndex(rates)
	logf("episode done: %d arrivals, %d admitted, %d quota-rejected, %d refused, fairness %.3f",
		rep.Arrivals, rep.Admitted, rep.QuotaRejected, rep.Refused, rep.Fairness)
	return rep, nil
}
