package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/component"
	"repro/internal/dist"
	"repro/internal/qos"
)

// eps absorbs float accumulation error in resource sums.
const eps = 1e-6

// Auditor checks the cluster's resource-safety invariants. CheckStep
// runs after every simulation step; the quiescent checks need the
// harness's knowledge of which requests resolved how.
type Auditor struct {
	c   *dist.Cluster
	cfg dist.Config
}

// NewAuditor wires an auditor to an unstarted cluster.
func NewAuditor(c *dist.Cluster, cfg dist.Config) *Auditor {
	return &Auditor{c: c, cfg: cfg}
}

// CheckStep verifies the invariants that must hold between any two
// protocol steps (Eqs. 4-5): residual node capacity never negative
// with transient holds and the committed ledger both charged,
// incremental hold/commit bookkeeping consistent with the per-entry
// state, and link availability within [0, capacity]. A violation here
// means some schedule over-allocated — the bug class transient
// allocation exists to prevent.
func (a *Auditor) CheckStep() error {
	for id := 0; id < a.c.NumNodes(); id++ {
		acc := a.c.NodeAccountingAt(id)
		if !nonNegative(acc.Committed) {
			return fmt.Errorf("node %d: committed ledger went negative: %v", id, acc.Committed)
		}
		if !nonNegative(acc.HeldTotal) {
			return fmt.Errorf("node %d: held total went negative: %v", id, acc.HeldTotal)
		}
		residual := acc.Capacity.Sub(acc.Committed).Sub(acc.HeldTotal)
		if !nonNegative(residual) {
			return fmt.Errorf("node %d: capacity overcommitted: capacity=%v committed=%v held=%v",
				id, acc.Capacity, acc.Committed, acc.HeldTotal)
		}
		if !close2(acc.HeldTotal, acc.HoldSum) {
			return fmt.Errorf("node %d: hold bookkeeping drifted: running=%v sum-of-holds=%v",
				id, acc.HeldTotal, acc.HoldSum)
		}
		var commitSum qos.Resources
		owners := make([]int64, 0, len(acc.Commits))
		for owner := range acc.Commits {
			owners = append(owners, owner)
		}
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		for _, owner := range owners {
			commitSum = commitSum.Add(acc.Commits[owner])
		}
		if !close2(acc.Committed, commitSum) {
			return fmt.Errorf("node %d: commit bookkeeping drifted: running=%v sum-of-commits=%v",
				id, acc.Committed, commitSum)
		}
	}
	avail, capacity := a.c.LinkAvailability()
	for i := range avail {
		if avail[i] < -eps {
			return fmt.Errorf("link %d: bandwidth overcommitted: available=%v", i, avail[i])
		}
		if avail[i] > capacity[i]+eps {
			return fmt.Errorf("link %d: released above capacity: available=%v capacity=%v",
				i, avail[i], capacity[i])
		}
	}
	return nil
}

// SessionOutcome is what the harness observed for one resolved request:
// its internal owner ID and, when admitted, the composition and the
// request it was composed for.
type SessionOutcome struct {
	Owner    int64
	Admitted bool
	Req      *component.Request
	Comp     *dist.Composition
	Released bool
}

// CheckQuiescent verifies commit-ledger consistency once the protocol
// has quiesced: no composition is half-committed. Every live admitted
// session must be committed at exactly its participant set with
// exactly its per-node demand; failed or released requests must have
// no committed residue anywhere. This is the check that catches a
// rollback releasing only a subset of participants.
func (a *Auditor) CheckQuiescent(outcomes []SessionOutcome) error {
	type nothing struct{}
	expect := make(map[int]map[int64]qos.Resources, a.c.NumNodes())
	dead := make(map[int64]nothing)
	for _, o := range outcomes {
		if !o.Admitted || o.Released {
			dead[o.Owner] = nothing{}
			continue
		}
		nodes, _ := a.c.SessionDemands(o.Req, o.Comp)
		for nodeID, amount := range nodes {
			if expect[nodeID] == nil {
				expect[nodeID] = make(map[int64]qos.Resources)
			}
			expect[nodeID][o.Owner] = amount
		}
	}
	for id := 0; id < a.c.NumNodes(); id++ {
		acc := a.c.NodeAccountingAt(id)
		for owner, want := range expect[id] {
			got, ok := acc.Commits[owner]
			if !ok {
				return fmt.Errorf("node %d: session %d admitted but not committed here (half-committed composition)", id, owner)
			}
			if !close2(got, want) {
				return fmt.Errorf("node %d: session %d committed %v, demand is %v", id, owner, got, want)
			}
		}
		for owner := range acc.Commits {
			if _, ok := dead[owner]; ok {
				return fmt.Errorf("node %d: request %d failed or was released but still holds a committed allocation %v (leaked by partial rollback?)",
					id, owner, acc.Commits[owner])
			}
			if expect[id] == nil || !contains(expect[id], owner) {
				return fmt.Errorf("node %d: committed allocation for unknown owner %d", id, owner)
			}
		}
	}
	return nil
}

// CheckIdle verifies the fully torn-down steady state: every node back
// at full capacity with no holds, commits, or in-flight deputy state,
// and every link back at full bandwidth. Run after all sessions are
// released and Settle has aged out transient state.
func (a *Auditor) CheckIdle() error {
	for id := 0; id < a.c.NumNodes(); id++ {
		acc := a.c.NodeAccountingAt(id)
		if !close2(acc.Committed, qos.Resources{}) || len(acc.Commits) > 0 {
			return fmt.Errorf("node %d: committed resources leaked after teardown: %v (%d sessions)",
				id, acc.Committed, len(acc.Commits))
		}
		if acc.Holds > 0 || !close2(acc.HeldTotal, qos.Resources{}) {
			return fmt.Errorf("node %d: %d transient holds leaked after settle (%v)", id, acc.Holds, acc.HeldTotal)
		}
		if acc.Pending > 0 {
			return fmt.Errorf("node %d: %d deputy requests still pending after quiescence", id, acc.Pending)
		}
	}
	avail, capacity := a.c.LinkAvailability()
	for i := range avail {
		if math.Abs(avail[i]-capacity[i]) > eps {
			return fmt.Errorf("link %d: bandwidth leaked after teardown: available=%v capacity=%v",
				i, avail[i], capacity[i])
		}
	}
	return nil
}

func contains(m map[int64]qos.Resources, owner int64) bool {
	_, ok := m[owner]
	return ok
}

func nonNegative(r qos.Resources) bool {
	return r.CPU >= -eps && r.Memory >= -eps
}

func close2(a, b qos.Resources) bool {
	return math.Abs(a.CPU-b.CPU) <= eps && math.Abs(a.Memory-b.Memory) <= eps
}
