package harness

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

// seedCount reads ACP_SIM_SEEDS: how many randomized seeds each
// simulation test sweeps. CI's sim-harness job sets 50, the nightly
// variant 500; the local default keeps `go test ./...` quick.
func seedCount(t *testing.T, def int) int {
	t.Helper()
	v := os.Getenv("ACP_SIM_SEEDS")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		t.Fatalf("ACP_SIM_SEEDS=%q is not a positive integer", v)
	}
	return n
}

// replaySeed reads ACP_SIM_SEED: when set, every sweep runs only that
// seed — the one-liner replay for a failing run:
//
//	ACP_SIM_SEED=<seed> go test ./internal/harness -run TestRandomizedScenarios -v
func replaySeed(t *testing.T) (int64, bool) {
	t.Helper()
	v := os.Getenv("ACP_SIM_SEED")
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("ACP_SIM_SEED=%q is not an integer", v)
	}
	return n, true
}

// reportFailure prints the failing seed and the tail of its step log so
// the schedule position of the violation is visible without rerunning.
func reportFailure(t *testing.T, rep *Report, err error) {
	t.Helper()
	const tail = 40
	log := rep.Log
	if len(log) > tail {
		log = log[len(log)-tail:]
	}
	t.Errorf("seed %d failed after %d steps: %v\nreplay: ACP_SIM_SEED=%d go test ./internal/harness -run %s -v\nlast %d schedule entries:\n%s",
		rep.Seed, rep.Steps, err, rep.Seed, t.Name(), len(log), strings.Join(log, "\n"))
}

func TestRandomizedScenarios(t *testing.T) {
	if seed, ok := replaySeed(t); ok {
		rep, err := RunScenario(ScenarioConfig{Seed: seed})
		if err != nil {
			reportFailure(t, rep, err)
		}
		return
	}
	n := seedCount(t, 10)
	for seed := int64(1); seed <= int64(n); seed++ {
		rep, err := RunScenario(ScenarioConfig{Seed: seed})
		if err != nil {
			reportFailure(t, rep, err)
			return
		}
		if rep.Steps == 0 {
			t.Fatalf("seed %d: scenario dispatched no messages", seed)
		}
	}
}

func TestOracleParity(t *testing.T) {
	if seed, ok := replaySeed(t); ok {
		rep, err := RunScenario(ScenarioConfig{Seed: seed, Oracle: true})
		if err != nil {
			reportFailure(t, rep, err)
		}
		return
	}
	n := seedCount(t, 5)
	if n > 50 {
		n = 50 // the exhaustive oracle is the expensive half; cap the nightly sweep
	}
	admitted := 0
	for seed := int64(1); seed <= int64(n); seed++ {
		rep, err := RunScenario(ScenarioConfig{Seed: seed, Oracle: true, Requests: 10})
		if err != nil {
			reportFailure(t, rep, err)
			return
		}
		admitted += rep.Admitted
	}
	if admitted == 0 {
		t.Fatal("oracle sweep admitted nothing; scenario workload is degenerate")
	}
}

// TestSchedulerDeterminism is the bit-reproducibility contract: the
// same seed must replay the identical schedule, step for step.
func TestSchedulerDeterminism(t *testing.T) {
	first, err := RunScenario(ScenarioConfig{Seed: 42, Requests: 8})
	if err != nil {
		reportFailure(t, first, err)
		return
	}
	second, err := RunScenario(ScenarioConfig{Seed: 42, Requests: 8})
	if err != nil {
		reportFailure(t, second, err)
		return
	}
	if len(first.Log) != len(second.Log) {
		t.Fatalf("same seed, different schedule lengths: %d vs %d", len(first.Log), len(second.Log))
	}
	for i := range first.Log {
		if first.Log[i] != second.Log[i] {
			t.Fatalf("same seed diverged at schedule entry %d:\n  run 1: %s\n  run 2: %s",
				i, first.Log[i], second.Log[i])
		}
	}
	if first.Admitted != second.Admitted || first.Steps != second.Steps {
		t.Fatalf("same seed, different outcomes: admitted %d vs %d, steps %d vs %d",
			first.Admitted, second.Admitted, first.Steps, second.Steps)
	}
}

// TestDistinctSeedsDiverge guards the other direction: different seeds
// must explore different schedules (this is what the splitmix seed
// derivation in dist exists for — the old affine derivation made seed
// families collide).
func TestDistinctSeedsDiverge(t *testing.T) {
	a, err := RunScenario(ScenarioConfig{Seed: 1, Requests: 8})
	if err != nil {
		reportFailure(t, a, err)
		return
	}
	b, err := RunScenario(ScenarioConfig{Seed: 2, Requests: 8})
	if err != nil {
		reportFailure(t, b, err)
		return
	}
	if strings.Join(a.Log, "\n") == strings.Join(b.Log, "\n") {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestSimQuiescenceResolvesEverything: an oracle-mode run (no faults)
// must admit a healthy share of a feasible workload.
func TestSimAdmitsFeasibleWorkload(t *testing.T) {
	rep, err := RunScenario(ScenarioConfig{Seed: 7, Oracle: true, Requests: 10})
	if err != nil {
		reportFailure(t, rep, err)
		return
	}
	if rep.Admitted == 0 {
		t.Fatalf("zero of %d feasible requests admitted under zero faults", rep.Requests)
	}
}
