// Package trace records and replays composition request workloads.
//
// The paper's tuner relies on "trace replay of actual workloads in the
// last sampling period" (§3.4); this package extends the idea to whole
// experiments: a run can record every arrival as a JSON line, and a
// later run can replay the trace bit-for-bit — across processes and
// machines — instead of drawing a synthetic workload. Traces make
// simulation results portable evidence.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

// Record is the serializable form of one composition request and its
// arrival time.
type Record struct {
	ID            int64     `json:"id"`
	ArrivalMillis int64     `json:"arrivalMillis"`
	Functions     []int     `json:"functions"`
	Edges         [][2]int  `json:"edges,omitempty"`
	DelayReqMs    float64   `json:"delayReqMillis"`
	LossReq       float64   `json:"lossReq"`
	CPUReq        []float64 `json:"cpuReq"`
	MemoryReq     []float64 `json:"memoryReq"`
	BandwidthKbps float64   `json:"bandwidthKbps"`
	Client        int       `json:"client"`
	DurationMs    int64     `json:"durationMillis"`
	MinSecurity   int       `json:"minSecurity,omitempty"`
}

// FromRequest converts a request arriving at the given virtual time into
// its serializable record.
func FromRequest(req *component.Request, arrival time.Duration) Record {
	rec := Record{
		ID:            req.ID,
		ArrivalMillis: arrival.Milliseconds(),
		Functions:     make([]int, len(req.Graph.Functions)),
		DelayReqMs:    req.QoSReq.Delay,
		LossReq:       qos.LossProb(req.QoSReq.LossCost),
		CPUReq:        make([]float64, len(req.ResReq)),
		MemoryReq:     make([]float64, len(req.ResReq)),
		BandwidthKbps: req.BandwidthReq,
		Client:        req.Client,
		DurationMs:    req.Duration.Milliseconds(),
		MinSecurity:   req.MinSecurity,
	}
	for i, f := range req.Graph.Functions {
		rec.Functions[i] = int(f)
	}
	for _, e := range req.Graph.Edges {
		rec.Edges = append(rec.Edges, [2]int{e.From, e.To})
	}
	for i, r := range req.ResReq {
		rec.CPUReq[i] = r.CPU
		rec.MemoryReq[i] = r.Memory
	}
	return rec
}

// Request reconstructs the composition request; Arrival returns its
// virtual arrival time.
func (r Record) Request() (*component.Request, error) {
	if len(r.CPUReq) != len(r.Functions) || len(r.MemoryReq) != len(r.Functions) {
		return nil, fmt.Errorf("trace: record %d has %d functions but %d/%d resource entries",
			r.ID, len(r.Functions), len(r.CPUReq), len(r.MemoryReq))
	}
	graph := &component.Graph{Functions: make([]component.FunctionID, len(r.Functions))}
	for i, f := range r.Functions {
		graph.Functions[i] = component.FunctionID(f)
	}
	for _, e := range r.Edges {
		graph.Edges = append(graph.Edges, component.Edge{From: e[0], To: e[1]})
	}
	req := &component.Request{
		ID:    r.ID,
		Graph: graph,
		QoSReq: qos.Vector{
			Delay:    r.DelayReqMs,
			LossCost: qos.LossCost(r.LossReq),
		},
		ResReq:       make([]qos.Resources, len(r.Functions)),
		BandwidthReq: r.BandwidthKbps,
		Client:       r.Client,
		Duration:     time.Duration(r.DurationMs) * time.Millisecond,
		MinSecurity:  r.MinSecurity,
	}
	for i := range req.ResReq {
		req.ResReq[i] = qos.Resources{CPU: r.CPUReq[i], Memory: r.MemoryReq[i]}
	}
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("trace: record %d: %w", r.ID, err)
	}
	return req, nil
}

// Arrival returns the record's virtual arrival time.
func (r Record) Arrival() time.Duration {
	return time.Duration(r.ArrivalMillis) * time.Millisecond
}

// Writer streams records as JSON lines.
type Writer struct {
	w   *bufio.Writer
	enc *json.Encoder
}

// NewWriter wraps w for record streaming; call Flush when done.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{w: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record.
func (t *Writer) Write(rec Record) error {
	return t.enc.Encode(rec)
}

// Flush drains buffered output.
func (t *Writer) Flush() error {
	return t.w.Flush()
}

// Read parses a JSON-lines trace. Arrival times must be non-decreasing.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	prev := int64(-1)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		if rec.ArrivalMillis < prev {
			return nil, fmt.Errorf("trace: record %d arrives at %dms before previous %dms",
				len(out), rec.ArrivalMillis, prev)
		}
		prev = rec.ArrivalMillis
		out = append(out, rec)
	}
	return out, nil
}
