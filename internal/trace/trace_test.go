package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
	"repro/internal/workload"
)

func sampleRequest(t *testing.T, seed int64) *component.Request {
	t.Helper()
	lib, err := component.GenerateLibrary(component.DefaultTemplateConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.DefaultConfig(lib, 100)
	cfg.SecureFraction = 0.5
	gen, err := workload.NewGenerator(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return gen.Next()
}

func TestRecordRoundTrip(t *testing.T) {
	req := sampleRequest(t, 1)
	rec := FromRequest(req, 90*time.Second)
	back, err := rec.Request()
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != req.ID || back.Client != req.Client || back.MinSecurity != req.MinSecurity {
		t.Errorf("identity fields differ: %+v vs %+v", back, req)
	}
	if back.Graph.NumPositions() != req.Graph.NumPositions() || len(back.Graph.Edges) != len(req.Graph.Edges) {
		t.Fatal("graph shape differs")
	}
	for i, f := range req.Graph.Functions {
		if back.Graph.Functions[i] != f {
			t.Fatal("functions differ")
		}
	}
	if diff := back.QoSReq.Delay - req.QoSReq.Delay; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("delay requirement differs by %v", diff)
	}
	lossDiff := qos.LossProb(back.QoSReq.LossCost) - qos.LossProb(req.QoSReq.LossCost)
	if lossDiff > 1e-9 || lossDiff < -1e-9 {
		t.Errorf("loss requirement differs by %v", lossDiff)
	}
	if rec.Arrival() != 90*time.Second {
		t.Errorf("arrival = %v", rec.Arrival())
	}
	// Millisecond truncation on duration is the only allowed loss.
	if back.Duration.Truncate(time.Millisecond) != req.Duration.Truncate(time.Millisecond) {
		t.Errorf("duration differs: %v vs %v", back.Duration, req.Duration)
	}
}

func TestWriterReadStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Record
	for i := 0; i < 20; i++ {
		req := sampleRequest(t, int64(i+2))
		req.ID = int64(i)
		rec := FromRequest(req, time.Duration(i)*time.Second)
		want = append(want, rec)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].ArrivalMillis != want[i].ArrivalMillis {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadRejectsDisorder(t *testing.T) {
	input := `{"id":1,"arrivalMillis":5000,"functions":[1],"cpuReq":[1],"memoryReq":[1],"durationMillis":60000,"delayReqMillis":10}
{"id":2,"arrivalMillis":1000,"functions":[1],"cpuReq":[1],"memoryReq":[1],"durationMillis":60000,"delayReqMillis":10}`
	if _, err := Read(strings.NewReader(input)); err == nil {
		t.Error("out-of-order arrivals accepted")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRecordRequestValidation(t *testing.T) {
	rec := Record{ID: 1, Functions: []int{1, 2}, CPUReq: []float64{1}, MemoryReq: []float64{1, 2}, DurationMs: 1000}
	if _, err := rec.Request(); err == nil {
		t.Error("mismatched resource arrays accepted")
	}
	rec = Record{ID: 1, Functions: []int{1}, CPUReq: []float64{1}, MemoryReq: []float64{1}, DurationMs: 0}
	if _, err := rec.Request(); err == nil {
		t.Error("zero duration accepted")
	}
}

// TestPropertyRoundTripAnyRequest: serialization is faithful for
// arbitrary generated workload requests.
func TestPropertyRoundTripAnyRequest(t *testing.T) {
	f := func(seed int64) bool {
		req := sampleRequest(t, seed)
		back, err := FromRequest(req, 0).Request()
		if err != nil {
			return false
		}
		if len(back.ResReq) != len(req.ResReq) {
			return false
		}
		for i := range req.ResReq {
			if d := back.ResReq[i].CPU - req.ResReq[i].CPU; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return back.BandwidthReq == req.BandwidthReq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
