package trace

import (
	"strings"
	"testing"
)

// FuzzRead hardens the trace parser: arbitrary input must either parse
// into records that reconstruct valid requests, or fail cleanly —
// never panic.
func FuzzRead(f *testing.F) {
	f.Add(`{"id":1,"arrivalMillis":0,"functions":[1,2],"edges":[[0,1]],"delayReqMillis":100,"lossReq":0.05,"cpuReq":[1,2],"memoryReq":[3,4],"bandwidthKbps":100,"client":0,"durationMillis":60000}`)
	f.Add(`{"id":-5,"functions":[],"cpuReq":null}`)
	f.Add("")
	f.Add("{}")
	f.Add("{\"arrivalMillis\":9999999999999}")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, rec := range records {
			req, err := rec.Request()
			if err != nil {
				continue
			}
			// Anything that reconstructs must be a valid request.
			if err := req.Validate(); err != nil {
				t.Fatalf("reconstructed invalid request: %v", err)
			}
		}
	})
}
