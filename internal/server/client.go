package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// Client is a minimal session-protocol client: one connection, serial
// request/response. Transport failures surface as errors; protocol
// failures come back typed in the Response (OK=false, Code set). Not
// safe for concurrent use — run one Client per goroutine, which is
// also the server's concurrency model.
type Client struct {
	nc  net.Conn
	enc *json.Encoder
	sc  *bufio.Scanner
	seq int64
}

// Dial connects to a session server. Call Hello before anything else.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(nc)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Client{nc: nc, enc: json.NewEncoder(nc), sc: sc}, nil
}

// Conn exposes the underlying connection (tests sever it mid-session).
func (c *Client) Conn() net.Conn { return c.nc }

// Close severs the connection; the server releases every session it
// owns.
func (c *Client) Close() error { return c.nc.Close() }

// Do sends one request (stamping the sequence number) and reads its
// response.
func (c *Client) Do(req Request) (Response, error) {
	c.seq++
	req.Seq = c.seq
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("server: send %s: %w", req.Op, err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("server: read %s response: %w", req.Op, err)
		}
		return Response{}, fmt.Errorf("server: connection closed awaiting %s response", req.Op)
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("server: decode %s response: %w", req.Op, err)
	}
	return resp, nil
}

// Hello opens the session dialogue under a tenant identity.
func (c *Client) Hello(tenant string) (Response, error) {
	return c.Do(Request{Op: OpHello, Proto: ProtoVersion, Tenant: tenant})
}

// Compose requests a composition for a path-graph application.
func (c *Client) Compose(req Request) (Response, error) {
	req.Op = OpCompose
	return c.Do(req)
}

// Commit confirms a pending session before its commit deadline.
func (c *Client) Commit(session int64) (Response, error) {
	return c.Do(Request{Op: OpCommit, Session: session})
}

// Heartbeat proves liveness, extending the session's reap deadline.
func (c *Client) Heartbeat(session int64) (Response, error) {
	return c.Do(Request{Op: OpHeartbeat, Session: session})
}

// Recompose asks the server to migrate the session make-before-break.
func (c *Client) Recompose(session int64) (Response, error) {
	return c.Do(Request{Op: OpRecompose, Session: session})
}

// Teardown closes the session, releasing resources and quota.
func (c *Client) Teardown(session int64) (Response, error) {
	return c.Do(Request{Op: OpTeardown, Session: session})
}
