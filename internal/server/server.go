package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/component"
	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/runtime"
)

// Config wires a Server to its cluster and policies.
type Config struct {
	// Cluster is the live composition engine the server fronts.
	// Required; the server never shuts it down — the owner does.
	Cluster *runtime.Cluster
	// Clock drives commit/heartbeat deadlines and the reaper. nil means
	// the wall clock; tests substitute a Virtual clock so expiry is
	// deterministic.
	Clock clock.Clock
	// CommitTimeout bounds how long a composed session may stay pending
	// before the reaper releases its resources (default 10s).
	CommitTimeout time.Duration
	// HeartbeatTimeout bounds the gap between heartbeats (or other
	// liveness-proving ops) on a committed session (default 30s).
	HeartbeatTimeout time.Duration
	// ReapInterval is the reaper's scan period (default 1s).
	ReapInterval time.Duration
	// MaxSessions caps live wire sessions (pending + committed) across
	// all connections; composes beyond it get CodeBusy. 0 = unlimited.
	MaxSessions int
	// MaxInflight caps concurrently dispatched composes; excess gets
	// CodeBusy instead of queueing behind the composer (default 32).
	MaxInflight int
	// MaxFrameBytes bounds one request line (default 1 MiB).
	MaxFrameBytes int
	// Registry receives the server's instruments; nil disables.
	Registry *obs.Registry
}

// wireSession is one session's server-side state. All fields are
// guarded by Server.mu after creation.
type wireSession struct {
	id        runtime.SessionID
	owner     *conn
	committed bool
	// deadline is when the reaper may take the session: compose sets
	// now+CommitTimeout, commit and each heartbeat set
	// now+HeartbeatTimeout.
	deadline time.Time
}

// conn is one client connection. owned is guarded by Server.mu; the
// encoder is only touched by the connection's handler goroutine, which
// serialises all responses.
type conn struct {
	nc      net.Conn
	enc     *json.Encoder
	helloed bool
	tenant  string
	owned   map[runtime.SessionID]*wireSession
}

// Server accepts session-protocol connections and multiplexes them
// over one runtime.Cluster.
type Server struct {
	cfg      Config
	clk      clock.Clock
	cluster  *runtime.Cluster
	ln       net.Listener
	inflight chan struct{}

	ops     *obs.CounterVec
	errorsC *obs.CounterVec
	reapedC *obs.CounterVec
	connsG  *obs.Gauge
	pendG   *obs.Gauge
	commG   *obs.Gauge
	latency map[string]*obs.QHistogram

	wg sync.WaitGroup

	mu        sync.Mutex
	sessions  map[runtime.SessionID]*wireSession
	conns     map[*conn]struct{}
	composing int // composes admitted against MaxSessions but not yet in sessions
	reapT     clock.Timer
	closed    bool
}

// Listen binds addr (e.g. "127.0.0.1:0") and serves the session
// protocol until Close.
func Listen(addr string, cfg Config) (*Server, error) {
	if cfg.Cluster == nil {
		return nil, errors.New("server: Config.Cluster is required")
	}
	if cfg.CommitTimeout <= 0 {
		cfg.CommitTimeout = 10 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 30 * time.Second
	}
	if cfg.ReapInterval <= 0 {
		cfg.ReapInterval = time.Second
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 32
	}
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = 1 << 20
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s := &Server{
		cfg:      cfg,
		clk:      clock.Or(cfg.Clock),
		cluster:  cfg.Cluster,
		ln:       ln,
		inflight: make(chan struct{}, cfg.MaxInflight),
		sessions: make(map[runtime.SessionID]*wireSession),
		conns:    make(map[*conn]struct{}),

		ops:     cfg.Registry.CounterVec("server.ops", "op"),
		errorsC: cfg.Registry.CounterVec("server.errors", "code"),
		reapedC: cfg.Registry.CounterVec("server.reaped", "reason"),
		connsG:  cfg.Registry.Gauge("server.conns"),
		pendG:   cfg.Registry.Gauge("server.sessions.pending"),
		commG:   cfg.Registry.Gauge("server.sessions.committed"),
		latency: make(map[string]*obs.QHistogram),
	}
	for _, op := range []string{OpCompose, OpCommit, OpHeartbeat, OpRecompose, OpTeardown} {
		s.latency[op] = cfg.Registry.QHistogram("server.phase." + op + ".latency_quantiles_ms")
	}
	s.mu.Lock()
	s.reapT = s.clk.AfterFunc(cfg.ReapInterval, s.reap)
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Sessions returns the live wire-session count (pending + committed).
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Close stops accepting, severs every connection (their handlers tear
// down the sessions they own), and waits for the handlers to drain.
// The cluster is left running.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	if s.reapT != nil {
		s.reapT.Stop()
	}
	conns := make([]*conn, 0, len(s.conns))
	//acp:nondeterminism-ok severing order is unobservable: each handler tears down its own sessions independently and Close joins them all via wg.Wait
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.nc.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{nc: nc, enc: json.NewEncoder(nc), owned: make(map[runtime.SessionID]*wireSession)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.connsG.Set(float64(len(s.conns)))
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// handleConn runs one connection's serial request loop. Any exit —
// clean EOF, transport error, fatal protocol violation — releases
// every session the connection owns.
func (s *Server) handleConn(c *conn) {
	defer s.wg.Done()
	defer s.releaseConn(c)
	defer c.nc.Close()

	sc := bufio.NewScanner(c.nc)
	sc.Buffer(make([]byte, 0, 4096), s.cfg.MaxFrameBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			_ = c.enc.Encode(s.fail(Response{Op: "?"}, CodeProtocol, "malformed frame: "+err.Error()))
			return
		}
		resp, fatal := s.dispatch(c, &req)
		if err := c.enc.Encode(resp); err != nil {
			return
		}
		if fatal {
			return
		}
	}
}

// fail stamps a failure response and counts it.
func (s *Server) fail(r Response, code, msg string) Response {
	r.OK = false
	r.Code = code
	r.Error = msg
	s.errorsC.With(code).Inc()
	return r
}

// dispatch executes one request. fatal=true closes the connection
// after the response is written: framing-level violations mean the
// peer cannot be trusted with session state.
func (s *Server) dispatch(c *conn, req *Request) (resp Response, fatal bool) {
	resp = Response{Op: req.Op, Seq: req.Seq}
	s.ops.With(req.Op).Inc()

	if req.Op == OpHello {
		if c.helloed {
			return s.fail(resp, CodeProtocol, "duplicate hello"), true
		}
		if req.Proto != ProtoVersion {
			return s.fail(resp, CodeProtocol, fmt.Sprintf("unsupported proto %d (want %d)", req.Proto, ProtoVersion)), true
		}
		c.helloed = true
		c.tenant = req.Tenant
		resp.OK = true
		resp.Proto = ProtoVersion
		return resp, false
	}
	if !c.helloed {
		return s.fail(resp, CodeProtocol, "hello required before "+req.Op), true
	}

	start := s.clk.Now()
	defer func() {
		if h := s.latency[req.Op]; h != nil {
			h.Observe(float64(s.clk.Since(start)) / float64(time.Millisecond))
		}
	}()

	switch req.Op {
	case OpCompose:
		return s.opCompose(c, req, resp), false
	case OpCommit, OpHeartbeat, OpRecompose, OpTeardown:
		return s.opSession(c, req, resp), false
	default:
		return s.fail(resp, CodeProtocol, "unknown op "+req.Op), true
	}
}

// opCompose admits, composes, and registers a pending session.
func (s *Server) opCompose(c *conn, req *Request, resp Response) Response {
	if len(req.Functions) == 0 || len(req.Functions) > 64 {
		return s.fail(resp, CodeProtocol, fmt.Sprintf("compose needs 1..64 functions, got %d", len(req.Functions)))
	}
	fns := make([]component.FunctionID, len(req.Functions))
	for i, f := range req.Functions {
		if f < 0 {
			return s.fail(resp, CodeProtocol, fmt.Sprintf("negative function id %d", f))
		}
		fns[i] = component.FunctionID(f)
	}
	if req.CPU < 0 || req.MemoryMB < 0 || req.BandwidthKbps < 0 || req.Weight < 0 {
		return s.fail(resp, CodeProtocol, "negative resource requirement")
	}
	if req.Delay <= 0 || req.LossProb <= 0 || req.LossProb >= 1 {
		return s.fail(resp, CodeProtocol, "compose needs delay > 0 and lossProb in (0,1)")
	}
	graph := component.NewPathGraph(fns)
	res := make([]qos.Resources, len(fns))
	for i := range res {
		res[i] = qos.Resources{CPU: req.CPU, Memory: req.MemoryMB}
	}

	// Admission control: reserve a MaxSessions slot and an in-flight
	// dispatch slot, or refuse with busy before anything is charged.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		return s.fail(resp, CodeBusy, "compose dispatch limit reached")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.fail(resp, CodeInternal, "server shutting down")
	}
	if s.cfg.MaxSessions > 0 && len(s.sessions)+s.composing >= s.cfg.MaxSessions {
		s.mu.Unlock()
		return s.fail(resp, CodeBusy, fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
	}
	s.composing++
	s.mu.Unlock()
	release := func() {
		s.mu.Lock()
		s.composing--
		s.mu.Unlock()
	}

	id, err := s.cluster.FindApp(runtime.FindRequest{
		Tenant: c.tenant,
		Weight: req.Weight,
		Graph:  graph,
		QoSReq: qos.Vector{Delay: req.Delay, LossCost: qos.LossCost(req.LossProb)},
		ResReq: res,

		BandwidthKbps: req.BandwidthKbps,
	})
	if err != nil {
		release()
		var qerr *runtime.QuotaError
		switch {
		case errors.As(err, &qerr):
			r := s.fail(resp, CodeQuota, err.Error())
			r.Dimension = qerr.Dimension
			return r
		case errors.Is(err, runtime.ErrNoComposition):
			return s.fail(resp, CodeCapacity, err.Error())
		default:
			return s.fail(resp, CodeInternal, err.Error())
		}
	}
	comp, derr := s.cluster.Describe(id)
	ws := &wireSession{id: id, owner: c, deadline: s.clk.Now().Add(s.cfg.CommitTimeout)}
	s.mu.Lock()
	s.composing--
	s.sessions[id] = ws
	c.owned[id] = ws
	s.setSessionGauges()
	s.mu.Unlock()

	resp.OK = true
	resp.Session = int64(id)
	resp.CommitDeadlineMs = s.cfg.CommitTimeout.Milliseconds()
	if derr == nil {
		resp.Phi = comp.Phi
		resp.Components = wireComponents(comp)
	}
	return resp
}

// opSession handles the ops addressed to a live session.
func (s *Server) opSession(c *conn, req *Request, resp Response) Response {
	id := runtime.SessionID(req.Session)
	s.mu.Lock()
	ws, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return s.fail(resp, CodeUnknownSession, fmt.Sprintf("session %d not live", req.Session))
	}
	if ws.owner != c {
		s.mu.Unlock()
		return s.fail(resp, CodeProtocol, fmt.Sprintf("session %d owned by another connection", req.Session))
	}
	resp.Session = req.Session

	switch req.Op {
	case OpCommit:
		if ws.committed {
			s.mu.Unlock()
			return s.fail(resp, CodeProtocol, fmt.Sprintf("session %d already committed", req.Session))
		}
		ws.committed = true
		ws.deadline = s.clk.Now().Add(s.cfg.HeartbeatTimeout)
		s.setSessionGauges()
		s.mu.Unlock()
		resp.OK = true
		return resp

	case OpHeartbeat:
		if !ws.committed {
			s.mu.Unlock()
			return s.fail(resp, CodeProtocol, fmt.Sprintf("session %d not committed; commit before heartbeat", req.Session))
		}
		ws.deadline = s.clk.Now().Add(s.cfg.HeartbeatTimeout)
		s.mu.Unlock()
		resp.OK = true
		return resp

	case OpRecompose:
		if !ws.committed {
			s.mu.Unlock()
			return s.fail(resp, CodeProtocol, fmt.Sprintf("session %d not committed; commit before recompose", req.Session))
		}
		s.mu.Unlock()
		err := s.cluster.Recompose(id)
		switch {
		case errors.Is(err, runtime.ErrNoBetterComposition):
			return s.fail(resp, CodeNoBetter, err.Error())
		case errors.Is(err, runtime.ErrUnknownSession):
			return s.fail(resp, CodeUnknownSession, err.Error())
		case err != nil:
			return s.fail(resp, CodeInternal, err.Error())
		}
		// A successful re-probe proves the client is live; extend the
		// deadline as a heartbeat would. The session may have been
		// reaped while Recompose ran unlocked — only touch it if not.
		s.mu.Lock()
		if cur, live := s.sessions[id]; live && cur == ws {
			ws.deadline = s.clk.Now().Add(s.cfg.HeartbeatTimeout)
		}
		s.mu.Unlock()
		comp, derr := s.cluster.Describe(id)
		resp.OK = true
		if derr == nil {
			resp.Phi = comp.Phi
			resp.Components = wireComponents(comp)
		}
		return resp

	default: // OpTeardown
		delete(s.sessions, id)
		delete(c.owned, id)
		s.setSessionGauges()
		s.mu.Unlock()
		if err := s.cluster.Close(id); err != nil {
			return s.fail(resp, CodeInternal, err.Error())
		}
		resp.OK = true
		return resp
	}
}

// setSessionGauges refreshes the pending/committed gauges; caller
// holds s.mu.
func (s *Server) setSessionGauges() {
	pending, committed := 0, 0
	for _, ws := range s.sessions {
		if ws.committed {
			committed++
		} else {
			pending++
		}
	}
	s.pendG.Set(float64(pending))
	s.commG.Set(float64(committed))
}

// releaseConn tears down every session the departing connection owns
// — the disconnect path of the lifecycle. Holds are released and
// quotas refunded by cluster.Close, exactly as an explicit teardown
// would.
func (s *Server) releaseConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.connsG.Set(float64(len(s.conns)))
	ids := make([]runtime.SessionID, 0, len(c.owned))
	for id := range c.owned {
		ids = append(ids, id)
		delete(s.sessions, id)
	}
	c.owned = nil
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s.setSessionGauges()
	s.mu.Unlock()
	for _, id := range ids {
		s.reapedC.With("disconnect").Inc()
		_ = s.cluster.Close(id)
	}
}

// reap releases every session past its deadline — pending sessions
// whose commit window lapsed, committed sessions whose heartbeats
// stopped — then re-arms. Sessions are scanned and released in ID
// order so virtual-clock runs are deterministic.
func (s *Server) reap() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.clk.Now()
	ids := make([]runtime.SessionID, 0, len(s.sessions))
	for id, ws := range s.sessions {
		if !ws.deadline.After(now) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	due := make([]*wireSession, 0, len(ids))
	for _, id := range ids {
		ws := s.sessions[id]
		due = append(due, ws)
		delete(s.sessions, id)
		if ws.owner.owned != nil {
			delete(ws.owner.owned, id)
		}
	}
	s.setSessionGauges()
	s.mu.Unlock()

	for _, ws := range due {
		reason := "heartbeat-timeout"
		if !ws.committed {
			reason = "commit-timeout"
		}
		s.reapedC.With(reason).Inc()
		_ = s.cluster.Close(ws.id)
	}

	s.mu.Lock()
	if !s.closed {
		s.reapT = s.clk.AfterFunc(s.cfg.ReapInterval, s.reap)
	}
	s.mu.Unlock()
}
