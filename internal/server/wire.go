// Package server serves the ACP session interface (§2.2's Find /
// Process / Close, plus the adaptation plane's Recompose) over a
// long-lived TCP connection, so clients in other processes — the
// acpload generator, an operator's netcat — drive a live
// runtime.Cluster through the same admission, quota, and teardown
// paths the in-process harnesses exercise.
//
// The protocol is JSON lines: one request object per line, one
// response object per line, answered in order per connection.
// Concurrency comes from connections, not pipelining — each
// connection's operations are serialised, which keeps the per-session
// state machine trivial and the wire format debuggable by hand:
//
//	{"op":"hello","seq":1,"proto":1,"tenant":"t0"}
//	{"op":"compose","seq":2,"functions":[3,1,4],"cpu":4,"memoryMB":40,
//	 "delay":1e5,"lossProb":0.9,"bandwidthKbps":30}
//	{"op":"commit","seq":3,"session":1}
//	{"op":"heartbeat","seq":4,"session":1}
//	{"op":"recompose","seq":5,"session":1}
//	{"op":"teardown","seq":6,"session":1}
//
// Failure is typed, not stringly: every error response carries a
// machine-readable code so a load generator can distinguish "the
// cluster is full" (capacity) from "your tenant is over budget"
// (quota, with the tripped dimension) from "you sent nonsense"
// (protocol) without parsing prose.
package server

import (
	"repro/internal/runtime"
)

// ProtoVersion is the wire protocol version hello must announce.
const ProtoVersion = 1

// Ops. hello must come first on a connection; compose returns a
// pending session that must be committed before its commit deadline;
// committed sessions live until teardown, disconnect, or heartbeat
// expiry.
const (
	OpHello     = "hello"
	OpCompose   = "compose"
	OpCommit    = "commit"
	OpHeartbeat = "heartbeat"
	OpRecompose = "recompose"
	OpTeardown  = "teardown"
)

// Error codes. Distinct failure classes get distinct codes; clients
// branch on Code, never on Error text.
const (
	// CodeProtocol: malformed frame, unknown op, op out of order
	// (compose before hello), or invalid field values. The server
	// closes the connection after answering — a client that cannot
	// frame requests cannot be trusted to keep session state.
	CodeProtocol = "protocol"
	// CodeCapacity: the composition engine found no qualified
	// composition (runtime.ErrNoComposition) — the cluster has no room
	// or the QoS requirement is unmeetable right now.
	CodeCapacity = "capacity"
	// CodeQuota: the tenant's admission quota rejected the request
	// before the composer ran (runtime.QuotaError). Dimension carries
	// the tripped axis ("sessions", "cpu", "memory", "bandwidth").
	CodeQuota = "quota"
	// CodeBusy: server-side admission control refused the compose —
	// the live-session cap or the in-flight compose limit is reached.
	// Back off and retry; nothing was charged.
	CodeBusy = "busy"
	// CodeUnknownSession: the session ID was never issued, was torn
	// down, or was reaped.
	CodeUnknownSession = "unknown-session"
	// CodeNoBetter: recompose re-probed but found no composition
	// meeting the session's admission-time phi bound
	// (runtime.ErrNoBetterComposition); the session is untouched.
	CodeNoBetter = "no-better"
	// CodeInternal: unexpected server-side failure.
	CodeInternal = "internal"
)

// Request is one client frame.
type Request struct {
	Op  string `json:"op"`
	Seq int64  `json:"seq,omitempty"`

	// hello
	Proto  int    `json:"proto,omitempty"`
	Tenant string `json:"tenant,omitempty"`

	// compose: a path-graph application template. Functions lists the
	// required function per position; CPU and MemoryMB are the uniform
	// per-position resource requirement; Delay and LossProb are the
	// end-to-end QoS requirement (LossProb is converted to the paper's
	// additive loss cost server-side); BandwidthKbps is the
	// per-virtual-link stream bandwidth; Weight the phi weight under
	// weighted fairness (0 = default 1).
	Functions     []int   `json:"functions,omitempty"`
	CPU           float64 `json:"cpu,omitempty"`
	MemoryMB      float64 `json:"memoryMB,omitempty"`
	Delay         float64 `json:"delay,omitempty"`
	LossProb      float64 `json:"lossProb,omitempty"`
	BandwidthKbps float64 `json:"bandwidthKbps,omitempty"`
	Weight        float64 `json:"weight,omitempty"`

	// commit / heartbeat / recompose / teardown
	Session int64 `json:"session,omitempty"`
}

// PlacedComponent mirrors runtime.PlacedComponent on the wire.
type PlacedComponent struct {
	Position  int `json:"position"`
	Function  int `json:"function"`
	Component int `json:"component"`
	Node      int `json:"node"`
}

// Response is one server frame. OK distinguishes success; on failure
// Code is always set and Error carries the human-readable cause.
type Response struct {
	OK   bool   `json:"ok"`
	Op   string `json:"op"`
	Seq  int64  `json:"seq,omitempty"`
	Code string `json:"code,omitempty"`
	// Dimension refines CodeQuota with the tripped quota axis.
	Dimension string `json:"dimension,omitempty"`
	Error     string `json:"error,omitempty"`

	// hello
	Proto int `json:"proto,omitempty"`

	// compose / recompose
	Session    int64             `json:"session,omitempty"`
	Phi        float64           `json:"phi,omitempty"`
	Components []PlacedComponent `json:"components,omitempty"`
	// CommitDeadlineMs (compose only) is how long the client has to
	// commit before the pending session is reaped.
	CommitDeadlineMs int64 `json:"commitDeadlineMs,omitempty"`
}

// wireComponents renders a runtime composition for the wire.
func wireComponents(comp runtime.Composition) []PlacedComponent {
	out := make([]PlacedComponent, 0, len(comp.Components))
	for _, pc := range comp.Components {
		out = append(out, PlacedComponent{
			Position:  pc.Position,
			Function:  int(pc.Function),
			Component: int(pc.Component),
			Node:      pc.Node,
		})
	}
	return out
}
