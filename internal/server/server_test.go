package server

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// testCluster builds a small live cluster; shut down via t.Cleanup.
func testCluster(t *testing.T, clk clock.Clock, reg *obs.Registry) *runtime.Cluster {
	t.Helper()
	cfg := runtime.DefaultConfig()
	cfg.IPNodes = 128
	cfg.OverlayNodes = 24
	cfg.NeighborsPerNode = 4
	cfg.NumFunctions = 8
	cfg.ComponentsPerNode = 3
	cfg.Clock = clk
	cfg.Registry = reg
	c, err := runtime.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func testServer(t *testing.T, c *runtime.Cluster, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Cluster: c}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dialHello(t *testing.T, s *Server, tenant string) *Client {
	t.Helper()
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	resp, err := cl.Hello(tenant)
	if err != nil || !resp.OK {
		t.Fatalf("hello = %+v, %v", resp, err)
	}
	return cl
}

// composeReq is the canonical modest request every test composes: a
// 3-function path with the harness's generous QoS requirement.
func composeReq() Request {
	return Request{
		Functions:     []int{1, 2, 3},
		CPU:           4,
		MemoryMB:      40,
		Delay:         1e5,
		LossProb:      0.9,
		BandwidthKbps: 30,
	}
}

// mustCompose drives compose (and optionally commit) to success.
func mustCompose(t *testing.T, cl *Client, commit bool) int64 {
	t.Helper()
	resp, err := cl.Compose(composeReq())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("compose refused: %+v", resp)
	}
	if resp.Session == 0 || resp.Phi <= 0 || len(resp.Components) != 3 {
		t.Fatalf("compose response malformed: %+v", resp)
	}
	if commit {
		c, err := cl.Commit(resp.Session)
		if err != nil || !c.OK {
			t.Fatalf("commit = %+v, %v", c, err)
		}
	}
	return resp.Session
}

// auditPristine asserts the PR 8 teardown audit over the wire paths:
// ledger residuals back at capacity, quota books at seed values, no
// live sessions.
func auditPristine(t *testing.T, c *runtime.Cluster, tenants ...string) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("ledger invariants violated: %v", err)
	}
	if got := c.ActiveSessions(); got != 0 {
		t.Fatalf("%d sessions still live", got)
	}
	for n := 0; n < c.NumNodes(); n++ {
		want, got := c.NodeCapacity(n), c.NodeResidual(n)
		if math.Abs(got.CPU-want.CPU) > 1e-6 || math.Abs(got.Memory-want.Memory) > 1e-6 {
			t.Fatalf("node %d residual %+v, want capacity %+v", n, got, want)
		}
	}
	for l := 0; l < c.NumLinks(); l++ {
		if want := c.Mesh().Link(l).Capacity; math.Abs(c.LinkResidual(l)-want) > 1e-6 {
			t.Fatalf("link %d residual %v, want %v", l, c.LinkResidual(l), want)
		}
	}
	for _, tenant := range tenants {
		u := c.TenantUsageFor(tenant)
		if u.Sessions != 0 || math.Abs(u.CPU) > 1e-9 || math.Abs(u.Memory) > 1e-9 || math.Abs(u.BandwidthKbps) > 1e-9 {
			t.Fatalf("tenant %q usage %+v after teardown, want zero", tenant, u)
		}
	}
}

// waitSessions polls until the cluster has n live sessions (the
// disconnect path races the poll; teardown runs on the server's
// handler goroutine).
func waitSessions(t *testing.T, c *runtime.Cluster, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.ActiveSessions() != n {
		if time.Now().After(deadline) {
			t.Fatalf("cluster still at %d sessions, want %d", c.ActiveSessions(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSessionLifecycle(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)
	cl := dialHello(t, s, "t0")

	id := mustCompose(t, cl, true)
	if got := c.ActiveSessions(); got != 1 {
		t.Fatalf("cluster sessions = %d, want 1", got)
	}
	if u := c.TenantUsageFor("t0"); u.Sessions != 1 {
		t.Fatalf("tenant usage = %+v, want 1 session", u)
	}
	hb, err := cl.Heartbeat(id)
	if err != nil || !hb.OK {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	td, err := cl.Teardown(id)
	if err != nil || !td.OK {
		t.Fatalf("teardown = %+v, %v", td, err)
	}
	auditPristine(t, c, "t0")

	// The session is gone; a second teardown is a typed refusal.
	td, err = cl.Teardown(id)
	if err != nil {
		t.Fatal(err)
	}
	if td.OK || td.Code != CodeUnknownSession {
		t.Fatalf("re-teardown = %+v, want code %q", td, CodeUnknownSession)
	}
}

func TestTypedErrorCodes(t *testing.T) {
	c := testCluster(t, nil, nil)
	c.SetTenantQuota("q", runtime.TenantQuota{MaxSessions: 1})
	s := testServer(t, c, nil)

	t.Run("compose before hello is fatal", func(t *testing.T) {
		cl, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		resp, err := cl.Compose(composeReq())
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Code != CodeProtocol {
			t.Fatalf("compose before hello = %+v, want code %q", resp, CodeProtocol)
		}
		if _, err := cl.Heartbeat(1); err == nil {
			t.Fatal("connection survived a fatal protocol violation")
		}
	})

	t.Run("quota rejection carries dimension", func(t *testing.T) {
		cl := dialHello(t, s, "q")
		id := mustCompose(t, cl, true)
		resp, err := cl.Compose(composeReq())
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Code != CodeQuota || resp.Dimension != "sessions" {
			t.Fatalf("over-quota compose = %+v, want code %q dimension sessions", resp, CodeQuota)
		}
		if td, _ := cl.Teardown(id); !td.OK {
			t.Fatalf("teardown = %+v", td)
		}
	})

	t.Run("capacity refusal", func(t *testing.T) {
		cl := dialHello(t, s, "t0")
		req := composeReq()
		req.CPU = 1e9 // no node can host this
		resp, err := cl.Compose(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Code != CodeCapacity {
			t.Fatalf("impossible compose = %+v, want code %q", resp, CodeCapacity)
		}
	})

	t.Run("invalid fields", func(t *testing.T) {
		cl := dialHello(t, s, "t0")
		for _, req := range []Request{
			{CPU: 4, MemoryMB: 40, Delay: 1e5, LossProb: 0.9},                          // no functions
			{Functions: []int{1, -2}, CPU: 4, MemoryMB: 40, Delay: 1e5, LossProb: 0.9}, // negative function
			{Functions: []int{1, 2}, CPU: 4, MemoryMB: 40, LossProb: 0.9},              // no delay
			{Functions: []int{1, 2}, CPU: 4, MemoryMB: 40, Delay: 1e5, LossProb: 1.5},  // bad loss
			{Functions: []int{1, 2}, CPU: -4, MemoryMB: 40, Delay: 1e5, LossProb: 0.9}, // negative cpu
		} {
			resp, err := cl.Compose(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.OK || resp.Code != CodeProtocol {
				t.Fatalf("invalid compose %+v accepted: %+v", req, resp)
			}
		}
	})

	t.Run("unknown session", func(t *testing.T) {
		cl := dialHello(t, s, "t0")
		for _, do := range []func() (Response, error){
			func() (Response, error) { return cl.Commit(9999) },
			func() (Response, error) { return cl.Heartbeat(9999) },
			func() (Response, error) { return cl.Teardown(9999) },
		} {
			resp, err := do()
			if err != nil {
				t.Fatal(err)
			}
			if resp.OK || resp.Code != CodeUnknownSession {
				t.Fatalf("op on unknown session = %+v, want code %q", resp, CodeUnknownSession)
			}
		}
	})

	t.Run("foreign session is a protocol violation", func(t *testing.T) {
		owner := dialHello(t, s, "t0")
		id := mustCompose(t, owner, true)
		thief := dialHello(t, s, "t1")
		resp, err := thief.Teardown(id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Code != CodeProtocol {
			t.Fatalf("foreign teardown = %+v, want code %q", resp, CodeProtocol)
		}
		if td, _ := owner.Teardown(id); !td.OK {
			t.Fatalf("owner teardown = %+v", td)
		}
	})

	auditPristine(t, c, "t0", "t1", "q")
}

func TestBusyAtSessionCap(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, func(cfg *Config) { cfg.MaxSessions = 1 })
	cl := dialHello(t, s, "t0")

	id := mustCompose(t, cl, true)
	resp, err := cl.Compose(composeReq())
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBusy {
		t.Fatalf("compose at cap = %+v, want code %q", resp, CodeBusy)
	}
	// Nothing was charged: the refusal happened before admission.
	if u := c.TenantUsageFor("t0"); u.Sessions != 1 {
		t.Fatalf("tenant usage after busy refusal = %+v, want 1 session", u)
	}
	if td, _ := cl.Teardown(id); !td.OK {
		t.Fatalf("teardown = %+v", td)
	}
	mustCompose(t, cl, false) // the slot is free again
}

func TestRecomposeOverWire(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)
	cl := dialHello(t, s, "t0")

	id := mustCompose(t, cl, true)
	resp, err := cl.Recompose(id)
	if err != nil {
		t.Fatal(err)
	}
	// Either outcome is legitimate — a flip, or a typed "no better
	// composition meets the admission bound" refusal that leaves the
	// session untouched. Anything else is a failure.
	if !resp.OK && resp.Code != CodeNoBetter {
		t.Fatalf("recompose = %+v", resp)
	}
	if resp.OK && len(resp.Components) != 3 {
		t.Fatalf("recompose response missing composition: %+v", resp)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recompose: %v", err)
	}
	if td, _ := cl.Teardown(id); !td.OK {
		t.Fatalf("teardown = %+v", td)
	}
	auditPristine(t, c, "t0")

	// Recompose on a pending (uncommitted) session is a state error.
	pid := mustCompose(t, cl, false)
	if r, _ := cl.Recompose(pid); r.OK || r.Code != CodeProtocol {
		t.Fatalf("recompose on pending session = %+v, want code %q", r, CodeProtocol)
	}
	if td, _ := cl.Teardown(pid); !td.OK {
		t.Fatalf("teardown = %+v", td)
	}
}

// TestReapHeartbeatExpiry is the deterministic virtual-clock reap
// test: a committed session whose client goes silent is reaped at
// exactly the heartbeat deadline, and the reap releases every hold
// and refunds the full quota — ledger and books pristine.
func TestReapHeartbeatExpiry(t *testing.T) {
	vc := clock.NewVirtual()
	reg := obs.NewRegistry()
	c := testCluster(t, vc, reg)
	s := testServer(t, c, func(cfg *Config) {
		cfg.Clock = vc
		cfg.CommitTimeout = 10 * time.Second
		cfg.HeartbeatTimeout = 30 * time.Second
		cfg.ReapInterval = time.Second
		cfg.Registry = reg
	})
	cl := dialHello(t, s, "t0")
	id := mustCompose(t, cl, true)

	// 29s of virtual silence: the session survives (deadline is +30s).
	vc.Advance(29 * time.Second)
	if got := c.ActiveSessions(); got != 1 {
		t.Fatalf("session reaped early: %d live at +29s", got)
	}
	// A heartbeat re-arms the deadline; 29 more seconds still survive.
	if hb, err := cl.Heartbeat(id); err != nil || !hb.OK {
		t.Fatalf("heartbeat = %+v, %v", hb, err)
	}
	vc.Advance(29 * time.Second)
	if got := c.ActiveSessions(); got != 1 {
		t.Fatalf("session reaped despite heartbeat: %d live", got)
	}
	// Silence past the deadline: the reaper takes it synchronously on
	// the advancing goroutine — no polling, no sleeps.
	vc.Advance(2 * time.Second)
	if got := c.ActiveSessions(); got != 0 {
		t.Fatalf("session not reaped: %d live after heartbeat expiry", got)
	}
	auditPristine(t, c, "t0")

	if v := reg.Snapshot().CounterVecs["server.reaped"]; len(v.Values) != 1 ||
		v.Values[0].Labels[0] != "heartbeat-timeout" || v.Values[0].Value != 1 {
		t.Fatalf("server.reaped = %+v, want one heartbeat-timeout", v)
	}
	// The client learns of the reap as a typed unknown-session.
	hb, err := cl.Heartbeat(id)
	if err != nil {
		t.Fatal(err)
	}
	if hb.OK || hb.Code != CodeUnknownSession {
		t.Fatalf("heartbeat after reap = %+v, want code %q", hb, CodeUnknownSession)
	}
}

// TestReapCommitTimeout: a composed-but-never-committed session is a
// transient hold; the reaper releases it at the commit deadline.
func TestReapCommitTimeout(t *testing.T) {
	vc := clock.NewVirtual()
	reg := obs.NewRegistry()
	c := testCluster(t, vc, reg)
	s := testServer(t, c, func(cfg *Config) {
		cfg.Clock = vc
		cfg.CommitTimeout = 10 * time.Second
		cfg.HeartbeatTimeout = 30 * time.Second
		cfg.ReapInterval = time.Second
		cfg.Registry = reg
	})
	cl := dialHello(t, s, "t0")
	id := mustCompose(t, cl, false)

	vc.Advance(9 * time.Second)
	if got := c.ActiveSessions(); got != 1 {
		t.Fatalf("pending session reaped early: %d live at +9s", got)
	}
	vc.Advance(2 * time.Second)
	if got := c.ActiveSessions(); got != 0 {
		t.Fatalf("pending session not reaped at commit deadline: %d live", got)
	}
	auditPristine(t, c, "t0")

	if v := reg.Snapshot().CounterVecs["server.reaped"]; len(v.Values) != 1 ||
		v.Values[0].Labels[0] != "commit-timeout" || v.Values[0].Value != 1 {
		t.Fatalf("server.reaped = %+v, want one commit-timeout", v)
	}
	// Committing the corpse is a typed refusal, not a crash.
	cm, err := cl.Commit(id)
	if err != nil {
		t.Fatal(err)
	}
	if cm.OK || cm.Code != CodeUnknownSession {
		t.Fatalf("commit after reap = %+v, want code %q", cm, CodeUnknownSession)
	}
}

// TestDisconnectReleasesSessions covers the transport-death paths of
// the teardown audit: a connection that vanishes — abrupt close with
// both a committed and a pending session in flight — must leave the
// ledger pristine and the quota books at seed values.
func TestDisconnectReleasesSessions(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)
	cl := dialHello(t, s, "t0")

	mustCompose(t, cl, true)  // committed
	mustCompose(t, cl, false) // pending
	if got := c.ActiveSessions(); got != 2 {
		t.Fatalf("cluster sessions = %d, want 2", got)
	}
	// Sever the transport without teardown: the server's handler exit
	// must release both sessions.
	_ = cl.Close()
	waitSessions(t, c, 0)
	auditPristine(t, c, "t0")
	if s.Sessions() != 0 {
		t.Fatalf("server still tracks %d wire sessions", s.Sessions())
	}
}

// TestMalformedFrameTearsDownSessions: garbage mid-session is answered
// with a typed protocol error, then the connection — and every session
// it owns — is taken down, books pristine.
func TestMalformedFrameTearsDownSessions(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)
	cl := dialHello(t, s, "t0")
	mustCompose(t, cl, true)

	if _, err := fmt.Fprintf(cl.Conn(), "this is not json\n"); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Do(Request{Op: OpHeartbeat, Session: 1})
	// Depending on scheduling we read the protocol error for the
	// garbage frame, or the connection is already gone.
	if err == nil && (resp.OK || resp.Code != CodeProtocol) {
		t.Fatalf("response to garbage frame = %+v, want code %q", resp, CodeProtocol)
	}
	waitSessions(t, c, 0)
	auditPristine(t, c, "t0")
}

// TestConcurrentTenants drives several connections at once through
// full lifecycles — the multiplexing path — and audits the books.
func TestConcurrentTenants(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)

	const clients = 6
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			errs <- func() error {
				cl, err := Dial(s.Addr())
				if err != nil {
					return err
				}
				defer cl.Close()
				if r, err := cl.Hello(fmt.Sprintf("t%d", i%3)); err != nil || !r.OK {
					return fmt.Errorf("hello = %+v, %v", r, err)
				}
				for n := 0; n < 5; n++ {
					r, err := cl.Compose(composeReq())
					if err != nil {
						return err
					}
					if !r.OK {
						if r.Code == CodeCapacity || r.Code == CodeBusy {
							continue // legitimate under contention
						}
						return fmt.Errorf("compose = %+v", r)
					}
					if cm, err := cl.Commit(r.Session); err != nil || !cm.OK {
						return fmt.Errorf("commit = %+v, %v", cm, err)
					}
					if hb, err := cl.Heartbeat(r.Session); err != nil || !hb.OK {
						return fmt.Errorf("heartbeat = %+v, %v", hb, err)
					}
					if td, err := cl.Teardown(r.Session); err != nil || !td.OK {
						return fmt.Errorf("teardown = %+v, %v", td, err)
					}
				}
				return nil
			}()
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	auditPristine(t, c, "t0", "t1", "t2")
}

func TestHelloValidation(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)

	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(Request{Op: OpHello, Proto: 99})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeProtocol || !strings.Contains(resp.Error, "proto") {
		t.Fatalf("bad-proto hello = %+v", resp)
	}

	cl2 := dialHello(t, s, "t0")
	resp, err = cl2.Do(Request{Op: OpHello, Proto: ProtoVersion})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeProtocol {
		t.Fatalf("duplicate hello = %+v", resp)
	}
}

func TestServerCloseSeversClients(t *testing.T) {
	c := testCluster(t, nil, nil)
	s := testServer(t, c, nil)
	cl := dialHello(t, s, "t0")
	mustCompose(t, cl, true)

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits for handlers; sessions are already released.
	auditPristine(t, c, "t0")
	if _, err := cl.Heartbeat(1); err == nil {
		t.Fatal("client survived server Close")
	}
}
