package component

import (
	"math/rand"
	"testing"
)

func TestGenerateLibraryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name   string
		mutate func(*TemplateConfig)
	}{
		{name: "zero count", mutate: func(c *TemplateConfig) { c.Count = 0 }},
		{name: "path too short", mutate: func(c *TemplateConfig) { c.MinPathLen = 1 }},
		{name: "inverted lengths", mutate: func(c *TemplateConfig) { c.MinPathLen = 5; c.MaxPathLen = 2 }},
		{name: "bad fraction", mutate: func(c *TemplateConfig) { c.DAGFraction = 1.5 }},
		{name: "too few functions", mutate: func(c *TemplateConfig) { c.NumFunctions = 3 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultTemplateConfig()
			tt.mutate(&cfg)
			if _, err := GenerateLibrary(cfg, rng); err == nil {
				t.Error("GenerateLibrary accepted invalid config")
			}
		})
	}
}

func TestGenerateLibraryShapes(t *testing.T) {
	cfg := DefaultTemplateConfig()
	cfg.Count = 100
	cfg.DAGFraction = 0.5
	lib, err := GenerateLibrary(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if lib.Count() != 100 {
		t.Fatalf("Count = %d, want 100", lib.Count())
	}
	paths, dags := 0, 0
	for i := 0; i < lib.Count(); i++ {
		g := lib.Graph(i)
		if err := g.Validate(); err != nil {
			t.Fatalf("template %d invalid: %v", i, err)
		}
		if g.IsPath() {
			paths++
			if n := g.NumPositions(); n < cfg.MinPathLen || n > cfg.MaxPathLen {
				t.Errorf("path template %d has %d positions, want [%d,%d]", i, n, cfg.MinPathLen, cfg.MaxPathLen)
			}
		} else {
			dags++
			for _, p := range g.Paths() {
				if len(p) < cfg.MinPathLen || len(p) > cfg.MaxPathLen {
					t.Errorf("DAG template %d has branch path of %d nodes, want [%d,%d]",
						i, len(p), cfg.MinPathLen, cfg.MaxPathLen)
				}
			}
			if got := len(g.Paths()); got != 2 {
				t.Errorf("DAG template %d has %d branch paths, want 2", i, got)
			}
		}
	}
	if paths == 0 || dags == 0 {
		t.Errorf("shape mix degenerate: %d paths, %d DAGs", paths, dags)
	}
}

func TestGenerateLibraryDistinctFunctions(t *testing.T) {
	cfg := DefaultTemplateConfig()
	cfg.Count = 50
	lib, err := GenerateLibrary(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < lib.Count(); i++ {
		g := lib.Graph(i)
		seen := make(map[FunctionID]bool)
		for _, f := range g.Functions {
			if seen[f] {
				t.Fatalf("template %d repeats function %d", i, f)
			}
			seen[f] = true
			if int(f) < 0 || int(f) >= cfg.NumFunctions {
				t.Fatalf("template %d uses out-of-range function %d", i, f)
			}
		}
	}
}

func TestLibraryPick(t *testing.T) {
	cfg := DefaultTemplateConfig()
	lib, err := GenerateLibrary(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		idx, g := lib.Pick(rng)
		if g != lib.Graph(idx) {
			t.Fatal("Pick returned mismatched index and graph")
		}
		seen[idx] = true
	}
	if len(seen) < cfg.Count/2 {
		t.Errorf("Pick visited only %d of %d templates", len(seen), cfg.Count)
	}
}
