package component

import (
	"fmt"
	"math/rand"

	"repro/internal/qos"
)

// PlacementConfig controls how components are deployed onto overlay nodes.
type PlacementConfig struct {
	// NumFunctions is the size of the function catalogue (paper: 80).
	NumFunctions int
	// ComponentsPerNode is how many components each overlay node
	// provides. The paper notes nodes cannot provide every component
	// (security/licensing/hardware constraints); candidate counts per
	// function grow proportionally with node count (§4.2 scalability).
	ComponentsPerNode int
	// MinProcDelay and MaxProcDelay bound per-component processing delay
	// in milliseconds.
	MinProcDelay, MaxProcDelay float64
	// MinLoss and MaxLoss bound per-component loss rate.
	MinLoss, MaxLoss float64
	// SecurityLevels is the number of distinct component security levels
	// to draw uniformly (components get levels 1..SecurityLevels).
	SecurityLevels int
}

// DefaultPlacementConfig mirrors the paper's setup: 80 functions, with
// component QoS drawn uniformly from ranges "based on real-world
// measurements".
func DefaultPlacementConfig() PlacementConfig {
	return PlacementConfig{
		NumFunctions:      DefaultNumFunctions,
		ComponentsPerNode: 1,
		MinProcDelay:      10,
		MaxProcDelay:      40,
		MinLoss:           0.001,
		MaxLoss:           0.01,
		SecurityLevels:    3,
	}
}

// Catalog records which components are deployed where, indexed both by
// function (for discovery) and by node. Placement is mutable: the
// dynamic placement manager migrates components between nodes (footnote
// 1 of the paper: "components can be dynamically migrated among nodes;
// composition operates based on the current component placement"), and
// failure injection marks whole nodes unavailable.
type Catalog struct {
	components []Component
	byFunction [][]ComponentID
	byNode     [][]ComponentID
	nodeDown   []bool
}

// Place deploys components across numNodes overlay nodes. Functions are
// assigned round-robin over a node permutation so every function ends up
// with floor/ceil(numNodes*ComponentsPerNode/NumFunctions) candidates —
// matching the paper's "candidate components per function increase
// proportionally" scaling property while avoiding empty functions.
func Place(numNodes int, cfg PlacementConfig, rng *rand.Rand) (*Catalog, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("component: numNodes %d < 1", numNodes)
	}
	if cfg.NumFunctions < 1 {
		return nil, fmt.Errorf("component: NumFunctions %d < 1", cfg.NumFunctions)
	}
	if cfg.ComponentsPerNode < 1 {
		return nil, fmt.Errorf("component: ComponentsPerNode %d < 1", cfg.ComponentsPerNode)
	}
	if cfg.MinProcDelay <= 0 || cfg.MaxProcDelay < cfg.MinProcDelay {
		return nil, fmt.Errorf("component: invalid processing delay range [%v, %v]", cfg.MinProcDelay, cfg.MaxProcDelay)
	}
	if cfg.MinLoss < 0 || cfg.MaxLoss < cfg.MinLoss || cfg.MaxLoss >= 1 {
		return nil, fmt.Errorf("component: invalid loss range [%v, %v]", cfg.MinLoss, cfg.MaxLoss)
	}
	if cfg.SecurityLevels < 1 {
		return nil, fmt.Errorf("component: SecurityLevels %d < 1", cfg.SecurityLevels)
	}

	total := numNodes * cfg.ComponentsPerNode
	c := &Catalog{
		components: make([]Component, 0, total),
		byFunction: make([][]ComponentID, cfg.NumFunctions),
		byNode:     make([][]ComponentID, numNodes),
		nodeDown:   make([]bool, numNodes),
	}

	// Shuffle (node, slot) placements, then deal functions round-robin so
	// function coverage is even but geographically random.
	slots := make([]int, total) // slot i lives on node slots[i]
	for i := range slots {
		slots[i] = i / cfg.ComponentsPerNode
	}
	rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })

	for i, node := range slots {
		f := FunctionID(i % cfg.NumFunctions)
		delay := cfg.MinProcDelay + rng.Float64()*(cfg.MaxProcDelay-cfg.MinProcDelay)
		loss := cfg.MinLoss + rng.Float64()*(cfg.MaxLoss-cfg.MinLoss)
		id := ComponentID(len(c.components))
		c.components = append(c.components, Component{
			ID:       id,
			Node:     node,
			Function: f,
			QoS:      qos.Vector{Delay: delay, LossCost: qos.LossCost(loss)},
			Security: 1 + rng.Intn(cfg.SecurityLevels),
		})
		c.byFunction[f] = append(c.byFunction[f], id)
		c.byNode[node] = append(c.byNode[node], id)
	}
	return c, nil
}

// Clone returns a deep copy of the catalog. Experiment runs that enable
// migration or failure injection clone the shared platform catalog so
// runs stay independent.
func (c *Catalog) Clone() *Catalog {
	out := &Catalog{
		components: append([]Component(nil), c.components...),
		byFunction: make([][]ComponentID, len(c.byFunction)),
		byNode:     make([][]ComponentID, len(c.byNode)),
		nodeDown:   append([]bool(nil), c.nodeDown...),
	}
	for i, ids := range c.byFunction {
		out.byFunction[i] = append([]ComponentID(nil), ids...)
	}
	for i, ids := range c.byNode {
		out.byNode[i] = append([]ComponentID(nil), ids...)
	}
	return out
}

// Move migrates a component to another node, updating the per-node
// indexes. Subsequent compositions operate on the new placement
// (footnote 1).
func (c *Catalog) Move(id ComponentID, node int) error {
	if int(id) < 0 || int(id) >= len(c.components) {
		return fmt.Errorf("component: unknown component %d", id)
	}
	if node < 0 || node >= len(c.byNode) {
		return fmt.Errorf("component: node %d out of range", node)
	}
	comp := &c.components[id]
	if comp.Node == node {
		return nil
	}
	old := c.byNode[comp.Node]
	for i, cid := range old {
		if cid == id {
			c.byNode[comp.Node] = append(old[:i], old[i+1:]...)
			break
		}
	}
	comp.Node = node
	c.byNode[node] = append(c.byNode[node], id)
	return nil
}

// SetNodeAvailable marks an overlay node up or down. Components on a
// down node stop being offered as candidates.
func (c *Catalog) SetNodeAvailable(node int, up bool) {
	if node >= 0 && node < len(c.nodeDown) {
		c.nodeDown[node] = !up
	}
}

// HasDownNodes reports whether any node is currently marked down; the
// discovery fast path skips candidate filtering while everything is up.
func (c *Catalog) HasDownNodes() bool {
	for _, down := range c.nodeDown {
		if down {
			return true
		}
	}
	return false
}

// NodeIsAvailable reports whether the overlay node is up.
func (c *Catalog) NodeIsAvailable(node int) bool {
	return node >= 0 && node < len(c.nodeDown) && !c.nodeDown[node]
}

// Usable reports whether a component can currently be composed: its
// hosting node must be up.
func (c *Catalog) Usable(id ComponentID) bool {
	return c.NodeIsAvailable(c.components[id].Node)
}

// NumComponents returns the number of deployed components.
func (c *Catalog) NumComponents() int { return len(c.components) }

// NumFunctions returns the size of the function catalogue.
func (c *Catalog) NumFunctions() int { return len(c.byFunction) }

// Component returns the component with the given ID.
func (c *Catalog) Component(id ComponentID) Component { return c.components[int(id)] }

// Candidates returns the IDs of components providing function f. The
// returned slice is internal storage; callers must not modify it.
func (c *Catalog) Candidates(f FunctionID) []ComponentID {
	if int(f) < 0 || int(f) >= len(c.byFunction) {
		return nil
	}
	return c.byFunction[f]
}

// OnNode returns the IDs of components hosted on the given overlay node.
func (c *Catalog) OnNode(node int) []ComponentID {
	if node < 0 || node >= len(c.byNode) {
		return nil
	}
	return c.byNode[node]
}
