package component

import "testing"

// FuzzGraphValidate hardens graph validation: arbitrary edge lists must
// be classified (valid or error) without panics, and anything Validate
// accepts must have a consistent topological order and path
// decomposition.
func FuzzGraphValidate(f *testing.F) {
	f.Add(3, []byte{0, 1, 1, 2})
	f.Add(1, []byte{})
	f.Add(5, []byte{0, 1, 0, 2, 1, 3, 2, 3})
	f.Add(2, []byte{0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, n int, rawEdges []byte) {
		if n < 0 || n > 32 {
			return
		}
		g := &Graph{Functions: make([]FunctionID, n)}
		for i := range g.Functions {
			g.Functions[i] = FunctionID(i)
		}
		for i := 0; i+1 < len(rawEdges) && i < 64; i += 2 {
			g.Edges = append(g.Edges, Edge{From: int(rawEdges[i]) % 33, To: int(rawEdges[i+1]) % 33})
		}
		if err := g.Validate(); err != nil {
			return
		}
		// Accepted graphs must be internally consistent.
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("validated graph has no topo order: %v", err)
		}
		if len(order) != n {
			t.Fatalf("topo order covers %d of %d positions", len(order), n)
		}
		for _, path := range g.Paths() {
			if len(path) == 0 {
				t.Fatal("empty source-sink path")
			}
			for _, pos := range path {
				if pos < 0 || pos >= n {
					t.Fatalf("path position %d out of range", pos)
				}
			}
		}
	})
}
