package component

import (
	"math/rand"
	"testing"

	"repro/internal/qos"
)

func TestPlaceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name     string
		numNodes int
		mutate   func(*PlacementConfig)
	}{
		{name: "zero nodes", numNodes: 0, mutate: func(c *PlacementConfig) {}},
		{name: "zero functions", numNodes: 10, mutate: func(c *PlacementConfig) { c.NumFunctions = 0 }},
		{name: "zero per node", numNodes: 10, mutate: func(c *PlacementConfig) { c.ComponentsPerNode = 0 }},
		{name: "bad delay range", numNodes: 10, mutate: func(c *PlacementConfig) { c.MinProcDelay = 10; c.MaxProcDelay = 5 }},
		{name: "zero min delay", numNodes: 10, mutate: func(c *PlacementConfig) { c.MinProcDelay = 0 }},
		{name: "loss >= 1", numNodes: 10, mutate: func(c *PlacementConfig) { c.MaxLoss = 1 }},
		{name: "negative loss", numNodes: 10, mutate: func(c *PlacementConfig) { c.MinLoss = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultPlacementConfig()
			tt.mutate(&cfg)
			if _, err := Place(tt.numNodes, cfg, rng); err == nil {
				t.Error("Place accepted invalid config")
			}
		})
	}
}

func TestPlaceEvenFunctionCoverage(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cat, err := Place(400, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.NumComponents(); got != 400 {
		t.Fatalf("NumComponents = %d, want 400", got)
	}
	// 400 components over 80 functions: exactly 5 candidates each.
	for f := 0; f < cfg.NumFunctions; f++ {
		if got := len(cat.Candidates(FunctionID(f))); got != 5 {
			t.Errorf("function %d has %d candidates, want 5", f, got)
		}
	}
}

func TestPlaceProportionalScaling(t *testing.T) {
	// The scalability experiment (§4.2) relies on candidates growing
	// proportionally with node count.
	cfg := DefaultPlacementConfig()
	for _, n := range []int{200, 400, 600} {
		cat, err := Place(n, cfg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		want := n / cfg.NumFunctions
		for f := 0; f < cfg.NumFunctions; f++ {
			got := len(cat.Candidates(FunctionID(f)))
			if got < want || got > want+1 {
				t.Fatalf("n=%d: function %d has %d candidates, want %d or %d", n, f, got, want, want+1)
			}
		}
	}
}

func TestPlacePerNodeCount(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cfg.ComponentsPerNode = 3
	cat, err := Place(50, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 50; node++ {
		if got := len(cat.OnNode(node)); got != 3 {
			t.Errorf("node %d hosts %d components, want 3", node, got)
		}
		for _, id := range cat.OnNode(node) {
			if cat.Component(id).Node != node {
				t.Errorf("component %d indexed on node %d but placed on %d", id, node, cat.Component(id).Node)
			}
		}
	}
}

func TestPlaceQoSInRange(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cat, err := Place(100, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cat.NumComponents(); i++ {
		c := cat.Component(ComponentID(i))
		if c.QoS.Delay < cfg.MinProcDelay || c.QoS.Delay > cfg.MaxProcDelay {
			t.Errorf("component %d delay %v out of range", i, c.QoS.Delay)
		}
		loss := qos.LossProb(c.QoS.LossCost)
		if loss < cfg.MinLoss-1e-12 || loss > cfg.MaxLoss+1e-12 {
			t.Errorf("component %d loss %v out of range", i, loss)
		}
	}
}

func TestCandidatesOutOfRange(t *testing.T) {
	cat, err := Place(10, DefaultPlacementConfig(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Candidates(-1); got != nil {
		t.Errorf("Candidates(-1) = %v", got)
	}
	if got := cat.Candidates(FunctionID(cat.NumFunctions())); got != nil {
		t.Errorf("Candidates(out of range) = %v", got)
	}
	if got := cat.OnNode(-1); got != nil {
		t.Errorf("OnNode(-1) = %v", got)
	}
	if got := cat.OnNode(10); got != nil {
		t.Errorf("OnNode(10) = %v", got)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	c1, err := Place(50, DefaultPlacementConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Place(50, DefaultPlacementConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c1.NumComponents(); i++ {
		if c1.Component(ComponentID(i)) != c2.Component(ComponentID(i)) {
			t.Fatalf("component %d differs across identical seeds", i)
		}
	}
}

func TestSecurityLevelsAssigned(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cfg.SecurityLevels = 3
	cat, err := Place(300, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < cat.NumComponents(); i++ {
		lvl := cat.Component(ComponentID(i)).Security
		if lvl < 1 || lvl > 3 {
			t.Fatalf("component %d has security level %d", i, lvl)
		}
		seen[lvl]++
	}
	for lvl := 1; lvl <= 3; lvl++ {
		if seen[lvl] < 50 {
			t.Errorf("level %d drawn only %d times of 300", lvl, seen[lvl])
		}
	}
}

func TestPlaceRejectsZeroSecurityLevels(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cfg.SecurityLevels = 0
	if _, err := Place(10, cfg, rand.New(rand.NewSource(9))); err == nil {
		t.Error("zero security levels accepted")
	}
}

func TestNodeAvailability(t *testing.T) {
	cat, err := Place(20, DefaultPlacementConfig(), rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if cat.HasDownNodes() {
		t.Error("fresh catalog reports down nodes")
	}
	cat.SetNodeAvailable(5, false)
	if !cat.HasDownNodes() || cat.NodeIsAvailable(5) {
		t.Error("node 5 not marked down")
	}
	for _, id := range cat.OnNode(5) {
		if cat.Usable(id) {
			t.Errorf("component %d on down node usable", id)
		}
	}
	cat.SetNodeAvailable(5, true)
	if cat.HasDownNodes() {
		t.Error("repair not applied")
	}
	// Out-of-range is ignored gracefully.
	cat.SetNodeAvailable(-1, false)
	cat.SetNodeAvailable(999, false)
	if cat.HasDownNodes() {
		t.Error("out-of-range availability change took effect")
	}
	if cat.NodeIsAvailable(-1) || cat.NodeIsAvailable(999) {
		t.Error("out-of-range nodes reported available")
	}
}
