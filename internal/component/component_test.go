package component

import (
	"testing"
	"time"

	"repro/internal/qos"
)

func mustBranchGraph(t *testing.T) *Graph {
	t.Helper()
	// Source F0, branches {F1, F2} and {F3}, sink F4 — the Figure 1(c)
	// shape.
	g, err := NewBranchGraph(0, []FunctionID{1, 2}, []FunctionID{3}, 4)
	if err != nil {
		t.Fatalf("NewBranchGraph: %v", err)
	}
	return g
}

func TestNewPathGraph(t *testing.T) {
	g := NewPathGraph([]FunctionID{5, 6, 7})
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !g.IsPath() {
		t.Error("path graph not recognised as path")
	}
	if got := g.NumPositions(); got != 3 {
		t.Errorf("NumPositions = %d, want 3", got)
	}
	if src := g.Sources(); len(src) != 1 || src[0] != 0 {
		t.Errorf("Sources = %v, want [0]", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || snk[0] != 2 {
		t.Errorf("Sinks = %v, want [2]", snk)
	}
}

func TestNewBranchGraphShape(t *testing.T) {
	g := mustBranchGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.IsPath() {
		t.Error("branch graph recognised as path")
	}
	if got := g.NumPositions(); got != 5 {
		t.Fatalf("NumPositions = %d, want 5", got)
	}
	paths := g.Paths()
	if len(paths) != 2 {
		t.Fatalf("Paths = %v, want 2 paths", paths)
	}
	for _, p := range paths {
		if p[0] != 0 {
			t.Errorf("path %v does not start at source", p)
		}
		if p[len(p)-1] != g.NumPositions()-1 {
			t.Errorf("path %v does not end at sink", p)
		}
	}
}

func TestNewBranchGraphEmptyBranch(t *testing.T) {
	if _, err := NewBranchGraph(0, nil, []FunctionID{1}, 2); err == nil {
		t.Error("empty branch accepted")
	}
}

func TestGraphValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		g    Graph
	}{
		{name: "empty", g: Graph{}},
		{name: "edge out of range", g: Graph{Functions: []FunctionID{0, 1}, Edges: []Edge{{From: 0, To: 5}}}},
		{name: "self loop", g: Graph{Functions: []FunctionID{0, 1}, Edges: []Edge{{From: 0, To: 0}}}},
		{name: "duplicate edge", g: Graph{Functions: []FunctionID{0, 1}, Edges: []Edge{{From: 0, To: 1}, {From: 0, To: 1}}}},
		{name: "cycle", g: Graph{Functions: []FunctionID{0, 1}, Edges: []Edge{{From: 0, To: 1}, {From: 1, To: 0}}}},
		{name: "disconnected", g: Graph{Functions: []FunctionID{0, 1, 2, 3}, Edges: []Edge{{From: 0, To: 1}, {From: 2, To: 3}}}},
		{name: "two sources", g: Graph{Functions: []FunctionID{0, 1, 2}, Edges: []Edge{{From: 0, To: 2}, {From: 1, To: 2}}}},
		{name: "two sinks", g: Graph{Functions: []FunctionID{0, 1, 2}, Edges: []Edge{{From: 0, To: 1}, {From: 0, To: 2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Error("Validate accepted invalid graph")
			}
		})
	}
}

func TestTopoOrder(t *testing.T) {
	g := mustBranchGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(order))
	for i, p := range order {
		pos[p] = i
	}
	if len(pos) != g.NumPositions() {
		t.Fatalf("TopoOrder covers %d positions, want %d", len(pos), g.NumPositions())
	}
	for _, e := range g.Edges {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topological order %v", e, order)
		}
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := mustBranchGraph(t)
	// Source 0 fans out to both branch heads.
	if got := g.Successors(0); len(got) != 2 {
		t.Errorf("Successors(source) = %v, want 2", got)
	}
	// Sink has two predecessors.
	if got := g.Predecessors(g.NumPositions() - 1); len(got) != 2 {
		t.Errorf("Predecessors(sink) = %v, want 2", got)
	}
	if got := g.Predecessors(0); got != nil {
		t.Errorf("Predecessors(source) = %v, want none", got)
	}
}

func validRequest() *Request {
	return &Request{
		ID:           1,
		Graph:        NewPathGraph([]FunctionID{1, 2}),
		QoSReq:       qos.Vector{Delay: 100, LossCost: 0.1},
		ResReq:       []qos.Resources{{CPU: 1}, {CPU: 1}},
		BandwidthReq: 100,
		Duration:     5 * time.Minute,
	}
}

func TestRequestValidate(t *testing.T) {
	if err := validRequest().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Request)
	}{
		{name: "nil graph", mutate: func(r *Request) { r.Graph = nil }},
		{name: "invalid graph", mutate: func(r *Request) { r.Graph = &Graph{} }},
		{name: "resource count mismatch", mutate: func(r *Request) { r.ResReq = r.ResReq[:1] }},
		{name: "negative bandwidth", mutate: func(r *Request) { r.BandwidthReq = -1 }},
		{name: "zero duration", mutate: func(r *Request) { r.Duration = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validRequest()
			tt.mutate(r)
			if err := r.Validate(); err == nil {
				t.Error("Validate accepted invalid request")
			}
		})
	}
}
