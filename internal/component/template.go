package component

import (
	"fmt"
	"math/rand"
)

// TemplateConfig controls generation of the application template library.
type TemplateConfig struct {
	// Count is the number of templates (paper: 20).
	Count int
	// NumFunctions is the function catalogue size to draw from.
	NumFunctions int
	// MinPathLen and MaxPathLen bound the number of function nodes per
	// path or branch path (paper: [2, 5]).
	MinPathLen, MaxPathLen int
	// DAGFraction is the fraction of templates shaped as two-branch DAGs
	// rather than simple paths.
	DAGFraction float64
}

// DefaultTemplateConfig mirrors §4.1: 20 templates over 80 functions,
// each a path or two-branch DAG with 2–5 nodes per (branch) path.
func DefaultTemplateConfig() TemplateConfig {
	return TemplateConfig{
		Count:        20,
		NumFunctions: DefaultNumFunctions,
		MinPathLen:   2,
		MaxPathLen:   5,
		DAGFraction:  0.3,
	}
}

// Library is the set of pre-defined stream processing application
// templates users request instances of.
type Library struct {
	graphs []*Graph
}

// GenerateLibrary builds Count random templates. Functions within one
// template are distinct, drawn uniformly from the catalogue.
func GenerateLibrary(cfg TemplateConfig, rng *rand.Rand) (*Library, error) {
	if cfg.Count < 1 {
		return nil, fmt.Errorf("component: template Count %d < 1", cfg.Count)
	}
	if cfg.MinPathLen < 2 || cfg.MaxPathLen < cfg.MinPathLen {
		return nil, fmt.Errorf("component: invalid path length range [%d, %d]", cfg.MinPathLen, cfg.MaxPathLen)
	}
	if cfg.DAGFraction < 0 || cfg.DAGFraction > 1 {
		return nil, fmt.Errorf("component: DAGFraction %v out of [0,1]", cfg.DAGFraction)
	}
	// A two-branch DAG needs source + sink + one internal function per
	// branch at minimum; the largest template needs 2 + 2*(MaxPathLen-2).
	maxNeeded := cfg.MaxPathLen
	if cfg.DAGFraction > 0 {
		if n := 2 + 2*(cfg.MaxPathLen-2); n > maxNeeded {
			maxNeeded = n
		}
	}
	if cfg.NumFunctions < maxNeeded {
		return nil, fmt.Errorf("component: NumFunctions %d too small for templates needing up to %d distinct functions",
			cfg.NumFunctions, maxNeeded)
	}

	lib := &Library{graphs: make([]*Graph, 0, cfg.Count)}
	for i := 0; i < cfg.Count; i++ {
		g, err := generateTemplate(cfg, rng)
		if err != nil {
			return nil, err
		}
		lib.graphs = append(lib.graphs, g)
	}
	return lib, nil
}

func generateTemplate(cfg TemplateConfig, rng *rand.Rand) (*Graph, error) {
	pathLen := func() int {
		return cfg.MinPathLen + rng.Intn(cfg.MaxPathLen-cfg.MinPathLen+1)
	}
	if rng.Float64() >= cfg.DAGFraction {
		fns := drawDistinct(pathLen(), cfg.NumFunctions, rng)
		return NewPathGraph(fns), nil
	}
	// Two-branch DAG: each branch path (source..sink inclusive) has
	// pathLen() nodes, of which the internal segment has pathLen()-2
	// functions; at least one internal function keeps branches distinct.
	internal1 := maxInt(1, pathLen()-2)
	internal2 := maxInt(1, pathLen()-2)
	fns := drawDistinct(2+internal1+internal2, cfg.NumFunctions, rng)
	return NewBranchGraph(fns[0], fns[1:1+internal1], fns[1+internal1:1+internal1+internal2], fns[len(fns)-1])
}

func drawDistinct(n, limit int, rng *rand.Rand) []FunctionID {
	perm := rng.Perm(limit)[:n]
	out := make([]FunctionID, n)
	for i, v := range perm {
		out[i] = FunctionID(v)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Count returns the number of templates in the library.
func (l *Library) Count() int { return len(l.graphs) }

// Graph returns template i. The returned graph is shared; callers must
// treat it as immutable.
func (l *Library) Graph(i int) *Graph { return l.graphs[i] }

// Pick returns a uniformly random template index and its graph.
func (l *Library) Pick(rng *rand.Rand) (int, *Graph) {
	i := rng.Intn(len(l.graphs))
	return i, l.graphs[i]
}
