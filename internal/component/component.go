// Package component models stream processing components, functions,
// application templates (function graphs), and composition requests
// (§2.1–2.2 of the paper).
//
// A component is a self-contained stream processing element providing one
// atomic function (filtering, aggregation, correlation, ...). Components
// are deployed on overlay nodes; composition selects one deployed
// component per function of a requested function graph.
package component

import (
	"fmt"
	"math"
	"time"

	"repro/internal/qos"
)

// FunctionID identifies one of the system's atomic stream processing
// functions. The paper's simulation uses 80 pre-defined functions.
type FunctionID int

// DefaultNumFunctions is the size of the paper's function catalogue.
const DefaultNumFunctions = 80

// ComponentID densely indexes deployed components.
type ComponentID int

// Component is a deployed stream processing element.
type Component struct {
	ID   ComponentID
	Node int // overlay node index hosting the component
	// Function is the atomic stream processing function provided.
	Function FunctionID
	// QoS carries the component's per-data-unit processing delay and
	// loss cost (the q^c vector of §2.1).
	QoS qos.Vector
	// Security is the component's security level, an
	// application-specific constraint from the paper's future-work list
	// (§6): requests may demand a minimum level. Levels start at 1.
	Security int
}

// Edge is a dependency edge between two positions of a function graph.
type Edge struct {
	// From and To are positions (indices into Graph.Functions).
	From, To int
}

// Graph is a function graph xi: the template of a stream processing
// application (Figure 1(c)). Positions index into Functions; Edges point
// from a function to the functions that consume its output. The paper's
// templates are either simple paths or DAGs with two branch paths.
type Graph struct {
	// Functions lists the required function per position.
	Functions []FunctionID
	// Edges are the dependency links, each from one position to another.
	Edges []Edge
}

// NumPositions returns the number of function nodes in the graph.
func (g *Graph) NumPositions() int { return len(g.Functions) }

// Successors returns the positions directly downstream of position p.
func (g *Graph) Successors(p int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == p {
			out = append(out, e.To)
		}
	}
	return out
}

// Predecessors returns the positions directly upstream of position p.
func (g *Graph) Predecessors(p int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.To == p {
			out = append(out, e.From)
		}
	}
	return out
}

// Sources returns positions with no predecessors.
func (g *Graph) Sources() []int {
	return g.boundary(func(e Edge) int { return e.To })
}

// Sinks returns positions with no successors.
func (g *Graph) Sinks() []int {
	return g.boundary(func(e Edge) int { return e.From })
}

func (g *Graph) boundary(pick func(Edge) int) []int {
	has := make([]bool, g.NumPositions())
	for _, e := range g.Edges {
		has[pick(e)] = true
	}
	var out []int
	for p, h := range has {
		if !h {
			out = append(out, p)
		}
	}
	return out
}

// Validate checks structural sanity: at least one position, edges in
// range, no self-loops or duplicate edges, acyclic, weakly connected,
// exactly one source and one sink. Composition probing relies on the
// single-source/single-sink shape to merge probed branch paths (§3.3).
func (g *Graph) Validate() error {
	n := g.NumPositions()
	if n == 0 {
		return fmt.Errorf("component: graph has no functions")
	}
	seen := make(map[Edge]bool, len(g.Edges))
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return fmt.Errorf("component: edge %v out of range", e)
		}
		if e.From == e.To {
			return fmt.Errorf("component: self-loop at position %d", e.From)
		}
		if seen[e] {
			return fmt.Errorf("component: duplicate edge %v", e)
		}
		seen[e] = true
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	if n > 1 {
		if src := g.Sources(); len(src) != 1 {
			return fmt.Errorf("component: graph has %d sources, want 1", len(src))
		}
		if snk := g.Sinks(); len(snk) != 1 {
			return fmt.Errorf("component: graph has %d sinks, want 1", len(snk))
		}
		if !g.weaklyConnected() {
			return fmt.Errorf("component: graph is not connected")
		}
	}
	return nil
}

func (g *Graph) weaklyConnected() bool {
	n := g.NumPositions()
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// TopoOrder returns a topological ordering of positions, or an error when
// the graph contains a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := g.NumPositions()
	indeg := make([]int, n)
	for _, e := range g.Edges {
		indeg[e.To]++
	}
	var queue []int
	for p := 0; p < n; p++ {
		if indeg[p] == 0 {
			queue = append(queue, p)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		order = append(order, p)
		for _, s := range g.Successors(p) {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("component: graph has a cycle")
	}
	return order, nil
}

// IsPath reports whether the graph is a simple chain.
func (g *Graph) IsPath() bool {
	for p := 0; p < g.NumPositions(); p++ {
		if len(g.Successors(p)) > 1 || len(g.Predecessors(p)) > 1 {
			return false
		}
	}
	return true
}

// Paths enumerates every source-to-sink position sequence. A path graph
// yields one path; the paper's two-branch DAGs yield two. Probes traverse
// these paths independently and the deputy merges them (§3.3, Figure 2).
func (g *Graph) Paths() [][]int {
	var out [][]int
	var walk func(p int, acc []int)
	walk = func(p int, acc []int) {
		acc = append(acc, p)
		succ := g.Successors(p)
		if len(succ) == 0 {
			path := make([]int, len(acc))
			copy(path, acc)
			out = append(out, path)
			return
		}
		for _, s := range succ {
			walk(s, acc)
		}
	}
	for _, s := range g.Sources() {
		walk(s, nil)
	}
	return out
}

// NewPathGraph builds a simple chain over the given functions.
func NewPathGraph(functions []FunctionID) *Graph {
	g := &Graph{Functions: append([]FunctionID(nil), functions...)}
	for i := 1; i < len(functions); i++ {
		g.Edges = append(g.Edges, Edge{From: i - 1, To: i})
	}
	return g
}

// NewBranchGraph builds the paper's two-branch DAG shape: a shared source,
// two parallel internal branches, and a shared sink (Figure 1(b)/(c)).
// branch1 and branch2 must each be non-empty.
func NewBranchGraph(source FunctionID, branch1, branch2 []FunctionID, sink FunctionID) (*Graph, error) {
	if len(branch1) == 0 || len(branch2) == 0 {
		return nil, fmt.Errorf("component: branch graphs need non-empty branches")
	}
	g := &Graph{Functions: []FunctionID{source}}
	appendBranch := func(branch []FunctionID) int {
		prev := 0 // source position
		for _, f := range branch {
			g.Functions = append(g.Functions, f)
			pos := len(g.Functions) - 1
			g.Edges = append(g.Edges, Edge{From: prev, To: pos})
			prev = pos
		}
		return prev
	}
	end1 := appendBranch(branch1)
	end2 := appendBranch(branch2)
	g.Functions = append(g.Functions, sink)
	sinkPos := len(g.Functions) - 1
	g.Edges = append(g.Edges, Edge{From: end1, To: sinkPos}, Edge{From: end2, To: sinkPos})
	return g, nil
}

// Request is a stream processing composition request (§2.2): the function
// graph xi, QoS requirements Q^req, per-position end-system resource
// requirements R^req, and the bandwidth requirement per virtual link.
type Request struct {
	ID int64
	// Graph is the requested application template instance.
	Graph *Graph
	// QoSReq bounds the end-to-end accumulated QoS (Eq. 3).
	QoSReq qos.Vector
	// ResReq holds the per-position end-system resource demand (Eq. 4).
	// Its length equals Graph.NumPositions().
	ResReq []qos.Resources
	// BandwidthReq is the bandwidth demand b^l of every inter-component
	// virtual link, in kbps (Eq. 5).
	BandwidthReq float64
	// Client is the overlay node closest to the requesting client; it
	// becomes the deputy node that runs the ACP protocol (§3.3).
	Client int
	// Duration is the application session length (the paper draws 5–15
	// minutes uniformly).
	Duration time.Duration
	// MinSecurity is the minimum component security level acceptable to
	// this application (0 or 1 = unconstrained).
	MinSecurity int
	// Tenant labels the application (multi-tenant clusters); empty in
	// single-application runs.
	Tenant string
	// Weight is the tenant's phi weight under core.PhiWeighted; zero
	// means the default weight 1 (see PhiWeight).
	Weight float64
}

// PhiWeight returns the request's effective phi weight: Weight when
// set, otherwise the baseline 1, so single-application requests never
// have to spell a weight out.
func (r *Request) PhiWeight() float64 {
	if r.Weight > 0 {
		return r.Weight
	}
	return 1
}

// Validate checks the request is internally consistent.
func (r *Request) Validate() error {
	if r.Graph == nil {
		return fmt.Errorf("component: request %d has no function graph", r.ID)
	}
	if err := r.Graph.Validate(); err != nil {
		return fmt.Errorf("request %d: %w", r.ID, err)
	}
	if len(r.ResReq) != r.Graph.NumPositions() {
		return fmt.Errorf("component: request %d has %d resource requirements for %d positions",
			r.ID, len(r.ResReq), r.Graph.NumPositions())
	}
	if r.BandwidthReq < 0 {
		return fmt.Errorf("component: request %d has negative bandwidth requirement", r.ID)
	}
	if r.Duration <= 0 {
		return fmt.Errorf("component: request %d has non-positive duration", r.ID)
	}
	if r.MinSecurity < 0 {
		return fmt.Errorf("component: request %d has negative security level", r.ID)
	}
	if r.Weight < 0 || math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) {
		return fmt.Errorf("component: request %d has invalid phi weight %v", r.ID, r.Weight)
	}
	return nil
}
