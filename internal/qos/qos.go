// Package qos implements the quality-of-service and resource algebra used
// throughout the composition system.
//
// The paper (§2.1, footnote 3) assumes QoS metrics are additive and
// minimum-optimal: smaller accumulated values are better, and the QoS of a
// composed application is the sum of the QoS of its constituent components
// and virtual links. Non-additive metrics such as loss rate are made
// additive with a logarithm transform; this package stores loss internally
// as the additive "loss cost" -ln(1 - p) so that vector addition is the
// single aggregation operation every caller needs.
package qos

import (
	"fmt"
	"math"
)

// Vector is an additive, minimum-optimal QoS vector. Both fields
// accumulate with simple addition along a composition.
type Vector struct {
	// Delay is processing or transmission delay in milliseconds.
	Delay float64
	// LossCost is the additive transform -ln(1-p) of a loss probability p.
	// Use FromLossProb / LossProb to convert at the boundary.
	LossCost float64
}

// FromLossProb builds a Vector carrying only the additive loss cost of the
// loss probability p in [0, 1). Probabilities at or above 1 map to +Inf.
func FromLossProb(p float64) Vector {
	return Vector{LossCost: LossCost(p)}
}

// LossCost converts a loss probability p into its additive cost -ln(1-p).
func LossCost(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	if p <= 0 {
		return 0
	}
	return -math.Log1p(-p)
}

// LossProb converts an additive loss cost back into a probability.
func LossProb(cost float64) float64 {
	if math.IsInf(cost, 1) {
		return 1
	}
	if cost <= 0 {
		return 0
	}
	return -math.Expm1(-cost)
}

// Add returns the aggregation of v and w (component-wise sum).
func (v Vector) Add(w Vector) Vector {
	return Vector{Delay: v.Delay + w.Delay, LossCost: v.LossCost + w.LossCost}
}

// Sub returns v - w component-wise. It is the inverse of Add and is used
// when removing a hop's contribution from an accumulated vector.
func (v Vector) Sub(w Vector) Vector {
	return Vector{Delay: v.Delay - w.Delay, LossCost: v.LossCost - w.LossCost}
}

// Within reports whether v satisfies the requirement req on every metric
// (Eq. 3 of the paper): each accumulated value must not exceed the bound.
func (v Vector) Within(req Vector) bool {
	return v.Delay <= req.Delay && v.LossCost <= req.LossCost
}

// MaxRatio returns the worst-case ratio of v's metrics to the requirement
// req. It is the risk function core of Eq. 9: values near (or above) 1
// mean the composition is close to (or past) violating a constraint.
// Metrics with a non-positive requirement are skipped unless the value
// itself is positive, in which case the ratio is +Inf.
func (v Vector) MaxRatio(req Vector) float64 {
	return math.Max(ratio(v.Delay, req.Delay), ratio(v.LossCost, req.LossCost))
}

func ratio(val, bound float64) float64 {
	if bound > 0 {
		return val / bound
	}
	if val > 0 {
		return math.Inf(1)
	}
	return 0
}

// String renders the vector with loss shown as a probability for humans.
func (v Vector) String() string {
	return fmt.Sprintf("qos(delay=%.2fms loss=%.4f)", v.Delay, LossProb(v.LossCost))
}

// Resources is an end-system resource vector [ra_1 ... ra_n] (§2.1). The
// paper's experiments use CPU and memory; both are modelled as fluid
// quantities (CPU in abstract units, memory in megabytes).
type Resources struct {
	CPU    float64
	Memory float64
}

// Add returns r + s component-wise.
func (r Resources) Add(s Resources) Resources {
	return Resources{CPU: r.CPU + s.CPU, Memory: r.Memory + s.Memory}
}

// Sub returns r - s component-wise.
func (r Resources) Sub(s Resources) Resources {
	return Resources{CPU: r.CPU - s.CPU, Memory: r.Memory - s.Memory}
}

// Scale returns r with every component multiplied by f.
func (r Resources) Scale(f float64) Resources {
	return Resources{CPU: r.CPU * f, Memory: r.Memory * f}
}

// NonNegative reports whether every component of r is >= 0. It implements
// the residual-resource constraint of Eq. 4: residuals must not go
// negative when a component's requirement is subtracted.
func (r Resources) NonNegative() bool {
	return r.CPU >= 0 && r.Memory >= 0
}

// Covers reports whether r can supply the requirement req on every
// dimension, i.e. r - req stays non-negative.
func (r Resources) Covers(req Resources) bool {
	return r.Sub(req).NonNegative()
}

// CongestionTerm computes the per-node summand of the congestion
// aggregation metric phi (Eq. 1): sum_k r_k / (rr_k + r_k), where req is
// the resource requirement r_k and residual is the post-placement residual
// rr_k. Dimensions with a zero requirement contribute nothing. A negative
// residual yields +Inf so infeasible placements sort last.
func CongestionTerm(req, residual Resources) float64 {
	return congestionFraction(req.CPU, residual.CPU) +
		congestionFraction(req.Memory, residual.Memory)
}

// BandwidthCongestionTerm computes the per-virtual-link summand of phi
// (Eq. 1): b^l / (rb^l + b^l). Links between co-located components have
// infinite residual bandwidth, for which the term is defined as 0
// (footnote 8 of the paper).
func BandwidthCongestionTerm(req, residual float64) float64 {
	if math.IsInf(residual, 1) {
		return 0
	}
	return congestionFraction(req, residual)
}

func congestionFraction(req, residual float64) float64 {
	if req <= 0 {
		return 0
	}
	if residual < 0 {
		return math.Inf(1)
	}
	return req / (residual + req)
}

// String renders the resource vector.
func (r Resources) String() string {
	return fmt.Sprintf("res(cpu=%.1f mem=%.1fMB)", r.CPU, r.Memory)
}
