package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLossCostRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		p    float64
	}{
		{name: "zero", p: 0},
		{name: "one percent", p: 0.01},
		{name: "half", p: 0.5},
		{name: "high", p: 0.99},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LossProb(LossCost(tt.p))
			if math.Abs(got-tt.p) > 1e-12 {
				t.Errorf("round trip of %v = %v", tt.p, got)
			}
		})
	}
}

func TestLossCostBoundaries(t *testing.T) {
	if got := LossCost(1); !math.IsInf(got, 1) {
		t.Errorf("LossCost(1) = %v, want +Inf", got)
	}
	if got := LossCost(-0.5); got != 0 {
		t.Errorf("LossCost(-0.5) = %v, want 0", got)
	}
	if got := LossProb(math.Inf(1)); got != 1 {
		t.Errorf("LossProb(+Inf) = %v, want 1", got)
	}
	if got := LossProb(-1); got != 0 {
		t.Errorf("LossProb(-1) = %v, want 0", got)
	}
}

// TestLossCostAdditivity is the core property the transform exists for:
// adding loss costs must equal composing independent loss probabilities.
func TestLossCostAdditivity(t *testing.T) {
	f := func(a, b uint16) bool {
		p := float64(a) / 70000 // in [0, ~0.94)
		q := float64(b) / 70000
		composed := 1 - (1-p)*(1-q)
		sum := LossCost(p) + LossCost(q)
		return math.Abs(LossProb(sum)-composed) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorAddSub(t *testing.T) {
	f := func(d1, l1, d2, l2 uint16) bool {
		v := Vector{Delay: float64(d1), LossCost: float64(l1) / 1000}
		w := Vector{Delay: float64(d2), LossCost: float64(l2) / 1000}
		back := v.Add(w).Sub(w)
		return math.Abs(back.Delay-v.Delay) < 1e-9 &&
			math.Abs(back.LossCost-v.LossCost) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorWithin(t *testing.T) {
	req := Vector{Delay: 100, LossCost: 0.05}
	tests := []struct {
		name string
		v    Vector
		want bool
	}{
		{name: "well within", v: Vector{Delay: 50, LossCost: 0.01}, want: true},
		{name: "exactly at bound", v: Vector{Delay: 100, LossCost: 0.05}, want: true},
		{name: "delay violated", v: Vector{Delay: 101, LossCost: 0.01}, want: false},
		{name: "loss violated", v: Vector{Delay: 50, LossCost: 0.06}, want: false},
		{name: "both violated", v: Vector{Delay: 200, LossCost: 1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Within(req); got != tt.want {
				t.Errorf("Within(%v, %v) = %v, want %v", tt.v, req, got, tt.want)
			}
		})
	}
}

func TestMaxRatio(t *testing.T) {
	req := Vector{Delay: 100, LossCost: 0.1}
	tests := []struct {
		name string
		v    Vector
		want float64
	}{
		{name: "delay dominates", v: Vector{Delay: 90, LossCost: 0.01}, want: 0.9},
		{name: "loss dominates", v: Vector{Delay: 10, LossCost: 0.09}, want: 0.9},
		{name: "violation exceeds one", v: Vector{Delay: 150, LossCost: 0}, want: 1.5},
		{name: "zero vector", v: Vector{}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.MaxRatio(req); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("MaxRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMaxRatioZeroRequirement(t *testing.T) {
	// A zero requirement with a positive accumulated value is an
	// unconditional violation.
	v := Vector{Delay: 1}
	if got := v.MaxRatio(Vector{}); !math.IsInf(got, 1) {
		t.Errorf("MaxRatio with zero requirement = %v, want +Inf", got)
	}
	// A zero requirement with a zero value is trivially satisfied.
	if got := (Vector{}).MaxRatio(Vector{}); got != 0 {
		t.Errorf("MaxRatio of zero over zero = %v, want 0", got)
	}
}

// TestMaxRatioConsistentWithWithin checks the invariant the risk function
// depends on: MaxRatio <= 1 exactly when the vector is Within the
// requirement (for positive requirements).
func TestMaxRatioConsistentWithWithin(t *testing.T) {
	f := func(d, l, rd, rl uint16) bool {
		v := Vector{Delay: float64(d), LossCost: float64(l) / 1000}
		req := Vector{Delay: float64(rd) + 1, LossCost: float64(rl)/1000 + 0.001}
		return v.Within(req) == (v.MaxRatio(req) <= 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourcesArithmetic(t *testing.T) {
	r := Resources{CPU: 10, Memory: 100}
	s := Resources{CPU: 4, Memory: 60}
	if got := r.Add(s); got != (Resources{CPU: 14, Memory: 160}) {
		t.Errorf("Add = %v", got)
	}
	if got := r.Sub(s); got != (Resources{CPU: 6, Memory: 40}) {
		t.Errorf("Sub = %v", got)
	}
	if got := r.Scale(0.5); got != (Resources{CPU: 5, Memory: 50}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestResourcesCovers(t *testing.T) {
	tests := []struct {
		name string
		have Resources
		need Resources
		want bool
	}{
		{name: "plenty", have: Resources{CPU: 10, Memory: 100}, need: Resources{CPU: 5, Memory: 50}, want: true},
		{name: "exact", have: Resources{CPU: 5, Memory: 50}, need: Resources{CPU: 5, Memory: 50}, want: true},
		{name: "cpu short", have: Resources{CPU: 4, Memory: 100}, need: Resources{CPU: 5, Memory: 50}, want: false},
		{name: "memory short", have: Resources{CPU: 10, Memory: 40}, need: Resources{CPU: 5, Memory: 50}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.have.Covers(tt.need); got != tt.want {
				t.Errorf("Covers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCongestionTermWorkedExample(t *testing.T) {
	// The paper's Figure 4 example: a component needing 20MB memory on a
	// node with 30MB residual contributes 20/(30+20) = 0.4.
	req := Resources{Memory: 20}
	residual := Resources{Memory: 30}
	if got := CongestionTerm(req, residual); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("CongestionTerm = %v, want 0.4", got)
	}
}

func TestCongestionTermInfeasible(t *testing.T) {
	got := CongestionTerm(Resources{CPU: 1}, Resources{CPU: -1})
	if !math.IsInf(got, 1) {
		t.Errorf("CongestionTerm with negative residual = %v, want +Inf", got)
	}
}

func TestCongestionTermZeroRequirement(t *testing.T) {
	if got := CongestionTerm(Resources{}, Resources{CPU: -5, Memory: -5}); got != 0 {
		t.Errorf("CongestionTerm with zero requirement = %v, want 0", got)
	}
}

// TestCongestionTermMonotone: phi must prefer larger residuals — the term
// strictly decreases as residual capacity grows (load balancing goal).
func TestCongestionTermMonotone(t *testing.T) {
	f := func(r1, r2 uint8) bool {
		lo, hi := float64(r1), float64(r1)+float64(r2)+1
		req := Resources{CPU: 10}
		tLo := CongestionTerm(req, Resources{CPU: lo})
		tHi := CongestionTerm(req, Resources{CPU: hi})
		return tHi < tLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthCongestionTerm(t *testing.T) {
	// Figure 4: 200kbps demand on a link with 300kbps residual.
	if got := BandwidthCongestionTerm(200, 300); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("BandwidthCongestionTerm = %v, want 0.4", got)
	}
	// Co-located components: infinite residual bandwidth contributes 0
	// (footnote 8).
	if got := BandwidthCongestionTerm(200, math.Inf(1)); got != 0 {
		t.Errorf("co-located term = %v, want 0", got)
	}
	if got := BandwidthCongestionTerm(200, -1); !math.IsInf(got, 1) {
		t.Errorf("infeasible term = %v, want +Inf", got)
	}
}

func TestVectorString(t *testing.T) {
	s := Vector{Delay: 12.5, LossCost: LossCost(0.02)}.String()
	if s != "qos(delay=12.50ms loss=0.0200)" {
		t.Errorf("String = %q", s)
	}
}

func TestResourcesString(t *testing.T) {
	s := Resources{CPU: 2, Memory: 64}.String()
	if s != "res(cpu=2.0 mem=64.0MB)" {
		t.Errorf("String = %q", s)
	}
}
