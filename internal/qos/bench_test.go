package qos

import "testing"

func BenchmarkVectorAdd(b *testing.B) {
	v := Vector{Delay: 12, LossCost: 0.01}
	w := Vector{Delay: 30, LossCost: 0.002}
	for i := 0; i < b.N; i++ {
		v = v.Add(w).Sub(w)
	}
	_ = v
}

func BenchmarkMaxRatio(b *testing.B) {
	v := Vector{Delay: 150, LossCost: 0.04}
	req := Vector{Delay: 300, LossCost: 0.1}
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += v.MaxRatio(req)
	}
	_ = sink
}

func BenchmarkCongestionTerm(b *testing.B) {
	req := Resources{CPU: 10, Memory: 100}
	residual := Resources{CPU: 40, Memory: 600}
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += CongestionTerm(req, residual)
	}
	_ = sink
}

func BenchmarkLossCostRoundTrip(b *testing.B) {
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += LossProb(LossCost(0.03))
	}
	_ = sink
}
