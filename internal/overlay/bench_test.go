package overlay

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func benchMesh(b *testing.B, overlayNodes int) *Mesh {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 1600
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	ocfg := DefaultConfig()
	ocfg.Nodes = overlayNodes
	m, err := Build(g, ocfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkRouteBetween measures the virtual-link reconstruction every
// probe hop performs (before the per-request cache).
func BenchmarkRouteBetween(b *testing.B) {
	m := benchMesh(b, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := i % m.NumNodes()
		c := (i * 31) % m.NumNodes()
		if _, ok := m.RouteBetween(a, c); !ok {
			b.Fatal("no route")
		}
	}
}

// BenchmarkBuild measures full mesh construction at the paper's N=400.
func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 1600
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, cfg, rand.New(rand.NewSource(2))); err != nil {
			b.Fatal(err)
		}
	}
}
