package overlay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/qos"
	"repro/internal/topology"
)

func testMesh(t *testing.T, overlayNodes int, seed int64) *Mesh {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 800
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatalf("topology.Generate: %v", err)
	}
	ocfg := DefaultConfig()
	ocfg.Nodes = overlayNodes
	m, err := Build(g, ocfg, rng)
	if err != nil {
		t.Fatalf("overlay.Build: %v", err)
	}
	return m
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 50
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "too few nodes", mutate: func(c *Config) { c.Nodes = 1 }},
		{name: "more overlay than IP nodes", mutate: func(c *Config) { c.Nodes = 51 }},
		{name: "zero neighbors", mutate: func(c *Config) { c.Nodes = 10; c.NeighborsPerNode = 0 }},
		{name: "neighbors exceed nodes", mutate: func(c *Config) { c.Nodes = 10; c.NeighborsPerNode = 10 }},
		{name: "negative loss", mutate: func(c *Config) { c.Nodes = 10; c.MinLinkLoss = -0.1 }},
		{name: "loss range inverted", mutate: func(c *Config) { c.Nodes = 10; c.MinLinkLoss = 0.5; c.MaxLinkLoss = 0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := Build(g, cfg, rand.New(rand.NewSource(2))); err == nil {
				t.Error("Build accepted invalid config")
			}
		})
	}
}

func TestBuildBasicShape(t *testing.T) {
	m := testMesh(t, 60, 3)
	if m.NumNodes() != 60 {
		t.Fatalf("NumNodes = %d, want 60", m.NumNodes())
	}
	// Every node must reach its target degree (ring chord may add more).
	for v := 0; v < m.NumNodes(); v++ {
		if got := len(m.Neighbors(v)); got < DefaultConfig().NeighborsPerNode {
			t.Errorf("node %d degree = %d, want >= %d", v, got, DefaultConfig().NeighborsPerNode)
		}
	}
	// Distinct IP nodes per overlay node.
	seen := make(map[int]bool)
	for v := 0; v < m.NumNodes(); v++ {
		ip := m.IPNode(v)
		if seen[ip] {
			t.Fatalf("IP node %d used twice", ip)
		}
		seen[ip] = true
	}
}

func TestBuildLinkAttributes(t *testing.T) {
	m := testMesh(t, 40, 4)
	for id := 0; id < m.NumLinks(); id++ {
		lk := m.Link(id)
		if lk.A >= lk.B {
			t.Fatalf("link %d endpoints not ordered: %d, %d", id, lk.A, lk.B)
		}
		if lk.QoS.Delay <= 0 {
			t.Errorf("link %d has non-positive delay %v", id, lk.QoS.Delay)
		}
		if lk.Capacity <= 0 || math.IsInf(lk.Capacity, 1) {
			t.Errorf("link %d has bad capacity %v", id, lk.Capacity)
		}
		if lk.QoS.LossCost <= 0 {
			t.Errorf("link %d has non-positive loss cost %v", id, lk.QoS.LossCost)
		}
	}
}

func TestAdjacentLinksConsistent(t *testing.T) {
	m := testMesh(t, 40, 5)
	for v := 0; v < m.NumNodes(); v++ {
		for _, id := range m.AdjacentLinks(v) {
			lk := m.Link(id)
			if lk.A != v && lk.B != v {
				t.Fatalf("link %d listed adjacent to %d but connects %d-%d", id, v, lk.A, lk.B)
			}
		}
	}
}

func TestRouteBetweenSelf(t *testing.T) {
	m := testMesh(t, 30, 6)
	r, ok := m.RouteBetween(7, 7)
	if !ok {
		t.Fatal("self route not found")
	}
	if !r.CoLocated {
		t.Error("self route not marked co-located")
	}
	if r.QoS != (qos.Vector{}) {
		t.Errorf("self route QoS = %v, want zero", r.QoS)
	}
	if !math.IsInf(r.Capacity, 1) {
		t.Errorf("self route capacity = %v, want +Inf", r.Capacity)
	}
	if len(r.Links) != 0 {
		t.Errorf("self route has %d links", len(r.Links))
	}
}

func TestRouteBetweenAggregation(t *testing.T) {
	m := testMesh(t, 50, 7)
	for a := 0; a < m.NumNodes(); a += 7 {
		for b := 0; b < m.NumNodes(); b += 11 {
			if a == b {
				continue
			}
			r, ok := m.RouteBetween(a, b)
			if !ok {
				t.Fatalf("no route %d -> %d", a, b)
			}
			// Recompute aggregation by hand from the link sequence.
			var wantQoS qos.Vector
			wantCap := math.Inf(1)
			at := a
			for _, id := range r.Links {
				lk := m.Link(id)
				if lk.A != at && lk.B != at {
					t.Fatalf("route %d->%d: link %d does not continue from node %d", a, b, id, at)
				}
				wantQoS = wantQoS.Add(lk.QoS)
				wantCap = math.Min(wantCap, lk.Capacity)
				at = m.otherEnd(id, at)
			}
			if at != b {
				t.Fatalf("route %d->%d ends at %d", a, b, at)
			}
			if math.Abs(wantQoS.Delay-r.QoS.Delay) > 1e-9 || math.Abs(wantQoS.LossCost-r.QoS.LossCost) > 1e-9 {
				t.Errorf("route %d->%d QoS %v, recomputed %v", a, b, r.QoS, wantQoS)
			}
			if wantCap != r.Capacity {
				t.Errorf("route %d->%d capacity %v, recomputed %v", a, b, r.Capacity, wantCap)
			}
			if math.Abs(r.QoS.Delay-m.Delay(a, b)) > 1e-9 {
				t.Errorf("route %d->%d delay %v != Delay() %v", a, b, r.QoS.Delay, m.Delay(a, b))
			}
		}
	}
}

// TestRouteSymmetricDelay: with undirected links, shortest delays must be
// symmetric.
func TestRouteSymmetricDelay(t *testing.T) {
	m := testMesh(t, 40, 8)
	f := func(x, y uint8) bool {
		a := int(x) % m.NumNodes()
		b := int(y) % m.NumNodes()
		return math.Abs(m.Delay(a, b)-m.Delay(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRouteTriangleInequality: shortest-path delays must satisfy
// d(a,c) <= d(a,b) + d(b,c).
func TestRouteTriangleInequality(t *testing.T) {
	m := testMesh(t, 40, 9)
	f := func(x, y, z uint8) bool {
		a := int(x) % m.NumNodes()
		b := int(y) % m.NumNodes()
		c := int(z) % m.NumNodes()
		return m.Delay(a, c) <= m.Delay(a, b)+m.Delay(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	m1 := testMesh(t, 40, 10)
	m2 := testMesh(t, 40, 10)
	if m1.NumLinks() != m2.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", m1.NumLinks(), m2.NumLinks())
	}
	for id := 0; id < m1.NumLinks(); id++ {
		if m1.Link(id) != m2.Link(id) {
			t.Fatalf("link %d differs: %+v vs %+v", id, m1.Link(id), m2.Link(id))
		}
	}
}
