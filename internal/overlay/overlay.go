// Package overlay builds the application-level overlay mesh of stream
// processing nodes on top of the IP-layer topology (§2.1 of the paper).
//
// A Mesh selects N stream processing nodes from the IP graph and connects
// each to k overlay neighbours. Every overlay link is mapped onto the
// delay-based IP shortest path between its endpoints, inheriting that
// path's total delay and bottleneck bandwidth. A virtual link between two
// arbitrary overlay nodes is the overlay path between them; its QoS is the
// aggregation of its constituent overlay links and its capacity is the
// bottleneck among them (§2.1).
package overlay

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/qos"
	"repro/internal/topology"
)

// Link is an undirected overlay link between two overlay nodes.
type Link struct {
	// ID is the link's dense index in the mesh.
	ID int
	// A and B are overlay node indices with A < B.
	A, B int
	// QoS carries the link's transmission delay and loss cost, derived
	// from the underlying IP path plus the link's own loss rate.
	QoS qos.Vector
	// Capacity is the bottleneck bandwidth (kbps) of the IP path.
	Capacity float64
}

// Route is a virtual link: the overlay path between two overlay nodes.
type Route struct {
	// Links lists the overlay link IDs along the path, in order. A nil
	// Links with a true CoLocated means the endpoints share a node.
	Links []int
	// QoS aggregates delay and loss cost over the path's links.
	QoS qos.Vector
	// Capacity is the bottleneck static capacity among the links (kbps);
	// +Inf for a co-located route (footnote 4 of the paper).
	Capacity float64
	// CoLocated is true when source and destination are the same overlay
	// node: the virtual link has zero delay and consumes no bandwidth.
	CoLocated bool
}

// Config controls mesh construction.
type Config struct {
	// Nodes is the overlay size N; the paper sweeps 200..600.
	Nodes int
	// NeighborsPerNode is the overlay degree k each node aims for.
	NeighborsPerNode int
	// MinLinkLoss and MaxLinkLoss bound the per-overlay-link loss rate.
	MinLinkLoss, MaxLinkLoss float64
}

// DefaultConfig matches the paper's mid-scale setup (N=400).
func DefaultConfig() Config {
	return Config{
		Nodes:            400,
		NeighborsPerNode: 6,
		MinLinkLoss:      0.0005,
		MaxLinkLoss:      0.005,
	}
}

type halfLink struct {
	to   int // overlay node index
	link int // link ID
}

// Mesh is the overlay of stream processing nodes.
type Mesh struct {
	ipNode []int // overlay index -> IP node id
	links  []Link
	adj    [][]halfLink

	// Routing state: dist[i][j], nextLink[i][j] = first link on the
	// shortest overlay path i->j (-1 when i==j or unreachable).
	dist     [][]float64
	nextLink [][]int32
}

// Build selects overlay nodes from the IP graph, wires the mesh, maps
// links onto IP paths, and precomputes all-pairs overlay routing. All
// randomness comes from rng.
func Build(g *topology.Graph, cfg Config, rng *rand.Rand) (*Mesh, error) {
	n := cfg.Nodes
	if n < 2 {
		return nil, fmt.Errorf("overlay: Nodes %d < 2", n)
	}
	if n > g.NumNodes() {
		return nil, fmt.Errorf("overlay: Nodes %d exceeds IP nodes %d", n, g.NumNodes())
	}
	if cfg.NeighborsPerNode < 1 || cfg.NeighborsPerNode >= n {
		return nil, fmt.Errorf("overlay: NeighborsPerNode %d out of range", cfg.NeighborsPerNode)
	}
	if cfg.MinLinkLoss < 0 || cfg.MaxLinkLoss < cfg.MinLinkLoss || cfg.MaxLinkLoss >= 1 {
		return nil, fmt.Errorf("overlay: invalid loss range [%v, %v]", cfg.MinLinkLoss, cfg.MaxLinkLoss)
	}

	m := &Mesh{
		ipNode: rng.Perm(g.NumNodes())[:n],
		adj:    make([][]halfLink, n),
	}

	// Wire each node to k random distinct peers (undirected, deduped).
	linked := make(map[[2]int]bool)
	addLink := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if linked[[2]int{a, b}] {
			return
		}
		linked[[2]int{a, b}] = true
		id := len(m.links)
		m.links = append(m.links, Link{ID: id, A: a, B: b})
		m.adj[a] = append(m.adj[a], halfLink{to: b, link: id})
		m.adj[b] = append(m.adj[b], halfLink{to: a, link: id})
	}
	for v := 0; v < n; v++ {
		for len(m.adj[v]) < cfg.NeighborsPerNode {
			addLink(v, rng.Intn(n))
		}
	}
	// Guarantee connectivity with a ring chord; duplicates are deduped.
	for v := 0; v < n; v++ {
		addLink(v, (v+1)%n)
	}

	// Map overlay links to IP shortest paths. One Dijkstra per overlay
	// node over the IP graph covers all its incident links.
	for v := 0; v < n; v++ {
		tree := g.ShortestPaths(m.ipNode[v])
		for _, h := range m.adj[v] {
			lk := &m.links[h.link]
			if lk.A != v {
				continue // fill from the A side only
			}
			delay, bw := g.PathMetrics(tree, m.ipNode[h.to])
			if math.IsInf(delay, 1) {
				return nil, fmt.Errorf("overlay: IP nodes %d and %d disconnected", m.ipNode[v], m.ipNode[h.to])
			}
			loss := cfg.MinLinkLoss + rng.Float64()*(cfg.MaxLinkLoss-cfg.MinLinkLoss)
			lk.QoS = qos.Vector{Delay: delay, LossCost: qos.LossCost(loss)}
			lk.Capacity = bw
		}
	}

	m.computeRouting()
	return m, nil
}

// NumNodes returns the overlay size N.
func (m *Mesh) NumNodes() int { return len(m.ipNode) }

// NumLinks returns the number of overlay links.
func (m *Mesh) NumLinks() int { return len(m.links) }

// IPNode returns the IP-layer node hosting overlay node v.
func (m *Mesh) IPNode(v int) int { return m.ipNode[v] }

// Link returns the overlay link with the given ID.
func (m *Mesh) Link(id int) Link { return m.links[id] }

// Neighbors returns the overlay node indices adjacent to v.
func (m *Mesh) Neighbors(v int) []int {
	out := make([]int, len(m.adj[v]))
	for i, h := range m.adj[v] {
		out[i] = h.to
	}
	return out
}

// AdjacentLinks returns the IDs of the overlay links incident to v.
func (m *Mesh) AdjacentLinks(v int) []int {
	out := make([]int, len(m.adj[v]))
	for i, h := range m.adj[v] {
		out[i] = h.link
	}
	return out
}

type routeItem struct {
	node int
	dist float64
}

type routeHeap []routeItem

func (h routeHeap) Len() int            { return len(h) }
func (h routeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h routeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *routeHeap) Push(x interface{}) { *h = append(*h, x.(routeItem)) }
func (h *routeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// computeRouting runs delay-based Dijkstra from every overlay node and
// records, for each destination, the last link on the shortest path; a
// route is then reconstructed by walking destinations backwards.
func (m *Mesh) computeRouting() {
	n := m.NumNodes()
	m.dist = make([][]float64, n)
	m.nextLink = make([][]int32, n)
	for src := 0; src < n; src++ {
		dist := make([]float64, n)
		prevLink := make([]int32, n)
		for i := range dist {
			dist[i] = math.Inf(1)
			prevLink[i] = -1
		}
		dist[src] = 0
		h := &routeHeap{{node: src}}
		for h.Len() > 0 {
			it := heap.Pop(h).(routeItem)
			if it.dist > dist[it.node] {
				continue
			}
			for _, half := range m.adj[it.node] {
				if d := it.dist + m.links[half.link].QoS.Delay; d < dist[half.to] {
					dist[half.to] = d
					prevLink[half.to] = int32(half.link)
					heap.Push(h, routeItem{node: half.to, dist: d})
				}
			}
		}
		m.dist[src] = dist
		m.nextLink[src] = prevLink
	}
}

// otherEnd returns the endpoint of link id that is not v.
func (m *Mesh) otherEnd(id, v int) int {
	lk := m.links[id]
	if lk.A == v {
		return lk.B
	}
	return lk.A
}

// RouteBetween returns the virtual link from overlay node a to overlay
// node b. When a == b the route is co-located: zero QoS, infinite
// capacity, no links (footnote 4). The bool result is false when the two
// nodes are disconnected in the overlay (which Build prevents, but callers
// of hand-assembled meshes may encounter).
func (m *Mesh) RouteBetween(a, b int) (Route, bool) {
	if a == b {
		return Route{Capacity: math.Inf(1), CoLocated: true}, true
	}
	if math.IsInf(m.dist[a][b], 1) {
		return Route{}, false
	}
	var rev []int
	for v := b; v != a; {
		id := int(m.nextLink[a][v])
		rev = append(rev, id)
		v = m.otherEnd(id, v)
	}
	r := Route{Links: make([]int, len(rev)), Capacity: math.Inf(1)}
	for i := range rev {
		id := rev[len(rev)-1-i]
		r.Links[i] = id
		r.QoS = r.QoS.Add(m.links[id].QoS)
		r.Capacity = math.Min(r.Capacity, m.links[id].Capacity)
	}
	return r, true
}

// Delay returns the shortest overlay path delay between two nodes.
func (m *Mesh) Delay(a, b int) float64 {
	if a == b {
		return 0
	}
	return m.dist[a][b]
}
