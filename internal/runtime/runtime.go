// Package runtime is the live, in-process counterpart of the simulator:
// a distributed stream processing middleware offering the paper's
// session-oriented interface (§2.2) — Find composes an application with
// ACP, Process streams data units through the composed component graph,
// and Close tears the session down.
//
// The control plane runs the same composition engine as the simulator
// (internal/core), so the protocol evaluated by the experiments is
// exactly the protocol deployed here. The data plane is built from
// goroutines and channels: each composed component runs as its own
// goroutine with bounded input queues, splits fan out, and joins merge —
// the natural Go rendering of the paper's component graph with input
// queues (Figure 1(b)).
package runtime

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/harness/clock"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
	"repro/internal/topology"
	"repro/internal/tuning"
)

// ErrNoComposition is returned by Find when no qualified component
// composition exists — the middleware's "null sessionId" (§2.2).
var ErrNoComposition = errors.New("runtime: no qualified component composition")

// ErrUnknownSession is returned for session IDs that were never issued
// or have been closed.
var ErrUnknownSession = errors.New("runtime: unknown session")

// ErrNoBetterComposition is returned by Recompose when re-probing found
// no composition meeting the session's admission-time congestion bound:
// the session keeps its current composition untouched and the caller
// (typically the AdaptController) may retry later.
var ErrNoBetterComposition = errors.New("runtime: no better composition")

// SessionID identifies a composed stream processing session.
type SessionID int64

// DataUnit is one element of a data stream (a tuple, sample, or frame).
type DataUnit struct {
	// Seq orders units within their source stream.
	Seq int64
	// Payload carries the application data.
	Payload interface{}
}

// ProcessorFunc is the per-unit work of a stream processing function. It
// returns the transformed output units: none to filter the unit out, one
// for a map, several for a flat-map.
type ProcessorFunc func(unit DataUnit) []DataUnit

// Config sizes and tunes an in-process cluster.
type Config struct {
	// Seed drives topology, placement, and composition randomness.
	Seed int64
	// IPNodes, OverlayNodes, NeighborsPerNode size the network substrate.
	IPNodes          int
	OverlayNodes     int
	NeighborsPerNode int
	// NumFunctions and ComponentsPerNode control the deployment.
	NumFunctions      int
	ComponentsPerNode int
	// NodeCapacity is the per-node end-system resource capacity.
	NodeCapacity qos.Resources
	// NodeCapacities, when non-nil, overrides NodeCapacity per node
	// (heterogeneous node classes): entry i is node i's capacity. Its
	// length must equal OverlayNodes.
	NodeCapacities []qos.Resources
	// Algorithm and ProbingRatio configure the composition engine.
	Algorithm    core.Algorithm
	ProbingRatio float64
	// Phi selects the composition objective (core.PhiSum is the paper's
	// Eq. 1; the variants support multi-tenant fairness).
	Phi core.PhiMode
	// QueueSize bounds each component's input queue (the paper's input
	// queues absorb transient rate mismatch; §2.1). Default 64.
	QueueSize int
	// Pace scales realistic per-unit processing sleep: each component
	// sleeps Pace x its QoS processing delay per unit. 0 disables
	// sleeping (full-speed processing).
	Pace float64
	// SimulateLoss drops data units at each component with the
	// component's modelled loss probability. Drops are a deterministic
	// function of (unit sequence, component), so runs are reproducible
	// despite concurrency.
	SimulateLoss bool
	// Tracer, when non-nil, receives probe-lifecycle events from the
	// composition engine. nil disables tracing.
	Tracer *obs.Tracer
	// Registry, when non-nil, exposes control-plane instruments
	// (find outcomes, active sessions, find latency). nil disables.
	Registry *obs.Registry
	// Clock supplies time to hold expiry, find-latency measurement, and
	// data-plane pacing sleeps. nil means the wall clock; the simulation
	// harness substitutes a virtual clock.
	Clock clock.Clock
}

// DefaultConfig returns a laptop-sized cluster: 64 stream nodes over a
// 512-node IP graph with two components per node.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		IPNodes:           512,
		OverlayNodes:      64,
		NeighborsPerNode:  5,
		NumFunctions:      16,
		ComponentsPerNode: 2,
		NodeCapacity:      qos.Resources{CPU: 100, Memory: 1000},
		Algorithm:         core.AlgACP,
		ProbingRatio:      0.5,
		QueueSize:         64,
	}
}

// session is one live composed application.
type session struct {
	id      SessionID
	request *component.Request
	comp    *core.Composition
	// tenant and quotaCharge record what Find charged against the
	// tenant's quota, refunded exactly on Close. Empty tenant sessions
	// are metered under the "" tenant.
	tenant      string
	quotaCharge TenantUsage
	// requiredPhi is the admission-time congestion bound: the phi the
	// composition engine accepted at Find. Re-compositions must meet it
	// (within the adaptation tolerance); it never changes on migration.
	requiredPhi float64
	// migrations counts make-before-break flips this session survived.
	migrations int64
	running    bool
	input      chan DataUnit
	output     chan DataUnit
	quit       chan struct{} // closed by Close to force teardown
	quitOnce   sync.Once
	done       chan struct{} // closed when the pipeline drains
	procFn     []ProcessorFunc
	processd   int64
	perComp    []int64 // units emitted per position (atomic)
	dropped    []int64 // units lost per position (atomic)
	// paceNs and lossThr are the per-position data-plane parameters,
	// derived from the current composition. Stored atomically so a
	// migration flip retargets a running pipeline mid-stream.
	paceNs  []int64
	lossThr []int64
}

// Cluster is an in-process distributed stream processing system.
type Cluster struct {
	cfg      Config
	mesh     *overlay.Mesh
	catalog  *component.Catalog
	counters *metrics.Counters

	finds          *obs.Counter
	findFailures   *obs.Counter
	activeSessions *obs.Gauge
	findLatencyMs  *obs.Histogram
	// findQuantiles is the auto-ranging quantile companion of
	// findLatencyMs: same observations, p50/p99/p999 derivable.
	findQuantiles *obs.QHistogram

	// Migration instruments: successful make-before-break flips, failed
	// or rejected re-composition attempts, and the latency of each
	// re-probe + flip.
	migrationsC       *obs.Counter
	migrationFailures *obs.Counter
	migrationLatency  *obs.QHistogram

	// Per-session gauges (same families the dist engine exposes): each
	// live session's phi, its observed Eq. 3 standing (QoS MaxRatio),
	// and the constant requirement 1. Children are deleted on Close.
	sessionPhi    *obs.GaugeVec
	sessionQoS    *obs.GaugeVec
	sessionQoSReq *obs.GaugeVec
	// sessionPhiReq carries each session's admission-time phi bound — the
	// requirement gauge the adaptation drift monitor compares against.
	// Set at Find, untouched by migration flips, deleted on Close.
	sessionPhiReq *obs.GaugeVec

	// Multi-tenant instruments. sessionTenant labels each live session
	// with its tenant (value = phi weight) so scrapes can group the
	// session gauge families by tenant; tenantSessions gauges each
	// tenant's live session count; quotaRejections counts typed quota
	// admissions refusals per tenant.
	sessionTenant   *obs.GaugeVec
	tenantSessions  *obs.GaugeVec
	quotaRejections *obs.CounterVec

	// quota is the per-tenant admission accounting; it has its own
	// mutex (see quotaTable).
	quota *quotaTable

	clock clock.Clock

	mu        sync.Mutex
	ledger    *state.Ledger
	global    *state.Global
	composer  *core.Composer
	rng       *rand.Rand
	functions map[component.FunctionID]ProcessorFunc
	sessions  map[SessionID]*session
	nextID    SessionID
	nextReq   int64
	start     time.Time
	closed    bool

	tuner       tuning.RatioTuner
	tuneEvery   int
	tuneSuccess int
	tuneTotal   int

	// adaptTol is the fractional headroom re-compositions get over the
	// admission-time phi bound; set by EnableAdaptation. guarded by mu
	adaptTol float64
}

// NewCluster builds the network substrate, deploys components, and
// starts the composition engine.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Pace < 0 {
		return nil, fmt.Errorf("runtime: negative Pace %v", cfg.Pace)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tcfg := topology.DefaultConfig()
	tcfg.Nodes = cfg.IPNodes
	graph, err := topology.Generate(tcfg, rng)
	if err != nil {
		return nil, err
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = cfg.OverlayNodes
	ocfg.NeighborsPerNode = cfg.NeighborsPerNode
	mesh, err := overlay.Build(graph, ocfg, rng)
	if err != nil {
		return nil, err
	}
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = cfg.NumFunctions
	pcfg.ComponentsPerNode = cfg.ComponentsPerNode
	catalog, err := component.Place(mesh.NumNodes(), pcfg, rng)
	if err != nil {
		return nil, err
	}

	clk := clock.Or(cfg.Clock)
	c := &Cluster{
		cfg:       cfg,
		mesh:      mesh,
		catalog:   catalog,
		counters:  &metrics.Counters{},
		rng:       rng,
		functions: make(map[component.FunctionID]ProcessorFunc),
		sessions:  make(map[SessionID]*session),
		clock:     clk,
		start:     clk.Now(),

		finds:          cfg.Registry.Counter("runtime.finds"),
		findFailures:   cfg.Registry.Counter("runtime.find_failures"),
		activeSessions: cfg.Registry.Gauge("runtime.sessions.active"),
		findLatencyMs:  cfg.Registry.Histogram("runtime.find.latency_ms", []float64{0.1, 0.5, 1, 5, 10, 50, 100}),
		findQuantiles:  cfg.Registry.QHistogram("runtime.find.latency_quantiles_ms"),

		migrationsC:       cfg.Registry.Counter("runtime.migrations"),
		migrationFailures: cfg.Registry.Counter("runtime.migration_failures"),
		migrationLatency:  cfg.Registry.QHistogram("runtime.migration.latency_quantiles_ms"),

		sessionPhi:    cfg.Registry.GaugeVec("session.phi", "session"),
		sessionQoS:    cfg.Registry.GaugeVec("session.qos.observed", "session"),
		sessionQoSReq: cfg.Registry.GaugeVec("session.qos.required", "session"),
		sessionPhiReq: cfg.Registry.GaugeVec("session.phi.required", "session"),

		sessionTenant:   cfg.Registry.GaugeVec("session.tenant", "session", "tenant"),
		tenantSessions:  cfg.Registry.GaugeVec("runtime.tenant.sessions", "tenant"),
		quotaRejections: cfg.Registry.CounterVec("runtime.quota_rejections", "tenant"),

		quota: newQuotaTable(),
	}
	c.ledger = state.NewLedger(mesh, cfg.NodeCapacity, c.now)
	if caps := cfg.NodeCapacities; caps != nil {
		if len(caps) != mesh.NumNodes() {
			return nil, fmt.Errorf("runtime: NodeCapacities has %d entries for %d overlay nodes",
				len(caps), mesh.NumNodes())
		}
		for node, capacity := range caps {
			if err := c.ledger.SetNodeCapacity(node, capacity); err != nil {
				return nil, err
			}
		}
	}
	global, err := state.NewGlobal(c.ledger, mesh, state.DefaultGlobalConfig(), c.counters)
	if err != nil {
		return nil, err
	}
	c.global = global
	env := core.Env{
		Mesh:     mesh,
		Catalog:  catalog,
		Registry: discovery.NewRegistry(catalog, mesh.NumNodes(), c.counters),
		Ledger:   c.ledger,
		Global:   global,
		Counters: c.counters,
		Now:      c.now,
		Rand:     rng,
		Tracer:   cfg.Tracer,
		Obs:      cfg.Registry,
	}
	ccfg := core.DefaultConfig()
	if cfg.Algorithm != 0 {
		ccfg.Algorithm = cfg.Algorithm
	}
	if cfg.ProbingRatio != 0 {
		ccfg.ProbingRatio = cfg.ProbingRatio
	}
	ccfg.Phi = cfg.Phi
	composer, err := core.NewComposer(env, ccfg)
	if err != nil {
		return nil, err
	}
	c.composer = composer
	return c, nil
}

// now supplies monotonic time on the cluster's clock to the ledger's
// hold expiry.
func (c *Cluster) now() time.Duration { return c.clock.Since(c.start) }

// EnableSelfTuning attaches a PI probing-ratio controller to the
// cluster: every windowRequests Find calls, the observed composition
// success rate drives one control step toward the target (§3.4 made
// live; the controller is §6's control-theoretic variant, which needs no
// trace replay). Call before issuing Finds.
func (c *Cluster) EnableSelfTuning(target float64, windowRequests int) error {
	if windowRequests < 1 {
		return fmt.Errorf("runtime: windowRequests %d < 1", windowRequests)
	}
	cfg := tuning.DefaultPIConfig()
	cfg.Target = target
	cfg.Base = c.composer.ProbingRatio()
	if cfg.Base < cfg.Min {
		cfg.Base = cfg.Min
	}
	controller, err := tuning.NewPIController(cfg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tuner = controller
	c.tuneEvery = windowRequests
	c.tuneSuccess, c.tuneTotal = 0, 0
	return nil
}

// ProbingRatio returns the composition engine's current probing ratio.
func (c *Cluster) ProbingRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.composer.ProbingRatio()
}

// observeFind feeds the tuner; the caller holds c.mu.
func (c *Cluster) observeFind(success bool) {
	if c.tuner == nil {
		return
	}
	c.tuneTotal++
	if success {
		c.tuneSuccess++
	}
	if c.tuneTotal < c.tuneEvery {
		return
	}
	rate := float64(c.tuneSuccess) / float64(c.tuneTotal)
	c.tuneSuccess, c.tuneTotal = 0, 0
	if c.tuner.Observe(rate) {
		// The PI output is clamped to (0, 1]; SetProbingRatio cannot fail.
		if err := c.composer.SetProbingRatio(c.tuner.Ratio()); err != nil {
			c.tuner = nil // defensive: disable rather than wedge
		}
	}
}

// RegisterFunction installs the per-unit processing work for a stream
// processing function. Unregistered functions behave as identity.
func (c *Cluster) RegisterFunction(f component.FunctionID, fn ProcessorFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.functions[f] = fn
}

// NumNodes returns the overlay size.
func (c *Cluster) NumNodes() int { return c.mesh.NumNodes() }

// Counters returns a snapshot of the control-plane message counters.
func (c *Cluster) Counters() metrics.Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters.Snapshot()
}

// Find invokes the optimal component composition algorithm for the
// requested function graph, QoS, and resource requirements (§2.2). On
// success it commits the composition and returns a session identifier;
// if no qualified composition exists it returns ErrNoComposition.
func (c *Cluster) Find(graph *component.Graph, qosReq qos.Vector, resReq []qos.Resources, bandwidthKbps float64) (SessionID, error) {
	return c.FindApp(FindRequest{
		Graph:         graph,
		QoSReq:        qosReq,
		ResReq:        resReq,
		BandwidthKbps: bandwidthKbps,
	})
}

// FindRequest is the tenant-aware form of Find's arguments.
type FindRequest struct {
	// Tenant labels the requesting application for quota accounting and
	// per-tenant gauges; empty means the anonymous single-app tenant.
	Tenant string
	// Weight is the request's phi weight under core.PhiWeighted
	// (0 = default weight 1).
	Weight float64
	// PinClient pins the deputy to Client instead of drawing it from the
	// cluster RNG — the simulation harness uses this to replay the exact
	// request through its reference oracle.
	PinClient     bool
	Client        int
	Graph         *component.Graph
	QoSReq        qos.Vector
	ResReq        []qos.Resources
	BandwidthKbps float64
}

// FindApp is Find with a tenant identity: the request is first charged
// against the tenant's quota (a typed *QuotaError rejection, wrapping
// ErrQuotaExceeded, if over budget — the composer is never consulted),
// then composed and committed as Find does. The quota charge is
// refunded if composition fails, and on Close.
func (c *Cluster) FindApp(r FindRequest) (SessionID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("runtime: cluster is shut down")
	}

	demand := quotaDemand(r.Graph, r.ResReq, r.BandwidthKbps)
	if qerr := c.quota.charge(r.Tenant, demand); qerr != nil {
		c.quotaRejections.With(tenantLabel(r.Tenant)).Inc()
		return 0, qerr
	}

	client := 0
	if r.PinClient {
		if r.Client < 0 || r.Client >= c.mesh.NumNodes() {
			c.quota.refund(r.Tenant, demand)
			return 0, fmt.Errorf("runtime: pinned client %d outside [0, %d)", r.Client, c.mesh.NumNodes())
		}
		client = r.Client
	}
	c.nextReq++
	if !r.PinClient {
		client = c.rng.Intn(c.mesh.NumNodes())
	}
	req := &component.Request{
		ID:           c.nextReq,
		Graph:        r.Graph,
		QoSReq:       r.QoSReq,
		ResReq:       append([]qos.Resources(nil), r.ResReq...),
		BandwidthReq: r.BandwidthKbps,
		Client:       client,
		Duration:     time.Hour, // sessions live until Close
		Tenant:       r.Tenant,
		Weight:       r.Weight,
	}
	findStart := c.now()
	c.finds.Inc()
	outcome, err := c.composer.Probe(req)
	elapsedMs := float64(c.now()-findStart) / float64(time.Millisecond)
	c.findLatencyMs.Observe(elapsedMs)
	c.findQuantiles.Observe(elapsedMs)
	if err != nil {
		c.quota.refund(r.Tenant, demand)
		c.findFailures.Inc()
		return 0, err
	}
	if !outcome.Success() {
		c.quota.refund(r.Tenant, demand)
		c.observeFind(false)
		c.findFailures.Inc()
		return 0, ErrNoComposition
	}
	if err := c.composer.Commit(outcome); err != nil {
		c.composer.Abort(req.ID)
		c.quota.refund(r.Tenant, demand)
		c.observeFind(false)
		c.findFailures.Inc()
		return 0, fmt.Errorf("runtime: commit: %w", err)
	}
	c.observeFind(true)

	c.nextID++
	id := c.nextID
	graph := r.Graph
	procFn := make([]ProcessorFunc, graph.NumPositions())
	for pos, f := range graph.Functions {
		procFn[pos] = c.functions[f] // nil = identity
	}
	s := &session{
		id:          id,
		request:     req,
		comp:        outcome.Best,
		tenant:      r.Tenant,
		quotaCharge: demand,
		requiredPhi: outcome.Best.Phi,
		procFn:      procFn,
		perComp:     make([]int64, graph.NumPositions()),
		dropped:     make([]int64, graph.NumPositions()),
		paceNs:      make([]int64, graph.NumPositions()),
		lossThr:     make([]int64, graph.NumPositions()),
	}
	c.sessions[id] = s
	c.setDataPlaneParams(s)
	c.activeSessions.Set(float64(len(c.sessions)))
	sess := sessionLabel(id)
	c.sessionPhi.With(sess).Set(outcome.Best.Phi)
	c.sessionQoS.With(sess).Set(outcome.Best.QoS.MaxRatio(r.QoSReq))
	c.sessionQoSReq.With(sess).Set(1)
	c.sessionPhiReq.With(sess).Set(outcome.Best.Phi)
	if r.Tenant != "" {
		c.sessionTenant.With(sess, r.Tenant).Set(req.PhiWeight())
		c.tenantSessions.With(r.Tenant).Set(float64(c.quota.usageSessions(r.Tenant)))
	}
	return id, nil
}

// tenantLabel renders a tenant for label values; the anonymous tenant
// scrapes as "default".
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// Recompose re-runs the composition algorithm for a live session against
// current network conditions and migrates it make-before-break: the new
// composition is probed and held while the old one stays committed, then
// the ledger flips the session's allocation atomically — the session is
// never without resources (the adaptation analogue of §3.3's transient
// holds). The flip is rejected, leaving the session untouched, when no
// composition meets the admission-time phi bound (within the adaptation
// tolerance): that is ErrNoBetterComposition, the caller's cue to back
// off and retry.
func (c *Cluster) Recompose(id SessionID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("runtime: cluster is shut down")
	}
	s, ok := c.sessions[id]
	if !ok {
		return ErrUnknownSession
	}
	prev := s.request
	c.nextReq++
	req := &component.Request{
		ID:           c.nextReq,
		Graph:        prev.Graph,
		QoSReq:       prev.QoSReq,
		ResReq:       append([]qos.Resources(nil), prev.ResReq...),
		BandwidthReq: prev.BandwidthReq,
		Client:       prev.Client, // the client endpoint does not move
		Duration:     prev.Duration,
	}
	bound := s.requiredPhi * (1 + c.adaptTol)
	start := c.now()
	outcome, err := c.composer.ProbeRecompose(req, prev.ID)
	if err != nil {
		c.migrationFailures.Inc()
		return fmt.Errorf("runtime: recompose probe: %w", err)
	}
	if !outcome.Success() {
		c.migrationFailures.Inc()
		return fmt.Errorf("%w: probe found no qualified composition", ErrNoBetterComposition)
	}
	if outcome.Best.Phi > bound {
		c.composer.AbortRecompose(req.ID)
		c.migrationFailures.Inc()
		return fmt.Errorf("%w: best phi %.4g exceeds bound %.4g", ErrNoBetterComposition, outcome.Best.Phi, bound)
	}
	if err := c.composer.CommitMigration(outcome, prev.ID); err != nil {
		c.composer.AbortRecompose(req.ID)
		c.migrationFailures.Inc()
		return fmt.Errorf("runtime: migrate: %w", err)
	}
	c.migrationLatency.Observe(float64(c.now()-start) / float64(time.Millisecond))
	c.migrationsC.Inc()

	// Flip the session onto the new composition. The gauge children keep
	// their label, so the drift monitor sees an in-place update — one
	// recovery transition, not a forget/re-register storm. The required
	// gauges are untouched: migrating does not renegotiate the contract.
	s.request = req
	s.comp = outcome.Best
	s.migrations++
	c.setDataPlaneParams(s)
	sess := sessionLabel(id)
	c.sessionPhi.With(sess).Set(outcome.Best.Phi)
	c.sessionQoS.With(sess).Set(outcome.Best.QoS.MaxRatio(req.QoSReq))
	return nil
}

// sessionLabel renders a session ID as its gauge-vector label value.
func sessionLabel(id SessionID) string { return strconv.FormatInt(int64(id), 10) }

// RefreshSessionGauges recomputes every live session's observed phi
// (Eq. 1) under the ledger's *current* committed residuals and updates
// the "session.phi" gauge vector. At commit time the gauge carries
// decision-time phi; as other sessions commit and release around it,
// the same composition's congestion drifts — this is the observation
// the drift monitor compares against the Eq. 3 requirement gauges.
func (c *Cluster) RefreshSessionGauges() {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]SessionID, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		c.sessionPhi.With(sessionLabel(id)).Set(c.observedPhi(c.sessions[id]))
	}
}

// observedPhi aggregates the session's congestion metric phi (Eq. 1)
// from the ledger's current committed residuals. The ledger residual
// already excludes this session's own committed demand, matching the
// post-placement residual rr of Eq. 1. Caller holds c.mu.
func (c *Cluster) observedPhi(s *session) float64 {
	req := s.request
	phi := 0.0
	for pos, cid := range s.comp.Components {
		node := c.catalog.Component(cid).Node
		phi += qos.CongestionTerm(req.ResReq[pos], c.ledger.NodeCommittedAvailable(node))
	}
	for _, route := range s.comp.Routes {
		residual := math.Inf(1)
		if !route.CoLocated {
			for _, link := range route.Links {
				residual = math.Min(residual, c.ledger.LinkCommittedAvailable(link))
			}
		}
		phi += qos.BandwidthCongestionTerm(req.BandwidthReq, residual)
	}
	return phi
}

// Composition describes a session's composed component graph.
type Composition struct {
	// Components lists (position, component, node) assignments.
	Components []PlacedComponent
	// QoS is the composed application's aggregated QoS.
	QoS qos.Vector
	// Phi is the congestion aggregation metric at composition time.
	Phi float64
}

// PlacedComponent is one composed component placement.
type PlacedComponent struct {
	Position  int
	Function  component.FunctionID
	Component component.ComponentID
	Node      int
}

// Describe reports a session's composition.
func (c *Cluster) Describe(id SessionID) (Composition, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return Composition{}, ErrUnknownSession
	}
	out := Composition{QoS: s.comp.QoS, Phi: s.comp.Phi}
	for pos, cid := range s.comp.Components {
		comp := c.catalog.Component(cid)
		out.Components = append(out.Components, PlacedComponent{
			Position:  pos,
			Function:  comp.Function,
			Component: cid,
			Node:      comp.Node,
		})
	}
	return out, nil
}

// Process starts the session's continuous data stream processing (§2.2):
// it wires one goroutine per composed component with bounded input
// queues and returns the channel pair to feed and drain. Close the input
// channel to flush the pipeline; the output channel closes once every
// unit has drained. Process can be called once per session.
func (c *Cluster) Process(id SessionID) (chan<- DataUnit, <-chan DataUnit, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return nil, nil, ErrUnknownSession
	}
	if s.running {
		return nil, nil, fmt.Errorf("runtime: session %d already processing", id)
	}
	s.running = true
	s.input = make(chan DataUnit, c.cfg.QueueSize)
	s.output = make(chan DataUnit, c.cfg.QueueSize)
	s.quit = make(chan struct{})
	s.done = make(chan struct{})
	c.startPipeline(s)
	return s.input, s.output, nil
}

// Processed returns how many data units the session's sink has emitted.
func (c *Cluster) Processed(id SessionID) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return 0, ErrUnknownSession
	}
	return atomic.LoadInt64(&s.processd), nil
}

// SessionStats reports per-component data-plane counters.
type SessionStats struct {
	// Emitted counts output units per graph position.
	Emitted []int64
	// Dropped counts units lost to simulated loss per graph position.
	Dropped []int64
	// SinkEmitted is the sink's total output.
	SinkEmitted int64
}

// Stats returns the session's data-plane counters. Safe to call while
// the pipeline runs; values are monotone snapshots.
func (c *Cluster) Stats(id SessionID) (SessionStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return SessionStats{}, ErrUnknownSession
	}
	st := SessionStats{
		Emitted:     make([]int64, len(s.perComp)),
		Dropped:     make([]int64, len(s.dropped)),
		SinkEmitted: atomic.LoadInt64(&s.processd),
	}
	for i := range s.perComp {
		st.Emitted[i] = atomic.LoadInt64(&s.perComp[i])
		st.Dropped[i] = atomic.LoadInt64(&s.dropped[i])
	}
	return st, nil
}

// Close tears down a stream processing session (§2.2) and releases its
// resources. Closing the session's input channel first flushes the
// pipeline gracefully; Close on a session whose input is still open
// forces teardown, discarding in-flight units. Close never touches the
// caller-owned input channel, so a producer that keeps sending after
// Close simply blocks — stop producing before (or promptly after)
// closing the session.
func (c *Cluster) Close(id SessionID) error {
	c.mu.Lock()
	s, ok := c.sessions[id]
	if !ok {
		c.mu.Unlock()
		return ErrUnknownSession
	}
	delete(c.sessions, id)
	c.activeSessions.Set(float64(len(c.sessions)))
	sess := sessionLabel(id)
	c.sessionPhi.Delete(sess)
	c.sessionQoS.Delete(sess)
	c.sessionQoSReq.Delete(sess)
	c.sessionPhiReq.Delete(sess)
	c.quota.refund(s.tenant, s.quotaCharge)
	if s.tenant != "" {
		c.sessionTenant.Delete(sess, s.tenant)
		c.tenantSessions.With(s.tenant).Set(float64(c.quota.usageSessions(s.tenant)))
	}
	c.mu.Unlock()

	if s.running {
		// Force teardown of components still waiting on input, and drain
		// whatever the caller left in the output queue so the sink can
		// flush — otherwise an abandoned output channel would deadlock
		// the teardown. Then wait for every component goroutine to exit.
		s.quitOnce.Do(func() { close(s.quit) })
		go func() {
			for range s.output {
			}
		}()
		<-s.done
	}

	c.mu.Lock()
	c.composer.Release(s.request.ID)
	c.mu.Unlock()
	return nil
}

// Shutdown closes every live session and stops the cluster. Idempotent,
// and safe against sessions racing their own Close: Close only fails
// with ErrUnknownSession, which Shutdown ignores.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	ids := make([]SessionID, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	c.closed = true
	c.mu.Unlock()
	for _, id := range ids {
		_ = c.Close(id)
	}
}

// SessionAudit is one live session's adaptation-relevant standing, as
// reported by AuditSessions for the simulation harness's oracles.
type SessionAudit struct {
	ID SessionID
	// RequestID is the ledger owner of the session's current allocation
	// (changes on every migration flip).
	RequestID int64
	// ObservedPhi is Eq. 1 under the ledger's current committed
	// residuals; RequiredPhi is the admission-time bound.
	ObservedPhi float64
	RequiredPhi float64
	// Migrations counts make-before-break flips the session survived.
	Migrations int64
}

// AuditSessions snapshots every live session's congestion standing in
// session-ID order.
func (c *Cluster) AuditSessions() []SessionAudit {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]SessionID, 0, len(c.sessions))
	for id := range c.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SessionAudit, 0, len(ids))
	for _, id := range ids {
		s := c.sessions[id]
		out = append(out, SessionAudit{
			ID:          id,
			RequestID:   s.request.ID,
			ObservedPhi: c.observedPhi(s),
			RequiredPhi: s.requiredPhi,
			Migrations:  s.migrations,
		})
	}
	return out
}

// CheckInvariants audits the ledger's conservation laws (Eqs. 4–5,
// including any open migration windows) and that every live session
// owns exactly one committed allocation — a session is never unheld,
// even mid-migration.
func (c *Cluster) CheckInvariants() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.ledger.CheckInvariants(); err != nil {
		return err
	}
	for id, s := range c.sessions {
		if !c.ledger.HasSession(state.Owner(s.request.ID)) {
			return fmt.Errorf("runtime: session %d (request %d) has no committed allocation", id, s.request.ID)
		}
	}
	return nil
}

// ActiveSessions returns the number of live sessions.
func (c *Cluster) ActiveSessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// NodeResidual returns a node's committed residual capacity — what a
// congestion surge can still consume.
func (c *Cluster) NodeResidual(node int) qos.Resources {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger.NodeCommittedAvailable(node)
}

// NodeCapacity returns a node's total capacity (per-node under
// Config.NodeCapacities, uniform otherwise).
func (c *Cluster) NodeCapacity(node int) qos.Resources {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger.NodeCapacity(node)
}

// LinkResidual returns an overlay link's committed residual bandwidth.
func (c *Cluster) LinkResidual(link int) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger.LinkCommittedAvailable(link)
}

// NumLinks returns the overlay link count.
func (c *Cluster) NumLinks() int { return c.mesh.NumLinks() }

// Mesh exposes the overlay mesh for read-only use — the simulation
// harness's oracle rebuilds routes against the same substrate.
func (c *Cluster) Mesh() *overlay.Mesh { return c.mesh }

// Catalog exposes the component deployment for read-only use.
func (c *Cluster) Catalog() *component.Catalog { return c.catalog }

// InjectLoad commits synthetic background load on the ledger under a
// negative owner ID (positive IDs belong to composed sessions), the
// harness's and experiments' way of manufacturing congestion surges
// that drive sessions into QoS drift. Release with ReleaseLoad.
func (c *Cluster) InjectLoad(owner int64, load map[int]qos.Resources) error {
	if owner >= 0 {
		return fmt.Errorf("runtime: injected load owner %d must be negative", owner)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make(map[int]qos.Resources, len(load))
	for n, r := range load {
		nodes[n] = r
	}
	return c.ledger.CommitSession(state.Owner(owner), nodes, nil)
}

// ReleaseLoad removes previously injected background load. Unknown
// owners are a no-op.
func (c *Cluster) ReleaseLoad(owner int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ledger.ReleaseSession(state.Owner(owner))
}
