package runtime

import (
	"errors"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/qos"
)

// adaptCluster builds a small cluster on a virtual clock with a live
// registry, the fixture for deterministic adaptation schedules.
func adaptCluster(t *testing.T) (*Cluster, *obs.Registry, *clock.Virtual) {
	t.Helper()
	vc := clock.NewVirtual()
	r := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.Clock = vc
	cfg.Registry = r
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c, r, vc
}

// congestNodes injects synthetic background load under a negative owner
// on the given nodes, leaving roughly `leave` of each resource free.
func congestNodes(t *testing.T, c *Cluster, owner int64, nodes []int, leave qos.Resources) {
	t.Helper()
	load := make(map[int]qos.Resources, len(nodes))
	for _, n := range nodes {
		avail := c.NodeResidual(n)
		load[n] = qos.Resources{CPU: avail.CPU - leave.CPU, Memory: avail.Memory - leave.Memory}
	}
	if err := c.InjectLoad(owner, load); err != nil {
		t.Fatalf("synthetic load: %v", err)
	}
}

func sessionNodes(t *testing.T, c *Cluster, id SessionID) []int {
	t.Helper()
	desc, err := c.Describe(id)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var nodes []int
	for _, pc := range desc.Components {
		if !seen[pc.Node] {
			seen[pc.Node] = true
			nodes = append(nodes, pc.Node)
		}
	}
	return nodes
}

func TestRecomposeIdleClusterFlips(t *testing.T) {
	c, r, _ := adaptCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	before := c.AuditSessions()[0]

	// Nothing changed, so the re-probe finds a composition at the same
	// phi and the flip succeeds with adaptTol = 0.
	if err := c.Recompose(id); err != nil {
		t.Fatalf("recompose: %v", err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := c.AuditSessions()[0]
	if after.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1", after.Migrations)
	}
	if after.RequestID == before.RequestID {
		t.Fatal("migration kept the old ledger owner")
	}
	if after.RequiredPhi != before.RequiredPhi {
		t.Fatalf("migration renegotiated the phi bound: %v -> %v", before.RequiredPhi, after.RequiredPhi)
	}
	if after.ObservedPhi > after.RequiredPhi+1e-9 {
		t.Fatalf("post-flip phi %v above bound %v", after.ObservedPhi, after.RequiredPhi)
	}
	if got := r.Snapshot().Counters["runtime.migrations"]; got != 1 {
		t.Fatalf("runtime.migrations = %d, want 1", got)
	}
	if _, err := c.Describe(id); err != nil {
		t.Fatalf("session lost after migration: %v", err)
	}
	if err := c.Recompose(SessionID(777)); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("recompose of unknown session: %v", err)
	}
}

// TestAdaptDriftRecoverDeterministic is the tentpole schedule: one
// session drifts under synthetic congestion, the controller migrates it
// make-before-break, and the monitor reports compliance — with exactly
// one exceeded event, one migration, and one recovery on the virtual
// clock, invariants audited at every step.
func TestAdaptDriftRecoverDeterministic(t *testing.T) {
	c, r, vc := adaptCluster(t)
	ctrl, err := c.EnableAdaptation(AdaptConfig{Period: time.Second, Tolerance: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	oldNodes := sessionNodes(t, c, id)

	ctrl.Start()
	vc.Advance(time.Second) // tick 1: healthy baseline
	s := r.Snapshot()
	if s.Counters["obs.drift.exceeded_total"] != 0 {
		t.Fatal("healthy session reported drift")
	}

	// Surge: squeeze the session's nodes to near-zero residual.
	congestNodes(t, c, -1, oldNodes, qos.Resources{CPU: 1, Memory: 10})
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	vc.Advance(time.Second) // tick 2: drift detected, migration fires
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("post-migration: %v", err)
	}
	s = r.Snapshot()
	if got := s.Counters["obs.drift.exceeded_total"]; got != 1 {
		t.Fatalf("exceeded_total = %d, want 1", got)
	}
	if got := s.Counters["adapt.migrations"]; got != 1 {
		t.Fatalf("adapt.migrations = %d, want 1", got)
	}
	audit := c.AuditSessions()[0]
	if audit.Migrations != 1 {
		t.Fatalf("session migrations = %d, want 1", audit.Migrations)
	}
	if audit.ObservedPhi > audit.RequiredPhi*1.5 {
		t.Fatalf("migrated session still violating: phi %v bound %v", audit.ObservedPhi, audit.RequiredPhi*1.5)
	}
	// The new composition stays clear of every congested node.
	for _, n := range sessionNodes(t, c, id) {
		for _, old := range oldNodes {
			if n == old {
				t.Fatalf("migrated composition still uses congested node %d", n)
			}
		}
	}

	vc.Advance(time.Second) // tick 3: recovery reported
	s = r.Snapshot()
	if got := s.Counters["obs.drift.recovered_total"]; got != 1 {
		t.Fatalf("recovered_total = %d, want 1", got)
	}

	// No storm: further ticks are quiet.
	vc.Advance(5 * time.Second)
	s = r.Snapshot()
	if s.Counters["obs.drift.exceeded_total"] != 1 || s.Counters["obs.drift.recovered_total"] != 1 {
		t.Fatalf("monitor storm: exceeded=%d recovered=%d",
			s.Counters["obs.drift.exceeded_total"], s.Counters["obs.drift.recovered_total"])
	}
	if got := s.Counters["adapt.migrations"]; got != 1 {
		t.Fatalf("adapt.migrations after settle = %d, want 1", got)
	}
	if got := s.Counters["obs.drift.forgotten_total"]; got != 0 {
		t.Fatalf("forgotten_total = %d, want 0", got)
	}
}

// TestAdaptRetryBackoffAndAbandon congests the whole cluster so no
// better composition exists: the controller must retry with doubling
// backoff and abandon the episode after MaxRetries, never migrating.
func TestAdaptRetryBackoffAndAbandon(t *testing.T) {
	c, r, vc := adaptCluster(t)
	ctrl, err := c.EnableAdaptation(AdaptConfig{
		Period:       time.Second,
		Tolerance:    0.5,
		MaxRetries:   2,
		RetryBackoff: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}

	// Congest every node: the re-probe can find nothing acceptable.
	all := make([]int, c.NumNodes())
	for i := range all {
		all[i] = i
	}
	congestNodes(t, c, -1, all, qos.Resources{CPU: 1, Memory: 10})

	ctrl.Start()
	vc.Advance(time.Second) // tick 1: drift, attempt 0 fails, retry armed at +2s
	s := r.Snapshot()
	if got := s.Counters["adapt.recompose_failures"]; got != 1 {
		t.Fatalf("failures after first attempt = %d, want 1", got)
	}
	vc.Advance(2 * time.Second) // t=3s: retry 1 fails, next retry at +4s
	if got := r.Snapshot().Counters["adapt.recompose_failures"]; got != 2 {
		t.Fatalf("failures after retry 1 = %d, want 2", got)
	}
	vc.Advance(4 * time.Second) // t=7s: retry 2 fails, episode abandoned
	s = r.Snapshot()
	if got := s.Counters["adapt.recompose_failures"]; got != 3 {
		t.Fatalf("failures after retry 2 = %d, want 3", got)
	}
	if got := s.Counters["adapt.abandoned"]; got != 1 {
		t.Fatalf("abandoned = %d, want 1", got)
	}
	vc.Advance(10 * time.Second) // quiet: no further attempts
	s = r.Snapshot()
	if got := s.Counters["adapt.recompose_failures"]; got != 3 {
		t.Fatalf("failures after abandon = %d, want 3", got)
	}
	if got := s.Counters["adapt.migrations"]; got != 0 {
		t.Fatalf("migrations = %d, want 0", got)
	}
	// Graceful fallback: the session kept its composition throughout.
	audit := c.AuditSessions()[0]
	if audit.ID != id || audit.Migrations != 0 {
		t.Fatalf("session audit = %+v, want zero migrations", audit)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptRetryClearsOnNaturalRecovery arms a retry, releases the
// synthetic load before it fires, and checks the retry ends the episode
// without another attempt.
func TestAdaptRetryClearsOnNaturalRecovery(t *testing.T) {
	c, r, vc := adaptCluster(t)
	ctrl, err := c.EnableAdaptation(AdaptConfig{
		Period:       time.Second,
		Tolerance:    0.5,
		MaxRetries:   3,
		RetryBackoff: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	if _, err := c.Find(graph, qosReq, resReq, bw); err != nil {
		t.Fatal(err)
	}
	all := make([]int, c.NumNodes())
	for i := range all {
		all[i] = i
	}
	congestNodes(t, c, -1, all, qos.Resources{CPU: 1, Memory: 10})

	ctrl.Start()
	vc.Advance(time.Second) // drift, attempt fails, retry armed at +5s
	if got := r.Snapshot().Counters["adapt.recompose_failures"]; got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
	c.ReleaseLoad(-1)            // surge ends on its own
	vc.Advance(10 * time.Second) // retry fires, sees compliance, ends episode
	s := r.Snapshot()
	if got := s.Counters["adapt.recompose_failures"]; got != 1 {
		t.Fatalf("failures after natural recovery = %d, want 1", got)
	}
	if got := s.Counters["adapt.migrations"]; got != 0 {
		t.Fatalf("migrations = %d, want 0", got)
	}
	if got := s.Counters["obs.drift.recovered_total"]; got != 1 {
		t.Fatalf("recovered_total = %d, want 1", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptPredictiveMigratesBeforeViolation feeds a steadily rising
// congestion ramp: the Holt forecaster must project the bound crossing
// and migrate while the session is still compliant.
func TestAdaptPredictiveMigratesBeforeViolation(t *testing.T) {
	c, r, vc := adaptCluster(t)
	ctrl, err := c.EnableAdaptation(AdaptConfig{
		Period:        time.Second,
		Tolerance:     1.0,
		Predictive:    true,
		ForecastSteps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Stop()

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	oldNodes := sessionNodes(t, c, id)

	ctrl.Start()
	// Ramp: each tick another slice of the session's nodes is consumed.
	// The trend is visible well before observed phi crosses the bound.
	for step := int64(1); step <= 20; step++ {
		load := make(map[int]qos.Resources, len(oldNodes))
		for _, n := range oldNodes {
			load[n] = qos.Resources{CPU: 4, Memory: 40}
		}
		if err := c.InjectLoad(-step, load); err != nil {
			break // nodes exhausted; ramp is over
		}
		vc.Advance(time.Second)
		if r.Snapshot().Counters["adapt.preemptive_migrations"] > 0 {
			break
		}
	}
	s := r.Snapshot()
	if got := s.Counters["adapt.preemptive_migrations"]; got != 1 {
		t.Fatalf("preemptive_migrations = %d, want 1 (exceeded=%d)",
			got, s.Counters["obs.drift.exceeded_total"])
	}
	if got := s.Counters["obs.drift.exceeded_total"]; got != 0 {
		t.Fatalf("predictive mode let the bound be crossed: exceeded=%d", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if audit := c.AuditSessions()[0]; audit.Migrations != 1 {
		t.Fatalf("session migrations = %d, want 1", audit.Migrations)
	}
}
