package runtime

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/obs"
	"repro/internal/qos"
)

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func easyArgs(n int) (qos.Vector, []qos.Resources, float64) {
	res := make([]qos.Resources, n)
	for i := range res {
		res[i] = qos.Resources{CPU: 5, Memory: 50}
	}
	return qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)}, res, 50
}

func TestFindComposesSession(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero session id")
	}
	desc, err := c.Describe(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc.Components) != 3 {
		t.Fatalf("composition has %d components", len(desc.Components))
	}
	for pos, pc := range desc.Components {
		if pc.Function != graph.Functions[pos] {
			t.Errorf("position %d provides function %d, want %d", pos, pc.Function, graph.Functions[pos])
		}
	}
	if desc.Phi <= 0 {
		t.Errorf("phi = %v", desc.Phi)
	}
	if c.ActiveSessions() != 1 {
		t.Errorf("ActiveSessions = %d", c.ActiveSessions())
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
	if c.ActiveSessions() != 0 {
		t.Errorf("ActiveSessions after close = %d", c.ActiveSessions())
	}
}

func TestFindNoComposition(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, _, bw := easyArgs(2)
	// Impossible resource demand.
	res := []qos.Resources{{CPU: 1e9}, {CPU: 1e9}}
	if _, err := c.Find(graph, qosReq, res, bw); !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
}

func TestProcessIdentityPipeline(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	const units = 100
	go func() {
		for i := 0; i < units; i++ {
			in <- DataUnit{Seq: int64(i), Payload: i}
		}
		close(in)
	}()
	var got []DataUnit
	for u := range out {
		got = append(got, u)
	}
	if len(got) != units {
		t.Fatalf("received %d units, want %d", len(got), units)
	}
	// A pure path pipeline preserves order.
	for i, u := range got {
		if u.Seq != int64(i) {
			t.Fatalf("unit %d has seq %d", i, u.Seq)
		}
	}
	n, err := c.Processed(id)
	if err != nil || n != units {
		t.Errorf("Processed = %d, %v", n, err)
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
}

func TestProcessWithFunctions(t *testing.T) {
	c := testCluster(t)
	// Function 0: double the value. Function 1: filter odd values.
	c.RegisterFunction(0, func(u DataUnit) []DataUnit {
		u.Payload = u.Payload.(int) * 2
		return []DataUnit{u}
	})
	c.RegisterFunction(1, func(u DataUnit) []DataUnit {
		if u.Payload.(int)%4 == 0 {
			return []DataUnit{u}
		}
		return nil
	})
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 10; i++ {
			in <- DataUnit{Seq: int64(i), Payload: i}
		}
		close(in)
	}()
	var vals []int
	for u := range out {
		vals = append(vals, u.Payload.(int))
	}
	// Inputs 0..9 doubled: 0,2,4,...,18; filtered to multiples of 4.
	want := []int{0, 4, 8, 12, 16}
	if len(vals) != len(want) {
		t.Fatalf("values = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("values = %v, want %v", vals, want)
		}
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
}

func TestProcessDAGPipeline(t *testing.T) {
	c := testCluster(t)
	graph, err := component.NewBranchGraph(0, []component.FunctionID{1}, []component.FunctionID{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Tag each branch so the join sees both copies.
	c.RegisterFunction(1, func(u DataUnit) []DataUnit {
		return []DataUnit{{Seq: u.Seq, Payload: "left"}}
	})
	c.RegisterFunction(2, func(u DataUnit) []DataUnit {
		return []DataUnit{{Seq: u.Seq, Payload: "right"}}
	})
	qosReq, resReq, bw := easyArgs(4)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	const units = 50
	go func() {
		for i := 0; i < units; i++ {
			in <- DataUnit{Seq: int64(i)}
		}
		close(in)
	}()
	counts := map[string]int{}
	total := 0
	for u := range out {
		counts[u.Payload.(string)]++
		total++
	}
	// The split duplicates every unit down both branches; the join merges
	// them: 2x units at the sink.
	if total != 2*units {
		t.Fatalf("sink received %d units, want %d", total, 2*units)
	}
	if counts["left"] != units || counts["right"] != units {
		t.Fatalf("branch counts = %v", counts)
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
}

func TestProcessTwiceFails(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Process(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Process(id); err == nil {
		t.Error("second Process accepted")
	}
}

func TestUnknownSessionErrors(t *testing.T) {
	c := testCluster(t)
	if _, err := c.Describe(99); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Describe: %v", err)
	}
	if _, _, err := c.Process(99); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Process: %v", err)
	}
	if err := c.Close(99); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Close: %v", err)
	}
	if _, err := c.Processed(99); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Processed: %v", err)
	}
}

func TestCloseReleasesResources(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)

	// Compose and close repeatedly: resources must not leak, so the
	// same request keeps succeeding indefinitely.
	for i := 0; i < 30; i++ {
		id, err := c.Find(graph, qosReq, resReq, bw)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := c.Close(id); err != nil {
			t.Fatalf("iteration %d close: %v", i, err)
		}
	}
}

func TestConcurrentSessions(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			id, err := c.Find(graph, qosReq, resReq, bw)
			if err != nil {
				errs <- fmt.Errorf("session %d find: %w", s, err)
				return
			}
			in, out, err := c.Process(id)
			if err != nil {
				errs <- fmt.Errorf("session %d process: %w", s, err)
				return
			}
			go func() {
				for i := 0; i < 50; i++ {
					in <- DataUnit{Seq: int64(i)}
				}
				close(in)
			}()
			count := 0
			for range out {
				count++
			}
			if count != 50 {
				errs <- fmt.Errorf("session %d drained %d units", s, count)
				return
			}
			errs <- c.Close(id)
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

func TestShutdownClosesSessions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	if _, err := c.Find(graph, qosReq, resReq, bw); err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	if c.ActiveSessions() != 0 {
		t.Errorf("sessions after shutdown = %d", c.ActiveSessions())
	}
	if _, err := c.Find(graph, qosReq, resReq, bw); err == nil {
		t.Error("Find accepted after shutdown")
	}
}

func TestPaceSlowsProcessing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.Pace = 0.01 // 1% of the modelled per-unit delay
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 5; i++ {
			in <- DataUnit{Seq: int64(i)}
		}
		close(in)
	}()
	count := 0
	for range out {
		count++
	}
	if count != 5 {
		t.Fatalf("drained %d units", count)
	}
}

func TestNewClusterValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pace = -1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("negative pace accepted")
	}
	cfg = DefaultConfig()
	cfg.OverlayNodes = cfg.IPNodes + 1
	if _, err := NewCluster(cfg); err == nil {
		t.Error("oversized overlay accepted")
	}
}

func TestCountersAdvance(t *testing.T) {
	c := testCluster(t)
	before := c.Counters()
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close(id)
	after := c.Counters()
	if after.Probes <= before.Probes {
		t.Error("probe counter did not advance")
	}
	if after.Confirmations != before.Confirmations+2 {
		t.Errorf("confirmations advanced by %d, want 2", after.Confirmations-before.Confirmations)
	}
}

func TestStatsPerComponent(t *testing.T) {
	c := testCluster(t)
	// Function 1 filters out odd sequence numbers.
	c.RegisterFunction(1, func(u DataUnit) []DataUnit {
		if u.Seq%2 == 0 {
			return []DataUnit{u}
		}
		return nil
	})
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 100; i++ {
			in <- DataUnit{Seq: int64(i)}
		}
		close(in)
	}()
	for range out {
	}
	st, err := c.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Emitted[0] != 100 {
		t.Errorf("position 0 emitted %d, want 100", st.Emitted[0])
	}
	if st.Emitted[1] != 50 {
		t.Errorf("position 1 emitted %d, want 50 (filter)", st.Emitted[1])
	}
	if st.Emitted[2] != 50 || st.SinkEmitted != 50 {
		t.Errorf("sink emitted %d/%d, want 50", st.Emitted[2], st.SinkEmitted)
	}
	for pos, d := range st.Dropped {
		if d != 0 {
			t.Errorf("position %d dropped %d units without loss simulation", pos, d)
		}
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(id); err == nil {
		t.Error("Stats after close accepted")
	}
}

func TestSimulatedLossDropsUnits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.SimulateLoss = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, out, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	const units = 5000
	go func() {
		for i := 0; i < units; i++ {
			in <- DataUnit{Seq: int64(i)}
		}
		close(in)
	}()
	received := 0
	for range out {
		received++
	}
	st, err := c.Stats(id)
	if err != nil {
		t.Fatal(err)
	}
	totalDropped := int64(0)
	for _, d := range st.Dropped {
		totalDropped += d
	}
	if totalDropped == 0 {
		t.Error("loss simulation dropped nothing over 5000 units")
	}
	if int64(received)+totalDropped != units {
		t.Errorf("received %d + dropped %d != %d", received, totalDropped, units)
	}
	// Component loss rates are 0.1-1%: total loss over 3 hops must stay
	// in the low percent range.
	if totalDropped > units/10 {
		t.Errorf("dropped %d of %d — loss far above modelled rates", totalDropped, units)
	}
	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedLossDeterministic(t *testing.T) {
	runOnce := func() int64 {
		cfg := DefaultConfig()
		cfg.IPNodes = 256
		cfg.OverlayNodes = 32
		cfg.NumFunctions = 8
		cfg.SimulateLoss = true
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		graph := component.NewPathGraph([]component.FunctionID{0, 1})
		qosReq, resReq, bw := easyArgs(2)
		id, err := c.Find(graph, qosReq, resReq, bw)
		if err != nil {
			t.Fatal(err)
		}
		in, out, err := c.Process(id)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for i := 0; i < 2000; i++ {
				in <- DataUnit{Seq: int64(i)}
			}
			close(in)
		}()
		var n int64
		for range out {
			n++
		}
		return n
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Errorf("loss not deterministic: %d vs %d delivered", a, b)
	}
}

func TestSelfTuningAdjustsRatio(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.ProbingRatio = 0.2
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.EnableSelfTuning(0.95, 0); err == nil {
		t.Error("zero window accepted")
	}
	if err := c.EnableSelfTuning(0.95, 5); err != nil {
		t.Fatal(err)
	}
	start := c.ProbingRatio()

	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, _ := easyArgs(2)
	// Impossible bandwidth forces failures: the controller must raise
	// the ratio chasing the unreachable target.
	for i := 0; i < 15; i++ {
		_, err := c.Find(graph, qosReq, resReq, 1e12)
		if !errors.Is(err, ErrNoComposition) {
			t.Fatalf("unexpected: %v", err)
		}
	}
	if got := c.ProbingRatio(); got <= start {
		t.Errorf("ratio did not rise under failures: %v -> %v", start, got)
	}

	// Now all-success traffic relaxes it again.
	raised := c.ProbingRatio()
	for i := 0; i < 40; i++ {
		id, err := c.Find(graph, qosReq, resReq, 10)
		if err != nil {
			t.Fatalf("find %d: %v", i, err)
		}
		if err := c.Close(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ProbingRatio(); got >= raised {
		t.Errorf("ratio did not relax under success: %v -> %v", raised, got)
	}
}

func TestCloseWithoutDrainingOutput(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	in, _, err := c.Process(id)
	if err != nil {
		t.Fatal(err)
	}
	// Push far more units than the queues hold, never read the output,
	// and close: teardown must not deadlock.
	go func() {
		for i := 0; i < 1000; i++ {
			in <- DataUnit{Seq: int64(i)}
		}
		close(in)
	}()
	done := make(chan error, 1)
	go func() { done <- c.Close(id) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked on an undrained session")
	}
}

// TestSessionGaugesLifecycle checks the per-session observability
// plane: Find publishes phi and Eq. 3 standing gauges labeled by
// session, RefreshSessionGauges re-derives phi from current ledger
// residuals, and Close deletes the children.
func TestSessionGaugesLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.Registry = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	id, err := c.Find(graph, qosReq, resReq, bw)
	if err != nil {
		t.Fatal(err)
	}
	sess := sessionLabel(id)

	s := reg.Snapshot()
	find := func(vec string) (float64, bool) {
		for _, lv := range s.GaugeVecs[vec].Values {
			if len(lv.Labels) == 1 && lv.Labels[0] == sess {
				return lv.Value, true
			}
		}
		return 0, false
	}
	phi, ok := find("session.phi")
	if !ok || phi <= 0 {
		t.Fatalf("session.phi{%s} = %v, %v", sess, phi, ok)
	}
	observed, ok := find("session.qos.observed")
	if !ok || observed <= 0 || observed > 1 {
		// The session was admitted, so Eq. 3 holds: MaxRatio <= 1.
		t.Fatalf("session.qos.observed{%s} = %v, %v", sess, observed, ok)
	}
	if req, ok := find("session.qos.required"); !ok || req != 1 {
		t.Fatalf("session.qos.required{%s} = %v, %v", sess, req, ok)
	}

	// The quantile companion saw the same find.
	if q := s.Quantiles["runtime.find.latency_quantiles_ms"]; q.Count != 1 {
		t.Fatalf("find quantile count = %d, want 1", q.Count)
	}

	// A refresh recomputes phi against the live ledger; with this
	// session still the only load the value stays finite and positive.
	c.RefreshSessionGauges()
	if g := c.sessionPhi.Get(sess); g == nil || g.Value() <= 0 {
		t.Fatalf("refreshed phi gauge = %v", g)
	}

	if err := c.Close(id); err != nil {
		t.Fatal(err)
	}
	s = reg.Snapshot()
	for _, vec := range []string{"session.phi", "session.qos.observed", "session.qos.required"} {
		if _, ok := find(vec); ok {
			t.Errorf("%s{%s} survived Close", vec, sess)
		}
	}
}
