package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/harness/clock"
	"repro/internal/obs"
	"repro/internal/tuning"
)

// AdaptConfig tunes the re-composition controller.
type AdaptConfig struct {
	// Period is the monitoring tick interval; default 1s.
	Period time.Duration
	// Tolerance is the fractional headroom a session's observed phi gets
	// over its admission-time bound before the controller acts, and the
	// headroom a replacement composition's phi is allowed. Zero means
	// any excess triggers.
	Tolerance float64
	// MaxRetries bounds re-composition attempts per violation episode;
	// past it the episode is abandoned (counted) until the session
	// recovers or re-enters violation. Default 3.
	MaxRetries int
	// RetryBackoff is the delay before the first retry after a failed
	// attempt, doubling each retry. Default 2x Period.
	RetryBackoff time.Duration
	// Predictive enables acting on a Holt forecast of each session's phi
	// before the bound is actually crossed.
	Predictive bool
	// Holt smooths the per-session forecasts; zero value means defaults.
	Holt tuning.HoltConfig
	// ForecastSteps is how many ticks ahead predictive mode looks;
	// default 2.
	ForecastSteps int
}

// retryState is one session's in-flight violation episode.
type retryState struct {
	attempts int
	timer    clock.Timer
}

// AdaptController is the adaptation plane: it periodically refreshes
// every session's observed congestion, watches for drift past the
// admission-time phi bound via an obs.DriftMonitor, and answers each
// violation by re-composing the session make-before-break
// (Cluster.Recompose). When no better composition exists it backs off
// and retries on the harness clock, abandoning the episode after
// MaxRetries. In predictive mode a Holt forecaster per session triggers
// re-composition on projected violations before they happen.
type AdaptController struct {
	c       *Cluster
	cfg     AdaptConfig
	clk     clock.Clock
	monitor *obs.DriftMonitor

	migrations *obs.Counter // successful drift-triggered migrations
	preemptive *obs.Counter // successful forecast-triggered migrations
	failures   *obs.Counter // attempts that found nothing better
	abandonedC *obs.Counter // episodes dropped after MaxRetries

	mu          sync.Mutex
	retries     map[SessionID]*retryState
	forecasters map[SessionID]*tuning.Holt
	timer       clock.Timer
	stopped     bool
}

// EnableAdaptation builds the cluster's re-composition controller and
// installs its tolerance as the Recompose acceptance headroom. Call
// Start on the returned controller to begin ticking, or Step to drive
// it manually (deterministic harness). Requires a Registry (the drift
// monitor reads the session gauge vectors).
func (c *Cluster) EnableAdaptation(cfg AdaptConfig) (*AdaptController, error) {
	if c.cfg.Registry == nil {
		return nil, errors.New("runtime: adaptation requires a Registry")
	}
	if cfg.Tolerance < 0 {
		return nil, fmt.Errorf("runtime: negative adaptation tolerance %v", cfg.Tolerance)
	}
	if cfg.Period <= 0 {
		cfg.Period = time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * cfg.Period
	}
	if cfg.ForecastSteps <= 0 {
		cfg.ForecastSteps = 2
	}
	if cfg.Holt == (tuning.HoltConfig{}) {
		cfg.Holt = tuning.DefaultHoltConfig()
	} else if _, err := tuning.NewHolt(cfg.Holt); err != nil {
		return nil, err
	}

	c.mu.Lock()
	c.adaptTol = cfg.Tolerance
	c.mu.Unlock()

	a := &AdaptController{
		c:           c,
		cfg:         cfg,
		clk:         c.clock,
		migrations:  c.cfg.Registry.Counter("adapt.migrations"),
		preemptive:  c.cfg.Registry.Counter("adapt.preemptive_migrations"),
		failures:    c.cfg.Registry.Counter("adapt.recompose_failures"),
		abandonedC:  c.cfg.Registry.Counter("adapt.abandoned"),
		retries:     make(map[SessionID]*retryState),
		forecasters: make(map[SessionID]*tuning.Holt),
	}
	a.monitor = obs.NewDriftMonitor(obs.DriftConfig{
		Observed:  c.sessionPhi,
		Required:  c.sessionPhiReq,
		Tolerance: cfg.Tolerance,
		Registry:  c.cfg.Registry,
		Tracer:    c.cfg.Tracer,
		OnDrift:   a.onDrift,
	})
	return a, nil
}

// Step runs one adaptation tick synchronously: refresh observed phi,
// feed the forecasters (predictive mode), then let the drift monitor
// report transitions — its OnDrift callback drives re-composition.
func (a *AdaptController) Step() {
	a.c.RefreshSessionGauges()
	if a.cfg.Predictive {
		a.forecastStep()
	}
	a.monitor.Tick()
}

// Start begins ticking every Period on the cluster clock. Under a
// Virtual clock ticks run synchronously on the advancing goroutine, so
// simulated adaptation schedules are deterministic.
func (a *AdaptController) Start() {
	a.mu.Lock()
	if a.timer != nil || a.stopped {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	a.arm()
}

func (a *AdaptController) arm() {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.timer = a.clk.AfterFunc(a.cfg.Period, func() {
		a.Step()
		a.arm()
	})
	a.mu.Unlock()
}

// Stop cancels future ticks and every pending retry. Idempotent.
func (a *AdaptController) Stop() {
	a.mu.Lock()
	a.stopped = true
	t := a.timer
	a.timer = nil
	ids := make([]SessionID, 0, len(a.retries))
	for id := range a.retries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pending := make([]*retryState, 0, len(ids))
	for _, id := range ids {
		pending = append(pending, a.retries[id])
		delete(a.retries, id)
	}
	a.mu.Unlock()
	if t != nil {
		t.Stop()
	}
	for _, rs := range pending {
		if rs.timer != nil {
			rs.timer.Stop()
		}
	}
}

// onDrift is the monitor callback: violations trigger an attempt,
// recoveries clear any pending retry episode.
func (a *AdaptController) onDrift(ev obs.DriftEvent) {
	id, err := strconv.ParseInt(ev.Session, 10, 64)
	if err != nil {
		return // not a session gauge label
	}
	if ev.Exceeded {
		a.attempt(SessionID(id), a.migrations)
	} else {
		a.clearRetry(SessionID(id))
	}
}

// attempt re-composes the session once, crediting onSuccess, and on
// ErrNoBetterComposition schedules a backed-off retry. Reports whether
// the migration happened.
func (a *AdaptController) attempt(id SessionID, onSuccess *obs.Counter) bool {
	err := a.c.Recompose(id)
	switch {
	case err == nil:
		onSuccess.Inc()
		a.clearRetry(id)
		return true
	case errors.Is(err, ErrUnknownSession):
		a.clearRetry(id) // closed between tick and attempt
		return false
	default:
		// No better composition (or a racing migration failed feasibility):
		// the session keeps its current composition; back off and retry.
		a.failures.Inc()
		a.scheduleRetry(id)
		return false
	}
}

// scheduleRetry arms the episode's next attempt with doubling backoff,
// abandoning the episode past MaxRetries.
func (a *AdaptController) scheduleRetry(id SessionID) {
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	rs := a.retries[id]
	if rs == nil {
		rs = &retryState{}
		a.retries[id] = rs
	}
	rs.attempts++
	if rs.attempts > a.cfg.MaxRetries {
		delete(a.retries, id)
		a.mu.Unlock()
		a.abandonedC.Inc()
		return
	}
	delay := a.cfg.RetryBackoff << (rs.attempts - 1)
	rs.timer = a.clk.AfterFunc(delay, func() { a.retry(id) })
	a.mu.Unlock()
}

// retry re-checks the session before attempting again: if it recovered
// on its own (or closed) the episode simply ends — the monitor reports
// the recovery on its next tick.
func (a *AdaptController) retry(id SessionID) {
	a.mu.Lock()
	stopped := a.stopped
	a.mu.Unlock()
	if stopped {
		return
	}
	if !a.inViolation(id) {
		a.clearRetry(id)
		return
	}
	a.attempt(id, a.migrations)
}

// inViolation recomputes the session's current standing directly from
// the ledger (not the gauges, which may be a tick stale).
func (a *AdaptController) inViolation(id SessionID) bool {
	for _, s := range a.c.AuditSessions() {
		if s.ID == id {
			return s.ObservedPhi > s.RequiredPhi*(1+a.cfg.Tolerance)
		}
	}
	return false
}

func (a *AdaptController) clearRetry(id SessionID) {
	a.mu.Lock()
	rs := a.retries[id]
	delete(a.retries, id)
	a.mu.Unlock()
	if rs != nil && rs.timer != nil {
		rs.timer.Stop()
	}
}

// forecastStep feeds each live session's observed phi to its Holt
// forecaster and pre-emptively re-composes sessions whose projected phi
// crosses the bound while their current phi is still compliant (actual
// violations are the monitor's job, with retry semantics).
func (a *AdaptController) forecastStep() {
	audits := a.c.AuditSessions()
	live := make(map[SessionID]bool, len(audits))
	for _, s := range audits {
		live[s.ID] = true
		a.mu.Lock()
		h := a.forecasters[s.ID]
		if h == nil {
			h, _ = tuning.NewHolt(a.cfg.Holt) // cfg validated at Enable
			a.forecasters[s.ID] = h
		}
		a.mu.Unlock()
		h.Observe(s.ObservedPhi)
		bound := s.RequiredPhi * (1 + a.cfg.Tolerance)
		if s.ObservedPhi <= bound && h.Forecast(a.cfg.ForecastSteps) > bound {
			if a.attempt(s.ID, a.preemptive) {
				// Re-prime on the new composition: the old trend no
				// longer describes this session.
				a.mu.Lock()
				delete(a.forecasters, s.ID)
				a.mu.Unlock()
			}
		}
	}
	a.mu.Lock()
	for id := range a.forecasters {
		if !live[id] {
			delete(a.forecasters, id)
		}
	}
	a.mu.Unlock()
}
