package runtime

import (
	"sync"
	"testing"

	"repro/internal/component"
)

// TestPipelineMultiSinkSingleClose fabricates a two-sink session —
// Graph.Validate rejects the shape today, so the panic was latent — and
// checks the shared output channel is closed exactly once after both
// sinks drain. Under the old per-goroutine close this panicked with
// "close of closed channel".
func TestPipelineMultiSinkSingleClose(t *testing.T) {
	c := testCluster(t)
	g := &component.Graph{
		Functions: []component.FunctionID{0, 1, 2},
		Edges:     []component.Edge{{From: 0, To: 1}, {From: 0, To: 2}},
	}
	s := &session{
		id:      999,
		request: &component.Request{Graph: g},
		running: true,
		procFn:  make([]ProcessorFunc, 3),
		perComp: make([]int64, 3),
		dropped: make([]int64, 3),
		paceNs:  make([]int64, 3),
		lossThr: make([]int64, 3),
		input:   make(chan DataUnit, 8),
		output:  make(chan DataUnit, 16),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.startPipeline(s)

	const units = 5
	go func() {
		for i := 0; i < units; i++ {
			s.input <- DataUnit{Seq: int64(i)}
		}
		close(s.input)
	}()
	var emitted int
	for range s.output { // ranges until the single close
		emitted++
	}
	<-s.done
	if emitted != 2*units {
		t.Fatalf("sinks emitted %d units, want %d", emitted, 2*units)
	}
}

// TestPipelineMultiSinkForcedTeardown drives the same two-sink shape
// through the forced-quit path: closing quit with the input still open
// must also resolve to exactly one output close.
func TestPipelineMultiSinkForcedTeardown(t *testing.T) {
	c := testCluster(t)
	g := &component.Graph{
		Functions: []component.FunctionID{0, 1, 2},
		Edges:     []component.Edge{{From: 0, To: 1}, {From: 0, To: 2}},
	}
	s := &session{
		id:      998,
		request: &component.Request{Graph: g},
		running: true,
		procFn:  make([]ProcessorFunc, 3),
		perComp: make([]int64, 3),
		dropped: make([]int64, 3),
		paceNs:  make([]int64, 3),
		lossThr: make([]int64, 3),
		input:   make(chan DataUnit, 8),
		output:  make(chan DataUnit, 16),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.startPipeline(s)
	s.input <- DataUnit{Seq: 1}
	s.quitOnce.Do(func() { close(s.quit) })
	go func() {
		for range s.output {
		}
	}()
	<-s.done
}

// TestShutdownCloseRace races Shutdown against individual Closes (and a
// concurrent Find): Shutdown must tolerate sessions vanishing under it,
// stay idempotent, and leave the ledger empty. Run under -race in CI.
func TestShutdownCloseRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}

	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)
	var ids []SessionID
	for i := 0; i < 8; i++ {
		id, err := c.Find(graph, qosReq, resReq, bw)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id SessionID) {
			defer wg.Done()
			_ = c.Close(id) // either this or Shutdown wins; both are fine
		}(id)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.Shutdown()
	}()
	go func() {
		defer wg.Done()
		// A Find racing Shutdown either composes (and is then closed by
		// nobody — so close it here) or is refused.
		if id, err := c.Find(graph, qosReq, resReq, bw); err == nil {
			_ = c.Close(id)
		}
	}()
	wg.Wait()

	c.Shutdown() // idempotent
	if got := c.ActiveSessions(); got != 0 {
		t.Fatalf("ActiveSessions after shutdown = %d", got)
	}
	if _, err := c.Find(graph, qosReq, resReq, bw); err == nil {
		t.Fatal("Find succeeded on a shut-down cluster")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := c.ledger.ActiveSessions(); got != 0 {
		t.Fatalf("ledger sessions after shutdown = %d", got)
	}
}
