package runtime

import (
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

// TestPropertyPathPipelinePreservesUnits: identity pipelines of random
// length deliver every unit exactly once, in order.
func TestPropertyPathPipelinePreservesUnits(t *testing.T) {
	c := testCluster(t)
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		n := 2 + rng.Intn(4)
		fns := make([]component.FunctionID, n)
		for i, v := range rng.Perm(8)[:n] {
			fns[i] = component.FunctionID(v)
		}
		graph := component.NewPathGraph(fns)
		qosReq, _, bw := easyArgs(n)
		resReq := makeRes(n)
		id, err := c.Find(graph, qosReq, resReq, bw)
		if err != nil {
			t.Logf("find: %v", err)
			return false
		}
		in, out, err := c.Process(id)
		if err != nil {
			return false
		}
		units := 20 + rng.Intn(80)
		go func() {
			for i := 0; i < units; i++ {
				in <- DataUnit{Seq: int64(i)}
			}
			close(in)
		}()
		got := 0
		ordered := true
		for u := range out {
			if u.Seq != int64(got) {
				ordered = false
			}
			got++
		}
		if err := c.Close(id); err != nil {
			return false
		}
		return got == units && ordered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func makeRes(n int) []qos.Resources {
	res := make([]qos.Resources, n)
	for i := range res {
		res[i] = qos.Resources{CPU: 2, Memory: 20}
	}
	return res
}

// TestUnitHashUniform sanity-checks the loss hash: over many sequence
// numbers the sub-threshold fraction approximates the probability.
func TestUnitHashUniform(t *testing.T) {
	p := 0.05
	threshold := uint32(p * float64(1<<32-1))
	hits := 0
	const n = 200000
	for seq := int64(0); seq < n; seq++ {
		if unitHash(seq, 3) < threshold {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.9*p || got > 1.1*p {
		t.Errorf("hash hit rate = %v, want ~%v", got, p)
	}
}

// TestNoGoroutineLeaks: repeated session lifecycles (graceful and
// forced) must not accumulate goroutines.
func TestNoGoroutineLeaks(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)

	runOne := func(graceful bool) {
		id, err := c.Find(graph, qosReq, resReq, bw)
		if err != nil {
			t.Fatal(err)
		}
		in, out, err := c.Process(id)
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			for i := 0; i < 50; i++ {
				in <- DataUnit{Seq: int64(i)}
			}
			if graceful {
				close(in)
			}
		}()
		if graceful {
			for range out {
			}
		}
		if err := c.Close(id); err != nil {
			t.Fatal(err)
		}
	}

	runOne(true) // warm up
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		runOne(i%2 == 0)
	}
	// Give forced-teardown stragglers a moment to exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+4 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d over 20 session lifecycles", before, runtime.NumGoroutine())
}
