package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/component"
	"repro/internal/core"
	"repro/internal/discovery"
	"repro/internal/qos"
)

// FindSpec describes one composition request in a FindBatch call.
type FindSpec struct {
	// Tenant and Weight carry the request's tenant identity, as in
	// FindRequest: quota-charged before the probe, typed *QuotaError
	// rejection when over budget.
	Tenant        string
	Weight        float64
	Graph         *component.Graph
	QoSReq        qos.Vector
	ResReq        []qos.Resources
	BandwidthKbps float64
}

// FindResult is one FindBatch outcome, parallel to the input specs.
// Err is nil on success, ErrNoComposition when no qualified composition
// exists, or the underlying probe/commit error.
type FindResult struct {
	Session SessionID
	Err     error
}

// FindBatch composes independent requests concurrently: up to workers
// probe walks run in parallel against the shared ledger and global
// state, which are switched to their opt-in locked mode on the first
// call. Each worker drives its own composer (composers reuse per-walk
// scratch state and are not safe for concurrent use); commits and
// session registration serialize on the cluster lock, exactly as serial
// Find calls would.
//
// Request IDs and client nodes are drawn sequentially up front, so a
// batch consumes the cluster's RNG exactly like the same sequence of
// Find calls. The admission outcomes themselves can differ from serial
// execution — concurrent requests genuinely contend for holds, which is
// the behaviour being exercised. workers <= 0 selects GOMAXPROCS.
func (c *Cluster) FindBatch(specs []FindSpec, workers int) ([]FindResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]FindResult, len(specs))

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("runtime: cluster is shut down")
	}
	reqs := make([]*component.Request, len(specs))
	for i, spec := range specs {
		c.nextReq++
		reqs[i] = &component.Request{
			ID:           c.nextReq,
			Graph:        spec.Graph,
			QoSReq:       spec.QoSReq,
			ResReq:       append([]qos.Resources(nil), spec.ResReq...),
			BandwidthReq: spec.BandwidthKbps,
			Client:       c.rng.Intn(c.mesh.NumNodes()),
			Duration:     time.Hour,
			Tenant:       spec.Tenant,
			Weight:       spec.Weight,
		}
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = c.rng.Int63()
	}
	ccfg := c.composer.Config()
	c.mu.Unlock()

	// Locked mode is idempotent and one-way; serial Finds keep working,
	// they just pay an uncontended lock.
	c.ledger.EnableLocking()
	c.global.EnableLocking()

	composers := make([]*core.Composer, workers)
	for w := range composers {
		env := core.Env{
			Mesh:     c.mesh,
			Catalog:  c.catalog,
			Registry: discovery.NewRegistry(c.catalog, c.mesh.NumNodes(), c.counters),
			Ledger:   c.ledger,
			Global:   c.global,
			Counters: c.counters,
			Now:      c.now,
			Rand:     rand.New(rand.NewSource(seeds[w])),
			Tracer:   c.cfg.Tracer,
		}
		composer, err := core.NewComposer(env, ccfg)
		if err != nil {
			return nil, err
		}
		composers[w] = composer
	}

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(composer *core.Composer) {
			defer wg.Done()
			for i := range work {
				results[i] = c.findOne(composer, reqs[i])
			}
		}(composers[w])
	}
	for i := range specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return results, nil
}

// findOne runs one batched request on a worker composer: charge the
// tenant's quota, probe without the cluster lock, then commit and
// register under it. Charging before the (unlocked) probe is what keeps
// concurrent workers from oversubscribing a tenant: the quota table is
// its own critical section, and a worker whose probe fails refunds its
// reservation.
func (c *Cluster) findOne(composer *core.Composer, req *component.Request) FindResult {
	demand := quotaDemand(req.Graph, req.ResReq, req.BandwidthReq)
	if qerr := c.quota.charge(req.Tenant, demand); qerr != nil {
		c.quotaRejections.With(tenantLabel(req.Tenant)).Inc()
		return FindResult{Err: qerr}
	}
	findStart := c.now()
	c.finds.Inc()
	outcome, err := composer.Probe(req)
	c.findLatencyMs.Observe(float64(c.now()-findStart) / float64(time.Millisecond))
	if err != nil {
		c.quota.refund(req.Tenant, demand)
		c.findFailures.Inc()
		return FindResult{Err: err}
	}
	if !outcome.Success() {
		c.quota.refund(req.Tenant, demand)
		c.findFailures.Inc()
		c.mu.Lock()
		c.observeFind(false)
		c.mu.Unlock()
		return FindResult{Err: ErrNoComposition}
	}
	if err := composer.Commit(outcome); err != nil {
		composer.Abort(req.ID)
		c.quota.refund(req.Tenant, demand)
		c.findFailures.Inc()
		c.mu.Lock()
		c.observeFind(false)
		c.mu.Unlock()
		return FindResult{Err: fmt.Errorf("runtime: commit: %w", err)}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.observeFind(true)
	c.nextID++
	id := c.nextID
	procFn := make([]ProcessorFunc, req.Graph.NumPositions())
	for pos, f := range req.Graph.Functions {
		procFn[pos] = c.functions[f] // nil = identity
	}
	c.sessions[id] = &session{
		id:          id,
		request:     req,
		comp:        outcome.Best,
		tenant:      req.Tenant,
		quotaCharge: demand,
		requiredPhi: outcome.Best.Phi,
		procFn:      procFn,
		perComp:     make([]int64, req.Graph.NumPositions()),
		dropped:     make([]int64, req.Graph.NumPositions()),
	}
	c.activeSessions.Set(float64(len(c.sessions)))
	if req.Tenant != "" {
		sess := sessionLabel(id)
		c.sessionTenant.With(sess, req.Tenant).Set(req.PhiWeight())
		c.tenantSessions.With(req.Tenant).Set(float64(c.quota.usageSessions(req.Tenant)))
	}
	return FindResult{Session: id}
}
