package runtime

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/component"
	"repro/internal/obs"
	"repro/internal/qos"
)

func TestQuotaSessionCapAndRefund(t *testing.T) {
	c := testCluster(t)
	c.SetTenantQuota("acme", TenantQuota{MaxSessions: 2})
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	find := func() (SessionID, error) {
		return c.FindApp(FindRequest{Tenant: "acme", Graph: graph, QoSReq: qosReq, ResReq: resReq, BandwidthKbps: bw})
	}

	var ids []SessionID
	for i := 0; i < 2; i++ {
		id, err := find()
		if err != nil {
			t.Fatalf("admission %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	_, err := find()
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("third admission error = %v, want ErrQuotaExceeded", err)
	}
	var qerr *QuotaError
	if !errors.As(err, &qerr) {
		t.Fatalf("rejection %v is not a *QuotaError", err)
	}
	if qerr.Tenant != "acme" || qerr.Dimension != "sessions" {
		t.Errorf("QuotaError = %+v, want tenant acme / dimension sessions", qerr)
	}
	if got := c.TenantUsageFor("acme").Sessions; got != 2 {
		t.Errorf("usage sessions = %d, want 2", got)
	}

	// Close refunds; admission opens up again.
	if err := c.Close(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := find(); err != nil {
		t.Fatalf("post-close admission: %v", err)
	}
}

func TestQuotaResourceDimensions(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2) // 2 x {CPU:5, Memory:50}, bw 50 x 1 edge

	cases := []struct {
		dimension string
		quota     TenantQuota
	}{
		{"cpu", TenantQuota{MaxCPU: 9}},
		{"memory", TenantQuota{MaxMemory: 99}},
		{"bandwidth", TenantQuota{MaxBandwidthKbps: 49}},
	}
	for _, tc := range cases {
		tenant := "cap-" + tc.dimension
		c.SetTenantQuota(tenant, tc.quota)
		_, err := c.FindApp(FindRequest{Tenant: tenant, Graph: graph, QoSReq: qosReq, ResReq: resReq, BandwidthKbps: bw})
		var qerr *QuotaError
		if !errors.As(err, &qerr) || qerr.Dimension != tc.dimension {
			t.Errorf("%s cap: err = %v, want *QuotaError on %q", tc.dimension, err, tc.dimension)
		}
	}
}

func TestQuotaRefundedOnCompositionFailure(t *testing.T) {
	c := testCluster(t)
	c.SetTenantQuota("acme", TenantQuota{MaxSessions: 5})
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, _, bw := easyArgs(2)
	// Impossible resource demand: probe fails, charge must be refunded.
	res := []qos.Resources{{CPU: 1e9}, {CPU: 1e9}}
	if _, err := c.FindApp(FindRequest{Tenant: "acme", Graph: graph, QoSReq: qosReq, ResReq: res, BandwidthKbps: bw}); !errors.Is(err, ErrNoComposition) {
		t.Fatalf("err = %v, want ErrNoComposition", err)
	}
	if usage := c.TenantUsageFor("acme"); usage != (TenantUsage{}) {
		t.Errorf("usage after failed probe = %+v, want zero", usage)
	}
}

// TestFindBatchQuotaNeverOversubscribed drives many concurrent
// admissions from one tenant through FindBatch (run under -race in CI):
// the session quota must never be exceeded no matter how the workers
// interleave, and rejected specs must surface the typed quota error.
func TestFindBatchQuotaNeverOversubscribed(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	cfg.Registry = reg
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)

	const cap, specsN = 6, 32
	c.SetTenantQuota("burst", TenantQuota{MaxSessions: cap})
	qosReq, resReq, bw := easyArgs(2)
	specs := make([]FindSpec, specsN)
	for i := range specs {
		specs[i] = FindSpec{
			Tenant:        "burst",
			Graph:         component.NewPathGraph([]component.FunctionID{0, 1}),
			QoSReq:        qosReq,
			ResReq:        resReq,
			BandwidthKbps: bw,
		}
	}
	results, err := c.FindBatch(specs, 8)
	if err != nil {
		t.Fatal(err)
	}

	var admitted, quotaRejected int
	for i, r := range results {
		switch {
		case r.Err == nil:
			admitted++
		case errors.Is(r.Err, ErrQuotaExceeded):
			var qerr *QuotaError
			if !errors.As(r.Err, &qerr) {
				t.Fatalf("spec %d: quota rejection %v is not typed", i, r.Err)
			}
			quotaRejected++
		case errors.Is(r.Err, ErrNoComposition):
			// Cluster contention, not quota — allowed.
		default:
			t.Fatalf("spec %d: unexpected error %v", i, r.Err)
		}
	}
	if admitted > cap {
		t.Fatalf("admitted %d sessions past quota %d", admitted, cap)
	}
	if quotaRejected == 0 {
		t.Fatalf("no typed quota rejections across %d specs over a %d cap", specsN, cap)
	}
	if usage := c.TenantUsageFor("burst").Sessions; usage != admitted {
		t.Errorf("usage sessions = %d, admitted = %d", usage, admitted)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The tenant gauge tracks live sessions; rejections are counted.
	snap := reg.Snapshot()
	if got, ok := vecValue(snap.GaugeVecs["runtime.tenant.sessions"], "burst"); !ok || got != float64(admitted) {
		t.Errorf("tenant sessions gauge = %v (present=%v), want %d", got, ok, admitted)
	}
	if got, ok := vecValue(snap.CounterVecs["runtime.quota_rejections"], "burst"); !ok || got != float64(quotaRejected) {
		t.Errorf("quota rejection counter = %v (present=%v), want %d", got, ok, quotaRejected)
	}
}

func TestHeterogeneousNodeCapacities(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 16
	cfg.NumFunctions = 8
	caps := make([]qos.Resources, 16)
	for i := range caps {
		caps[i] = qos.Resources{CPU: 50 + float64(i), Memory: 500 + float64(i)}
	}
	cfg.NodeCapacities = caps
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	for i, want := range caps {
		if got := c.NodeCapacity(i); got != want {
			t.Fatalf("node %d capacity = %+v, want %+v", i, got, want)
		}
	}

	cfg.NodeCapacities = caps[:3]
	if _, err := NewCluster(cfg); err == nil {
		t.Error("NewCluster accepted a NodeCapacities length mismatch")
	}
}

// vecValue finds the snapshot value of a single-label vector child.
func vecValue(v obs.VecSnapshot, label string) (float64, bool) {
	for _, lv := range v.Values {
		if len(lv.Labels) == 1 && lv.Labels[0] == label {
			return lv.Value, true
		}
	}
	return 0, false
}

func TestQuotaErrorMessage(t *testing.T) {
	err := &QuotaError{Tenant: "acme", Dimension: "cpu", Used: 90, Requested: 20, Limit: 100}
	want := fmt.Sprintf("runtime: tenant %q cpu quota exceeded: used 90 + requested 20 > limit 100", "acme")
	if err.Error() != want {
		t.Errorf("Error() = %q, want %q", err.Error(), want)
	}
}

// BenchmarkQuotaChargeRefund measures the admission-path quota check:
// one charge + refund round trip against a bounded quota, the exact
// work FindApp adds per request. Gated in CI against the committed
// baseline; the path must stay a map lookup plus four comparisons.
func BenchmarkQuotaChargeRefund(b *testing.B) {
	q := newQuotaTable()
	q.quotas["bench"] = TenantQuota{MaxSessions: 1 << 30, MaxCPU: 1e18, MaxMemory: 1e18, MaxBandwidthKbps: 1e18}
	demand := TenantUsage{Sessions: 1, CPU: 12, Memory: 120, BandwidthKbps: 60}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.charge("bench", demand); err != nil {
			b.Fatal(err)
		}
		q.refund("bench", demand)
	}
}

// BenchmarkQuotaReject measures the rejection path: the typed error
// allocation is the only permitted allocation.
func BenchmarkQuotaReject(b *testing.B) {
	q := newQuotaTable()
	q.quotas["bench"] = TenantQuota{MaxSessions: 1}
	q.usage["bench"] = TenantUsage{Sessions: 1}
	demand := TenantUsage{Sessions: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.charge("bench", demand); err == nil {
			b.Fatal("charge over quota succeeded")
		}
	}
}
