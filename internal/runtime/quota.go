package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/component"
	"repro/internal/qos"
)

// ErrQuotaExceeded is the sentinel every quota rejection unwraps to:
// errors.Is(err, ErrQuotaExceeded) distinguishes "your tenant is over
// budget" from ErrNoComposition's "the cluster has no room".
var ErrQuotaExceeded = errors.New("runtime: tenant quota exceeded")

// TenantQuota caps one tenant's aggregate admission footprint. Zero
// fields are unlimited; the zero value admits everything.
type TenantQuota struct {
	// MaxSessions caps concurrently live sessions.
	MaxSessions int
	// MaxCPU and MaxMemory cap the summed per-position resource
	// requirements of live sessions.
	MaxCPU, MaxMemory float64
	// MaxBandwidthKbps caps the summed per-virtual-link bandwidth
	// demand (request bandwidth x graph edges) of live sessions.
	MaxBandwidthKbps float64
}

// QuotaError is the typed admission rejection: which tenant tripped
// which quota dimension, and by how much.
type QuotaError struct {
	Tenant    string
	Dimension string // "sessions", "cpu", "memory", "bandwidth"
	Used      float64
	Requested float64
	Limit     float64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("runtime: tenant %q %s quota exceeded: used %g + requested %g > limit %g",
		e.Tenant, e.Dimension, e.Used, e.Requested, e.Limit)
}

// Unwrap makes errors.Is(err, ErrQuotaExceeded) hold.
func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// TenantUsage is a tenant's live admission footprint in quota units.
type TenantUsage struct {
	Sessions      int
	CPU, Memory   float64
	BandwidthKbps float64
}

// quotaTable tracks per-tenant quotas and usage. It has its own mutex,
// separate from Cluster.mu, because FindBatch workers must charge
// quotas before their (unlocked) probes: the charge-then-probe order is
// what makes oversubscription impossible under concurrency — a worker
// that loses its probe refunds, it never admits beyond the cap.
type quotaTable struct {
	mu     sync.Mutex
	quotas map[string]TenantQuota
	usage  map[string]TenantUsage
}

func newQuotaTable() *quotaTable {
	return &quotaTable{
		quotas: make(map[string]TenantQuota),
		usage:  make(map[string]TenantUsage),
	}
}

// quotaDemand converts a request's requirements into quota units.
func quotaDemand(graph *component.Graph, resReq []qos.Resources, bandwidthKbps float64) TenantUsage {
	u := TenantUsage{Sessions: 1}
	for _, r := range resReq {
		u.CPU += r.CPU
		u.Memory += r.Memory
	}
	u.BandwidthKbps = bandwidthKbps * float64(len(graph.Edges))
	return u
}

// charge reserves demand against the tenant's quota, or reports the
// first exceeded dimension (checked in a fixed order so rejections are
// deterministic) without reserving anything. Tenants without a quota
// entry are unlimited but still metered.
func (q *quotaTable) charge(tenant string, demand TenantUsage) *QuotaError {
	q.mu.Lock()
	defer q.mu.Unlock()
	limit := q.quotas[tenant]
	used := q.usage[tenant]
	switch {
	case limit.MaxSessions > 0 && used.Sessions+demand.Sessions > limit.MaxSessions:
		return &QuotaError{Tenant: tenant, Dimension: "sessions",
			Used: float64(used.Sessions), Requested: float64(demand.Sessions), Limit: float64(limit.MaxSessions)}
	case limit.MaxCPU > 0 && used.CPU+demand.CPU > limit.MaxCPU:
		return &QuotaError{Tenant: tenant, Dimension: "cpu",
			Used: used.CPU, Requested: demand.CPU, Limit: limit.MaxCPU}
	case limit.MaxMemory > 0 && used.Memory+demand.Memory > limit.MaxMemory:
		return &QuotaError{Tenant: tenant, Dimension: "memory",
			Used: used.Memory, Requested: demand.Memory, Limit: limit.MaxMemory}
	case limit.MaxBandwidthKbps > 0 && used.BandwidthKbps+demand.BandwidthKbps > limit.MaxBandwidthKbps:
		return &QuotaError{Tenant: tenant, Dimension: "bandwidth",
			Used: used.BandwidthKbps, Requested: demand.BandwidthKbps, Limit: limit.MaxBandwidthKbps}
	}
	used.Sessions += demand.Sessions
	used.CPU += demand.CPU
	used.Memory += demand.Memory
	used.BandwidthKbps += demand.BandwidthKbps
	q.usage[tenant] = used
	return nil
}

// refund returns a previously charged demand (failed probe, session
// close).
func (q *quotaTable) refund(tenant string, demand TenantUsage) {
	q.mu.Lock()
	defer q.mu.Unlock()
	used := q.usage[tenant]
	used.Sessions -= demand.Sessions
	used.CPU -= demand.CPU
	used.Memory -= demand.Memory
	used.BandwidthKbps -= demand.BandwidthKbps
	if used == (TenantUsage{}) {
		delete(q.usage, tenant)
		return
	}
	q.usage[tenant] = used
}

// usageSessions returns the tenant's live session count.
func (q *quotaTable) usageSessions(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.usage[tenant].Sessions
}

// SetTenantQuota installs (or, with the zero quota, clears) a tenant's
// admission cap. Lowering a quota below current usage only affects
// future admissions; live sessions are never evicted.
func (c *Cluster) SetTenantQuota(tenant string, quota TenantQuota) {
	c.quota.mu.Lock()
	defer c.quota.mu.Unlock()
	if quota == (TenantQuota{}) {
		delete(c.quota.quotas, tenant)
		return
	}
	c.quota.quotas[tenant] = quota
}

// TenantQuotaFor returns the tenant's configured quota (zero value =
// unlimited).
func (c *Cluster) TenantQuotaFor(tenant string) TenantQuota {
	c.quota.mu.Lock()
	defer c.quota.mu.Unlock()
	return c.quota.quotas[tenant]
}

// TenantUsageFor returns the tenant's live admission footprint.
func (c *Cluster) TenantUsageFor(tenant string) TenantUsage {
	c.quota.mu.Lock()
	defer c.quota.mu.Unlock()
	return c.quota.usage[tenant]
}

// Tenants lists tenants with live usage, sorted.
func (c *Cluster) Tenants() []string {
	c.quota.mu.Lock()
	defer c.quota.mu.Unlock()
	out := make([]string, 0, len(c.quota.usage))
	for t := range c.quota.usage {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
