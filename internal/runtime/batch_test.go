package runtime

import (
	"testing"

	"repro/internal/component"
)

// TestFindBatchComposesSessions drives concurrent composition through
// the locked ledger (exercised for data races under -race) and checks
// every admitted session is fully registered and usable.
func TestFindBatchComposesSessions(t *testing.T) {
	c := testCluster(t)
	graph := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	qosReq, resReq, bw := easyArgs(3)

	specs := make([]FindSpec, 12)
	for i := range specs {
		specs[i] = FindSpec{Graph: graph, QoSReq: qosReq, ResReq: resReq, BandwidthKbps: bw}
	}
	results, err := c.FindBatch(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	admitted := 0
	seen := make(map[SessionID]bool)
	for i, r := range results {
		if r.Err != nil {
			continue
		}
		admitted++
		if r.Session == 0 {
			t.Fatalf("result %d: admitted with zero session id", i)
		}
		if seen[r.Session] {
			t.Fatalf("duplicate session id %d", r.Session)
		}
		seen[r.Session] = true
		desc, err := c.Describe(r.Session)
		if err != nil {
			t.Fatalf("session %d not registered: %v", r.Session, err)
		}
		if len(desc.Components) != 3 {
			t.Fatalf("session %d has %d components", r.Session, len(desc.Components))
		}
	}
	// The cluster is lightly loaded; concurrent contention may reject a
	// few requests, but most must land.
	if admitted < len(specs)/2 {
		t.Fatalf("only %d/%d requests admitted", admitted, len(specs))
	}

	// Serial Find still works after the ledger switched to locked mode.
	if _, err := c.Find(graph, qosReq, resReq, bw); err != nil {
		t.Fatalf("serial Find after FindBatch: %v", err)
	}
	for id := range seen {
		if err := c.Close(id); err != nil {
			t.Fatalf("close %d: %v", id, err)
		}
	}
}

// TestFindBatchAfterShutdown must fail cleanly.
func TestFindBatchAfterShutdown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPNodes = 256
	cfg.OverlayNodes = 32
	cfg.NumFunctions = 8
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Shutdown()
	graph := component.NewPathGraph([]component.FunctionID{0, 1})
	qosReq, resReq, bw := easyArgs(2)
	if _, err := c.FindBatch([]FindSpec{{Graph: graph, QoSReq: qosReq, ResReq: resReq, BandwidthKbps: bw}}, 2); err == nil {
		t.Fatal("FindBatch on a shut-down cluster succeeded")
	}
}
