package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qos"
)

// startPipeline wires the session's component graph into goroutines and
// channels: one goroutine per composed component, one bounded channel
// per dependency edge (the component input queues of §2.1), a merger in
// front of join components, and duplication after split components.
func (c *Cluster) startPipeline(s *session) {
	graph := s.request.Graph
	n := graph.NumPositions()

	// One channel per graph edge.
	edgeCh := make([]chan DataUnit, len(graph.Edges))
	for i := range edgeCh {
		edgeCh[i] = make(chan DataUnit, c.cfg.QueueSize)
	}

	var wg sync.WaitGroup
	// sinkWg tracks sink goroutines: they share the single session
	// output channel, so none of them may close it directly — a closer
	// goroutine waits for all sinks and closes it exactly once. (With one
	// sink per graph this is equivalent to the sink closing it; with
	// several it prevents a close-of-closed-channel panic.)
	var sinkWg sync.WaitGroup
	for pos := 0; pos < n; pos++ {
		var ins []<-chan DataUnit
		var outs []chan<- DataUnit
		for i, e := range graph.Edges {
			if e.To == pos {
				ins = append(ins, edgeCh[i])
			}
			if e.From == pos {
				outs = append(outs, edgeCh[i])
			}
		}
		if len(ins) == 0 {
			ins = []<-chan DataUnit{s.input} // source reads the session input
		}
		isSink := len(outs) == 0
		if isSink {
			outs = []chan<- DataUnit{s.output}
			sinkWg.Add(1)
		}

		in := mergeStreams(&wg, s.quit, ins)
		fn := s.procFn[pos]

		wg.Add(1)
		go func(in <-chan DataUnit, outs []chan<- DataUnit, fn ProcessorFunc, pos int, isSink bool) {
			defer wg.Done()
			defer func() {
				if isSink {
					sinkWg.Done() // shared output closes via the closer
					return
				}
				for _, out := range outs {
					close(out) // edge channels have exactly one producer
				}
			}()
			for {
				var (
					unit DataUnit
					ok   bool
				)
				select {
				case unit, ok = <-in:
					if !ok {
						return // input flushed: graceful drain
					}
				case <-s.quit:
					return // forced teardown
				}
				// Pace and loss derive from the *current* composition:
				// loaded per unit so a migration flip retargets the
				// running pipeline without restarting it.
				if delay := time.Duration(atomic.LoadInt64(&s.paceNs[pos])); delay > 0 {
					c.clock.Sleep(delay)
				}
				if thr := uint32(atomic.LoadInt64(&s.lossThr[pos])); thr > 0 && unitHash(unit.Seq, pos) < thr {
					// Simulated overload drop (footnote 2 of the paper);
					// deterministic per (sequence, position).
					atomic.AddInt64(&s.dropped[pos], 1)
					continue
				}
				results := []DataUnit{unit}
				if fn != nil {
					results = fn(unit)
				}
				for _, r := range results {
					atomic.AddInt64(&s.perComp[pos], 1)
					if isSink {
						atomic.AddInt64(&s.processd, 1)
					}
					// Splits duplicate the unit to every outgoing branch;
					// quit unblocks sends into queues whose consumer has
					// already torn down.
					for _, out := range outs {
						select {
						case out <- r:
						case <-s.quit:
							return
						}
					}
				}
			}
		}(in, outs, fn, pos, isSink)
	}

	// The single closer for the shared session output: fires once every
	// sink goroutine has exited.
	go func() {
		sinkWg.Wait()
		close(s.output)
	}()

	// The drain watcher closes done once every component goroutine has
	// exited (all queues flushed).
	go func() {
		wg.Wait()
		close(s.done)
	}()
}

// setDataPlaneParams (re)derives each position's pacing sleep and loss
// threshold from the session's current composition, storing them
// atomically so a make-before-break flip retargets a live pipeline
// mid-stream. Caller holds c.mu.
func (c *Cluster) setDataPlaneParams(s *session) {
	for pos := range s.paceNs {
		atomic.StoreInt64(&s.paceNs[pos], int64(c.paceDelay(s, pos)))
		atomic.StoreInt64(&s.lossThr[pos], int64(c.lossThreshold(s, pos)))
	}
}

// mergeStreams funnels several input queues into one stream for join
// components. A single input passes through untouched. Forwarders abort
// on quit so a forced teardown cannot wedge them against a full merge
// channel.
func mergeStreams(wg *sync.WaitGroup, quit <-chan struct{}, ins []<-chan DataUnit) <-chan DataUnit {
	if len(ins) == 1 {
		return ins[0]
	}
	merged := make(chan DataUnit)
	var inner sync.WaitGroup
	for _, in := range ins {
		inner.Add(1)
		go func(in <-chan DataUnit) {
			defer inner.Done()
			for {
				var (
					unit DataUnit
					ok   bool
				)
				select {
				case unit, ok = <-in:
					if !ok {
						return
					}
				case <-quit:
					return
				}
				select {
				case merged <- unit:
				case <-quit:
					return
				}
			}
		}(in)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		inner.Wait()
		close(merged)
	}()
	return merged
}

// paceDelay converts a component's processing delay into a real sleep
// per data unit, scaled by the cluster's Pace factor.
func (c *Cluster) paceDelay(s *session, pos int) time.Duration {
	if c.cfg.Pace <= 0 {
		return 0
	}
	comp := c.catalog.Component(s.comp.Components[pos])
	return time.Duration(comp.QoS.Delay * c.cfg.Pace * float64(time.Millisecond))
}

// lossThreshold maps the component's loss probability onto the 32-bit
// hash space; 0 disables loss injection.
func (c *Cluster) lossThreshold(s *session, pos int) uint32 {
	if !c.cfg.SimulateLoss {
		return 0
	}
	comp := c.catalog.Component(s.comp.Components[pos])
	p := qos.LossProb(comp.QoS.LossCost)
	return uint32(p * float64(1<<32-1))
}

// unitHash mixes a unit's sequence number with the processing position
// (splitmix64 finaliser), giving deterministic per-unit loss decisions
// without shared random state.
func unitHash(seq int64, pos int) uint32 {
	x := uint64(seq)*0x9E3779B97F4A7C15 + uint64(pos)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return uint32(x >> 32)
}
