package workload

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

func testLibrary(t *testing.T) *component.Library {
	t.Helper()
	lib, err := component.GenerateLibrary(component.DefaultTemplateConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestNewGeneratorValidation(t *testing.T) {
	lib := testLibrary(t)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "nil library", mutate: func(c *Config) { c.Library = nil }},
		{name: "zero nodes", mutate: func(c *Config) { c.NumNodes = 0 }},
		{name: "bad delay range", mutate: func(c *Config) { c.DelayReqPerFunctionMin = 100; c.DelayReqPerFunctionMax = 50 }},
		{name: "zero cpu", mutate: func(c *Config) { c.CPUReqMin = 0 }},
		{name: "bad session range", mutate: func(c *Config) { c.SessionMin = time.Hour; c.SessionMax = time.Minute }},
		{name: "bad level", mutate: func(c *Config) { c.Level = QoSLevel(99) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(lib, 100)
			tt.mutate(&cfg)
			if _, err := NewGenerator(cfg, rand.New(rand.NewSource(2))); err == nil {
				t.Error("NewGenerator accepted invalid config")
			}
		})
	}
}

func TestGeneratorNextValidRequests(t *testing.T) {
	lib := testLibrary(t)
	cfg := DefaultConfig(lib, 100)
	gen, err := NewGenerator(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	seenIDs := make(map[int64]bool)
	for i := 0; i < 200; i++ {
		r := gen.Next()
		if err := r.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if seenIDs[r.ID] {
			t.Fatalf("duplicate request ID %d", r.ID)
		}
		seenIDs[r.ID] = true
		if r.Client < 0 || r.Client >= cfg.NumNodes {
			t.Fatalf("client %d out of range", r.Client)
		}
		if r.Duration < cfg.SessionMin || r.Duration > cfg.SessionMax {
			t.Fatalf("duration %v out of range", r.Duration)
		}
		n := float64(r.Graph.NumPositions())
		if r.QoSReq.Delay < cfg.DelayReqPerFunctionMin*n || r.QoSReq.Delay > cfg.DelayReqPerFunctionMax*n {
			t.Fatalf("delay requirement %v out of per-function range for %v positions", r.QoSReq.Delay, n)
		}
		for _, res := range r.ResReq {
			if res.CPU < cfg.CPUReqMin || res.CPU > cfg.CPUReqMax {
				t.Fatalf("CPU requirement %v out of range", res.CPU)
			}
			if res.Memory < cfg.MemoryReqMin || res.Memory > cfg.MemoryReqMax {
				t.Fatalf("memory requirement %v out of range", res.Memory)
			}
		}
		if r.BandwidthReq < cfg.BandwidthReqMin || r.BandwidthReq > cfg.BandwidthReqMax {
			t.Fatalf("bandwidth requirement %v out of range", r.BandwidthReq)
		}
	}
}

func TestQoSLevelOrdering(t *testing.T) {
	// Stricter levels must scale requirements down.
	if !(QoSVeryHigh.Scale() < QoSHigh.Scale() && QoSHigh.Scale() < QoSLow.Scale()) {
		t.Errorf("scales not ordered: low=%v high=%v veryhigh=%v",
			QoSLow.Scale(), QoSHigh.Scale(), QoSVeryHigh.Scale())
	}
	if QoSLow.String() != "low QoS" || QoSVeryHigh.String() != "very high QoS" {
		t.Errorf("level names: %q, %q", QoSLow.String(), QoSVeryHigh.String())
	}
}

func TestQoSLevelAffectsRequirements(t *testing.T) {
	lib := testLibrary(t)
	mean := func(level QoSLevel, seed int64) float64 {
		cfg := DefaultConfig(lib, 100)
		cfg.Level = level
		gen, err := NewGenerator(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := 0; i < 500; i++ {
			r := gen.Next()
			sum += r.QoSReq.Delay / float64(r.Graph.NumPositions())
		}
		return sum / 500
	}
	low, high, very := mean(QoSLow, 4), mean(QoSHigh, 4), mean(QoSVeryHigh, 4)
	if !(very < high && high < low) {
		t.Errorf("per-function delay requirements not ordered: low=%v high=%v veryhigh=%v", low, high, very)
	}
}

func TestLossRequirementIsCost(t *testing.T) {
	lib := testLibrary(t)
	gen, err := NewGenerator(DefaultConfig(lib, 50), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	r := gen.Next()
	// The requirement is stored as an additive loss cost; converting back
	// must give a sane probability.
	p := qos.LossProb(r.QoSReq.LossCost)
	if p <= 0 || p >= 1 {
		t.Errorf("loss requirement probability = %v", p)
	}
}

func TestNewArrivalsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tests := []struct {
		name   string
		phases []Phase
	}{
		{name: "empty", phases: nil},
		{name: "zero rate", phases: []Phase{{Until: time.Hour, RatePerMinute: 0}}},
		{name: "non-increasing", phases: []Phase{
			{Until: time.Hour, RatePerMinute: 1},
			{Until: time.Hour, RatePerMinute: 2},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewArrivals(tt.phases, rng); err == nil {
				t.Error("NewArrivals accepted invalid phases")
			}
		})
	}
}

func TestArrivalsRateAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, err := NewArrivals([]Phase{
		{Until: 50 * time.Minute, RatePerMinute: 40},
		{Until: 100 * time.Minute, RatePerMinute: 80},
		{Until: 150 * time.Minute, RatePerMinute: 60},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		at   time.Duration
		want float64
	}{
		{at: 0, want: 40},
		{at: 49 * time.Minute, want: 40},
		{at: 50 * time.Minute, want: 80},
		{at: 99 * time.Minute, want: 80},
		{at: 100 * time.Minute, want: 60},
		{at: 200 * time.Minute, want: 60}, // beyond the last phase
	}
	for _, tt := range tests {
		if got := a.RateAt(tt.at); got != tt.want {
			t.Errorf("RateAt(%v) = %v, want %v", tt.at, got, tt.want)
		}
	}
}

func TestArrivalsPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a, err := ConstantRate(60, rng) // one per second
	if err != nil {
		t.Fatal(err)
	}
	var t0 time.Duration
	n := 0
	for t0 < 100*time.Minute {
		t0 = a.NextAfter(t0)
		n++
	}
	// Expect ~6000 arrivals in 100 minutes; allow 5% sampling slack.
	if n < 5700 || n > 6300 {
		t.Errorf("arrivals in 100min = %d, want ~6000", n)
	}
}

func TestArrivalsStrictlyIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, err := ConstantRate(100000, rng) // extreme rate to stress the gap floor
	if err != nil {
		t.Fatal(err)
	}
	var t0 time.Duration
	for i := 0; i < 1000; i++ {
		t1 := a.NextAfter(t0)
		if t1 <= t0 {
			t.Fatalf("arrival %d not strictly after previous: %v <= %v", i, t1, t0)
		}
		t0 = t1
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	lib := testLibrary(t)
	draw := func() []int64 {
		gen, err := NewGenerator(DefaultConfig(lib, 100), rand.New(rand.NewSource(10)))
		if err != nil {
			t.Fatal(err)
		}
		var out []int64
		for i := 0; i < 50; i++ {
			r := gen.Next()
			out = append(out, int64(r.QoSReq.Delay*1e6), int64(r.Duration), int64(r.Client))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
	}
}
