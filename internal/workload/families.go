package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/faults"
	"repro/internal/qos"
)

// Family names a concurrent multi-application scenario family: a shape
// of competing-tenant load (and, for some families, of the cluster
// itself) that the harness sweeps seed-by-seed. Each family stresses a
// different interaction between tenants sharing one set of node/link
// residuals.
type Family int

// Scenario families.
const (
	// FamilyFlashCrowd gives one tenant a surge through the middle
	// third of the episode while the others are throttled so the
	// aggregate offered rate is conserved — pure contention shift.
	FamilyFlashCrowd Family = iota + 1
	// FamilyDiurnal staggers sinusoidal day/night curves across
	// tenants; phase offsets make the per-tick aggregate constant.
	FamilyDiurnal
	// FamilyChurn keeps rates flat but gives sessions very short
	// lifetimes, so admission runs against a rapidly recycling ledger.
	FamilyChurn
	// FamilyHetero runs flat load against heterogeneous node classes
	// (fast / slow / memory-constrained) instead of uniform capacity.
	FamilyHetero
	// FamilyZoneOutage runs flat load through correlated rack/zone
	// blackout windows drawn by faults.ZoneCrashes.
	FamilyZoneOutage
)

// Families lists every scenario family in definition order.
func Families() []Family {
	return []Family{FamilyFlashCrowd, FamilyDiurnal, FamilyChurn, FamilyHetero, FamilyZoneOutage}
}

// String names the family as CLI flags and reports spell it.
func (f Family) String() string {
	switch f {
	case FamilyFlashCrowd:
		return "flash-crowd"
	case FamilyDiurnal:
		return "diurnal"
	case FamilyChurn:
		return "churn"
	case FamilyHetero:
		return "hetero-nodes"
	case FamilyZoneOutage:
		return "zone-outage"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily resolves a CLI spelling back to its Family.
func ParseFamily(s string) (Family, error) {
	for _, f := range Families() {
		if f.String() == s {
			return f, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown family %q", s)
}

// TenantPlan is one tenant's share of a multi-application episode.
type TenantPlan struct {
	// Tenant is the tenant label ("t0", "t1", ...).
	Tenant string
	// Weight is the tenant's phi weight (1 = baseline priority).
	Weight float64
	// Rates[t] is the expected arrival count in tick t.
	Rates []float64
	// Arrivals[t] is the Poisson draw realised from Rates[t].
	Arrivals []int
	// Lifetime is how many ticks an admitted session lives before the
	// plan closes it.
	Lifetime int
}

// MultiAppPlanConfig parameterises NewMultiAppPlan.
type MultiAppPlanConfig struct {
	Family  Family
	Seed    int64
	Tenants int
	// Ticks is the episode length in admission rounds.
	Ticks int
	// Load is the base expected arrivals per tenant per tick; every
	// family conserves the aggregate Tenants*Load at each tick.
	Load float64
	// Tick is the virtual duration of one round (default 1s), used to
	// place outage windows on the clock.
	Tick time.Duration
	// NumNodes is the overlay size; required by the hetero-nodes and
	// zone-outage families.
	NumNodes int
	// NodeCapacity is the uniform per-node capacity the hetero family
	// scales per class.
	NodeCapacity qos.Resources
	// Zones partitions nodes for zone-outage (default 4).
	Zones int
}

// MultiAppPlan is a fully materialised multi-tenant episode: who
// arrives when, at what weight, on what cluster shape, under which
// outages. Plans are pure data — the same seed always yields a
// bit-identical plan, so harness runs replay exactly.
type MultiAppPlan struct {
	Family  Family
	Seed    int64
	Ticks   int
	Tick    time.Duration
	Tenants []TenantPlan
	// NodeClasses, when non-nil, overrides per-node capacity: entry i
	// is node i's capacity (hetero-nodes family).
	NodeClasses []qos.Resources
	// Outages, when non-nil, is the correlated blackout schedule
	// (zone-outage family).
	Outages []faults.Crash
	// Zones is the zone count Outages was drawn against.
	Zones int
}

// NewMultiAppPlan materialises one episode of the given family.
func NewMultiAppPlan(cfg MultiAppPlanConfig) (*MultiAppPlan, error) {
	if cfg.Family.String() == fmt.Sprintf("Family(%d)", int(cfg.Family)) {
		return nil, fmt.Errorf("workload: unknown family %d", int(cfg.Family))
	}
	if cfg.Tenants < 1 {
		return nil, fmt.Errorf("workload: Tenants %d < 1", cfg.Tenants)
	}
	if cfg.Ticks < 1 {
		return nil, fmt.Errorf("workload: Ticks %d < 1", cfg.Ticks)
	}
	if cfg.Load <= 0 || math.IsNaN(cfg.Load) || math.IsInf(cfg.Load, 0) {
		return nil, fmt.Errorf("workload: Load %v must be a positive finite rate", cfg.Load)
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	needNodes := cfg.Family == FamilyHetero || cfg.Family == FamilyZoneOutage
	if needNodes && cfg.NumNodes < 1 {
		return nil, fmt.Errorf("workload: family %s needs NumNodes >= 1", cfg.Family)
	}

	p := &MultiAppPlan{
		Family:  cfg.Family,
		Seed:    cfg.Seed,
		Ticks:   cfg.Ticks,
		Tick:    cfg.Tick,
		Tenants: make([]TenantPlan, cfg.Tenants),
	}
	for i := range p.Tenants {
		t := &p.Tenants[i]
		t.Tenant = fmt.Sprintf("t%d", i)
		t.Weight = 1
		t.Rates = rates(cfg.Family, i, cfg.Tenants, cfg.Ticks, cfg.Load)
		t.Lifetime = lifetime(cfg.Family, i, cfg.Ticks)
		if cfg.Family == FamilyDiurnal {
			// Staggered priorities make the weighted-phi objective
			// observable: higher-weight tenants see scaled congestion.
			t.Weight = 1 + 0.5*float64(i)
		}
	}

	switch cfg.Family {
	case FamilyHetero:
		base := cfg.NodeCapacity
		if base.CPU <= 0 || base.Memory <= 0 {
			base = qos.Resources{CPU: 100, Memory: 1000}
		}
		p.NodeClasses = make([]qos.Resources, cfg.NumNodes)
		for n := range p.NodeClasses {
			switch n % 3 {
			case 0: // fast
				p.NodeClasses[n] = base.Scale(2)
			case 1: // slow
				p.NodeClasses[n] = base.Scale(0.5)
			default: // memory-constrained
				p.NodeClasses[n] = qos.Resources{CPU: base.CPU, Memory: base.Memory * 0.25}
			}
		}
	case FamilyZoneOutage:
		zones := cfg.Zones
		if zones <= 0 {
			zones = 4
		}
		if zones > cfg.NumNodes {
			zones = cfg.NumNodes
		}
		p.Zones = zones
		window := time.Duration(cfg.Ticks) * cfg.Tick
		down := time.Duration(max(2, cfg.Ticks/6)) * cfg.Tick
		p.Outages = faults.ZoneCrashes(cfg.Seed, cfg.NumNodes, zones, 1, window, down)
	}

	// Arrival draws come last, tenant-major then tick, from one seeded
	// stream — a fixed draw order is what makes plans bit-replayable.
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(cfg.Family)<<32))
	for i := range p.Tenants {
		t := &p.Tenants[i]
		t.Arrivals = make([]int, cfg.Ticks)
		for tick := range t.Arrivals {
			t.Arrivals[tick] = poisson(rng, t.Rates[tick])
		}
	}
	return p, nil
}

// rates builds tenant i's expected-arrival profile. Every family keeps
// the per-tick aggregate at exactly tenants*load — the families move
// load between tenants, never add or remove it, so sweeps at different
// families are comparable at equal offered load.
func rates(f Family, i, tenants, ticks int, load float64) []float64 {
	out := make([]float64, ticks)
	for t := range out {
		switch f {
		case FamilyFlashCrowd:
			surge := tenants > 1 && t >= ticks/3 && t < 2*ticks/3
			switch {
			case surge && i == 0:
				out[t] = load * (1 + 0.8*float64(tenants-1))
			case surge:
				out[t] = load * 0.2
			default:
				out[t] = load
			}
		case FamilyDiurnal:
			if tenants == 1 {
				out[t] = load
				break
			}
			// Phase-offset sinusoids: sum over i of sin(θ + 2πi/n) is
			// identically zero, so the aggregate stays tenants*load.
			theta := 2 * math.Pi * (float64(t)/float64(ticks) + float64(i)/float64(tenants))
			out[t] = load * (1 + 0.75*math.Sin(theta))
		default: // churn, hetero-nodes, zone-outage: flat competing load
			out[t] = load
		}
	}
	return out
}

// lifetime is the family's session lifetime in ticks.
func lifetime(f Family, i, ticks int) int {
	if f == FamilyChurn {
		return 1 + i%3
	}
	return max(2, ticks/3)
}

// AggregateRate sums the expected arrival rate over all tenants at tick
// t. Families conserve this at tenants*load for every tick.
func (p *MultiAppPlan) AggregateRate(t int) float64 {
	var sum float64
	for i := range p.Tenants {
		sum += p.Tenants[i].Rates[t]
	}
	return sum
}

// TotalArrivals counts the realised arrivals across tenants and ticks.
func (p *MultiAppPlan) TotalArrivals() int {
	var n int
	for i := range p.Tenants {
		for _, a := range p.Tenants[i].Arrivals {
			n += a
		}
	}
	return n
}

// poisson draws a Poisson(lambda) variate via Knuth's product method —
// exact for the small per-tick rates the plans use, and dependent only
// on the seeded rng stream.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, prod := 0, rng.Float64()
	for prod > limit {
		k++
		prod *= rng.Float64()
	}
	return k
}
