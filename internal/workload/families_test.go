package workload

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/qos"
)

func planConfig(f Family, seed int64) MultiAppPlanConfig {
	return MultiAppPlanConfig{
		Family:       f,
		Seed:         seed,
		Tenants:      4,
		Ticks:        30,
		Load:         2,
		NumNodes:     8,
		NodeCapacity: qos.Resources{CPU: 100, Memory: 1000},
	}
}

// TestFamilyDeterminism is the satellite table-driven determinism test:
// the same seed must yield a bit-identical plan for every family, and a
// different seed a different arrival schedule.
func TestFamilyDeterminism(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			a, err := NewMultiAppPlan(planConfig(f, 11))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewMultiAppPlan(planConfig(f, 11))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different plans")
			}
			c, err := NewMultiAppPlan(planConfig(f, 12))
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := range a.Tenants {
				if !reflect.DeepEqual(a.Tenants[i].Arrivals, c.Tenants[i].Arrivals) {
					same = false
				}
			}
			if same {
				t.Error("different seeds produced identical arrival schedules")
			}
		})
	}
}

// TestFamilyAggregateRateConservation: every family moves load between
// tenants without creating or destroying it — the per-tick aggregate
// expected rate is exactly tenants*load.
func TestFamilyAggregateRateConservation(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := planConfig(f, 5)
			p, err := NewMultiAppPlan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(cfg.Tenants) * cfg.Load
			for tick := 0; tick < p.Ticks; tick++ {
				if got := p.AggregateRate(tick); math.Abs(got-want) > 1e-9 {
					t.Fatalf("tick %d: aggregate rate %v, want %v", tick, got, want)
				}
			}
			for i := range p.Tenants {
				for tick, r := range p.Tenants[i].Rates {
					if r < 0 {
						t.Fatalf("tenant %d tick %d: negative rate %v", i, tick, r)
					}
				}
			}
		})
	}
}

func TestFlashCrowdShape(t *testing.T) {
	cfg := planConfig(FamilyFlashCrowd, 3)
	p, err := NewMultiAppPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mid := cfg.Ticks / 2
	if surged, flat := p.Tenants[0].Rates[mid], p.Tenants[0].Rates[0]; surged <= flat {
		t.Errorf("tenant 0 mid-episode rate %v not above baseline %v", surged, flat)
	}
	if throttled := p.Tenants[1].Rates[mid]; throttled >= cfg.Load {
		t.Errorf("tenant 1 mid-episode rate %v not throttled below %v", throttled, cfg.Load)
	}
}

func TestDiurnalWeightsAndPhase(t *testing.T) {
	p, err := NewMultiAppPlan(planConfig(FamilyDiurnal, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tenants {
		if want := 1 + 0.5*float64(i); p.Tenants[i].Weight != want {
			t.Errorf("tenant %d weight = %v, want %v", i, p.Tenants[i].Weight, want)
		}
	}
	// Phase offsets: tenants must not share one curve.
	if reflect.DeepEqual(p.Tenants[0].Rates, p.Tenants[1].Rates) {
		t.Error("diurnal tenants 0 and 1 share an identical rate curve")
	}
}

func TestChurnLifetimes(t *testing.T) {
	p, err := NewMultiAppPlan(planConfig(FamilyChurn, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Tenants {
		if want := 1 + i%3; p.Tenants[i].Lifetime != want {
			t.Errorf("tenant %d lifetime = %d, want %d", i, p.Tenants[i].Lifetime, want)
		}
	}
}

func TestHeteroNodeClasses(t *testing.T) {
	cfg := planConfig(FamilyHetero, 3)
	p, err := NewMultiAppPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NodeClasses) != cfg.NumNodes {
		t.Fatalf("NodeClasses has %d entries, want %d", len(p.NodeClasses), cfg.NumNodes)
	}
	base := cfg.NodeCapacity
	if got := p.NodeClasses[0]; got != base.Scale(2) {
		t.Errorf("fast class = %+v", got)
	}
	if got := p.NodeClasses[1]; got != base.Scale(0.5) {
		t.Errorf("slow class = %+v", got)
	}
	if got := p.NodeClasses[2]; got != (qos.Resources{CPU: base.CPU, Memory: base.Memory * 0.25}) {
		t.Errorf("memory-constrained class = %+v", got)
	}
}

func TestZoneOutageSchedule(t *testing.T) {
	cfg := planConfig(FamilyZoneOutage, 3)
	p, err := NewMultiAppPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Outages) == 0 {
		t.Fatal("zone-outage plan has no outages")
	}
	if p.Zones <= 0 {
		t.Fatalf("zones = %d", p.Zones)
	}
	// Correlation: every crash in the schedule shares one zone, one
	// start instant, and one downtime.
	zone := p.Outages[0].Node % p.Zones
	for _, cr := range p.Outages {
		if cr.Node%p.Zones != zone {
			t.Errorf("crash node %d outside zone %d", cr.Node, zone)
		}
		if cr.At != p.Outages[0].At || cr.Downtime != p.Outages[0].Downtime {
			t.Errorf("crash %+v not synchronised with %+v", cr, p.Outages[0])
		}
		window := time.Duration(cfg.Ticks) * p.Tick
		if cr.At < 0 || cr.At >= window {
			t.Errorf("crash at %v outside episode window %v", cr.At, window)
		}
	}
}

func TestParseFamilyRoundTrip(t *testing.T) {
	for _, f := range Families() {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFamily(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFamily("nope"); err == nil {
		t.Error("ParseFamily accepted an unknown name")
	}
}

func TestNewMultiAppPlanValidation(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*MultiAppPlanConfig)
	}{
		{"unknown family", func(c *MultiAppPlanConfig) { c.Family = 0 }},
		{"no tenants", func(c *MultiAppPlanConfig) { c.Tenants = 0 }},
		{"no ticks", func(c *MultiAppPlanConfig) { c.Ticks = 0 }},
		{"zero load", func(c *MultiAppPlanConfig) { c.Load = 0 }},
		{"NaN load", func(c *MultiAppPlanConfig) { c.Load = math.NaN() }},
		{"hetero without nodes", func(c *MultiAppPlanConfig) { c.Family = FamilyHetero; c.NumNodes = 0 }},
	}
	for _, m := range mutations {
		cfg := planConfig(FamilyFlashCrowd, 1)
		m.mutate(&cfg)
		if _, err := NewMultiAppPlan(cfg); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestPoissonArrivalsMatchRates(t *testing.T) {
	// Across a long episode the realised arrivals should track the
	// expected aggregate within a loose statistical bound.
	cfg := planConfig(FamilyFlashCrowd, 9)
	cfg.Ticks = 400
	p, err := NewMultiAppPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(cfg.Tenants) * cfg.Load * float64(cfg.Ticks)
	got := float64(p.TotalArrivals())
	// Poisson sd is sqrt(expected); 5 sigma keeps this deterministic
	// test far from flaky while catching a broken sampler.
	if math.Abs(got-expected) > 5*math.Sqrt(expected) {
		t.Errorf("total arrivals %v, expected %v +/- %v", got, expected, 5*math.Sqrt(expected))
	}
}
