// Package workload generates stream processing request workloads for the
// composition experiments (§4.1): Poisson arrivals at a configurable
// request rate, templates drawn from the application library, uniformly
// distributed QoS/resource requirements, and 5–15 minute session
// durations. Piecewise-constant rate schedules reproduce the dynamic
// workload of the adaptability experiment (Figure 8).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/component"
	"repro/internal/qos"
)

// QoSLevel selects a requirement strictness, matching Figure 5(b)'s
// low / high / very-high QoS curves: higher QoS means shorter processing
// time and lower loss-rate requirements.
type QoSLevel int

// QoS strictness levels.
const (
	QoSLow QoSLevel = iota + 1
	QoSHigh
	QoSVeryHigh
)

// Scale returns the multiplier applied to drawn QoS requirements.
func (l QoSLevel) Scale() float64 {
	switch l {
	case QoSLow:
		return 1.4
	case QoSHigh:
		return 1.0
	case QoSVeryHigh:
		return 0.85
	default:
		return 0
	}
}

// String names the level as the paper's figure legend does.
func (l QoSLevel) String() string {
	switch l {
	case QoSLow:
		return "low QoS"
	case QoSHigh:
		return "high QoS"
	case QoSVeryHigh:
		return "very high QoS"
	default:
		return fmt.Sprintf("QoSLevel(%d)", int(l))
	}
}

// Config holds the requirement distributions. All draws are uniform over
// [min, max], following the paper's setup.
type Config struct {
	// Library supplies the application templates.
	Library *component.Library
	// NumNodes is the overlay size, used to draw the client-side deputy.
	NumNodes int

	// DelayReqPerFunction bounds the per-function share of the
	// end-to-end delay requirement (ms); the request requirement is the
	// draw multiplied by the template's position count, so longer
	// applications get proportionally looser absolute bounds.
	DelayReqPerFunctionMin, DelayReqPerFunctionMax float64
	// LossReqPerFunction bounds the per-function share of the end-to-end
	// loss-rate requirement.
	LossReqPerFunctionMin, LossReqPerFunctionMax float64

	// CPUReq and MemoryReq bound the per-component end-system demand.
	CPUReqMin, CPUReqMax       float64
	MemoryReqMin, MemoryReqMax float64
	// BandwidthReq bounds the per-virtual-link bandwidth demand (kbps).
	BandwidthReqMin, BandwidthReqMax float64

	// SessionMin and SessionMax bound the application session duration.
	SessionMin, SessionMax time.Duration

	// Level scales the drawn QoS requirements (Figure 5(b)).
	Level QoSLevel

	// SecureFraction is the probability a request demands components of
	// at least SecureLevel — the application-specific security
	// constraint from the paper's future-work list (§6). Zero disables
	// the constraint (the paper's baseline experiments).
	SecureFraction float64
	// SecureLevel is the minimum component security level demanded by
	// secure requests (default 2 when SecureFraction > 0).
	SecureLevel int
}

// DefaultConfig returns requirement ranges calibrated so that a 400-node
// system saturates between 60 and 100 requests/minute — the regime the
// paper's efficiency figures sweep.
func DefaultConfig(lib *component.Library, numNodes int) Config {
	return Config{
		Library:                lib,
		NumNodes:               numNodes,
		DelayReqPerFunctionMin: 55,
		DelayReqPerFunctionMax: 95,
		LossReqPerFunctionMin:  0.008,
		LossReqPerFunctionMax:  0.02,
		CPUReqMin:              6,
		CPUReqMax:              12,
		MemoryReqMin:           40,
		MemoryReqMax:           120,
		BandwidthReqMin:        100,
		BandwidthReqMax:        500,
		SessionMin:             5 * time.Minute,
		SessionMax:             15 * time.Minute,
		Level:                  QoSHigh,
	}
}

func (c *Config) validate() error {
	if c.Library == nil || c.Library.Count() == 0 {
		return fmt.Errorf("workload: empty template library")
	}
	if c.NumNodes < 1 {
		return fmt.Errorf("workload: NumNodes %d < 1", c.NumNodes)
	}
	ranges := []struct {
		name     string
		min, max float64
	}{
		{name: "DelayReqPerFunction", min: c.DelayReqPerFunctionMin, max: c.DelayReqPerFunctionMax},
		{name: "LossReqPerFunction", min: c.LossReqPerFunctionMin, max: c.LossReqPerFunctionMax},
		{name: "CPUReq", min: c.CPUReqMin, max: c.CPUReqMax},
		{name: "MemoryReq", min: c.MemoryReqMin, max: c.MemoryReqMax},
		{name: "BandwidthReq", min: c.BandwidthReqMin, max: c.BandwidthReqMax},
	}
	for _, r := range ranges {
		if r.min <= 0 || r.max < r.min {
			return fmt.Errorf("workload: invalid %s range [%v, %v]", r.name, r.min, r.max)
		}
	}
	if c.SessionMin <= 0 || c.SessionMax < c.SessionMin {
		return fmt.Errorf("workload: invalid session range [%v, %v]", c.SessionMin, c.SessionMax)
	}
	if c.Level.Scale() <= 0 {
		return fmt.Errorf("workload: invalid QoS level %d", c.Level)
	}
	if c.SecureFraction < 0 || c.SecureFraction > 1 {
		return fmt.Errorf("workload: SecureFraction %v out of [0, 1]", c.SecureFraction)
	}
	if c.SecureLevel < 0 {
		return fmt.Errorf("workload: SecureLevel %d < 0", c.SecureLevel)
	}
	return nil
}

// Generator draws composition requests.
type Generator struct {
	cfg    Config
	rng    *rand.Rand
	nextID int64
}

// NewGenerator validates the config and returns a generator drawing from
// rng.
func NewGenerator(cfg Config, rng *rand.Rand) (*Generator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rng}, nil
}

func (g *Generator) uniform(min, max float64) float64 {
	return min + g.rng.Float64()*(max-min)
}

// Next draws one request: a random template, uniform QoS/resource
// requirements scaled by the QoS level, a random client node, and a
// uniform session duration.
func (g *Generator) Next() *component.Request {
	cfg := &g.cfg
	_, graph := cfg.Library.Pick(g.rng)
	n := graph.NumPositions()
	scale := cfg.Level.Scale()

	g.nextID++
	req := &component.Request{
		ID:    g.nextID,
		Graph: graph,
		QoSReq: qos.Vector{
			Delay:    g.uniform(cfg.DelayReqPerFunctionMin, cfg.DelayReqPerFunctionMax) * float64(n) * scale,
			LossCost: qos.LossCost(math.Min(0.999, g.uniform(cfg.LossReqPerFunctionMin, cfg.LossReqPerFunctionMax)*float64(n)*scale)),
		},
		ResReq:       make([]qos.Resources, n),
		BandwidthReq: g.uniform(cfg.BandwidthReqMin, cfg.BandwidthReqMax),
		Client:       g.rng.Intn(cfg.NumNodes),
		Duration:     cfg.SessionMin + time.Duration(g.rng.Int63n(int64(cfg.SessionMax-cfg.SessionMin)+1)),
	}
	for i := range req.ResReq {
		req.ResReq[i] = qos.Resources{
			CPU:    g.uniform(cfg.CPUReqMin, cfg.CPUReqMax),
			Memory: g.uniform(cfg.MemoryReqMin, cfg.MemoryReqMax),
		}
	}
	if cfg.SecureFraction > 0 && g.rng.Float64() < cfg.SecureFraction {
		level := cfg.SecureLevel
		if level == 0 {
			level = 2
		}
		req.MinSecurity = level
	}
	return req
}

// Phase is one segment of a piecewise-constant request-rate schedule.
type Phase struct {
	// Until is the virtual time this phase ends (exclusive).
	Until time.Duration
	// RatePerMinute is the Poisson arrival rate during the phase.
	RatePerMinute float64
}

// Arrivals produces Poisson arrival times following a rate schedule.
type Arrivals struct {
	phases []Phase
	rng    *rand.Rand
}

// NewArrivals builds an arrival process. Phases must be ordered by
// strictly increasing Until with positive rates; the last phase's rate
// extends beyond its Until forever.
func NewArrivals(phases []Phase, rng *rand.Rand) (*Arrivals, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	prev := time.Duration(-1)
	for i, p := range phases {
		if p.Until <= prev {
			return nil, fmt.Errorf("workload: phase %d Until %v not increasing", i, p.Until)
		}
		if p.RatePerMinute <= 0 {
			return nil, fmt.Errorf("workload: phase %d rate %v <= 0", i, p.RatePerMinute)
		}
		prev = p.Until
	}
	return &Arrivals{phases: append([]Phase(nil), phases...), rng: rng}, nil
}

// ConstantRate builds a single-phase schedule at the given rate.
func ConstantRate(ratePerMinute float64, rng *rand.Rand) (*Arrivals, error) {
	return NewArrivals([]Phase{{Until: math.MaxInt64, RatePerMinute: ratePerMinute}}, rng)
}

// RateAt returns the schedule's rate at virtual time t.
func (a *Arrivals) RateAt(t time.Duration) float64 {
	for _, p := range a.phases {
		if t < p.Until {
			return p.RatePerMinute
		}
	}
	return a.phases[len(a.phases)-1].RatePerMinute
}

// NextAfter returns the next arrival instant strictly after t, drawing an
// exponential inter-arrival gap at the rate in force at t. Rate changes
// mid-gap are approximated by the rate at the gap's start, which is
// accurate for the minutes-long phases the experiments use.
func (a *Arrivals) NextAfter(t time.Duration) time.Duration {
	rate := a.RateAt(t) // requests per minute
	gapMinutes := a.rng.ExpFloat64() / rate
	gap := time.Duration(gapMinutes * float64(time.Minute))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	return t + gap
}
