package core

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
	"repro/internal/topology"
)

// parityGoldenPath holds per-seed decision fingerprints captured from
// the pre-scratch-buffer walk implementation. The allocation rework must
// be bit-identical: same admissions, same components, same phi down to
// the last mantissa bit, same probe counts, same RNG consumption.
// Regenerate with ACP_WRITE_PARITY_GOLDEN=1 (only when a deliberate
// behaviour change is being landed).
const parityGoldenPath = "testdata/parity_golden.json"

type parityClock struct{ now time.Duration }

// parityFingerprint replays a deterministic request sweep for one seed
// across the probing algorithms and renders every decision as text.
// Everything observable goes in: admissions, chosen components, phi and
// accumulated QoS in hex float (exact bits), probe/path/qualified
// counts, and latency. It is self-contained so the identical file can
// run unchanged against the old and new walk implementations.
func parityFingerprint(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 200
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		panic(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = 30
	mesh, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		panic(err)
	}
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = 10
	pcfg.ComponentsPerNode = 2
	cat, err := component.Place(mesh.NumNodes(), pcfg, rng)
	if err != nil {
		panic(err)
	}

	var lines []string
	for _, alg := range []Algorithm{AlgACP, AlgSP, AlgRP, AlgOptimal} {
		clk := &parityClock{}
		counters := &metrics.Counters{}
		ledger := state.NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, func() time.Duration { return clk.now })
		global, err := state.NewGlobal(ledger, mesh, state.DefaultGlobalConfig(), counters)
		if err != nil {
			panic(err)
		}
		env := Env{
			Mesh:     mesh,
			Catalog:  cat,
			Registry: discovery.NewRegistry(cat, mesh.NumNodes(), counters),
			Ledger:   ledger,
			Global:   global,
			Counters: counters,
			Now:      func() time.Duration { return clk.now },
			Rand:     rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		}
		cfg := DefaultConfig()
		cfg.Algorithm = alg
		composer, err := NewComposer(env, cfg)
		if err != nil {
			panic(err)
		}

		reqRng := rand.New(rand.NewSource(seed*7919 + int64(alg)))
		for i := 0; i < 12; i++ {
			clk.now += time.Second
			req := randomRequest(reqRng, int64(i+1), pcfg.NumFunctions, mesh.NumNodes())
			out, err := composer.Probe(req)
			if err != nil {
				panic(err)
			}
			head := fmt.Sprintf("%s req=%d client=%d probes=%d paths=%d qual=%d",
				alg, req.ID, req.Client, out.ProbesSent, out.PathsReturned, out.Qualified)
			if !out.Success() {
				lines = append(lines, head+" reject")
				continue
			}
			if err := composer.Commit(out); err != nil {
				panic(err)
			}
			lines = append(lines, fmt.Sprintf("%s admit comps=%v phi=%s delay=%s loss=%s lat=%d",
				head, out.Best.Components,
				strconv.FormatFloat(out.Best.Phi, 'x', -1, 64),
				strconv.FormatFloat(out.Best.QoS.Delay, 'x', -1, 64),
				strconv.FormatFloat(out.Best.QoS.LossCost, 'x', -1, 64),
				int64(out.Latency)))
		}
	}
	return lines
}

// TestDecisionParityGolden replays 50 seeds against fingerprints
// captured from the walk implementation before the scratch-buffer
// rework. Any drift — a different admission, component choice, phi bit,
// probe count, or RNG draw — fails here with the first diverging line.
func TestDecisionParityGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("parity sweep is a few seconds; skipped in -short")
	}
	const numSeeds = 50
	got := make(map[string][]string, numSeeds)
	for seed := int64(1); seed <= numSeeds; seed++ {
		got[strconv.FormatInt(seed, 10)] = parityFingerprint(seed)
	}

	if os.Getenv("ACP_WRITE_PARITY_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(parityGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(parityGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", parityGoldenPath)
		return
	}

	data, err := os.ReadFile(parityGoldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with ACP_WRITE_PARITY_GOLDEN=1): %v", err)
	}
	want := make(map[string][]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != numSeeds {
		t.Fatalf("golden file has %d seeds, want %d", len(want), numSeeds)
	}
	for seed := int64(1); seed <= numSeeds; seed++ {
		key := strconv.FormatInt(seed, 10)
		w, g := want[key], got[key]
		if len(w) != len(g) {
			t.Fatalf("seed %d: %d decisions, golden has %d", seed, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("seed %d decision %d diverged:\n golden: %s\n    got: %s", seed, i, w[i], g[i])
			}
		}
	}
}
