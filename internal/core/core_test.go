package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/component"
	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/qos"
	"repro/internal/state"
	"repro/internal/topology"
)

// testClock is a settable virtual clock.
type testClock struct{ now time.Duration }

func (c *testClock) Now() time.Duration { return c.now }

// testEnv builds a small but fully wired system: 200 IP nodes, a 30-node
// overlay, 10 functions with 6 candidates each.
func testEnv(t *testing.T, seed int64) (Env, *testClock) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	tcfg := topology.DefaultConfig()
	tcfg.Nodes = 200
	g, err := topology.Generate(tcfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := overlay.DefaultConfig()
	ocfg.Nodes = 30
	mesh, err := overlay.Build(g, ocfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := component.DefaultPlacementConfig()
	pcfg.NumFunctions = 10
	pcfg.ComponentsPerNode = 2
	cat, err := component.Place(mesh.NumNodes(), pcfg, rng)
	if err != nil {
		t.Fatal(err)
	}

	clk := &testClock{}
	counters := &metrics.Counters{}
	ledger := state.NewLedger(mesh, qos.Resources{CPU: 100, Memory: 1000}, clk.Now)
	global, err := state.NewGlobal(ledger, mesh, state.DefaultGlobalConfig(), counters)
	if err != nil {
		t.Fatal(err)
	}
	return Env{
		Mesh:     mesh,
		Catalog:  cat,
		Registry: discovery.NewRegistry(cat, mesh.NumNodes(), counters),
		Ledger:   ledger,
		Global:   global,
		Counters: counters,
		Now:      clk.Now,
		Rand:     rng,
	}, clk
}

// easyRequest builds a request with generous QoS and modest resource
// requirements over a 3-function path.
func easyRequest(id int64) *component.Request {
	g := component.NewPathGraph([]component.FunctionID{0, 1, 2})
	return &component.Request{
		ID:           id,
		Graph:        g,
		QoSReq:       qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
		ResReq:       []qos.Resources{{CPU: 10, Memory: 100}, {CPU: 10, Memory: 100}, {CPU: 10, Memory: 100}},
		BandwidthReq: 100,
		Client:       3,
		Duration:     10 * time.Minute,
	}
}

func mustComposer(t *testing.T, env Env, cfg Config) *Composer {
	t.Helper()
	c, err := NewComposer(env, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewComposerValidation(t *testing.T) {
	env, _ := testEnv(t, 1)
	tests := []struct {
		name   string
		env    Env
		mutate func(*Config)
	}{
		{name: "nil mesh", env: func() Env { e := env; e.Mesh = nil; return e }(), mutate: func(c *Config) {}},
		{name: "nil ledger", env: func() Env { e := env; e.Ledger = nil; return e }(), mutate: func(c *Config) {}},
		{name: "nil rand", env: func() Env { e := env; e.Rand = nil; return e }(), mutate: func(c *Config) {}},
		{name: "bad algorithm", env: env, mutate: func(c *Config) { c.Algorithm = 0 }},
		{name: "zero ratio", env: env, mutate: func(c *Config) { c.ProbingRatio = 0 }},
		{name: "ratio above one", env: env, mutate: func(c *Config) { c.ProbingRatio = 1.5 }},
		{name: "zero ttl", env: env, mutate: func(c *Config) { c.HoldTTL = 0 }},
		{name: "negative cap", env: env, mutate: func(c *Config) { c.MaxProbesPerRequest = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewComposer(tt.env, cfg); err == nil {
				t.Error("NewComposer accepted invalid input")
			}
		})
	}
}

func TestNewComposerDefaults(t *testing.T) {
	env, _ := testEnv(t, 2)
	// RP defaults to random selection; others to risk-then-congestion.
	rp := mustComposer(t, env, Config{Algorithm: AlgRP, ProbingRatio: 0.3, HoldTTL: time.Second, TransientAllocation: true})
	if rp.Config().Selection != SelectRandom {
		t.Errorf("RP selection = %v", rp.Config().Selection)
	}
	acp := mustComposer(t, env, Config{Algorithm: AlgACP, ProbingRatio: 0.3, HoldTTL: time.Second, TransientAllocation: true})
	if acp.Config().Selection != SelectRiskThenCongestion {
		t.Errorf("ACP selection = %v", acp.Config().Selection)
	}
	if acp.Config().MaxProbesPerRequest != DefaultConfig().MaxProbesPerRequest {
		t.Errorf("cap not defaulted: %d", acp.Config().MaxProbesPerRequest)
	}
	// Optimal ignores the ratio entirely.
	if _, err := NewComposer(env, Config{Algorithm: AlgOptimal, HoldTTL: time.Second}); err != nil {
		t.Errorf("Optimal rejected without ratio: %v", err)
	}
}

func TestACPComposesEasyRequest(t *testing.T) {
	env, _ := testEnv(t, 3)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("ACP failed an easy request")
	}
	comp := out.Best
	if len(comp.Components) != 3 {
		t.Fatalf("composition has %d components", len(comp.Components))
	}
	// Eq. 2: every chosen component provides the required function.
	for pos, id := range comp.Components {
		if got := env.Catalog.Component(id).Function; got != req.Graph.Functions[pos] {
			t.Errorf("position %d: function %d, want %d", pos, got, req.Graph.Functions[pos])
		}
	}
	// Eq. 3: aggregated QoS within requirement.
	if !comp.QoS.Within(req.QoSReq) {
		t.Errorf("composition QoS %v violates requirement %v", comp.QoS, req.QoSReq)
	}
	if comp.Phi <= 0 || math.IsInf(comp.Phi, 1) {
		t.Errorf("phi = %v", comp.Phi)
	}
	if out.ProbesSent <= 0 || out.PathsReturned <= 0 || out.Latency <= 0 {
		t.Errorf("outcome stats: probes=%d paths=%d latency=%v", out.ProbesSent, out.PathsReturned, out.Latency)
	}
}

func TestCompositionQoSIsAggregation(t *testing.T) {
	env, _ := testEnv(t, 4)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("probe failed")
	}
	comp := out.Best
	var want qos.Vector
	for _, id := range comp.Components {
		want = want.Add(env.Catalog.Component(id).QoS)
	}
	for _, r := range comp.Routes {
		want = want.Add(r.QoS)
	}
	if math.Abs(want.Delay-comp.QoS.Delay) > 1e-9 || math.Abs(want.LossCost-comp.QoS.LossCost) > 1e-9 {
		t.Errorf("QoS = %v, recomputed %v", comp.QoS, want)
	}
}

func TestCommitAndRelease(t *testing.T) {
	env, _ := testEnv(t, 5)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("probe: %v success=%v", err, out.Success())
	}
	if err := c.Commit(out); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if env.Ledger.ActiveSessions() != 1 {
		t.Errorf("ActiveSessions = %d", env.Ledger.ActiveSessions())
	}
	// Confirmation messages: one per component.
	if env.Counters.Confirmations != 3 {
		t.Errorf("Confirmations = %d, want 3", env.Counters.Confirmations)
	}
	// The chosen nodes carry the committed demand.
	node0 := env.Catalog.Component(out.Best.Components[0]).Node
	if got := env.Ledger.NodeAvailable(node0); got.CPU > 90 {
		t.Errorf("node %d CPU available = %v after commit", node0, got.CPU)
	}
	c.Release(req.ID)
	if env.Ledger.ActiveSessions() != 0 {
		t.Errorf("ActiveSessions after release = %d", env.Ledger.ActiveSessions())
	}
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d not restored: %v", n, got)
		}
	}
}

func TestCommitFailsForUnsuccessfulOutcome(t *testing.T) {
	env, _ := testEnv(t, 6)
	c := mustComposer(t, env, DefaultConfig())
	if err := c.Commit(&Outcome{Request: easyRequest(1)}); err == nil {
		t.Error("commit of failed outcome accepted")
	}
	if err := c.Commit(nil); err == nil {
		t.Error("commit of nil outcome accepted")
	}
}

func TestProbeInvalidRequest(t *testing.T) {
	env, _ := testEnv(t, 7)
	c := mustComposer(t, env, DefaultConfig())
	bad := easyRequest(1)
	bad.Duration = 0
	if _, err := c.Probe(bad); err == nil {
		t.Error("invalid request accepted")
	}
	bad2 := easyRequest(2)
	bad2.Client = 999
	if _, err := c.Probe(bad2); err == nil {
		t.Error("out-of-range client accepted")
	}
}

func TestInfeasibleQoSFails(t *testing.T) {
	env, _ := testEnv(t, 8)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	req.QoSReq = qos.Vector{Delay: 0.001, LossCost: 1e-9} // impossible
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success() {
		t.Fatal("impossible QoS satisfied")
	}
	// All transient holds must be gone after a failed probe.
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d holds leaked after failure: %v", n, got)
		}
	}
}

func TestMissingFunctionFails(t *testing.T) {
	env, _ := testEnv(t, 9)
	c := mustComposer(t, env, DefaultConfig())
	req := easyRequest(1)
	req.Graph = component.NewPathGraph([]component.FunctionID{0, 99}) // 99 not deployed
	req.ResReq = req.ResReq[:2]
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Success() {
		t.Error("request with undeployed function succeeded")
	}
}

func TestOptimalProbesEveryCandidate(t *testing.T) {
	env, _ := testEnv(t, 10)
	opt := mustComposer(t, env, Config{Algorithm: AlgOptimal, HoldTTL: time.Second, TransientAllocation: true})
	req := easyRequest(1)
	out, err := opt.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("optimal failed an easy request")
	}
	// First hop alone probes every candidate of function 0.
	k := len(env.Catalog.Candidates(0))
	if out.ProbesSent < k {
		t.Errorf("probes sent = %d, want >= %d", out.ProbesSent, k)
	}
	opt.Abort(req.ID)
}

func TestACPCheaperThanOptimal(t *testing.T) {
	probes := func(alg Algorithm, ratio float64) int {
		env, _ := testEnv(t, 11)
		cfg := DefaultConfig()
		cfg.Algorithm = alg
		cfg.ProbingRatio = ratio
		c := mustComposer(t, env, cfg)
		out, err := c.Probe(easyRequest(1))
		if err != nil {
			t.Fatal(err)
		}
		c.Abort(1)
		return out.ProbesSent
	}
	acp := probes(AlgACP, 0.3)
	opt := probes(AlgOptimal, 1)
	if acp >= opt {
		t.Errorf("ACP probes %d not below Optimal %d", acp, opt)
	}
	if acp == 0 {
		t.Error("ACP sent no probes")
	}
}

func TestOptimalPhiIsMinimal(t *testing.T) {
	// On identical fresh systems, Optimal's phi must not exceed ACP's:
	// it evaluates a superset of compositions.
	run := func(alg Algorithm) float64 {
		env, _ := testEnv(t, 12)
		cfg := DefaultConfig()
		cfg.Algorithm = alg
		c := mustComposer(t, env, cfg)
		out, err := c.Probe(easyRequest(1))
		if err != nil || !out.Success() {
			t.Fatalf("%v failed: %v", alg, err)
		}
		c.Abort(1)
		return out.Best.Phi
	}
	if optPhi, acpPhi := run(AlgOptimal), run(AlgACP); optPhi > acpPhi+1e-9 {
		t.Errorf("Optimal phi %v exceeds ACP phi %v", optPhi, acpPhi)
	}
}

func TestTransientAllocationBlocksConcurrentProbes(t *testing.T) {
	env, _ := testEnv(t, 13)
	c := mustComposer(t, env, DefaultConfig())

	// Request 1 probes but has not committed: its holds should make a
	// colliding request see less capacity.
	req1 := easyRequest(1)
	req1.ResReq = []qos.Resources{{CPU: 95, Memory: 950}, {CPU: 95, Memory: 950}, {CPU: 95, Memory: 950}}
	out1, err := c.Probe(req1)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Success() {
		t.Skip("heavy request infeasible on this seed")
	}

	req2 := easyRequest(2)
	req2.ResReq = req1.ResReq
	out2, err := c.Probe(req2)
	if err != nil {
		t.Fatal(err)
	}
	// Request 2 may still succeed via disjoint nodes, but it must not
	// share any node with request 1's winning composition.
	if out2.Success() {
		used := make(map[int]bool)
		for _, id := range out1.Best.Components {
			used[env.Catalog.Component(id).Node] = true
		}
		for _, id := range out2.Best.Components {
			if used[env.Catalog.Component(id).Node] {
				t.Error("concurrent request admitted onto a transiently held node")
			}
		}
	}
	if err := c.Commit(out1); err != nil {
		t.Errorf("request 1 commit failed: %v", err)
	}
	if out2.Success() {
		if err := c.Commit(out2); err != nil {
			t.Errorf("request 2 commit failed: %v", err)
		}
	}
}

func TestHoldsExpireWithoutCommit(t *testing.T) {
	env, clk := testEnv(t, 14)
	c := mustComposer(t, env, DefaultConfig())
	out, err := c.Probe(easyRequest(1))
	if err != nil || !out.Success() {
		t.Fatalf("probe failed: %v", err)
	}
	// Never committed: after the TTL the holds evaporate.
	clk.now += DefaultConfig().HoldTTL + time.Second
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d holds survived TTL: %v", n, got)
		}
	}
}

func TestStaticIsDeterministicRandomIsNot(t *testing.T) {
	env, _ := testEnv(t, 15)
	static := mustComposer(t, env, Config{Algorithm: AlgStatic, HoldTTL: time.Second})
	var first []component.ComponentID
	for i := 0; i < 3; i++ {
		out, err := static.Probe(easyRequest(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if !out.Success() {
			t.Skip("static choice infeasible on this seed")
		}
		static.Abort(out.Request.ID)
		if first == nil {
			first = out.Best.Components
			continue
		}
		for p := range first {
			if first[p] != out.Best.Components[p] {
				t.Fatal("static algorithm changed its choice")
			}
		}
	}

	random := mustComposer(t, env, Config{Algorithm: AlgRandom, HoldTTL: time.Second})
	seen := make(map[component.ComponentID]bool)
	for i := 0; i < 20; i++ {
		out, err := random.Probe(easyRequest(int64(200 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if out.Success() {
			seen[out.Best.Components[0]] = true
			random.Abort(out.Request.ID)
		}
	}
	if len(seen) < 2 {
		t.Errorf("random algorithm picked only %d distinct first components", len(seen))
	}
}

func TestDAGComposition(t *testing.T) {
	env, _ := testEnv(t, 16)
	c := mustComposer(t, env, Config{Algorithm: AlgOptimal, HoldTTL: time.Second, TransientAllocation: true})
	g, err := component.NewBranchGraph(0, []component.FunctionID{1, 2}, []component.FunctionID{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	req := &component.Request{
		ID:     1,
		Graph:  g,
		QoSReq: qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
		ResReq: []qos.Resources{
			{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50}, {CPU: 5, Memory: 50},
			{CPU: 5, Memory: 50}, {CPU: 5, Memory: 50},
		},
		BandwidthReq: 50,
		Client:       0,
		Duration:     5 * time.Minute,
	}
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("DAG request failed")
	}
	comp := out.Best
	if len(comp.Components) != 5 {
		t.Fatalf("components = %d, want 5", len(comp.Components))
	}
	if len(comp.Routes) != len(g.Edges) {
		t.Fatalf("routes = %d, want %d", len(comp.Routes), len(g.Edges))
	}
	for pos, id := range comp.Components {
		if env.Catalog.Component(id).Function != g.Functions[pos] {
			t.Errorf("position %d has wrong function", pos)
		}
	}
	// Routes must connect the actual endpoints of each edge.
	for i, e := range g.Edges {
		from := env.Catalog.Component(comp.Components[e.From]).Node
		to := env.Catalog.Component(comp.Components[e.To]).Node
		want, _ := env.Mesh.RouteBetween(from, to)
		if len(want.Links) != len(comp.Routes[i].Links) {
			t.Errorf("edge %d route mismatch", i)
		}
	}
	if err := c.Commit(out); err != nil {
		t.Errorf("DAG commit: %v", err)
	}
}

func TestProbeBudgetCapsFanout(t *testing.T) {
	env, _ := testEnv(t, 17)
	cfg := Config{Algorithm: AlgRP, ProbingRatio: 1, HoldTTL: time.Second, MaxProbesPerRequest: 5}
	c := mustComposer(t, env, cfg)
	out, err := c.Probe(easyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if out.ProbesSent > 5 {
		t.Errorf("probes sent = %d, want <= 5", out.ProbesSent)
	}
	c.Abort(1)
}

func TestOptimalChargesExhaustiveTree(t *testing.T) {
	env, _ := testEnv(t, 17)
	c := mustComposer(t, env, Config{Algorithm: AlgOptimal, HoldTTL: time.Second})
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	c.Abort(1)
	// The paper's accounting: k + k^2 + k^3 for a 3-function path with k
	// candidates each, regardless of pruning.
	k := len(env.Catalog.Candidates(0))
	want := k + k*k + k*k*k
	if out.ProbesSent != want {
		t.Errorf("exhaustive probes = %d, want %d", out.ProbesSent, want)
	}
	if got := env.Counters.Probes; got != int64(want) {
		t.Errorf("probe counter = %d, want %d", got, want)
	}
}

func TestSetProbingRatio(t *testing.T) {
	env, _ := testEnv(t, 18)
	c := mustComposer(t, env, DefaultConfig())
	if err := c.SetProbingRatio(0.7); err != nil {
		t.Fatal(err)
	}
	if got := c.ProbingRatio(); got != 0.7 {
		t.Errorf("ProbingRatio = %v", got)
	}
	if err := c.SetProbingRatio(0); err == nil {
		t.Error("ratio 0 accepted")
	}
	if err := c.SetProbingRatio(1.01); err == nil {
		t.Error("ratio > 1 accepted")
	}
}

func TestHigherRatioProbesMore(t *testing.T) {
	run := func(ratio float64) int {
		env, _ := testEnv(t, 19)
		cfg := DefaultConfig()
		cfg.ProbingRatio = ratio
		c := mustComposer(t, env, cfg)
		out, err := c.Probe(easyRequest(1))
		if err != nil {
			t.Fatal(err)
		}
		c.Abort(1)
		return out.ProbesSent
	}
	if lo, hi := run(0.2), run(0.9); lo >= hi {
		t.Errorf("probes at ratio 0.2 (%d) not below ratio 0.9 (%d)", lo, hi)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	tests := []struct {
		alg  Algorithm
		want string
	}{
		{alg: AlgACP, want: "ACP"},
		{alg: AlgOptimal, want: "Optimal"},
		{alg: AlgSP, want: "SP"},
		{alg: AlgRP, want: "RP"},
		{alg: AlgRandom, want: "Random"},
		{alg: AlgStatic, want: "Static"},
		{alg: Algorithm(42), want: "Algorithm(42)"},
	}
	for _, tt := range tests {
		if got := tt.alg.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", int(tt.alg), got, tt.want)
		}
	}
}

func TestSPReturnsQualifiedComposition(t *testing.T) {
	env, _ := testEnv(t, 20)
	cfg := DefaultConfig()
	cfg.Algorithm = AlgSP
	c := mustComposer(t, env, cfg)
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("SP failed an easy request")
	}
	if !out.Best.QoS.Within(req.QoSReq) {
		t.Error("SP returned an unqualified composition")
	}
	if err := c.Commit(out); err != nil {
		t.Errorf("SP commit: %v", err)
	}
}

func TestRPWorksWithoutGlobalState(t *testing.T) {
	env, _ := testEnv(t, 21)
	cfg := DefaultConfig()
	cfg.Algorithm = AlgRP
	c := mustComposer(t, env, cfg)
	out, err := c.Probe(easyRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatal("RP failed an easy request")
	}
	if err := c.Commit(out); err != nil {
		t.Errorf("RP commit: %v", err)
	}
}

func TestSelectionPolicyAblations(t *testing.T) {
	for _, sel := range []SelectionPolicy{SelectRiskOnly, SelectCongestionOnly, SelectRiskThenCongestion} {
		env, _ := testEnv(t, 22)
		cfg := DefaultConfig()
		cfg.Selection = sel
		c := mustComposer(t, env, cfg)
		out, err := c.Probe(easyRequest(1))
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if !out.Success() {
			t.Errorf("selection %d failed an easy request", sel)
		}
		c.Abort(1)
	}
}

func TestAbortReleasesHolds(t *testing.T) {
	env, _ := testEnv(t, 23)
	c := mustComposer(t, env, DefaultConfig())
	out, err := c.Probe(easyRequest(1))
	if err != nil || !out.Success() {
		t.Fatalf("probe failed: %v", err)
	}
	c.Abort(1)
	for n := 0; n < env.Ledger.NumNodes(); n++ {
		if got := env.Ledger.NodeAvailable(n); got != (qos.Resources{CPU: 100, Memory: 1000}) {
			t.Fatalf("node %d holds leaked after abort: %v", n, got)
		}
	}
}

func TestOutcomeSuccess(t *testing.T) {
	if (&Outcome{}).Success() {
		t.Error("empty outcome reports success")
	}
	if !(&Outcome{Best: &Composition{}}).Success() {
		t.Error("outcome with composition reports failure")
	}
}

func TestRankLessBandBehaviour(t *testing.T) {
	env, _ := testEnv(t, 40)
	c := mustComposer(t, env, DefaultConfig())
	less := c.rankLess()
	// Clearly different risks: risk decides.
	if !less(0.2, 9.0, 0.5, 0.1) {
		t.Error("lower risk not preferred despite band")
	}
	// Similar risks (within 5%): congestion decides.
	if !less(0.50, 0.1, 0.51, 0.9) {
		t.Error("similar risks did not fall back to congestion")
	}
	if less(0.50, 0.9, 0.51, 0.1) {
		t.Error("higher congestion preferred at similar risk")
	}

	riskOnly := mustComposer(t, env, func() Config {
		cfg := DefaultConfig()
		cfg.Selection = SelectRiskOnly
		return cfg
	}()).rankLess()
	if !riskOnly(0.50, 0.9, 0.51, 0.1) {
		t.Error("risk-only policy consulted congestion")
	}

	congOnly := mustComposer(t, env, func() Config {
		cfg := DefaultConfig()
		cfg.Selection = SelectCongestionOnly
		return cfg
	}()).rankLess()
	if !congOnly(0.9, 0.1, 0.1, 0.9) {
		t.Error("congestion-only policy consulted risk")
	}
}
