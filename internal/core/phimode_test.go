package core

import (
	"math"
	"testing"

	"repro/internal/component"
	"repro/internal/qos"
)

// probeBest runs one AlgOptimal probe under the given phi mode against a
// fresh environment built from seed, returning the winning composition.
// AlgOptimal makes the comparison exhaustive: the winner is the true
// argmin of the objective, not a probing-ratio artifact.
func probeBest(t *testing.T, seed int64, mode PhiMode, weight float64) *Composition {
	t.Helper()
	env, _ := testEnv(t, seed)
	cfg := DefaultConfig()
	cfg.Algorithm = AlgOptimal
	cfg.Phi = mode
	c := mustComposer(t, env, cfg)
	req := easyRequest(1)
	req.Weight = weight
	out, err := c.Probe(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Success() {
		t.Fatalf("probe failed under phi mode %v", mode)
	}
	return out.Best
}

func TestPhiWeightedScalesSum(t *testing.T) {
	const seed, weight = 11, 2.5
	base := probeBest(t, seed, PhiSum, 0)
	weighted := probeBest(t, seed, PhiWeighted, weight)
	// A constant per-request weight cannot change the argmin, only the
	// score: same composition, phi scaled by exactly the weight.
	if len(base.Components) != len(weighted.Components) {
		t.Fatalf("weighted run chose a different shape: %d vs %d components",
			len(weighted.Components), len(base.Components))
	}
	for i := range base.Components {
		if base.Components[i] != weighted.Components[i] {
			t.Fatalf("weighted run chose component %v at position %d, want %v",
				weighted.Components[i], i, base.Components[i])
		}
	}
	if got, want := weighted.Phi, base.Phi*weight; math.Abs(got-want) > 1e-12*math.Abs(want) {
		t.Errorf("weighted phi = %v, want %v", got, want)
	}
}

func TestPhiWeightedDefaultsToUnitWeight(t *testing.T) {
	const seed = 12
	base := probeBest(t, seed, PhiSum, 0)
	weighted := probeBest(t, seed, PhiWeighted, 0) // Weight unset => 1
	if weighted.Phi != base.Phi {
		t.Errorf("unit-weight weighted phi = %v, want sum phi %v", weighted.Phi, base.Phi)
	}
}

func TestPhiBottleneckIsBoundedBySum(t *testing.T) {
	const seed = 13
	bottleneck := probeBest(t, seed, PhiBottleneck, 0)
	if bottleneck.Phi <= 0 {
		t.Fatalf("bottleneck phi = %v, want > 0", bottleneck.Phi)
	}
	// Recompute the sum objective over the composition the bottleneck
	// run chose: the max term can never exceed the sum of terms, and
	// with a 3-position path plus links it must be strictly below it.
	env, _ := testEnv(t, seed)
	cfg := DefaultConfig()
	cfg.Algorithm = AlgOptimal
	c := mustComposer(t, env, cfg)
	req := easyRequest(1)
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("sum probe: %v success=%v", err, out != nil && out.Success())
	}
	if bottleneck.Phi >= out.Best.Phi+1e-12 {
		t.Errorf("bottleneck phi %v not below sum objective %v", bottleneck.Phi, out.Best.Phi)
	}
}

func TestPhiModeValidation(t *testing.T) {
	env, _ := testEnv(t, 14)
	cfg := DefaultConfig()
	cfg.Phi = PhiBottleneck + 1
	if _, err := NewComposer(env, cfg); err == nil {
		t.Error("NewComposer accepted an unknown phi mode")
	}
	cfg.Phi = -1
	if _, err := NewComposer(env, cfg); err == nil {
		t.Error("NewComposer accepted a negative phi mode")
	}
}

func TestPhiModeStrings(t *testing.T) {
	cases := map[PhiMode]string{
		PhiSum:        "sum",
		PhiWeighted:   "weighted",
		PhiBottleneck: "bottleneck",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("PhiMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

func TestRequestWeightValidation(t *testing.T) {
	req := easyRequest(1)
	req.Weight = -1
	if err := req.Validate(); err == nil {
		t.Error("Validate accepted a negative weight")
	}
	req.Weight = math.NaN()
	if err := req.Validate(); err == nil {
		t.Error("Validate accepted a NaN weight")
	}
	req.Weight = 0
	if err := req.Validate(); err != nil {
		t.Errorf("Validate rejected the zero (default) weight: %v", err)
	}
	if got := req.PhiWeight(); got != 1 {
		t.Errorf("PhiWeight() = %v for unset weight, want 1", got)
	}
	req.Weight = 3
	if got := req.PhiWeight(); got != 3 {
		t.Errorf("PhiWeight() = %v, want 3", got)
	}
	var _ = component.Request{} // keep the import anchored to the tested type
}

func TestPhiBottleneckSingleTermEqualsSum(t *testing.T) {
	// With a single-position graph and a co-located (or absent) route
	// set there is exactly one congestion term, so bottleneck == sum.
	env, _ := testEnv(t, 15)
	for _, mode := range []PhiMode{PhiSum, PhiBottleneck} {
		cfg := DefaultConfig()
		cfg.Algorithm = AlgOptimal
		cfg.Phi = mode
		c := mustComposer(t, env, cfg)
		req := &component.Request{
			ID:           int64(100 + mode),
			Graph:        component.NewPathGraph([]component.FunctionID{0}),
			QoSReq:       qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
			ResReq:       []qos.Resources{{CPU: 10, Memory: 100}},
			BandwidthReq: 100,
			Client:       3,
			Duration:     easyRequest(1).Duration,
		}
		out, err := c.Probe(req)
		if err != nil || !out.Success() {
			t.Fatalf("mode %v probe: %v", mode, err)
		}
		c.Abort(req.ID)
		if mode == PhiBottleneck {
			sum := probeSinglePosition(t, env)
			if math.Abs(out.Best.Phi-sum) > 1e-12 {
				t.Errorf("single-term bottleneck phi = %v, sum phi = %v", out.Best.Phi, sum)
			}
		}
	}
}

// probeSinglePosition recomputes the sum-mode phi of the one-position
// request against the same environment.
func probeSinglePosition(t *testing.T, env Env) float64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Algorithm = AlgOptimal
	c := mustComposer(t, env, cfg)
	req := &component.Request{
		ID:           999,
		Graph:        component.NewPathGraph([]component.FunctionID{0}),
		QoSReq:       qos.Vector{Delay: 100000, LossCost: qos.LossCost(0.9)},
		ResReq:       []qos.Resources{{CPU: 10, Memory: 100}},
		BandwidthReq: 100,
		Client:       3,
		Duration:     easyRequest(1).Duration,
	}
	out, err := c.Probe(req)
	if err != nil || !out.Success() {
		t.Fatalf("sum probe: %v", err)
	}
	c.Abort(req.ID)
	return out.Best.Phi
}
